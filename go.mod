module dangsan

go 1.22
