// Package dangsan's module-root benchmarks: one testing.B benchmark family
// per table/figure of the paper's evaluation. These run the workloads at a
// reduced scale (0.1x) so `go test -bench=. -benchmem` completes in
// minutes; the full-scale numbers come from `go run ./cmd/dangsan-bench`.
//
//	BenchmarkFig9SPEC        — run time per SPEC analog per detector (Fig. 9);
//	                           the reported footprint-bytes metric is Fig. 11.
//	BenchmarkFig10Scalability— run time per thread count (Fig. 10); the
//	                           footprint-bytes metric is Fig. 12.
//	BenchmarkServers         — requests/s shape of §8.2; footprint of §8.3.
//	BenchmarkLookback        — the §4.4 lookback design choice.
//	BenchmarkCompression     — the §6 pointer-compression design choice.
//	BenchmarkMapper          — the §4.3 shadow-vs-tree mapper argument.
package dangsan

import (
	"fmt"
	"testing"

	"dangsan/internal/bench"
	"dangsan/internal/pointerlog"
	"dangsan/internal/proc"
	"dangsan/internal/rbtree"
	"dangsan/internal/shadow"
	"dangsan/internal/vmem"
	"dangsan/internal/workloads"
)

const benchScale = 0.1

func scaleSpec(p workloads.SPECProfile) workloads.SPECProfile {
	p.Objects = maxi(int(float64(p.Objects)*benchScale), 16)
	p.TotalStores = maxi(int(float64(p.TotalStores)*benchScale), 8)
	p.ComputeOps = maxi(int(float64(p.ComputeOps)*benchScale), 8)
	p.LiveWindow = maxi(int(float64(p.LiveWindow)*benchScale), 8)
	return p
}

func scaleParallel(p workloads.ParallelProfile) workloads.ParallelProfile {
	p.TotalObjects = maxi(int(float64(p.TotalObjects)*benchScale), 64)
	p.TotalStores = maxi(int(float64(p.TotalStores)*benchScale), 64)
	p.TotalCompute = maxi(int(float64(p.TotalCompute)*benchScale), 64)
	p.LeakPerThread = int(float64(p.LeakPerThread) * benchScale)
	p.LiveWindowPerThread = maxi(int(float64(p.LiveWindowPerThread)*benchScale), 8)
	return p
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BenchmarkFig9SPEC measures every SPEC analog under every detector.
func BenchmarkFig9SPEC(b *testing.B) {
	for _, prof := range workloads.SPECProfiles() {
		prof := scaleSpec(prof)
		for _, kind := range bench.AllKinds() {
			b.Run(fmt.Sprintf("%s/%s", prof.Name, kind), func(b *testing.B) {
				var footprint uint64
				for i := 0; i < b.N; i++ {
					det, err := bench.NewDetector(kind)
					if err != nil {
						b.Fatal(err)
					}
					p := proc.New(det)
					if err := workloads.RunSPEC(p, prof, 1); err != nil {
						b.Fatal(err)
					}
					footprint = p.MemoryFootprint()
				}
				b.ReportMetric(float64(footprint), "footprint-bytes")
			})
		}
	}
}

// BenchmarkFig10Scalability measures three representative parallel analogs
// across thread counts under baseline and DangSan.
func BenchmarkFig10Scalability(b *testing.B) {
	for _, name := range []string{"parsec.canneal", "splash2x.barnes", "parsec.freqmine"} {
		prof, err := workloads.ParallelProfileByName(name)
		if err != nil {
			b.Fatal(err)
		}
		prof = scaleParallel(prof)
		for _, threads := range []int{1, 4, 16} {
			for _, kind := range []bench.Kind{bench.Baseline, bench.DangSan} {
				b.Run(fmt.Sprintf("%s/t%d/%s", prof.Name, threads, kind), func(b *testing.B) {
					var footprint uint64
					for i := 0; i < b.N; i++ {
						det, err := bench.NewDetector(kind)
						if err != nil {
							b.Fatal(err)
						}
						p := proc.New(det)
						if err := workloads.RunParallel(p, prof, threads, 1); err != nil {
							b.Fatal(err)
						}
						footprint = p.MemoryFootprint()
					}
					b.ReportMetric(float64(footprint), "footprint-bytes")
				})
			}
		}
	}
}

// BenchmarkServers measures the web-server analogs (32 workers, as in the
// paper's ApacheBench configuration).
func BenchmarkServers(b *testing.B) {
	const requests = 2000
	for _, prof := range workloads.ServerProfiles() {
		for _, kind := range []bench.Kind{bench.Baseline, bench.DangSan, bench.DangNULL} {
			b.Run(fmt.Sprintf("%s/%s", prof.Name, kind), func(b *testing.B) {
				var footprint uint64
				for i := 0; i < b.N; i++ {
					det, err := bench.NewDetector(kind)
					if err != nil {
						b.Fatal(err)
					}
					p := proc.New(det)
					if err := workloads.RunServer(p, prof, 32, requests, 1); err != nil {
						b.Fatal(err)
					}
					footprint = p.MemoryFootprint()
				}
				b.ReportMetric(float64(footprint), "footprint-bytes")
				b.ReportMetric(float64(requests*b.N)/b.Elapsed().Seconds(), "req/s")
			})
		}
	}
}

// BenchmarkLookback sweeps the lookback window on the duplicate-heavy
// perlbench analog (§4.4).
func BenchmarkLookback(b *testing.B) {
	prof, err := workloads.SPECProfileByName("perlbench")
	if err != nil {
		b.Fatal(err)
	}
	prof = scaleSpec(prof)
	for _, lb := range []int{0, 1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("lookback%d", lb), func(b *testing.B) {
			var logBytes uint64
			for i := 0; i < b.N; i++ {
				cfg := pointerlog.DefaultConfig()
				cfg.Lookback = lb
				det := bench.NewDangSanWithConfig(cfg)
				p := proc.New(det)
				if err := workloads.RunSPEC(p, prof, 1); err != nil {
					b.Fatal(err)
				}
				logBytes = det.MetadataBytes()
			}
			b.ReportMetric(float64(logBytes), "metadata-bytes")
		})
	}
}

// BenchmarkCompression toggles pointer compression on the locality-heavy
// povray analog (§6).
func BenchmarkCompression(b *testing.B) {
	prof, err := workloads.SPECProfileByName("povray")
	if err != nil {
		b.Fatal(err)
	}
	prof = scaleSpec(prof)
	for _, comp := range []bool{false, true} {
		b.Run(fmt.Sprintf("compression=%v", comp), func(b *testing.B) {
			var logBytes uint64
			for i := 0; i < b.N; i++ {
				cfg := pointerlog.DefaultConfig()
				cfg.Compression = comp
				det := bench.NewDangSanWithConfig(cfg)
				p := proc.New(det)
				if err := workloads.RunSPEC(p, prof, 1); err != nil {
					b.Fatal(err)
				}
				logBytes = det.MetadataBytes()
			}
			b.ReportMetric(float64(logBytes), "metadata-bytes")
		})
	}
}

// BenchmarkMapper compares ptr2obj lookup cost: constant-time shadow memory
// versus the balanced tree DangNULL uses, across live-object counts (§4.3).
func BenchmarkMapper(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		tbl := shadow.NewTable()
		var tree rbtree.Tree
		for i := 0; i < n; i++ {
			base := vmem.HeapBase + uint64(i)*64
			tbl.CreateObject(base, 64, 8, uint64(i+1))
			tree.Insert(base, base+64, uint64(i+1))
		}
		span := uint64(n) * 64
		b.Run(fmt.Sprintf("shadow/n%d", n), func(b *testing.B) {
			addr := uint64(0)
			for i := 0; i < b.N; i++ {
				if tbl.Lookup(vmem.HeapBase+addr%span) == 0 {
					b.Fatal("miss")
				}
				addr += 4099 * 8
			}
		})
		b.Run(fmt.Sprintf("rbtree/n%d", n), func(b *testing.B) {
			addr := uint64(0)
			for i := 0; i < b.N; i++ {
				if _, ok := tree.LookupContaining(vmem.HeapBase + addr%span); !ok {
					b.Fatal("miss")
				}
				addr += 4099 * 8
			}
		})
	}
}
