package conformance

import (
	"fmt"
	"testing"

	"dangsan/internal/detectors"
	"dangsan/internal/detectors/dangnull"
	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/detectors/freesentry"
	"dangsan/internal/pointerlog"
	"dangsan/internal/proc"
)

// Per-detector invalidation contracts for a pointer stored in a GLOBAL slot
// whose object has just died.
func invalidBitCheck(orig, got uint64) error {
	if got != orig|pointerlog.InvalidBit {
		return fmt.Errorf("want 0x%x (invalid bit set), got 0x%x", orig|pointerlog.InvalidBit, got)
	}
	return nil
}

func untouchedCheck(orig, got uint64) error {
	if got != orig {
		return fmt.Errorf("want untouched 0x%x, got 0x%x", orig, got)
	}
	return nil
}

func contracts() map[string]struct {
	mk    func() detectors.Detector
	check CheckFn
} {
	return map[string]struct {
		mk    func() detectors.Detector
		check CheckFn
	}{
		// Baseline: dangling pointers survive untouched.
		"baseline": {func() detectors.Detector { return detectors.None{} }, untouchedCheck},
		// DangSan and FreeSentry invalidate pointers anywhere in memory.
		"dangsan":    {func() detectors.Detector { return dangsan.New() }, invalidBitCheck},
		"freesentry": {func() detectors.Detector { return freesentry.New() }, invalidBitCheck},
		// DangNULL only tracks heap-resident pointer slots; the conformance
		// slots are globals, so they must pass through untouched — the
		// coverage gap the paper criticizes.
		"dangnull": {func() detectors.Detector { return dangnull.New() }, untouchedCheck},
	}
}

// TestRandomProgramsConform runs many random programs under every detector,
// checking the invalidation contract at each free and that no false
// positives (errors, clobbered integers) occur.
func TestRandomProgramsConform(t *testing.T) {
	for name, c := range contracts() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 12; seed++ {
				prog := &Program{Seed: seed, Steps: 2500}
				res := prog.Run(proc.New(c.mk()), c.check)
				if res.Err != nil {
					t.Fatalf("seed %d: %v", seed, res.Err)
				}
				if res.LiveObjects != 0 {
					t.Fatalf("seed %d: leaked %d objects", seed, res.LiveObjects)
				}
			}
		})
	}
}

// TestDeterministicAcrossDetectors verifies that the program's own
// observable behaviour (modulo invalidation bits) is detector-independent:
// integer slots end with identical values everywhere, and pointer slots
// differ at most by the detector's neutralization.
func TestDeterministicAcrossDetectors(t *testing.T) {
	prog := &Program{Seed: 99, Steps: 3000}

	base := prog.Run(proc.New(detectors.None{}), nil)
	if base.Err != nil {
		t.Fatal(base.Err)
	}
	ds := prog.Run(proc.New(dangsan.New()), nil)
	if ds.Err != nil {
		t.Fatal(ds.Err)
	}
	if len(base.Slots) != len(ds.Slots) {
		t.Fatal("slot count mismatch")
	}
	diff := 0
	for i := range base.Slots {
		b, d := base.Slots[i], ds.Slots[i]
		if b == d {
			continue
		}
		// Allowed divergences: dangsan invalidated a dangling pointer, or
		// heap layout shifted the value by the allocation pad — the value
		// must still be a plausible neutralized/retargeted heap pointer,
		// never an arbitrary corruption of an integer.
		if d&pointerlog.InvalidBit != 0 {
			diff++
			continue
		}
		t.Errorf("slot %d: baseline 0x%x vs dangsan 0x%x (not an invalidation)", i, b, d)
	}
	if diff == 0 {
		t.Log("note: no dangling pointers were left at program end for this seed")
	}
}

// TestZeroOnFreeConforms layers secure deallocation on top of DangSan: the
// random programs must still complete without errors or leaks.
func TestZeroOnFreeConforms(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		p := proc.New(dangsan.New())
		p.EnableZeroOnFree()
		prog := &Program{Seed: seed, Steps: 1500}
		// Zeroing happens after invalidation, so a still-pointing slot may
		// read 0 instead of the invalid value when the slot lives INSIDE
		// the freed object; our slots are globals, so the invalid-bit
		// contract holds unchanged.
		res := prog.Run(p, invalidBitCheck)
		if res.Err != nil {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
	}
}

// TestMemcpyHookConforms: enabling the §7 memcpy extension must not break
// any contract (it only adds registrations).
func TestMemcpyHookConforms(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		p := proc.New(dangsan.New())
		if !p.EnableMemcpyHook() {
			t.Fatal("hook unavailable")
		}
		prog := &Program{Seed: seed, Steps: 1500}
		res := prog.Run(p, invalidBitCheck)
		if res.Err != nil {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
	}
}
