// Package conformance generates random — but use-after-free-free — programs
// and runs them under every detector, checking the properties that define
// correct sanitizer behaviour:
//
//   - soundness of the program's view: a well-behaved program (no dangling
//     use) must run identically under every detector — no false positives;
//   - the invalidation contract: after free, every location that still held
//     a pointer into the object carries the detector's invalid value, and
//     every location that was overwritten is untouched;
//   - allocator integrity: no leaks, no double-free reports for valid
//     programs.
//
// The generator drives the proc API directly with a recorded "oracle" of
// where pointers should be after every free, making the checks exact.
package conformance

import (
	"fmt"
	"math/rand"

	"dangsan/internal/proc"
)

// Op kinds the generator emits.
const (
	opMalloc = iota
	opFree
	opStorePtr
	opStoreInt
	opRealloc
	numOps
)

// Program is a deterministic random op sequence, generated once and
// executable against any detector.
type Program struct {
	Seed  int64
	Steps int
}

// object tracks a live allocation in the oracle.
type object struct {
	base, size uint64
}

// slotState is the oracle's view of one pointer slot.
type slotState struct {
	// val is the last value the program stored (0 = none).
	val uint64
	// obj is the live object val points into, nil after that object dies.
	obj *object
	// isPtr distinguishes pointer stores from integer stores.
	isPtr bool
}

// Result is the observable outcome of running a Program.
type Result struct {
	// Slots is the final value of every slot.
	Slots []uint64
	// LiveObjects is the allocator's live count at the end.
	LiveObjects uint64
	// Err is any runtime error (must be nil for conforming detectors).
	Err error
}

// CheckFn validates a slot's value after the object it pointed to died.
// orig is the pointer value the program stored.
type CheckFn func(orig, got uint64) error

// Run executes the program against the process and verifies the oracle at
// every free using check (nil disables invalidation checking, for the
// baseline). It returns the final observable state.
func (pr *Program) Run(p *proc.Process, check CheckFn) Result {
	rng := rand.New(rand.NewSource(pr.Seed))
	th := p.NewThread()
	defer th.Exit()

	const numSlots = 256
	slotBase := p.AllocGlobal(numSlots * 8)
	slots := make([]slotState, numSlots)
	var live []*object

	fail := func(err error) Result {
		return Result{Err: err}
	}

	verifyFree := func(victim *object) error {
		for i := range slots {
			s := &slots[i]
			if s.obj != victim {
				continue
			}
			loc := slotBase + uint64(i)*8
			got, f := p.AddressSpace().LoadWord(loc)
			if f != nil {
				return fmt.Errorf("slot %d: %v", i, f)
			}
			if s.isPtr && check != nil {
				if err := check(s.val, got); err != nil {
					return fmt.Errorf("slot %d after free of 0x%x: %w", i, victim.base, err)
				}
			}
			if !s.isPtr && got != s.val {
				return fmt.Errorf("slot %d: integer %d clobbered to %d", i, s.val, got)
			}
			s.obj = nil // object gone; slot's pointer is now (neutralized) garbage
		}
		return nil
	}

	for step := 0; step < pr.Steps; step++ {
		switch rng.Intn(numOps) {
		case opMalloc:
			size := uint64(rng.Intn(4000) + 1)
			base, err := th.Malloc(size)
			if err != nil {
				return fail(err)
			}
			usable, _ := p.UsableSize(base)
			live = append(live, &object{base: base, size: usable})
		case opFree:
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			victim := live[i]
			live = append(live[:i], live[i+1:]...)
			if err := th.Free(victim.base); err != nil {
				return fail(err)
			}
			if err := verifyFree(victim); err != nil {
				return fail(err)
			}
		case opStorePtr:
			if len(live) == 0 {
				continue
			}
			obj := live[rng.Intn(len(live))]
			i := rng.Intn(numSlots)
			val := obj.base + uint64(rng.Int63n(int64(obj.size)))&^7
			if f := th.StorePtr(slotBase+uint64(i)*8, val); f != nil {
				return fail(f)
			}
			slots[i] = slotState{val: val, obj: obj, isPtr: true}
		case opStoreInt:
			i := rng.Intn(numSlots)
			val := rng.Uint64() >> 16 // avoid accidental canonical-pointer look
			if f := th.StoreInt(slotBase+uint64(i)*8, val); f != nil {
				return fail(f)
			}
			slots[i] = slotState{val: val, isPtr: false}
		case opRealloc:
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			obj := live[i]
			newSize := uint64(rng.Intn(8000) + 1)
			newBase, err := th.Realloc(obj.base, newSize)
			if err != nil {
				return fail(err)
			}
			usable, _ := p.UsableSize(newBase)
			if newBase == obj.base {
				// In place: existing pointers stay valid; only the extent
				// changed.
				obj.size = usable
				continue
			}
			// Moved: every slot pointing into the old object must obey the
			// invalidation contract, as on free.
			if err := verifyFree(obj); err != nil {
				return fail(err)
			}
			live[i] = &object{base: newBase, size: usable}
		}
	}
	// Tear down remaining objects, still checking.
	for _, obj := range live {
		if err := th.Free(obj.base); err != nil {
			return fail(err)
		}
		if err := verifyFree(obj); err != nil {
			return fail(err)
		}
	}

	res := Result{LiveObjects: p.Allocator().Stats().LiveObjects}
	for i := range slots {
		v, f := p.AddressSpace().LoadWord(slotBase + uint64(i)*8)
		if f != nil {
			return fail(fmt.Errorf("final slot %d: %v", i, f))
		}
		res.Slots = append(res.Slots, v)
	}
	return res
}
