package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Add(0, 5)
	c.Inc(1)
	g.Set(7)
	g.Add(-1)
	h.Observe(0, 100)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil instrument returned nonzero")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry returned instruments")
	}
	r.RegisterFunc("x", func() int64 { return 1 })
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestCounterShardingAggregates(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const threads = 8
	const per = 10000
	for tid := int32(0); tid < threads; tid++ {
		wg.Add(1)
		go func(tid int32) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(tid)
			}
		}(tid)
	}
	wg.Wait()
	if got := c.Value(); got != threads*per {
		t.Fatalf("Value = %d, want %d", got, threads*per)
	}
	var shards int
	c.PerShard(func(shard int, v uint64) {
		shards++
		if v != per {
			t.Errorf("shard %d = %d, want %d", shard, v, per)
		}
	})
	if shards != threads {
		t.Fatalf("PerShard visited %d shards, want %d", shards, threads)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(100)
	g.Add(-30)
	if got := g.Value(); got != 70 {
		t.Fatalf("gauge = %d", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	// 0 → bucket 0; 1 → (0,1]; 2,3 → (1,3]; 4..7 → (3,7].
	for _, v := range []uint64{0, 1, 2, 3, 4, 5, 6, 7} {
		h.Observe(0, v)
	}
	s := h.snapshot()
	if s.Count != 8 || s.Sum != 28 || s.Max != 7 {
		t.Fatalf("snapshot %+v", s)
	}
	want := []Bucket{{Le: 0, Count: 1}, {Le: 1, Count: 1}, {Le: 3, Count: 2}, {Le: 7, Count: 4}}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Fatalf("buckets %+v, want %+v", s.Buckets, want)
	}
	if m := s.Mean(); m != 3.5 {
		t.Fatalf("mean = %v", m)
	}
	if q := s.Quantile(0); q != 0 {
		t.Fatalf("p0 = %d", q)
	}
	if q := s.Quantile(0.5); q != 3 {
		t.Fatalf("p50 = %d, want 3", q)
	}
	if q := s.Quantile(1); q != 7 {
		t.Fatalf("p100 = %d, want 7", q)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	var h Histogram
	s := h.snapshot()
	if s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

// The -metrics acceptance path: a snapshot marshalled by dangsan-bench
// must decode to an identical snapshot in dangsan-stats.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("pointerlog.registers").Add(3, 42)
	r.Gauge("proc.threads").Set(4)
	r.RegisterFunc("tcmalloc.live_bytes", func() int64 { return 1 << 20 })
	r.Histogram("pointerlog.register_ns").Observe(0, 900)
	r.Histogram("pointerlog.register_ns").Observe(1, 90)
	r.RegisterObject("tcmalloc.sizeclass", func() any {
		return []map[string]int{{"class": 3, "allocs": 7}}
	})

	s := r.Snapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip diverged:\n before %+v\n after  %+v", s, back)
	}
	// And a second marshal is byte-identical (deterministic output).
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("re-marshal diverged:\n%s\n%s", data, data2)
	}
}

func TestRegistryIdempotentAttach(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x")
	b := r.Counter("x")
	if a != b {
		t.Fatal("Counter not idempotent")
	}
	a.Add(0, 1)
	b.Add(1, 2)
	if r.Snapshot().Counters["x"] != 3 {
		t.Fatal("shared counter did not accumulate")
	}
	// RegisterFunc rebinds: last owner wins.
	r.RegisterFunc("f", func() int64 { return 1 })
	r.RegisterFunc("f", func() int64 { return 2 })
	if r.Snapshot().Gauges["f"] != 2 {
		t.Fatal("RegisterFunc did not rebind")
	}
}

func TestFormatSections(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(0, 5)
	r.Gauge("b.gauge").Set(-2)
	r.Histogram("c.hist").Observe(0, 8)
	r.RegisterObject("d.obj", func() any { return map[string]int{"k": 1} })
	out := r.Snapshot().Format()
	for _, want := range []string{"counters:", "a.count", "gauges:", "b.gauge", "-2", "histograms:", "c.hist", "objects:", "d.obj"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format output missing %q:\n%s", want, out)
		}
	}
}
