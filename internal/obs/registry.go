package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a named collection of instruments. Get-or-create accessors
// make attachment idempotent: two subsystems (or two successive processes
// in one benchmark run) asking for the same counter name share the
// instrument and their increments accumulate, while RegisterFunc rebinds
// a gauge function to the most recently attached owner.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
	objects  map[string]func() any
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() int64),
		objects:  make(map[string]func() any),
	}
}

// Counter returns the counter registered under name, creating it if
// needed. Safe to call from multiple goroutines; nil receiver returns a
// nil (no-op) instrument.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterFunc registers (or rebinds) a gauge evaluated at snapshot time —
// for values another subsystem already tracks, like the allocator's live
// bytes, where a second counter would just drift from the first.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// RegisterObject registers (or rebinds) a structured value evaluated and
// JSON-marshalled at snapshot time — for breakdowns that do not fit a
// scalar, like per-sizeclass allocation tables.
func (r *Registry) RegisterObject(name string, fn func() any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.objects[name] = fn
}

// Snapshot is the JSON-exportable aggregate view of a Registry. Gauges and
// func gauges share the gauges section: both are instantaneous values.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Objects    map[string]json.RawMessage   `json:"objects,omitempty"`
}

// Snapshot evaluates every instrument. Counters and histograms aggregate
// their shards; func gauges run their callbacks. The result is
// consistent-enough, not atomic: instruments recorded during the snapshot
// land in either this one or the next.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges)+len(r.funcs) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges)+len(r.funcs))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
		for name, fn := range r.funcs {
			s.Gauges[name] = fn()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	if len(r.objects) > 0 {
		s.Objects = make(map[string]json.RawMessage, len(r.objects))
		for name, fn := range r.objects {
			raw, err := json.Marshal(fn())
			if err != nil {
				continue
			}
			s.Objects[name] = raw
		}
	}
	return s
}

// MarshalJSONIndent renders the snapshot as indented JSON. Map keys are
// sorted by encoding/json, so output is deterministic.
func (s Snapshot) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ParseSnapshot decodes a snapshot previously produced by marshalling a
// Snapshot (the dangsan-bench -metrics format).
func ParseSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: bad snapshot: %w", err)
	}
	return s, nil
}

// Format pretty-prints the snapshot for terminals: sorted sections for
// counters, gauges, histograms (count/mean/p50/p99/max), and raw objects.
func (s Snapshot) Format() string {
	var b strings.Builder
	section := func(title string, names []string, row func(name string)) {
		if len(names) == 0 {
			return
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "%s:\n", title)
		for _, name := range names {
			row(name)
		}
	}
	section("counters", keys(s.Counters), func(name string) {
		fmt.Fprintf(&b, "  %-40s %d\n", name, s.Counters[name])
	})
	section("gauges", keys(s.Gauges), func(name string) {
		fmt.Fprintf(&b, "  %-40s %d\n", name, s.Gauges[name])
	})
	section("histograms", keys(s.Histograms), func(name string) {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "  %-40s count=%d mean=%.1f p50<=%d p99<=%d max=%d\n",
			name, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max)
	})
	section("objects", keys(s.Objects), func(name string) {
		fmt.Fprintf(&b, "  %-40s %s\n", name, s.Objects[name])
	})
	return b.String()
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
