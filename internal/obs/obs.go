// Package obs is the runtime observability layer: allocation-free sharded
// counters, gauges, and power-of-two-bucket histograms behind a named
// registry that snapshots to JSON.
//
// The design constraints come from where these metrics sit — inside the
// pointer-store hot path that the rest of the system spent two PRs making
// fast:
//
//   - recording never allocates and never takes a lock: counters and
//     histograms are fixed arrays of atomics, sharded and cache-line
//     padded so that in steady state each simulated thread RMWs a line no
//     other thread touches (the same argument as pointerlog's statShard);
//   - every instrument is nil-receiver safe: a subsystem holds plain
//     pointers that are nil until a Registry is attached, so the
//     metrics-off cost of an instrumented site is one predicted branch;
//   - reading is lazy: Snapshot aggregates shards and evaluates gauge
//     functions only when asked, so an attached-but-unread registry costs
//     nothing beyond the hot-path increments.
package obs

import "sync/atomic"

// counterShards is the number of counter shards; a power of two so the
// shard map is a mask. Matches pointerlog's statShardCount: 64 shards
// cover the paper's Fig. 10 thread sweep without collisions.
const counterShards = 64

// paddedUint64 is one cache-line-padded atomic counter cell.
type paddedUint64 struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a cumulative, monotonically increasing counter sharded by
// thread id. The zero value is ready to use; a nil *Counter is a no-op,
// which is how call sites stay branch-cheap when metrics are off.
type Counter struct {
	shards [counterShards]paddedUint64
}

// Add increments the counter by n on the shard for tid. Negative or
// colliding tids share a shard, which costs contention, never correctness.
func (c *Counter) Add(tid int32, n uint64) {
	if c == nil {
		return
	}
	c.shards[uint32(tid)&(counterShards-1)].v.Add(n)
}

// Inc increments the counter by one on the shard for tid.
func (c *Counter) Inc(tid int32) { c.Add(tid, 1) }

// Value aggregates all shards.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var n uint64
	for i := range c.shards {
		n += c.shards[i].v.Load()
	}
	return n
}

// PerShard calls fn for every shard with a nonzero total, in shard order.
// Shard index is tid&63, so for the dense small thread ids the simulated
// process hands out, a shard is a thread.
func (c *Counter) PerShard(fn func(shard int, v uint64)) {
	if c == nil {
		return
	}
	for i := range c.shards {
		if v := c.shards[i].v.Load(); v != 0 {
			fn(i, v)
		}
	}
}

// Gauge is a settable instantaneous value. A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by d (which may be negative).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
