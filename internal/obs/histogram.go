package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histShards is the number of histogram shards. Histograms carry 67 words
// of state per shard, so they use fewer shards than counters; 16 still
// separates the writers of any workload this repository runs.
const histShards = 16

// numBuckets is the number of power-of-two buckets: bucket k holds values
// v with bits.Len64(v) == k, i.e. v in [2^(k-1), 2^k), with bucket 0
// holding exactly zero. 65 buckets cover the full uint64 range.
const numBuckets = 65

type histShard struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

// Histogram is a fixed-bucket log2 histogram: recording is two atomic adds
// and one atomic increment into the value's power-of-two bucket, with no
// allocation and no locking. It is meant for latencies in nanoseconds and
// small cardinalities like fan-out widths, where factor-of-two resolution
// is plenty. A nil *Histogram is a no-op.
type Histogram struct {
	shards [histShards]histShard
	max    atomic.Uint64
}

// Observe records v on the shard for tid.
func (h *Histogram) Observe(tid int32, v uint64) {
	if h == nil {
		return
	}
	sh := &h.shards[uint32(tid)&(histShards-1)]
	sh.count.Add(1)
	sh.sum.Add(v)
	sh.buckets[bits.Len64(v)].Add(1)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Since records the nanoseconds elapsed from start, the latency-timer
// idiom: callers check Enabled (or a nil instrument pointer) before
// reading the clock so a disabled histogram costs no time.Now call.
func (h *Histogram) Since(tid int32, start time.Time) {
	if h == nil {
		return
	}
	h.Observe(tid, uint64(time.Since(start)))
}

// snapshot aggregates the shards.
func (h *Histogram) snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	var buckets [numBuckets]uint64
	for i := range h.shards {
		sh := &h.shards[i]
		s.Count += sh.count.Load()
		s.Sum += sh.sum.Load()
		for b := range sh.buckets {
			buckets[b] += sh.buckets[b].Load()
		}
	}
	s.Max = h.max.Load()
	for b, n := range buckets {
		if n == 0 {
			continue
		}
		le := uint64(0)
		if b > 0 {
			le = 1<<uint(b) - 1
		}
		s.Buckets = append(s.Buckets, Bucket{Le: le, Count: n})
	}
	return s
}

// Bucket is one populated histogram bucket: Count values were <= Le (and
// greater than the previous bucket's Le).
type Bucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is the aggregated, JSON-exportable view of a
// Histogram. Only populated buckets are listed.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Max     uint64   `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the average observed value, 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1): the
// inclusive upper edge of the bucket containing it. Resolution is a
// factor of two, which is what log2 buckets buy.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	// Nearest-rank: the smallest bucket whose cumulative count reaches
	// ceil(q*Count) observations.
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen uint64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			return b.Le
		}
	}
	return s.Max
}
