package differ

import (
	"runtime"
	"sort"
	"sync"

	"dangsan/internal/irgen"
)

// SweepOptions configures a multi-seed differential sweep.
type SweepOptions struct {
	// Start is the first seed; the sweep covers [Start, Start+Seeds).
	Start int64
	// Seeds is the number of programs to generate and check (default 100).
	Seeds int
	// Mutate additionally runs each seed's mutated variant through the
	// detector matrix.
	Mutate bool
	// Workers bounds concurrent seeds (0 = GOMAXPROCS). Each seed's matrix
	// runs serially within one worker; seeds are independent.
	Workers int
	// MaxDivergences stops the sweep early once this many divergences have
	// been collected (0 = unbounded). The report still counts every seed
	// started.
	MaxDivergences int
}

// SweepReport aggregates a sweep's outcome.
type SweepReport struct {
	Seeds int
	// Runs is the number of matrix cells executed (benign and mutation).
	Runs int
	// Divergences lists every oracle violation, ordered by seed.
	Divergences []Divergence
	// MutationDetectors / MutationDetected aggregate the mutation sweeps:
	// detector cells exercised and cells that caught the injected bug.
	// Detection rate below 100% is a false negative.
	MutationDetectors int
	MutationDetected  int
}

// seedConfig is the per-seed program shape policy: thread count cycles
// through 0/1/2 so the sweep covers single-threaded programs (where the
// freesentry cells run) and racy multi-threaded ones.
func seedConfig(seed int64) irgen.Config {
	return irgen.Config{Threads: int(seed % 3)}
}

// Sweep checks Seeds consecutive seeds against the full matrix in parallel.
func Sweep(opts SweepOptions) SweepReport {
	if opts.Seeds <= 0 {
		opts.Seeds = 100
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.Seeds {
		workers = opts.Seeds
	}

	var (
		mu     sync.Mutex
		report SweepReport
		next   int64 = opts.Start
		limit        = opts.Start + int64(opts.Seeds)
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				over := opts.MaxDivergences > 0 && len(report.Divergences) >= opts.MaxDivergences
				if next >= limit || over {
					mu.Unlock()
					return
				}
				seed := next
				next++
				report.Seeds++
				mu.Unlock()

				cfg := seedConfig(seed)
				prog := irgen.Generate(seed, cfg)
				divs := CheckSeed(seed, cfg)
				runs := len(Specs(prog.Multithreaded))
				var mres MutationResult
				if opts.Mutate {
					mres = CheckMutation(seed, cfg)
					runs += len(MutationSpecs(prog.Multithreaded))
				}

				mu.Lock()
				report.Runs += runs
				report.Divergences = append(report.Divergences, divs...)
				report.Divergences = append(report.Divergences, mres.Divergences...)
				report.MutationDetectors += mres.Detectors
				report.MutationDetected += mres.Detected
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	sort.SliceStable(report.Divergences, func(i, j int) bool {
		return report.Divergences[i].Seed < report.Divergences[j].Seed
	})
	return report
}
