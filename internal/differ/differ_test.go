package differ

import (
	"fmt"
	"sync/atomic"
	"testing"

	"dangsan/internal/irgen"
	"dangsan/internal/pointerlog"
)

// TestDifferMatrix is the acceptance gate: it sweeps ≥500 seeded programs
// (≥150 under -short) across the full mode × detector × config matrix and
// requires zero divergences, and runs every seed's mutated variant
// requiring 100% detection from every detector.
func TestDifferMatrix(t *testing.T) {
	seeds := 500
	if testing.Short() {
		seeds = 150
	}
	var detectors, detected, runs atomic.Int64
	t.Run("seeds", func(t *testing.T) {
		for i := 0; i < seeds; i++ {
			seed := int64(i)
			t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
				t.Parallel()
				cfg := seedConfig(seed)
				for _, d := range CheckSeed(seed, cfg) {
					t.Errorf("benign divergence: %s", d)
				}
				res := CheckMutation(seed, cfg)
				for _, d := range res.Divergences {
					t.Errorf("mutation divergence: %s", d)
				}
				detectors.Add(int64(res.Detectors))
				detected.Add(int64(res.Detected))
				mt := cfg.Threads > 0
				runs.Add(int64(len(Specs(mt)) + len(MutationSpecs(mt))))
			})
		}
	})
	if detected.Load() != detectors.Load() {
		t.Errorf("mutation detection %d/%d: false negatives", detected.Load(), detectors.Load())
	}
	t.Logf("%d seeds, %d matrix runs, mutation detection %d/%d",
		seeds, runs.Load(), detected.Load(), detectors.Load())
}

// TestMatrixShape pins the matrix dimensions so a silently shrunken sweep
// cannot pass as a full one: 16 dangsan configs (incl. 2 quarantine cells
// and 2 tiered cells) × 2 instrumented modes, 3 baseline cells, 2 dangnull
// cells, 2 xtag cells, 2 camp cells, and 2 freesentry cells that must
// disappear exactly when the program is multi-threaded.
func TestMatrixShape(t *testing.T) {
	if n := len(DangSanConfigs()); n != 16 {
		t.Fatalf("dangsan configs = %d, want 16", n)
	}
	if n := len(Specs(false)); n != 3+32+2+2+2+2 {
		t.Fatalf("single-threaded specs = %d, want 43", n)
	}
	if n := len(Specs(true)); n != 3+32+2+2+2 {
		t.Fatalf("multi-threaded specs = %d, want 41", n)
	}
	for _, sp := range Specs(true) {
		if sp.Det == DetFreeSentry {
			t.Fatalf("freesentry cell %s in a multi-threaded matrix", sp.Name())
		}
		if sp.Mode == ModeRef && sp.Det != DetNone {
			t.Fatalf("uninstrumented cell %s with a detector", sp.Name())
		}
	}
}

// TestCheckerCatchesTampering is the negative control for the oracle
// checker itself: corrupt each oracle clause of a known-good program and
// require the corresponding check to fire. A checker that cannot fail
// proves nothing.
func TestCheckerCatchesTampering(t *testing.T) {
	var prog *irgen.Program
	var seed int64
	// Pick a seed whose program has output, dangling cells, and heap
	// invalidations, so every tampering case has something to corrupt.
	for seed = 0; seed < 500; seed++ {
		p := irgen.Generate(seed, irgen.Config{})
		dangling := false
		for _, c := range p.Oracle.Cells {
			if c.Kind == irgen.CellDangling {
				dangling = true
				break
			}
		}
		if dangling && len(p.Oracle.Output) > 0 && p.Oracle.InvalidatedAll > 0 &&
			p.Oracle.InvalidatedHeap > 0 && p.Oracle.LiveAtExit > 0 {
			prog = p
			break
		}
	}
	if prog == nil {
		t.Fatal("no seed with a rich enough oracle in 0..499")
	}
	sp := Spec{Mode: ModeInstr, Det: DetDangSan, Cfg: pointerlog.DefaultConfig()}
	if msgs := checkCell(prog, sp); len(msgs) != 0 {
		t.Fatalf("untampered program diverges: %v", msgs)
	}

	cases := []struct {
		name   string
		tamper func(o *irgen.Oracle)
		spec   Spec
	}{
		{"output", func(o *irgen.Oracle) { o.Output[0]++ }, sp},
		{"ret", func(o *irgen.Oracle) { o.Ret++ }, sp},
		{"leak", func(o *irgen.Oracle) { o.LiveAtExit++ }, sp},
		{"invalidated-all", func(o *irgen.Oracle) { o.InvalidatedAll++ }, sp},
		{"tracked-objects", func(o *irgen.Oracle) { o.Mallocs += 5 }, sp},
		{"cell-int", func(o *irgen.Oracle) {
			for i := range o.Cells {
				if o.Cells[i].Kind == irgen.CellInt {
					o.Cells[i].Int += 3
					return
				}
			}
		}, sp},
		{"cell-kind", func(o *irgen.Oracle) {
			for i := range o.Cells {
				if o.Cells[i].Kind == irgen.CellDangling {
					o.Cells[i].Kind = irgen.CellInt
					return
				}
			}
		}, sp},
		{"invalidated-heap", func(o *irgen.Oracle) { o.InvalidatedHeap++ },
			Spec{Mode: ModeInstr, Det: DetDangNull}},
		{"xtag-tagged-objects", func(o *irgen.Oracle) { o.Mallocs += 5 },
			Spec{Mode: ModeInstr, Det: DetXTag}},
		{"camp-tracked-objects", func(o *irgen.Oracle) { o.Mallocs += 5 },
			Spec{Mode: ModeInstr, Det: DetCAMP}},
		{"xtag-cell-kind", func(o *irgen.Oracle) {
			for i := range o.Cells {
				if o.Cells[i].Kind == irgen.CellDangling {
					o.Cells[i].Kind = irgen.CellInt
					return
				}
			}
		}, Spec{Mode: ModeInstr, Det: DetXTag}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := *prog
			bad.Oracle = *prog.Oracle.Clone()
			tc.tamper(&bad.Oracle)
			if msgs := checkCell(&bad, tc.spec); len(msgs) == 0 {
				t.Errorf("checker missed tampered %s", tc.name)
			}
		})
	}
}

// TestSweepReportsDivergences exercises the parallel sweep driver on a
// small window and cross-checks its run accounting.
func TestSweep(t *testing.T) {
	rep := Sweep(SweepOptions{Start: 1000, Seeds: 6, Mutate: true})
	if rep.Seeds != 6 {
		t.Fatalf("seeds swept = %d, want 6", rep.Seeds)
	}
	if len(rep.Divergences) != 0 {
		t.Fatalf("divergences: %v", rep.Divergences)
	}
	if rep.MutationDetected != rep.MutationDetectors || rep.MutationDetectors == 0 {
		t.Fatalf("mutation detection %d/%d", rep.MutationDetected, rep.MutationDetectors)
	}
	var wantRuns int
	for seed := int64(1000); seed < 1006; seed++ {
		mt := seedConfig(seed).Threads > 0
		wantRuns += len(Specs(mt)) + len(MutationSpecs(mt))
	}
	if rep.Runs != wantRuns {
		t.Fatalf("runs = %d, want %d", rep.Runs, wantRuns)
	}
}
