package differ

import (
	"testing"

	"dangsan/internal/irgen"
)

// FuzzGeneratedProgram lets the fuzzer drive the generator's whole input
// space — seed, program size, threading, mutation — through the full
// differential matrix. Anything the 500-seed sweep's fixed policy misses
// (odd statement counts, heavy thread counts at tiny sizes, mutation on
// multi-threaded programs) is reachable here, and failures minimize to a
// (seed, shape) pair that reproduces deterministically.
func FuzzGeneratedProgram(f *testing.F) {
	f.Add(int64(1), int64(12), int64(0), false)
	f.Add(int64(7), int64(12), int64(2), false)
	f.Add(int64(42), int64(30), int64(1), false)
	f.Add(int64(3), int64(5), int64(0), true)
	f.Add(int64(99), int64(18), int64(4), true)
	f.Add(int64(-11), int64(2), int64(3), false)
	f.Fuzz(func(t *testing.T, seed, stmts, threads int64, mutate bool) {
		cfg := irgen.Config{
			Stmts:   1 + int(uint64(stmts)%30),
			Threads: int(uint64(threads) % 5),
		}
		if mutate {
			res := CheckMutation(seed, cfg)
			for _, d := range res.Divergences {
				t.Errorf("mutation divergence: %s", d)
			}
			if res.Detected != res.Detectors {
				t.Errorf("mutation detection %d/%d", res.Detected, res.Detectors)
			}
			return
		}
		for _, d := range CheckSeed(seed, cfg) {
			t.Errorf("divergence: %s", d)
		}
	})
}
