// Package differ is the differential oracle harness: it runs irgen-generated
// programs through the full irparse → (ir/opt) → instrument → interp pipeline
// under every detector and pointer-log configuration, and compares each run
// against the program's recorded ground truth.
//
// The matrix has three axes:
//
//   - instrumentation mode: the uninstrumented reference (baseline detector
//     only — it establishes what the program itself computes), plain
//     instrumentation, and optimize-then-instrument with the static
//     hoisting/elision optimizations on. Divergence here means the
//     instrumentation or optimizer changed program-visible behaviour.
//   - detector: dangsan, dangnull, freesentry, xtag and camp, plus the
//     no-op baseline. Divergence means a detector perturbed the program or
//     missed/over-did an invalidation relative to its published contract
//     (dangsan and freesentry invalidate pointers anywhere; dangnull only
//     heap-resident ones; the checked-dereference pair — xtag's generation
//     tags and camp's freed-range registry — never rewrite memory at all,
//     so their dangling cells keep baseline-like values and the oracle
//     instead probes that a use of the stale pointer would trap). FreeSentry
//     is thread-unsafe by design and is skipped for multi-threaded
//     programs, as in the paper. Under xtag every pointer in memory carries
//     its object's tag, so the cell checks also verify tagged pointers
//     round-trip through stores, loads and gep arithmetic bit-for-bit.
//   - dangsan pointer-log config: lookback {0,4,8} × compression {on,off} ×
//     hash fallback {forced, effectively off}, plus two epoch-quarantine
//     cells (deferred free, one sized to overflow its byte budget). The
//     invalidation count must be identical across the inline configs —
//     dedup and representation tuning may never change what gets
//     invalidated. Quarantine cells invalidate at epoch boundaries instead
//     of inline, so a cell overwritten before its epoch drains is
//     legitimately classified stale: their count is only bounded, by
//     [cells still dangling at exit, dangling-at-free total]. The final
//     memory state must still be exact — the interpreter quiesces the
//     quarantine before the run result is read. Audit mode is always on, so
//     the log-byte accounting identity (extended with the quarantined term)
//     is cross-checked at every free.
//
// Mutation mode (CheckMutation) generates the same program with one injected
// dangling dereference and asserts every detector traps on it (no false
// negatives) while the baseline runs to completion.
package differ

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"dangsan/internal/detectors"
	"dangsan/internal/detectors/camp"
	"dangsan/internal/detectors/dangnull"
	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/detectors/freesentry"
	"dangsan/internal/detectors/xtag"
	"dangsan/internal/instrument"
	"dangsan/internal/interp"
	"dangsan/internal/ir/opt"
	"dangsan/internal/irgen"
	"dangsan/internal/irparse"
	"dangsan/internal/pointerlog"
	"dangsan/internal/vmem"
)

// Mode selects the instrumentation pipeline variant.
type Mode int

const (
	// ModeRef runs the parsed module as-is: no RegPtr instrumentation. Only
	// meaningful with the baseline detector.
	ModeRef Mode = iota
	// ModeInstr instruments with all static optimizations off.
	ModeInstr
	// ModeInstrOpt runs ir/opt first, then instruments with hoisting and
	// arithmetic elision enabled.
	ModeInstrOpt
)

func (m Mode) String() string {
	switch m {
	case ModeRef:
		return "ref"
	case ModeInstr:
		return "instr"
	default:
		return "instr+opt"
	}
}

// DetKind names a detector in the matrix.
type DetKind int

const (
	DetNone DetKind = iota
	DetDangSan
	DetDangNull
	DetFreeSentry
	DetXTag
	DetCAMP
)

func (d DetKind) String() string {
	switch d {
	case DetNone:
		return "baseline"
	case DetDangSan:
		return "dangsan"
	case DetDangNull:
		return "dangnull"
	case DetXTag:
		return "xtag"
	case DetCAMP:
		return "camp"
	default:
		return "freesentry"
	}
}

// Spec is one cell of the run matrix.
type Spec struct {
	Mode Mode
	Det  DetKind
	Cfg  pointerlog.Config // dangsan only
}

// Name renders a stable human-readable cell label for divergence reports.
func (s Spec) Name() string {
	if s.Det != DetDangSan {
		return fmt.Sprintf("%s/%s", s.Mode, s.Det)
	}
	hash := "off"
	if s.Cfg.MaxLogEntries < pointerlog.DefaultMaxLogEntries {
		hash = "on"
	}
	comp := "off"
	if s.Cfg.Compression {
		comp = "on"
	}
	quar := ""
	if s.Cfg.QuarantineBytes > 0 {
		quar = fmt.Sprintf(",quar=%dB/%d", s.Cfg.QuarantineBytes, s.Cfg.QuarantineEpoch)
	}
	spill := ""
	if s.Cfg.ColdSpillBytes > 0 {
		spill = fmt.Sprintf(",spill=%dB", s.Cfg.ColdSpillBytes)
	}
	return fmt.Sprintf("%s/dangsan[lb=%d,comp=%s,hash=%s%s%s]",
		s.Mode, s.Cfg.Lookback, comp, hash, quar, spill)
}

// DangSanConfigs enumerates the pointer-log configurations the sweep
// crosses: lookback 0/4/8 × compression on/off × hash fallback forced or
// effectively disabled. MaxLogEntries=12 is the validated minimum, so the
// hash fallback engages after the embedded entries fill; 1<<20 entries is
// never reached by generated programs, keeping the log in list mode.
func DangSanConfigs() []pointerlog.Config {
	var out []pointerlog.Config
	for _, lb := range []int{0, 4, 8} {
		for _, comp := range []bool{true, false} {
			for _, maxEntries := range []int{1 << 20, 12} {
				out = append(out, pointerlog.Config{
					Lookback:      lb,
					MaxLogEntries: maxEntries,
					Compression:   comp,
				})
			}
		}
	}
	// Epoch-quarantine cells: deferred free with synchronous drains (the
	// deterministic mode — background workers would race the final-state
	// check's view of the audit log). The narrow epoch exercises frequent
	// retirement; the 2 KiB budget overflows almost immediately, exercising
	// the fail-open synchronous-drain path on every seed.
	for _, q := range []struct {
		bytes uint64
		epoch int
	}{
		{1 << 20, 4},
		{2048, 64},
	} {
		out = append(out, pointerlog.Config{
			Lookback:        4,
			MaxLogEntries:   128,
			Compression:     true,
			QuarantineBytes: q.bytes,
			QuarantineEpoch: q.epoch,
			QuarantineSync:  true,
		})
	}
	// Tiered cells: hash fallback forced and the cold tier armed at the
	// minimum spill threshold, so location sets that outgrow one table
	// spill to disk segments and free-time invalidation streams them back.
	// One inline-free cell, and one crossing spills with synchronous epoch
	// drains so segments retire through the epoch-boundary compaction.
	out = append(out, pointerlog.Config{
		Lookback:       0,
		MaxLogEntries:  12,
		Compression:    false,
		ColdSpillBytes: pointerlog.MinColdSpillBytes,
	})
	out = append(out, pointerlog.Config{
		Lookback:        4,
		MaxLogEntries:   12,
		Compression:     true,
		ColdSpillBytes:  pointerlog.MinColdSpillBytes,
		QuarantineBytes: 1 << 20,
		QuarantineEpoch: 4,
		QuarantineSync:  true,
	})
	return out
}

// Specs builds the full matrix for one program. FreeSentry cells are
// omitted for multi-threaded programs (its tracking structures are
// deliberately unsynchronized; see the freesentry package comment).
func Specs(multithreaded bool) []Spec {
	specs := []Spec{
		{Mode: ModeRef, Det: DetNone},
		{Mode: ModeInstr, Det: DetNone},
		{Mode: ModeInstrOpt, Det: DetNone},
	}
	for _, cfg := range DangSanConfigs() {
		specs = append(specs,
			Spec{Mode: ModeInstr, Det: DetDangSan, Cfg: cfg},
			Spec{Mode: ModeInstrOpt, Det: DetDangSan, Cfg: cfg})
	}
	specs = append(specs,
		Spec{Mode: ModeInstr, Det: DetDangNull},
		Spec{Mode: ModeInstrOpt, Det: DetDangNull})
	// The checked-dereference pair is lock-free on the check path and safe
	// for multi-threaded programs. The optimized cells additionally elide
	// statically-safe checks (ElideDerefChecks), so instr vs instr+opt
	// differentially tests the elision proof.
	specs = append(specs,
		Spec{Mode: ModeInstr, Det: DetXTag},
		Spec{Mode: ModeInstrOpt, Det: DetXTag},
		Spec{Mode: ModeInstr, Det: DetCAMP},
		Spec{Mode: ModeInstrOpt, Det: DetCAMP})
	if !multithreaded {
		specs = append(specs,
			Spec{Mode: ModeInstr, Det: DetFreeSentry},
			Spec{Mode: ModeInstrOpt, Det: DetFreeSentry})
	}
	return specs
}

// Divergence is one oracle violation in one matrix cell.
type Divergence struct {
	Seed int64
	Run  string
	Msg  string
}

func (d Divergence) String() string {
	return fmt.Sprintf("seed %d [%s]: %s", d.Seed, d.Run, d.Msg)
}

// execution is one finished run plus handles for state inspection.
type execution struct {
	out  []int64
	ret  uint64
	trap *interp.Trap
	rt   *interp.Runtime
	ds   *dangsan.Detector
	dn   *dangnull.Detector
	fs   *freesentry.Detector
	xt   *xtag.Detector
	cp   *camp.Detector
}

// run parses the program source fresh (instrumentation mutates the module,
// so cells must not share one), applies the spec's pipeline, and executes.
func run(prog *irgen.Program, sp Spec) (*execution, error) {
	m, err := irparse.Parse(prog.Source)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	var iopts instrument.Options
	switch sp.Mode {
	case ModeInstr:
		iopts = instrument.Options{}
	case ModeInstrOpt:
		if _, err := opt.Optimize(m); err != nil {
			return nil, fmt.Errorf("optimize: %w", err)
		}
		iopts = instrument.DefaultOptions()
	}
	ex := &execution{}
	var det detectors.Detector = detectors.None{}
	switch sp.Det {
	case DetDangSan:
		ex.ds = dangsan.NewWithOptions(dangsan.Options{Config: sp.Cfg, Audit: true})
		det = ex.ds
	case DetDangNull:
		ex.dn = dangnull.New()
		det = ex.dn
	case DetFreeSentry:
		ex.fs = freesentry.New()
		det = ex.fs
	case DetXTag:
		ex.xt = xtag.New()
		det = ex.xt
	case DetCAMP:
		ex.cp = camp.New()
		det = ex.cp
	}
	if sp.Mode != ModeRef {
		if _, err := instrument.Pass(m, iopts); err != nil {
			return nil, fmt.Errorf("instrument: %w", err)
		}
	}
	var buf bytes.Buffer
	ex.rt = interp.New(m, det, interp.Options{Output: &buf})
	res, err := ex.rt.Run()
	if err != nil {
		return nil, fmt.Errorf("run: %w", err)
	}
	ex.ret = res.Ret
	ex.trap = res.Trap
	ex.out, err = parseOutput(buf.String())
	if err != nil {
		return nil, fmt.Errorf("output: %w", err)
	}
	return ex, nil
}

func parseOutput(s string) ([]int64, error) {
	var out []int64
	for _, ln := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		if ln == "" {
			continue
		}
		v, err := strconv.ParseInt(ln, 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// CheckSeed generates the benign program for (seed, cfg), runs the full
// matrix, and returns every divergence found (nil means the oracle held in
// all cells).
func CheckSeed(seed int64, cfg irgen.Config) []Divergence {
	cfg.Mutate = false
	prog := irgen.Generate(seed, cfg)
	var divs []Divergence
	for _, sp := range Specs(prog.Multithreaded) {
		for _, msg := range checkCell(prog, sp) {
			divs = append(divs, Divergence{Seed: seed, Run: sp.Name(), Msg: msg})
		}
	}
	return divs
}

// checkCell runs one matrix cell and verifies every oracle clause that
// applies to it.
func checkCell(prog *irgen.Program, sp Spec) []string {
	ex, err := run(prog, sp)
	if err != nil {
		return []string{err.Error()}
	}
	if ex.ds != nil {
		// Tiered cells leave a spill file behind; the run is quiescent
		// (interp.Run drains before returning) and stats stay readable.
		defer ex.ds.Close()
	}
	var msgs []string
	fail := func(format string, a ...any) {
		msgs = append(msgs, fmt.Sprintf(format, a...))
	}
	o := &prog.Oracle

	// Program-visible behaviour: no trap, exact output, exact return value.
	if ex.trap != nil {
		return append(msgs, fmt.Sprintf("unexpected trap: %v", ex.trap))
	}
	if !int64SlicesEqual(ex.out, o.Output) {
		fail("output %v, want %v", ex.out, o.Output)
	}
	if int64(ex.ret) != o.Ret {
		fail("ret %d, want %d", int64(ex.ret), o.Ret)
	}

	// Allocator-visible behaviour: leak check.
	if live := ex.rt.Process().Allocator().Stats().LiveObjects; live != uint64(o.LiveAtExit) {
		fail("live objects %d, want %d", live, o.LiveAtExit)
	}

	// Counters first: checkCells' latent-detection probes (xtag's CheckDeref
	// on dangling cells) bump the detector's check/mismatch stats, so the
	// benign-run accounting must be read before probing.
	msgs = append(msgs, checkCounters(o, sp, ex)...)
	msgs = append(msgs, checkCells(prog, sp, ex)...)
	return msgs
}

// checkCells verifies the final state of every oracle cell: global slots
// and fields of live objects. Live object base addresses are recovered
// through their anchor slots, so the check is address-relocation-independent
// (AllocPad differs across detectors).
func checkCells(prog *irgen.Program, sp Spec, ex *execution) []string {
	var msgs []string
	fail := func(format string, a ...any) {
		msgs = append(msgs, fmt.Sprintf(format, a...))
	}
	as := ex.rt.Process().AddressSpace()
	o := &prog.Oracle

	// Under xtag, pointers in memory carry the object's tag in their high
	// bits: range checks and address arithmetic use the stripped form, while
	// the base map keeps the tagged value so CellLivePtr comparisons verify
	// tagged pointers round-trip through memory bit-for-bit.
	base := make(map[int]uint64, len(o.Live))
	for _, lo := range o.Live {
		v, f := as.LoadWord(irgen.SlotAddr(lo.AnchorSlot))
		if f != nil {
			fail("anchor slot %d: %v", lo.AnchorSlot, f)
			continue
		}
		if raw := vmem.StripTag(v); raw < vmem.HeapBase || raw >= vmem.HeapBase+vmem.HeapMax {
			fail("anchor slot %d of object %d: 0x%x not a heap address", lo.AnchorSlot, lo.ID, v)
			continue
		}
		if sp.Det == DetXTag && vmem.PointerTag(v) == 0 {
			fail("anchor slot %d of object %d: 0x%x untagged under xtag", lo.AnchorSlot, lo.ID, v)
			continue
		}
		base[lo.ID] = v
	}

	// danglingBase collects, per freed object, the inferred free-time base
	// from each dangling cell (value minus recorded offset). All cells that
	// dangled into the same object must agree — the invalidation scheme
	// preserves address bits (or the baseline preserves the raw pointer),
	// so disagreement means a cell was corrupted.
	danglingBase := make(map[int][]uint64)

	for i, cell := range o.Cells {
		var addr uint64
		var where string
		if cell.Global {
			addr = irgen.SlotAddr(cell.Slot)
			where = fmt.Sprintf("slot %d", cell.Slot)
		} else {
			b, ok := base[cell.Obj]
			if !ok {
				continue // anchor already reported
			}
			addr = vmem.StripTag(b) + cell.Off
			where = fmt.Sprintf("obj %d+%d", cell.Obj, cell.Off)
		}
		v, f := as.LoadWord(addr)
		if f != nil {
			fail("cell %d (%s): %v", i, where, f)
			continue
		}
		switch cell.Kind {
		case irgen.CellInt:
			if int64(v) != cell.Int {
				fail("cell %d (%s): int %d, want %d", i, where, int64(v), cell.Int)
			}
		case irgen.CellLivePtr:
			b, ok := base[cell.TargetObj]
			if !ok {
				continue
			}
			if v != b+cell.TargetOff {
				fail("cell %d (%s): ptr 0x%x, want 0x%x (obj %d+%d)",
					i, where, v, b+cell.TargetOff, cell.TargetObj, cell.TargetOff)
			}
		case irgen.CellDangling:
			orig, ok := checkDangling(sp, ex, cell, v, fail, i, where)
			if ok {
				danglingBase[cell.TargetObj] = append(danglingBase[cell.TargetObj], orig-cell.TargetOff)
			}
		}
	}

	for id, bases := range danglingBase {
		for _, b := range bases[1:] {
			if b != bases[0] {
				fail("dangling cells into freed obj %d disagree on its base: %x", id, bases)
				break
			}
		}
	}
	return msgs
}

// checkDangling verifies one dangling cell per the run's detector contract
// and returns the recovered original pointer value when it is comparable
// across cells.
func checkDangling(sp Spec, ex *execution, cell irgen.Cell, v uint64, fail func(string, ...any), i int, where string) (orig uint64, comparable bool) {
	heapPtr := heapRange
	switch {
	case sp.Det == DetXTag:
		// xTag never rewrites memory: the cell keeps the tagged pointer it
		// always held. Detection is latent — probe that dereferencing the
		// stale pointer now would trap on a tag mismatch. Tags cannot wrap at
		// differ scales (far fewer than 2^15 allocations), so the only
		// legitimate pass is the fail-open slot-0 read: a freed span recycled
		// for a different alignment gets a fresh zeroed shadow array, wiping
		// the freed marker. Distinguish that from a revived tag by probing
		// with a second, different tag — slot 0 passes any tag, a live tag
		// only its own.
		addr, tag, tagged := vmem.DecodeTag(v)
		if !tagged || !heapPtr(addr) {
			fail("cell %d (%s): dangling cell 0x%x not a tagged heap pointer under xtag", i, where, v)
			return 0, false
		}
		if _, f := ex.xt.CheckDeref(v); f == nil {
			alt := tag%vmem.MaxTag + 1
			if _, f2 := ex.xt.CheckDeref(vmem.WithTag(addr, alt)); f2 != nil {
				fail("cell %d (%s): stale tagged pointer 0x%x passes the deref check against a live mapping", i, where, v)
				return 0, false
			}
		}
		return addr, true
	case sp.Det == DetCAMP:
		// CAMP keeps memory untouched too, so the cell holds the raw dangling
		// address, exactly like the baseline. A CheckDeref probe here would be
		// unsound — the freed range may have been reused by a later live
		// allocation, legitimately clearing the tombstone — so camp's
		// detection is asserted only in mutation mode, at the access itself.
		if !heapPtr(v) {
			fail("cell %d (%s): dangling raw value 0x%x not a heap address under camp", i, where, v)
			return 0, false
		}
		return v, true
	case sp.Det == DetNone:
		// Baseline: raw dangling address, untouched.
		if !heapPtr(v) {
			fail("cell %d (%s): dangling raw value 0x%x not a heap address", i, where, v)
			return 0, false
		}
		return v, true
	case sp.Det == DetDangNull && cell.Global:
		// DangNull tracks heap locations only: global dangling cells keep
		// their raw value — the coverage gap the paper's Table 1 quantifies.
		if !heapPtr(v) {
			fail("cell %d (%s): dangling global 0x%x not raw under dangnull", i, where, v)
			return 0, false
		}
		return v, true
	case sp.Det == DetDangNull:
		if v != dangnull.InvalidValue {
			fail("cell %d (%s): dangling heap cell 0x%x, want nullified 0x%x",
				i, where, v, uint64(dangnull.InvalidValue))
		}
		return 0, false // address bits destroyed by design
	default:
		// DangSan and FreeSentry: high bit set, address bits preserved.
		orig, invalidated := pointerlog.DecodeFault(v)
		if !invalidated {
			fail("cell %d (%s): dangling cell 0x%x not invalidated", i, where, v)
			return 0, false
		}
		if !heapPtr(orig) {
			fail("cell %d (%s): invalidated cell preserves 0x%x, not a heap address", i, where, orig)
			return 0, false
		}
		return orig, true
	}
}

// checkCounters verifies the detector-side accounting against the oracle:
// exact invalidation counts per detector class, object tracking bounds, and
// dangsan's audit-mode log-byte identity.
func checkCounters(o *irgen.Oracle, sp Spec, ex *execution) []string {
	var msgs []string
	fail := func(format string, a ...any) {
		msgs = append(msgs, fmt.Sprintf(format, a...))
	}
	switch sp.Det {
	case DetDangSan:
		snap := ex.ds.Stats()
		if sp.Cfg.QuarantineBytes > 0 {
			// Deferred invalidation: a cell overwritten between its free and
			// its epoch drain is correctly classified stale, so only bounds
			// hold — cells still dangling at exit are guaranteed to be walked
			// while stale (floor), and nothing beyond the dangling-at-free
			// total may ever be invalidated (ceiling).
			if lo, hi := o.DanglingCells(), o.InvalidatedAll; snap.Invalidated < lo || snap.Invalidated > hi {
				fail("dangsan quarantined invalidated %d, want %d..%d", snap.Invalidated, lo, hi)
			}
		} else if snap.Invalidated != o.InvalidatedAll {
			fail("dangsan invalidated %d, want %d", snap.Invalidated, o.InvalidatedAll)
		}
		// Whether a realloc moves (and allocates) depends on size classes
		// and AllocPad, so tracked objects are only bounded.
		lo, hi := uint64(o.Mallocs), uint64(o.Mallocs+o.Reallocs)
		if snap.ObjectsTracked < lo || snap.ObjectsTracked > hi {
			fail("dangsan tracked %d objects, want %d..%d", snap.ObjectsTracked, lo, hi)
		}
		if snap.DegradedObjects != 0 || snap.DroppedRegistrations != 0 {
			fail("dangsan degraded=%d dropped=%d without fault injection",
				snap.DegradedObjects, snap.DroppedRegistrations)
		}
		if aud := ex.ds.AuditViolations(); len(aud) > 0 {
			fail("audit violations: %v", aud)
		}
	case DetDangNull:
		_, inv := ex.dn.Stats()
		if inv != o.InvalidatedHeap {
			fail("dangnull invalidated %d, want %d (heap-resident only)", inv, o.InvalidatedHeap)
		}
		if live := ex.dn.LiveObjects(); live != o.LiveAtExit {
			fail("dangnull tracks %d live objects, want %d", live, o.LiveAtExit)
		}
	case DetFreeSentry:
		_, inv := ex.fs.Stats()
		if inv != o.InvalidatedAll {
			fail("freesentry invalidated %d, want %d", inv, o.InvalidatedAll)
		}
	case DetXTag:
		tagged, _, mismatches := ex.xt.Stats()
		if mismatches != 0 {
			fail("xtag saw %d tag mismatches in a benign program", mismatches)
		}
		lo, hi := uint64(o.Mallocs), uint64(o.Mallocs+o.Reallocs)
		if tagged < lo || tagged > hi {
			fail("xtag tagged %d objects, want %d..%d", tagged, lo, hi)
		}
		if objs, regs := ex.xt.Degraded(); objs != 0 || regs != 0 {
			fail("xtag degraded=%d/%d without fault injection", objs, regs)
		}
	case DetCAMP:
		tracked, _, faults, _ := ex.cp.Stats()
		if faults != 0 {
			fail("camp saw %d freed-range faults in a benign program", faults)
		}
		lo, hi := uint64(o.Mallocs), uint64(o.Mallocs+o.Reallocs)
		if tracked < lo || tracked > hi {
			fail("camp tracked %d objects, want %d..%d", tracked, lo, hi)
		}
		if objs, regs := ex.cp.Degraded(); objs != 0 || regs != 0 {
			fail("camp degraded=%d/%d without fault injection", objs, regs)
		}
	}
	return msgs
}

// heapRange reports whether p lies inside the simulated heap segment.
func heapRange(p uint64) bool {
	return p >= vmem.HeapBase && p < vmem.HeapBase+vmem.HeapMax
}

func int64SlicesEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
