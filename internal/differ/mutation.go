package differ

import (
	"fmt"

	"dangsan/internal/detectors/dangnull"
	"dangsan/internal/irgen"
	"dangsan/internal/pointerlog"
	"dangsan/internal/vmem"
)

// MutationResult summarizes one seed's mutation sweep: how many detector
// cells were exercised and how many trapped on the injected bug. Detected <
// Detectors is a false negative (also reported in Divergences).
type MutationResult struct {
	Divergences []Divergence
	// Detectors is the number of detector matrix cells exercised (baseline
	// cells excluded — they must NOT trap).
	Detectors int
	// Detected is the number of those cells that trapped on the injected
	// dangling dereference.
	Detected int
}

// CheckMutation generates the mutated variant of seed (one injected
// dangling dereference at the end of main) and asserts the no-false-negative
// contract: the baseline runs to completion — the bug is silent without a
// detector — while every detector in the matrix traps on the stale load,
// with a fault value that proves invalidation happened (address bits plus
// the invalid bit for dangsan/freesentry, the fixed nullification value for
// dangnull). Optimized instrumentation must catch it too: an optimizer that
// elides the registration of the planted pointer would show up here as a
// missed trap.
func CheckMutation(seed int64, cfg irgen.Config) MutationResult {
	cfg.Mutate = true
	prog := irgen.Generate(seed, cfg)
	var res MutationResult
	for _, sp := range MutationSpecs(prog.Multithreaded) {
		trapped, msgs := checkMutationCell(prog, sp)
		if sp.Det != DetNone {
			res.Detectors++
			if trapped {
				res.Detected++
			}
		}
		for _, msg := range msgs {
			res.Divergences = append(res.Divergences, Divergence{Seed: seed, Run: sp.Name(), Msg: msg})
		}
	}
	return res
}

// MutationSpecs returns the matrix cells CheckMutation exercises for a
// program of the given threading; exported so callers can count detection
// opportunities.
func MutationSpecs(multithreaded bool) []Spec {
	var out []Spec
	for _, sp := range Specs(multithreaded) {
		if sp.Det == DetDangSan && sp.Cfg != pointerlog.DefaultConfig() {
			continue
		}
		out = append(out, sp)
	}
	return out
}

// checkMutationCell runs one cell of the mutation matrix and reports
// whether the run trapped, plus any contract violations.
func checkMutationCell(prog *irgen.Program, sp Spec) (trapped bool, msgs []string) {
	ex, err := run(prog, sp)
	if err != nil {
		return false, []string{err.Error()}
	}
	fail := func(format string, a ...any) {
		msgs = append(msgs, fmt.Sprintf(format, a...))
	}
	trapped = ex.trap != nil
	// The benign prefix's prints all precede the injected bug, so output is
	// checked in every cell, trapping or not.
	if !int64SlicesEqual(ex.out, prog.Oracle.Output) {
		fail("output %v, want %v", ex.out, prog.Oracle.Output)
	}

	if sp.Det == DetNone {
		// No detector: the dangling load reads recycled memory silently.
		if ex.trap != nil {
			fail("baseline trapped on the injected bug: %v", ex.trap)
		} else if int64(ex.ret) != prog.Oracle.Ret {
			fail("baseline ret %d, want %d", int64(ex.ret), prog.Oracle.Ret)
		}
		return trapped, msgs
	}

	if ex.trap == nil {
		fail("%s missed the injected use-after-free (false negative)", sp.Det)
		return trapped, msgs
	}
	if ex.trap.Fault == nil {
		fail("%s trapped without a memory fault: %v", sp.Det, ex.trap)
		return trapped, msgs
	}
	addr := ex.trap.Fault.Addr
	if sp.Det == DetDangNull {
		if addr != dangnull.InvalidValue {
			fail("dangnull fault at 0x%x, want the nullification value 0x%x",
				addr, uint64(dangnull.InvalidValue))
		}
		return trapped, msgs
	}
	if sp.Det == DetXTag {
		// xtag must detect via a tag mismatch: the fault preserves the full
		// tagged pointer, whose stripped address is the freed object.
		if ex.trap.Fault.Kind != vmem.FaultTagMismatch {
			fail("xtag trapped with %v, want a tag-mismatch fault", ex.trap.Fault)
			return trapped, msgs
		}
		orig, _, tagged := vmem.DecodeTag(addr)
		if !tagged {
			fail("xtag tag-mismatch fault at 0x%x carries no tag", addr)
		} else if !heapRange(orig) {
			fail("xtag fault preserves 0x%x, not a heap address", orig)
		}
		return trapped, msgs
	}
	if sp.Det == DetCAMP {
		// camp must detect via its freed-range registry: the fault reports
		// the raw accessed address inside the freed extent.
		if ex.trap.Fault.Kind != vmem.FaultFreedRange {
			fail("camp trapped with %v, want a freed-range fault", ex.trap.Fault)
			return trapped, msgs
		}
		if !heapRange(addr) {
			fail("camp freed-range fault at 0x%x outside the heap", addr)
		}
		return trapped, msgs
	}
	orig, invalidated := pointerlog.DecodeFault(addr)
	if !invalidated {
		fail("%s fault at 0x%x is not an invalidated pointer", sp.Det, addr)
	} else if !heapRange(orig) {
		fail("%s invalidated pointer preserves 0x%x, not a heap address", sp.Det, orig)
	}
	return trapped, msgs
}
