package gc

import (
	"testing"

	"dangsan/internal/detectors"
	"dangsan/internal/proc"
)

func setup(t *testing.T) (*Collector, *proc.Process, *proc.Thread) {
	t.Helper()
	p := proc.New(detectors.None{})
	c := New(p)
	th := p.NewThread()
	c.AddRootThread(th)
	return c, p, th
}

func TestUnreachableReclaimed(t *testing.T) {
	c, _, th := setup(t)
	obj, err := c.Alloc(th, 64)
	if err != nil {
		t.Fatal(err)
	}
	_ = obj // no reference stored anywhere
	n, err := c.Collect(th)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || c.Live() != 0 {
		t.Fatalf("reclaimed %d, live %d", n, c.Live())
	}
}

func TestGlobalRootRetains(t *testing.T) {
	c, p, th := setup(t)
	obj, _ := c.Alloc(th, 64)
	slot := p.AllocGlobal(8)
	th.StorePtr(slot, obj)
	if n, _ := c.Collect(th); n != 0 {
		t.Fatalf("reclaimed %d referenced objects", n)
	}
	// Dropping the reference frees it on the next cycle.
	th.StoreInt(slot, 0)
	if n, _ := c.Collect(th); n != 1 {
		t.Fatalf("reclaimed %d after dropping reference", n)
	}
}

func TestStackRootRetains(t *testing.T) {
	c, _, th := setup(t)
	obj, _ := c.Alloc(th, 64)
	slot := th.Alloca(8)
	th.StorePtr(slot, obj)
	if n, _ := c.Collect(th); n != 0 {
		t.Fatalf("reclaimed %d stack-referenced objects", n)
	}
}

func TestInteriorPointerRetains(t *testing.T) {
	c, p, th := setup(t)
	obj, _ := c.Alloc(th, 256)
	slot := p.AllocGlobal(8)
	th.StorePtr(slot, obj+200) // interior only
	if n, _ := c.Collect(th); n != 0 {
		t.Fatal("interior pointer did not retain (conservatism broken)")
	}
}

func TestTransitiveReachability(t *testing.T) {
	c, p, th := setup(t)
	// global -> a -> b -> c; d unreachable.
	a, _ := c.Alloc(th, 64)
	b, _ := c.Alloc(th, 64)
	cc, _ := c.Alloc(th, 64)
	d, _ := c.Alloc(th, 64)
	_ = d
	slot := p.AllocGlobal(8)
	th.StorePtr(slot, a)
	th.StorePtr(a, b)
	th.StorePtr(b, cc)
	n, _ := c.Collect(th)
	if n != 1 || c.Live() != 3 {
		t.Fatalf("reclaimed %d, live %d; want 1, 3", n, c.Live())
	}
	// Cut the chain at a->b.
	th.StoreInt(a, 0)
	n, _ = c.Collect(th)
	if n != 2 || c.Live() != 1 {
		t.Fatalf("after cut: reclaimed %d, live %d; want 2, 1", n, c.Live())
	}
}

func TestCycleCollected(t *testing.T) {
	c, _, th := setup(t)
	// a <-> b cycle with no external reference: mark-sweep reclaims both
	// (the advantage over reference counting).
	a, _ := c.Alloc(th, 64)
	b, _ := c.Alloc(th, 64)
	th.StorePtr(a, b)
	th.StorePtr(b, a)
	if n, _ := c.Collect(th); n != 2 {
		t.Fatalf("cycle not collected: %d", n)
	}
}

// The §9 story: with GC, a use-after-free is downgraded to a leak — the
// dangling pointer still reads the original data, the attacker cannot
// groom the memory, but the object is never reclaimed.
func TestUAFBecomesLeak(t *testing.T) {
	c, p, th := setup(t)
	obj, _ := c.Alloc(th, 64)
	th.StoreInt(obj, 0x736563726574)
	slot := p.AllocGlobal(8)
	th.StorePtr(slot, obj)

	c.GCFree(obj) // program thinks it freed the object
	if n, _ := c.Collect(th); n != 0 {
		t.Fatal("explicitly freed but referenced object was reclaimed")
	}
	// The "use after free" reads the original, uncorrupted data.
	v, fault := th.Deref(slot)
	if fault != nil {
		t.Fatalf("GC'd UAF faulted: %v", fault)
	}
	if v != 0x736563726574 {
		t.Fatalf("stale read = 0x%x, want original data", v)
	}
	// And the memory leaks as long as the dangling reference exists.
	if c.Live() != 1 {
		t.Fatal("object reclaimed while dangling reference exists")
	}
}

// Conservatism's false-retention cost: an integer that happens to equal a
// managed address keeps the object alive.
func TestIntegerLookAlikeRetains(t *testing.T) {
	c, p, th := setup(t)
	obj, _ := c.Alloc(th, 64)
	slot := p.AllocGlobal(8)
	th.StoreInt(slot, obj) // an integer, but the collector cannot know
	if n, _ := c.Collect(th); n != 0 {
		t.Fatal("look-alike integer did not retain; collector is not conservative")
	}
}

func TestStatsAndRepeatedCollections(t *testing.T) {
	c, _, th := setup(t)
	for i := 0; i < 10; i++ {
		if _, err := c.Alloc(th, 128); err != nil {
			t.Fatal(err)
		}
	}
	c.Collect(th)
	c.Collect(th) // second cycle is a no-op
	collections, reclaimed := c.Stats()
	if collections != 2 || reclaimed != 10 {
		t.Fatalf("stats = %d, %d", collections, reclaimed)
	}
	// Allocator agrees nothing leaked.
	if live := c.Live(); live != 0 {
		t.Fatalf("live = %d", live)
	}
}
