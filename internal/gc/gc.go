// Package gc implements a Boehm-style conservative mark-sweep garbage
// collector over the simulated process, reproducing the defense class the
// paper's §9 compares DangSan against: with garbage collection, free
// becomes advisory and a dangling pointer keeps its object alive, turning
// every use-after-free into a (less exploitable) memory leak.
//
// The collector is conservative: any aligned word in a root region or a
// live object that happens to equal an address inside a managed object
// retains that object — including integers that merely look like pointers,
// the type-accuracy cost the paper cites (§9, Hirzel & Diwan). Roots are
// the globals segment and the registered threads' stacks.
package gc

import (
	"sync"

	"dangsan/internal/proc"
	"dangsan/internal/rbtree"
)

// Collector manages a set of heap objects whose lifetime is decided by
// reachability instead of free calls.
type Collector struct {
	p *proc.Process

	mu      sync.Mutex
	objects rbtree.Tree // [base, base+size) -> *managed
	roots   []*proc.Thread
	// Stats.
	collections  uint64
	reclaimed    uint64
	freedPending uint64 // GCFree calls whose object was still reachable
}

type managed struct {
	base, size uint64
	marked     bool
	// freed records an explicit GCFree call; purely informational — the
	// collector ignores it, which is exactly the §9 semantics (the freed
	// object stays alive while references exist).
	freed bool
}

// New creates a collector for the process.
func New(p *proc.Process) *Collector {
	return &Collector{p: p}
}

// AddRootThread registers a thread whose stack is scanned as a root set.
// Register every thread that may hold pointers to managed objects.
func (c *Collector) AddRootThread(th *proc.Thread) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.roots = append(c.roots, th)
}

// Alloc allocates a managed object through the thread's allocator.
func (c *Collector) Alloc(th *proc.Thread, size uint64) (uint64, error) {
	base, err := th.Malloc(size)
	if err != nil {
		return 0, err
	}
	usable, _ := c.p.UsableSize(base)
	c.mu.Lock()
	c.objects.Insert(base, base+usable, &managed{base: base, size: usable})
	c.mu.Unlock()
	return base, nil
}

// GCFree marks an object as explicitly freed. Like Boehm's GC_free when
// references remain, this is advisory: the object is only reclaimed once it
// is unreachable, so a use-after-free reads valid (stale) data instead of
// attacker-controlled memory.
func (c *Collector) GCFree(base uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.objects.Get(base); ok {
		v.(*managed).freed = true
		c.freedPending++
	}
}

// Live returns the number of managed objects currently considered live.
func (c *Collector) Live() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.objects.Len()
}

// Stats reports (collections run, objects reclaimed).
func (c *Collector) Stats() (collections, reclaimed uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.collections, c.reclaimed
}

// Collect runs a stop-the-world mark-sweep: mark everything reachable from
// the globals segment and registered stacks, then free every unmarked
// managed object through th's allocator cache. It returns the number of
// objects reclaimed. The caller must ensure no thread mutates memory
// concurrently (the simulation's stop-the-world).
func (c *Collector) Collect(th *proc.Thread) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.collections++

	// Clear marks.
	c.objects.Walk(func(_, _ uint64, v rbtree.Value) bool {
		v.(*managed).marked = false
		return true
	})

	// Mark phase: scan roots, then transitively the contents of marked
	// objects (explicit work list, no recursion).
	var work []*managed
	scan := func(start, end uint64) {
		as := c.p.AddressSpace()
		for addr := (start + 7) &^ 7; addr+8 <= end; addr += 8 {
			w, fault := as.LoadWord(addr)
			if fault != nil {
				continue
			}
			if v, ok := c.objects.LookupContaining(w); ok {
				m := v.(*managed)
				if !m.marked {
					m.marked = true
					work = append(work, m)
				}
			}
		}
	}
	gBase, gEnd := c.p.GlobalsUsed()
	scan(gBase, gEnd)
	for _, root := range c.roots {
		sBase, sEnd := root.StackUsed()
		scan(sBase, sEnd)
	}
	for len(work) > 0 {
		m := work[len(work)-1]
		work = work[:len(work)-1]
		scan(m.base, m.base+m.size)
	}

	// Sweep phase.
	var dead []*managed
	c.objects.Walk(func(_, _ uint64, v rbtree.Value) bool {
		if m := v.(*managed); !m.marked {
			dead = append(dead, m)
		}
		return true
	})
	for _, m := range dead {
		if err := th.Free(m.base); err != nil {
			return 0, err
		}
		c.objects.Delete(m.base)
	}
	c.reclaimed += uint64(len(dead))
	return len(dead), nil
}
