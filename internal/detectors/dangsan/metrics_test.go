package dangsan_test

import (
	"sync"
	"testing"

	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/obs"
	"dangsan/internal/proc"
)

// The full stack with audit and metrics on: allocate, store pointers,
// free, and require (a) the audit identity held at every free, (b) the
// registry saw traffic from every wired subsystem.
func TestMetricsAndAuditIntegration(t *testing.T) {
	reg := obs.NewRegistry()
	det := dangsan.NewWithOptions(dangsan.Options{Audit: true, Metrics: reg})
	p := proc.New(det)
	p.AttachMetrics(reg)
	th := p.NewThread()

	slot, err := th.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 50; round++ {
		objs := make([]uint64, 8)
		for i := range objs {
			objs[i], err = th.Malloc(uint64(16 + i*24))
			if err != nil {
				t.Fatal(err)
			}
			if f := th.StorePtr(slot+uint64(i%8)*8, objs[i]); f != nil {
				t.Fatalf("store faulted: %v", f)
			}
		}
		for _, o := range objs {
			if err := th.Free(o); err != nil {
				t.Fatal(err)
			}
		}
	}
	if v := det.AuditViolations(); len(v) != 0 {
		t.Fatalf("audit violations: %v", v)
	}
	det.Stats() // snapshot-time audit
	if v := det.AuditViolations(); len(v) != 0 {
		t.Fatalf("audit violations after snapshot: %v", v)
	}

	s := reg.Snapshot()
	for _, c := range []string{"proc.mallocs", "proc.frees", "proc.ptr_stores", "shadow.slot_writes", "shadow.slot_clears"} {
		if s.Counters[c] == 0 {
			t.Errorf("counter %s = 0", c)
		}
	}
	for _, g := range []string{"pointerlog.log_bytes", "pointerlog.registered", "tcmalloc.total_allocs", "shadow.bytes"} {
		if s.Gauges[g] == 0 {
			t.Errorf("gauge %s = 0", g)
		}
	}
	if s.Histograms["pointerlog.register_ns"].Count == 0 {
		t.Error("register_ns histogram empty")
	}
	if s.Histograms["pointerlog.invalidate_ns"].Count == 0 {
		t.Error("invalidate_ns histogram empty")
	}
	if len(s.Objects["tcmalloc.sizeclass"]) == 0 {
		t.Error("sizeclass object empty")
	}
	// The live log-byte gauge reflects released structures.
	if s.Gauges["pointerlog.log_bytes_live"] > s.Gauges["pointerlog.log_bytes"] {
		t.Errorf("live %d > total %d", s.Gauges["pointerlog.log_bytes_live"], s.Gauges["pointerlog.log_bytes"])
	}
}

// The stale-handle race at the system level: one thread frees and
// reallocates (recycling metadata handles and rewriting extents) while
// others store pointers whose fast-path memo may hold the recycled
// handle's meta. Run under -race; correctness of observed values is
// reconciled by free-time verification, this test pins down the absence
// of data races on the extent words.
func TestStaleHandleStoreRace(t *testing.T) {
	det := dangsan.New()
	p := proc.New(det)
	churner := p.NewThread()

	slots, err := churner.Malloc(512)
	if err != nil {
		t.Fatal(err)
	}

	const storers = 3
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < storers; w++ {
		th := p.NewThread()
		wg.Add(1)
		go func(th *proc.Thread, w int) {
			defer wg.Done()
			i := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Store a heap-ranged value: sometimes a live object,
				// sometimes a dangling address whose handle was recycled.
				obj, err := th.Malloc(32)
				if err != nil {
					return
				}
				th.StorePtr(slots+uint64(w)*64+(i%8)*8, obj)
				th.Free(obj)
				th.StorePtr(slots+uint64(w)*64+(i%8)*8, obj) // dangling value
				i++
			}
		}(th, w)
	}

	for i := 0; i < 400; i++ {
		obj, err := churner.Malloc(uint64(16 + i%5*32))
		if err != nil {
			t.Fatal(err)
		}
		churner.StorePtr(slots, obj)
		if _, err := churner.Realloc(obj, uint64(128+i%3*64)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
