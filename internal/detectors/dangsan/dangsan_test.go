package dangsan

import (
	"testing"

	"dangsan/internal/pointerlog"
	"dangsan/internal/vmem"
)

// newBound builds a detector bound to a fresh address space with the first
// heap pages mapped, bypassing proc for focused unit tests.
func newBound(t *testing.T) (*Detector, *vmem.AddressSpace) {
	t.Helper()
	d := New()
	as := vmem.New()
	d.Bind(as)
	as.Heap().MapPages(vmem.HeapBase, 16)
	return d, as
}

func TestAllocStoreFreeWiring(t *testing.T) {
	d, as := newBound(t)
	base := uint64(vmem.HeapBase)
	d.OnAlloc(base, 64, 8)

	loc := uint64(vmem.GlobalsBase + 0x100)
	as.StoreWord(loc, base+8)
	d.OnPtrStore(loc, base+8, 0)

	d.OnFree(base, 64, 8)
	if v, _ := as.LoadWord(loc); v != (base+8)|pointerlog.InvalidBit {
		t.Fatalf("loc = 0x%x", v)
	}
	// A second free of the same range is a no-op (shadow cleared).
	d.OnFree(base, 64, 8)
	s := d.Stats()
	if s.Invalidated != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestFreeOfUntrackedBase(t *testing.T) {
	d, _ := newBound(t)
	// Must not panic, must not count anything.
	d.OnFree(vmem.HeapBase+4096, 64, 8)
	if s := d.Stats(); s.Invalidated != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestReallocShrinkClearsTail(t *testing.T) {
	d, as := newBound(t)
	base := uint64(vmem.HeapBase)
	d.OnAlloc(base, 4*vmem.PageSize, vmem.PageSize)

	// A pointer into the tail that will be shrunk away.
	tailLoc := uint64(vmem.GlobalsBase + 0x10)
	tailPtr := base + 3*vmem.PageSize + 8
	as.StoreWord(tailLoc, tailPtr)
	d.OnPtrStore(tailLoc, tailPtr, 0)

	d.OnReallocInPlace(base, 4*vmem.PageSize, 2*vmem.PageSize, vmem.PageSize)
	// Values in the abandoned tail no longer resolve to the object.
	headLoc := uint64(vmem.GlobalsBase + 0x20)
	as.StoreWord(headLoc, base+8)
	d.OnPtrStore(headLoc, base+8, 0)
	d.OnPtrStore(tailLoc, tailPtr, 0) // should find no object now

	d.OnFree(base, 2*vmem.PageSize, vmem.PageSize)
	if v, _ := as.LoadWord(headLoc); v&pointerlog.InvalidBit == 0 {
		t.Fatalf("head pointer not invalidated: 0x%x", v)
	}
	if v, _ := as.LoadWord(tailLoc); v != tailPtr {
		t.Fatalf("tail pointer should be untouched garbage: 0x%x", v)
	}
}

func TestReallocGrowExtendsMapping(t *testing.T) {
	d, as := newBound(t)
	base := uint64(vmem.HeapBase)
	d.OnAlloc(base, 2*vmem.PageSize, vmem.PageSize)
	d.OnReallocInPlace(base, 2*vmem.PageSize, 4*vmem.PageSize, vmem.PageSize)

	loc := uint64(vmem.GlobalsBase + 0x30)
	grownPtr := base + 3*vmem.PageSize
	as.StoreWord(loc, grownPtr)
	d.OnPtrStore(loc, grownPtr, 0)
	d.OnFree(base, 4*vmem.PageSize, vmem.PageSize)
	if v, _ := as.LoadWord(loc); v != grownPtr|pointerlog.InvalidBit {
		t.Fatalf("pointer into grown region = 0x%x", v)
	}
}

func TestOnMemcpyUnalignedEdges(t *testing.T) {
	d, as := newBound(t)
	base := uint64(vmem.HeapBase)
	d.OnAlloc(base, 64, 8)

	src := uint64(vmem.GlobalsBase + 0x100)
	dst := uint64(vmem.GlobalsBase + 0x200)
	as.StoreWord(src+8, base)
	as.Memmove(dst+3, src, 24) // unaligned destination
	// OnMemcpy must only consider aligned words inside [dst+3, dst+27).
	d.OnMemcpy(dst+3, src, 24, 0)
	// The aligned word dst+8 holds a misaligned fragment, not base; the
	// aligned word dst+16 holds bytes of base shifted — neither should
	// match the object unless bytes happen to align. The call must simply
	// not panic and not corrupt stats badly.
	_ = d.Stats()
}

func TestMetadataBytesGrows(t *testing.T) {
	d, as := newBound(t)
	before := d.MetadataBytes()
	base := uint64(vmem.HeapBase)
	d.OnAlloc(base, 64, 8)
	for i := 0; i < 100; i++ {
		loc := vmem.GlobalsBase + uint64(i)*0x300
		as.StoreWord(loc, base)
		d.OnPtrStore(loc, base, 0)
	}
	if d.MetadataBytes() <= before {
		t.Fatal("metadata accounting did not grow")
	}
}

func TestDecodeFault(t *testing.T) {
	orig := uint64(vmem.HeapBase + 0x123456)
	got, ok := pointerlog.DecodeFault(orig | pointerlog.InvalidBit)
	if !ok || got != orig {
		t.Fatalf("DecodeFault = 0x%x, %v", got, ok)
	}
	// A plain non-canonical address is not an invalidated pointer.
	if _, ok := pointerlog.DecodeFault(1 << 47); ok {
		t.Fatal("bit-47 address misdecoded as invalidated")
	}
	// A canonical address is not a fault we can decode.
	if _, ok := pointerlog.DecodeFault(orig); ok {
		t.Fatal("canonical address misdecoded")
	}
}
