package dangsan

import (
	"testing"

	"dangsan/internal/pointerlog"
	"dangsan/internal/vmem"
)

// newBound builds a detector bound to a fresh address space with the first
// heap pages mapped, bypassing proc for focused unit tests.
func newBound(t *testing.T) (*Detector, *vmem.AddressSpace) {
	t.Helper()
	d := New()
	as := vmem.New()
	d.Bind(as)
	as.Heap().MapPages(vmem.HeapBase, 16)
	return d, as
}

func TestAllocStoreFreeWiring(t *testing.T) {
	d, as := newBound(t)
	base := uint64(vmem.HeapBase)
	d.OnAlloc(base, 64, 8)

	loc := uint64(vmem.GlobalsBase + 0x100)
	as.StoreWord(loc, base+8)
	d.OnPtrStore(loc, base+8, 0)

	d.OnFree(base, 64, 8)
	if v, _ := as.LoadWord(loc); v != (base+8)|pointerlog.InvalidBit {
		t.Fatalf("loc = 0x%x", v)
	}
	// A second free of the same range is a no-op (shadow cleared).
	d.OnFree(base, 64, 8)
	s := d.Stats()
	if s.Invalidated != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestFreeOfUntrackedBase(t *testing.T) {
	d, _ := newBound(t)
	// Must not panic, must not count anything.
	d.OnFree(vmem.HeapBase+4096, 64, 8)
	if s := d.Stats(); s.Invalidated != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestReallocShrinkClearsTail(t *testing.T) {
	d, as := newBound(t)
	base := uint64(vmem.HeapBase)
	d.OnAlloc(base, 4*vmem.PageSize, vmem.PageSize)

	// A pointer into the tail that will be shrunk away.
	tailLoc := uint64(vmem.GlobalsBase + 0x10)
	tailPtr := base + 3*vmem.PageSize + 8
	as.StoreWord(tailLoc, tailPtr)
	d.OnPtrStore(tailLoc, tailPtr, 0)

	d.OnReallocInPlace(base, 4*vmem.PageSize, 2*vmem.PageSize, vmem.PageSize)
	// Values in the abandoned tail no longer resolve to the object.
	headLoc := uint64(vmem.GlobalsBase + 0x20)
	as.StoreWord(headLoc, base+8)
	d.OnPtrStore(headLoc, base+8, 0)
	d.OnPtrStore(tailLoc, tailPtr, 0) // should find no object now

	d.OnFree(base, 2*vmem.PageSize, vmem.PageSize)
	if v, _ := as.LoadWord(headLoc); v&pointerlog.InvalidBit == 0 {
		t.Fatalf("head pointer not invalidated: 0x%x", v)
	}
	if v, _ := as.LoadWord(tailLoc); v != tailPtr {
		t.Fatalf("tail pointer should be untouched garbage: 0x%x", v)
	}
}

func TestReallocGrowExtendsMapping(t *testing.T) {
	d, as := newBound(t)
	base := uint64(vmem.HeapBase)
	d.OnAlloc(base, 2*vmem.PageSize, vmem.PageSize)
	d.OnReallocInPlace(base, 2*vmem.PageSize, 4*vmem.PageSize, vmem.PageSize)

	loc := uint64(vmem.GlobalsBase + 0x30)
	grownPtr := base + 3*vmem.PageSize
	as.StoreWord(loc, grownPtr)
	d.OnPtrStore(loc, grownPtr, 0)
	d.OnFree(base, 4*vmem.PageSize, vmem.PageSize)
	if v, _ := as.LoadWord(loc); v != grownPtr|pointerlog.InvalidBit {
		t.Fatalf("pointer into grown region = 0x%x", v)
	}
}

func TestOnMemcpyUnalignedEdges(t *testing.T) {
	d, as := newBound(t)
	base := uint64(vmem.HeapBase)
	d.OnAlloc(base, 64, 8)

	src := uint64(vmem.GlobalsBase + 0x100)
	dst := uint64(vmem.GlobalsBase + 0x200)
	as.StoreWord(src+8, base)
	as.Memmove(dst+3, src, 24) // unaligned destination
	// OnMemcpy must only consider aligned words inside [dst+3, dst+27).
	d.OnMemcpy(dst+3, src, 24, 0)
	// The aligned word dst+8 holds a misaligned fragment, not base; the
	// aligned word dst+16 holds bytes of base shifted — neither should
	// match the object unless bytes happen to align. The call must simply
	// not panic and not corrupt stats badly.
	_ = d.Stats()
}

func TestMetadataBytesGrows(t *testing.T) {
	d, as := newBound(t)
	before := d.MetadataBytes()
	base := uint64(vmem.HeapBase)
	d.OnAlloc(base, 64, 8)
	for i := 0; i < 100; i++ {
		loc := vmem.GlobalsBase + uint64(i)*0x300
		as.StoreWord(loc, base)
		d.OnPtrStore(loc, base, 0)
	}
	if d.MetadataBytes() <= before {
		t.Fatal("metadata accounting did not grow")
	}
}

func TestThreadContextFastPathHit(t *testing.T) {
	d, as := newBound(t)
	base := uint64(vmem.HeapBase)
	d.OnAlloc(base, 4096, 8)
	ctx := d.NewThreadContext(0)

	loc1 := uint64(vmem.GlobalsBase + 0x100)
	as.StoreWord(loc1, base+8)
	d.OnPtrStoreCtx(ctx, loc1, base+8)
	c := ctx.(*threadCtx)
	if c.tl == nil || c.base != base || c.end != base+4096 {
		t.Fatalf("memo not filled: %+v", c)
	}
	tl := c.tl

	// Second store into the same object must take the memoized path: the
	// thread log stays the same and the registration still lands.
	loc2 := uint64(vmem.GlobalsBase + 0x900)
	as.StoreWord(loc2, base+16)
	d.OnPtrStoreCtx(ctx, loc2, base+16)
	if c.tl != tl {
		t.Fatal("memo was refilled on a hit")
	}
	if s := d.Stats(); s.Registered != 2 {
		t.Fatalf("stats: %+v", s)
	}
	d.OnFree(base, 4096, 8)
	for _, loc := range []uint64{loc1, loc2} {
		if v, _ := as.LoadWord(loc); v&pointerlog.InvalidBit == 0 {
			t.Fatalf("loc 0x%x not invalidated: 0x%x", loc, v)
		}
	}
}

func TestThreadContextDropsMemoAfterFree(t *testing.T) {
	d, as := newBound(t)
	base := uint64(vmem.HeapBase)
	d.OnAlloc(base, 64, 8)
	ctx := d.NewThreadContext(0)

	loc := uint64(vmem.GlobalsBase + 0x100)
	as.StoreWord(loc, base+8)
	d.OnPtrStoreCtx(ctx, loc, base+8)
	d.OnFree(base, 64, 8)

	// A store of a dangling value after the free must not be registered
	// against the dead memo (the shadow mapping is gone).
	loc2 := uint64(vmem.GlobalsBase + 0x200)
	as.StoreWord(loc2, base+16)
	d.OnPtrStoreCtx(ctx, loc2, base+16)
	if s := d.Stats(); s.Registered != 1 {
		t.Fatalf("dangling store was registered via stale memo: %+v", s)
	}

	// A recycled allocation at the same base must be re-resolved and
	// tracked correctly through the same context.
	d.OnAlloc(base, 64, 8)
	as.StoreWord(loc2, base+16)
	d.OnPtrStoreCtx(ctx, loc2, base+16)
	d.OnFree(base, 64, 8)
	if v, _ := as.LoadWord(loc2); v != (base+16)|pointerlog.InvalidBit {
		t.Fatalf("recycled object's pointer not invalidated: 0x%x", v)
	}
}

func TestThreadContextMissAfterShrink(t *testing.T) {
	d, as := newBound(t)
	base := uint64(vmem.HeapBase)
	d.OnAlloc(base, 4*vmem.PageSize, vmem.PageSize)
	ctx := d.NewThreadContext(0)

	// Fill the memo with the 4-page extent.
	headLoc := uint64(vmem.GlobalsBase + 0x10)
	as.StoreWord(headLoc, base+8)
	d.OnPtrStoreCtx(ctx, headLoc, base+8)

	d.OnReallocInPlace(base, 4*vmem.PageSize, 2*vmem.PageSize, vmem.PageSize)

	// A store of a pointer into the abandoned tail would pass the stale
	// memoized extent check; the generation bump must force the shadow
	// lookup, which finds nothing.
	tailLoc := uint64(vmem.GlobalsBase + 0x20)
	tailPtr := base + 3*vmem.PageSize
	as.StoreWord(tailLoc, tailPtr)
	d.OnPtrStoreCtx(ctx, tailLoc, tailPtr)

	d.OnFree(base, 2*vmem.PageSize, vmem.PageSize)
	if v, _ := as.LoadWord(headLoc); v&pointerlog.InvalidBit == 0 {
		t.Fatalf("head pointer not invalidated: 0x%x", v)
	}
	if v, _ := as.LoadWord(tailLoc); v != tailPtr {
		t.Fatalf("tail pointer should be untouched: 0x%x", v)
	}
}

// The context path and the plain path must count identically.
func TestThreadContextMatchesPlainPath(t *testing.T) {
	run := func(useCtx bool) pointerlog.Snapshot {
		d, as := newBound(t)
		ctx := d.NewThreadContext(0)
		for obj := 0; obj < 4; obj++ {
			base := vmem.HeapBase + uint64(obj)*8192
			d.OnAlloc(base, 4096, 8)
		}
		x := uint64(99)
		for i := 0; i < 20000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			base := vmem.HeapBase + (x>>33%4)*8192
			loc := vmem.GlobalsBase + (x>>13%(1<<12))*8
			val := base + x>>3%4096&^7
			as.StoreWord(loc, val)
			if useCtx {
				d.OnPtrStoreCtx(ctx, loc, val)
			} else {
				d.OnPtrStore(loc, val, 0)
			}
		}
		for obj := 0; obj < 4; obj++ {
			base := vmem.HeapBase + uint64(obj)*8192
			d.OnFree(base, 4096, 8)
		}
		return d.Stats()
	}
	plain, ctx := run(false), run(true)
	if plain != ctx {
		t.Fatalf("paths diverge:\nplain %+v\nctx   %+v", plain, ctx)
	}
}

func TestDecodeFault(t *testing.T) {
	orig := uint64(vmem.HeapBase + 0x123456)
	got, ok := pointerlog.DecodeFault(orig | pointerlog.InvalidBit)
	if !ok || got != orig {
		t.Fatalf("DecodeFault = 0x%x, %v", got, ok)
	}
	// A plain non-canonical address is not an invalidated pointer.
	if _, ok := pointerlog.DecodeFault(1 << 47); ok {
		t.Fatal("bit-47 address misdecoded as invalidated")
	}
	// A canonical address is not a fault we can decode.
	if _, ok := pointerlog.DecodeFault(orig); ok {
		t.Fatal("canonical address misdecoded")
	}
}
