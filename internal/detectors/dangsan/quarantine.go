// Epoch-based free quarantine: deferred frees enter a bounded ring and are
// retired in batches, so one merged shadow walk (pointerlog.InvalidateMany)
// invalidates many dying objects, and an object's memory returns to the
// allocator only after its metadata is released — no address reuse while
// invalidation is pending.
//
// Lifecycle of a deferred free:
//
//	OnFreeDeferred: shadow cleared, meta moved live→quarantined (audit),
//	                entry enqueued — the detector now owns the memory.
//	epoch drain:    a batch of Config.QuarantineEpoch entries is taken;
//	                InvalidateMany walks the union of their logs once;
//	                metas are released; the release callback hands the
//	                base addresses back to the allocator.
//
// Overflow (Config.QuarantineBytes exceeded) forces synchronous drains on
// the freeing thread until the ring is back under budget — the same
// fail-open contract as MaxMetadataBytes: degraded latency, never a panic
// and never unbounded growth.
package dangsan

import (
	"sync"
	"sync/atomic"
	"time"

	"dangsan/internal/obs"
	"dangsan/internal/pointerlog"
	"dangsan/internal/tcmalloc"
)

// quarEntry is one deferred free awaiting its epoch.
type quarEntry struct {
	handle, base, size uint64
}

// quarMetrics bundles the quarantine's obs instruments; nil until
// AttachMetrics.
type quarMetrics struct {
	drainNs        *obs.Histogram
	batchObjects   *obs.Histogram
	overflowDrains *obs.Counter
	releaseErrors  *obs.Counter
}

// quarantine is the engine. All queue state is guarded by mu; the drain
// itself (invalidate + release) runs outside the lock so frees can keep
// enqueueing while a batch retires.
type quarantine struct {
	d        *Detector
	maxBytes uint64
	epoch    int
	sync     bool

	release func(bases []uint64) (int, error)

	mu      sync.Mutex
	cond    *sync.Cond
	pending []quarEntry
	head    int
	bytes   uint64
	// bases holds every address currently in custody — from enqueue until
	// its memory has been handed back through the release callback. It
	// backs double-free detection (a free of a base whose shadow entry is
	// already cleared checks here) and the runtime's Quarantined queries.
	// The value is the custody phase: 0 while the entry is parked in the
	// ring, or the retiring batch's id once a drain has taken it. The
	// phase lets enqueue distinguish a reincarnated base (its previous
	// incarnation mid-retirement, its memory already re-issued) from a
	// genuine double free without ever blocking — a freeing thread must
	// never wait on a batch, because on the synchronous-drain paths it IS
	// the thread retiring that batch (re-entrant free from the release
	// callback), and waiting would self-deadlock.
	bases map[uint64]uint64
	// batchSeq issues batch ids (starting at 1; 0 means parked).
	batchSeq uint64
	inflight int
	worker   bool

	epochs atomic.Uint64

	met atomic.Pointer[quarMetrics]
}

func newQuarantine(d *Detector, cfg pointerlog.Config) *quarantine {
	if cfg.QuarantineBytes == 0 {
		return nil
	}
	q := &quarantine{
		d:        d,
		maxBytes: cfg.QuarantineBytes,
		epoch:    cfg.QuarantineEpoch,
		sync:     cfg.QuarantineSync,
		bases:    make(map[uint64]uint64),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *quarantine) attachMetrics(reg *obs.Registry) {
	q.met.Store(&quarMetrics{
		drainNs:        reg.Histogram("dangsan.quarantine_drain_ns"),
		batchObjects:   reg.Histogram("dangsan.quarantine_batch_objects"),
		overflowDrains: reg.Counter("dangsan.quarantine_overflow_drains"),
		releaseErrors:  reg.Counter("dangsan.quarantine_release_errors"),
	})
	reg.RegisterFunc("dangsan.quarantine_pending_objects", func() int64 {
		q.mu.Lock()
		defer q.mu.Unlock()
		return int64(len(q.pending) - q.head)
	})
	reg.RegisterFunc("dangsan.quarantine_pending_bytes", func() int64 {
		q.mu.Lock()
		defer q.mu.Unlock()
		return int64(q.bytes)
	})
	reg.RegisterFunc("dangsan.quarantine_epochs", func() int64 {
		return int64(q.epochs.Load())
	})
}

// contains reports whether base is in custody.
func (q *quarantine) contains(base uint64) bool {
	if q == nil {
		return false
	}
	q.mu.Lock()
	_, ok := q.bases[base]
	q.mu.Unlock()
	return ok
}

// enqueue takes custody of one freed object. A base already in custody is
// normally a double free: the entry is rejected and the error surfaced to
// the program, while the first free's custody stands. The exception is a
// base whose previous incarnation is mid-retirement — its memory already
// went back through the release callback (so the allocator could re-issue
// it, and the caller's live shadow entry proves it did) but its custody
// entry is deleted only after the whole batch's callback returns. Such an
// entry carries its batch id; custody is stolen from the dying batch (the
// batch's deferred delete skips entries whose phase changed) and the
// reincarnation is enqueued normally.
//
// The steal must not block. The overflow and QuarantineSync paths retire
// batches on the freeing thread itself, so a release callback that
// re-enters free (legal under the BindRelease contract) arrives here while
// its own batch is still in flight — any wait-for-the-batch here would be
// a self-deadlock.
func (q *quarantine) enqueue(e quarEntry) error {
	q.mu.Lock()
	if phase, dup := q.bases[e.base]; dup && phase == 0 {
		// Parked in the ring, not mid-retirement: a genuine double free.
		// (A reincarnation is impossible here — parked memory has not
		// been handed back, so the allocator cannot have re-issued it.)
		q.mu.Unlock()
		return &tcmalloc.DoubleFreeError{Addr: e.base}
	}
	q.bases[e.base] = 0
	q.pending = append(q.pending, e)
	q.bytes += e.size
	overflow := q.bytes > q.maxBytes
	ready := len(q.pending)-q.head >= q.epoch
	spawn := false
	if ready && !overflow && !q.sync && !q.worker {
		q.worker = true
		spawn = true
	}
	q.mu.Unlock()

	if overflow {
		// Fail-open: the budget is blown, so this freeing thread pays for
		// drains until the ring is back under it. Epoch batching still
		// applies; only the asynchrony is lost.
		met := q.met.Load()
		for q.overBudget() && q.drainOne(q.epoch) {
			if met != nil {
				met.overflowDrains.Inc(int32(e.base >> 12))
			}
		}
		return nil
	}
	if ready && q.sync {
		q.drainOne(q.epoch)
		return nil
	}
	if spawn {
		go q.run()
	}
	return nil
}

func (q *quarantine) overBudget() bool {
	q.mu.Lock()
	over := q.bytes > q.maxBytes
	q.mu.Unlock()
	return over
}

// run is the background epoch worker: it drains full epochs while the ring
// has them, then exits. Lazily respawned by the next boundary-crossing
// enqueue, so an idle detector holds no goroutine.
func (q *quarantine) run() {
	for {
		if q.drainOne(q.epoch) {
			continue
		}
		q.mu.Lock()
		if len(q.pending)-q.head == 0 {
			q.worker = false
			q.mu.Unlock()
			return
		}
		q.mu.Unlock()
	}
}

// drainOne takes up to max entries off the ring and retires them. Returns
// false when the ring was empty.
func (q *quarantine) drainOne(max int) bool {
	q.mu.Lock()
	n := len(q.pending) - q.head
	if n == 0 {
		q.mu.Unlock()
		return false
	}
	if n > max {
		n = max
	}
	batch := make([]quarEntry, n)
	copy(batch, q.pending[q.head:q.head+n])
	q.head += n
	q.batchSeq++
	id := q.batchSeq
	for _, e := range batch {
		q.bytes -= e.size
		// Move the batch's bases from parked to mid-retirement: from here
		// a duplicate free of one of them is either caught by the shadow
		// (still cleared) or is a legal reincarnation that steals custody.
		q.bases[e.base] = id
	}
	if q.head == len(q.pending) {
		q.pending = q.pending[:0]
		q.head = 0
	} else if q.head >= 1024 {
		q.pending = append(q.pending[:0], q.pending[q.head:]...)
		q.head = 0
	}
	q.inflight++
	q.mu.Unlock()

	q.process(batch, id)

	q.mu.Lock()
	q.inflight--
	q.cond.Broadcast()
	q.mu.Unlock()
	return true
}

// process retires one batch: merged invalidation, metadata release, then
// memory return. Bases leave the custody set only after the release
// callback has run, so a double free during any phase of retirement is
// still caught — and, crucially, never reaches the allocator while it
// still considers the span live. The final delete is conditional on the
// base still being in this batch's phase: a reincarnation that stole
// custody mid-retirement (see enqueue) keeps its fresh entry.
func (q *quarantine) process(batch []quarEntry, id uint64) {
	met := q.met.Load()
	var start time.Time
	if met != nil {
		start = time.Now()
	}
	tid := int32(batch[0].base >> 12)

	metas := make([]*pointerlog.ObjectMeta, 0, len(batch))
	for _, e := range batch {
		if m := q.d.logger.MetaAt(e.handle); m != nil {
			metas = append(metas, m)
		}
	}
	q.d.logger.InvalidateMany(metas, q.d.mem)
	for _, e := range batch {
		q.d.logger.ReleaseMeta(e.handle)
	}

	bases := make([]uint64, len(batch))
	for i, e := range batch {
		bases[i] = e.base
	}
	if q.release != nil {
		if _, err := q.release(bases); err != nil && met != nil {
			// Fail-open: a span the allocator refused stays unusable but
			// everything else in the batch was returned (the callback
			// continues past errors). Count it; do not crash the drain.
			met.releaseErrors.Inc(tid)
		}
	}

	// Epoch boundary: let the cold tier reclaim segments retired by the
	// batch's metadata releases, amortized exactly like the merged walk.
	q.d.logger.CompactCold()

	q.mu.Lock()
	for _, b := range bases {
		if q.bases[b] == id {
			delete(q.bases, b)
		}
	}
	q.mu.Unlock()

	q.epochs.Add(1)
	if met != nil {
		met.batchObjects.Observe(tid, uint64(len(batch)))
		met.drainNs.Since(tid, start)
	}
}

// Drain retires every pending entry and waits for in-flight batches
// (including the background worker's) to finish. New frees arriving during
// the drain are drained too; the ring is empty and quiescent on return.
func (q *quarantine) Drain() {
	if q == nil {
		return
	}
	for {
		for q.drainOne(q.epoch) {
		}
		q.mu.Lock()
		for q.inflight > 0 {
			q.cond.Wait()
		}
		empty := len(q.pending)-q.head == 0
		q.mu.Unlock()
		if empty {
			return
		}
	}
}
