package dangsan

import (
	"testing"

	"dangsan/internal/pointerlog"
	"dangsan/internal/vmem"
)

// benchFree times the malloc → register×8 → free cycle; the free path is
// the only thing that differs between the two configurations, so the delta
// is the free-side cost of inline invalidation vs deferred enqueue.
func benchFree(b *testing.B, cfg pointerlog.Config, deferred bool) {
	d := NewWithConfig(cfg)
	as := vmem.New()
	d.Bind(as)
	as.Heap().MapPages(vmem.HeapBase, 512)
	if deferred {
		if !d.BindRelease(func(bases []uint64) (int, error) { return len(bases), nil }) {
			b.Fatal("quarantine not armed")
		}
	}
	const nLocs = 8
	// The base ring must outsize the maximum quarantine depth so a base is
	// never re-allocated while still in custody.
	const ring = 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := vmem.HeapBase + uint64(i%ring)*vmem.PageSize
		d.OnAlloc(base, 64, 8)
		for j := 0; j < nLocs; j++ {
			loc := vmem.GlobalsBase + uint64(j)*8
			as.StoreWord(loc, base+8)
			d.OnPtrStore(loc, base+8, 0)
		}
		if deferred {
			if _, err := d.OnFreeDeferred(base, 64, 8); err != nil {
				b.Fatal(err)
			}
		} else {
			d.OnFree(base, 64, 8)
		}
	}
	b.StopTimer()
	d.DrainQuarantine()
}

func BenchmarkFreeSerial(b *testing.B) {
	benchFree(b, pointerlog.DefaultConfig(), false)
}

func BenchmarkFreeQuarantined(b *testing.B) {
	cfg := pointerlog.DefaultConfig()
	cfg.QuarantineBytes = 8 << 20
	cfg.QuarantineEpoch = 64
	cfg.QuarantineSync = true
	benchFree(b, cfg, true)
}
