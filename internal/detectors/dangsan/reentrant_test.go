package dangsan

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dangsan/internal/pointerlog"
	"dangsan/internal/tcmalloc"
	"dangsan/internal/vmem"
)

// within fails the test if fn does not return in d — a hung drain is a
// deadlock regression, and the default 10-minute test timeout is a terrible
// way to learn about one.
func within(t *testing.T, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("deadlock: operation did not finish")
	}
}

// Regression for the quarantine self-deadlock: on the synchronous and
// overflow drain paths the freeing thread IS the retiring thread, so a
// release callback that re-enters free (legal under the BindRelease
// contract — the allocator may coalesce and trim) used to wait on its own
// batch forever. Enqueue must never block.
func TestReentrantFreeFromReleaseCallback(t *testing.T) {
	d := NewWithConfig(quarCfg(1<<20, 1, true))
	as := vmem.New()
	d.Bind(as)
	as.Heap().MapPages(vmem.HeapBase, 512)

	b0, b1 := uint64(vmem.HeapBase), uint64(vmem.HeapBase+vmem.PageSize)
	s0, s1 := uint64(vmem.GlobalsBase), uint64(vmem.GlobalsBase+8)

	rl := &releaseLog{}
	var reentered bool
	release := func(bases []uint64) (int, error) {
		n, err := rl.release(bases)
		if !reentered {
			// Depth 1, mid-retirement of b0's batch, same goroutine: this
			// nested free must drain inline (epoch 1) and come back.
			reentered = true
			if _, ferr := d.OnFreeDeferred(b1, 64, 8); ferr != nil {
				t.Errorf("re-entrant free: %v", ferr)
			}
		}
		return n, err
	}
	if !d.BindRelease(release) {
		t.Fatal("quarantine not armed")
	}
	quarObj(d, as, b0, s0)
	quarObj(d, as, b1, s1)

	within(t, 10*time.Second, func() {
		if _, err := d.OnFreeDeferred(b0, 64, 8); err != nil {
			t.Errorf("outer free: %v", err)
		}
	})
	if got := rl.flat(); len(got) != 2 || got[0] != b0 || got[1] != b1 {
		t.Fatalf("released %v, want [%#x %#x]", got, b0, b1)
	}
	for _, s := range []uint64{s0, s1} {
		if v, _ := as.LoadWord(s); v&pointerlog.InvalidBit == 0 {
			t.Fatalf("slot %#x survived the nested drains: 0x%x", s, v)
		}
	}
	if d.Quarantined(b0) || d.Quarantined(b1) {
		t.Fatal("custody not empty after nested drains")
	}
}

// A base handed back through the release callback may be re-issued by the
// allocator and freed again before the batch's custody entries are deleted.
// That reincarnation must steal custody from the dying batch — not report a
// double free, not deadlock, not leave a stranded custody entry.
func TestReincarnationStealsCustody(t *testing.T) {
	d := NewWithConfig(quarCfg(1<<20, 1, true))
	as := vmem.New()
	d.Bind(as)
	as.Heap().MapPages(vmem.HeapBase, 512)

	base := uint64(vmem.HeapBase)
	slot := uint64(vmem.GlobalsBase)

	rl := &releaseLog{}
	var cycled bool
	release := func(bases []uint64) (int, error) {
		n, err := rl.release(bases)
		if !cycled {
			cycled = true
			// The allocator re-issues the span it just got back; the program
			// uses it and frees it — all before our batch finishes retiring.
			quarObj(d, as, base, slot+8)
			if _, ferr := d.OnFreeDeferred(base, 64, 8); ferr != nil {
				t.Errorf("reincarnated free reported: %v", ferr)
			}
		}
		return n, err
	}
	if !d.BindRelease(release) {
		t.Fatal("quarantine not armed")
	}
	quarObj(d, as, base, slot)

	within(t, 10*time.Second, func() {
		if _, err := d.OnFreeDeferred(base, 64, 8); err != nil {
			t.Errorf("outer free: %v", err)
		}
	})
	if got := rl.flat(); len(got) != 2 || got[0] != base || got[1] != base {
		t.Fatalf("released %v, want the base twice", got)
	}
	if d.Quarantined(base) {
		t.Fatal("stranded custody entry after reincarnation")
	}
	// Both incarnations' pointers were invalidated by their own drains.
	for _, s := range []uint64{slot, slot + 8} {
		if v, _ := as.LoadWord(s); v&pointerlog.InvalidBit == 0 {
			t.Fatalf("slot %#x not invalidated: 0x%x", s, v)
		}
	}
}

// The steal is only for reincarnations (provable by the live shadow entry a
// fresh OnAlloc created). A plain second free of a mid-retirement base has
// no shadow entry and must still be reported as a double free.
func TestDoubleFreeDuringRetirement(t *testing.T) {
	d := NewWithConfig(quarCfg(1<<20, 1, true))
	as := vmem.New()
	d.Bind(as)
	as.Heap().MapPages(vmem.HeapBase, 512)

	base := uint64(vmem.HeapBase)
	var dup error
	var once bool
	release := func(bases []uint64) (int, error) {
		if !once {
			once = true
			_, dup = d.OnFreeDeferred(base, 64, 8)
		}
		return len(bases), nil
	}
	if !d.BindRelease(release) {
		t.Fatal("quarantine not armed")
	}
	quarObj(d, as, base, vmem.GlobalsBase)
	within(t, 10*time.Second, func() {
		if _, err := d.OnFreeDeferred(base, 64, 8); err != nil {
			t.Errorf("outer free: %v", err)
		}
	})
	var dfe *tcmalloc.DoubleFreeError
	if !errors.As(dup, &dfe) || dfe.Addr != base {
		t.Fatalf("mid-retirement double free not caught: %v", dup)
	}
	if d.Quarantined(base) {
		t.Fatal("custody entry leaked after retirement")
	}
}

// Reincarnation hammer under -race: goroutines cycle alloc → many logged
// stores (enough to spill each incarnation's log to the cold tier) → free,
// with the asynchronous epoch worker retiring batches concurrently. The
// cross-tier audit identity must hold throughout and custody must end
// empty — this is the concurrent spill + epoch-drain case.
func TestQuarantineReincarnationHammer(t *testing.T) {
	cfg := quarCfg(1<<16, 4, false)
	cfg.Lookback = 0
	cfg.Compression = false
	cfg.MaxLogEntries = 12
	cfg.ColdSpillBytes = pointerlog.MinColdSpillBytes
	cfg.ColdDir = t.TempDir()
	cfg.Audit = true
	d := NewWithConfig(cfg)
	defer d.Close()
	as := vmem.New()
	d.Bind(as)
	as.Heap().MapPages(vmem.HeapBase, 512)

	const (
		workers = 4
		rounds  = 12
		stores  = 120 // unique locations per incarnation: enough to spill
	)
	// Per-worker return channels stand in for the allocator: a span can be
	// re-issued the moment the release callback hands it back — which is
	// still before the batch's custody entries are deleted, so the
	// reincarnation steal stays hot.
	rl := &releaseLog{}
	returned := make([]chan struct{}, workers)
	for g := range returned {
		returned[g] = make(chan struct{}, rounds)
	}
	release := func(bases []uint64) (int, error) {
		n, err := rl.release(bases)
		for _, b := range bases {
			returned[(b-vmem.HeapBase)/vmem.PageSize] <- struct{}{}
		}
		return n, err
	}
	if !d.BindRelease(release) {
		t.Fatal("quarantine not armed")
	}

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := vmem.HeapBase + uint64(g)*vmem.PageSize
			for r := 0; r < rounds; r++ {
				if r > 0 {
					<-returned[g] // wait for the allocator to re-issue the span
				}
				d.OnAlloc(base, 64, 8)
				for i := 0; i < stores; i++ {
					loc := vmem.GlobalsBase + uint64((g*rounds+r)*stores+i)*8
					as.StoreWord(loc, base+8)
					d.OnPtrStore(loc, base+8, int32(g))
				}
				if _, err := d.OnFreeDeferred(base, 64, 8); err != nil {
					t.Errorf("worker %d round %d: %v", g, r, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	within(t, 30*time.Second, d.DrainQuarantine)

	for g := 0; g < workers; g++ {
		if d.Quarantined(vmem.HeapBase + uint64(g)*vmem.PageSize) {
			t.Fatalf("worker %d's base stranded in custody", g)
		}
	}
	if v := d.AuditViolations(); len(v) != 0 {
		t.Fatalf("audit violations under concurrent spill + drain: %v", v)
	}
	snap := d.Stats()
	if snap.Spills == 0 {
		t.Fatalf("hammer never spilled — fixture lost its point: %+v", snap)
	}
	if snap.ColdReadErrors != 0 {
		t.Fatalf("cold read errors without injected faults: %+v", snap)
	}
	if want := uint64(workers * rounds * stores); snap.Invalidated+snap.Stale != want {
		t.Fatalf("invalidated+stale=%d want %d: locations lost across tiers",
			snap.Invalidated+snap.Stale, want)
	}
	released := rl.flat()
	if len(released) != workers*rounds {
		t.Fatalf("released %d spans, want %d", len(released), workers*rounds)
	}
}
