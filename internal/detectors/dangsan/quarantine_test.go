package dangsan

import (
	"errors"
	"sync"
	"testing"

	"dangsan/internal/obs"
	"dangsan/internal/pointerlog"
	"dangsan/internal/tcmalloc"
	"dangsan/internal/vmem"
)

// quarCfg returns the default config with deferred-free mode armed.
func quarCfg(budget uint64, epoch int, syncMode bool) pointerlog.Config {
	cfg := pointerlog.DefaultConfig()
	cfg.QuarantineBytes = budget
	cfg.QuarantineEpoch = epoch
	cfg.QuarantineSync = syncMode
	return cfg
}

// releaseLog records every batch the quarantine hands back, standing in for
// the runtime's allocator-return callback.
type releaseLog struct {
	mu      sync.Mutex
	batches [][]uint64
}

func (r *releaseLog) release(bases []uint64) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.batches = append(r.batches, append([]uint64(nil), bases...))
	return len(bases), nil
}

func (r *releaseLog) flat() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []uint64
	for _, b := range r.batches {
		out = append(out, b...)
	}
	return out
}

func (r *releaseLog) sizes() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []int
	for _, b := range r.batches {
		out = append(out, len(b))
	}
	return out
}

func newQuarBound(t *testing.T, cfg pointerlog.Config) (*Detector, *vmem.AddressSpace, *releaseLog) {
	t.Helper()
	d := NewWithConfig(cfg)
	as := vmem.New()
	d.Bind(as)
	as.Heap().MapPages(vmem.HeapBase, 512)
	rl := &releaseLog{}
	if !d.BindRelease(rl.release) {
		t.Fatal("BindRelease refused: quarantine not armed")
	}
	return d, as, rl
}

// quarObj allocates one 64-byte object at base and plants a pointer to its
// interior in the given global slot.
func quarObj(d *Detector, as *vmem.AddressSpace, base, slot uint64) {
	d.OnAlloc(base, 64, 8)
	as.StoreWord(slot, base+8)
	d.OnPtrStore(slot, base+8, 0)
}

// A deferred free must withhold everything — no invalidation, no memory
// return — until the epoch boundary, then retire the whole batch in FIFO
// order with one drain.
func TestDeferredFreeWithholdsUntilEpoch(t *testing.T) {
	d, as, rl := newQuarBound(t, quarCfg(1<<20, 4, true))
	bases := make([]uint64, 4)
	slots := make([]uint64, 4)
	for i := range bases {
		bases[i] = vmem.HeapBase + uint64(i)*vmem.PageSize
		slots[i] = vmem.GlobalsBase + uint64(i)*8
		quarObj(d, as, bases[i], slots[i])
	}
	for i := 0; i < 3; i++ {
		taken, err := d.OnFreeDeferred(bases[i], 64, 8)
		if !taken || err != nil {
			t.Fatalf("free %d: taken=%v err=%v", i, taken, err)
		}
		if !d.Quarantined(bases[i]) {
			t.Fatalf("base %d not in custody after deferred free", i)
		}
		if v, _ := as.LoadWord(slots[i]); v&pointerlog.InvalidBit != 0 {
			t.Fatalf("slot %d invalidated before the epoch boundary: 0x%x", i, v)
		}
	}
	if got := rl.sizes(); len(got) != 0 {
		t.Fatalf("memory released before the epoch boundary: %v", got)
	}

	// The fourth free completes the epoch: everything retires at once.
	if taken, err := d.OnFreeDeferred(bases[3], 64, 8); !taken || err != nil {
		t.Fatalf("boundary free: taken=%v err=%v", taken, err)
	}
	if got := rl.sizes(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("batch sizes = %v, want [4]", got)
	}
	for i, b := range rl.flat() {
		if b != bases[i] {
			t.Fatalf("release order %v, want FIFO %v", rl.flat(), bases)
		}
	}
	for i := range bases {
		if v, _ := as.LoadWord(slots[i]); v != (bases[i]+8)|pointerlog.InvalidBit {
			t.Fatalf("slot %d after drain: 0x%x", i, v)
		}
		if d.Quarantined(bases[i]) {
			t.Fatalf("base %d still in custody after drain", i)
		}
	}
	if s := d.Stats(); s.Invalidated != 4 {
		t.Fatalf("stats: %+v", s)
	}
}

// DrainQuarantine retires a partial epoch on demand.
func TestDrainQuarantineRetiresPartialEpoch(t *testing.T) {
	d, as, rl := newQuarBound(t, quarCfg(1<<20, 64, true))
	base := uint64(vmem.HeapBase)
	slot := uint64(vmem.GlobalsBase + 8)
	quarObj(d, as, base, slot)
	if _, err := d.OnFreeDeferred(base, 64, 8); err != nil {
		t.Fatal(err)
	}
	d.DrainQuarantine()
	if v, _ := as.LoadWord(slot); v != (base+8)|pointerlog.InvalidBit {
		t.Fatalf("slot after drain: 0x%x", v)
	}
	if got := rl.sizes(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("batch sizes = %v, want [1]", got)
	}
}

// Epoch retirement is deterministic in synchronous mode: batches of exactly
// the epoch width at each boundary, the remainder on the final drain.
func TestEpochRetirementDeterministic(t *testing.T) {
	d, as, rl := newQuarBound(t, quarCfg(1<<20, 2, true))
	var bases []uint64
	for i := 0; i < 5; i++ {
		base := vmem.HeapBase + uint64(i)*vmem.PageSize
		quarObj(d, as, base, vmem.GlobalsBase+uint64(i)*8)
		bases = append(bases, base)
	}
	for _, b := range bases {
		if _, err := d.OnFreeDeferred(b, 64, 8); err != nil {
			t.Fatal(err)
		}
	}
	d.DrainQuarantine()
	if got := rl.sizes(); len(got) != 3 || got[0] != 2 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("batch sizes = %v, want [2 2 1]", got)
	}
	for i, b := range rl.flat() {
		if b != bases[i] {
			t.Fatalf("release order %v, want FIFO %v", rl.flat(), bases)
		}
	}
}

// Blowing the byte budget must force synchronous drains on the freeing
// thread (fail-open), never growth without bound and never a worker
// dependency.
func TestOverflowForcesSyncDrain(t *testing.T) {
	d, as, rl := newQuarBound(t, quarCfg(100, 8, false))
	reg := obs.NewRegistry()
	d.AttachMetrics(reg)

	b0, b1 := uint64(vmem.HeapBase), uint64(vmem.HeapBase+vmem.PageSize)
	quarObj(d, as, b0, vmem.GlobalsBase)
	quarObj(d, as, b1, vmem.GlobalsBase+8)
	if _, err := d.OnFreeDeferred(b0, 64, 8); err != nil {
		t.Fatal(err)
	}
	if got := rl.sizes(); len(got) != 0 {
		t.Fatalf("drained under budget: %v", got)
	}
	// 128 pending bytes > the 100-byte budget: this enqueue must drain
	// inline before returning.
	if _, err := d.OnFreeDeferred(b1, 64, 8); err != nil {
		t.Fatal(err)
	}
	if got := rl.sizes(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("batch sizes = %v, want [2]", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["dangsan.quarantine_overflow_drains"] == 0 {
		t.Fatal("overflow drain not counted")
	}
	if v, _ := as.LoadWord(vmem.GlobalsBase); v&pointerlog.InvalidBit == 0 {
		t.Fatalf("pointer survived overflow drain: 0x%x", v)
	}
}

// A second free of a quarantined base is a double free: the custody set is
// the only structure that can still name it (the shadow entry died at the
// first free).
func TestDoubleFreeWhileQuarantined(t *testing.T) {
	d, as, _ := newQuarBound(t, quarCfg(1<<20, 64, true))
	base := uint64(vmem.HeapBase)
	quarObj(d, as, base, vmem.GlobalsBase)
	if taken, err := d.OnFreeDeferred(base, 64, 8); !taken || err != nil {
		t.Fatalf("first free: taken=%v err=%v", taken, err)
	}
	taken, err := d.OnFreeDeferred(base, 64, 8)
	if !taken {
		t.Fatal("double free not taken (would reach the allocator)")
	}
	var dfe *tcmalloc.DoubleFreeError
	if !errors.As(err, &dfe) || dfe.Addr != base {
		t.Fatalf("err = %v, want DoubleFreeError{%#x}", err, base)
	}
	// The first free's custody stands: the drain still retires it cleanly.
	d.DrainQuarantine()
	if d.Quarantined(base) {
		t.Fatal("custody leaked after drain")
	}
}

// The extended accounting identity (live + quarantined + released) must
// hold at every checkpoint of the defer/drain cycle.
func TestAuditIdentityAcrossQuarantine(t *testing.T) {
	cfg := quarCfg(1<<20, 4, true)
	cfg.Audit = true
	d, as, _ := newQuarBound(t, cfg)
	for i := 0; i < 10; i++ {
		base := vmem.HeapBase + uint64(i)*vmem.PageSize
		quarObj(d, as, base, vmem.GlobalsBase+uint64(i)*8)
	}
	for i := 0; i < 10; i++ {
		if _, err := d.OnFreeDeferred(vmem.HeapBase+uint64(i)*vmem.PageSize, 64, 8); err != nil {
			t.Fatal(err)
		}
		d.Stats() // runs the audit cross-check with entries mid-quarantine
	}
	d.DrainQuarantine()
	d.Stats()
	if aud := d.AuditViolations(); len(aud) > 0 {
		t.Fatalf("audit violations: %v", aud)
	}
}

// Background-worker mode under concurrency: many threads freeing at once,
// one final drain, nothing lost and nothing double-released. Run with
// -race. Audit mode stays off here — its identity is only exact without
// concurrent registers (see the pointerlog audit package comment); the
// deterministic synchronous tests above cover it.
func TestQuarantineConcurrent(t *testing.T) {
	d, as, rl := newQuarBound(t, quarCfg(1<<20, 4, false))
	const goroutines, each = 8, 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				n := uint64(g*each + i)
				base := vmem.HeapBase + n*vmem.PageSize
				slot := vmem.GlobalsBase + n*8
				d.OnAlloc(base, 64, 8)
				as.StoreWord(slot, base+8)
				d.OnPtrStore(slot, base+8, int32(g))
				if taken, err := d.OnFreeDeferred(base, 64, 8); !taken || err != nil {
					t.Errorf("free %d: taken=%v err=%v", n, taken, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	d.DrainQuarantine()

	const total = goroutines * each
	released := rl.flat()
	if len(released) != total {
		t.Fatalf("released %d bases, want %d", len(released), total)
	}
	seen := make(map[uint64]bool, total)
	for _, b := range released {
		if seen[b] {
			t.Fatalf("base 0x%x released twice", b)
		}
		seen[b] = true
	}
	for n := uint64(0); n < total; n++ {
		if v, _ := as.LoadWord(vmem.GlobalsBase + n*8); v != (vmem.HeapBase+n*vmem.PageSize+8)|pointerlog.InvalidBit {
			t.Fatalf("slot %d: 0x%x", n, v)
		}
	}
	if s := d.Stats(); s.Invalidated != total {
		t.Fatalf("stats: %+v", s)
	}
}
