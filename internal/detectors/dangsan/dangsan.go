// Package dangsan implements the paper's use-after-free detection system:
// the heap tracker and pointer tracker glue that connects the
// pointer-to-object mapper (internal/shadow) with the pointer logger
// (internal/pointerlog).
//
// Event flow, matching the paper's Figures 2-4:
//
//   - malloc  -> createobj: allocate per-object metadata, write its handle
//     into every shadow slot the object covers.
//   - pointer store -> ptr2obj (shadow lookup of the stored VALUE) then
//     logptr (append the store LOCATION to the object's per-thread log).
//   - free    -> ptr2obj then invalptrs: re-verify every logged location
//     and overwrite still-valid pointers with their most-significant-bit
//     set; then clear the shadow slots and recycle the metadata.
package dangsan

import (
	"time"

	"dangsan/internal/detectors"
	"dangsan/internal/faultinject"
	"dangsan/internal/obs"
	"dangsan/internal/pointerlog"
	"dangsan/internal/shadow"
	"dangsan/internal/tcmalloc"
)

// Detector is the DangSan system. Create with New; it must be bound to the
// process's memory (done automatically by proc.New) before use.
type Detector struct {
	table  *shadow.Table
	logger *pointerlog.Logger
	mem    detectors.Memory
	// quar is the epoch quarantine engine; nil unless
	// Config.QuarantineBytes armed deferred-free mode.
	quar *quarantine
	// met holds the detector-level instruments (free-path latency); nil
	// until AttachMetrics.
	met *detMetrics
}

// detMetrics bundles the detector's own obs instruments (the logger and
// shadow table attach theirs separately).
type detMetrics struct {
	freeNs *obs.Histogram
}

var _ detectors.Detector = (*Detector)(nil)
var _ detectors.Binder = (*Detector)(nil)
var _ detectors.ThreadAware = (*Detector)(nil)
var _ detectors.DeferredFree = (*Detector)(nil)

// New creates a DangSan detector with the paper's default configuration.
func New() *Detector {
	return NewWithConfig(pointerlog.DefaultConfig())
}

// NewWithConfig creates a DangSan detector with explicit pointer-log
// tunables (used by the ablation benchmarks).
func NewWithConfig(cfg pointerlog.Config) *Detector {
	d := &Detector{
		table:  shadow.NewTable(),
		logger: pointerlog.NewLogger(cfg),
	}
	// Build the quarantine from the validated config so the epoch width
	// default has been applied.
	d.quar = newQuarantine(d, d.logger.Config())
	return d
}

// Options configures a detector beyond the pointer-log tunables:
// accounting audit mode and an observability registry to attach.
type Options struct {
	// Config carries the pointer-log tunables; the zero value means
	// pointerlog.DefaultConfig().
	Config pointerlog.Config
	// Audit turns on the log-byte accounting cross-check
	// (pointerlog.Config.Audit).
	Audit bool
	// Metrics, when non-nil, receives the detector's instruments.
	Metrics *obs.Registry
	// Faults, when non-nil, injects failures into the detector's own
	// metadata paths (registry, log blocks, hash tables, shadow pages);
	// failed allocations fall into degraded (untracked) mode.
	Faults *faultinject.Plane
}

// NewWithOptions creates a DangSan detector with audit mode and metrics
// wired through.
func NewWithOptions(opts Options) *Detector {
	cfg := opts.Config
	if cfg == (pointerlog.Config{}) {
		cfg = pointerlog.DefaultConfig()
	}
	cfg.Audit = cfg.Audit || opts.Audit
	d := NewWithConfig(cfg)
	d.InjectFaults(opts.Faults)
	d.AttachMetrics(opts.Metrics)
	return d
}

// InjectFaults attaches a fault-injection plane to the logger and shadow
// table. Call before the detector sees traffic; nil disables injection.
func (d *Detector) InjectFaults(p *faultinject.Plane) {
	d.logger.InjectFaults(p)
	d.table.InjectFaults(p)
}

// AttachMetrics registers the detector's instruments — the pointer
// logger's and the shadow table's — with reg. Safe to call with nil.
func (d *Detector) AttachMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	d.logger.AttachMetrics(reg)
	d.table.AttachMetrics(reg)
	d.met = &detMetrics{freeNs: reg.Histogram("dangsan.free_ns")}
	if d.quar != nil {
		d.quar.attachMetrics(reg)
	}
}

// Bind implements detectors.Binder.
func (d *Detector) Bind(mem detectors.Memory) { d.mem = mem }

// Name implements detectors.Detector.
func (d *Detector) Name() string { return "dangsan" }

// AllocPad implements detectors.Detector: every allocation grows by one
// byte so a one-past-the-end pointer still maps to its object (paper §4.4).
func (d *Detector) AllocPad() uint64 { return 1 }

// OnAlloc implements detectors.Detector (the heap tracker's malloc hook).
// When metadata cannot be allocated (registry full, MaxMetadataBytes
// reached, or injected failure) the object enters degraded mode: it is
// simply never mapped in the shadow table, so pointer stores into it cost
// one failed lookup and its free skips invalidation — coverage loss,
// never a crash or a false UAF report.
func (d *Detector) OnAlloc(base, size, align uint64) {
	_, handle, err := d.logger.CreateMeta(base, size)
	if err != nil {
		d.logger.NoteDegraded(int32(base >> 12))
		return
	}
	if err := d.table.CreateObject(base, size, align, handle); err != nil {
		// Shadow population failed (rolled back internally): release the
		// metadata again so the handle can never surface half-mapped.
		d.logger.ReleaseMeta(handle)
		d.logger.NoteDegraded(int32(base >> 12))
	}
}

// OnReallocInPlace implements detectors.Detector. Growth extends the shadow
// mapping by re-running createobj (paper §4.2); shrinking additionally
// clears the no-longer-covered tail.
func (d *Detector) OnReallocInPlace(base, oldSize, newSize, align uint64) {
	handle := d.table.Lookup(base)
	if handle == 0 {
		return
	}
	meta := d.logger.MetaAt(handle)
	if meta == nil || meta.Base() != base {
		return
	}
	meta.SetSize(newSize)
	if err := d.table.CreateObject(base, newSize, align, handle); err != nil {
		// Extending the shadow mapping failed and the failed CreateObject
		// rolled back what it wrote, which may include part of the old
		// mapping. Converge to a consistent state by untracking the object
		// entirely: clear both extents (infallible), retire the metadata.
		// Its logged locations die unverified — coverage loss only.
		old := oldSize
		if newSize > old {
			old = newSize
		}
		d.table.ClearObject(base, old, align)
		d.logger.ReleaseMeta(handle)
		d.logger.NoteDegraded(int32(base >> 12))
		d.logger.BumpGen()
		return
	}
	if newSize < oldSize {
		d.table.ClearObject(base+newSize, oldSize-newSize, align)
	}
	// Cached fast-path extents for this object are stale either way.
	d.logger.BumpGen()
}

// OnFree implements detectors.Detector (the heap tracker's free hook): this
// is where dangling pointers die.
func (d *Detector) OnFree(base, size, align uint64) {
	var start time.Time
	met := d.met
	if met != nil {
		start = time.Now()
	}
	handle := d.table.Lookup(base)
	if handle == 0 {
		return
	}
	meta := d.logger.MetaAt(handle)
	if meta == nil || meta.Base() != base {
		return
	}
	d.logger.Invalidate(meta, d.mem)
	d.table.ClearObject(base, size, align)
	d.logger.ReleaseMeta(handle)
	if met != nil {
		met.freeNs.Since(int32(base>>12), start)
	}
}

// BindRelease implements detectors.DeferredFree: the runtime hands over
// its memory-return callback and learns whether quarantine mode is armed.
func (d *Detector) BindRelease(release func(bases []uint64) (int, error)) bool {
	if d.quar == nil {
		return false
	}
	d.quar.release = release
	return true
}

// OnFreeDeferred implements detectors.DeferredFree: instead of walking the
// object's logs inline, clear its shadow mapping, move its metadata into
// the quarantined accounting set, and enqueue it for the next epoch drain.
// The free-side cost is a shadow clear plus a short critical section —
// independent of the object's location-set size, which is the whole point.
func (d *Detector) OnFreeDeferred(base, size, align uint64) (bool, error) {
	var start time.Time
	met := d.met
	if met != nil {
		start = time.Now()
	}
	handle := d.table.Lookup(base)
	if handle == 0 {
		// Untracked — unless it is a quarantined object being freed again:
		// its shadow entry was cleared at the first free, so the custody
		// set is the only thing that can still name it.
		if d.quar.contains(base) {
			return true, &tcmalloc.DoubleFreeError{Addr: base}
		}
		return false, nil
	}
	meta := d.logger.MetaAt(handle)
	if meta == nil || meta.Base() != base {
		return false, nil
	}
	d.table.ClearObject(base, size, align)
	// Cached store fast paths may hold this object's extent; invalidate
	// them now (Invalidate would have, at the epoch boundary — too late
	// for stores racing the free).
	d.logger.BumpGen()
	d.logger.QuarantineMeta(handle)
	err := d.quar.enqueue(quarEntry{handle: handle, base: base, size: size})
	if met != nil {
		met.freeNs.Since(int32(base>>12), start)
	}
	return true, err
}

// Quarantined implements detectors.DeferredFree.
func (d *Detector) Quarantined(base uint64) bool {
	return d.quar.contains(base)
}

// DrainQuarantine implements detectors.DeferredFree: synchronously retire
// every pending epoch. Safe to call with quarantine unarmed.
func (d *Detector) DrainQuarantine() {
	d.quar.Drain()
}

// OnPtrStore implements detectors.Detector (the pointer tracker's
// registerptr): look up the object the stored value points into, then log
// the store location against it. Values that point outside any tracked
// object — NULL, globals, stack, freed memory — cost exactly one shadow
// lookup.
func (d *Detector) OnPtrStore(loc, val uint64, tid int32) {
	handle := d.table.Lookup(val)
	if handle == 0 {
		return
	}
	meta := d.logger.MetaAt(handle)
	if meta == nil {
		return
	}
	d.logger.Register(meta, loc, tid)
}

// threadCtx is the per-thread store fast path: a memo of the last object
// this thread stored a pointer into — its extent and this thread's log —
// valid while the logger's generation is unchanged (no free or in-place
// realloc has happened since the memo was filled). A hit skips both the
// shadow lookup and the thread-log list walk.
type threadCtx struct {
	tid       int32
	gen       uint64
	base, end uint64
	tl        *pointerlog.ThreadLog
}

// NewThreadContext implements detectors.ThreadAware.
func (d *Detector) NewThreadContext(tid int32) detectors.ThreadContext {
	return &threadCtx{tid: tid}
}

// OnPtrStoreCtx implements detectors.ThreadAware: OnPtrStore with the
// storing thread's memo. The generation is read before the shadow lookup
// on the fill path, so a free racing with the fill bumps the generation
// past the memoized one and the memo misses from then on; the residual
// window (store racing the free of its own target) is the same benign
// race the seed path has, reconciled by free-time re-verification.
func (d *Detector) OnPtrStoreCtx(ctx detectors.ThreadContext, loc, val uint64) {
	c := ctx.(*threadCtx)
	if c.tl != nil && val >= c.base && val < c.end && c.gen == d.logger.Gen() {
		d.logger.RegisterWith(c.tl, loc, c.tid)
		return
	}
	gen := d.logger.Gen()
	handle := d.table.Lookup(val)
	if handle == 0 {
		return
	}
	meta := d.logger.MetaAt(handle)
	if meta == nil {
		return
	}
	tl := d.logger.Register(meta, loc, c.tid)
	c.tl, c.base, c.end, c.gen = tl, meta.Base(), meta.Base()+meta.Size(), gen
}

// OnMemcpy implements detectors.MemcpyHooker (the §7 extension): scan every
// aligned word of the copied destination; values that land in tracked
// objects get their new location registered, so pointers copied
// type-unsafely (memcpy, realloc moves) are invalidated at free time like
// any other copy. False registrations of integers that happen to look like
// object addresses are harmless: free-time verification treats a location
// whose value moved on as stale, and invalidating a true look-alike only
// flips a bit the paper argues is vanishingly unlikely to matter (§4.4).
func (d *Detector) OnMemcpy(dst, src, n uint64, tid int32) {
	start := (dst + 7) &^ 7
	for loc := start; loc+8 <= dst+n; loc += 8 {
		val, fault := d.mem.LoadWord(loc)
		if fault != nil {
			return
		}
		d.OnPtrStore(loc, val, tid)
	}
}

// MetadataBytes implements detectors.Detector.
func (d *Detector) MetadataBytes() uint64 {
	return d.table.Bytes() + d.logger.Stats().LogBytesTotal()
}

// Stats exposes the pointer-log counters for the Table 1 experiments.
// With audit mode on, taking a snapshot also runs the accounting
// cross-check, so a drift shows up in AuditViolations even if no free
// happens afterwards.
func (d *Detector) Stats() pointerlog.Snapshot {
	d.logger.AuditCheck()
	return d.logger.Stats().Snapshot()
}

// AuditViolations reports accumulated audit-mode accounting failures
// (empty unless Options.Audit was set and the accounting drifted).
func (d *Detector) AuditViolations() []string {
	return d.logger.AuditViolations()
}

// Logger exposes the underlying logger (tests and ablations).
func (d *Detector) Logger() *pointerlog.Logger { return d.logger }

// Close releases OS resources the detector holds — today the cold-tier
// spill file, present only when Config.ColdSpillBytes armed tiering. The
// detector must be quiescent (drain the quarantine first). Safe to call
// when nothing was ever spilled.
func (d *Detector) Close() {
	d.logger.Close()
}
