package detectors_test

import (
	"testing"

	"dangsan/internal/detectors"
	"dangsan/internal/detectors/camp"
	"dangsan/internal/detectors/dangnull"
	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/detectors/freesentry"
	"dangsan/internal/detectors/xtag"
	"dangsan/internal/pointerlog"
	"dangsan/internal/proc"
	"dangsan/internal/vmem"
)

// TestDetectorContracts runs the same scenario under every detector and
// checks each system's documented behaviour: who invalidates what, and with
// which value.
func TestDetectorContracts(t *testing.T) {
	type outcome struct {
		heapPtr   func(obj uint64) uint64 // expected value of heap-stored ptr after free
		globalPtr func(obj uint64) uint64 // expected value of global-stored ptr after free
	}
	cases := []struct {
		name string
		mk   func() detectors.Detector
		want outcome
	}{
		{
			name: "baseline",
			mk:   func() detectors.Detector { return detectors.None{} },
			want: outcome{
				heapPtr:   func(obj uint64) uint64 { return obj },
				globalPtr: func(obj uint64) uint64 { return obj },
			},
		},
		{
			name: "dangsan",
			mk:   func() detectors.Detector { return dangsan.New() },
			want: outcome{
				heapPtr:   func(obj uint64) uint64 { return obj | 1<<63 },
				globalPtr: func(obj uint64) uint64 { return obj | 1<<63 },
			},
		},
		{
			name: "dangnull",
			mk:   func() detectors.Detector { return dangnull.New() },
			want: outcome{
				// DangNULL nullifies heap-resident pointers with a fixed
				// value but misses pointers outside the heap entirely.
				heapPtr:   func(obj uint64) uint64 { return dangnull.InvalidValue },
				globalPtr: func(obj uint64) uint64 { return obj },
			},
		},
		{
			name: "freesentry",
			mk:   func() detectors.Detector { return freesentry.New() },
			want: outcome{
				heapPtr:   func(obj uint64) uint64 { return obj | 1<<63 },
				globalPtr: func(obj uint64) uint64 { return obj | 1<<63 },
			},
		},
		{
			// The checked-dereference detectors never rewrite stored
			// pointers: memory keeps the exact (for xtag: tagged) value the
			// program stored, and detection happens when it is used — see
			// TestCheckedDerefDetectsUAF.
			name: "xtag",
			mk:   func() detectors.Detector { return xtag.New() },
			want: outcome{
				heapPtr:   func(obj uint64) uint64 { return obj },
				globalPtr: func(obj uint64) uint64 { return obj },
			},
		},
		{
			name: "camp",
			mk:   func() detectors.Detector { return camp.New() },
			want: outcome{
				heapPtr:   func(obj uint64) uint64 { return obj },
				globalPtr: func(obj uint64) uint64 { return obj },
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := proc.New(c.mk())
			th := p.NewThread()
			obj, err := th.Malloc(64)
			if err != nil {
				t.Fatal(err)
			}
			heapSlot, _ := th.Malloc(8)
			globalSlot := p.AllocGlobal(8)
			th.StorePtr(heapSlot, obj)
			th.StorePtr(globalSlot, obj)
			if err := th.Free(obj); err != nil {
				t.Fatal(err)
			}
			if v, _ := th.Load(heapSlot); v != c.want.heapPtr(obj) {
				t.Errorf("heap ptr = 0x%x, want 0x%x", v, c.want.heapPtr(obj))
			}
			if v, _ := th.Load(globalSlot); v != c.want.globalPtr(obj) {
				t.Errorf("global ptr = 0x%x, want 0x%x", v, c.want.globalPtr(obj))
			}
		})
	}
}

func TestDangNullStaleNotClobbered(t *testing.T) {
	p := proc.New(dangnull.New())
	th := p.NewThread()
	objA, _ := th.Malloc(64)
	objB, _ := th.Malloc(64)
	slot, _ := th.Malloc(8)
	th.StorePtr(slot, objA)
	th.StorePtr(slot, objB) // unregisters the slot from objA
	th.Free(objA)
	if v, _ := th.Load(slot); v != objB {
		t.Fatalf("slot = 0x%x, want objB", v)
	}
}

func TestDangNullTreeTracksLiveObjects(t *testing.T) {
	d := dangnull.New()
	p := proc.New(d)
	th := p.NewThread()
	objs := make([]uint64, 100)
	for i := range objs {
		objs[i], _ = th.Malloc(32)
	}
	if d.LiveObjects() != 100 {
		t.Fatalf("live = %d", d.LiveObjects())
	}
	for _, o := range objs {
		th.Free(o)
	}
	if d.LiveObjects() != 0 {
		t.Fatalf("live after frees = %d", d.LiveObjects())
	}
}

func TestFreeSentryInterior(t *testing.T) {
	p := proc.New(freesentry.New())
	th := p.NewThread()
	obj, _ := th.Malloc(128)
	slot := p.AllocGlobal(8)
	th.StorePtr(slot, obj+64)
	th.Free(obj)
	if v, _ := th.Load(slot); v != (obj+64)|freesentry.InvalidBit {
		t.Fatalf("interior ptr = 0x%x", v)
	}
	// A dereference faults.
	if _, f := th.Deref(slot); f == nil || f.Kind != vmem.FaultNonCanonical {
		t.Fatalf("deref: %v", f)
	}
}

func TestFreeSentryObjectRecycling(t *testing.T) {
	d := freesentry.New()
	p := proc.New(d)
	th := p.NewThread()
	a, _ := th.Malloc(64)
	th.Free(a)
	b, _ := th.Malloc(64)
	slot := p.AllocGlobal(8)
	th.StorePtr(slot, b)
	th.Free(b)
	if v, _ := th.Load(slot); v != b|freesentry.InvalidBit {
		t.Fatalf("recycled object ptr = 0x%x", v)
	}
	reg, inv := d.Stats()
	if reg != 1 || inv != 1 {
		t.Fatalf("stats = %d, %d", reg, inv)
	}
}

// TestCheckedDerefDetectsUAF: the detection contract of the two
// checked-dereference backends — a dangling pointer read back from memory
// faults when dereferenced, with each backend's own fault kind, and the
// fault address preserves the stale pointer.
func TestCheckedDerefDetectsUAF(t *testing.T) {
	cases := []struct {
		name string
		mk   func() detectors.Detector
		kind vmem.FaultKind
	}{
		{"xtag", func() detectors.Detector { return xtag.New() }, vmem.FaultTagMismatch},
		{"camp", func() detectors.Detector { return camp.New() }, vmem.FaultFreedRange},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := proc.New(c.mk())
			th := p.NewThread()
			obj, err := th.Malloc(64)
			if err != nil {
				t.Fatal(err)
			}
			slot := p.AllocGlobal(8)
			th.StorePtr(slot, obj)
			if _, f := th.Deref(slot); f != nil {
				t.Fatalf("deref of live object: %v", f)
			}
			if err := th.Free(obj); err != nil {
				t.Fatal(err)
			}
			_, f := th.Deref(slot)
			if f == nil || f.Kind != c.kind {
				t.Fatalf("stale deref: fault %v, want kind %v", f, c.kind)
			}
			if f.Addr != obj {
				t.Fatalf("fault addr 0x%x, want the stale pointer 0x%x", f.Addr, obj)
			}
			// Direct loads and stores through the stale pointer trap too.
			if _, f := th.Load(obj); f == nil || f.Kind != c.kind {
				t.Fatalf("stale load: %v", f)
			}
			if f := th.StoreInt(obj, 1); f == nil || f.Kind != c.kind {
				t.Fatalf("stale store: %v", f)
			}
			// Free-after-free and realloc-after-free are detected as UAFs,
			// not allocator errors.
			if err := th.Free(obj); err == nil {
				t.Fatal("double free passed")
			} else if vf, ok := err.(*vmem.Fault); !ok || vf.Kind != c.kind {
				t.Fatalf("double free error: %v", err)
			}
			if _, err := th.Realloc(obj, 128); err == nil {
				t.Fatal("realloc of freed pointer passed")
			} else if vf, ok := err.(*vmem.Fault); !ok || vf.Kind != c.kind {
				t.Fatalf("stale realloc error: %v", err)
			}
		})
	}
}

// TestXTagPointerRoundTrip: a tagged pointer is plain data at rest — it
// survives store/load cycles through heap and global memory bit-for-bit and
// still checks correctly afterwards, including via memcpy.
func TestXTagPointerRoundTrip(t *testing.T) {
	p := proc.New(xtag.New())
	th := p.NewThread()
	obj, _ := th.Malloc(64)
	if vmem.PointerTag(obj) == 0 {
		t.Fatalf("malloc returned untagged pointer 0x%x", obj)
	}
	a := p.AllocGlobal(8)
	b, _ := th.Malloc(8)
	th.StorePtr(a, obj)
	if f := th.Memcpy(b, a, 8); f != nil {
		t.Fatal(f)
	}
	v, _ := th.Deref(b) // load ptr from b, deref it: still live, still tagged
	_ = v
	got, _ := th.Load(b)
	if got != obj {
		t.Fatalf("round-tripped pointer = 0x%x, want 0x%x", got, obj)
	}
	if f := th.StoreInt(obj, 42); f != nil {
		t.Fatal(f)
	}
	if v, _ := th.Load(obj); v != 42 {
		t.Fatalf("load through tagged pointer = %d", v)
	}
}

// TestReallocShrinkDropsTail is the in-place-shrink regression for every
// backend: after tcmalloc shrinks a large span in place, the dead tail must
// leave the detector's registry — pointers into it are not invalidated at
// free time (they no longer belong to the object), while the checking
// backends must conversely detect accesses into the dead tail immediately.
func TestReallocShrinkDropsTail(t *testing.T) {
	const (
		oldSize = 512 << 10 // large span (> sizeclass.MaxSmallSize)
		newSize = 320 << 10 // still large: resized in place
		tailOff = 400 << 10 // inside old, beyond new
	)
	run := func(t *testing.T, det detectors.Detector) (th *proc.Thread, obj, headSlot, tailSlot uint64) {
		p := proc.New(det)
		th = p.NewThread()
		obj, err := th.Malloc(oldSize)
		if err != nil {
			t.Fatal(err)
		}
		headSlot, _ = th.Malloc(8) // heap slots: tracked by every backend
		tailSlot, _ = th.Malloc(8)
		th.StorePtr(headSlot, obj+8)
		th.StorePtr(tailSlot, obj+tailOff) // registered before the shrink
		got, err := th.Realloc(obj, newSize)
		if err != nil {
			t.Fatal(err)
		}
		if vmem.StripTag(got) != vmem.StripTag(obj) {
			t.Fatalf("expected in-place shrink, object moved 0x%x -> 0x%x", obj, got)
		}
		return th, obj, headSlot, tailSlot
	}

	t.Run("dangnull", func(t *testing.T) {
		th, obj, headSlot, tailSlot := run(t, dangnull.New())
		// A registration landing in the dead tail after the shrink must
		// find no object.
		lateSlot, _ := th.Malloc(8)
		th.StorePtr(lateSlot, obj+tailOff)
		if err := th.Free(obj); err != nil {
			t.Fatal(err)
		}
		if v, _ := th.Load(headSlot); v != dangnull.InvalidValue {
			t.Fatalf("head ptr = 0x%x, want nullified", v)
		}
		for _, slot := range []uint64{tailSlot, lateSlot} {
			if v, _ := th.Load(slot); v != obj+tailOff {
				t.Fatalf("tail ptr = 0x%x, want untouched 0x%x", v, obj+tailOff)
			}
		}
	})
	t.Run("freesentry", func(t *testing.T) {
		th, obj, headSlot, tailSlot := run(t, freesentry.New())
		lateSlot, _ := th.Malloc(8)
		th.StorePtr(lateSlot, obj+tailOff)
		if err := th.Free(obj); err != nil {
			t.Fatal(err)
		}
		if v, _ := th.Load(headSlot); v != (obj+8)|freesentry.InvalidBit {
			t.Fatalf("head ptr = 0x%x, want invalidated", v)
		}
		for _, slot := range []uint64{tailSlot, lateSlot} {
			if v, _ := th.Load(slot); v != obj+tailOff {
				t.Fatalf("tail ptr = 0x%x, want untouched 0x%x", v, obj+tailOff)
			}
		}
	})
	t.Run("xtag", func(t *testing.T) {
		th, obj, _, tailSlot := run(t, xtag.New())
		// The dead tail carries the freed marker: the stale interior
		// pointer faults now, before the object is even freed.
		if _, f := th.Deref(tailSlot); f == nil || f.Kind != vmem.FaultTagMismatch {
			t.Fatalf("tail deref after shrink: %v", f)
		}
		if _, f := th.Load(obj + 8); f != nil {
			t.Fatalf("head access after shrink: %v", f)
		}
	})
	t.Run("camp", func(t *testing.T) {
		th, obj, _, tailSlot := run(t, camp.New())
		if _, f := th.Deref(tailSlot); f == nil || f.Kind != vmem.FaultFreedRange {
			t.Fatalf("tail deref after shrink: %v", f)
		}
		if _, f := th.Load(obj + 8); f != nil {
			t.Fatalf("head access after shrink: %v", f)
		}
	})
}

// TestMemcpyCannotReviveQuarantined pins the MemcpyHooker/quarantine
// interaction: once a free parks an object in the epoch quarantine, its
// shadow mapping is gone, so a memcpy of a word that still points into the
// object must NOT re-register the destination — a revived registration would
// be invalidated at the epoch drain, past the object's lifetime. Only the
// location registered before the free may be invalidated.
func TestMemcpyCannotReviveQuarantined(t *testing.T) {
	cfg := pointerlog.DefaultConfig()
	cfg.QuarantineBytes = 1 << 20
	cfg.QuarantineEpoch = pointerlog.MaxQuarantineEpoch // never drains on its own here
	cfg.QuarantineSync = true
	d := dangsan.NewWithOptions(dangsan.Options{Config: cfg, Audit: true})
	p := proc.New(d)
	if !p.EnableMemcpyHook() {
		t.Fatal("dangsan does not implement MemcpyHooker")
	}
	th := p.NewThread()
	obj, err := th.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	g := p.AllocGlobal(8)
	th.StorePtr(g, obj) // registered while live: the one legitimate target
	src, _ := th.Malloc(16)
	dst, _ := th.Malloc(16)
	if err := th.Free(obj); err != nil {
		t.Fatal(err)
	}
	if !d.Quarantined(obj) {
		t.Fatal("freed object not parked in quarantine")
	}
	// Plant the dangling value with an integer store (no registration) and
	// copy it: the hook scans dst and sees a word pointing into obj.
	if f := th.StoreInt(src, obj); f != nil {
		t.Fatal(f)
	}
	if f := th.Memcpy(dst, src, 8); f != nil {
		t.Fatal(f)
	}
	d.DrainQuarantine()
	if v, _ := th.Load(g); v != obj|1<<63 {
		t.Errorf("registered global = 0x%x, want invalidated 0x%x", v, obj|1<<63)
	}
	// The copied word must survive the drain untouched: registration after
	// the free would have invalidated it here.
	for _, loc := range []uint64{src, dst} {
		if v, _ := th.Load(loc); v != obj {
			t.Errorf("unregistered copy at 0x%x = 0x%x, want raw 0x%x", loc, v, obj)
		}
	}
	if snap := d.Stats(); snap.Invalidated != 1 {
		t.Errorf("invalidated = %d, want 1 (the pre-free registration only)", snap.Invalidated)
	}
	if aud := d.AuditViolations(); len(aud) > 0 {
		t.Errorf("audit violations: %v", aud)
	}
}
