package detectors_test

import (
	"testing"

	"dangsan/internal/detectors"
	"dangsan/internal/detectors/dangnull"
	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/detectors/freesentry"
	"dangsan/internal/proc"
	"dangsan/internal/vmem"
)

// TestDetectorContracts runs the same scenario under every detector and
// checks each system's documented behaviour: who invalidates what, and with
// which value.
func TestDetectorContracts(t *testing.T) {
	type outcome struct {
		heapPtr   func(obj uint64) uint64 // expected value of heap-stored ptr after free
		globalPtr func(obj uint64) uint64 // expected value of global-stored ptr after free
	}
	cases := []struct {
		name string
		mk   func() detectors.Detector
		want outcome
	}{
		{
			name: "baseline",
			mk:   func() detectors.Detector { return detectors.None{} },
			want: outcome{
				heapPtr:   func(obj uint64) uint64 { return obj },
				globalPtr: func(obj uint64) uint64 { return obj },
			},
		},
		{
			name: "dangsan",
			mk:   func() detectors.Detector { return dangsan.New() },
			want: outcome{
				heapPtr:   func(obj uint64) uint64 { return obj | 1<<63 },
				globalPtr: func(obj uint64) uint64 { return obj | 1<<63 },
			},
		},
		{
			name: "dangnull",
			mk:   func() detectors.Detector { return dangnull.New() },
			want: outcome{
				// DangNULL nullifies heap-resident pointers with a fixed
				// value but misses pointers outside the heap entirely.
				heapPtr:   func(obj uint64) uint64 { return dangnull.InvalidValue },
				globalPtr: func(obj uint64) uint64 { return obj },
			},
		},
		{
			name: "freesentry",
			mk:   func() detectors.Detector { return freesentry.New() },
			want: outcome{
				heapPtr:   func(obj uint64) uint64 { return obj | 1<<63 },
				globalPtr: func(obj uint64) uint64 { return obj | 1<<63 },
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := proc.New(c.mk())
			th := p.NewThread()
			obj, err := th.Malloc(64)
			if err != nil {
				t.Fatal(err)
			}
			heapSlot, _ := th.Malloc(8)
			globalSlot := p.AllocGlobal(8)
			th.StorePtr(heapSlot, obj)
			th.StorePtr(globalSlot, obj)
			if err := th.Free(obj); err != nil {
				t.Fatal(err)
			}
			if v, _ := th.Load(heapSlot); v != c.want.heapPtr(obj) {
				t.Errorf("heap ptr = 0x%x, want 0x%x", v, c.want.heapPtr(obj))
			}
			if v, _ := th.Load(globalSlot); v != c.want.globalPtr(obj) {
				t.Errorf("global ptr = 0x%x, want 0x%x", v, c.want.globalPtr(obj))
			}
		})
	}
}

func TestDangNullStaleNotClobbered(t *testing.T) {
	p := proc.New(dangnull.New())
	th := p.NewThread()
	objA, _ := th.Malloc(64)
	objB, _ := th.Malloc(64)
	slot, _ := th.Malloc(8)
	th.StorePtr(slot, objA)
	th.StorePtr(slot, objB) // unregisters the slot from objA
	th.Free(objA)
	if v, _ := th.Load(slot); v != objB {
		t.Fatalf("slot = 0x%x, want objB", v)
	}
}

func TestDangNullTreeTracksLiveObjects(t *testing.T) {
	d := dangnull.New()
	p := proc.New(d)
	th := p.NewThread()
	objs := make([]uint64, 100)
	for i := range objs {
		objs[i], _ = th.Malloc(32)
	}
	if d.LiveObjects() != 100 {
		t.Fatalf("live = %d", d.LiveObjects())
	}
	for _, o := range objs {
		th.Free(o)
	}
	if d.LiveObjects() != 0 {
		t.Fatalf("live after frees = %d", d.LiveObjects())
	}
}

func TestFreeSentryInterior(t *testing.T) {
	p := proc.New(freesentry.New())
	th := p.NewThread()
	obj, _ := th.Malloc(128)
	slot := p.AllocGlobal(8)
	th.StorePtr(slot, obj+64)
	th.Free(obj)
	if v, _ := th.Load(slot); v != (obj+64)|freesentry.InvalidBit {
		t.Fatalf("interior ptr = 0x%x", v)
	}
	// A dereference faults.
	if _, f := th.Deref(slot); f == nil || f.Kind != vmem.FaultNonCanonical {
		t.Fatalf("deref: %v", f)
	}
}

func TestFreeSentryObjectRecycling(t *testing.T) {
	d := freesentry.New()
	p := proc.New(d)
	th := p.NewThread()
	a, _ := th.Malloc(64)
	th.Free(a)
	b, _ := th.Malloc(64)
	slot := p.AllocGlobal(8)
	th.StorePtr(slot, b)
	th.Free(b)
	if v, _ := th.Load(slot); v != b|freesentry.InvalidBit {
		t.Fatalf("recycled object ptr = 0x%x", v)
	}
	reg, inv := d.Stats()
	if reg != 1 || inv != 1 {
		t.Fatalf("stats = %d, %d", reg, inv)
	}
}
