package dangnull

import (
	"testing"

	"dangsan/internal/vmem"
)

func newBound(t *testing.T) (*Detector, *vmem.AddressSpace) {
	t.Helper()
	d := New()
	as := vmem.New()
	d.Bind(as)
	as.Heap().MapPages(vmem.HeapBase, 16)
	return d, as
}

func TestHeapOnlyTracking(t *testing.T) {
	d, as := newBound(t)
	obj := uint64(vmem.HeapBase)
	d.OnAlloc(obj, 64, 8)

	heapSlot := uint64(vmem.HeapBase + 4096)
	d.OnAlloc(heapSlot, 8, 8)
	globalSlot := uint64(vmem.GlobalsBase + 8)

	as.StoreWord(heapSlot, obj)
	as.StoreWord(globalSlot, obj)
	d.OnPtrStore(heapSlot, obj, 0)
	d.OnPtrStore(globalSlot, obj, 0)

	if reg, _ := d.Stats(); reg != 1 {
		t.Fatalf("registered %d, want 1 (heap slot only)", reg)
	}
	d.OnFree(obj, 64, 8)
	if v, _ := as.LoadWord(heapSlot); v != InvalidValue {
		t.Fatalf("heap slot = 0x%x, want nullified", v)
	}
	if v, _ := as.LoadWord(globalSlot); v != obj {
		t.Fatalf("global slot = 0x%x, want untouched (coverage gap)", v)
	}
}

func TestUnregisterOnOverwrite(t *testing.T) {
	d, as := newBound(t)
	objA, objB := uint64(vmem.HeapBase), uint64(vmem.HeapBase+64)
	d.OnAlloc(objA, 64, 8)
	d.OnAlloc(objB, 64, 8)
	slot := uint64(vmem.HeapBase + 4096)
	d.OnAlloc(slot, 8, 8)

	as.StoreWord(slot, objA)
	d.OnPtrStore(slot, objA, 0)
	as.StoreWord(slot, objB)
	d.OnPtrStore(slot, objB, 0)

	// DangNULL removed the slot from objA's set: freeing A must not
	// nullify the pointer to B.
	d.OnFree(objA, 64, 8)
	if v, _ := as.LoadWord(slot); v != objB {
		t.Fatalf("slot = 0x%x, want objB", v)
	}
	d.OnFree(objB, 64, 8)
	if v, _ := as.LoadWord(slot); v != InvalidValue {
		t.Fatalf("slot = 0x%x after B's free", v)
	}
}

func TestNullificationDestroysAddressBits(t *testing.T) {
	// The design contrast with DangSan: after nullification nothing
	// relates the value back to the original pointer.
	d, as := newBound(t)
	obj := uint64(vmem.HeapBase)
	d.OnAlloc(obj, 64, 8)
	slot := uint64(vmem.HeapBase + 4096)
	d.OnAlloc(slot, 8, 8)
	as.StoreWord(slot, obj+32)
	d.OnPtrStore(slot, obj+32, 0)
	d.OnFree(obj, 64, 8)
	v, _ := as.LoadWord(slot)
	if v&0xFFFFFFFF == (obj+32)&0xFFFFFFFF {
		t.Fatalf("nullified value 0x%x retains address bits", v)
	}
	// Dereferencing still faults (kernel-space address).
	if _, f := as.LoadWord(v); f == nil {
		t.Fatal("nullified pointer dereference did not fault")
	}
}

func TestReallocInPlaceExtends(t *testing.T) {
	d, as := newBound(t)
	obj := uint64(vmem.HeapBase)
	d.OnAlloc(obj, vmem.PageSize, vmem.PageSize)
	d.OnReallocInPlace(obj, vmem.PageSize, 2*vmem.PageSize, vmem.PageSize)
	slot := uint64(vmem.HeapBase + 8*vmem.PageSize)
	d.OnAlloc(slot, 8, 8)
	grown := obj + vmem.PageSize + 16
	as.StoreWord(slot, grown)
	d.OnPtrStore(slot, grown, 0)
	d.OnFree(obj, 2*vmem.PageSize, vmem.PageSize)
	if v, _ := as.LoadWord(slot); v != InvalidValue {
		t.Fatalf("pointer into grown range = 0x%x", v)
	}
}
