package dangnull

import (
	"errors"
	"testing"

	"dangsan/internal/faultinject"
	"dangsan/internal/pointerlog"
	"dangsan/internal/vmem"
)

// mem is a word-granular fake detectors.Memory; the detector only ever
// loads, stores, and range-checks constants, so a map suffices.
type mem map[uint64]uint64

func (m mem) LoadWord(a uint64) (uint64, *vmem.Fault) { return m[a], nil }
func (m mem) StoreWord(a, v uint64) *vmem.Fault       { m[a] = v; return nil }
func (m mem) CASWord(a, old, new uint64) (bool, *vmem.Fault) {
	if m[a] == old {
		m[a] = new
		return true, nil
	}
	return false, nil
}

const (
	objA = vmem.HeapBase + 0x1000
	objB = vmem.HeapBase + 0x2000
	locX = vmem.HeapBase + 0x8000 // heap location holding the test pointer
)

// TestChargeMetaTypedError pins the fail-open contract to the same typed
// error dangsan's logger uses: both the budget path and the injected path
// must satisfy errors.Is(err, pointerlog.ErrMetadataExhausted).
func TestChargeMetaTypedError(t *testing.T) {
	d := NewWithOptions(Options{MaxMetadataBytes: 1})
	if err := d.chargeMeta(faultinject.MetaAlloc, 96); !errors.Is(err, pointerlog.ErrMetadataExhausted) {
		t.Fatalf("budget exhaustion: want ErrMetadataExhausted, got %v", err)
	}

	plane := faultinject.New(3)
	plane.Enable(faultinject.MetaAlloc, 1.0, -1)
	d2 := NewWithOptions(Options{Faults: plane})
	if err := d2.chargeMeta(faultinject.MetaAlloc, 96); !errors.Is(err, pointerlog.ErrMetadataExhausted) {
		t.Fatalf("injected failure: want ErrMetadataExhausted, got %v", err)
	}
	if plane.Injected(faultinject.MetaAlloc) != 1 {
		t.Fatalf("plane counted %d injections, want 1", plane.Injected(faultinject.MetaAlloc))
	}
}

// TestDegradedAllocFailOpen: an allocation whose metadata fails is simply
// untracked — stores into it register nothing, its free nullifies nothing,
// and the stale pointer keeps its raw bits (a missed detection, never a
// false one). Tracking resumes for later objects once injection stops.
func TestDegradedAllocFailOpen(t *testing.T) {
	plane := faultinject.New(7)
	plane.Enable(faultinject.MetaAlloc, 1.0, 1) // exactly one injected failure
	d := NewWithOptions(Options{Faults: plane})
	m := mem{}
	d.Bind(m)

	d.OnAlloc(objA, 64, 8) // degraded
	if got := d.LiveObjects(); got != 0 {
		t.Fatalf("degraded object tracked: LiveObjects=%d", got)
	}
	m[locX] = objA + 16
	d.OnPtrStore(locX, objA+16, 0)
	d.OnFree(objA, 64, 8)
	if m[locX] != objA+16 {
		t.Fatalf("free of a degraded object touched memory: loc=0x%x", m[locX])
	}
	if deg, dropped := d.Degraded(); deg != 1 || dropped != 0 {
		t.Fatalf("Degraded()=(%d,%d), want (1,0)", deg, dropped)
	}

	// The plane's budget is spent: the next object is tracked and its
	// invalidation contract holds.
	d.OnAlloc(objB, 64, 8)
	m[locX] = objB + 8
	d.OnPtrStore(locX, objB+8, 0)
	d.OnFree(objB, 64, 8)
	if m[locX] != InvalidValue {
		t.Fatalf("tracked object not nullified after degraded episode: loc=0x%x", m[locX])
	}
	if _, inv := d.Stats(); inv != 1 {
		t.Fatalf("invalidated=%d, want 1", inv)
	}
}

// TestDroppedRegistrationFailOpen: when the budget admits the object but
// not the registration, the registration is dropped — the dangling pointer
// is missed at free time (coverage loss) but nothing crashes or corrupts.
func TestDroppedRegistrationFailOpen(t *testing.T) {
	d := NewWithOptions(Options{MaxMetadataBytes: 100}) // object (96) fits, +32 does not
	m := mem{}
	d.Bind(m)

	d.OnAlloc(objA, 64, 8)
	if got := d.LiveObjects(); got != 1 {
		t.Fatalf("LiveObjects=%d, want 1", got)
	}
	m[locX] = objA
	d.OnPtrStore(locX, objA, 0)
	if deg, dropped := d.Degraded(); deg != 0 || dropped != 1 {
		t.Fatalf("Degraded()=(%d,%d), want (0,1)", deg, dropped)
	}
	d.OnFree(objA, 64, 8)
	if m[locX] != objA {
		t.Fatalf("dropped registration still nullified: loc=0x%x", m[locX])
	}
	if _, inv := d.Stats(); inv != 0 {
		t.Fatalf("invalidated=%d, want 0", inv)
	}
	if got := d.LiveObjects(); got != 0 {
		t.Fatalf("freed object still tracked: LiveObjects=%d", got)
	}
}
