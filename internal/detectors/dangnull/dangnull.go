// Package dangnull implements a baseline modelled on DangNULL (Lee et al.,
// NDSS 2015), the lock-based dangling-pointer nullification system the
// paper compares against. It reproduces DangNULL's published design points:
//
//   - a global lock serializes every tracking operation (the paper's §9:
//     "it uses data structures that require locking");
//   - pointer-to-object mapping uses a balanced tree, whose lookups degrade
//     as live objects grow (paper §4.3);
//   - only pointers that are themselves stored on the heap are tracked, so
//     dangling pointers in globals or on the stack escape (the coverage gap
//     Table 1 quantifies);
//   - invalidation overwrites pointers with a fixed invalid value
//     (nullification) instead of preserving the address bits.
package dangnull

import (
	"fmt"
	"sync"

	"dangsan/internal/detectors"
	"dangsan/internal/faultinject"
	"dangsan/internal/pointerlog"
	"dangsan/internal/rbtree"
	"dangsan/internal/vmem"
)

// InvalidValue is what DangNULL writes over dangling pointers: a fixed
// kernel-space address, guaranteed to fault on dereference but — unlike
// DangSan's bit-setting — destroying the original pointer bits.
const InvalidValue = 0xFFFF_8000_0000_0000

type object struct {
	base, end uint64
	// locs are the heap locations currently holding pointers into this
	// object.
	locs map[uint64]struct{}
}

// Detector is the DangNULL-style baseline.
type Detector struct {
	mu      sync.Mutex
	objects rbtree.Tree        // [base,end) -> *object
	byLoc   map[uint64]*object // reverse index for unregister-on-overwrite
	mem     detectors.Memory

	maxMetadataBytes uint64
	faults           *faultinject.Plane

	statRegistered  uint64
	statInvalidated uint64
	statDegraded    uint64
	statDropped     uint64
	metadataBytes   uint64
}

var _ detectors.Detector = (*Detector)(nil)
var _ detectors.Binder = (*Detector)(nil)

// New creates the baseline detector.
func New() *Detector {
	return &Detector{byLoc: make(map[uint64]*object)}
}

// Options configures the baseline beyond its defaults: a metadata budget
// and a fault-injection plane, mirroring dangsan's degraded-mode knobs so
// the baselines can be compared under the same memory-pressure model.
type Options struct {
	// MaxMetadataBytes caps the detector's (approximate) metadata
	// footprint; 0 means unlimited. Tracking that would exceed the cap is
	// dropped fail-open, exactly like dangsan's.
	MaxMetadataBytes uint64
	// Faults, when non-nil, injects failures into the metadata paths.
	Faults *faultinject.Plane
}

// NewWithOptions creates the baseline with a metadata budget and fault
// plane attached.
func NewWithOptions(opts Options) *Detector {
	d := New()
	d.maxMetadataBytes = opts.MaxMetadataBytes
	d.faults = opts.Faults
	return d
}

// InjectFaults attaches a fault-injection plane. Call before the detector
// sees traffic; nil disables injection.
func (d *Detector) InjectFaults(p *faultinject.Plane) { d.faults = p }

// chargeMeta accounts n metadata bytes against the budget, consulting the
// fault plane at site first. It fails with the same typed error dangsan's
// logger uses (pointerlog.ErrMetadataExhausted) so callers up the stack
// can treat all three detectors' exhaustion uniformly. Must be called with
// d.mu held.
func (d *Detector) chargeMeta(site faultinject.Site, n uint64) error {
	if d.faults.Fail(site) {
		return fmt.Errorf("dangnull: injected metadata failure: %w", pointerlog.ErrMetadataExhausted)
	}
	if d.maxMetadataBytes != 0 && d.metadataBytes+n > d.maxMetadataBytes {
		return fmt.Errorf("dangnull: metadata budget exceeded: %w", pointerlog.ErrMetadataExhausted)
	}
	d.metadataBytes += n
	return nil
}

// Bind implements detectors.Binder.
func (d *Detector) Bind(mem detectors.Memory) { d.mem = mem }

// Name implements detectors.Detector.
func (d *Detector) Name() string { return "dangnull" }

// AllocPad implements detectors.Detector.
func (d *Detector) AllocPad() uint64 { return 0 }

// OnAlloc implements detectors.Detector. When the tree node cannot be
// paid for (budget blown or injected failure) the object enters degraded
// mode: it is simply never inserted, so pointer stores into it miss the
// containment lookup and its free finds nothing to nullify — coverage
// loss, never a crash or a false report. This is the same fail-open
// contract as dangsan's OnAlloc.
func (d *Detector) OnAlloc(base, size, align uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.chargeMeta(faultinject.MetaAlloc, 96); err != nil {
		d.statDegraded++
		return
	}
	d.objects.Insert(base, base+size, &object{
		base: base,
		end:  base + size,
		locs: make(map[uint64]struct{}),
	})
}

// OnReallocInPlace implements detectors.Detector.
func (d *Detector) OnReallocInPlace(base, oldSize, newSize, align uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if v, ok := d.objects.Get(base); ok {
		obj := v.(*object)
		obj.end = base + newSize
		d.objects.Insert(base, base+newSize, obj)
	}
}

// OnFree implements detectors.Detector: nullify all tracked pointers to the
// object, then forget it.
func (d *Detector) OnFree(base, size, align uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	v, ok := d.objects.Get(base)
	if !ok {
		return
	}
	obj := v.(*object)
	for loc := range obj.locs {
		w, fault := d.mem.LoadWord(loc)
		if fault == nil && w >= obj.base && w < obj.end {
			d.mem.StoreWord(loc, InvalidValue)
			d.statInvalidated++
		}
		delete(d.byLoc, loc)
	}
	d.objects.Delete(base)
}

// OnPtrStore implements detectors.Detector. Note the two DangNULL
// restrictions: the location must be on the heap, and the whole operation
// holds the global lock.
func (d *Detector) OnPtrStore(loc, val uint64, tid int32) {
	if loc < vmem.HeapBase || loc >= vmem.HeapBase+vmem.HeapMax {
		return // heap-resident pointers only
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if old, ok := d.byLoc[loc]; ok {
		delete(old.locs, loc)
		delete(d.byLoc, loc)
	}
	v, ok := d.objects.LookupContaining(val)
	if !ok {
		return
	}
	// The two map entries must fit the budget; a dropped registration
	// loses this location's coverage but keeps the structures consistent
	// (the old binding above is already gone either way).
	if err := d.chargeMeta(faultinject.LogBlockAlloc, 32); err != nil {
		d.statDropped++
		return
	}
	obj := v.(*object)
	obj.locs[loc] = struct{}{}
	d.byLoc[loc] = obj
	d.statRegistered++
}

// MetadataBytes implements detectors.Detector (approximate: the precise
// footprint of Go maps is opaque, so this tracks logical growth).
func (d *Detector) MetadataBytes() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.metadataBytes
}

// Stats reports (registered, invalidated) counters for Table 1.
func (d *Detector) Stats() (registered, invalidated uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.statRegistered, d.statInvalidated
}

// Degraded reports the fail-open coverage losses: objects that were never
// tracked and pointer registrations that were dropped.
func (d *Detector) Degraded() (objects, dropped uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.statDegraded, d.statDropped
}

// LiveObjects reports the number of tracked objects.
func (d *Detector) LiveObjects() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.objects.Len()
}
