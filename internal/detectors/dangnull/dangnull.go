// Package dangnull implements a baseline modelled on DangNULL (Lee et al.,
// NDSS 2015), the lock-based dangling-pointer nullification system the
// paper compares against. It reproduces DangNULL's published design points:
//
//   - a global lock serializes every tracking operation (the paper's §9:
//     "it uses data structures that require locking");
//   - pointer-to-object mapping uses a balanced tree, whose lookups degrade
//     as live objects grow (paper §4.3);
//   - only pointers that are themselves stored on the heap are tracked, so
//     dangling pointers in globals or on the stack escape (the coverage gap
//     Table 1 quantifies);
//   - invalidation overwrites pointers with a fixed invalid value
//     (nullification) instead of preserving the address bits.
package dangnull

import (
	"sync"

	"dangsan/internal/detectors"
	"dangsan/internal/rbtree"
	"dangsan/internal/vmem"
)

// InvalidValue is what DangNULL writes over dangling pointers: a fixed
// kernel-space address, guaranteed to fault on dereference but — unlike
// DangSan's bit-setting — destroying the original pointer bits.
const InvalidValue = 0xFFFF_8000_0000_0000

type object struct {
	base, end uint64
	// locs are the heap locations currently holding pointers into this
	// object.
	locs map[uint64]struct{}
}

// Detector is the DangNULL-style baseline.
type Detector struct {
	mu      sync.Mutex
	objects rbtree.Tree        // [base,end) -> *object
	byLoc   map[uint64]*object // reverse index for unregister-on-overwrite
	mem     detectors.Memory

	statRegistered  uint64
	statInvalidated uint64
	metadataBytes   uint64
}

var _ detectors.Detector = (*Detector)(nil)
var _ detectors.Binder = (*Detector)(nil)

// New creates the baseline detector.
func New() *Detector {
	return &Detector{byLoc: make(map[uint64]*object)}
}

// Bind implements detectors.Binder.
func (d *Detector) Bind(mem detectors.Memory) { d.mem = mem }

// Name implements detectors.Detector.
func (d *Detector) Name() string { return "dangnull" }

// AllocPad implements detectors.Detector.
func (d *Detector) AllocPad() uint64 { return 0 }

// OnAlloc implements detectors.Detector.
func (d *Detector) OnAlloc(base, size, align uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.objects.Insert(base, base+size, &object{
		base: base,
		end:  base + size,
		locs: make(map[uint64]struct{}),
	})
	d.metadataBytes += 96 // node + object + empty map, approximate
}

// OnReallocInPlace implements detectors.Detector.
func (d *Detector) OnReallocInPlace(base, oldSize, newSize, align uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if v, ok := d.objects.Get(base); ok {
		obj := v.(*object)
		obj.end = base + newSize
		d.objects.Insert(base, base+newSize, obj)
	}
}

// OnFree implements detectors.Detector: nullify all tracked pointers to the
// object, then forget it.
func (d *Detector) OnFree(base, size, align uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	v, ok := d.objects.Get(base)
	if !ok {
		return
	}
	obj := v.(*object)
	for loc := range obj.locs {
		w, fault := d.mem.LoadWord(loc)
		if fault == nil && w >= obj.base && w < obj.end {
			d.mem.StoreWord(loc, InvalidValue)
			d.statInvalidated++
		}
		delete(d.byLoc, loc)
	}
	d.objects.Delete(base)
}

// OnPtrStore implements detectors.Detector. Note the two DangNULL
// restrictions: the location must be on the heap, and the whole operation
// holds the global lock.
func (d *Detector) OnPtrStore(loc, val uint64, tid int32) {
	if loc < vmem.HeapBase || loc >= vmem.HeapBase+vmem.HeapMax {
		return // heap-resident pointers only
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if old, ok := d.byLoc[loc]; ok {
		delete(old.locs, loc)
		delete(d.byLoc, loc)
	}
	v, ok := d.objects.LookupContaining(val)
	if !ok {
		return
	}
	obj := v.(*object)
	obj.locs[loc] = struct{}{}
	d.byLoc[loc] = obj
	d.statRegistered++
	d.metadataBytes += 32 // two map entries, approximate
}

// MetadataBytes implements detectors.Detector (approximate: the precise
// footprint of Go maps is opaque, so this tracks logical growth).
func (d *Detector) MetadataBytes() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.metadataBytes
}

// Stats reports (registered, invalidated) counters for Table 1.
func (d *Detector) Stats() (registered, invalidated uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.statRegistered, d.statInvalidated
}

// LiveObjects reports the number of tracked objects.
func (d *Detector) LiveObjects() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.objects.Len()
}
