// Package detectors defines the interface between the simulated process
// runtime (internal/proc) and use-after-free detection systems, plus the
// uninstrumented baseline. Concrete systems live in subpackages:
// detectors/dangsan (the paper's contribution), detectors/dangnull and
// detectors/freesentry (the baselines it is evaluated against).
package detectors

import "dangsan/internal/vmem"

// Detector observes the allocation and pointer-store events of a simulated
// process. Implementations must be safe for concurrent use: events arrive
// from every thread of the process.
type Detector interface {
	// Name identifies the detector in benchmark output.
	Name() string

	// AllocPad returns extra bytes the runtime adds to every allocation
	// request. DangSan returns 1 so that a one-past-the-end pointer still
	// lies within its object (paper §4.4); baselines return 0.
	AllocPad() uint64

	// OnAlloc fires after an object is allocated. size is the usable
	// (rounded) size; align is the allocator's alignment guarantee for the
	// object's pages.
	OnAlloc(base, size, align uint64)

	// OnReallocInPlace fires when an object changed extent without moving
	// (tcmalloc resized a large span). The detector must refresh its
	// mapping for [base, base+newSize) and drop any tail mapping when the
	// object shrank.
	OnReallocInPlace(base, oldSize, newSize, align uint64)

	// OnFree fires before the allocator releases a (valid) object. This is
	// where invalidation-based detectors neutralize dangling pointers.
	OnFree(base, size, align uint64)

	// OnPtrStore fires after the program stores the pointer-typed value
	// val to the memory location loc from thread tid.
	OnPtrStore(loc, val uint64, tid int32)

	// MetadataBytes reports the detector's current metadata footprint, for
	// the memory-overhead experiments.
	MetadataBytes() uint64
}

// Binder is implemented by detectors that need access to the process's
// simulated memory (e.g. to read pointer values back during invalidation).
// The process runtime calls Bind exactly once, before any other hook.
type Binder interface {
	Bind(mem Memory)
}

// ThreadContext is opaque per-thread detector state. The runtime obtains
// one per simulated thread from ThreadAware.NewThreadContext and passes
// it back on that thread's pointer stores, giving the detector a place
// to keep an unsynchronized store fast path (e.g. a memoized
// object-to-log mapping) without any thread-local lookup of its own.
type ThreadContext interface{}

// ThreadAware is implemented by detectors that maintain a per-thread
// store fast path. When a detector implements it, the runtime calls
// OnPtrStoreCtx with the storing thread's context instead of OnPtrStore;
// both must have identical observable behavior — the context is purely
// an optimization channel.
type ThreadAware interface {
	// NewThreadContext creates the context for a new thread. It is called
	// once per thread, before any store from that thread.
	NewThreadContext(tid int32) ThreadContext

	// OnPtrStoreCtx is OnPtrStore with the storing thread's context. ctx
	// is only ever passed back from the thread it was created for, so the
	// detector may mutate it without synchronization.
	OnPtrStoreCtx(ctx ThreadContext, loc, val uint64)
}

// Memory is the view of simulated memory detectors may use: checked reads
// (reporting the simulated SIGSEGV instead of crashing) and
// compare-and-swap for race-free invalidation. *vmem.AddressSpace
// implements it.
type Memory interface {
	LoadWord(addr uint64) (uint64, *vmem.Fault)
	CASWord(addr, old, new uint64) (bool, *vmem.Fault)
	StoreWord(addr, val uint64) *vmem.Fault
}

// DeferredFree is implemented by detectors that can take custody of freed
// objects instead of invalidating them inline: the free enqueues into a
// bounded quarantine and a later epoch drain invalidates a whole batch with
// one merged walk, returning the memory to the allocator only once its
// metadata has been retired (so no address is reused while invalidation is
// pending).
type DeferredFree interface {
	// BindRelease hands the detector the runtime's memory-return callback
	// (invoked once per drained epoch with the batch's base addresses) and
	// reports whether deferred-free mode is armed. A false return means the
	// detector is not configured for quarantine and the runtime must free
	// inline; BindRelease is called once, before any OnFreeDeferred.
	BindRelease(release func(bases []uint64) (int, error)) bool

	// OnFreeDeferred offers the detector custody of a freed object. When it
	// returns taken=true the detector now owns the memory: the runtime must
	// NOT free base — it will come back through the release callback when
	// the object's epoch retires. taken=false means the object is untracked
	// (degraded mode) and the runtime should free it inline. A non-nil err
	// (e.g. a double free detected against the quarantine) is returned to
	// the program either way.
	OnFreeDeferred(base, size, align uint64) (taken bool, err error)

	// Quarantined reports whether base is currently held in the quarantine
	// (freed, epoch not yet retired). The runtime consults it on paths that
	// would otherwise misread quarantined memory as live, e.g. realloc.
	Quarantined(base uint64) bool

	// DrainQuarantine synchronously retires every pending epoch, returning
	// all quarantined memory. Called under memory pressure and at
	// end-of-run quiesce points.
	DrainQuarantine()
}

// DerefChecker is implemented by detectors that validate addresses at
// dereference time instead of (or in addition to) invalidating pointers at
// free time: camp's allocator-cooperating range check, and — through the
// TagChecker extension — xtag's generation-tag check. The runtime calls
// CheckDeref with the address an operation is about to access, before the
// access happens; the instrumentation pass may elide the check for
// dereferences it proves safe (internal/instrument's ElideDerefChecks).
type DerefChecker interface {
	// CheckDeref validates addr and returns the address the runtime should
	// actually access (for taggers, addr with the tag stripped). A non-nil
	// fault means the access targets freed memory — a detected
	// use-after-free, reported with the original pointer preserved in
	// Fault.Addr — and the access must not be performed. Addresses the
	// detector does not track (stack, globals, untagged or degraded heap
	// objects) pass through unchanged: fail-open, never a false positive.
	CheckDeref(addr uint64) (uint64, *vmem.Fault)
}

// TagChecker is the capability interface of pointer-tagging detectors
// (xtag): beyond checking dereferences, the runtime asks them to brand every
// freshly allocated object's address with its generation tag. Consumed by
// internal/proc (malloc returns the tagged pointer; every address-consuming
// operation strips and checks) and internal/interp (elided checks still
// strip).
type TagChecker interface {
	DerefChecker

	// TagPointer returns base with the current tag of the object at base
	// embedded in the unused high bits (vmem.WithTag). For untracked
	// (degraded) objects it returns base unchanged — tag 0 is "untagged"
	// and always passes CheckDeref.
	TagPointer(base uint64) uint64
}

// MemcpyHooker is implemented by detectors that support the paper's §7
// extension for type-unsafe pointer copies: after a memcpy (including the
// copy inside a moving realloc), OnMemcpy scans the destination for values
// that point into tracked objects and re-registers them, closing the
// coverage gap at the cost of a slower memcpy. The paper's authors chose
// not to enable this in their prototype; it is optional here too
// (proc.Process.EnableMemcpyHook).
type MemcpyHooker interface {
	OnMemcpy(dst, src, n uint64, tid int32)
}

// None is the uninstrumented baseline: every hook is a no-op. Benchmarks
// divide instrumented run time by the None run time to obtain the overhead
// factors reported in the paper's figures.
type None struct{}

// Name implements Detector.
func (None) Name() string { return "baseline" }

// AllocPad implements Detector.
func (None) AllocPad() uint64 { return 0 }

// OnAlloc implements Detector.
func (None) OnAlloc(base, size, align uint64) {}

// OnReallocInPlace implements Detector.
func (None) OnReallocInPlace(base, oldSize, newSize, align uint64) {}

// OnFree implements Detector.
func (None) OnFree(base, size, align uint64) {}

// OnPtrStore implements Detector.
func (None) OnPtrStore(loc, val uint64, tid int32) {}

// MetadataBytes implements Detector.
func (None) MetadataBytes() uint64 { return 0 }
