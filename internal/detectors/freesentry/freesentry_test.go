package freesentry

import (
	"testing"

	"dangsan/internal/vmem"
)

func newBound(t *testing.T) (*Detector, *vmem.AddressSpace) {
	t.Helper()
	d := New()
	as := vmem.New()
	d.Bind(as)
	as.Heap().MapPages(vmem.HeapBase, 16)
	return d, as
}

func TestTracksAllLocationKinds(t *testing.T) {
	d, as := newBound(t)
	obj := uint64(vmem.HeapBase)
	d.OnAlloc(obj, 64, 8)

	locs := []uint64{
		vmem.GlobalsBase + 8, // global
		vmem.HeapBase + 4096, // heap (mapped above)
	}
	for _, loc := range locs {
		as.StoreWord(loc, obj)
		d.OnPtrStore(loc, obj, 0)
	}
	if reg, _ := d.Stats(); reg != 2 {
		t.Fatalf("registered %d, want 2", reg)
	}
	d.OnFree(obj, 64, 8)
	for _, loc := range locs {
		if v, _ := as.LoadWord(loc); v != obj|InvalidBit {
			t.Fatalf("loc 0x%x = 0x%x", loc, v)
		}
	}
	if _, inv := d.Stats(); inv != 2 {
		t.Fatalf("invalidated = %d", inv)
	}
}

func TestStaleEntriesSkipped(t *testing.T) {
	d, as := newBound(t)
	obj := uint64(vmem.HeapBase)
	d.OnAlloc(obj, 64, 8)
	loc := uint64(vmem.GlobalsBase + 8)
	as.StoreWord(loc, obj)
	d.OnPtrStore(loc, obj, 0)
	as.StoreWord(loc, 42) // overwritten before free
	d.OnFree(obj, 64, 8)
	if v, _ := as.LoadWord(loc); v != 42 {
		t.Fatalf("stale slot clobbered: 0x%x", v)
	}
}

func TestHandleRecycling(t *testing.T) {
	d, as := newBound(t)
	a := uint64(vmem.HeapBase)
	d.OnAlloc(a, 64, 8)
	d.OnFree(a, 64, 8)
	// Same address recycled: the new object gets a fresh (recycled) handle
	// and independent tracking.
	d.OnAlloc(a, 64, 8)
	loc := uint64(vmem.GlobalsBase + 16)
	as.StoreWord(loc, a+8)
	d.OnPtrStore(loc, a+8, 0)
	d.OnFree(a, 64, 8)
	if v, _ := as.LoadWord(loc); v != (a+8)|InvalidBit {
		t.Fatalf("recycled-handle pointer = 0x%x", v)
	}
}

func TestAppendOnlyGrowth(t *testing.T) {
	// FreeSentry has no lookback: duplicate stores append every time,
	// which is exactly the memory behaviour DangSan's lookback avoids.
	d, as := newBound(t)
	obj := uint64(vmem.HeapBase)
	d.OnAlloc(obj, 64, 8)
	loc := uint64(vmem.GlobalsBase + 8)
	as.StoreWord(loc, obj)
	before := d.MetadataBytes()
	for i := 0; i < 1000; i++ {
		d.OnPtrStore(loc, obj, 0)
	}
	if got := d.MetadataBytes() - before; got < 8000 {
		t.Fatalf("metadata grew by %d, want >= 8000 (no dedup)", got)
	}
}
