package freesentry

import (
	"errors"
	"testing"

	"dangsan/internal/faultinject"
	"dangsan/internal/pointerlog"
	"dangsan/internal/vmem"
)

// mem is a word-granular fake detectors.Memory.
type mem map[uint64]uint64

func (m mem) LoadWord(a uint64) (uint64, *vmem.Fault) { return m[a], nil }
func (m mem) StoreWord(a, v uint64) *vmem.Fault       { m[a] = v; return nil }
func (m mem) CASWord(a, old, new uint64) (bool, *vmem.Fault) {
	if m[a] == old {
		m[a] = new
		return true, nil
	}
	return false, nil
}

const (
	objA = vmem.HeapBase + 0x1000
	objB = vmem.HeapBase + 0x2000
	locX = vmem.HeapBase + 0x8000
)

// TestChargeMetaTypedError pins the fail-open contract to the same typed
// error dangsan's logger uses for metadata exhaustion.
func TestChargeMetaTypedError(t *testing.T) {
	d := NewWithOptions(Options{MaxMetadataBytes: 1})
	if err := d.chargeMeta(faultinject.MetaAlloc, 48); !errors.Is(err, pointerlog.ErrMetadataExhausted) {
		t.Fatalf("budget exhaustion: want ErrMetadataExhausted, got %v", err)
	}

	plane := faultinject.New(3)
	plane.Enable(faultinject.MetaAlloc, 1.0, -1)
	d2 := NewWithOptions(Options{Faults: plane})
	if err := d2.chargeMeta(faultinject.MetaAlloc, 48); !errors.Is(err, pointerlog.ErrMetadataExhausted) {
		t.Fatalf("injected failure: want ErrMetadataExhausted, got %v", err)
	}
}

// TestDegradedAllocFailOpen: a metadata-failed allocation goes untracked —
// stores into it register nothing and its free invalidates nothing — while
// later allocations track normally.
func TestDegradedAllocFailOpen(t *testing.T) {
	plane := faultinject.New(11)
	plane.Enable(faultinject.MetaAlloc, 1.0, 1)
	d := NewWithOptions(Options{Faults: plane})
	m := mem{}
	d.Bind(m)

	d.OnAlloc(objA, 64, 8) // degraded
	if h := d.table.Lookup(objA); h != 0 {
		t.Fatalf("degraded object mapped in the shadow table: handle=%d", h)
	}
	m[locX] = objA + 16
	d.OnPtrStore(locX, objA+16, 0)
	d.OnFree(objA, 64, 8)
	if m[locX] != objA+16 {
		t.Fatalf("free of a degraded object touched memory: loc=0x%x", m[locX])
	}
	if deg, dropped := d.Degraded(); deg != 1 || dropped != 0 {
		t.Fatalf("Degraded()=(%d,%d), want (1,0)", deg, dropped)
	}

	d.OnAlloc(objB, 64, 8)
	m[locX] = objB + 8
	d.OnPtrStore(locX, objB+8, 0)
	d.OnFree(objB, 64, 8)
	if m[locX] != (objB+8)|InvalidBit {
		t.Fatalf("tracked object not invalidated after degraded episode: loc=0x%x", m[locX])
	}
	if _, inv := d.Stats(); inv != 1 {
		t.Fatalf("invalidated=%d, want 1", inv)
	}
}

// TestShadowPopulateFailureReleasesHandle covers the previously unhandled
// CreateObject error path: when shadow population fails, the half-created
// handle must be released (no mapping, slot reusable) and the object
// degrades fail-open.
func TestShadowPopulateFailureReleasesHandle(t *testing.T) {
	plane := faultinject.New(19)
	plane.Enable(faultinject.ShadowPopulate, 1.0, 1)
	d := NewWithOptions(Options{Faults: plane})
	m := mem{}
	d.Bind(m)

	d.OnAlloc(objA, 64, 8)
	if h := d.table.Lookup(objA); h != 0 {
		t.Fatalf("failed population left a mapping: handle=%d", h)
	}
	if deg, _ := d.Degraded(); deg != 1 {
		t.Fatalf("degraded=%d, want 1", deg)
	}
	if len(d.free) != 1 || d.objs[d.free[0]-1] != nil {
		t.Fatalf("handle not released: free=%v", d.free)
	}

	// The released handle is reused cleanly by the next allocation.
	d.OnAlloc(objB, 64, 8)
	h := d.table.Lookup(objB)
	if h == 0 || d.objs[h-1] == nil || d.objs[h-1].base != objB {
		t.Fatalf("handle reuse broken: handle=%d", h)
	}
	m[locX] = objB
	d.OnPtrStore(locX, objB, 0)
	d.OnFree(objB, 64, 8)
	if m[locX] != objB|InvalidBit {
		t.Fatalf("invalidation contract broken after handle reuse: loc=0x%x", m[locX])
	}
}

// TestReallocGrowFailureConverges covers the previously unhandled
// CreateObject error in OnReallocInPlace: when extending the shadow mapping
// for an in-place grow fails, the rollback wipes (part of) the old mapping,
// and the old code leaked the handle — object record never released,
// metadata never refunded, registered locations never invalidated — with a
// stale end already written. The object must instead degrade fail-open:
// whole extent cleared, record released for reuse, registrations forgotten.
func TestReallocGrowFailureConverges(t *testing.T) {
	plane := faultinject.New(29)
	d := NewWithOptions(Options{Faults: plane})
	m := mem{}
	d.Bind(m)

	base := uint64(vmem.HeapBase)
	d.OnAlloc(base, 2*vmem.PageSize, vmem.PageSize)
	m[locX] = base + 8
	d.OnPtrStore(locX, base+8, 0)
	before := d.MetadataBytes()

	// Fail the shadow population extending the mapping to 4 pages.
	plane.Enable(faultinject.ShadowPopulate, 1.0, 1)
	d.OnReallocInPlace(base, 2*vmem.PageSize, 4*vmem.PageSize, vmem.PageSize)
	plane.Enable(faultinject.ShadowPopulate, 0, 0)

	if h := d.table.Lookup(base); h != 0 {
		t.Fatalf("failed grow left a mapping: handle=%d", h)
	}
	if len(d.free) != 1 || d.objs[d.free[0]-1] != nil {
		t.Fatalf("handle not released: free=%v", d.free)
	}
	if got := d.MetadataBytes(); got >= before {
		t.Fatalf("registration bytes not refunded: %d -> %d", before, got)
	}
	if deg, dropped := d.Degraded(); deg != 1 || dropped != 1 {
		t.Fatalf("Degraded()=(%d,%d), want (1,1)", deg, dropped)
	}

	// The free of the degraded object is a no-op: its registration was
	// forgotten, so the location keeps its raw value (coverage loss, no
	// crash) and the released handle is reusable.
	d.OnFree(base, 4*vmem.PageSize, vmem.PageSize)
	if m[locX] != base+8 {
		t.Fatalf("degraded object still invalidated: loc=0x%x", m[locX])
	}
	d.OnAlloc(objB, 64, 8)
	h := d.table.Lookup(objB)
	if h == 0 || d.objs[h-1] == nil || d.objs[h-1].base != objB {
		t.Fatalf("handle reuse broken after realloc degradation: handle=%d", h)
	}
}

// TestDroppedRegistrationFailOpen: a registration over budget is dropped —
// the location is missed at free time, but structures stay consistent.
func TestDroppedRegistrationFailOpen(t *testing.T) {
	d := NewWithOptions(Options{MaxMetadataBytes: 50}) // object (48) fits, +8 does not
	m := mem{}
	d.Bind(m)

	d.OnAlloc(objA, 64, 8)
	m[locX] = objA
	d.OnPtrStore(locX, objA, 0)
	if deg, dropped := d.Degraded(); deg != 0 || dropped != 1 {
		t.Fatalf("Degraded()=(%d,%d), want (0,1)", deg, dropped)
	}
	d.OnFree(objA, 64, 8)
	if m[locX] != objA {
		t.Fatalf("dropped registration still invalidated: loc=0x%x", m[locX])
	}
	if _, inv := d.Stats(); inv != 0 {
		t.Fatalf("invalidated=%d, want 0", inv)
	}
}
