// Package freesentry implements a baseline modelled on FreeSentry (Younan,
// NDSS 2015), the fast but thread-unsafe pointer-invalidation system the
// paper compares against. Its published design points:
//
//   - pointers anywhere in memory (heap, stack, globals) are tracked, like
//     DangSan and unlike DangNULL;
//   - invalidation flips a high bit, preserving the pointer's address bits;
//   - tracking structures are completely unsynchronized — the reason
//     FreeSentry cannot run multithreaded programs (paper §9). This
//     implementation is likewise only correct when the process runs a
//     single thread; the scalability benchmarks therefore use it at one
//     thread only, exactly as the paper's authors had to.
package freesentry

import (
	"sync/atomic"

	"dangsan/internal/detectors"
	"dangsan/internal/shadow"
)

// InvalidBit mirrors FreeSentry's invalidation: set a bit that cannot occur
// in user-space pointers.
const InvalidBit = uint64(1) << 63

type object struct {
	base, end uint64
	locs      []uint64
}

// Detector is the FreeSentry-style baseline.
type Detector struct {
	table *shadow.Table // constant-time value->object mapping (label table)
	objs  []*object     // index+1 stored in the shadow table
	free  []uint64
	mem   detectors.Memory

	// Stats are atomic only so that a concurrent observer (the benchmark
	// harness's memory sampler) can read them; the tracking structures
	// themselves remain deliberately unsynchronized.
	statRegistered  atomic.Uint64
	statInvalidated atomic.Uint64
	metadataBytes   atomic.Uint64
}

var _ detectors.Detector = (*Detector)(nil)
var _ detectors.Binder = (*Detector)(nil)

// New creates the baseline detector.
func New() *Detector {
	return &Detector{table: shadow.NewTable()}
}

// Bind implements detectors.Binder.
func (d *Detector) Bind(mem detectors.Memory) { d.mem = mem }

// Name implements detectors.Detector.
func (d *Detector) Name() string { return "freesentry" }

// AllocPad implements detectors.Detector.
func (d *Detector) AllocPad() uint64 { return 0 }

// OnAlloc implements detectors.Detector.
func (d *Detector) OnAlloc(base, size, align uint64) {
	obj := &object{base: base, end: base + size}
	var handle uint64
	if n := len(d.free); n > 0 {
		handle = d.free[n-1]
		d.free = d.free[:n-1]
		d.objs[handle-1] = obj
	} else {
		d.objs = append(d.objs, obj)
		handle = uint64(len(d.objs))
	}
	d.table.CreateObject(base, size, align, handle)
	d.metadataBytes.Add(48)
}

// OnReallocInPlace implements detectors.Detector.
func (d *Detector) OnReallocInPlace(base, oldSize, newSize, align uint64) {
	handle := d.table.Lookup(base)
	if handle == 0 {
		return
	}
	obj := d.objs[handle-1]
	obj.end = base + newSize
	d.table.CreateObject(base, newSize, align, handle)
	if newSize < oldSize {
		d.table.ClearObject(base+newSize, oldSize-newSize, align)
	}
}

// OnFree implements detectors.Detector.
func (d *Detector) OnFree(base, size, align uint64) {
	handle := d.table.Lookup(base)
	if handle == 0 {
		return
	}
	obj := d.objs[handle-1]
	if obj == nil || obj.base != base {
		return
	}
	for _, loc := range obj.locs {
		w, fault := d.mem.LoadWord(loc)
		if fault != nil || w < obj.base || w >= obj.end {
			continue
		}
		d.mem.StoreWord(loc, w|InvalidBit)
		d.statInvalidated.Add(1)
	}
	d.metadataBytes.Add(^(uint64(len(obj.locs))*8 - 1))
	d.table.ClearObject(base, size, align)
	d.objs[handle-1] = nil
	d.free = append(d.free, handle)
}

// OnPtrStore implements detectors.Detector: an unsynchronized append to the
// target object's location list.
func (d *Detector) OnPtrStore(loc, val uint64, tid int32) {
	handle := d.table.Lookup(val)
	if handle == 0 {
		return
	}
	obj := d.objs[handle-1]
	if obj == nil {
		return
	}
	obj.locs = append(obj.locs, loc)
	d.statRegistered.Add(1)
	d.metadataBytes.Add(8)
}

// MetadataBytes implements detectors.Detector.
func (d *Detector) MetadataBytes() uint64 {
	return d.table.Bytes() + d.metadataBytes.Load()
}

// Stats reports (registered, invalidated) counters.
func (d *Detector) Stats() (registered, invalidated uint64) {
	return d.statRegistered.Load(), d.statInvalidated.Load()
}
