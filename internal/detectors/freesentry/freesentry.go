// Package freesentry implements a baseline modelled on FreeSentry (Younan,
// NDSS 2015), the fast but thread-unsafe pointer-invalidation system the
// paper compares against. Its published design points:
//
//   - pointers anywhere in memory (heap, stack, globals) are tracked, like
//     DangSan and unlike DangNULL;
//   - invalidation flips a high bit, preserving the pointer's address bits;
//   - tracking structures are completely unsynchronized — the reason
//     FreeSentry cannot run multithreaded programs (paper §9). This
//     implementation is likewise only correct when the process runs a
//     single thread; the scalability benchmarks therefore use it at one
//     thread only, exactly as the paper's authors had to.
package freesentry

import (
	"fmt"
	"sync/atomic"

	"dangsan/internal/detectors"
	"dangsan/internal/faultinject"
	"dangsan/internal/pointerlog"
	"dangsan/internal/shadow"
)

// InvalidBit mirrors FreeSentry's invalidation: set a bit that cannot occur
// in user-space pointers.
const InvalidBit = uint64(1) << 63

type object struct {
	base, end uint64
	locs      []uint64
}

// Detector is the FreeSentry-style baseline.
type Detector struct {
	table *shadow.Table // constant-time value->object mapping (label table)
	objs  []*object     // index+1 stored in the shadow table
	free  []uint64
	mem   detectors.Memory

	maxMetadataBytes uint64
	faults           *faultinject.Plane

	// Stats are atomic only so that a concurrent observer (the benchmark
	// harness's memory sampler) can read them; the tracking structures
	// themselves remain deliberately unsynchronized.
	statRegistered  atomic.Uint64
	statInvalidated atomic.Uint64
	statDegraded    atomic.Uint64
	statDropped     atomic.Uint64
	metadataBytes   atomic.Uint64
}

var _ detectors.Detector = (*Detector)(nil)
var _ detectors.Binder = (*Detector)(nil)

// New creates the baseline detector.
func New() *Detector {
	return &Detector{table: shadow.NewTable()}
}

// Options configures the baseline beyond its defaults: a metadata budget
// and a fault-injection plane, mirroring dangsan's degraded-mode knobs.
type Options struct {
	// MaxMetadataBytes caps the detector's metadata footprint (shadow
	// table excluded; its own allocations fail through the plane's
	// ShadowPopulate site); 0 means unlimited.
	MaxMetadataBytes uint64
	// Faults, when non-nil, injects failures into the metadata paths.
	Faults *faultinject.Plane
}

// NewWithOptions creates the baseline with a metadata budget and fault
// plane attached.
func NewWithOptions(opts Options) *Detector {
	d := New()
	d.maxMetadataBytes = opts.MaxMetadataBytes
	d.InjectFaults(opts.Faults)
	return d
}

// InjectFaults attaches a fault-injection plane to the detector and its
// shadow table. Call before the detector sees traffic; nil disables
// injection.
func (d *Detector) InjectFaults(p *faultinject.Plane) {
	d.faults = p
	d.table.InjectFaults(p)
}

// chargeMeta accounts n metadata bytes against the budget, consulting the
// fault plane at site first. Exhaustion is the same typed error dangsan's
// logger reports (pointerlog.ErrMetadataExhausted); callers fail open.
func (d *Detector) chargeMeta(site faultinject.Site, n uint64) error {
	if d.faults.Fail(site) {
		return fmt.Errorf("freesentry: injected metadata failure: %w", pointerlog.ErrMetadataExhausted)
	}
	if d.maxMetadataBytes != 0 && d.metadataBytes.Load()+n > d.maxMetadataBytes {
		return fmt.Errorf("freesentry: metadata budget exceeded: %w", pointerlog.ErrMetadataExhausted)
	}
	d.metadataBytes.Add(n)
	return nil
}

// Bind implements detectors.Binder.
func (d *Detector) Bind(mem detectors.Memory) { d.mem = mem }

// Name implements detectors.Detector.
func (d *Detector) Name() string { return "freesentry" }

// AllocPad implements detectors.Detector.
func (d *Detector) AllocPad() uint64 { return 0 }

// OnAlloc implements detectors.Detector. Both failure paths — the object
// record's budget charge and the shadow-table population — degrade
// fail-open: the object is simply never mapped, so stores into it miss
// the label lookup and its free finds no handle. Coverage loss, never a
// crash or a false report (dangsan's OnAlloc contract).
func (d *Detector) OnAlloc(base, size, align uint64) {
	if err := d.chargeMeta(faultinject.MetaAlloc, 48); err != nil {
		d.statDegraded.Add(1)
		return
	}
	obj := &object{base: base, end: base + size}
	var handle uint64
	if n := len(d.free); n > 0 {
		handle = d.free[n-1]
		d.free = d.free[:n-1]
		d.objs[handle-1] = obj
	} else {
		d.objs = append(d.objs, obj)
		handle = uint64(len(d.objs))
	}
	if err := d.table.CreateObject(base, size, align, handle); err != nil {
		// Shadow population failed (rolled back internally): release the
		// handle so it can never surface half-mapped.
		d.objs[handle-1] = nil
		d.free = append(d.free, handle)
		d.statDegraded.Add(1)
	}
}

// OnReallocInPlace implements detectors.Detector. Growth remaps the larger
// extent; shrinking drops the dead tail's mapping so stores into recycled
// tail pages cannot register against this object.
func (d *Detector) OnReallocInPlace(base, oldSize, newSize, align uint64) {
	handle := d.table.Lookup(base)
	if handle == 0 {
		return
	}
	obj := d.objs[handle-1]
	if err := d.table.CreateObject(base, newSize, align, handle); err != nil {
		// Extending the mapping failed and CreateObject rolled back what it
		// wrote, which may include part of the old mapping. Converge by
		// dropping the object entirely: clear the whole extent, forget its
		// registrations and release the record — otherwise the handle leaks
		// with a half-cleared mapping and its locations are never
		// invalidated nor refunded. Coverage loss, never a false positive.
		old := oldSize
		if newSize > old {
			old = newSize
		}
		d.table.ClearObject(base, old, align)
		d.metadataBytes.Add(^(uint64(len(obj.locs))*8 - 1))
		d.statDropped.Add(uint64(len(obj.locs)))
		d.objs[handle-1] = nil
		d.free = append(d.free, handle)
		d.statDegraded.Add(1)
		return
	}
	obj.end = base + newSize
	if newSize < oldSize {
		d.table.ClearObject(base+newSize, oldSize-newSize, align)
	}
}

// OnFree implements detectors.Detector.
func (d *Detector) OnFree(base, size, align uint64) {
	handle := d.table.Lookup(base)
	if handle == 0 {
		return
	}
	obj := d.objs[handle-1]
	if obj == nil || obj.base != base {
		return
	}
	for _, loc := range obj.locs {
		w, fault := d.mem.LoadWord(loc)
		if fault != nil || w < obj.base || w >= obj.end {
			continue
		}
		d.mem.StoreWord(loc, w|InvalidBit)
		d.statInvalidated.Add(1)
	}
	d.metadataBytes.Add(^(uint64(len(obj.locs))*8 - 1))
	d.table.ClearObject(base, size, align)
	d.objs[handle-1] = nil
	d.free = append(d.free, handle)
}

// OnPtrStore implements detectors.Detector: an unsynchronized append to the
// target object's location list.
func (d *Detector) OnPtrStore(loc, val uint64, tid int32) {
	handle := d.table.Lookup(val)
	if handle == 0 {
		return
	}
	obj := d.objs[handle-1]
	if obj == nil {
		return
	}
	if err := d.chargeMeta(faultinject.LogBlockAlloc, 8); err != nil {
		d.statDropped.Add(1)
		return
	}
	obj.locs = append(obj.locs, loc)
	d.statRegistered.Add(1)
}

// MetadataBytes implements detectors.Detector.
func (d *Detector) MetadataBytes() uint64 {
	return d.table.Bytes() + d.metadataBytes.Load()
}

// Stats reports (registered, invalidated) counters.
func (d *Detector) Stats() (registered, invalidated uint64) {
	return d.statRegistered.Load(), d.statInvalidated.Load()
}

// Degraded reports the fail-open coverage losses: objects that were never
// tracked and pointer registrations that were dropped.
func (d *Detector) Degraded() (objects, dropped uint64) {
	return d.statDegraded.Load(), d.statDropped.Load()
}
