package xtag

import (
	"errors"
	"testing"

	"dangsan/internal/faultinject"
	"dangsan/internal/pointerlog"
	"dangsan/internal/vmem"
)

const (
	objA = vmem.HeapBase + 0x1000
	objB = vmem.HeapBase + 0x2000
)

func checkOK(t *testing.T, d *Detector, ptr uint64) uint64 {
	t.Helper()
	got, f := d.CheckDeref(ptr)
	if f != nil {
		t.Fatalf("CheckDeref(0x%x) faulted: %v", ptr, f)
	}
	return got
}

func checkFaults(t *testing.T, d *Detector, ptr uint64) *vmem.Fault {
	t.Helper()
	_, f := d.CheckDeref(ptr)
	if f == nil {
		t.Fatalf("CheckDeref(0x%x) passed, want tag mismatch", ptr)
	}
	if f.Kind != vmem.FaultTagMismatch {
		t.Fatalf("CheckDeref(0x%x) fault kind %v, want tag mismatch", ptr, f.Kind)
	}
	return f
}

// TestTagLifecycle walks one object through alloc → deref → free → stale
// deref → reuse, pinning the tag semantics at each step.
func TestTagLifecycle(t *testing.T) {
	d := New()
	d.OnAlloc(objA, 64, 8)
	p := d.TagPointer(objA)
	if vmem.PointerTag(p) == 0 {
		t.Fatalf("TagPointer returned untagged pointer 0x%x", p)
	}
	if got := checkOK(t, d, p); got != objA {
		t.Fatalf("CheckDeref stripped to 0x%x, want 0x%x", got, objA)
	}
	// Interior pointers carry the same tag and pass.
	checkOK(t, d, p+48)
	// Untagged addresses (stack, globals, raw heap) always pass unchanged.
	if got := checkOK(t, d, vmem.GlobalsBase+8); got != vmem.GlobalsBase+8 {
		t.Fatalf("untagged pointer altered: 0x%x", got)
	}

	d.OnFree(objA, 64, 8)
	f := checkFaults(t, d, p)
	if f.Addr != p {
		t.Fatalf("fault lost the tagged pointer: 0x%x, want 0x%x", f.Addr, p)
	}
	// Freeing marks, not clears: the mismatch is the detection signal.
	if cur := d.table.Lookup(objA); cur != FreedMark {
		t.Fatalf("freed slot = 0x%x, want FreedMark", cur)
	}

	// Reuse of the range issues a new tag; the stale pointer still faults.
	d.OnAlloc(objA, 64, 8)
	p2 := d.TagPointer(objA)
	if p2 == p {
		t.Fatal("recycled object got the same tag")
	}
	checkOK(t, d, p2)
	checkFaults(t, d, p)

	if tagged, checks, mismatches := d.Stats(); tagged != 2 || checks == 0 || mismatches != 2 {
		t.Fatalf("stats = (%d, %d, %d)", tagged, checks, mismatches)
	}
}

// TestTagReuseWindow pins the xTag false-negative window: after MaxTag
// generations the tag counter wraps, and a stale pointer whose tag aliases
// the range's new tag passes the check again.
func TestTagReuseWindow(t *testing.T) {
	d := New()
	d.OnAlloc(objA, 64, 8)
	stale := d.TagPointer(objA)
	d.OnFree(objA, 64, 8)
	checkFaults(t, d, stale)

	// Churn exactly MaxTag-1 generations elsewhere, so the next tag issued
	// is stale's tag again.
	for i := 0; i < vmem.MaxTag-1; i++ {
		d.OnAlloc(objB, 64, 8)
		d.OnFree(objB, 64, 8)
	}
	d.OnAlloc(objA, 64, 8)
	fresh := d.TagPointer(objA)
	if vmem.PointerTag(fresh) != vmem.PointerTag(stale) {
		t.Fatalf("tag did not wrap: fresh %d, stale %d — window math wrong",
			vmem.PointerTag(fresh), vmem.PointerTag(stale))
	}
	// The stale pointer now aliases the live tag: the documented false
	// negative. If this starts faulting, the tag width or wrap rule changed
	// and the docs (and differ oracle) must follow.
	checkOK(t, d, stale)
	if g := d.Generations(); g != vmem.MaxTag+1 {
		t.Fatalf("generations = %d, want %d", g, vmem.MaxTag+1)
	}
}

// TestDegradedAllocFailOpen: an object whose metadata cannot be paid for
// stays untagged — its pointer is the raw address and every check passes.
func TestDegradedAllocFailOpen(t *testing.T) {
	plane := faultinject.New(7)
	plane.Enable(faultinject.MetaAlloc, 1.0, 1)
	d := NewWithOptions(Options{Faults: plane})

	d.OnAlloc(objA, 64, 8) // degraded
	if p := d.TagPointer(objA); p != objA {
		t.Fatalf("degraded object got tag: 0x%x", p)
	}
	checkOK(t, d, objA)
	d.OnFree(objA, 64, 8) // must not mark an untracked object
	if deg, dropped := d.Degraded(); deg != 1 || dropped != 0 {
		t.Fatalf("Degraded() = (%d, %d), want (1, 0)", deg, dropped)
	}

	// The plane only fails once: the next allocation tags normally.
	d.OnAlloc(objB, 64, 8)
	p := d.TagPointer(objB)
	if vmem.PointerTag(p) == 0 {
		t.Fatal("allocation after degraded episode not tagged")
	}
	d.OnFree(objB, 64, 8)
	checkFaults(t, d, p)
}

// TestChargeMetaTypedError pins the fail-open contract to the same typed
// error dangsan's logger uses for metadata exhaustion.
func TestChargeMetaTypedError(t *testing.T) {
	d := NewWithOptions(Options{MaxMetadataBytes: 1})
	if err := d.chargeMeta(faultinject.MetaAlloc, perObjectMeta); !errors.Is(err, pointerlog.ErrMetadataExhausted) {
		t.Fatalf("budget exhaustion: want ErrMetadataExhausted, got %v", err)
	}
}

// TestReallocShrinkMarksTail: an in-place shrink writes the freed marker
// over the dead tail, so stale pointers into it mismatch while pointers
// into the surviving head stay valid.
func TestReallocShrinkMarksTail(t *testing.T) {
	d := New()
	base := uint64(vmem.HeapBase)
	d.OnAlloc(base, 4*vmem.PageSize, vmem.PageSize)
	p := d.TagPointer(base)
	head := p + 8
	tail := p + 3*vmem.PageSize

	d.OnReallocInPlace(base, 4*vmem.PageSize, 2*vmem.PageSize, vmem.PageSize)
	checkOK(t, d, head)
	checkFaults(t, d, tail)
	if cur := d.table.Lookup(vmem.StripTag(tail)); cur != FreedMark {
		t.Fatalf("tail slot = 0x%x, want FreedMark", cur)
	}

	// Growing back re-marks the whole extent with the object's (unchanged)
	// tag: the old tail pointer becomes valid again, as it addresses the
	// same live object.
	d.OnReallocInPlace(base, 2*vmem.PageSize, 4*vmem.PageSize, vmem.PageSize)
	checkOK(t, d, tail)
	d.OnFree(base, 4*vmem.PageSize, vmem.PageSize)
	checkFaults(t, d, head)
	checkFaults(t, d, tail)
}
