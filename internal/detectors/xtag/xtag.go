// Package xtag implements a pointer-tagging use-after-free detector in the
// style of xTag: every heap object gets a generation tag drawn from a
// wrapping 15-bit counter, the tag is embedded in the unused high bits
// (vmem bits 48..62) of every pointer malloc returns, and every simulated
// dereference strips the tag and checks it against the current tag of the
// object at the stripped address. A freed object's slots keep a reserved
// "freed" marker and a reallocated object gets a fresh tag, so a stale
// pointer's tag can no longer match — the dereference traps with a
// vmem.FaultTagMismatch that preserves the full tagged pointer.
//
// Design points, relative to the invalidation-based backends:
//
//   - no pointer tracking at all: OnPtrStore is a no-op, there is no
//     location log and nothing to walk at free time. Free costs one shadow
//     re-mark of the object's slots.
//   - detection is at dereference time, so dangling pointers at rest are
//     never rewritten — memory holds the original tagged value forever.
//   - the tag field is 15 bits (tag 0 is reserved for "untagged"): after
//     1<<15 - 1 generations the counter wraps and a sufficiently stale
//     pointer can alias a live tag — a bounded false-negative window that
//     TestTagReuseWindow pins down.
//
// Fail-open contract: objects whose metadata cannot be paid for
// (Options.MaxMetadataBytes, injected MetaAlloc/ShadowPopulate faults) stay
// untagged — malloc returns the raw address, tag 0 passes every check.
// Coverage loss, never a crash or a false positive.
package xtag

import (
	"fmt"
	"sync/atomic"

	"dangsan/internal/detectors"
	"dangsan/internal/faultinject"
	"dangsan/internal/pointerlog"
	"dangsan/internal/shadow"
	"dangsan/internal/vmem"
)

// FreedMark is the shadow meta word written over a freed object's slots. It
// is outside the valid tag range (tags are 1..vmem.MaxTag), so no pointer's
// tag can ever match it: any tagged dereference into a freed-and-not-reused
// range mismatches. Distinct from 0 ("never tracked / mapping dropped"),
// which passes checks fail-open.
const FreedMark = uint64(vmem.MaxTag) + 1

// perObjectMeta is the logical metadata charge per tagged object: the
// generation word duplicated across the object's shadow slots is accounted
// via the table; this covers the bookkeeping around it.
const perObjectMeta = 16

// Detector is the xTag-style pointer-tagging detector.
type Detector struct {
	table *shadow.Table
	gen   atomic.Uint64 // monotonic generation counter; tag = gen%MaxTag+1

	maxMetadataBytes uint64
	faults           *faultinject.Plane

	metadataBytes atomic.Uint64
	statTagged    atomic.Uint64
	statChecks    atomic.Uint64
	statMismatch  atomic.Uint64
	statDegraded  atomic.Uint64
}

var (
	_ detectors.Detector   = (*Detector)(nil)
	_ detectors.TagChecker = (*Detector)(nil)
)

// New creates the detector with no metadata budget and no fault injection.
func New() *Detector {
	return &Detector{table: shadow.NewTable()}
}

// Options configures the detector's fail-open knobs, mirroring the other
// backends.
type Options struct {
	// MaxMetadataBytes caps the detector's metadata footprint (shadow table
	// excluded; its allocations fail through the plane's ShadowPopulate
	// site); 0 means unlimited.
	MaxMetadataBytes uint64
	// Faults, when non-nil, injects failures into the metadata paths.
	Faults *faultinject.Plane
}

// NewWithOptions creates the detector with a metadata budget and fault
// plane attached.
func NewWithOptions(opts Options) *Detector {
	d := New()
	d.maxMetadataBytes = opts.MaxMetadataBytes
	d.InjectFaults(opts.Faults)
	return d
}

// InjectFaults attaches a fault-injection plane to the detector and its
// shadow table. Call before the detector sees traffic; nil disables
// injection.
func (d *Detector) InjectFaults(p *faultinject.Plane) {
	d.faults = p
	d.table.InjectFaults(p)
}

// chargeMeta accounts n metadata bytes against the budget, consulting the
// fault plane at site first. Exhaustion is the same typed error dangsan's
// logger reports (pointerlog.ErrMetadataExhausted); callers fail open.
func (d *Detector) chargeMeta(site faultinject.Site, n uint64) error {
	if d.faults.Fail(site) {
		return fmt.Errorf("xtag: injected metadata failure: %w", pointerlog.ErrMetadataExhausted)
	}
	if d.maxMetadataBytes != 0 && d.metadataBytes.Load()+n > d.maxMetadataBytes {
		return fmt.Errorf("xtag: metadata budget exceeded: %w", pointerlog.ErrMetadataExhausted)
	}
	d.metadataBytes.Add(n)
	return nil
}

// nextTag draws the next generation tag, cycling 1..vmem.MaxTag (tag 0 is
// reserved for "untagged").
func (d *Detector) nextTag() uint64 {
	return (d.gen.Add(1)-1)%vmem.MaxTag + 1
}

// Name implements detectors.Detector.
func (d *Detector) Name() string { return "xtag" }

// AllocPad implements detectors.Detector. Like DangSan, one byte of pad
// keeps a one-past-the-end pointer inside the object's shadow slots, so its
// tag check still matches.
func (d *Detector) AllocPad() uint64 { return 1 }

// OnAlloc implements detectors.Detector: draw a fresh generation tag and
// mark the object's shadow slots with it. Both failure paths — the budget
// charge and the shadow population — leave the object untagged (slots hold
// 0 or are rolled back), so TagPointer returns the raw address and every
// check passes: fail-open.
func (d *Detector) OnAlloc(base, size, align uint64) {
	if err := d.chargeMeta(faultinject.MetaAlloc, perObjectMeta); err != nil {
		d.statDegraded.Add(1)
		return
	}
	tag := d.nextTag()
	if err := d.table.CreateObject(base, size, align, tag); err != nil {
		d.metadataBytes.Add(^uint64(perObjectMeta - 1))
		d.statDegraded.Add(1)
		return
	}
	d.statTagged.Add(1)
}

// OnReallocInPlace implements detectors.Detector. The object's tag is
// unchanged — outstanding pointers stay valid — but its extent moves:
// growth re-marks the larger range, shrinking re-marks the smaller one and
// writes the freed marker over the dead tail so stale pointers into it
// mismatch. In-place resizes only happen for page-granular large spans, so
// the tail cut is always slot-aligned.
func (d *Detector) OnReallocInPlace(base, oldSize, newSize, align uint64) {
	tag := d.table.Lookup(base)
	if tag == 0 || tag == FreedMark {
		return // untracked (degraded) object
	}
	if err := d.table.CreateObject(base, newSize, align, tag); err != nil {
		// Extending the mapping failed and CreateObject rolled back what it
		// wrote, which may include part of the old mapping. Converge by
		// dropping the object's mapping entirely: outstanding tagged
		// pointers then read slot 0 and pass fail-open — coverage loss, not
		// a false positive.
		old := oldSize
		if newSize > old {
			old = newSize
		}
		d.table.ClearObject(base, old, align)
		d.statDegraded.Add(1)
		return
	}
	if newSize < oldSize {
		// Infallible: the tail's pages already have matching-shift arrays.
		if err := d.table.CreateObject(base+newSize, oldSize-newSize, align, FreedMark); err != nil {
			d.table.ClearObject(base+newSize, oldSize-newSize, align)
		}
	}
}

// OnFree implements detectors.Detector: re-mark the object's slots with the
// freed marker. No pointer walk — stale pointers are caught lazily at their
// next dereference.
func (d *Detector) OnFree(base, size, align uint64) {
	tag := d.table.Lookup(base)
	if tag == 0 || tag == FreedMark {
		return // untracked object; nothing to mark
	}
	// The object's pages are already populated at this shift, so the
	// re-mark cannot need fresh arrays; fall back to clearing (fail-open)
	// if it somehow does.
	if err := d.table.CreateObject(base, size, align, FreedMark); err != nil {
		d.table.ClearObject(base, size, align)
	}
	d.metadataBytes.Add(^uint64(perObjectMeta - 1))
}

// OnPtrStore implements detectors.Detector: a no-op. Tagging needs no
// pointer tracking — that is the point of the design.
func (d *Detector) OnPtrStore(loc, val uint64, tid int32) {}

// TagPointer implements detectors.TagChecker: embed the object's current
// tag into base. Untracked objects return base unchanged (tag 0).
func (d *Detector) TagPointer(base uint64) uint64 {
	tag := d.table.Lookup(base)
	if tag == 0 || tag == FreedMark {
		return base
	}
	return vmem.WithTag(base, tag)
}

// CheckDeref implements detectors.DerefChecker: strip addr's tag and check
// it against the current tag of the slot at the stripped address. Untagged
// addresses (stack, globals, degraded objects) pass through; slot value 0
// (mapping dropped after the pointer was handed out) passes fail-open; any
// other mismatch — the freed marker or a successor object's tag — is a
// detected use-after-free.
func (d *Detector) CheckDeref(addr uint64) (uint64, *vmem.Fault) {
	tag := vmem.PointerTag(addr)
	if tag == 0 {
		return addr, nil
	}
	stripped := vmem.StripTag(addr)
	d.statChecks.Add(1)
	cur := d.table.Lookup(stripped)
	if cur == tag || cur == 0 {
		return stripped, nil
	}
	d.statMismatch.Add(1)
	return 0, &vmem.Fault{Addr: addr, Kind: vmem.FaultTagMismatch}
}

// MetadataBytes implements detectors.Detector.
func (d *Detector) MetadataBytes() uint64 {
	return d.table.Bytes() + d.metadataBytes.Load()
}

// Stats reports (objects tagged, checks performed, mismatches trapped).
func (d *Detector) Stats() (tagged, checks, mismatches uint64) {
	return d.statTagged.Load(), d.statChecks.Load(), d.statMismatch.Load()
}

// Degraded reports the fail-open coverage losses: objects that were never
// tagged (or lost their mapping converging a failed realloc). The second
// value is always 0 — there are no per-pointer registrations to drop.
func (d *Detector) Degraded() (objects, dropped uint64) {
	return d.statDegraded.Load(), 0
}

// Generations reports how many generation tags have been drawn, for the
// tag-reuse window tests.
func (d *Detector) Generations() uint64 { return d.gen.Load() }
