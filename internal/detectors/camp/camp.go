// Package camp implements a checked-dereference use-after-free detector in
// the style of CAMP: instead of hunting down dangling pointers at free time,
// the allocator keeps a range registry of what is live and what has been
// freed, and every simulated dereference is checked against it. A
// dereference into a freed-and-not-reallocated range traps with
// vmem.FaultFreedRange; live and untracked addresses pass at the cost of one
// shadow lookup.
//
// The range registry reuses the allocator's span metadata rather than
// keeping its own interval structure: the runtime derives each object's
// usable extent and page alignment from tcmalloc's span records
// (UsableSize/PageAlignOf) and hands them to OnAlloc/OnFree, and the
// detector compresses that extent into METAlloc-style shadow slots — one
// word per alignment grain, with the span's size-class alignment choosing
// the compression shift. Liveness is encoded directly in the slot word:
//
//	meta == 0            untracked (stack, globals, degraded object) — pass
//	meta & freedBit == 0 live object (allocation sequence number)    — pass
//	meta & freedBit != 0 freed range tombstone                       — trap
//
// Everything the check path reads is a single atomic slot load, so
// concurrent dereferences from many simulated threads are race-free; there
// is no side table to synchronize.
//
// Unlike the pointer-invalidation backends, camp never writes to program
// memory and keeps no pointer log: OnPtrStore is a no-op, and the
// instrumentation pass (internal/instrument, ElideDerefChecks) statically
// elides checks it can prove safe, which is where CAMP recovers its
// performance.
//
// Fail-open contract: objects whose metadata cannot be paid for
// (Options.MaxMetadataBytes, injected MetaAlloc/ShadowPopulate faults) get
// their range cleared instead of marked — their dereferences pass
// unchecked, and stale tombstones from previous occupants are wiped so the
// degradation can never cause a false positive.
package camp

import (
	"fmt"
	"sync/atomic"

	"dangsan/internal/detectors"
	"dangsan/internal/faultinject"
	"dangsan/internal/pointerlog"
	"dangsan/internal/shadow"
	"dangsan/internal/vmem"
)

// freedBit marks a slot word as a freed-range tombstone. The low bits keep
// the allocation sequence number the object had, which is occasionally
// useful in traces but carries no semantics.
const freedBit = uint64(1) << 63

// perObjectMeta is the logical bookkeeping charge per tracked object,
// matching the other backends' accounting style; the slot words themselves
// are accounted by the shadow table.
const perObjectMeta = 16

// Detector is the CAMP-style checked-dereference detector.
type Detector struct {
	table *shadow.Table
	seq   atomic.Uint64 // allocation sequence; live meta = seq+1 (never 0)

	maxMetadataBytes uint64
	faults           *faultinject.Plane

	metadataBytes  atomic.Uint64
	statTracked    atomic.Uint64
	statChecks     atomic.Uint64
	statFaults     atomic.Uint64
	statDegraded   atomic.Uint64
	statTombstones atomic.Uint64
}

var (
	_ detectors.Detector     = (*Detector)(nil)
	_ detectors.DerefChecker = (*Detector)(nil)
)

// New creates the detector with no metadata budget and no fault injection.
func New() *Detector {
	return &Detector{table: shadow.NewTable()}
}

// Options configures the detector's fail-open knobs, mirroring the other
// backends.
type Options struct {
	// MaxMetadataBytes caps the detector's metadata footprint (shadow table
	// excluded; its allocations fail through the plane's ShadowPopulate
	// site); 0 means unlimited.
	MaxMetadataBytes uint64
	// Faults, when non-nil, injects failures into the metadata paths.
	Faults *faultinject.Plane
}

// NewWithOptions creates the detector with a metadata budget and fault
// plane attached.
func NewWithOptions(opts Options) *Detector {
	d := New()
	d.maxMetadataBytes = opts.MaxMetadataBytes
	d.InjectFaults(opts.Faults)
	return d
}

// InjectFaults attaches a fault-injection plane to the detector and its
// shadow table. Call before the detector sees traffic; nil disables
// injection.
func (d *Detector) InjectFaults(p *faultinject.Plane) {
	d.faults = p
	d.table.InjectFaults(p)
}

// chargeMeta accounts n metadata bytes against the budget, consulting the
// fault plane at site first. Exhaustion is the same typed error dangsan's
// logger reports (pointerlog.ErrMetadataExhausted); callers fail open.
func (d *Detector) chargeMeta(site faultinject.Site, n uint64) error {
	if d.faults.Fail(site) {
		return fmt.Errorf("camp: injected metadata failure: %w", pointerlog.ErrMetadataExhausted)
	}
	if d.maxMetadataBytes != 0 && d.metadataBytes.Load()+n > d.maxMetadataBytes {
		return fmt.Errorf("camp: metadata budget exceeded: %w", pointerlog.ErrMetadataExhausted)
	}
	d.metadataBytes.Add(n)
	return nil
}

// Name implements detectors.Detector.
func (d *Detector) Name() string { return "camp" }

// AllocPad implements detectors.Detector. One byte of pad keeps a
// one-past-the-end pointer inside the object's live range, so its
// range check still passes.
func (d *Detector) AllocPad() uint64 { return 1 }

// degrade drops tracking for [base, base+size): the range is cleared so
// that stale tombstones from a previous occupant cannot fault the new
// object's accesses — fail-open means unchecked, never misjudged.
func (d *Detector) degrade(base, size, align uint64) {
	d.table.ClearObject(base, size, align)
	d.statDegraded.Add(1)
}

// OnAlloc implements detectors.Detector: register [base, base+size) as live
// by writing the allocation's sequence word over its shadow slots,
// overwriting any tombstone left by the range's previous occupant.
func (d *Detector) OnAlloc(base, size, align uint64) {
	if err := d.chargeMeta(faultinject.MetaAlloc, perObjectMeta); err != nil {
		d.degrade(base, size, align)
		return
	}
	meta := d.seq.Add(1) &^ freedBit
	if err := d.table.CreateObject(base, size, align, meta); err != nil {
		d.metadataBytes.Add(^uint64(perObjectMeta - 1))
		d.degrade(base, size, align)
		return
	}
	d.statTracked.Add(1)
}

// OnReallocInPlace implements detectors.Detector. Growth re-registers the
// larger live range; shrinking re-registers the smaller one and writes a
// tombstone over the dead tail so stale interior pointers into it trap.
// In-place resizes only happen for page-granular large spans, so the tail
// cut is always slot-aligned.
func (d *Detector) OnReallocInPlace(base, oldSize, newSize, align uint64) {
	meta := d.table.Lookup(base)
	if meta == 0 || meta&freedBit != 0 {
		return // untracked (degraded) object
	}
	if err := d.table.CreateObject(base, newSize, align, meta); err != nil {
		// CreateObject rolled back what it wrote, which may include part of
		// the old mapping. Converge by dropping the whole extent.
		old := oldSize
		if newSize > old {
			old = newSize
		}
		d.degrade(base, old, align)
		return
	}
	if newSize < oldSize {
		if err := d.table.CreateObject(base+newSize, oldSize-newSize, align, meta|freedBit); err != nil {
			d.table.ClearObject(base+newSize, oldSize-newSize, align)
		} else {
			d.statTombstones.Add(1)
		}
	}
}

// OnFree implements detectors.Detector: flip the object's range to a freed
// tombstone. The tombstone persists until the allocator reuses the range,
// at which point the next OnAlloc overwrites it — exactly the window in
// which a use-after-free is detectable by a range check.
func (d *Detector) OnFree(base, size, align uint64) {
	meta := d.table.Lookup(base)
	if meta&freedBit != 0 {
		return
	}
	refund := meta != 0
	if meta == 0 {
		// The object was degraded at allocation; the range is still freed,
		// so tombstone it anyway — detection for free.
		meta = d.seq.Add(1)
	}
	if err := d.table.CreateObject(base, size, align, meta|freedBit); err != nil {
		d.table.ClearObject(base, size, align)
	} else {
		d.statTombstones.Add(1)
	}
	if refund {
		d.metadataBytes.Add(^uint64(perObjectMeta - 1))
	}
}

// OnPtrStore implements detectors.Detector: a no-op. Range checking needs
// no pointer tracking — that is the point of the design.
func (d *Detector) OnPtrStore(loc, val uint64, tid int32) {}

// CheckDeref implements detectors.DerefChecker: one atomic shadow-slot load
// classifies addr as live (sequence word), freed (tombstone — trap), or
// untracked (pass). Addresses outside the heap segment never index the
// table and pass immediately.
func (d *Detector) CheckDeref(addr uint64) (uint64, *vmem.Fault) {
	d.statChecks.Add(1)
	if d.table.Lookup(addr)&freedBit != 0 {
		d.statFaults.Add(1)
		return 0, &vmem.Fault{Addr: addr, Kind: vmem.FaultFreedRange}
	}
	return addr, nil
}

// MetadataBytes implements detectors.Detector.
func (d *Detector) MetadataBytes() uint64 {
	return d.table.Bytes() + d.metadataBytes.Load()
}

// Stats reports (objects tracked, checks performed, faults trapped,
// tombstones written).
func (d *Detector) Stats() (tracked, checks, faults, tombstones uint64) {
	return d.statTracked.Load(), d.statChecks.Load(), d.statFaults.Load(), d.statTombstones.Load()
}

// Degraded reports the fail-open coverage losses: ranges whose tracking was
// dropped (at allocation, or converging a failed in-place realloc). The
// second value is always 0 — there are no per-pointer registrations to
// drop.
func (d *Detector) Degraded() (objects, dropped uint64) {
	return d.statDegraded.Load(), 0
}
