package camp

import (
	"errors"
	"testing"

	"dangsan/internal/faultinject"
	"dangsan/internal/pointerlog"
	"dangsan/internal/vmem"
)

const (
	objA = vmem.HeapBase + 0x1000
	objB = vmem.HeapBase + 0x2000
)

func checkOK(t *testing.T, d *Detector, ptr uint64) {
	t.Helper()
	got, f := d.CheckDeref(ptr)
	if f != nil {
		t.Fatalf("CheckDeref(0x%x) faulted: %v", ptr, f)
	}
	if got != ptr {
		t.Fatalf("CheckDeref(0x%x) rewrote the address to 0x%x", ptr, got)
	}
}

func checkFaults(t *testing.T, d *Detector, ptr uint64) *vmem.Fault {
	t.Helper()
	_, f := d.CheckDeref(ptr)
	if f == nil {
		t.Fatalf("CheckDeref(0x%x) passed, want freed-range fault", ptr)
	}
	if f.Kind != vmem.FaultFreedRange {
		t.Fatalf("CheckDeref(0x%x) fault kind %v, want freed range", ptr, f.Kind)
	}
	if f.Addr != ptr {
		t.Fatalf("fault address 0x%x, want 0x%x", f.Addr, ptr)
	}
	return f
}

// TestRangeLifecycle walks one object through alloc → deref → free → stale
// deref → reuse, pinning the range-check semantics at each step.
func TestRangeLifecycle(t *testing.T) {
	d := New()
	d.OnAlloc(objA, 64, 8)
	checkOK(t, d, objA)
	checkOK(t, d, objA+48) // interior pointer
	// Untracked addresses — stack, globals, anything outside the heap —
	// never index the registry and pass.
	checkOK(t, d, vmem.GlobalsBase+8)
	checkOK(t, d, vmem.StacksBase+8)

	d.OnFree(objA, 64, 8)
	checkFaults(t, d, objA)
	checkFaults(t, d, objA+48)

	// Reuse overwrites the tombstone: the detection window closes, exactly
	// the CAMP limitation the differ oracle documents.
	d.OnAlloc(objA, 64, 8)
	checkOK(t, d, objA)

	tracked, checks, faults, tombstones := d.Stats()
	if tracked != 2 || checks == 0 || faults != 2 || tombstones != 1 {
		t.Fatalf("stats = (%d, %d, %d, %d)", tracked, checks, faults, tombstones)
	}
}

// TestDoubleFreeTombstone: freeing an already-tombstoned range is a no-op at
// the registry level (the runtime reports it through the deref check first).
func TestDoubleFreeTombstone(t *testing.T) {
	d := New()
	d.OnAlloc(objA, 64, 8)
	d.OnFree(objA, 64, 8)
	d.OnFree(objA, 64, 8)
	if _, _, _, tombstones := d.Stats(); tombstones != 1 {
		t.Fatalf("tombstones = %d, want 1", tombstones)
	}
}

// TestDegradedAllocClearsStaleTombstone is the fail-open soundness property:
// when tracking a new allocation cannot be paid for, the range must be
// cleared — not left holding the previous occupant's tombstone — or the
// degraded object's legitimate accesses would fault.
func TestDegradedAllocClearsStaleTombstone(t *testing.T) {
	d := New()
	d.OnAlloc(objA, 64, 8)
	d.OnFree(objA, 64, 8)
	checkFaults(t, d, objA) // tombstoned

	// Recycle the range under a zero budget: tracking is degraded.
	d.maxMetadataBytes = 1
	d.OnAlloc(objA, 64, 8)
	checkOK(t, d, objA) // unchecked, but never misjudged
	if deg, _ := d.Degraded(); deg != 1 {
		t.Fatalf("degraded = %d, want 1", deg)
	}

	// And freeing the degraded object still tombstones the range: freed is
	// freed, whether or not the allocation was tracked.
	d.OnFree(objA, 64, 8)
	checkFaults(t, d, objA)
}

// TestShadowPopulateFailureFailsOpen: an injected shadow failure during
// registration degrades the object without leaving a partial mapping.
func TestShadowPopulateFailureFailsOpen(t *testing.T) {
	plane := faultinject.New(23)
	plane.Enable(faultinject.ShadowPopulate, 1.0, 1)
	d := NewWithOptions(Options{Faults: plane})

	d.OnAlloc(objA, 2*vmem.PageSize, vmem.PageSize) // degraded
	checkOK(t, d, objA)
	checkOK(t, d, objA+vmem.PageSize)
	if deg, _ := d.Degraded(); deg != 1 {
		t.Fatalf("degraded = %d, want 1", deg)
	}

	d.OnAlloc(objB, 64, 8)
	checkOK(t, d, objB)
	d.OnFree(objB, 64, 8)
	checkFaults(t, d, objB)
}

// TestChargeMetaTypedError pins the fail-open contract to the same typed
// error dangsan's logger uses for metadata exhaustion.
func TestChargeMetaTypedError(t *testing.T) {
	d := NewWithOptions(Options{MaxMetadataBytes: 1})
	if err := d.chargeMeta(faultinject.MetaAlloc, perObjectMeta); !errors.Is(err, pointerlog.ErrMetadataExhausted) {
		t.Fatalf("budget exhaustion: want ErrMetadataExhausted, got %v", err)
	}
}

// TestReallocShrinkTombstonesTail: an in-place shrink tombstones the dead
// tail — a stale interior pointer into it faults — while the surviving head
// stays live. Growing back revives the tail.
func TestReallocShrinkTombstonesTail(t *testing.T) {
	d := New()
	base := uint64(vmem.HeapBase)
	d.OnAlloc(base, 4*vmem.PageSize, vmem.PageSize)

	d.OnReallocInPlace(base, 4*vmem.PageSize, 2*vmem.PageSize, vmem.PageSize)
	checkOK(t, d, base+8)
	checkFaults(t, d, base+3*vmem.PageSize)

	d.OnReallocInPlace(base, 2*vmem.PageSize, 4*vmem.PageSize, vmem.PageSize)
	checkOK(t, d, base+3*vmem.PageSize)

	d.OnFree(base, 4*vmem.PageSize, vmem.PageSize)
	checkFaults(t, d, base+8)
	checkFaults(t, d, base+3*vmem.PageSize)
}
