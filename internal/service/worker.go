package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/faultinject"
	"dangsan/internal/pointerlog"
	"dangsan/internal/proc"
	"dangsan/internal/tcmalloc"
)

// opKind enumerates the worker's request vocabulary.
type opKind uint8

const (
	opAlloc opKind = iota
	opFree
	opCheck
	opPing
	opStats
	opQuiesce
)

func (k opKind) String() string {
	switch k {
	case opAlloc:
		return "alloc"
	case opFree:
		return "free"
	case opCheck:
		return "check"
	case opPing:
		return "ping"
	case opStats:
		return "stats"
	case opQuiesce:
		return "quiesce"
	}
	return "unknown"
}

// Verdict is the service-level answer to a request. Degraded verdicts are
// the fail-open outcome: the shard could not answer (breaker open, retries
// exhausted, rebuild in progress) and the coordinator says so instead of
// guessing — never a false UAF claim, never a hang.
type Verdict struct {
	// Known: the shard has a record for the key.
	Known bool
	// Freed: the key's object has been freed (check verdicts only).
	Freed bool
	// UAF: a dereference through the key's anchor pointer faulted — for a
	// freed key this is the detector catching the use-after-free.
	UAF bool
	// Degraded: the shard could not be consulted; all other fields are
	// meaningless.
	Degraded bool
}

// request is one message on a worker's queue.
type request struct {
	kind   opKind
	key    uint64
	size   uint64
	stores int
	resp   chan response
}

// response carries the worker's answer. err is always one of the typed
// errors (ShardDownError/DeadlineError from the transport, the allocator's
// OutOfMemoryError, proc's ExhaustedError, or a vmem.Fault from a live-key
// check) — an untyped error escaping a worker is a contract violation the
// chaos harness would flag.
type response struct {
	verdict Verdict
	stats   pointerlog.Snapshot
	cold    pointerlog.ColdStats
	audit   []string
	err     error
}

// disruptMode is the injected failure a worker is currently simulating.
type disruptMode int32

const (
	disruptNone disruptMode = iota
	// disruptSlow: every request takes SlowDelay before being served.
	disruptSlow
	// disruptHang: the worker blocks on its next request and never
	// replies; only the supervisor's stop (failover) releases it.
	disruptHang
	// disruptKill: the worker exits on its next request without replying —
	// a crash, from the coordinator's perspective.
	disruptKill
	// disruptKillAfter: the worker APPLIES its next request and then dies
	// without replying — the crash-consistency window between a worker
	// committing a mutation and the coordinator journaling it.
	disruptKillAfter
	// disruptSigKill: the worker dies immediately, not on its next
	// request. For a process worker this is a real SIGKILL; the in-process
	// analog stops the goroutine on the spot.
	disruptSigKill
	// Network faults (wire transports only): one-shot disruptions of the
	// coordinator→worker connections themselves — the worker is healthy,
	// the wire is not. disruptNetPartition drops connections mid-request,
	// disruptNetTrickle writes a byte every few milliseconds until the
	// deadline, disruptNetGarbage injects non-frame bytes ahead of a
	// request.
	disruptNetPartition
	disruptNetTrickle
	disruptNetGarbage
)

// keyRec is the worker-side state for one key.
type keyRec struct {
	anchor uint64 // globals slot holding the object pointer (deref target)
	base   uint64
	size   uint64
	stores int
	freed  bool
}

// worker owns one shard: an isolated address space, allocator, shadow
// table, pointer log, and detector, driven by a single goroutine so the
// audit identity is exact (all detector work, including synchronous
// quarantine drains, happens on this goroutine). Clients never touch the
// worker directly — the coordinator routes requests over reqCh with
// deadlines, and the supervisor owns stop/done.
type worker struct {
	shard       int
	incarnation int

	proc  *proc.Process
	det   *dangsan.Detector
	th    *proc.Thread
	plane *faultinject.Plane

	reqCh    chan request
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	mode     atomic.Int32
	panicked atomic.Bool

	slowDelay   time.Duration
	freedWindow int

	recs         map[uint64]*keyRec
	freedFIFO    []uint64
	anchorFree   []uint64
	scratch      uint64
	scratchSlots uint64
}

// newWorker builds a shard worker with a fresh isolated stack. The worker
// goroutine is NOT started — failover replays the journal through direct
// handle calls first, then calls start.
func newWorker(shard, incarnation int, cfg Config) (*worker, error) {
	var plane *faultinject.Plane
	if cfg.FaultRate > 0 {
		// Distinct deterministic stream per shard and incarnation so a
		// rebuilt worker does not replay its predecessor's failures.
		plane = faultinject.New(cfg.FaultSeed + int64(shard)*1000003 + int64(incarnation)*7919)
		plane.EnableAll(cfg.FaultRate, cfg.FaultBudget)
	}
	plCfg := pointerlog.DefaultConfig()
	plCfg.Audit = cfg.Audit
	plCfg.MaxMetadataBytes = cfg.MaxMetadataBytes
	if cfg.QuarantineBytes > 0 {
		plCfg.QuarantineBytes = cfg.QuarantineBytes
		plCfg.QuarantineEpoch = cfg.QuarantineEpoch
		// Synchronous drains keep the worker single-threaded end to end:
		// the audit identity stays exact and failover never races a
		// background drain goroutine.
		plCfg.QuarantineSync = true
	}
	if cfg.ColdSpillBytes > 0 {
		plCfg.ColdSpillBytes = cfg.ColdSpillBytes
		plCfg.ColdDir = cfg.ColdDir
	}
	det := dangsan.NewWithOptions(dangsan.Options{Config: plCfg, Faults: plane})
	p := proc.NewWithOptions(det, proc.Options{HeapBytes: cfg.HeapBytes, Faults: plane})
	w := &worker{
		shard:        shard,
		incarnation:  incarnation,
		proc:         p,
		det:          det,
		th:           p.NewThread(),
		plane:        plane,
		reqCh:        make(chan request, cfg.QueueDepth),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
		slowDelay:    cfg.SlowDelay,
		freedWindow:  cfg.FreedWindow,
		recs:         make(map[uint64]*keyRec),
		scratchSlots: uint64(cfg.ScratchSlots),
	}
	scratch, err := p.TryAllocGlobal(w.scratchSlots * 8)
	if err != nil {
		det.Close()
		return nil, err
	}
	w.scratch = scratch
	return w, nil
}

// start launches the worker loop. Called exactly once, after any replay.
func (w *worker) start() { go w.run() }

// shutdown asks the worker loop to exit; safe to call repeatedly.
func (w *worker) shutdown() { w.stopOnce.Do(func() { close(w.stop) }) }

// coldPath returns the worker's spill file location ("" if the cold tier
// never spilled).
func (w *worker) coldPath() string {
	return w.det.Logger().ColdLogStats().Path
}

func (w *worker) run() {
	defer close(w.done)
	defer func() {
		if r := recover(); r != nil {
			// A worker panic must never take the process down: record it
			// and exit; the supervisor notices done and rebuilds the
			// shard. The panic value is intentionally not re-raised.
			w.panicked.Store(true)
		}
	}()
	for {
		select {
		case <-w.stop:
			return
		case req := <-w.reqCh:
			switch disruptMode(w.mode.Load()) {
			case disruptSlow:
				t := time.NewTimer(w.slowDelay)
				select {
				case <-t.C:
				case <-w.stop:
					t.Stop()
					return
				}
			case disruptHang:
				// Never reply; hold the goroutine until failover stops us.
				<-w.stop
				return
			case disruptKill:
				// Crash: exit without replying.
				return
			case disruptKillAfter:
				// Apply, then crash before the reply: the mutation is real
				// but never confirmed — absent from the journal, invisible
				// to the client. Crash-consistency tests live here.
				w.handle(req)
				return
			}
			req.resp <- w.handle(req)
		}
	}
}

// send routes one request with a deadline covering both the enqueue and
// the reply. Every failure is typed; send never blocks past timeout.
func (w *worker) send(req request, timeout time.Duration) response {
	req.resp = make(chan response, 1)
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case w.reqCh <- req:
	case <-w.done:
		return response{err: &ShardDownError{Shard: w.shard, Reason: "worker exited"}}
	case <-timer.C:
		return response{err: &DeadlineError{Shard: w.shard, Op: req.kind.String(), Timeout: timeout}}
	}
	select {
	case resp := <-req.resp:
		return resp
	case <-w.done:
		return response{err: &ShardDownError{Shard: w.shard, Reason: "worker exited mid-request"}}
	case <-timer.C:
		return response{err: &DeadlineError{Shard: w.shard, Op: req.kind.String(), Timeout: timeout}}
	}
}

// handle executes one request on the worker goroutine (or, during replay,
// on the failover goroutine before the loop starts — the worker is
// unreachable then, so single-threadedness holds either way).
func (w *worker) handle(req request) response {
	switch req.kind {
	case opAlloc:
		return response{err: w.handleAlloc(req.key, req.size, req.stores)}
	case opFree:
		return response{err: w.handleFree(req.key)}
	case opCheck:
		v, err := w.handleCheck(req.key)
		return response{verdict: v, err: err}
	case opPing:
		return response{}
	case opStats:
		return response{stats: w.det.Stats(), cold: w.det.Logger().ColdLogStats(), audit: w.det.AuditViolations()}
	case opQuiesce:
		w.proc.Quiesce()
		return response{}
	}
	return response{err: fmt.Errorf("service: unknown op %d", req.kind)}
}

// handleAlloc creates the key's object: a malloc, an anchor pointer in the
// globals segment (the slot later checks dereference through), and
// `stores` scattered pointer stores into the scratch arena so the pointer
// log sees realistic fan-out — heavy keys cross the hash fallback and the
// cold spill threshold. Idempotent: re-allocating a live key is a no-op,
// so a retry after a lost reply is safe.
func (w *worker) handleAlloc(key, size uint64, stores int) error {
	if rec, ok := w.recs[key]; ok && !rec.freed {
		return nil
	}
	if size < 8 {
		size = 8
	}
	base, err := w.th.Malloc(size)
	if err != nil {
		var oom *tcmalloc.OutOfMemoryError
		if !errors.As(err, &oom) {
			return err
		}
		// One local relief attempt: drain the quarantine and return idle
		// pages, then retry. Further retries are the coordinator's call.
		w.proc.ReclaimMemory()
		base, err = w.th.Malloc(size)
		if err != nil {
			return err
		}
	}
	anchor, err := w.takeAnchor()
	if err != nil {
		// Undo the malloc so the failed registration does not leak.
		_ = w.th.Free(base)
		return err
	}
	if f := w.th.StorePtr(anchor, base); f != nil {
		return f
	}
	for i := 0; i < stores; i++ {
		// Stride 97 scatters consecutive stores across the arena so the
		// log sees distinct, non-adjacent locations (adjacent ones would
		// compress 3-into-1 and never reach hash mode).
		slot := w.scratch + ((key*2654435761 + uint64(i)*97) % w.scratchSlots * 8)
		val := base + (uint64(i)*8)%size
		if f := w.th.StorePtr(slot, val); f != nil {
			return f
		}
	}
	if rec, ok := w.recs[key]; ok {
		// Reincarnation of a freed key: the new object replaces the old
		// record; the old anchor goes back to the pool.
		w.anchorFree = append(w.anchorFree, rec.anchor)
		w.dropFreed(key)
	}
	w.recs[key] = &keyRec{anchor: anchor, base: base, size: size, stores: stores}
	return nil
}

// handleFree frees the key's object. With quarantine armed the detector
// takes custody and invalidation happens at the epoch drain — until then a
// probe through the anchor legitimately still succeeds (the memory has not
// been reused; there is no hazard yet). Idempotent on absent/freed keys.
func (w *worker) handleFree(key uint64) error {
	rec, ok := w.recs[key]
	if !ok || rec.freed {
		return nil
	}
	if err := w.th.Free(rec.base); err != nil {
		return err
	}
	rec.freed = true
	w.freedFIFO = append(w.freedFIFO, key)
	for len(w.freedFIFO) > w.freedWindow {
		old := w.freedFIFO[0]
		w.freedFIFO = w.freedFIFO[1:]
		if orec, ok := w.recs[old]; ok && orec.freed {
			w.anchorFree = append(w.anchorFree, orec.anchor)
			delete(w.recs, old)
		}
	}
	return nil
}

// handleCheck dereferences through the key's anchor. For a freed key a
// fault is the detector working (the anchor pointer was invalidated); for
// a live key a fault is a FALSE UAF — surfaced as the error so the caller
// (and the chaos harness) can flag it.
func (w *worker) handleCheck(key uint64) (Verdict, error) {
	rec, ok := w.recs[key]
	if !ok {
		return Verdict{}, nil
	}
	_, fault := w.th.Deref(rec.anchor)
	if rec.freed {
		return Verdict{Known: true, Freed: true, UAF: fault != nil}, nil
	}
	if fault != nil {
		return Verdict{Known: true}, fault
	}
	return Verdict{Known: true}, nil
}

func (w *worker) takeAnchor() (uint64, error) {
	if n := len(w.anchorFree); n > 0 {
		a := w.anchorFree[n-1]
		w.anchorFree = w.anchorFree[:n-1]
		return a, nil
	}
	return w.proc.TryAllocGlobal(8)
}

func (w *worker) dropFreed(key uint64) {
	for i, k := range w.freedFIFO {
		if k == key {
			w.freedFIFO = append(w.freedFIFO[:i], w.freedFIFO[i+1:]...)
			return
		}
	}
}

// close releases the worker's detector resources (the cold spill file).
// Only safe after the loop has exited; an abandoned (hung) worker is
// deliberately never closed.
func (w *worker) close() { w.det.Close() }

// The remaining endpoint methods: the in-process worker IS the channel
// transport's endpoint.

// replay applies one request on the caller's goroutine — failover runs it
// before start, when the worker is unreachable, so the single-threaded
// contract holds.
func (w *worker) replay(req request) response { return w.handle(req) }

// kill has nothing harder than shutdown for a goroutine.
func (w *worker) kill() { w.shutdown() }

func (w *worker) doneCh() <-chan struct{} { return w.done }

func (w *worker) didPanic() bool { return w.panicked.Load() }

func (w *worker) incarnationID() int { return w.incarnation }

// disrupt injects a failure mode. Mode changes are a bare atomic store —
// they must land even when the worker is hung or its queue is full.
func (w *worker) disrupt(m disruptMode) error {
	switch m {
	case disruptSigKill:
		// Immediate death, the in-process analog of SIGKILL: the goroutine
		// unblocks on stop and exits now, not on its next request.
		w.shutdown()
		return nil
	case disruptNetPartition, disruptNetTrickle, disruptNetGarbage:
		return fmt.Errorf("service: network fault %d needs a wire transport", m)
	}
	w.mode.Store(int32(m))
	return nil
}
