// Package service implements a supervised, sharded detection service over
// the in-process DangSan stack — the coordinator/worker/client split the
// ROADMAP's "millions of users" north star calls for. A coordinator shards
// the simulated address space across N workers, each owning an isolated
// vmem/tcmalloc/shadow/pointerlog instance plus a detector, and routes
// register/free/deref-check streams by shard. Robustness is the first-class
// design axis: every worker runs under a supervisor (heartbeat health
// checks with miss thresholds), every request carries a deadline, transient
// worker errors are retried with exponential backoff + jitter under a
// wall-time cap, a per-shard circuit breaker trips to fail-open degraded
// mode (requests counted, never a false UAF verdict or a hang), and shard
// failover restarts a dead worker and rebuilds its state — replaying the
// coordinator's journal and recovering cold spill segments through
// pointerlog.ReadSegments so the audit identity
// (LogBytes == live + quarantined + released + spilled) holds across the
// restart.
package service

import (
	"fmt"
	"time"
)

// ShardDownError reports a request that could not reach its shard because
// the worker had exited (crash, kill injection, or mid-failover). It is
// transient: the coordinator retries, and exhausted retries fall open into
// a degraded verdict, never an untyped error.
type ShardDownError struct {
	Shard  int
	Reason string
}

func (e *ShardDownError) Error() string {
	return fmt.Sprintf("service: shard %d down (%s)", e.Shard, e.Reason)
}

// DeadlineError reports a request that missed its per-request deadline —
// the worker was too slow (or hung) to enqueue or answer in time. It is
// transient in the same sense as ShardDownError.
type DeadlineError struct {
	Shard   int
	Op      string
	Timeout time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("service: shard %d %s deadline exceeded (%v)", e.Shard, e.Op, e.Timeout)
}

// ClosedError reports a request issued after Service.Close.
type ClosedError struct{}

func (e *ClosedError) Error() string { return "service: closed" }
