// Package service implements a supervised, sharded detection service over
// the DangSan stack — the coordinator/worker/client split the ROADMAP's
// "millions of users" north star calls for. A coordinator shards the
// simulated address space across N workers, each owning an isolated
// vmem/tcmalloc/shadow/pointerlog instance plus a detector, and routes
// register/free/deref-check streams by shard. Robustness is the first-class
// design axis: every worker runs under a supervisor (heartbeat health
// checks with miss thresholds), every request carries a deadline, transient
// worker errors are retried with exponential backoff + jitter under a
// wall-time cap, a per-shard circuit breaker trips to fail-open degraded
// mode (requests counted, never a false UAF verdict or a hang), and shard
// failover restarts a dead worker and rebuilds its state — replaying the
// coordinator's journal and recovering cold spill segments through
// pointerlog.ReadSegments so the audit identity
// (LogBytes == live + quarantined + released + spilled) holds across the
// restart.
//
// Workers live behind a Transport: the default keeps them as goroutines in
// this process reached over channels; the "unix" and "tcp" transports run
// each worker as its own OS process reached over the wire codec in the
// transport subpackage, so a worker can be killed with SIGKILL, respawned,
// and rebuilt without the coordinator's address space ever being at risk.
// The supervision machinery is transport-blind — the same heartbeats,
// breakers, and journal replay drive both.
package service

import "dangsan/internal/service/transport"

// The typed error vocabulary is shared with the wire layer (the transport
// package owns the definitions so the codec can encode them without an
// import cycle); the aliases keep the service API unchanged.

// ShardDownError reports a request that could not reach its shard because
// the worker had exited (crash, kill injection, or mid-failover) or its
// connection died. Transient: retried, then degraded.
type ShardDownError = transport.ShardDownError

// DeadlineError reports a request that missed its per-request deadline.
// Transient in the same sense as ShardDownError.
type DeadlineError = transport.DeadlineError

// ClosedError reports a request issued after Service.Close.
type ClosedError = transport.ClosedError
