package service

import (
	"os"
	"testing"
)

// TestMain lets this test binary be re-exec'd as a worker process: the
// wire transports spawn the current executable by default, and a spawned
// copy must become a worker instead of running the test suite.
func TestMain(m *testing.M) {
	RunWorkerIfSpawned()
	os.Exit(m.Run())
}
