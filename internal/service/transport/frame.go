package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire frame format. Every message on a connection — request or response —
// is one frame:
//
//	offset  size  field
//	0       4     magic ("DSw1")
//	4       1     frame type (1 request, 2 response)
//	5       3     reserved (must be zero)
//	8       4     payload length (≤ MaxFramePayload)
//	12      4     checksum — FNV-1a over the payload bytes
//	16      n     payload
//
// The discipline is pointerlog's cold-segment framing ("DSg1") applied to
// a socket: self-describing length so the reader never over-reads, a
// checksum so corruption is detected before decoding, and fail-closed
// semantics — any validation failure poisons the connection, because the
// stream position after a bad frame is unknowable.

// FrameMagic marks a wire frame header ("DSw1" little-endian).
const FrameMagic = uint32('D') | uint32('S')<<8 | uint32('w')<<16 | uint32('1')<<24

// FrameHeaderBytes is the fixed frame header size.
const FrameHeaderBytes = 16

// MaxFramePayload bounds a frame's declared payload length. A frame
// claiming more fails closed before any allocation — the cap is what
// keeps a corrupt or hostile length field from becoming an over-read or
// an allocation bomb.
const MaxFramePayload = 1 << 20

// Frame types.
const (
	FrameRequest  byte = 1
	FrameResponse byte = 2
)

// fnv1a is the payload checksum (FNV-1a 32-bit), the same function the
// cold-segment format uses.
func fnv1a(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// AppendFrame appends one framed message to dst and returns the extended
// slice.
func AppendFrame(dst []byte, typ byte, payload []byte) []byte {
	var hdr [FrameHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], FrameMagic)
	hdr[4] = typ
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:], fnv1a(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// validateHeader checks the fixed fields of a frame header and returns the
// declared payload length.
func validateHeader(hdr []byte) (typ byte, payloadLen int, err error) {
	if binary.LittleEndian.Uint32(hdr[0:]) != FrameMagic {
		return 0, 0, &FrameError{Reason: "bad magic"}
	}
	typ = hdr[4]
	if typ != FrameRequest && typ != FrameResponse {
		return 0, 0, &FrameError{Reason: fmt.Sprintf("unknown frame type %d", typ)}
	}
	if hdr[5] != 0 || hdr[6] != 0 || hdr[7] != 0 {
		return 0, 0, &FrameError{Reason: "nonzero reserved bytes"}
	}
	n := binary.LittleEndian.Uint32(hdr[8:])
	if n > MaxFramePayload {
		return 0, 0, &FrameError{Reason: fmt.Sprintf("payload length %d exceeds cap %d", n, MaxFramePayload)}
	}
	return typ, int(n), nil
}

// ReadFrame reads exactly one frame from r. Validation failures return a
// *FrameError; I/O failures (including deadline expiry) return the
// underlying error untouched so the caller can classify them.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [FrameHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	typ, n, err := validateHeader(hdr[:])
	if err != nil {
		return 0, nil, err
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	if fnv1a(payload) != binary.LittleEndian.Uint32(hdr[12:]) {
		return 0, nil, &FrameError{Reason: "checksum mismatch"}
	}
	return typ, payload, nil
}

// DecodeFrame parses one frame at the start of b without reading from a
// stream — the fuzz target and offline tooling use it. It returns the
// frame type, the payload, and the total framed length consumed. Short
// input, bad framing, and checksum mismatches all fail closed with a
// *FrameError; no input can make it panic or read past len(b).
func DecodeFrame(b []byte) (typ byte, payload []byte, n int, err error) {
	if len(b) < FrameHeaderBytes {
		return 0, nil, 0, &FrameError{Reason: "truncated header"}
	}
	typ, payloadLen, err := validateHeader(b[:FrameHeaderBytes])
	if err != nil {
		return 0, nil, 0, err
	}
	if len(b) < FrameHeaderBytes+payloadLen {
		return 0, nil, 0, &FrameError{Reason: "truncated payload"}
	}
	payload = b[FrameHeaderBytes : FrameHeaderBytes+payloadLen]
	if fnv1a(payload) != binary.LittleEndian.Uint32(b[12:]) {
		return 0, nil, 0, &FrameError{Reason: "checksum mismatch"}
	}
	return typ, payload, FrameHeaderBytes + payloadLen, nil
}
