package transport

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"dangsan/internal/pointerlog"
	"dangsan/internal/proc"
	"dangsan/internal/tcmalloc"
	"dangsan/internal/vmem"
)

// Op is the wire request vocabulary — one value per coordinator/worker
// operation, matching the in-process queue's opKind.
type Op uint8

const (
	OpAlloc Op = iota + 1
	OpFree
	OpCheck
	OpPing
	OpStats
	OpQuiesce
	// OpDisrupt injects a failure mode into the worker (slow/hang/kill/
	// killafter) — the chaos stages drive it; a real deployment would not
	// carry it.
	OpDisrupt
)

func (o Op) String() string {
	switch o {
	case OpAlloc:
		return "alloc"
	case OpFree:
		return "free"
	case OpCheck:
		return "check"
	case OpPing:
		return "ping"
	case OpStats:
		return "stats"
	case OpQuiesce:
		return "quiesce"
	case OpDisrupt:
		return "disrupt"
	}
	return "unknown"
}

// Disruption modes carried by OpDisrupt.
const (
	DisruptNone uint8 = iota
	DisruptSlow
	DisruptHang
	DisruptKill
	// DisruptKillAfter applies the request and then dies WITHOUT replying —
	// the crash-consistency window between a worker committing a mutation
	// and the coordinator journaling it.
	DisruptKillAfter
)

// Request is one wire request. ID is echoed by the response so a client
// can detect a desynchronized stream.
type Request struct {
	ID     uint64
	Op     Op
	Key    uint64
	Size   uint64
	Stores uint32
	Mode   uint8 // OpDisrupt operand
}

// reqPayloadBytes is the fixed request payload size.
const reqPayloadBytes = 30

// EncodeRequest packs a request payload (framing is the caller's job).
func EncodeRequest(r Request) []byte {
	b := make([]byte, reqPayloadBytes)
	binary.LittleEndian.PutUint64(b[0:], r.ID)
	b[8] = byte(r.Op)
	b[9] = r.Mode
	binary.LittleEndian.PutUint64(b[10:], r.Key)
	binary.LittleEndian.PutUint64(b[18:], r.Size)
	binary.LittleEndian.PutUint32(b[26:], r.Stores)
	return b
}

// DecodeRequest parses a request payload, failing closed on any size or
// field-range violation.
func DecodeRequest(b []byte) (Request, error) {
	if len(b) != reqPayloadBytes {
		return Request{}, &FrameError{Reason: fmt.Sprintf("request payload %d bytes, want %d", len(b), reqPayloadBytes)}
	}
	r := Request{
		ID:     binary.LittleEndian.Uint64(b[0:]),
		Op:     Op(b[8]),
		Mode:   b[9],
		Key:    binary.LittleEndian.Uint64(b[10:]),
		Size:   binary.LittleEndian.Uint64(b[18:]),
		Stores: binary.LittleEndian.Uint32(b[26:]),
	}
	if r.Op < OpAlloc || r.Op > OpDisrupt {
		return Request{}, &FrameError{Reason: fmt.Sprintf("unknown op %d", b[8])}
	}
	if r.Mode > DisruptKillAfter {
		return Request{}, &FrameError{Reason: fmt.Sprintf("unknown disrupt mode %d", r.Mode)}
	}
	return r, nil
}

// WireStats is the stats-op payload: the worker's pointer-log snapshot,
// cold-tier view, and audit verdicts, JSON-encoded inside the checksummed
// frame. Stats are an operator path, not a hot path — JSON keeps the
// struct evolvable without a hand-rolled layout per field.
type WireStats struct {
	Stats pointerlog.Snapshot  `json:"stats"`
	Cold  pointerlog.ColdStats `json:"cold"`
	Audit []string             `json:"audit,omitempty"`
}

// Response is one wire response. Err is nil or one of the typed errors;
// StatsJSON is non-empty only for OpStats replies.
type Response struct {
	ID        uint64
	Known     bool
	Freed     bool
	UAF       bool
	Degraded  bool
	Err       error
	StatsJSON []byte
}

// Verdict flag bits.
const (
	flagKnown    = 1 << 0
	flagFreed    = 1 << 1
	flagUAF      = 1 << 2
	flagDegraded = 1 << 3
)

// Error kinds on the wire. Every error a worker can legitimately produce
// has a dedicated kind so it round-trips losslessly: the coordinator's
// errors.As checks behave identically whether the worker answered over a
// channel or a socket.
const (
	errNone uint8 = iota
	errShardDown
	errDeadline
	errClosed
	errOOM
	errExhausted
	errFault
	errOpaque
)

// maxWireString bounds every length-prefixed string field.
const maxWireString = 4096

func appendString(dst []byte, s string) []byte {
	if len(s) > maxWireString {
		s = s[:maxWireString]
	}
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
	dst = append(dst, l[:]...)
	return append(dst, s...)
}

// byteReader walks a payload with explicit bounds checks; every read
// failure marks it bad so the caller converts to one typed error at the
// end instead of checking each field.
type byteReader struct {
	b   []byte
	off int
	bad bool
}

func (r *byteReader) take(n int) []byte {
	if r.bad || r.off+n > len(r.b) || n < 0 {
		r.bad = true
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *byteReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *byteReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *byteReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *byteReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *byteReader) str() string {
	n := int(r.u16())
	if n > maxWireString {
		r.bad = true
		return ""
	}
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// EncodeResponse packs a response payload.
func EncodeResponse(r Response) []byte {
	b := make([]byte, 0, 64+len(r.StatsJSON))
	var id [8]byte
	binary.LittleEndian.PutUint64(id[:], r.ID)
	b = append(b, id[:]...)
	var flags byte
	if r.Known {
		flags |= flagKnown
	}
	if r.Freed {
		flags |= flagFreed
	}
	if r.UAF {
		flags |= flagUAF
	}
	if r.Degraded {
		flags |= flagDegraded
	}
	b = append(b, flags)
	b = appendError(b, r.Err)
	var sl [4]byte
	binary.LittleEndian.PutUint32(sl[:], uint32(len(r.StatsJSON)))
	b = append(b, sl[:]...)
	b = append(b, r.StatsJSON...)
	return b
}

// appendError encodes err's kind byte and kind-specific fields.
func appendError(b []byte, err error) []byte {
	if err == nil {
		return append(b, errNone)
	}
	var down *ShardDownError
	var dl *DeadlineError
	var closed *ClosedError
	var oom *tcmalloc.OutOfMemoryError
	var ex *proc.ExhaustedError
	var fault *vmem.Fault
	switch {
	case errors.As(err, &down):
		b = append(b, errShardDown)
		var s [4]byte
		binary.LittleEndian.PutUint32(s[:], uint32(down.Shard))
		b = append(b, s[:]...)
		b = appendString(b, down.Reason)
	case errors.As(err, &dl):
		b = append(b, errDeadline)
		var s [4]byte
		binary.LittleEndian.PutUint32(s[:], uint32(dl.Shard))
		b = append(b, s[:]...)
		b = appendString(b, dl.Op)
		var t [8]byte
		binary.LittleEndian.PutUint64(t[:], uint64(dl.Timeout))
		b = append(b, t[:]...)
	case errors.As(err, &closed):
		b = append(b, errClosed)
	case errors.As(err, &oom):
		b = append(b, errOOM)
		var s [8]byte
		binary.LittleEndian.PutUint64(s[:], oom.Size)
		b = append(b, s[:]...)
	case errors.As(err, &ex):
		b = append(b, errExhausted)
		b = appendString(b, ex.Resource)
		var t [4]byte
		binary.LittleEndian.PutUint32(t[:], uint32(ex.Tid))
		b = append(b, t[:]...)
		var s [8]byte
		binary.LittleEndian.PutUint64(s[:], ex.Size)
		b = append(b, s[:]...)
	case errors.As(err, &fault):
		b = append(b, errFault)
		var a [8]byte
		binary.LittleEndian.PutUint64(a[:], fault.Addr)
		b = append(b, a[:]...)
		b = append(b, byte(fault.Kind))
	default:
		b = append(b, errOpaque)
		b = appendString(b, err.Error())
	}
	return b
}

// decodeError reads the error encoded at r's cursor.
func decodeError(r *byteReader) error {
	switch r.u8() {
	case errNone:
		return nil
	case errShardDown:
		shard := int(r.u32())
		return &ShardDownError{Shard: shard, Reason: r.str()}
	case errDeadline:
		shard := int(r.u32())
		op := r.str()
		return &DeadlineError{Shard: shard, Op: op, Timeout: time.Duration(r.u64())}
	case errClosed:
		return &ClosedError{}
	case errOOM:
		return &tcmalloc.OutOfMemoryError{Size: r.u64()}
	case errExhausted:
		res := r.str()
		tid := int32(r.u32())
		return &proc.ExhaustedError{Resource: res, Tid: tid, Size: r.u64()}
	case errFault:
		addr := r.u64()
		kind := r.u8()
		if kind > uint8(vmem.FaultFreedRange) {
			r.bad = true
			return nil
		}
		return &vmem.Fault{Addr: addr, Kind: vmem.FaultKind(kind)}
	case errOpaque:
		return &OpaqueError{Msg: r.str()}
	default:
		r.bad = true
		return nil
	}
}

// DecodeResponse parses a response payload, failing closed on any
// malformed field — including trailing bytes, which would mean the stream
// is desynchronized.
func DecodeResponse(b []byte) (Response, error) {
	r := &byteReader{b: b}
	var out Response
	out.ID = r.u64()
	flags := r.u8()
	if flags&^(flagKnown|flagFreed|flagUAF|flagDegraded) != 0 {
		return Response{}, &FrameError{Reason: "unknown verdict flags"}
	}
	out.Known = flags&flagKnown != 0
	out.Freed = flags&flagFreed != 0
	out.UAF = flags&flagUAF != 0
	out.Degraded = flags&flagDegraded != 0
	out.Err = decodeError(r)
	statsLen := int(r.u32())
	if statsLen > MaxFramePayload {
		return Response{}, &FrameError{Reason: "stats blob length exceeds frame cap"}
	}
	if s := r.take(statsLen); s != nil && statsLen > 0 {
		out.StatsJSON = append([]byte(nil), s...)
	}
	if r.bad {
		return Response{}, &FrameError{Reason: "malformed response payload"}
	}
	if r.off != len(b) {
		return Response{}, &FrameError{Reason: fmt.Sprintf("%d trailing bytes after response", len(b)-r.off)}
	}
	return out, nil
}

// EncodeStats marshals a WireStats blob for a stats response.
func EncodeStats(ws WireStats) ([]byte, error) { return json.Marshal(ws) }

// DecodeStats unmarshals a stats blob; a malformed blob is a typed frame
// error (the checksum passed, so this is a peer bug, not line noise — but
// the contract is the same: fail closed).
func DecodeStats(b []byte) (WireStats, error) {
	var ws WireStats
	if err := json.Unmarshal(b, &ws); err != nil {
		return WireStats{}, &FrameError{Reason: "malformed stats blob: " + err.Error()}
	}
	return ws, nil
}
