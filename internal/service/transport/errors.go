// Package transport is the service's wire layer: a length-prefixed,
// checksummed binary frame codec carrying the coordinator/worker request
// vocabulary (alloc/free/check/ping/stats/quiesce/disrupt) and the typed
// error contract losslessly, plus a unix-socket / loopback-TCP client and
// server pair. The framing discipline mirrors pointerlog's cold segments
// ("DSg1"): a fixed 16-byte header with magic, declared payload length,
// and an FNV-1a payload checksum, so a truncated, corrupt, or oversized
// frame fails closed with a typed error — never a panic, never an
// over-read, never a silent desync.
//
// The typed errors the in-process service already uses live here (the
// service package aliases them) so both layers share one vocabulary: a
// wire client maps connection failures onto ShardDownError and socket
// deadline expiries onto DeadlineError, which is exactly what the
// coordinator's retry/breaker machinery already understands.
package transport

import (
	"fmt"
	"time"
)

// ShardDownError reports a request that could not reach its shard because
// the worker had exited (crash, kill injection, or mid-failover) or, over
// a wire transport, because the connection could not be established or
// died mid-exchange. It is transient: the coordinator retries, and
// exhausted retries fall open into a degraded verdict, never an untyped
// error.
type ShardDownError struct {
	Shard  int
	Reason string
}

func (e *ShardDownError) Error() string {
	return fmt.Sprintf("service: shard %d down (%s)", e.Shard, e.Reason)
}

// DeadlineError reports a request that missed its per-request deadline —
// the worker was too slow (or hung) to enqueue or answer in time. Over a
// wire transport the per-request deadline is mapped onto the socket
// read/write deadlines, so a stalled peer surfaces here too. It is
// transient in the same sense as ShardDownError.
type DeadlineError struct {
	Shard   int
	Op      string
	Timeout time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("service: shard %d %s deadline exceeded (%v)", e.Shard, e.Op, e.Timeout)
}

// ClosedError reports a request issued after Service.Close.
type ClosedError struct{}

func (e *ClosedError) Error() string { return "service: closed" }

// FrameError reports a wire frame that failed validation: bad magic,
// impossible length, checksum mismatch, or a truncated read. The decoder
// fails closed — the bytes after a bad frame are unknowable, so the
// connection carrying it must be dropped.
type FrameError struct {
	Reason string
}

func (e *FrameError) Error() string { return "transport: bad frame: " + e.Reason }

// OpaqueError carries an error the wire codec had no dedicated encoding
// for. The message survives; the dynamic type does not. The service
// contract treats these the way it treats any untyped error — as a
// violation worth flagging — so the opaque kind existing at all is a
// tripwire, not a sanctioned path.
type OpaqueError struct {
	Msg string
}

func (e *OpaqueError) Error() string { return e.Msg }
