package transport

import (
	"net"
	"sync"
)

// Handler serves one decoded request. A handler that never returns (a
// hung worker) simply never answers — the client's deadline fires; a
// handler that exits the process (kill injection) drops every connection.
type Handler func(Request) Response

// Server accepts connections and serves frames to a Handler. One
// goroutine per connection; the worker's own single-threaded discipline
// lives behind the handler (requests funnel into the worker's queue), so
// concurrent connections cannot break it.
type Server struct {
	l net.Listener
	h Handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewServer wraps a listener and handler.
func NewServer(l net.Listener, h Handler) *Server {
	return &Server{l: l, h: h, conns: make(map[net.Conn]struct{})}
}

// Serve accepts until the listener closes. It returns the accept error
// (nil after Close).
func (s *Server) Serve() error {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close stops accepting and drops every open connection.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.l.Close()
	for _, c := range conns {
		c.Close()
	}
}

// serveConn is one connection's read/handle/reply loop. Every failure —
// bad frame, garbage bytes, truncated read, codec error — fails closed by
// dropping the connection: after a framing violation the stream position
// is unknowable, and replying to a request that was never validly framed
// would be answering a question nobody asked. A handler panic is
// contained the same way (the worker process's own panic handling decides
// whether the process survives).
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		recover()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var scratch []byte
	for {
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			return
		}
		if typ != FrameRequest {
			return
		}
		req, err := DecodeRequest(payload)
		if err != nil {
			return
		}
		resp := s.h(req)
		resp.ID = req.ID
		scratch = AppendFrame(scratch[:0], FrameResponse, EncodeResponse(resp))
		if _, err := conn.Write(scratch); err != nil {
			return
		}
	}
}
