package transport

import (
	"bytes"
	"testing"
	"time"
)

// FuzzFrameRoundtrip drives arbitrary bytes through the full wire decode
// stack — frame, request, response, stats blob. The contract under fuzz:
//
//   - no input panics or over-reads (DecodeFrame never touches bytes past
//     the declared, capped payload length);
//   - every rejection is a typed error (the decoders return *FrameError);
//   - anything that decodes re-encodes to bytes that decode to the same
//     value (the codec is a bijection on its valid range), so a frame that
//     survives validation cannot silently mutate in flight.
func FuzzFrameRoundtrip(f *testing.F) {
	// Seed with well-formed frames of each flavor plus classic corruptions.
	f.Add(AppendFrame(nil, FrameRequest, EncodeRequest(Request{ID: 1, Op: OpAlloc, Key: 42, Size: 256, Stores: 8})))
	f.Add(AppendFrame(nil, FrameRequest, EncodeRequest(Request{ID: 2, Op: OpDisrupt, Mode: DisruptKillAfter})))
	f.Add(AppendFrame(nil, FrameResponse, EncodeResponse(Response{ID: 3, Known: true, Freed: true, UAF: true})))
	f.Add(AppendFrame(nil, FrameResponse, EncodeResponse(Response{ID: 4, Err: &DeadlineError{Shard: 1, Op: "check", Timeout: time.Millisecond}})))
	f.Add(AppendFrame(nil, FrameResponse, EncodeResponse(Response{ID: 5, Err: &ShardDownError{Shard: 2, Reason: "worker exited"}})))
	stats, _ := EncodeStats(WireStats{Audit: []string{"x"}})
	f.Add(AppendFrame(nil, FrameResponse, EncodeResponse(Response{ID: 6, StatsJSON: stats})))
	f.Add([]byte("DSw1 but not really"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	truncated := AppendFrame(nil, FrameRequest, EncodeRequest(Request{Op: OpPing}))
	f.Add(truncated[:len(truncated)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, n, err := DecodeFrame(data)
		if err != nil {
			return // fail-closed path: typed error, nothing decoded
		}
		if n > len(data) {
			t.Fatalf("DecodeFrame consumed %d of %d bytes", n, len(data))
		}
		// Whatever decoded must re-frame byte-identically.
		reframed := AppendFrame(nil, typ, payload)
		if !bytes.Equal(reframed, data[:n]) {
			t.Fatalf("reframe mismatch: %x vs %x", reframed, data[:n])
		}
		switch typ {
		case FrameRequest:
			req, err := DecodeRequest(payload)
			if err != nil {
				return
			}
			b := EncodeRequest(req)
			again, err := DecodeRequest(b)
			if err != nil || again != req {
				t.Fatalf("request roundtrip mismatch: %+v vs %+v (%v)", req, again, err)
			}
		case FrameResponse:
			resp, err := DecodeResponse(payload)
			if err != nil {
				return
			}
			b := EncodeResponse(resp)
			again, err := DecodeResponse(b)
			if err != nil {
				t.Fatalf("re-encoded response rejected: %v", err)
			}
			if again.ID != resp.ID || again.Known != resp.Known || again.Freed != resp.Freed ||
				again.UAF != resp.UAF || again.Degraded != resp.Degraded ||
				!bytes.Equal(again.StatsJSON, resp.StatsJSON) {
				t.Fatalf("response roundtrip mismatch: %+v vs %+v", resp, again)
			}
			if (resp.Err == nil) != (again.Err == nil) {
				t.Fatalf("error presence changed across roundtrip")
			}
			if resp.Err != nil && resp.Err.Error() != again.Err.Error() {
				t.Fatalf("error text changed across roundtrip: %q vs %q", resp.Err, again.Err)
			}
			if len(resp.StatsJSON) > 0 {
				// Stats decoding must also fail closed, never panic.
				_, _ = DecodeStats(resp.StatsJSON)
			}
		}
	})
}
