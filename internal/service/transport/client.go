package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// NetFault is a one-shot network disruption armed on a client: the next
// request triggers it and the fault clears. The chaos network stages use
// these to prove the coordinator's fail-open contract covers the wire.
type NetFault int32

const (
	// NetNone: no disruption.
	NetNone NetFault = iota
	// NetPartition writes a partial frame and slams the connection shut
	// mid-request — the worker may or may not have seen the request.
	NetPartition
	// NetTrickle writes the request one byte at a time until the request
	// deadline expires — a pathological slow writer.
	NetTrickle
	// NetGarbage injects non-frame bytes ahead of the request, forcing the
	// server's framing validation to fail closed and drop the connection.
	NetGarbage
)

// Client is one coordinator-side connection to a worker endpoint. Requests
// are serialized (the worker is single-threaded anyway), each mapped onto
// socket read/write deadlines; any error — deadline, connection loss, bad
// frame — poisons the connection, which is re-dialed lazily on the next
// request. All failures surface as the service's typed transport errors.
type Client struct {
	network string
	addr    string
	shard   int

	mu     sync.Mutex
	conn   net.Conn
	nextID uint64

	fault atomic.Int32
}

// NewClient builds a client for the worker at (network, addr). No
// connection is made until the first Do.
func NewClient(network, addr string, shard int) *Client {
	return &Client{network: network, addr: addr, shard: shard}
}

// InjectNetFault arms a one-shot network disruption for the next request.
func (c *Client) InjectNetFault(f NetFault) { c.fault.Store(int32(f)) }

// Close drops the connection. A Do in flight fails; later Dos re-dial.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropLocked()
}

func (c *Client) dropLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// down wraps a transport-level failure as the typed shard-down error.
func (c *Client) down(format string, args ...any) error {
	return &ShardDownError{Shard: c.shard, Reason: fmt.Sprintf(format, args...)}
}

// classify maps an I/O error onto the typed contract: deadline expiries
// become DeadlineError (the per-request deadline was mapped onto the
// socket), everything else ShardDownError.
func (c *Client) classify(err error, op string, timeout time.Duration) error {
	if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		return &DeadlineError{Shard: c.shard, Op: op, Timeout: timeout}
	}
	return c.down("%v", err)
}

// Do sends one request and reads its response under the given deadline.
// The transport-level error (nil on a completed exchange) is returned
// separately from the application-level Response.Err.
func (c *Client) Do(req Request, timeout time.Duration) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	deadline := time.Now().Add(timeout)
	if c.conn == nil {
		conn, err := net.DialTimeout(c.network, c.addr, timeout)
		if err != nil {
			return Response{}, c.down("dial: %v", err)
		}
		c.conn = conn
	}
	c.nextID++
	req.ID = c.nextID
	if err := c.conn.SetDeadline(deadline); err != nil {
		c.dropLocked()
		return Response{}, c.down("set deadline: %v", err)
	}
	frame := AppendFrame(nil, FrameRequest, EncodeRequest(req))

	switch NetFault(c.fault.Swap(int32(NetNone))) {
	case NetPartition:
		// Half the frame, then gone: the server reads a truncated frame
		// (or nothing) and drops the connection; this side reports the
		// shard unreachable. Whether the worker applied the request is
		// deliberately unknowable — that is the partition contract.
		_, _ = c.conn.Write(frame[:len(frame)/2])
		c.dropLocked()
		return Response{}, c.down("connection dropped mid-request (partition)")
	case NetTrickle:
		for i := range frame {
			if time.Now().After(deadline) {
				c.dropLocked()
				return Response{}, &DeadlineError{Shard: c.shard, Op: req.Op.String(), Timeout: timeout}
			}
			if _, err := c.conn.Write(frame[i : i+1]); err != nil {
				c.dropLocked()
				return Response{}, c.classify(err, req.Op.String(), timeout)
			}
			time.Sleep(2 * time.Millisecond)
		}
	case NetGarbage:
		// Non-frame bytes first: the server's magic/length validation
		// fails closed and the connection dies — the request itself is
		// never parsed.
		garbage := []byte("\x00GARBAGE-NOT-A-FRAME\xff\xfe\xfd\xfc")
		_, _ = c.conn.Write(garbage)
		if _, err := c.conn.Write(frame); err != nil {
			c.dropLocked()
			return Response{}, c.classify(err, req.Op.String(), timeout)
		}
	default:
		if _, err := c.conn.Write(frame); err != nil {
			c.dropLocked()
			return Response{}, c.classify(err, req.Op.String(), timeout)
		}
	}

	typ, payload, err := ReadFrame(c.conn)
	if err != nil {
		// Includes FrameError: a bad frame means the stream is
		// desynchronized, so the connection is poisoned either way.
		c.dropLocked()
		return Response{}, c.classify(err, req.Op.String(), timeout)
	}
	if typ != FrameResponse {
		c.dropLocked()
		return Response{}, c.down("unexpected frame type %d", typ)
	}
	resp, err := DecodeResponse(payload)
	if err != nil {
		c.dropLocked()
		return Response{}, c.down("bad response: %v", err)
	}
	if resp.ID != req.ID {
		// A stale reply from a previous (timed-out) exchange would land
		// here if the connection were ever reused across a failure; the id
		// echo turns that desync into a typed error instead of a wrong
		// answer.
		c.dropLocked()
		return Response{}, c.down("response id %d for request %d (stream desync)", resp.ID, req.ID)
	}
	return resp, nil
}
