package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"path/filepath"
	"testing"
	"time"

	"dangsan/internal/pointerlog"
	"dangsan/internal/proc"
	"dangsan/internal/tcmalloc"
	"dangsan/internal/vmem"
)

func TestFrameRoundtrip(t *testing.T) {
	payload := EncodeRequest(Request{ID: 7, Op: OpAlloc, Key: 42, Size: 128, Stores: 6})
	b := AppendFrame(nil, FrameRequest, payload)
	typ, got, n, err := DecodeFrame(b)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if typ != FrameRequest || n != len(b) || !bytes.Equal(got, payload) {
		t.Fatalf("roundtrip mismatch: typ=%d n=%d", typ, n)
	}
	// Stream path must agree with the in-memory path.
	typ2, got2, err := ReadFrame(bytes.NewReader(b))
	if err != nil || typ2 != typ || !bytes.Equal(got2, payload) {
		t.Fatalf("ReadFrame disagrees: %v", err)
	}
}

func TestFrameFailsClosed(t *testing.T) {
	valid := AppendFrame(nil, FrameResponse, EncodeResponse(Response{ID: 1}))
	cases := map[string][]byte{
		"empty":            nil,
		"short header":     valid[:8],
		"truncated body":   valid[:len(valid)-1],
		"bad magic":        append([]byte("XXXX"), valid[4:]...),
		"bad type":         func() []byte { b := append([]byte(nil), valid...); b[4] = 9; return b }(),
		"reserved nonzero": func() []byte { b := append([]byte(nil), valid...); b[5] = 1; return b }(),
		"corrupt payload":  func() []byte { b := append([]byte(nil), valid...); b[len(b)-1] ^= 0xff; return b }(),
		"oversized length": func() []byte {
			b := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint32(b[8:], MaxFramePayload+1)
			return b
		}(),
	}
	for name, b := range cases {
		if _, _, _, err := DecodeFrame(b); err == nil {
			t.Errorf("%s: DecodeFrame accepted a bad frame", name)
		} else {
			var fe *FrameError
			if !errors.As(err, &fe) {
				t.Errorf("%s: error is not a *FrameError: %v", name, err)
			}
		}
	}
}

func TestRequestCodecRejectsBadFields(t *testing.T) {
	good := EncodeRequest(Request{Op: OpCheck, Key: 1})
	if _, err := DecodeRequest(good[:len(good)-1]); err == nil {
		t.Fatal("short request accepted")
	}
	if _, err := DecodeRequest(append(good, 0)); err == nil {
		t.Fatal("long request accepted")
	}
	bad := append([]byte(nil), good...)
	bad[8] = 0 // op below range
	if _, err := DecodeRequest(bad); err == nil {
		t.Fatal("op 0 accepted")
	}
	bad[8] = byte(OpDisrupt)
	bad[9] = DisruptKillAfter + 1
	if _, err := DecodeRequest(bad); err == nil {
		t.Fatal("unknown disrupt mode accepted")
	}
}

// TestErrorCodecLossless is the typed-error contract on the wire: every
// error kind a worker can produce round-trips into a value errors.As
// recognizes with identical fields.
func TestErrorCodecLossless(t *testing.T) {
	cases := []error{
		nil,
		&ShardDownError{Shard: 3, Reason: "worker exited"},
		&DeadlineError{Shard: 1, Op: "check", Timeout: 25 * time.Millisecond},
		&ClosedError{},
		&tcmalloc.OutOfMemoryError{Size: 4096},
		&proc.ExhaustedError{Resource: "globals", Tid: -1, Size: 8},
		&vmem.Fault{Addr: 0x8000000000001000, Kind: vmem.FaultNonCanonical},
		&vmem.Fault{Addr: 0x1234, Kind: vmem.FaultFreedRange},
		errors.New("some untyped thing"),
	}
	for _, want := range cases {
		resp := Response{ID: 9, Known: true, Err: want}
		got, err := DecodeResponse(EncodeResponse(resp))
		if err != nil {
			t.Fatalf("decode (%v): %v", want, err)
		}
		if want == nil {
			if got.Err != nil {
				t.Fatalf("nil error decoded as %v", got.Err)
			}
			continue
		}
		switch w := want.(type) {
		case *ShardDownError:
			var g *ShardDownError
			if !errors.As(got.Err, &g) || *g != *w {
				t.Fatalf("ShardDownError mangled: %v", got.Err)
			}
		case *DeadlineError:
			var g *DeadlineError
			if !errors.As(got.Err, &g) || *g != *w {
				t.Fatalf("DeadlineError mangled: %v", got.Err)
			}
		case *ClosedError:
			var g *ClosedError
			if !errors.As(got.Err, &g) {
				t.Fatalf("ClosedError mangled: %v", got.Err)
			}
		case *tcmalloc.OutOfMemoryError:
			var g *tcmalloc.OutOfMemoryError
			if !errors.As(got.Err, &g) || *g != *w {
				t.Fatalf("OutOfMemoryError mangled: %v", got.Err)
			}
		case *proc.ExhaustedError:
			var g *proc.ExhaustedError
			if !errors.As(got.Err, &g) || *g != *w {
				t.Fatalf("ExhaustedError mangled: %v", got.Err)
			}
		case *vmem.Fault:
			var g *vmem.Fault
			if !errors.As(got.Err, &g) || *g != *w {
				t.Fatalf("Fault mangled: %v", got.Err)
			}
		default:
			var g *OpaqueError
			if !errors.As(got.Err, &g) || g.Msg != want.Error() {
				t.Fatalf("opaque error mangled: %v", got.Err)
			}
		}
	}
}

func TestResponseCodecVerdictAndStats(t *testing.T) {
	blob, err := EncodeStats(WireStats{
		Stats: pointerlog.Snapshot{Logged: 12, LogBytes: 96},
		Cold:  pointerlog.ColdStats{Path: "/tmp/x.seg"},
		Audit: []string{"drift"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp := Response{ID: 4, Known: true, Freed: true, UAF: true, StatsJSON: blob}
	got, err := DecodeResponse(EncodeResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Known || !got.Freed || !got.UAF || got.Degraded {
		t.Fatalf("verdict flags mangled: %+v", got)
	}
	ws, err := DecodeStats(got.StatsJSON)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Stats.Logged != 12 || ws.Cold.Path != "/tmp/x.seg" || len(ws.Audit) != 1 {
		t.Fatalf("stats mangled: %+v", ws)
	}
	// Trailing garbage after a well-formed response must fail closed.
	if _, err := DecodeResponse(append(EncodeResponse(resp), 0xAA)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// echoServer serves a handler on the given network for the test's
// lifetime and returns the dial address.
func echoServer(t *testing.T, network string, h Handler) string {
	t.Helper()
	addr := "127.0.0.1:0"
	if network == "unix" {
		addr = filepath.Join(t.TempDir(), "w.sock")
	}
	l, err := net.Listen(network, addr)
	if err != nil {
		t.Fatalf("listen %s: %v", network, err)
	}
	srv := NewServer(l, h)
	go srv.Serve()
	t.Cleanup(srv.Close)
	return l.Addr().String()
}

func TestClientServerBothNetworks(t *testing.T) {
	for _, network := range []string{"unix", "tcp"} {
		t.Run(network, func(t *testing.T) {
			addr := echoServer(t, network, func(req Request) Response {
				if req.Op == OpCheck {
					return Response{Known: true, Freed: true, UAF: true}
				}
				return Response{}
			})
			c := NewClient(network, addr, 0)
			defer c.Close()
			for i := 0; i < 3; i++ {
				resp, err := c.Do(Request{Op: OpCheck, Key: uint64(i)}, time.Second)
				if err != nil {
					t.Fatalf("Do %d: %v", i, err)
				}
				if !resp.Known || !resp.Freed || !resp.UAF {
					t.Fatalf("verdict lost on the wire: %+v", resp)
				}
			}
		})
	}
}

func TestClientDeadlineMapsToDeadlineError(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	addr := echoServer(t, "unix", func(req Request) Response {
		<-block // hung worker
		return Response{}
	})
	c := NewClient("unix", addr, 5)
	defer c.Close()
	_, err := c.Do(Request{Op: OpPing}, 30*time.Millisecond)
	var dl *DeadlineError
	if !errors.As(err, &dl) {
		t.Fatalf("want DeadlineError, got %v", err)
	}
	if dl.Shard != 5 || dl.Op != "ping" {
		t.Fatalf("deadline attribution wrong: %+v", dl)
	}
}

func TestClientDownServerMapsToShardDown(t *testing.T) {
	c := NewClient("unix", filepath.Join(t.TempDir(), "nobody.sock"), 2)
	defer c.Close()
	_, err := c.Do(Request{Op: OpPing}, 50*time.Millisecond)
	var down *ShardDownError
	if !errors.As(err, &down) || down.Shard != 2 {
		t.Fatalf("want ShardDownError for shard 2, got %v", err)
	}
}

func TestNetFaultsFailClosedAndRecover(t *testing.T) {
	addr := echoServer(t, "unix", func(req Request) Response { return Response{Known: true} })
	c := NewClient("unix", addr, 1)
	defer c.Close()
	for _, tc := range []struct {
		fault NetFault
		name  string
	}{{NetPartition, "partition"}, {NetTrickle, "trickle"}, {NetGarbage, "garbage"}} {
		if _, err := c.Do(Request{Op: OpPing}, 200*time.Millisecond); err != nil {
			t.Fatalf("pre-%s request failed: %v", tc.name, err)
		}
		c.InjectNetFault(tc.fault)
		_, err := c.Do(Request{Op: OpPing}, 50*time.Millisecond)
		if err == nil {
			t.Fatalf("%s: disrupted request succeeded", tc.name)
		}
		var down *ShardDownError
		var dl *DeadlineError
		if !errors.As(err, &down) && !errors.As(err, &dl) {
			t.Fatalf("%s: untyped error %v", tc.name, err)
		}
		// The fault is one-shot: the client reconnects and recovers.
		if _, err := c.Do(Request{Op: OpPing}, 200*time.Millisecond); err != nil {
			t.Fatalf("post-%s request failed: %v", tc.name, err)
		}
	}
}

// TestServerSurvivesGarbageConnections floods the server with raw garbage
// and partial frames; it must drop every such connection without panicking
// and keep serving well-formed clients.
func TestServerSurvivesGarbageConnections(t *testing.T) {
	addr := echoServer(t, "unix", func(req Request) Response { return Response{Known: true} })
	for _, junk := range [][]byte{
		[]byte("total garbage"),
		AppendFrame(nil, FrameRequest, EncodeRequest(Request{Op: OpPing}))[:10],
		AppendFrame(nil, FrameResponse, nil), // response frame where a request belongs
	} {
		conn, err := net.Dial("unix", addr)
		if err != nil {
			t.Fatal(err)
		}
		conn.Write(junk)
		conn.Close()
	}
	c := NewClient("unix", addr, 0)
	defer c.Close()
	if _, err := c.Do(Request{Op: OpPing}, time.Second); err != nil {
		t.Fatalf("server stopped serving after garbage: %v", err)
	}
}
