package service

import "sync"

// journalRec is what the coordinator remembers about one key — enough to
// re-issue the allocation (and, for freed keys, the free) against a fresh
// worker during failover.
type journalRec struct {
	size   uint64
	stores int
}

// journal is the coordinator-side per-shard state log. It records only
// CONFIRMED operations — updates happen after a successful worker reply —
// so the journal is always a superset of what any client can know about
// the shard: a mutation the worker applied but whose reply was lost to a
// timeout is absent from the journal AND from the client's view (the
// client saw the same degraded/timeout outcome), so replaying the journal
// never contradicts a client. Freed keys are kept in a bounded FIFO window
// so a rebuilt worker re-establishes quarantine custody for recent frees;
// older frees age out (their UAF probes report unknown, a coverage loss,
// never a false verdict).
type journal struct {
	mu     sync.Mutex
	live   map[uint64]journalRec
	freed  map[uint64]journalRec
	fifo   []uint64 // freed keys, oldest first
	window int
}

func newJournal(window int) *journal {
	return &journal{
		live:   make(map[uint64]journalRec),
		freed:  make(map[uint64]journalRec),
		window: window,
	}
}

func (j *journal) recordAlloc(key, size uint64, stores int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.live[key]; ok {
		return // idempotent replay of an existing allocation
	}
	if _, ok := j.freed[key]; ok {
		// Key reincarnated: the fresh allocation supersedes the freed
		// record (the worker's own freed window did the same).
		delete(j.freed, key)
		j.dropFromFIFO(key)
	}
	j.live[key] = journalRec{size: size, stores: stores}
}

func (j *journal) recordFree(key uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.live[key]
	if !ok {
		return
	}
	delete(j.live, key)
	j.freed[key] = rec
	j.fifo = append(j.fifo, key)
	for len(j.fifo) > j.window {
		old := j.fifo[0]
		j.fifo = j.fifo[1:]
		delete(j.freed, old)
	}
}

func (j *journal) dropFromFIFO(key uint64) {
	for i, k := range j.fifo {
		if k == key {
			j.fifo = append(j.fifo[:i], j.fifo[i+1:]...)
			return
		}
	}
}

// entry is one replayable journal record.
type entry struct {
	key    uint64
	size   uint64
	stores int
}

// snapshot returns the live set and the freed window (oldest first) for
// replay. The copies are taken under the lock; replay itself runs against
// a worker no client can reach yet, so the snapshot being slightly stale
// relative to concurrent confirmations is impossible — confirmations
// require worker replies and the old worker is gone.
func (j *journal) snapshot() (live, freed []entry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	live = make([]entry, 0, len(j.live))
	for k, r := range j.live {
		live = append(live, entry{key: k, size: r.size, stores: r.stores})
	}
	freed = make([]entry, 0, len(j.fifo))
	for _, k := range j.fifo {
		if r, ok := j.freed[k]; ok {
			freed = append(freed, entry{key: k, size: r.size, stores: r.stores})
		}
	}
	return live, freed
}

// counts reports the journal's current size (live keys, freed-window keys).
func (j *journal) counts() (live, freed int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.live), len(j.fifo)
}
