package service

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dangsan/internal/tcmalloc"
	"dangsan/internal/vmem"
)

// LoadConfig shapes the synthetic client population driving a Service:
// connection churn (sessions drop their state and reconnect), hot keys (a
// small reused subset absorbs a fraction of traffic), and skewed tenants
// (a power-law over the tenant space concentrates load on few shards).
type LoadConfig struct {
	// Clients is the concurrent client count (0: 4).
	Clients int
	// Requests is the per-client operation count when Stop is nil (0: 1000).
	Requests int
	// Seed drives every client's deterministic op stream.
	Seed uint64
	// Tenants is the tenant-id space; tenant choice is power-law skewed
	// toward low ids (0: 8).
	Tenants int
	// HotFrac is the probability an op targets the client's hot-key set
	// instead of a fresh key (0: 0.3). HotKeys sizes that set (0: 8).
	HotFrac float64
	HotKeys int
	// ChurnEvery drops the client's session (all key tracking forgotten,
	// keys leak server-side like an abandoned connection) every N ops
	// (0: 400; negative disables churn).
	ChurnEvery int
	// HeavyFrac is the fraction of keys allocated with HeavyStores
	// scattered pointer stores — enough to push their location sets into
	// hash mode and across the cold spill threshold (0: 0.05).
	HeavyFrac   float64
	HeavyStores int // 0: 600
	LightStores int // 0: 6
	// SizeMin/SizeMax bound object sizes (0: 64/4096).
	SizeMin, SizeMax uint64
	// Stop, when non-nil, overrides Requests: clients run until it closes.
	Stop <-chan struct{}
}

func (c LoadConfig) normalized() LoadConfig {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.Tenants <= 0 {
		c.Tenants = 8
	}
	if c.HotFrac == 0 {
		c.HotFrac = 0.3
	}
	if c.HotKeys <= 0 {
		c.HotKeys = 8
	}
	if c.ChurnEvery == 0 {
		c.ChurnEvery = 400
	}
	if c.HeavyFrac == 0 {
		c.HeavyFrac = 0.05
	}
	if c.HeavyStores <= 0 {
		c.HeavyStores = 600
	}
	if c.LightStores <= 0 {
		c.LightStores = 6
	}
	if c.SizeMin == 0 {
		c.SizeMin = 64
	}
	if c.SizeMax < c.SizeMin {
		c.SizeMax = c.SizeMin + 4032
	}
	return c
}

// LoadResult aggregates what the client population observed. FalseUAF and
// Errors are the invariant-critical fields: both must be zero in every
// run, disrupted or not. MissedUAF and UnknownLive are coverage-loss
// indicators — legitimate under disruption (quarantine not yet drained,
// freed window aged out, journal replay raced a lost reply) and asserted
// zero only by clean-run tests.
type LoadResult struct {
	Issued    uint64 // operations attempted
	Confirmed uint64 // operations the shard answered
	Degraded  uint64 // fail-open verdicts (breaker open / retries exhausted)
	Detected  uint64 // freed-key probes the detector caught (UAF verdicts)
	MissedUAF uint64 // freed-key probes that did not fault
	FalseUAF  uint64 // live-key checks that faulted — NEVER acceptable
	Unknown   uint64 // live-key checks the shard had no record for
	Errors    []string
	Elapsed   time.Duration
}

// Violations returns the load-side invariant failures (false UAF verdicts
// and unexpected errors), empty when the run was clean.
func (r *LoadResult) Violations() []string {
	var out []string
	if r.FalseUAF > 0 {
		out = append(out, fmt.Sprintf("load: %d false UAF verdicts on live keys", r.FalseUAF))
	}
	out = append(out, r.Errors...)
	return out
}

// clientKey is a key the client believes it owns, with its lifecycle side.
type clientKey struct {
	tenant string
	key    uint64
}

// RunLoad drives the service with cfg.Clients concurrent clients and
// merges their observations.
func RunLoad(s *Service, cfg LoadConfig) LoadResult {
	cfg = cfg.normalized()
	results := make([]LoadResult, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c] = runClient(s, cfg, c)
		}(c)
	}
	wg.Wait()
	var out LoadResult
	for i := range results {
		r := &results[i]
		out.Issued += r.Issued
		out.Confirmed += r.Confirmed
		out.Degraded += r.Degraded
		out.Detected += r.Detected
		out.MissedUAF += r.MissedUAF
		out.FalseUAF += r.FalseUAF
		out.Unknown += r.Unknown
		if len(out.Errors) < 32 {
			out.Errors = append(out.Errors, r.Errors...)
		}
	}
	if len(out.Errors) > 32 {
		out.Errors = out.Errors[:32]
	}
	out.Elapsed = time.Since(start)
	return out
}

// runClient is one synthetic client: a session-scoped key space, an op mix
// over alloc/check/free/UAF-probe, hot-key reuse, skewed tenant choice,
// and periodic connection churn.
func runClient(s *Service, cfg LoadConfig, id int) LoadResult {
	var res LoadResult
	var rng jitterRNG
	rng.seed(cfg.Seed*1000003 + uint64(id)*7919 + 1)
	rand01 := func() float64 {
		return float64(rng.next()>>11) / float64(1<<53)
	}
	session := 0
	nextKey := uint64(0)
	var live []clientKey
	var freed []clientKey
	tenantFor := func() string {
		// Power-law skew: squaring the uniform draw concentrates mass on
		// low tenant ids, so a few tenants (and thus shards) run hot.
		t := int(float64(cfg.Tenants) * rand01() * rand01())
		if t >= cfg.Tenants {
			t = cfg.Tenants - 1
		}
		return fmt.Sprintf("tenant-%d", t)
	}
	newKey := func() clientKey {
		nextKey++
		// Client and session namespaces keep key spaces disjoint across
		// clients (shared keys would make one client's free look like
		// another's lost object).
		return clientKey{tenant: tenantFor(), key: uint64(id)<<40 | uint64(session)<<24 | nextKey}
	}
	churn := func() {
		// Connection drop: forget everything without freeing — the
		// server-side records leak exactly like an abandoned connection's.
		session++
		live = live[:0]
		freed = freed[:0]
	}
	record := func(err error) {
		if err == nil {
			return
		}
		if len(res.Errors) < 8 {
			res.Errors = append(res.Errors, fmt.Sprintf("client %d: unexpected error: %v", id, err))
		}
	}
	stopRequested := func() bool {
		if cfg.Stop == nil {
			return false
		}
		select {
		case <-cfg.Stop:
			return true
		default:
			return false
		}
	}

	for op := 0; ; op++ {
		if cfg.Stop == nil {
			if op >= cfg.Requests {
				break
			}
		} else if stopRequested() {
			break
		}
		if cfg.ChurnEvery > 0 && op > 0 && op%cfg.ChurnEvery == 0 {
			churn()
		}
		res.Issued++
		r := rand01()
		switch {
		case r < 0.40 || len(live) == 0:
			// Alloc — also hot-key reuse: with HotFrac, re-touch an
			// existing live key (idempotent alloc) instead of minting one.
			var k clientKey
			if len(live) > 0 && rand01() < cfg.HotFrac {
				k = live[int(rng.next()%uint64(min(cfg.HotKeys, len(live))))]
			} else {
				k = newKey()
			}
			size := cfg.SizeMin + rng.next()%(cfg.SizeMax-cfg.SizeMin+1)
			stores := cfg.LightStores
			if rand01() < cfg.HeavyFrac {
				stores = cfg.HeavyStores
			}
			v, err := s.Alloc(k.tenant, k.key, size, stores)
			switch {
			case err != nil:
				record(classifyClientErr(err, &res))
			case v.Degraded:
				res.Degraded++
			default:
				res.Confirmed++
				if !containsKey(live, k) {
					live = append(live, k)
				}
			}
		case r < 0.60:
			// Check a live key: must not fault.
			k := pickKey(live, &rng, cfg)
			v, err := s.Check(k.tenant, k.key)
			switch {
			case err != nil:
				var fault *vmem.Fault
				if errors.As(err, &fault) {
					res.FalseUAF++
				} else {
					record(classifyClientErr(err, &res))
				}
			case v.Degraded:
				res.Degraded++
			case !v.Known:
				res.Confirmed++
				res.Unknown++
			default:
				res.Confirmed++
			}
		case r < 0.80:
			// Free a live key.
			k := pickKey(live, &rng, cfg)
			v, err := s.Free(k.tenant, k.key)
			switch {
			case err != nil:
				record(classifyClientErr(err, &res))
			case v.Degraded:
				res.Degraded++
				// The free may or may not have landed: stop tracking the
				// key entirely (probing it could mis-classify either way).
				removeKey(&live, k)
			default:
				res.Confirmed++
				removeKey(&live, k)
				freed = append(freed, k)
				if len(freed) > 64 {
					freed = freed[1:]
				}
			}
		default:
			// UAF probe: check a freed key and see whether the detector
			// catches the dangling dereference.
			if len(freed) == 0 {
				res.Issued-- // nothing to probe; the op was not dispatched
				continue
			}
			k := freed[int(rng.next()%uint64(len(freed)))]
			v, err := s.Check(k.tenant, k.key)
			switch {
			case err != nil:
				record(classifyClientErr(err, &res))
			case v.Degraded:
				res.Degraded++
			case v.Known && v.Freed && v.UAF:
				res.Confirmed++
				res.Detected++
			default:
				// Not yet invalidated (quarantine pending), aged out of
				// the freed window, or lost to a failover outside the
				// journal's window: coverage loss, not a violation.
				res.Confirmed++
				res.MissedUAF++
			}
		}
	}
	return res
}

// classifyClientErr sorts an op error into the acceptable-typed bucket
// (nil return: memory pressure and post-close are expected outcomes) or
// returns it for the unexpected-error list.
func classifyClientErr(err error, res *LoadResult) error {
	var oom *tcmalloc.OutOfMemoryError
	var closed *ClosedError
	if errors.As(err, &oom) || errors.As(err, &closed) {
		res.Confirmed++
		return nil
	}
	return err
}

func pickKey(keys []clientKey, rng *jitterRNG, cfg LoadConfig) clientKey {
	if len(keys) == 0 {
		return clientKey{tenant: "tenant-0", key: 0}
	}
	// Hot-key skew: most picks come from the head of the live list.
	if float64(rng.next()>>11)/float64(1<<53) < cfg.HotFrac {
		return keys[int(rng.next()%uint64(min(cfg.HotKeys, len(keys))))]
	}
	return keys[int(rng.next()%uint64(len(keys)))]
}

func containsKey(keys []clientKey, k clientKey) bool {
	for _, e := range keys {
		if e == k {
			return true
		}
	}
	return false
}

func removeKey(keys *[]clientKey, k clientKey) {
	for i, e := range *keys {
		if e == k {
			*keys = append((*keys)[:i], (*keys)[i+1:]...)
			return
		}
	}
}
