package service

import (
	"errors"
	"testing"
	"time"

	"dangsan/internal/obs"
	"dangsan/internal/pointerlog"
)

// testConfig returns a service config with test-scale timings: failures
// surface in milliseconds instead of the production-ish defaults.
func testConfig(t *testing.T, shards int) Config {
	t.Helper()
	return Config{
		Shards:            shards,
		HeapBytes:         32 << 20,
		Audit:             true,
		QuarantineBytes:   256 << 10,
		QuarantineEpoch:   8,
		ColdSpillBytes:    pointerlog.MinColdSpillBytes,
		ColdDir:           t.TempDir(),
		Seed:              42,
		RequestTimeout:    25 * time.Millisecond,
		Retry:             RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond, MaxElapsed: 100 * time.Millisecond},
		HeartbeatInterval: 2 * time.Millisecond,
		HeartbeatTimeout:  10 * time.Millisecond,
		HeartbeatMisses:   2,
		BreakerThreshold:  3,
		BreakerCooldown:   10 * time.Millisecond,
		SlowDelay:         60 * time.Millisecond,
		FreedWindow:       128,
	}
}

func mustNew(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

// waitUntil polls cond up to timeout.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestServiceLifecycle: the basic contract — allocs are visible, live-key
// checks never fault, frees quarantine, a post-Quiesce probe detects the
// UAF, and the audit identity holds on every shard.
func TestServiceLifecycle(t *testing.T) {
	s := mustNew(t, testConfig(t, 2))
	for k := uint64(1); k <= 40; k++ {
		if v, err := s.Alloc("acme", k, 256, 4); err != nil || v.Degraded {
			t.Fatalf("alloc %d: v=%+v err=%v", k, v, err)
		}
	}
	for k := uint64(1); k <= 40; k++ {
		v, err := s.Check("acme", k)
		if err != nil {
			t.Fatalf("live check %d faulted (false UAF): %v", k, err)
		}
		if !v.Known || v.Freed {
			t.Fatalf("live check %d: %+v", k, v)
		}
	}
	for k := uint64(1); k <= 20; k++ {
		if v, err := s.Free("acme", k); err != nil || v.Degraded {
			t.Fatalf("free %d: v=%+v err=%v", k, v, err)
		}
	}
	if err := s.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	detected := 0
	for k := uint64(1); k <= 20; k++ {
		v, err := s.Check("acme", k)
		if err != nil {
			t.Fatalf("freed probe %d errored: %v", k, err)
		}
		if !v.Known || !v.Freed {
			t.Fatalf("freed probe %d: %+v", k, v)
		}
		if v.UAF {
			detected++
		}
	}
	if detected != 20 {
		t.Fatalf("post-quiesce probes detected %d/20 UAFs", detected)
	}
	// Live keys still clean after the drain.
	for k := uint64(21); k <= 40; k++ {
		if _, err := s.Check("acme", k); err != nil {
			t.Fatalf("live check %d after drain faulted: %v", k, err)
		}
	}
	for i := 0; i < s.Shards(); i++ {
		snap, _, audit, err := s.DetectorStats(i)
		if err != nil {
			t.Fatalf("stats shard %d: %v", i, err)
		}
		if len(audit) > 0 {
			t.Fatalf("shard %d audit violations: %v", i, audit)
		}
		if snap.ObjectsTracked == 0 {
			t.Fatalf("shard %d tracked nothing — routing is broken", i)
		}
	}
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("service violations: %v", v)
	}
}

// TestServiceRoutingCoversShards: the tenant/key hash must spread keys
// over every shard.
func TestServiceRoutingCoversShards(t *testing.T) {
	s := mustNew(t, testConfig(t, 4))
	seen := make(map[int]int)
	for k := uint64(0); k < 256; k++ {
		seen[s.ShardOf("tenant", k)]++
	}
	for i := 0; i < 4; i++ {
		if seen[i] == 0 {
			t.Fatalf("shard %d received no keys: %v", i, seen)
		}
	}
}

// TestServiceDegradedFailOpen: with supervision effectively disabled (so
// nothing rebuilds the shard), killing a worker must turn that shard's
// requests into degraded verdicts — typed, prompt, never a hang or a
// false answer — while other shards keep answering.
func TestServiceDegradedFailOpen(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.HeartbeatInterval = time.Hour // supervisor idle: no failover
	cfg.Retry.MaxElapsed = 20 * time.Millisecond
	s := mustNew(t, cfg)

	// Find keys for both shards.
	var k0, k1 uint64
	for k := uint64(1); k0 == 0 || k1 == 0; k++ {
		if s.ShardOf("t", k) == 0 {
			if k0 == 0 {
				k0 = k
			}
		} else if k1 == 0 {
			k1 = k
		}
	}
	if v, err := s.Alloc("t", k1, 64, 2); err != nil || v.Degraded {
		t.Fatalf("healthy alloc: %+v %v", v, err)
	}

	if err := s.Disrupt(0, "kill"); err != nil {
		t.Fatal(err)
	}
	// First request crashes the worker; the response is a typed timeout
	// or down error internally, surfaced as a degraded verdict.
	start := time.Now()
	v, err := s.Alloc("t", k0, 64, 2)
	if err != nil {
		t.Fatalf("killed-shard alloc returned error instead of failing open: %v", err)
	}
	if !v.Degraded {
		t.Fatalf("killed-shard alloc verdict: %+v, want degraded", v)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("fail-open took %v — the deadline/retry caps are not bounding", elapsed)
	}
	// Subsequent requests hit the tripped breaker / dead worker and stay
	// degraded without accumulating latency.
	for i := 0; i < 5; i++ {
		if v, err := s.Check("t", k0); err != nil || !v.Degraded {
			t.Fatalf("degraded check %d: %+v %v", i, v, err)
		}
	}
	if c := s.Counters(); c.Degraded == 0 {
		t.Fatal("degraded requests not counted")
	}
	// The healthy shard is unaffected.
	if v, err := s.Check("t", k1); err != nil || v.Degraded || !v.Known {
		t.Fatalf("healthy shard affected by the dead one: %+v %v", v, err)
	}
}

// TestServiceRetryWallTimeCap: a hung shard makes every attempt eat the
// full request deadline; the retry loop must give up on wall-time, not
// grind through MaxAttempts × deadline.
func TestServiceRetryWallTimeCap(t *testing.T) {
	cfg := testConfig(t, 1)
	cfg.HeartbeatInterval = time.Hour // keep failover out of the timing
	cfg.RequestTimeout = 30 * time.Millisecond
	cfg.Retry = RetryPolicy{MaxAttempts: 100, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, MaxElapsed: 80 * time.Millisecond}
	s := mustNew(t, cfg)
	if err := s.Disrupt(0, "hang"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	v, err := s.Alloc("t", 1, 64, 1)
	elapsed := time.Since(start)
	if err != nil || !v.Degraded {
		t.Fatalf("hung shard: %+v %v, want degraded fail-open", v, err)
	}
	// Wall cap 80ms + one in-flight attempt (≤30ms) + slack. Without the
	// cap this would be ≥ 100 × 30ms = 3s.
	if elapsed > time.Second {
		t.Fatalf("request took %v; the wall-time cap is not enforced", elapsed)
	}
	if c := s.Counters(); c.Timeouts == 0 {
		t.Fatal("deadline errors not counted")
	}
}

// TestServiceClosed: requests after Close fail with the typed ClosedError
// and a degraded verdict.
func TestServiceClosed(t *testing.T) {
	s := mustNew(t, testConfig(t, 1))
	s.Close()
	v, err := s.Alloc("t", 1, 64, 1)
	var closed *ClosedError
	if !errors.As(err, &closed) {
		t.Fatalf("post-close error = %v, want ClosedError", err)
	}
	if !v.Degraded {
		t.Fatalf("post-close verdict: %+v", v)
	}
	s.Close() // idempotent
}

// TestServiceLoadGenClean: an undisrupted load run must be violation-free:
// zero false UAFs, zero unexpected errors, zero unknown live keys, and —
// after an explicit drain — freed-key probes do detect.
func TestServiceLoadGenClean(t *testing.T) {
	cfg := testConfig(t, 2)
	s := mustNew(t, cfg)
	res := RunLoad(s, LoadConfig{Clients: 4, Requests: 500, Seed: 7, HeavyStores: 200})
	if v := res.Violations(); len(v) > 0 {
		t.Fatalf("clean load run produced violations: %v", v)
	}
	if res.Unknown > 0 {
		t.Fatalf("clean run lost %d live keys", res.Unknown)
	}
	if res.Degraded > 0 {
		t.Fatalf("clean run degraded %d requests", res.Degraded)
	}
	if res.Detected == 0 {
		t.Fatal("no UAF probe detected anything across the whole run")
	}
	if res.Issued != res.Confirmed+res.Degraded {
		t.Fatalf("accounting: issued=%d confirmed=%d degraded=%d", res.Issued, res.Confirmed, res.Degraded)
	}
	snap, err := s.AggregateStats()
	if err != nil {
		t.Fatalf("aggregate stats: %v", err)
	}
	if snap.HashTables == 0 || snap.Spills == 0 {
		t.Fatalf("heavy keys exercised neither hash mode (%d) nor the cold tier (%d)", snap.HashTables, snap.Spills)
	}
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("service violations: %v", v)
	}
}

// TestServiceMetricsGauges: the service registers its gauges and they
// reflect traffic.
func TestServiceMetricsGauges(t *testing.T) {
	cfg := testConfig(t, 2)
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	s := mustNew(t, cfg)
	if _, err := s.Alloc("t", 1, 64, 1); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Gauges["service.requests"] == 0 {
		t.Fatalf("service.requests gauge missing or zero: %v", snap.Gauges)
	}
	for _, name := range []string{"service.degraded_requests", "service.failovers", "service.shard0.breaker_state", "service.shard0.heartbeat_age_ms", "service.shard1.failovers"} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Fatalf("gauge %s not registered (have %v)", name, snap.Gauges)
		}
	}
}
