package service

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's coarse position.
type BreakerState int32

const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are rejected (the caller fails open into
	// degraded mode) until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: exactly one probe request is in flight; its result
	// decides between Closed and another Open period.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a per-shard circuit breaker. Closed trips to Open after
// Threshold consecutive failures; Open admits nothing until Cooldown has
// elapsed, then moves to HalfOpen and admits exactly one probe; the
// probe's success closes the breaker, its failure re-opens it.
//
// The half-open probe can race a concurrent trip: while the probe is in
// flight, another caller (a heartbeat, a queued request) may record a
// failure or force the breaker open. Probes are therefore issued with a
// generation token, and every trip invalidates outstanding tokens — a
// stale probe's success must NOT close a breaker that tripped after the
// probe was admitted.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	failures  int // consecutive failures while closed
	threshold int // failures that trip Closed → Open
	cooldown  time.Duration
	openedAt  time.Time
	probeGen  uint64 // current probe generation; trips invalidate it
	probeOut  bool   // a probe with token probeGen is in flight
	trips     uint64
	now       func() time.Time // injectable clock for tests
}

// NewBreaker creates a closed breaker. threshold <= 0 defaults to 5
// consecutive failures; cooldown <= 0 defaults to 50ms.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 50 * time.Millisecond
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may proceed. probe is nonzero when the
// admitted request is the half-open probe; pass it to RecordProbe with the
// outcome. Ordinary admitted requests (probe == 0) report through Record.
func (b *Breaker) Allow() (ok bool, probe uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, 0
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false, 0
		}
		b.state = BreakerHalfOpen
		b.probeGen++
		b.probeOut = true
		return true, b.probeGen
	case BreakerHalfOpen:
		if b.probeOut {
			return false, 0
		}
		b.probeGen++
		b.probeOut = true
		return true, b.probeGen
	}
	return false, 0
}

// Record reports the outcome of an ordinary (non-probe) operation against
// the shard — a routed request or a supervisor heartbeat. While half-open,
// a failure is the "concurrent trip" case: the breaker re-opens and the
// in-flight probe's token is invalidated, so its later success cannot
// close the breaker.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if success {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	case BreakerHalfOpen:
		if !success {
			b.trip()
		}
		// A non-probe success while half-open is not evidence enough to
		// close: only the designated probe closes the breaker.
	case BreakerOpen:
		// Stragglers from before the trip carry no new information.
	}
}

// RecordProbe reports the half-open probe's outcome. A stale token (the
// breaker tripped, was forced open, or was reset after the probe was
// admitted) is ignored: the trip already decided the state.
func (b *Breaker) RecordProbe(token uint64, success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if token == 0 || token != b.probeGen || !b.probeOut {
		return
	}
	b.probeOut = false
	if b.state != BreakerHalfOpen {
		return
	}
	if success {
		b.state = BreakerClosed
		b.failures = 0
		return
	}
	b.trip()
}

// ForceOpen trips the breaker unconditionally — the supervisor calls this
// at the start of a failover so no request races the rebuild.
func (b *Breaker) ForceOpen() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trip()
}

// Reset closes the breaker — the supervisor calls this once a rebuilt
// worker is serving. Outstanding probe tokens are invalidated.
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.probeGen++
	b.probeOut = false
}

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns the cumulative Closed/HalfOpen → Open transition count.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// trip moves to Open and invalidates any in-flight probe. Callers hold mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.probeGen++
	b.probeOut = false
	b.trips++
}
