package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dangsan/internal/service/transport"
)

// wireClientConns is the per-endpoint connection pool size: enough that
// concurrent client streams and the supervisor's heartbeat don't all
// serialize behind one in-flight exchange, small enough to stay
// negligible per worker.
const wireClientConns = 4

// readyTimeout bounds the spawn handshake: a worker that cannot print
// READY within this is broken, not slow.
const readyTimeout = 10 * time.Second

// wireEndpoint reaches a worker that is its own OS process, over the wire
// codec in service/transport. It owns the process handle (spawn, SIGTERM,
// SIGKILL, reap) and the per-incarnation cold directory the worker spills
// into — the worker never unlinks its spill file, so a SIGKILLed worker's
// cold tier survives for failover to read back.
type wireEndpoint struct {
	shard       int
	incarnation int
	network     string
	addr        string

	cmd     *exec.Cmd
	clients [wireClientConns]*transport.Client
	next    atomic.Uint64

	coldDir string

	done     chan struct{}
	exitCode atomic.Int64

	termOnce  sync.Once
	killOnce  sync.Once
	closeOnce sync.Once

	replayTimeout time.Duration
}

// replayBudget sizes the per-op deadline for failover replay and other
// coordinator-internal exchanges: generous relative to the request
// timeout, floored so a test-shrunk timeout cannot starve a rebuild.
func replayBudget(reqTimeout time.Duration) time.Duration {
	d := 20 * reqTimeout
	if d < 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// spawnWireWorker launches one worker process and completes the READY
// handshake. The endpoint serves from the moment this returns.
func spawnWireWorker(cfg Config, network string, shard, incarn int, workDir string) (endpoint, error) {
	coldDir := filepath.Join(workDir, fmt.Sprintf("cold-s%d-i%d", shard, incarn))
	if err := os.MkdirAll(coldDir, 0o755); err != nil {
		return nil, fmt.Errorf("service: cold dir: %w", err)
	}
	var addr string
	switch network {
	case "unix":
		// Short name: unix socket paths have a ~108-byte limit and workDir
		// may be deep.
		addr = filepath.Join(workDir, fmt.Sprintf("s%d-i%d.sock", shard, incarn))
		_ = os.Remove(addr)
	case "tcp":
		addr = "127.0.0.1:0"
	default:
		return nil, fmt.Errorf("service: unknown wire network %q", network)
	}
	spec := WorkerSpec{
		Shard:            shard,
		Incarnation:      incarn,
		Network:          network,
		Addr:             addr,
		HeapBytes:        cfg.HeapBytes,
		Audit:            cfg.Audit,
		MaxMetadataBytes: cfg.MaxMetadataBytes,
		QuarantineBytes:  cfg.QuarantineBytes,
		QuarantineEpoch:  cfg.QuarantineEpoch,
		ColdSpillBytes:   cfg.ColdSpillBytes,
		ColdDir:          coldDir,
		FaultRate:        cfg.FaultRate,
		FaultSeed:        cfg.FaultSeed,
		FaultBudget:      cfg.FaultBudget,
		SlowDelayNS:      int64(cfg.SlowDelay),
		FreedWindow:      cfg.FreedWindow,
		ScratchSlots:     cfg.ScratchSlots,
		QueueDepth:       cfg.QueueDepth,
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("service: worker spec: %w", err)
	}
	bin := cfg.WorkerCommand
	if bin == "" {
		// Re-exec: the embedding binary routes spawned copies of itself
		// into RunWorkerIfSpawned.
		bin, err = os.Executable()
		if err != nil {
			return nil, fmt.Errorf("service: resolve worker binary: %w", err)
		}
	}
	cmd := exec.Command(bin)
	cmd.Env = append(os.Environ(), WorkerSpecEnv+"="+string(specJSON))
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("service: worker stdout: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("service: spawn worker: %w", err)
	}
	ep := &wireEndpoint{
		shard:         shard,
		incarnation:   incarn,
		network:       network,
		addr:          addr,
		cmd:           cmd,
		coldDir:       coldDir,
		done:          make(chan struct{}),
		replayTimeout: replayBudget(cfg.RequestTimeout),
	}
	ep.exitCode.Store(-1)

	readyCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, workerReadyPrefix) {
				readyCh <- strings.TrimSpace(strings.TrimPrefix(line, workerReadyPrefix))
				break
			}
		}
		// Keep the pipe drained so a chatty worker can never block on a
		// full stdout, then reap.
		_, _ = io.Copy(io.Discard, stdout)
		code := 0
		if werr := cmd.Wait(); werr != nil {
			code = -1
			var ee *exec.ExitError
			if errors.As(werr, &ee) {
				code = ee.ExitCode()
			}
		}
		ep.exitCode.Store(int64(code))
		close(ep.done)
	}()

	select {
	case got := <-readyCh:
		if network == "tcp" {
			ep.addr = got // the worker bound port 0; READY carries the real one
		}
	case <-ep.done:
		ep.cleanupFiles()
		return nil, &ShardDownError{Shard: shard, Reason: fmt.Sprintf("worker exited before READY (code %d)", ep.exitCode.Load())}
	case <-time.After(readyTimeout):
		ep.kill()
		ep.cleanupFiles()
		return nil, &ShardDownError{Shard: shard, Reason: "worker READY handshake timed out"}
	}
	for i := range ep.clients {
		ep.clients[i] = transport.NewClient(network, ep.addr, shard)
	}
	return ep, nil
}

// pick round-robins the connection pool.
func (ep *wireEndpoint) pick() *transport.Client {
	return ep.clients[ep.next.Add(1)%wireClientConns]
}

// send maps one request onto one wire exchange. A local timer guards the
// strict never-block-past-timeout contract: exchanges on one pooled
// connection serialize, so a request queued behind a hung one must still
// surface its own DeadlineError on time — the abandoned exchange finishes
// against its socket deadline in the background and is discarded (the
// response-ID echo makes a late reply impossible to misattribute).
func (ep *wireEndpoint) send(req request, timeout time.Duration) response {
	select {
	case <-ep.done:
		return response{err: &ShardDownError{Shard: ep.shard, Reason: "worker process exited"}}
	default:
	}
	c := ep.pick()
	treq := transport.Request{Op: wireOp(req.kind), Key: req.key, Size: req.size, Stores: uint32(req.stores)}
	type result struct {
		resp transport.Response
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		r, err := c.Do(treq, timeout)
		ch <- result{resp: r, err: err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		if r.err != nil {
			return response{err: r.err}
		}
		return ep.decode(req.kind, r.resp)
	case <-timer.C:
		return response{err: &DeadlineError{Shard: ep.shard, Op: req.kind.String(), Timeout: timeout}}
	}
}

// decode maps a wire response back onto the coordinator's response struct,
// inflating the stats blob for stats ops.
func (ep *wireEndpoint) decode(kind opKind, tr transport.Response) response {
	resp := response{
		verdict: Verdict{Known: tr.Known, Freed: tr.Freed, UAF: tr.UAF, Degraded: tr.Degraded},
		err:     tr.Err,
	}
	if kind == opStats && tr.Err == nil {
		ws, err := transport.DecodeStats(tr.StatsJSON)
		if err != nil {
			resp.err = &ShardDownError{Shard: ep.shard, Reason: "bad stats payload: " + err.Error()}
			return resp
		}
		resp.stats, resp.cold, resp.audit = ws.Stats, ws.Cold, ws.Audit
	}
	return resp
}

// replay during failover is an ordinary wire exchange with a rebuild-sized
// budget; the rebuilding flag keeps client traffic away, so the remote
// queue is empty and each op is one clean round trip.
func (ep *wireEndpoint) replay(req request) response {
	return ep.send(req, ep.replayTimeout)
}

// start is a no-op: a process worker serves from the moment it is spawned.
func (ep *wireEndpoint) start() {}

// shutdown asks the worker process to exit gracefully.
func (ep *wireEndpoint) shutdown() {
	ep.termOnce.Do(func() { _ = ep.cmd.Process.Signal(syscall.SIGTERM) })
}

// kill is the real thing: SIGKILL, no cleanup on the worker side — which
// is exactly what failover recovery is tested against.
func (ep *wireEndpoint) kill() {
	ep.killOnce.Do(func() { _ = ep.cmd.Process.Kill() })
}

func (ep *wireEndpoint) doneCh() <-chan struct{} { return ep.done }

func (ep *wireEndpoint) didPanic() bool { return ep.exitCode.Load() == workerExitPanic }

func (ep *wireEndpoint) incarnationID() int { return ep.incarnation }

// coldPath globs the per-incarnation cold dir for the worker's spill
// file. Normally at most one exists (compaction unlinks the old file); a
// process killed mid-compaction can leave two, in which case the newest
// wins — ReadSegments recovers its intact prefix either way.
func (ep *wireEndpoint) coldPath() string {
	matches, err := filepath.Glob(filepath.Join(ep.coldDir, "dangsan-coldlog-*.seg"))
	if err != nil || len(matches) == 0 {
		return ""
	}
	if len(matches) > 1 {
		sort.Slice(matches, func(i, j int) bool {
			fi, ierr := os.Stat(matches[i])
			fj, jerr := os.Stat(matches[j])
			if ierr != nil || jerr != nil {
				return matches[i] < matches[j]
			}
			return fi.ModTime().Before(fj.ModTime())
		})
	}
	return matches[len(matches)-1]
}

// disrupt injects a failure mode. sigkill is delivered as a real signal;
// network faults are armed locally on every pooled connection (one-shot
// each, so the next few exchanges hit a partition/trickle/garbage wire);
// the queue-observed modes travel as an OpDisrupt exchange, which the
// worker process applies outside its queue (so it lands even when hung).
func (ep *wireEndpoint) disrupt(m disruptMode) error {
	switch m {
	case disruptSigKill:
		ep.kill()
		return nil
	case disruptNetPartition, disruptNetTrickle, disruptNetGarbage:
		f := transport.NetPartition
		switch m {
		case disruptNetTrickle:
			f = transport.NetTrickle
		case disruptNetGarbage:
			f = transport.NetGarbage
		}
		for _, c := range ep.clients {
			c.InjectNetFault(f)
		}
		return nil
	}
	code, ok := wireDisruptCode(m)
	if !ok {
		return fmt.Errorf("service: disruption %d has no wire form", m)
	}
	resp, err := ep.pick().Do(transport.Request{Op: transport.OpDisrupt, Mode: code}, ep.replayTimeout)
	if err != nil {
		return err
	}
	return resp.Err
}

// close tears the endpoint down: the process if it is somehow still
// alive, the client pool, the socket file, and the per-incarnation cold
// dir. Failover calls it only after recovery has read the cold tier, so
// removing the dir cannot lose data the rebuild wanted.
func (ep *wireEndpoint) close() {
	ep.closeOnce.Do(func() {
		select {
		case <-ep.done:
		default:
			ep.kill()
			waitClosed(ep.done, 2*time.Second)
		}
		for _, c := range ep.clients {
			if c != nil {
				c.Close()
			}
		}
		ep.cleanupFiles()
	})
}

func (ep *wireEndpoint) cleanupFiles() {
	if ep.network == "unix" {
		_ = os.Remove(ep.addr)
	}
	_ = os.RemoveAll(ep.coldDir)
}
