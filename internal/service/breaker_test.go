package service

import (
	"sync"
	"testing"
	"time"
)

// fakeClock lets breaker tests step time explicitly.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	b := NewBreaker(threshold, cooldown)
	clk := &fakeClock{t: time.Unix(0, 0)}
	b.now = clk.now
	return b, clk
}

func TestBreakerClosedTripsAfterConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.Record(false)
	}
	// A success resets the consecutive counter: two more failures must not
	// trip a threshold-3 breaker.
	b.Record(true)
	b.Record(false)
	b.Record(false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("non-consecutive failures tripped the breaker: %v", got)
	}
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("three consecutive failures did not trip: %v", got)
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
}

func TestBreakerOpenRejectsUntilCooldownThenProbes(t *testing.T) {
	b, clk := newTestBreaker(1, 100*time.Millisecond)
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	clk.advance(99 * time.Millisecond)
	if ok, _ := b.Allow(); ok {
		t.Fatal("open breaker admitted a request 1ms before cooldown")
	}
	clk.advance(2 * time.Millisecond)
	ok, probe := b.Allow()
	if !ok || probe == 0 {
		t.Fatalf("cooldown elapsed: want a probe admission, got ok=%v probe=%d", ok, probe)
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	// Exactly one probe: a second caller is rejected while it is in flight.
	if ok, _ := b.Allow(); ok {
		t.Fatal("half-open breaker admitted a second request during the probe")
	}
	b.RecordProbe(probe, true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("successful probe did not close the breaker: %v", got)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, 50*time.Millisecond)
	b.Record(false)
	clk.advance(51 * time.Millisecond)
	_, probe := b.Allow()
	b.RecordProbe(probe, false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("failed probe did not reopen the breaker: %v", got)
	}
	// The new Open period restarts the cooldown from the probe failure.
	if ok, _ := b.Allow(); ok {
		t.Fatal("breaker admitted a request immediately after a failed probe")
	}
	clk.advance(51 * time.Millisecond)
	if ok, probe2 := b.Allow(); !ok || probe2 == 0 {
		t.Fatal("second cooldown did not admit a new probe")
	}
}

// TestBreakerProbeRacesConcurrentTrip is the satellite's regression case:
// while the half-open probe is in flight, a concurrent failure (a
// heartbeat, a queued request from before the trip) re-opens the breaker.
// The probe's later SUCCESS must not close it — the trip is newer
// information than the probe's admission.
func TestBreakerProbeRacesConcurrentTrip(t *testing.T) {
	b, clk := newTestBreaker(1, 50*time.Millisecond)
	b.Record(false)
	clk.advance(51 * time.Millisecond)
	ok, probe := b.Allow()
	if !ok || probe == 0 {
		t.Fatal("expected a probe admission")
	}
	// Concurrent trip while the probe is in flight.
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("concurrent failure did not re-open: %v", got)
	}
	trips := b.Trips()
	// The stale probe comes back successful — and must be ignored.
	b.RecordProbe(probe, true)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("stale probe success closed a tripped breaker: %v", got)
	}
	if b.Trips() != trips {
		t.Fatalf("stale probe changed trip count: %d -> %d", trips, b.Trips())
	}
	// Same for ForceOpen (the failover path).
	clk.advance(51 * time.Millisecond)
	_, probe2 := b.Allow()
	b.ForceOpen()
	b.RecordProbe(probe2, true)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("stale probe success closed a force-opened breaker: %v", got)
	}
	// And a fresh probe after the next cooldown still works.
	clk.advance(51 * time.Millisecond)
	ok, probe3 := b.Allow()
	if !ok || probe3 == 0 {
		t.Fatal("breaker did not recover a probe slot after stale-probe races")
	}
	b.RecordProbe(probe3, true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("fresh probe could not close the breaker: %v", got)
	}
}

func TestBreakerResetInvalidatesOutstandingProbe(t *testing.T) {
	b, clk := newTestBreaker(1, 10*time.Millisecond)
	b.Record(false)
	clk.advance(11 * time.Millisecond)
	_, probe := b.Allow()
	b.Reset()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("reset did not close: %v", got)
	}
	// The stale probe failing must not trip the freshly reset breaker.
	b.RecordProbe(probe, false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("stale probe failure tripped a reset breaker: %v", got)
	}
}

// TestBreakerConcurrentHammer drives Allow/Record/RecordProbe/ForceOpen
// from many goroutines under -race. The assertion is structural: no data
// race, no panic, at most one probe token outstanding at any instant, and
// the breaker still functions afterwards.
func TestBreakerConcurrentHammer(t *testing.T) {
	b := NewBreaker(3, time.Microsecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var rng jitterRNG
			rng.seed(uint64(g) + 1)
			for i := 0; i < 5000; i++ {
				ok, probe := b.Allow()
				switch {
				case probe != 0:
					b.RecordProbe(probe, rng.next()%2 == 0)
				case ok:
					b.Record(rng.next()%3 != 0)
				}
				if g == 0 && i%1000 == 999 {
					b.ForceOpen()
				}
			}
		}(g)
	}
	wg.Wait()
	// Quiesce: force open, cool down, probe back to closed.
	b.ForceOpen()
	time.Sleep(time.Millisecond)
	ok, probe := b.Allow()
	if !ok || probe == 0 {
		t.Fatalf("post-hammer breaker did not admit a probe (ok=%v probe=%d state=%v)", ok, probe, b.State())
	}
	b.RecordProbe(probe, true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("post-hammer breaker stuck in %v", got)
	}
}
