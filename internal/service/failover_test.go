package service

import (
	"testing"
	"time"
)

// TestFailoverRebuildsStateAndAuditHolds is the tentpole's core invariant
// test: kill a worker whose state spans every tier (live keys, quarantined
// frees, cold spill segments on disk), let the supervisor fail over, and
// require that (a) the journal replay restored every confirmed key, (b)
// the cold segments were recovered through ReadSegments, (c) the audit
// identity held on the rebuilt worker, and (d) verdicts stay correct:
// live keys never fault, freed keys are detected after a drain.
func TestFailoverRebuildsStateAndAuditHolds(t *testing.T) {
	cfg := testConfig(t, 1)
	s := mustNew(t, cfg)

	// Heavy keys force hash mode and cold spills (600 stores ≫ the
	// 128-entry hash threshold and the 1 KiB spill threshold).
	for k := uint64(1); k <= 8; k++ {
		if v, err := s.Alloc("t", k, 512, 600); err != nil || v.Degraded {
			t.Fatalf("heavy alloc %d: %+v %v", k, v, err)
		}
	}
	for k := uint64(9); k <= 40; k++ {
		if v, err := s.Alloc("t", k, 128, 4); err != nil || v.Degraded {
			t.Fatalf("alloc %d: %+v %v", k, v, err)
		}
	}
	for k := uint64(30); k <= 40; k++ {
		if v, err := s.Free("t", k); err != nil || v.Degraded {
			t.Fatalf("free %d: %+v %v", k, v, err)
		}
	}
	snap, cold, _, err := s.DetectorStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Spills == 0 || cold.Segments == 0 {
		t.Fatalf("setup did not reach the cold tier: spills=%d segments=%d", snap.Spills, cold.Segments)
	}

	if err := s.Disrupt(0, "kill"); err != nil {
		t.Fatal(err)
	}
	// The next heartbeat crashes the worker; the supervisor rebuilds.
	waitUntil(t, 5*time.Second, "failover", func() bool {
		return s.Counters().Failovers >= 1
	})
	waitUntil(t, 5*time.Second, "shard reopen", func() bool {
		st := s.ShardStats()[0]
		return !st.Rebuilding && st.Breaker == BreakerClosed
	})

	c := s.Counters()
	if c.ReplayedObjects == 0 {
		t.Fatal("failover replayed nothing")
	}
	if c.RecoveredLocs == 0 {
		t.Fatal("failover recovered no cold-segment locations through ReadSegments")
	}
	if c.ReplayErrors != 0 {
		t.Fatalf("replay errors: %d", c.ReplayErrors)
	}
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("failover broke service invariants: %v", v)
	}

	// Live keys survived the restart — no false UAF, no lost records.
	for k := uint64(1); k <= 29; k++ {
		v, err := s.Check("t", k)
		if err != nil {
			t.Fatalf("live key %d faulted after failover (false UAF): %v", k, err)
		}
		if v.Degraded {
			t.Fatalf("live key %d degraded after reopen", k)
		}
		if !v.Known {
			t.Fatalf("live key %d unknown after failover — journal replay lost it", k)
		}
	}
	// Freed keys kept their freed status and, after a drain, their
	// invalidated anchors: the UAF is still detected post-restart.
	if err := s.Quiesce(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(30); k <= 40; k++ {
		v, err := s.Check("t", k)
		if err != nil {
			t.Fatalf("freed probe %d errored: %v", k, err)
		}
		if !v.Known || !v.Freed || !v.UAF {
			t.Fatalf("freed key %d after failover: %+v, want detected UAF", k, v)
		}
	}
	// The rebuilt worker's audit identity must hold right now, with the
	// replayed + post-failover traffic on the books.
	_, _, audit, err := s.DetectorStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(audit) > 0 {
		t.Fatalf("audit identity broken after failover: %v", audit)
	}
}

// TestFailoverOnHang: a hung worker (never replies) must be detected by
// heartbeat misses and replaced; the shard serves again afterwards.
func TestFailoverOnHang(t *testing.T) {
	cfg := testConfig(t, 1)
	s := mustNew(t, cfg)
	if v, err := s.Alloc("t", 1, 64, 2); err != nil || v.Degraded {
		t.Fatalf("alloc: %+v %v", v, err)
	}
	if err := s.Disrupt(0, "hang"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "hang failover", func() bool {
		return s.Counters().Failovers >= 1
	})
	waitUntil(t, 5*time.Second, "shard reopen", func() bool {
		st := s.ShardStats()[0]
		return !st.Rebuilding && st.Breaker == BreakerClosed
	})
	v, err := s.Check("t", 1)
	if err != nil || v.Degraded || !v.Known {
		t.Fatalf("post-hang-failover check: %+v %v", v, err)
	}
	if c := s.Counters(); c.HeartbeatMisses == 0 {
		t.Fatal("hang produced no heartbeat misses")
	}
	if c := s.Counters(); c.Abandoned != 0 {
		t.Fatalf("hung worker was abandoned (%d) — stop should release it", c.Abandoned)
	}
}

// TestFailoverOnSlowShardRecovers: slow mode pushes every request past the
// deadline; the breaker trips (degraded verdicts, not hangs) and once the
// supervisor's heartbeats also miss, failover restores a fast worker.
func TestFailoverOnSlowShardRecovers(t *testing.T) {
	cfg := testConfig(t, 1)
	s := mustNew(t, cfg)
	if v, err := s.Alloc("t", 1, 64, 2); err != nil || v.Degraded {
		t.Fatalf("alloc: %+v %v", v, err)
	}
	if err := s.Disrupt(0, "slow"); err != nil {
		t.Fatal(err)
	}
	// Requests against the slow shard fail open promptly.
	start := time.Now()
	v, err := s.Check("t", 1)
	if err != nil {
		t.Fatalf("slow-shard check errored: %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("slow shard held the caller past the retry wall cap")
	}
	_ = v // degraded or served-late are both acceptable; hanging is not
	waitUntil(t, 5*time.Second, "slow failover", func() bool {
		return s.Counters().Failovers >= 1
	})
	waitUntil(t, 5*time.Second, "shard reopen", func() bool {
		st := s.ShardStats()[0]
		return !st.Rebuilding && st.Breaker == BreakerClosed
	})
	v, err = s.Check("t", 1)
	if err != nil || v.Degraded || !v.Known {
		t.Fatalf("post-slow-failover check: %+v %v", v, err)
	}
}

// TestFailoverUnderLoad: failovers happening mid-traffic must never
// produce a false UAF or an untyped error — degraded verdicts and missed
// probes are the worst allowed outcomes.
func TestFailoverUnderLoad(t *testing.T) {
	cfg := testConfig(t, 2)
	s := mustNew(t, cfg)
	stop := make(chan struct{})
	resCh := make(chan LoadResult, 1)
	go func() {
		resCh <- RunLoad(s, LoadConfig{Clients: 4, Seed: 13, Stop: stop, HeavyStores: 200})
	}()
	for i := 0; i < 3; i++ {
		shard := i % 2
		if err := s.Disrupt(shard, "kill"); err != nil {
			t.Fatal(err)
		}
		before := s.ShardStats()[shard].Failovers
		waitUntil(t, 5*time.Second, "failover under load", func() bool {
			return s.ShardStats()[shard].Failovers > before
		})
	}
	close(stop)
	res := <-resCh
	if v := res.Violations(); len(v) > 0 {
		t.Fatalf("load violations during failovers: %v", v)
	}
	if res.Issued == 0 {
		t.Fatal("load generator issued nothing")
	}
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("service violations during failovers: %v", v)
	}
	if c := s.Counters(); c.Failovers < 3 {
		t.Fatalf("failovers = %d, want >= 3", c.Failovers)
	}
}
