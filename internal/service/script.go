package service

// Scripted, deterministic load. RunLoad's concurrent clients are the
// right tool for stressing the supervision envelope, but their
// interleaving is nondeterministic — useless for proving two transports
// behave identically. A script is the complement: one client, a fixed op
// sequence, every outcome recorded. Because each worker is
// single-threaded and every mutation arrives in script order, the entire
// verdict stream and the final per-shard detector state are functions of
// (script, config) alone — so running the same script over the channel,
// unix, and tcp transports must produce byte-identical outcome streams
// and snapshots. The transport-parity conformance suite is built on this.

// ScriptOp is one deterministic operation. Kind is one of "alloc",
// "free", "check", "quiesce".
type ScriptOp struct {
	Kind   string `json:"kind"`
	Tenant string `json:"tenant,omitempty"`
	Key    uint64 `json:"key,omitempty"`
	Size   uint64 `json:"size,omitempty"`
	Stores int    `json:"stores,omitempty"`
}

// ScriptOutcome is one op's observed result: the verdict and the typed
// error's text ("" on success).
type ScriptOutcome struct {
	Verdict Verdict `json:"verdict"`
	Err     string  `json:"err,omitempty"`
}

// BuildScript generates a deterministic alloc/free/check/quiesce mix from
// seed: a private xorshift stream (never the global RNG) so the same seed
// always yields the same ops. The mix includes heavy keys (hash-mode
// fan-out past the cold spill threshold), frees with later UAF probes,
// and periodic quiesces so quarantine invalidation runs mid-script.
func BuildScript(seed uint64, n int) []ScriptOp {
	rng := seed | 1
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	ops := make([]ScriptOp, 0, n)
	var nextKey uint64
	var live []uint64
	var freed []uint64
	for len(ops) < n {
		switch r := next() % 100; {
		case r < 45 || len(live) == 0:
			nextKey++
			size := 64 + next()%1984
			stores := 4 + int(next()%12)
			if nextKey%13 == 0 {
				stores = 300 // heavy: hash fallback + cold spill
			}
			live = append(live, nextKey)
			ops = append(ops, ScriptOp{Kind: "alloc", Tenant: "parity", Key: nextKey, Size: size, Stores: stores})
		case r < 62:
			i := int(next() % uint64(len(live)))
			k := live[i]
			live = append(live[:i], live[i+1:]...)
			freed = append(freed, k)
			ops = append(ops, ScriptOp{Kind: "free", Tenant: "parity", Key: k})
		case r < 85:
			i := int(next() % uint64(len(live)))
			ops = append(ops, ScriptOp{Kind: "check", Tenant: "parity", Key: live[i]})
		case r < 97 && len(freed) > 0:
			i := int(next() % uint64(len(freed)))
			ops = append(ops, ScriptOp{Kind: "check", Tenant: "parity", Key: freed[i]})
		default:
			ops = append(ops, ScriptOp{Kind: "quiesce"})
		}
	}
	return ops
}

// RunScript executes ops sequentially through the public API and returns
// the outcome stream, one entry per op, in order.
func (s *Service) RunScript(ops []ScriptOp) []ScriptOutcome {
	out := make([]ScriptOutcome, 0, len(ops))
	for _, op := range ops {
		var v Verdict
		var err error
		switch op.Kind {
		case "alloc":
			v, err = s.Alloc(op.Tenant, op.Key, op.Size, op.Stores)
		case "free":
			v, err = s.Free(op.Tenant, op.Key)
		case "check":
			v, err = s.Check(op.Tenant, op.Key)
		case "quiesce":
			err = s.Quiesce()
		}
		o := ScriptOutcome{Verdict: v}
		if err != nil {
			o.Err = err.Error()
		}
		out = append(out, o)
	}
	return out
}
