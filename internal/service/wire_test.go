package service

import (
	"reflect"
	"testing"
	"time"

	"dangsan/internal/pointerlog"
)

// wireConfig is testConfig with a wire transport armed. Timings stay
// test-scale; the worker binary is this test executable (TestMain routes
// spawned copies into RunWorkerIfSpawned).
func wireConfig(t *testing.T, shards int, transport string) Config {
	t.Helper()
	cfg := testConfig(t, shards)
	cfg.Transport = transport
	cfg.WorkDir = t.TempDir()
	// Wire RTTs are microseconds on loopback, but process scheduling under
	// a loaded test machine is not; pad the per-probe deadlines.
	cfg.HeartbeatInterval = 10 * time.Millisecond
	cfg.HeartbeatTimeout = 50 * time.Millisecond
	cfg.RequestTimeout = 100 * time.Millisecond
	cfg.Retry = RetryPolicy{MaxAttempts: 3, BaseDelay: 200 * time.Microsecond, MaxDelay: 2 * time.Millisecond, MaxElapsed: 500 * time.Millisecond}
	return cfg
}

// parityState is everything the conformance suite compares across
// transports: the full outcome stream plus each shard's final detector
// snapshot and audit verdicts.
type parityState struct {
	Outcomes []ScriptOutcome
	Snaps    []pointerlog.Snapshot
	Colds    []pointerlog.ColdStats
	Audits   [][]string
	Degraded uint64
}

func runParityScript(t *testing.T, transport string, script []ScriptOp) parityState {
	t.Helper()
	cfg := testConfig(t, 2)
	// Generous timings: parity compares healthy-path determinism, and a
	// degraded verdict from a loaded CI machine would be a spurious diff.
	cfg.RequestTimeout = 2 * time.Second
	cfg.HeartbeatInterval = 10 * time.Millisecond
	cfg.HeartbeatTimeout = 500 * time.Millisecond
	cfg.Transport = transport
	if wireNetwork(transport) != "" {
		cfg.WorkDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%s): %v", transport, err)
	}
	defer s.Close()
	st := parityState{Outcomes: s.RunScript(script)}
	if err := s.Quiesce(); err != nil {
		t.Fatalf("quiesce(%s): %v", transport, err)
	}
	for i := 0; i < s.Shards(); i++ {
		snap, cold, audit, err := s.DetectorStats(i)
		if err != nil {
			t.Fatalf("stats(%s, shard %d): %v", transport, i, err)
		}
		// The spill file's path is host state, not detector state.
		cold.Path = ""
		st.Snaps = append(st.Snaps, snap)
		st.Colds = append(st.Colds, cold)
		st.Audits = append(st.Audits, audit)
	}
	st.Degraded = s.Counters().Degraded
	return st
}

// TestTransportParityConformance is the wire transport's conformance
// suite: the same deterministic script through the in-process channel
// transport, unix sockets, and loopback TCP must produce identical
// verdict streams, zero degraded requests, identical per-shard detector
// snapshots (the audit identity numbers included), and clean audits.
// Workers are single-threaded and mutations arrive in script order, so
// any divergence is a transport bug — a verdict or typed error that did
// not survive the wire.
func TestTransportParityConformance(t *testing.T) {
	script := BuildScript(42, 500)
	base := runParityScript(t, TransportChan, script)
	if base.Degraded != 0 {
		t.Fatalf("chan baseline degraded %d requests", base.Degraded)
	}
	for i, o := range base.Outcomes {
		if o.Err != "" {
			t.Fatalf("chan baseline op %d errored: %s", i, o.Err)
		}
	}
	for _, a := range base.Audits {
		if len(a) > 0 {
			t.Fatalf("chan baseline audit violations: %v", a)
		}
	}
	for _, transport := range []string{TransportUnix, TransportTCP} {
		t.Run(transport, func(t *testing.T) {
			got := runParityScript(t, transport, script)
			if got.Degraded != 0 {
				t.Fatalf("%s degraded %d requests", transport, got.Degraded)
			}
			for i := range base.Outcomes {
				if got.Outcomes[i] != base.Outcomes[i] {
					t.Fatalf("op %d diverged over %s: chan=%+v wire=%+v (op %+v)",
						i, transport, base.Outcomes[i], got.Outcomes[i], script[i])
				}
			}
			if !reflect.DeepEqual(got.Snaps, base.Snaps) {
				t.Fatalf("detector snapshots diverged over %s:\nchan: %+v\nwire: %+v", transport, base.Snaps, got.Snaps)
			}
			if !reflect.DeepEqual(got.Colds, base.Colds) {
				t.Fatalf("cold-tier stats diverged over %s:\nchan: %+v\nwire: %+v", transport, base.Colds, got.Colds)
			}
			for i, a := range got.Audits {
				if len(a) > 0 {
					t.Fatalf("%s shard %d audit violations: %v", transport, i, a)
				}
			}
		})
	}
}

// TestWireLifecycleBothNetworks is the wire smoke test: spawn real worker
// processes, run the basic alloc/check/free/quiesce/UAF cycle, verify the
// audit identity, and shut down cleanly (graceful SIGTERM path).
func TestWireLifecycleBothNetworks(t *testing.T) {
	for _, transport := range []string{TransportUnix, TransportTCP} {
		t.Run(transport, func(t *testing.T) {
			s := mustNew(t, wireConfig(t, 2, transport))
			for k := uint64(1); k <= 30; k++ {
				if v, err := s.Alloc("acme", k, 256, 4); err != nil || v.Degraded {
					t.Fatalf("alloc %d: v=%+v err=%v", k, v, err)
				}
			}
			for k := uint64(1); k <= 10; k++ {
				if v, err := s.Free("acme", k); err != nil || v.Degraded {
					t.Fatalf("free %d: v=%+v err=%v", k, v, err)
				}
			}
			if err := s.Quiesce(); err != nil {
				t.Fatal(err)
			}
			for k := uint64(1); k <= 10; k++ {
				v, err := s.Check("acme", k)
				if err != nil {
					t.Fatalf("freed probe %d errored: %v", k, err)
				}
				if !v.Known || !v.Freed || !v.UAF {
					t.Fatalf("freed key %d: %+v, want detected UAF", k, v)
				}
			}
			for k := uint64(11); k <= 30; k++ {
				v, err := s.Check("acme", k)
				if err != nil {
					t.Fatalf("live key %d faulted (false UAF): %v", k, err)
				}
				if !v.Known || v.Freed {
					t.Fatalf("live key %d: %+v", k, v)
				}
			}
			for i := 0; i < s.Shards(); i++ {
				if _, _, audit, err := s.DetectorStats(i); err != nil || len(audit) > 0 {
					t.Fatalf("shard %d audit: %v %v", i, audit, err)
				}
			}
		})
	}
}

// TestWireFailoverProcessSigkill is the tentpole's process-death
// invariant: SIGKILL a real worker process mid-state (live keys,
// quarantined frees, cold segments on disk), and require the supervisor
// to respawn a fresh process, recover the dead process's cold spill
// through ReadSegments, replay the confirmed-ops journal over the wire,
// and re-establish the audit identity on the rebuilt process.
func TestWireFailoverProcessSigkill(t *testing.T) {
	s := mustNew(t, wireConfig(t, 1, TransportUnix))

	for k := uint64(1); k <= 8; k++ {
		if v, err := s.Alloc("t", k, 512, 600); err != nil || v.Degraded {
			t.Fatalf("heavy alloc %d: %+v %v", k, v, err)
		}
	}
	for k := uint64(9); k <= 40; k++ {
		if v, err := s.Alloc("t", k, 128, 4); err != nil || v.Degraded {
			t.Fatalf("alloc %d: %+v %v", k, v, err)
		}
	}
	for k := uint64(30); k <= 40; k++ {
		if v, err := s.Free("t", k); err != nil || v.Degraded {
			t.Fatalf("free %d: %+v %v", k, v, err)
		}
	}
	snap, cold, _, err := s.DetectorStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Spills == 0 || cold.Segments == 0 {
		t.Fatalf("setup did not reach the cold tier: spills=%d segments=%d", snap.Spills, cold.Segments)
	}

	// The real thing: kill -9 the worker process. No warning, no cleanup —
	// whatever is not on disk is gone.
	if err := s.Disrupt(0, "sigkill"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "process failover", func() bool {
		return s.Counters().Failovers >= 1
	})
	waitUntil(t, 10*time.Second, "shard reopen", func() bool {
		st := s.ShardStats()[0]
		return !st.Rebuilding && st.Breaker == BreakerClosed
	})

	c := s.Counters()
	if c.ReplayedObjects == 0 {
		t.Fatal("failover replayed nothing onto the respawned process")
	}
	if c.RecoveredLocs == 0 {
		t.Fatal("failover recovered no cold segments from the killed process's spill file")
	}
	if c.ReplayErrors != 0 {
		t.Fatalf("replay errors: %d", c.ReplayErrors)
	}
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("process failover broke service invariants: %v", v)
	}

	for k := uint64(1); k <= 29; k++ {
		v, err := s.Check("t", k)
		if err != nil {
			t.Fatalf("live key %d faulted after respawn (false UAF): %v", k, err)
		}
		if v.Degraded || !v.Known {
			t.Fatalf("live key %d after respawn: %+v", k, v)
		}
	}
	if err := s.Quiesce(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(30); k <= 40; k++ {
		v, err := s.Check("t", k)
		if err != nil {
			t.Fatalf("freed probe %d errored: %v", k, err)
		}
		if !v.Known || !v.Freed || !v.UAF {
			t.Fatalf("freed key %d after respawn: %+v, want detected UAF", k, v)
		}
	}
	// The audit identity must hold on the RESPAWNED process, with the
	// replayed and post-failover traffic on its books.
	_, _, audit, err := s.DetectorStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(audit) > 0 {
		t.Fatalf("audit identity broken on respawned process: %v", audit)
	}
}

// TestCrashConsistencyKillAfterApply covers the window the journal's
// confirmed-ops discipline exists for: the worker process APPLIES a
// mutation and is killed before the reply, so the coordinator never
// confirms it. The respawned worker must match the journal (the phantom
// mutation absent), pass the audit identity, and a second failover
// (double replay) must be idempotent.
func TestCrashConsistencyKillAfterApply(t *testing.T) {
	cfg := wireConfig(t, 1, TransportUnix)
	// One attempt: a retry after the crash would re-apply the mutation and
	// confirm it, which is legitimate but would hide the window under test.
	cfg.Retry = RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, MaxElapsed: 50 * time.Millisecond}
	// A long heartbeat gap so our own request, not a ping, trips killafter.
	cfg.HeartbeatInterval = 50 * time.Millisecond
	s := mustNew(t, cfg)

	for k := uint64(1); k <= 20; k++ {
		if v, err := s.Alloc("t", k, 128, 4); err != nil || v.Degraded {
			t.Fatalf("alloc %d: %+v %v", k, v, err)
		}
	}
	for k := uint64(1); k <= 5; k++ {
		if v, err := s.Free("t", k); err != nil || v.Degraded {
			t.Fatalf("free %d: %+v %v", k, v, err)
		}
	}

	if err := s.Disrupt(0, "killafter"); err != nil {
		t.Fatal(err)
	}
	// This free is applied by the worker, which then dies WITHOUT
	// replying: it must surface as a degraded verdict (fail-open), never
	// an untyped error, and must NOT enter the journal. (If a heartbeat
	// ping races us into the killafter slot, the free is never applied at
	// all — the assertions below hold either way, which is the point:
	// observable state always matches the journal.)
	v, err := s.Free("t", 10)
	if err != nil {
		t.Fatalf("unconfirmed free surfaced an error: %v", err)
	}
	if !v.Degraded {
		t.Fatalf("unconfirmed free got a confirmed verdict: %+v", v)
	}

	waitUntil(t, 10*time.Second, "crash failover", func() bool {
		return s.Counters().Failovers >= 1
	})
	waitUntil(t, 10*time.Second, "shard reopen", func() bool {
		st := s.ShardStats()[0]
		return !st.Rebuilding && st.Breaker == BreakerClosed
	})

	verify := func(round string) {
		t.Helper()
		// Key 10's free was never confirmed: the journal says live, so the
		// rebuilt worker must too.
		v, err := s.Check("t", 10)
		if err != nil {
			t.Fatalf("%s: journal-live key faulted (false UAF): %v", round, err)
		}
		if !v.Known || v.Freed || v.Degraded {
			t.Fatalf("%s: journal-live key 10: %+v, want live", round, v)
		}
		// Confirmed frees stay freed.
		for k := uint64(1); k <= 5; k++ {
			v, err := s.Check("t", k)
			if err != nil {
				t.Fatalf("%s: freed probe %d errored: %v", round, k, err)
			}
			if !v.Known || !v.Freed {
				t.Fatalf("%s: confirmed-freed key %d: %+v", round, k, v)
			}
		}
		if c := s.Counters(); c.ReplayErrors != 0 {
			t.Fatalf("%s: replay errors: %d", round, c.ReplayErrors)
		}
		if v := s.Violations(); len(v) > 0 {
			t.Fatalf("%s: service violations: %v", round, v)
		}
		_, _, audit, err := s.DetectorStats(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(audit) > 0 {
			t.Fatalf("%s: audit identity broken: %v", round, audit)
		}
	}
	verify("first rebuild")

	// Double replay: kill the respawned process too. Replaying the same
	// journal a second time must reconstruct the same state — replay is
	// idempotent, not additive.
	if err := s.Disrupt(0, "sigkill"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "second failover", func() bool {
		return s.Counters().Failovers >= 2
	})
	waitUntil(t, 10*time.Second, "second reopen", func() bool {
		st := s.ShardStats()[0]
		return !st.Rebuilding && st.Breaker == BreakerClosed
	})
	verify("double replay")
}
