package service

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"dangsan/internal/service/transport"
)

// WorkerSpecEnv is the environment variable carrying a spawned worker
// process's JSON WorkerSpec. The coordinator re-execs the current binary
// by default, so every binary that embeds the service must call
// RunWorkerIfSpawned at the top of main (and TestMain).
const WorkerSpecEnv = "DANGSAN_WORKER_SPEC"

// workerReadyPrefix starts the handshake line a worker prints on stdout
// once it is listening; the rest of the line is the dial address (which
// the coordinator cannot predict for tcp port 0).
const workerReadyPrefix = "DANGSAN-WORKER READY "

// Worker process exit codes. Graceful (SIGTERM-initiated) exit is 0.
const (
	workerExitPanic = 3   // the worker goroutine died panicking
	workerExitKill  = 137 // kill/killafter disruption (mirrors SIGKILL's shell code)
)

// WorkerSpec is everything a worker process needs to build its shard:
// detector sizing, the fault plane, and where to listen.
type WorkerSpec struct {
	Shard       int    `json:"shard"`
	Incarnation int    `json:"incarnation"`
	Network     string `json:"network"` // "unix" or "tcp"
	Addr        string `json:"addr"`    // socket path, or host:0 for tcp

	HeapBytes        uint64  `json:"heap_bytes,omitempty"`
	Audit            bool    `json:"audit,omitempty"`
	MaxMetadataBytes uint64  `json:"max_metadata_bytes,omitempty"`
	QuarantineBytes  uint64  `json:"quarantine_bytes,omitempty"`
	QuarantineEpoch  int     `json:"quarantine_epoch,omitempty"`
	ColdSpillBytes   uint64  `json:"cold_spill_bytes,omitempty"`
	ColdDir          string  `json:"cold_dir,omitempty"`
	FaultRate        float64 `json:"fault_rate,omitempty"`
	FaultSeed        int64   `json:"fault_seed,omitempty"`
	FaultBudget      int64   `json:"fault_budget,omitempty"`
	SlowDelayNS      int64   `json:"slow_delay_ns,omitempty"`
	FreedWindow      int     `json:"freed_window,omitempty"`
	ScratchSlots     int     `json:"scratch_slots,omitempty"`
	QueueDepth       int     `json:"queue_depth,omitempty"`
}

// config converts the spec into the worker-relevant Config subset.
func (sp WorkerSpec) config() Config {
	return Config{
		HeapBytes:        sp.HeapBytes,
		Audit:            sp.Audit,
		MaxMetadataBytes: sp.MaxMetadataBytes,
		QuarantineBytes:  sp.QuarantineBytes,
		QuarantineEpoch:  sp.QuarantineEpoch,
		ColdSpillBytes:   sp.ColdSpillBytes,
		ColdDir:          sp.ColdDir,
		FaultRate:        sp.FaultRate,
		FaultSeed:        sp.FaultSeed,
		FaultBudget:      sp.FaultBudget,
		SlowDelay:        time.Duration(sp.SlowDelayNS),
		FreedWindow:      sp.FreedWindow,
		ScratchSlots:     sp.ScratchSlots,
		QueueDepth:       sp.QueueDepth,
	}.normalized()
}

// RunWorkerIfSpawned turns this process into a shard worker when the
// coordinator spawned it (WorkerSpecEnv is set) and never returns in that
// case; otherwise it returns immediately. Call it at the top of main in
// every binary the service may re-exec as a worker.
func RunWorkerIfSpawned() {
	spec := os.Getenv(WorkerSpecEnv)
	if spec == "" {
		return
	}
	os.Exit(RunWorkerProcess(spec))
}

// RunWorkerProcess runs this process as one shard worker until the worker
// dies or the coordinator signals it, returning the process exit code.
//
// The worker process NEVER unlinks its spill file — not even on graceful
// shutdown. Failover's whole point is reading a dead worker's cold tier
// back from disk; the coordinator owns the per-incarnation cold directory
// and removes it when it closes the endpoint.
func RunWorkerProcess(specJSON string) int {
	var spec WorkerSpec
	if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
		fmt.Fprintf(os.Stderr, "dangsan-worker: bad spec: %v\n", err)
		return 2
	}
	w, err := newWorker(spec.Shard, spec.Incarnation, spec.config())
	if err != nil {
		fmt.Fprintf(os.Stderr, "dangsan-worker: shard %d: %v\n", spec.Shard, err)
		return 2
	}
	w.start()

	l, err := net.Listen(spec.Network, spec.Addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dangsan-worker: listen %s %s: %v\n", spec.Network, spec.Addr, err)
		return 2
	}
	srv := transport.NewServer(l, workerHandler(w))
	go srv.Serve()

	// Handshake: the coordinator reads this line to learn the bound
	// address before it dials.
	fmt.Printf("%s%s\n", workerReadyPrefix, l.Addr().String())

	var terming atomic.Bool
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	go func() {
		<-sigCh
		terming.Store(true)
		w.shutdown()
	}()

	<-w.done
	srv.Close()
	switch {
	case terming.Load():
		return 0
	case w.panicked.Load():
		return workerExitPanic
	default:
		// The worker loop exited without being asked: a kill/killafter
		// disruption (or sigkill raced a request). Die with the crash code
		// so the coordinator's supervisor sees a dead process, not a
		// graceful exit.
		return workerExitKill
	}
}

// workerHandler adapts the wire vocabulary onto the worker queue. The
// server runs it from per-connection goroutines, but requests still funnel
// through the single worker goroutine, so the single-threaded audit
// discipline is untouched. Deadlines are client-side (mapped onto socket
// deadlines), so the queue send uses an effectively-infinite budget — a
// hung worker means an unanswered frame, which is exactly the contract.
func workerHandler(w *worker) transport.Handler {
	const serverSendBudget = time.Hour
	return func(treq transport.Request) transport.Response {
		if treq.Op == transport.OpDisrupt {
			// Mode changes bypass the queue exactly like the in-process
			// Disrupt path: a bare atomic store that lands even when the
			// worker is hung.
			if treq.Mode == transport.DisruptNone {
				w.mode.Store(int32(disruptNone))
			} else {
				w.mode.Store(int32(wireDisruptMode(treq.Mode)))
			}
			return transport.Response{}
		}
		kind, ok := serviceOp(treq.Op)
		if !ok {
			return transport.Response{Err: &transport.OpaqueError{Msg: fmt.Sprintf("unserviceable op %d", treq.Op)}}
		}
		resp := w.send(request{kind: kind, key: treq.Key, size: treq.Size, stores: int(treq.Stores)}, serverSendBudget)
		out := transport.Response{
			Known:    resp.verdict.Known,
			Freed:    resp.verdict.Freed,
			UAF:      resp.verdict.UAF,
			Degraded: resp.verdict.Degraded,
			Err:      resp.err,
		}
		if kind == opStats && resp.err == nil {
			blob, err := transport.EncodeStats(transport.WireStats{Stats: resp.stats, Cold: resp.cold, Audit: resp.audit})
			if err != nil {
				out.Err = &transport.OpaqueError{Msg: "stats encode: " + err.Error()}
			} else {
				out.StatsJSON = blob
			}
		}
		return out
	}
}

// serviceOp maps a wire op onto the worker queue vocabulary.
func serviceOp(op transport.Op) (opKind, bool) {
	switch op {
	case transport.OpAlloc:
		return opAlloc, true
	case transport.OpFree:
		return opFree, true
	case transport.OpCheck:
		return opCheck, true
	case transport.OpPing:
		return opPing, true
	case transport.OpStats:
		return opStats, true
	case transport.OpQuiesce:
		return opQuiesce, true
	}
	return 0, false
}

// wireOp is serviceOp's inverse, used by the coordinator side.
func wireOp(k opKind) transport.Op {
	switch k {
	case opAlloc:
		return transport.OpAlloc
	case opFree:
		return transport.OpFree
	case opCheck:
		return transport.OpCheck
	case opPing:
		return transport.OpPing
	case opStats:
		return transport.OpStats
	case opQuiesce:
		return transport.OpQuiesce
	}
	return 0
}

// wireDisruptMode maps a wire disruption code onto the worker mode.
func wireDisruptMode(code uint8) disruptMode {
	switch code {
	case transport.DisruptSlow:
		return disruptSlow
	case transport.DisruptHang:
		return disruptHang
	case transport.DisruptKill:
		return disruptKill
	case transport.DisruptKillAfter:
		return disruptKillAfter
	}
	return disruptNone
}

// wireDisruptCode maps a worker mode onto its wire code. disruptSigKill
// has no wire form — it is a real signal, delivered by the coordinator to
// the process, not a request.
func wireDisruptCode(m disruptMode) (uint8, bool) {
	switch m {
	case disruptNone:
		return transport.DisruptNone, true
	case disruptSlow:
		return transport.DisruptSlow, true
	case disruptHang:
		return transport.DisruptHang, true
	case disruptKill:
		return transport.DisruptKill, true
	case disruptKillAfter:
		return transport.DisruptKillAfter, true
	}
	return 0, false
}
