package service

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dangsan/internal/obs"
	"dangsan/internal/pointerlog"
	"dangsan/internal/tcmalloc"
	"dangsan/internal/vmem"
)

// Config sizes the service and its supervision envelope. The zero value is
// usable: normalized() fills production-ish defaults; tests shrink the
// timings so failures surface in milliseconds.
type Config struct {
	// Shards is the worker count; keys are routed by hash. 0 defaults
	// to 4.
	Shards int

	// Per-worker detector stack — see the same-named pointerlog/proc
	// options. Audit arms the exact cross-tier accounting identity
	// (workers are single-threaded, so it holds to the byte).
	HeapBytes        uint64
	Audit            bool
	MaxMetadataBytes uint64
	QuarantineBytes  uint64
	QuarantineEpoch  int
	ColdSpillBytes   uint64
	ColdDir          string

	// FaultRate/FaultSeed/FaultBudget arm a per-worker fault-injection
	// plane (distinct deterministic stream per shard and incarnation).
	FaultRate   float64
	FaultSeed   int64
	FaultBudget int64

	// Seed drives retry jitter and any other coordinator-side randomness.
	Seed uint64

	// RequestTimeout is the per-request deadline covering enqueue + reply.
	// 0 defaults to 20ms.
	RequestTimeout time.Duration
	// Retry bounds the transient-error retry loop (attempts AND wall-time).
	Retry RetryPolicy
	// HeartbeatInterval is the supervisor's probe period (0: 5ms);
	// HeartbeatTimeout the per-probe deadline (0: 10ms); HeartbeatMisses
	// the consecutive-miss threshold that triggers failover (0: 3).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	HeartbeatMisses   int
	// BreakerThreshold / BreakerCooldown configure each shard's circuit
	// breaker (0: 5 failures / 25ms).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// FailoverDrain bounds how long failover waits for the old worker
	// goroutine to exit before abandoning it (0: 500ms). Workers unblock
	// on stop even when hung, so abandonment is the exception.
	FailoverDrain time.Duration
	// SlowDelay is the injected per-request latency in shard-slow
	// disruption mode (0: 25ms — comfortably past RequestTimeout).
	SlowDelay time.Duration
	// FreedWindow is how many recently-freed keys each shard (and the
	// journal) remembers for UAF probes and failover replay (0: 512).
	FreedWindow int
	// ScratchSlots sizes each worker's scattered-pointer-store arena
	// (0: 2048 slots).
	ScratchSlots int
	// QueueDepth is each worker's request queue capacity (0: 64).
	QueueDepth int

	// Transport selects how shard workers are reached: TransportChan ("",
	// the default) keeps workers as goroutines in this process reached
	// over channels; TransportUnix and TransportTCP run each worker as its
	// own OS process reached over the wire codec in service/transport. The
	// supervision envelope — heartbeats, breakers, retry, failover with
	// journal replay — is identical either way.
	Transport string
	// WorkerCommand is the binary spawned per wire worker. Empty: the
	// current executable is re-exec'd, which requires main (or TestMain)
	// to call RunWorkerIfSpawned first.
	WorkerCommand string
	// WorkDir hosts wire-transport sockets and per-incarnation cold-spill
	// dirs. Empty: a service-owned temp dir, removed on Close.
	WorkDir string

	// Metrics, when non-nil, receives the service gauges
	// (service.* / service.shard<i>.*).
	Metrics *obs.Registry
}

func (c Config) normalized() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 20 * time.Millisecond
	}
	c.Retry = c.Retry.normalized()
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 5 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 10 * time.Millisecond
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = 3
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 25 * time.Millisecond
	}
	if c.FailoverDrain <= 0 {
		c.FailoverDrain = 500 * time.Millisecond
	}
	if c.SlowDelay <= 0 {
		c.SlowDelay = 25 * time.Millisecond
	}
	if c.FreedWindow <= 0 {
		c.FreedWindow = 512
	}
	if c.ScratchSlots <= 0 {
		c.ScratchSlots = 2048
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.QuarantineBytes > 0 && c.QuarantineEpoch <= 0 {
		c.QuarantineEpoch = 16
	}
	if c.Transport == "" {
		c.Transport = TransportChan
	}
	return c
}

// shardState is the coordinator's per-shard bundle: the current worker
// endpoint (swapped atomically at failover), its breaker, the replay
// journal, and supervision bookkeeping.
type shardState struct {
	idx        int
	ep         atomic.Pointer[epBox]
	breaker    *Breaker
	journal    *journal
	rebuilding atomic.Bool
	failMu     sync.Mutex // serializes failovers for this shard
	lastBeat   atomic.Int64
	failovers  atomic.Uint64
	incarn     atomic.Int64
}

// Service is the coordinator: it owns the shards, their supervisors, and
// the fail-open request path.
type Service struct {
	cfg    Config
	shards []*shardState
	rng    jitterRNG

	// spawn builds shard endpoints for the configured transport; workDir
	// hosts wire sockets and cold dirs (service-owned when ownWorkDir).
	spawn      func(shard, incarn int) (endpoint, error)
	workDir    string
	ownWorkDir bool

	requests        atomic.Uint64
	degraded        atomic.Uint64
	retries         atomic.Uint64
	timeouts        atomic.Uint64
	failovers       atomic.Uint64
	heartbeatMisses atomic.Uint64
	workerPanics    atomic.Uint64
	abandoned       atomic.Uint64
	recoveredLocs   atomic.Uint64
	replayedObjects atomic.Uint64
	replayErrors    atomic.Uint64

	recoveryMu sync.Mutex
	recoveries []time.Duration

	violationMu sync.Mutex
	violations  []string

	supStop chan struct{}
	supWG   sync.WaitGroup
	closed  atomic.Bool
}

// New builds the service, starts every shard worker (spawning a process
// per shard under the wire transports) and its supervisor, and wires the
// service gauges into cfg.Metrics.
func New(cfg Config) (*Service, error) {
	cfg = cfg.normalized()
	if !validTransport(cfg.Transport) {
		return nil, fmt.Errorf("service: unknown transport %q", cfg.Transport)
	}
	s := &Service{cfg: cfg, supStop: make(chan struct{})}
	s.rng.seed(cfg.Seed ^ 0x5eed5eed5eed5eed)
	if network := wireNetwork(cfg.Transport); network != "" {
		s.workDir = cfg.WorkDir
		if s.workDir == "" {
			dir, err := os.MkdirTemp("", "dangsan-wire-*")
			if err != nil {
				return nil, fmt.Errorf("service: work dir: %w", err)
			}
			s.workDir = dir
			s.ownWorkDir = true
		}
		s.spawn = func(shard, incarn int) (endpoint, error) {
			return spawnWireWorker(cfg, network, shard, incarn, s.workDir)
		}
	} else {
		s.spawn = func(shard, incarn int) (endpoint, error) {
			w, err := newWorker(shard, incarn, cfg)
			if err != nil {
				return nil, err
			}
			return w, nil
		}
	}
	now := time.Now().UnixNano()
	for i := 0; i < cfg.Shards; i++ {
		ep, err := s.spawn(i, 0)
		if err != nil {
			for _, sh := range s.shards {
				old := sh.ep.Load().ep
				old.shutdown()
				if !waitClosed(old.doneCh(), cfg.FailoverDrain) {
					old.kill()
					waitClosed(old.doneCh(), cfg.FailoverDrain)
				}
				old.close()
			}
			if s.ownWorkDir {
				os.RemoveAll(s.workDir)
			}
			return nil, fmt.Errorf("service: shard %d: %w", i, err)
		}
		sh := &shardState{
			idx:     i,
			breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
			journal: newJournal(cfg.FreedWindow),
		}
		sh.lastBeat.Store(now)
		sh.ep.Store(&epBox{ep: ep})
		ep.start()
		s.shards = append(s.shards, sh)
	}
	for _, sh := range s.shards {
		s.supWG.Add(1)
		go s.supervise(sh)
	}
	s.registerMetrics()
	return s, nil
}

// Shards returns the shard count.
func (s *Service) Shards() int { return len(s.shards) }

// Transport returns the armed transport name (TransportChan/Unix/TCP).
func (s *Service) Transport() string { return s.cfg.Transport }

// keyFor folds (tenant, key) into the routing key: FNV-1a over the tenant
// mixed with the caller key. Routing and worker-side state both use it.
func keyFor(tenant string, key uint64) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(tenant))
	g := h.Sum64()
	g ^= key + 0x9e3779b97f4a7c15 + (g << 6) + (g >> 2)
	return g
}

// ShardOf exposes the routing decision (the load generator uses it to
// build shard-targeted traffic).
func (s *Service) ShardOf(tenant string, key uint64) int {
	return int(keyFor(tenant, key) % uint64(len(s.shards)))
}

// Alloc registers an object of `size` bytes under (tenant, key) with
// `stores` scattered pointer stores. Idempotent for live keys.
func (s *Service) Alloc(tenant string, key, size uint64, stores int) (Verdict, error) {
	return s.do(request{kind: opAlloc, key: keyFor(tenant, key), size: size, stores: stores})
}

// Free frees the object under (tenant, key). Idempotent for absent/freed
// keys.
func (s *Service) Free(tenant string, key uint64) (Verdict, error) {
	return s.do(request{kind: opFree, key: keyFor(tenant, key)})
}

// Check dereferences through the key's anchor pointer. For freed keys,
// Verdict.UAF reports whether the detector caught the access; for live
// keys a fault is returned as the error (a false UAF — the invariant the
// chaos harness watches).
func (s *Service) Check(tenant string, key uint64) (Verdict, error) {
	return s.do(request{kind: opCheck, key: keyFor(tenant, key)})
}

// do is the supervised request path: breaker gate, per-request deadline,
// bounded retry with jittered backoff under a wall-time cap, and a
// degraded (fail-open) verdict when the shard cannot be reached — never a
// hang, never a made-up answer.
func (s *Service) do(req request) (Verdict, error) {
	if s.closed.Load() {
		return Verdict{Degraded: true}, &ClosedError{}
	}
	s.requests.Add(1)
	sh := s.shards[req.key%uint64(len(s.shards))]
	pol := s.cfg.Retry
	deadline := time.Now().Add(pol.MaxElapsed)
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if s.closed.Load() {
			break
		}
		ok, probe := sh.breaker.Allow()
		if !ok || sh.rebuilding.Load() {
			if probe != 0 {
				// Raced a rebuild between Allow and the load: count the
				// probe as failed so the breaker stays open.
				sh.breaker.RecordProbe(probe, false)
			}
			break
		}
		ep := sh.ep.Load().ep
		resp := ep.send(req, s.cfg.RequestTimeout)
		if resp.err == nil {
			if probe != 0 {
				sh.breaker.RecordProbe(probe, true)
			} else {
				sh.breaker.Record(true)
			}
			s.journalConfirmed(sh, req)
			return resp.verdict, nil
		}
		if probe != 0 {
			sh.breaker.RecordProbe(probe, false)
		} else {
			sh.breaker.Record(false)
		}
		var dl *DeadlineError
		if errors.As(resp.err, &dl) {
			s.timeouts.Add(1)
		}
		if !transient(resp.err) {
			// Non-transient: a live-key fault (false UAF — surfaced for
			// the harness) or resource exhaustion retries cannot fix.
			// Exhaustion falls open into degraded; faults surface.
			var fault *vmem.Fault
			if errors.As(resp.err, &fault) {
				return resp.verdict, resp.err
			}
			break
		}
		s.retries.Add(1)
		d := pol.delay(attempt, &s.rng)
		// The wall-time cap: stop retrying when the next sleep would
		// cross the deadline, not merely when attempts run out.
		if time.Now().Add(d).After(deadline) {
			break
		}
		time.Sleep(d)
	}
	s.degraded.Add(1)
	return Verdict{Degraded: true}, nil
}

// transient reports whether the coordinator should retry the error:
// transport failures (down/deadline) and memory pressure are worth another
// attempt; everything else is not.
func transient(err error) bool {
	var down *ShardDownError
	var dl *DeadlineError
	var oom *tcmalloc.OutOfMemoryError
	return errors.As(err, &down) || errors.As(err, &dl) || errors.As(err, &oom)
}

// journalConfirmed records a CONFIRMED mutation — the worker replied ok —
// so failover replay reconstructs exactly the state clients could observe.
func (s *Service) journalConfirmed(sh *shardState, req request) {
	switch req.kind {
	case opAlloc:
		sh.journal.recordAlloc(req.key, req.size, req.stores)
	case opFree:
		sh.journal.recordFree(req.key)
	}
}

// Quiesce drains every shard's quarantine (epoch invalidation runs), so
// freed-key probes observe invalidated anchors deterministically. Uses a
// generous deadline: a drain walks every pending log.
func (s *Service) Quiesce() error {
	var firstErr error
	for _, sh := range s.shards {
		ep := sh.ep.Load().ep
		resp := ep.send(request{kind: opQuiesce}, 10*s.cfg.RequestTimeout)
		if resp.err != nil && firstErr == nil {
			firstErr = resp.err
		}
	}
	return firstErr
}

// ShardStatus is one shard's supervision snapshot.
type ShardStatus struct {
	Shard        int
	Breaker      BreakerState
	BreakerTrips uint64
	Rebuilding   bool
	HeartbeatAge time.Duration
	Failovers    uint64
	Incarnation  int64
	LiveKeys     int
	FreedKeys    int
}

// ShardStats returns the supervision view of every shard.
func (s *Service) ShardStats() []ShardStatus {
	out := make([]ShardStatus, 0, len(s.shards))
	now := time.Now().UnixNano()
	for _, sh := range s.shards {
		live, freed := sh.journal.counts()
		out = append(out, ShardStatus{
			Shard:        sh.idx,
			Breaker:      sh.breaker.State(),
			BreakerTrips: sh.breaker.Trips(),
			Rebuilding:   sh.rebuilding.Load(),
			HeartbeatAge: time.Duration(now - sh.lastBeat.Load()),
			Failovers:    sh.failovers.Load(),
			Incarnation:  sh.incarn.Load(),
			LiveKeys:     live,
			FreedKeys:    freed,
		})
	}
	return out
}

// DetectorStats fetches shard i's pointer-log snapshot, cold-tier stats,
// and audit verdicts through the worker (so the read is single-threaded
// with the worker's own traffic).
func (s *Service) DetectorStats(shard int) (pointerlog.Snapshot, pointerlog.ColdStats, []string, error) {
	if shard < 0 || shard >= len(s.shards) {
		return pointerlog.Snapshot{}, pointerlog.ColdStats{}, nil, fmt.Errorf("service: no shard %d", shard)
	}
	ep := s.shards[shard].ep.Load().ep
	resp := ep.send(request{kind: opStats}, 10*s.cfg.RequestTimeout)
	if resp.err != nil {
		return pointerlog.Snapshot{}, pointerlog.ColdStats{}, nil, resp.err
	}
	return resp.stats, resp.cold, resp.audit, nil
}

// AggregateStats sums the pointer-log snapshots across shards (transient
// per-shard failures are skipped; the error reports the first one).
func (s *Service) AggregateStats() (pointerlog.Snapshot, error) {
	var out pointerlog.Snapshot
	var firstErr error
	for i := range s.shards {
		snap, _, _, err := s.DetectorStats(i)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		out.ObjectsTracked += snap.ObjectsTracked
		out.Registered += snap.Registered
		out.Logged += snap.Logged
		out.Duplicates += snap.Duplicates
		out.Compressed += snap.Compressed
		out.HashTables += snap.HashTables
		out.Invalidated += snap.Invalidated
		out.Stale += snap.Stale
		out.Faulted += snap.Faulted
		out.LogBytes += snap.LogBytes
		out.LogBytesReleased += snap.LogBytesReleased
		out.LogBytesLive += snap.LogBytesLive
		out.LogBytesSpilled += snap.LogBytesSpilled
		out.Spills += snap.Spills
		out.SpillFailures += snap.SpillFailures
		out.ColdReadErrors += snap.ColdReadErrors
		out.DegradedObjects += snap.DegradedObjects
		out.DroppedRegistrations += snap.DroppedRegistrations
	}
	return out, firstErr
}

// Disrupt injects a failure mode into shard i's current worker: slow
// (requests crawl), hang (requests never answered), kill (worker exits on
// next request), killafter (worker applies its next request and dies
// before replying — the crash-consistency window), sigkill (worker dies
// NOW; a real SIGKILL under the wire transports). The chaos stages drive
// this.
func (s *Service) Disrupt(shard int, mode string) error {
	if shard < 0 || shard >= len(s.shards) {
		return fmt.Errorf("service: no shard %d", shard)
	}
	ep := s.shards[shard].ep.Load().ep
	var m disruptMode
	switch mode {
	case "slow":
		m = disruptSlow
	case "hang":
		m = disruptHang
	case "kill":
		m = disruptKill
	case "killafter":
		m = disruptKillAfter
	case "sigkill":
		m = disruptSigKill
	case "partition":
		m = disruptNetPartition
	case "trickle":
		m = disruptNetTrickle
	case "garbage":
		m = disruptNetGarbage
	case "none", "heal":
		m = disruptNone
	default:
		return fmt.Errorf("service: unknown disruption %q", mode)
	}
	return ep.disrupt(m)
}

// Violations returns invariant violations the service itself observed
// (audit identity broken after a rebuild, replay failures). The chaos
// harness folds these into its verdict.
func (s *Service) Violations() []string {
	s.violationMu.Lock()
	defer s.violationMu.Unlock()
	out := make([]string, len(s.violations))
	copy(out, s.violations)
	return out
}

func (s *Service) recordViolation(format string, args ...any) {
	s.violationMu.Lock()
	defer s.violationMu.Unlock()
	s.violations = append(s.violations, fmt.Sprintf(format, args...))
}

// Counters is the service's own gauge set — the numbers the CLI, bench,
// and dangsan-stats surface.
type Counters struct {
	Requests        uint64 `json:"requests"`
	Degraded        uint64 `json:"degraded_requests"`
	Retries         uint64 `json:"retries"`
	Timeouts        uint64 `json:"timeouts"`
	Failovers       uint64 `json:"failovers"`
	HeartbeatMisses uint64 `json:"heartbeat_misses"`
	WorkerPanics    uint64 `json:"worker_panics"`
	Abandoned       uint64 `json:"abandoned_workers"`
	RecoveredLocs   uint64 `json:"recovered_spilled_locs"`
	ReplayedObjects uint64 `json:"replayed_objects"`
	ReplayErrors    uint64 `json:"replay_errors"`
	BreakerTrips    uint64 `json:"breaker_trips"`
}

// Counters snapshots the service-level counters.
func (s *Service) Counters() Counters {
	var trips uint64
	for _, sh := range s.shards {
		trips += sh.breaker.Trips()
	}
	return Counters{
		Requests:        s.requests.Load(),
		Degraded:        s.degraded.Load(),
		Retries:         s.retries.Load(),
		Timeouts:        s.timeouts.Load(),
		Failovers:       s.failovers.Load(),
		HeartbeatMisses: s.heartbeatMisses.Load(),
		WorkerPanics:    s.workerPanics.Load(),
		Abandoned:       s.abandoned.Load(),
		RecoveredLocs:   s.recoveredLocs.Load(),
		ReplayedObjects: s.replayedObjects.Load(),
		ReplayErrors:    s.replayErrors.Load(),
		BreakerTrips:    trips,
	}
}

// RecoveryTimes returns the duration of every completed failover.
func (s *Service) RecoveryTimes() []time.Duration {
	s.recoveryMu.Lock()
	defer s.recoveryMu.Unlock()
	out := make([]time.Duration, len(s.recoveries))
	copy(out, s.recoveries)
	return out
}

// registerMetrics exposes the supervision state as func gauges so metrics
// snapshots see live values without a second set of counters.
func (s *Service) registerMetrics() {
	reg := s.cfg.Metrics
	if reg == nil {
		return
	}
	u := func(a *atomic.Uint64) func() int64 {
		return func() int64 { return int64(a.Load()) }
	}
	reg.RegisterFunc("service.requests", u(&s.requests))
	reg.RegisterFunc("service.degraded_requests", u(&s.degraded))
	reg.RegisterFunc("service.retries", u(&s.retries))
	reg.RegisterFunc("service.timeouts", u(&s.timeouts))
	reg.RegisterFunc("service.failovers", u(&s.failovers))
	reg.RegisterFunc("service.heartbeat_misses", u(&s.heartbeatMisses))
	reg.RegisterFunc("service.worker_panics", u(&s.workerPanics))
	reg.RegisterFunc("service.recovered_spilled_locs", u(&s.recoveredLocs))
	reg.RegisterFunc("service.replayed_objects", u(&s.replayedObjects))
	reg.RegisterFunc("service.breaker_trips", func() int64 {
		var t uint64
		for _, sh := range s.shards {
			t += sh.breaker.Trips()
		}
		return int64(t)
	})
	for _, sh := range s.shards {
		sh := sh
		reg.RegisterFunc(fmt.Sprintf("service.shard%d.heartbeat_age_ms", sh.idx), func() int64 {
			return (time.Now().UnixNano() - sh.lastBeat.Load()) / int64(time.Millisecond)
		})
		reg.RegisterFunc(fmt.Sprintf("service.shard%d.breaker_state", sh.idx), func() int64 {
			return int64(sh.breaker.State())
		})
		reg.RegisterFunc(fmt.Sprintf("service.shard%d.failovers", sh.idx), func() int64 {
			return int64(sh.failovers.Load())
		})
	}
}

// Close stops the supervisors and every worker. Requests issued after
// Close fail with ClosedError (degraded verdict).
func (s *Service) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.supStop)
	s.supWG.Wait()
	for _, sh := range s.shards {
		// Serialize with any in-flight failover so we stop the final
		// worker, not a mid-swap one.
		sh.failMu.Lock()
		ep := sh.ep.Load().ep
		ep.shutdown()
		exited := waitClosed(ep.doneCh(), s.cfg.FailoverDrain)
		if !exited {
			// Escalate — for process workers this is a real SIGKILL, so a
			// hung worker process cannot outlive its coordinator.
			ep.kill()
			exited = waitClosed(ep.doneCh(), s.cfg.FailoverDrain)
		}
		if exited {
			ep.close()
		} else {
			s.abandoned.Add(1)
		}
		sh.failMu.Unlock()
	}
	if s.ownWorkDir {
		os.RemoveAll(s.workDir)
	}
}

// waitClosed waits for ch to close, up to d. Returns false on timeout.
func waitClosed(ch <-chan struct{}, d time.Duration) bool {
	select {
	case <-ch:
		return true
	default:
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ch:
		return true
	case <-t.C:
		return false
	}
}
