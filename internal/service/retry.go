package service

import (
	"sync/atomic"
	"time"
)

// RetryPolicy bounds the coordinator's retry loop for transient shard
// errors along BOTH axes: attempt count and total wall-time. The wall-time
// cap matters when individual attempts are slow (a hung worker eats the
// full per-request deadline before failing) — an attempt-count bound alone
// would let one request occupy a caller for attempts × deadline.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	// 0 defaults to 4.
	MaxAttempts int
	// BaseDelay is the pre-jitter backoff before the second attempt; it
	// doubles per attempt up to MaxDelay. 0 defaults to 200µs.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep. 0 defaults to 5ms.
	MaxDelay time.Duration
	// MaxElapsed caps the total wall-time spent on the request across
	// attempts and sleeps; once exceeded the request fails open into a
	// degraded verdict. 0 defaults to 250ms.
	MaxElapsed time.Duration
}

func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 200 * time.Microsecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Millisecond
	}
	if p.MaxElapsed <= 0 {
		p.MaxElapsed = 250 * time.Millisecond
	}
	return p
}

// delay computes the backoff before attempt+1 (attempt is 0-based):
// BaseDelay << attempt, capped at MaxDelay, with ±50% jitter so retries
// from many callers against the same recovering shard spread out instead
// of stampeding in lockstep.
func (p RetryPolicy) delay(attempt int, r *jitterRNG) time.Duration {
	d := p.BaseDelay
	for i := 0; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	// Jitter in [d/2, 3d/2): keep the expectation at d.
	half := uint64(d / 2)
	if half == 0 {
		return d
	}
	return time.Duration(half + r.next()%(2*half))
}

// jitterRNG is a lock-free splitmix64 stream shared by every caller —
// statistical spread is all jitter needs, so one atomic add per draw is
// plenty and no seed bookkeeping leaks into the request path.
type jitterRNG struct {
	state atomic.Uint64
}

func (r *jitterRNG) seed(s uint64) { r.state.Store(s) }

func (r *jitterRNG) next() uint64 {
	z := r.state.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
