package service

import "time"

// Transport names for Config.Transport.
const (
	// TransportChan (also the "" default) keeps shard workers as
	// goroutines in this process, reached over channels.
	TransportChan = "chan"
	// TransportUnix runs each shard worker as its own OS process reached
	// over a unix-domain socket.
	TransportUnix = "unix"
	// TransportTCP runs each shard worker as its own OS process reached
	// over loopback TCP.
	TransportTCP = "tcp"
)

// validTransport reports whether name names a known transport ("" means
// the in-process default).
func validTransport(name string) bool {
	switch name {
	case "", TransportChan, TransportUnix, TransportTCP:
		return true
	}
	return false
}

// wireNetwork maps a transport name onto its net-package network name, or
// "" for the in-process transport.
func wireNetwork(name string) string {
	switch name {
	case TransportUnix:
		return "unix"
	case TransportTCP:
		return "tcp"
	}
	return ""
}

// endpoint is the coordinator's handle on one shard worker, abstracting
// over where the worker lives: a goroutine in this process reached over
// channels (*worker) or a separate OS process reached over the wire codec
// (*wireEndpoint). The supervision machinery — heartbeats, breakers,
// retry, journal replay, failover — is written against this interface
// only, so it cannot behave differently per transport.
type endpoint interface {
	// send routes one request under a deadline covering the full exchange.
	// It never blocks past timeout, and every failure is one of the typed
	// errors.
	send(req request, timeout time.Duration) response
	// replay applies one request synchronously during a failover rebuild,
	// before the endpoint serves client traffic (the rebuilding flag keeps
	// clients away until the journal replay finishes).
	replay(req request) response
	// start opens the endpoint for traffic. For the in-process worker this
	// launches the goroutine (replay must run first); process workers
	// serve from the moment they are spawned, so it is a no-op there.
	start()
	// shutdown asks the worker to exit gracefully (close(stop) in-process,
	// SIGTERM for a process). Idempotent.
	shutdown()
	// kill forces the worker down (SIGKILL for a process; the in-process
	// worker has no harder stop than shutdown). Idempotent.
	kill()
	// close releases the worker's resources (spill file / cold dir /
	// sockets). Only safe once doneCh has closed.
	close()
	// doneCh closes when the worker is dead — goroutine returned, or
	// process reaped.
	doneCh() <-chan struct{}
	// didPanic reports whether the worker died panicking.
	didPanic() bool
	// coldPath locates the dead worker's cold spill file for failover
	// recovery ("" if it never spilled).
	coldPath() string
	// disrupt injects a failure mode; the chaos stages drive it.
	disrupt(mode disruptMode) error
	// incarnationID is the worker's incarnation, for the staleness check
	// at failover entry.
	incarnationID() int
}

// epBox wraps an endpoint for atomic.Pointer storage: the two concrete
// endpoint types would make atomic.Value panic on inconsistently-typed
// stores, and atomic.Pointer needs one concrete pointee.
type epBox struct{ ep endpoint }
