package service

import (
	"time"

	"dangsan/internal/pointerlog"
)

// supervise is one shard's supervisor loop: it pings the worker every
// HeartbeatInterval (bypassing the breaker — health checking must keep
// probing precisely when requests are being rejected), feeds the results
// into the breaker, and triggers failover after HeartbeatMisses
// consecutive misses or as soon as the worker goroutine is seen dead.
func (s *Service) supervise(sh *shardState) {
	defer s.supWG.Done()
	ticker := time.NewTicker(s.cfg.HeartbeatInterval)
	defer ticker.Stop()
	misses := 0
	for {
		select {
		case <-s.supStop:
			return
		case <-ticker.C:
		}
		if sh.rebuilding.Load() {
			continue
		}
		w := sh.worker.Load()
		select {
		case <-w.done:
			// Dead worker: no point counting misses.
			s.failover(sh, "worker exited")
			misses = 0
			continue
		default:
		}
		resp := w.send(request{kind: opPing, resp: make(chan response, 1)}, s.cfg.HeartbeatTimeout)
		if resp.err == nil {
			misses = 0
			sh.lastBeat.Store(time.Now().UnixNano())
			sh.breaker.Record(true)
			continue
		}
		misses++
		s.heartbeatMisses.Add(1)
		// A failing heartbeat is evidence against the shard like any
		// failing request — while half-open it is the concurrent trip
		// racing the probe (the breaker invalidates the probe's token).
		sh.breaker.Record(false)
		if misses >= s.cfg.HeartbeatMisses {
			s.failover(sh, "heartbeat misses")
			misses = 0
		}
	}
}

// failover replaces a shard's worker and rebuilds its state:
//
//  1. mark the shard rebuilding and force the breaker open, so the request
//     path fails open into degraded verdicts instead of racing the swap;
//  2. stop the old worker and wait (bounded) for its goroutine to exit —
//     hang-mode workers unblock on stop, so abandonment is rare;
//  3. recover the old worker's cold tier through the offline
//     pointerlog.ReadSegments path (the same fail-closed decoder
//     invalidation uses), counting the locations that survived on disk;
//  4. build a fresh worker (next incarnation) and replay the journal
//     synchronously through direct handle calls — live keys as
//     allocations, the freed window as allocation+free so quarantine
//     custody is re-established — before the worker loop starts;
//  5. with audit armed, cross-check the rebuilt worker's accounting
//     identity (LogBytes == live + quarantined + released + spilled); a
//     violation here is a service-level invariant failure;
//  6. swap the worker in, reset the breaker, and reopen the shard.
//
// Concurrent failovers for one shard serialize on failMu; the rebuilding
// flag keeps the supervisor and request path out during the rebuild.
func (s *Service) failover(sh *shardState, reason string) {
	sh.failMu.Lock()
	defer sh.failMu.Unlock()
	if s.closed.Load() {
		return
	}
	old := sh.worker.Load()
	// Another failover may have already replaced the worker while this
	// trigger was waiting on failMu; only proceed if the observed-dead
	// worker is still current.
	select {
	case <-old.done:
	default:
		// Worker alive: heartbeat-miss trigger. Proceed — stop will kill
		// it below — unless a concurrent failover just swapped in a fresh
		// incarnation (its heartbeat history does not transfer).
		if old.incarnation != int(sh.incarn.Load()) {
			return
		}
	}
	start := time.Now()
	sh.rebuilding.Store(true)
	defer sh.rebuilding.Store(false)
	sh.breaker.ForceOpen()

	old.shutdown()
	exited := waitClosed(old.done, s.cfg.FailoverDrain)
	if old.panicked.Load() {
		s.workerPanics.Add(1)
	}

	// Recover the cold tier from the dead worker's spill file. The frames
	// already on disk survive the "crash"; ReadSegments streams every
	// intact segment and fails closed at the first torn one.
	var recovered int
	if exited {
		if path := old.coldPath(); path != "" {
			// An error here means ReadSegments stopped at a torn or
			// corrupt frame; the intact prefix still counts. Losing the
			// tail is coverage loss, not a violation (mirrors
			// ColdReadErrors semantics).
			locs, _ := pointerlog.ReadSegments(path)
			recovered = len(locs)
		}
	} else {
		// The goroutine would not exit within the drain budget: abandon
		// it (its detector keeps its spill file; Close would race).
		s.abandoned.Add(1)
	}

	nw, err := newWorker(sh.idx, int(sh.incarn.Load())+1, s.cfg)
	if err != nil {
		// Cannot rebuild (globals exhausted, etc.): leave the dead worker
		// in place; the breaker stays open, requests stay degraded, and
		// the supervisor will retry on its next tick.
		s.replayErrors.Add(1)
		s.recordViolation("shard %d: rebuild failed: %v", sh.idx, err)
		return
	}

	// Replay the journal against the fresh worker before it serves
	// traffic. handle runs on this goroutine; the worker is unreachable,
	// so the single-threaded contract holds.
	live, freed := sh.journal.snapshot()
	replayed := 0
	for _, e := range live {
		if rerr := nw.handleAlloc(e.key, e.size, e.stores); rerr != nil {
			s.replayErrors.Add(1)
		} else {
			replayed++
		}
	}
	for _, e := range freed {
		if rerr := nw.handleAlloc(e.key, e.size, e.stores); rerr != nil {
			s.replayErrors.Add(1)
			continue
		}
		if rerr := nw.handleFree(e.key); rerr != nil {
			s.replayErrors.Add(1)
			continue
		}
		replayed++
	}
	if s.cfg.Audit {
		// Stats triggers the logger's AuditCheck; any recorded violation
		// means the rebuilt state broke the accounting identity.
		nw.det.Stats()
		if v := nw.det.AuditViolations(); len(v) > 0 {
			s.recordViolation("shard %d: audit identity broken after rebuild: %s", sh.idx, v[0])
		}
	}

	if exited {
		// Release the old detector's resources (unlinks its spill file)
		// only after recovery read it.
		old.close()
	}

	nw.start()
	sh.worker.Store(nw)
	sh.incarn.Add(1)
	sh.breaker.Reset()
	sh.lastBeat.Store(time.Now().UnixNano())
	sh.failovers.Add(1)
	s.failovers.Add(1)
	s.recoveredLocs.Add(uint64(recovered))
	s.replayedObjects.Add(uint64(replayed))
	d := time.Since(start)
	s.recoveryMu.Lock()
	s.recoveries = append(s.recoveries, d)
	s.recoveryMu.Unlock()
}
