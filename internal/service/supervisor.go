package service

import (
	"time"

	"dangsan/internal/pointerlog"
)

// supervise is one shard's supervisor loop: it pings the worker every
// HeartbeatInterval (bypassing the breaker — health checking must keep
// probing precisely when requests are being rejected), feeds the results
// into the breaker, and triggers failover after HeartbeatMisses
// consecutive misses or as soon as the worker is seen dead. The loop is
// transport-blind: a dead endpoint is a returned goroutine or a reaped
// worker process, and a ping is a channel exchange or a wire round trip.
func (s *Service) supervise(sh *shardState) {
	defer s.supWG.Done()
	ticker := time.NewTicker(s.cfg.HeartbeatInterval)
	defer ticker.Stop()
	misses := 0
	for {
		select {
		case <-s.supStop:
			return
		case <-ticker.C:
		}
		if sh.rebuilding.Load() {
			continue
		}
		ep := sh.ep.Load().ep
		select {
		case <-ep.doneCh():
			// Dead worker: no point counting misses.
			s.failover(sh, "worker exited")
			misses = 0
			continue
		default:
		}
		resp := ep.send(request{kind: opPing}, s.cfg.HeartbeatTimeout)
		if resp.err == nil {
			misses = 0
			sh.lastBeat.Store(time.Now().UnixNano())
			sh.breaker.Record(true)
			continue
		}
		misses++
		s.heartbeatMisses.Add(1)
		// A failing heartbeat is evidence against the shard like any
		// failing request — while half-open it is the concurrent trip
		// racing the probe (the breaker invalidates the probe's token).
		sh.breaker.Record(false)
		if misses >= s.cfg.HeartbeatMisses {
			s.failover(sh, "heartbeat misses")
			misses = 0
		}
	}
}

// failover replaces a shard's worker and rebuilds its state:
//
//  1. mark the shard rebuilding and force the breaker open, so the request
//     path fails open into degraded verdicts instead of racing the swap;
//  2. stop the old worker gracefully and wait (bounded) for it to exit;
//     if it will not — a truly hung worker process — escalate to kill
//     (SIGKILL) and wait again, so abandonment is the rare exception;
//  3. recover the old worker's cold tier through the offline
//     pointerlog.ReadSegments path (the same fail-closed decoder
//     invalidation uses), counting the locations that survived on disk —
//     for process workers this reads the per-incarnation cold dir the
//     dead process left behind (workers never unlink their spill files);
//  4. spawn a fresh endpoint (next incarnation — a new goroutine, or a
//     new worker process with its own socket) and replay the journal
//     synchronously — live keys as allocations, the freed window as
//     allocation+free so quarantine custody is re-established — before
//     the endpoint serves client traffic;
//  5. with audit armed, cross-check the rebuilt worker's accounting
//     identity (LogBytes == live + quarantined + released + spilled); a
//     violation here is a service-level invariant failure;
//  6. swap the endpoint in, reset the breaker, and reopen the shard.
//
// Concurrent failovers for one shard serialize on failMu; the rebuilding
// flag keeps the supervisor and request path out during the rebuild.
func (s *Service) failover(sh *shardState, reason string) {
	sh.failMu.Lock()
	defer sh.failMu.Unlock()
	if s.closed.Load() {
		return
	}
	old := sh.ep.Load().ep
	// Another failover may have already replaced the worker while this
	// trigger was waiting on failMu; only proceed if the observed-dead
	// worker is still current.
	select {
	case <-old.doneCh():
	default:
		// Worker alive: heartbeat-miss trigger. Proceed — shutdown will
		// take it down below — unless a concurrent failover just swapped in
		// a fresh incarnation (its heartbeat history does not transfer).
		if old.incarnationID() != int(sh.incarn.Load()) {
			return
		}
	}
	start := time.Now()
	sh.rebuilding.Store(true)
	defer sh.rebuilding.Store(false)
	sh.breaker.ForceOpen()

	old.shutdown()
	exited := waitClosed(old.doneCh(), s.cfg.FailoverDrain)
	if !exited {
		// Graceful stop refused within the drain budget: escalate. For a
		// worker process this is a real SIGKILL; the in-process worker has
		// no harder stop, so this second wait is its last chance.
		old.kill()
		exited = waitClosed(old.doneCh(), s.cfg.FailoverDrain)
	}
	if old.didPanic() {
		s.workerPanics.Add(1)
	}

	// Recover the cold tier from the dead worker's spill file. The frames
	// already on disk survive the crash — even a SIGKILLed process leaves
	// them — and ReadSegments streams every intact segment, failing closed
	// at the first torn one.
	var recovered int
	if exited {
		if path := old.coldPath(); path != "" {
			// An error here means ReadSegments stopped at a torn or
			// corrupt frame; the intact prefix still counts. Losing the
			// tail is coverage loss, not a violation (mirrors
			// ColdReadErrors semantics).
			locs, _ := pointerlog.ReadSegments(path)
			recovered = len(locs)
		}
	} else {
		// The worker would not die within two drain budgets: abandon it
		// (its resources stay untouched; closing would race).
		s.abandoned.Add(1)
	}

	nep, err := s.spawn(sh.idx, int(sh.incarn.Load())+1)
	if err != nil {
		// Cannot rebuild (globals exhausted, spawn failed, etc.): leave
		// the dead worker in place; the breaker stays open, requests stay
		// degraded, and the supervisor will retry on its next tick.
		s.replayErrors.Add(1)
		s.recordViolation("shard %d: rebuild failed: %v", sh.idx, err)
		return
	}

	// Replay the journal against the fresh endpoint before it serves
	// client traffic (the rebuilding flag keeps them out). In-process this
	// runs handle directly on this goroutine; over the wire each op is one
	// round trip against an otherwise idle worker — either way the replay
	// is strictly ordered and synchronous.
	live, freed := sh.journal.snapshot()
	replayed := 0
	for _, e := range live {
		if resp := nep.replay(request{kind: opAlloc, key: e.key, size: e.size, stores: e.stores}); resp.err != nil {
			s.replayErrors.Add(1)
		} else {
			replayed++
		}
	}
	for _, e := range freed {
		if resp := nep.replay(request{kind: opAlloc, key: e.key, size: e.size, stores: e.stores}); resp.err != nil {
			s.replayErrors.Add(1)
			continue
		}
		if resp := nep.replay(request{kind: opFree, key: e.key}); resp.err != nil {
			s.replayErrors.Add(1)
			continue
		}
		replayed++
	}
	if s.cfg.Audit {
		// A stats op triggers the logger's AuditCheck on the rebuilt
		// worker; any violation means the rebuilt state broke the
		// accounting identity.
		resp := nep.replay(request{kind: opStats})
		if resp.err != nil {
			s.recordViolation("shard %d: post-rebuild audit unavailable: %v", sh.idx, resp.err)
		} else if len(resp.audit) > 0 {
			s.recordViolation("shard %d: audit identity broken after rebuild: %s", sh.idx, resp.audit[0])
		}
	}

	if exited {
		// Release the old worker's resources (spill file / cold dir /
		// sockets) only after recovery read them.
		old.close()
	}

	nep.start()
	sh.ep.Store(&epBox{ep: nep})
	sh.incarn.Add(1)
	sh.breaker.Reset()
	sh.lastBeat.Store(time.Now().UnixNano())
	sh.failovers.Add(1)
	s.failovers.Add(1)
	s.recoveredLocs.Add(uint64(recovered))
	s.replayedObjects.Add(uint64(replayed))
	d := time.Since(start)
	s.recoveryMu.Lock()
	s.recoveries = append(s.recoveries, d)
	s.recoveryMu.Unlock()
}
