package ir

import (
	"strings"
	"testing"
)

// buildValid returns a minimal valid module: main calls helper.
func buildValid() *Module {
	m := NewModule()
	m.Globals = append(m.Globals, Global{Name: "g", Size: 8})
	helper := &Func{
		Name:   "helper",
		Params: []Param{{Name: "n", Type: I64}},
		Ret:    I64,
		Blocks: []*Block{{
			Name: "entry",
			Instrs: []Instr{
				{Op: OpAdd, Dst: 1, A: R(0), B: C(1)},
			},
			Term: Terminator{Kind: TermRet, HasVal: true, Cond: R(1)},
		}},
	}
	main := &Func{
		Name: "main",
		Ret:  Void,
		Blocks: []*Block{{
			Name: "entry",
			Instrs: []Instr{
				{Op: OpGlobal, Dst: 0, Name: "g"},
				{Op: OpCall, Dst: 1, Name: "helper", Args: []Value{C(41)}},
				{Op: OpStore, Dst: -1, StoreType: I64, A: R(0), B: R(1)},
			},
			Term: Terminator{Kind: TermRet},
		}},
	}
	m.Funcs["helper"] = helper
	m.Funcs["main"] = main
	return m
}

func TestFinalizeValid(t *testing.T) {
	m := buildValid()
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	if m.Funcs["helper"].NumRegs != 2 {
		t.Fatalf("helper NumRegs = %d", m.Funcs["helper"].NumRegs)
	}
	if m.Funcs["main"].Blocks[0].Index != 0 {
		t.Fatal("block index not set")
	}
}

func TestFinalizeErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Module)
		want   string
	}{
		{"empty function", func(m *Module) {
			m.Funcs["main"].Blocks = nil
		}, "no blocks"},
		{"branch out of range", func(m *Module) {
			m.Funcs["main"].Blocks[0].Term = Terminator{Kind: TermBr, Then: 9}
		}, "invalid block"},
		{"void return with value", func(m *Module) {
			m.Funcs["main"].Blocks[0].Term = Terminator{Kind: TermRet, HasVal: true, Cond: C(1)}
		}, "value returned"},
		{"missing return value", func(m *Module) {
			m.Funcs["helper"].Blocks[0].Term = Terminator{Kind: TermRet}
		}, "missing return value"},
		{"unknown global", func(m *Module) {
			m.Funcs["main"].Blocks[0].Instrs[0].Name = "nope"
		}, "unknown global"},
		{"unknown callee", func(m *Module) {
			m.Funcs["main"].Blocks[0].Instrs[1].Name = "nope"
		}, "unknown function"},
		{"arg count", func(m *Module) {
			m.Funcs["main"].Blocks[0].Instrs[1].Args = nil
		}, "args"},
		{"void used as value", func(m *Module) {
			m.Funcs["helper"].Ret = Void
			m.Funcs["helper"].Blocks[0].Term = Terminator{Kind: TermRet}
		}, "void function used as value"},
		{"missing destination", func(m *Module) {
			m.Funcs["main"].Blocks[0].Instrs[0] = Instr{Op: OpAdd, Dst: -1, A: C(1), B: C(2)}
		}, "missing destination"},
		{"zero alloca", func(m *Module) {
			m.Funcs["main"].Blocks[0].Instrs[0] = Instr{Op: OpAlloca, Dst: 0, Size: 0}
		}, "alloca of zero"},
		{"bad store type", func(m *Module) {
			m.Funcs["main"].Blocks[0].Instrs[2].StoreType = Void
		}, "store of type"},
		{"duplicate global", func(m *Module) {
			m.Globals = append(m.Globals, Global{Name: "g", Size: 8})
		}, "duplicate global"},
		{"zero-size global", func(m *Module) {
			m.Globals = append(m.Globals, Global{Name: "h", Size: 0})
		}, "zero size"},
		{"duplicate block name", func(m *Module) {
			f := m.Funcs["main"]
			f.Blocks = append(f.Blocks, &Block{Name: "entry", Term: Terminator{Kind: TermRet}})
		}, "duplicate block"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := buildValid()
			c.mutate(m)
			err := m.Finalize()
			if err == nil {
				t.Fatal("no error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestSuccs(t *testing.T) {
	b := &Block{Term: Terminator{Kind: TermCondBr, Then: 1, Else: 2}}
	if s := b.Succs(); len(s) != 2 || s[0] != 1 || s[1] != 2 {
		t.Fatalf("condbr succs = %v", s)
	}
	// Degenerate conditional with equal targets collapses.
	b.Term.Else = 1
	if s := b.Succs(); len(s) != 1 || s[0] != 1 {
		t.Fatalf("degenerate condbr succs = %v", s)
	}
	b.Term = Terminator{Kind: TermRet}
	if s := b.Succs(); s != nil {
		t.Fatalf("ret succs = %v", s)
	}
}

func TestInstrStrings(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpStore, StoreType: Ptr, A: R(1), B: R(0)}, "store ptr [r1], r0"},
		{Instr{Op: OpRegPtr, A: R(1), B: R(0)}, "regptr [r1], r0"},
		{Instr{Op: OpICmp, Dst: 2, Pred: PredSLT, A: R(0), B: C(5)}, "r2 = icmp slt r0, 5"},
		{Instr{Op: OpCall, Dst: 3, Name: "f", Args: []Value{C(1), R(2)}}, "r3 = call f(1, r2)"},
		{Instr{Op: OpCall, Dst: -1, Name: "f"}, "call f()"},
		{Instr{Op: OpMov, Dst: 0, A: C(7)}, "r0 = mov 7"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
