package ir

import "fmt"

// Finalize computes derived fields (block indices, register counts) and
// validates structural invariants. Call after building or parsing a module
// and before running passes or interpreting.
func (m *Module) Finalize() error {
	names := make(map[string]bool)
	for _, g := range m.Globals {
		if names[g.Name] {
			return fmt.Errorf("ir: duplicate global %q", g.Name)
		}
		if g.Size == 0 {
			return fmt.Errorf("ir: global %q has zero size", g.Name)
		}
		names[g.Name] = true
	}
	for name, f := range m.Funcs {
		if f.Name != name {
			return fmt.Errorf("ir: function map key %q != name %q", name, f.Name)
		}
		if err := m.finalizeFunc(f); err != nil {
			return fmt.Errorf("ir: func %s: %w", name, err)
		}
	}
	return nil
}

func (m *Module) finalizeFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	blockNames := make(map[string]bool)
	maxReg := len(f.Params) - 1
	touch := func(v Value) {
		if v.IsReg && v.Reg > maxReg {
			maxReg = v.Reg
		}
	}
	for i, b := range f.Blocks {
		b.Index = i
		if b.Name != "" {
			if blockNames[b.Name] {
				return fmt.Errorf("duplicate block %q", b.Name)
			}
			blockNames[b.Name] = true
		}
		for j := range b.Instrs {
			in := &b.Instrs[j]
			if in.Dst > maxReg {
				maxReg = in.Dst
			}
			touch(in.A)
			touch(in.B)
			for _, a := range in.Args {
				touch(a)
			}
			if err := m.checkInstr(in); err != nil {
				return fmt.Errorf("block %s instr %d (%s): %w", b.Name, j, in, err)
			}
		}
		switch b.Term.Kind {
		case TermBr:
			if b.Term.Then < 0 || b.Term.Then >= len(f.Blocks) {
				return fmt.Errorf("block %s: branch to invalid block %d", b.Name, b.Term.Then)
			}
		case TermCondBr:
			touch(b.Term.Cond)
			if b.Term.Then < 0 || b.Term.Then >= len(f.Blocks) ||
				b.Term.Else < 0 || b.Term.Else >= len(f.Blocks) {
				return fmt.Errorf("block %s: conditional branch out of range", b.Name)
			}
		case TermRet:
			if b.Term.HasVal {
				touch(b.Term.Cond)
			}
			if f.Ret == Void && b.Term.HasVal {
				return fmt.Errorf("block %s: value returned from void function", b.Name)
			}
			if f.Ret != Void && !b.Term.HasVal {
				return fmt.Errorf("block %s: missing return value", b.Name)
			}
		default:
			return fmt.Errorf("block %s: bad terminator kind %d", b.Name, b.Term.Kind)
		}
	}
	f.NumRegs = maxReg + 1
	return nil
}

func (m *Module) checkInstr(in *Instr) error {
	needDst := func() error {
		if in.Dst < 0 {
			return fmt.Errorf("missing destination")
		}
		return nil
	}
	switch in.Op {
	case OpMov, OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpICmp, OpGep, OpLoad, OpMalloc, OpRealloc:
		if err := needDst(); err != nil {
			return err
		}
	case OpAlloca:
		if err := needDst(); err != nil {
			return err
		}
		if in.Size == 0 {
			return fmt.Errorf("alloca of zero bytes")
		}
	case OpGlobal:
		if err := needDst(); err != nil {
			return err
		}
		found := false
		for _, g := range m.Globals {
			if g.Name == in.Name {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown global %q", in.Name)
		}
	case OpStore:
		if in.StoreType != I64 && in.StoreType != Ptr {
			return fmt.Errorf("store of type %s", in.StoreType)
		}
	case OpCall, OpSpawn:
		f, ok := m.Funcs[in.Name]
		if !ok {
			return fmt.Errorf("unknown function %q", in.Name)
		}
		if len(in.Args) != len(f.Params) {
			return fmt.Errorf("call %s: %d args, want %d", in.Name, len(in.Args), len(f.Params))
		}
		if in.Op == OpCall && in.Dst >= 0 && f.Ret == Void {
			return fmt.Errorf("call %s: void function used as value", in.Name)
		}
	case OpFree, OpJoin, OpPrint, OpRegPtr:
		// No destination; nothing further to check.
	default:
		return fmt.Errorf("unknown opcode %d", in.Op)
	}
	if in.Op == OpLoad && in.LoadType != I64 && in.LoadType != Ptr {
		return fmt.Errorf("load of type %s", in.LoadType)
	}
	return nil
}
