// Package analysis provides the control-flow and call-graph analyses the
// DangSan instrumentation pass needs: predecessors, dominators, natural
// loops, and a transitive "may this call free memory" property. These are
// the same facts the paper's LLVM pass relies on for its loop-invariant
// registration hoisting (§6): hoisting is only sound when the loop body
// cannot call free, because only then is a registration for a location that
// is overwritten on every iteration redundant.
package analysis

import "dangsan/internal/ir"

// CFG holds the per-function control-flow graph.
type CFG struct {
	F     *ir.Func
	Succs [][]int
	Preds [][]int
}

// BuildCFG computes successor and predecessor lists.
func BuildCFG(f *ir.Func) *CFG {
	n := len(f.Blocks)
	cfg := &CFG{
		F:     f,
		Succs: make([][]int, n),
		Preds: make([][]int, n),
	}
	for i, b := range f.Blocks {
		cfg.Succs[i] = b.Succs()
		for _, s := range cfg.Succs[i] {
			cfg.Preds[s] = append(cfg.Preds[s], i)
		}
	}
	return cfg
}

// postorder returns the blocks reachable from entry in postorder.
func (cfg *CFG) postorder() []int {
	seen := make([]bool, len(cfg.Succs))
	var order []int
	var visit func(int)
	visit = func(b int) {
		seen[b] = true
		for _, s := range cfg.Succs[b] {
			if !seen[s] {
				visit(s)
			}
		}
		order = append(order, b)
	}
	visit(0)
	return order
}

// Dominators computes the immediate dominator of every reachable block
// using the Cooper-Harvey-Kennedy iterative algorithm. idom[0] == 0;
// unreachable blocks get idom -1.
func Dominators(cfg *CFG) []int {
	n := len(cfg.Succs)
	post := cfg.postorder()
	postIdx := make([]int, n)
	for i := range postIdx {
		postIdx[i] = -1
	}
	for i, b := range post {
		postIdx[b] = i
	}
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for postIdx[a] < postIdx[b] {
				a = idom[a]
			}
			for postIdx[b] < postIdx[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		// Reverse postorder, skipping the entry.
		for i := len(post) - 1; i >= 0; i-- {
			b := post[i]
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range cfg.Preds[b] {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b.
func Dominates(idom []int, a, b int) bool {
	if idom[b] == -1 {
		return false
	}
	for {
		if b == a {
			return true
		}
		if b == 0 {
			return false
		}
		b = idom[b]
	}
}

// Loop is a natural loop: the set of blocks from which the header is
// reachable without passing through the header.
type Loop struct {
	// Header is the loop entry block.
	Header int
	// Blocks is the loop body, including the header.
	Blocks map[int]bool
	// Latches are the blocks with back edges to the header.
	Latches []int
}

// NaturalLoops finds all natural loops (one per header; loops sharing a
// header are merged, as LLVM's LoopInfo does).
func NaturalLoops(cfg *CFG, idom []int) []*Loop {
	byHeader := make(map[int]*Loop)
	var headers []int
	for b := range cfg.Succs {
		for _, s := range cfg.Succs[b] {
			if idom[b] != -1 && Dominates(idom, s, b) {
				// Back edge b -> s.
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[int]bool{s: true}}
					byHeader[s] = l
					headers = append(headers, s)
				}
				l.Latches = append(l.Latches, b)
				// Collect the loop body by walking predecessors from the
				// latch until the header.
				stack := []int{b}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if l.Blocks[x] {
						continue
					}
					l.Blocks[x] = true
					for _, p := range cfg.Preds[x] {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	loops := make([]*Loop, 0, len(headers))
	for _, h := range headers {
		loops = append(loops, byHeader[h])
	}
	return loops
}

// MayFree computes, for every function, whether calling it can (directly or
// transitively) free memory. Spawning a thread that frees counts as
// freeing: the freed object's pointers may be invalidated while the loop
// runs.
func MayFree(m *ir.Module) map[string]bool {
	direct := make(map[string]bool, len(m.Funcs))
	calls := make(map[string][]string)
	for name, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				switch b.Instrs[i].Op {
				case ir.OpFree, ir.OpRealloc:
					direct[name] = true
				case ir.OpCall, ir.OpSpawn:
					calls[name] = append(calls[name], b.Instrs[i].Name)
				}
			}
		}
	}
	// Propagate to a fixed point over the call graph.
	for changed := true; changed; {
		changed = false
		for name, callees := range calls {
			if direct[name] {
				continue
			}
			for _, c := range callees {
				if direct[c] {
					direct[name] = true
					changed = true
					break
				}
			}
		}
	}
	return direct
}

// LoopMayFree reports whether any block of the loop contains a free, a
// realloc, or a call to a function that may free.
func LoopMayFree(f *ir.Func, l *Loop, mayFree map[string]bool) bool {
	for bi := range l.Blocks {
		for i := range f.Blocks[bi].Instrs {
			in := &f.Blocks[bi].Instrs[i]
			switch in.Op {
			case ir.OpFree, ir.OpRealloc:
				return true
			case ir.OpCall, ir.OpSpawn:
				if mayFree[in.Name] {
					return true
				}
			}
		}
	}
	return false
}

// DefsIn returns the set of registers assigned anywhere inside the loop.
// A value is loop-invariant when it is a constant or a register not in this
// set.
func DefsIn(f *ir.Func, l *Loop) map[int]bool {
	defs := make(map[int]bool)
	for bi := range l.Blocks {
		for i := range f.Blocks[bi].Instrs {
			if d := f.Blocks[bi].Instrs[i].Dst; d >= 0 {
				defs[d] = true
			}
		}
	}
	return defs
}

// Invariant reports whether v is loop-invariant given the loop's def set.
func Invariant(v ir.Value, defs map[int]bool) bool {
	return !v.IsReg || !defs[v.Reg]
}
