package analysis_test

import (
	"testing"

	"dangsan/internal/ir"
	"dangsan/internal/ir/analysis"
	"dangsan/internal/irparse"
)

const loopProgram = `
func main() {
entry:
  r0 = mov 0
  br head
head:
  r1 = icmp lt r0, 10
  br r1, body, exit
body:
  r0 = add r0, 1
  br head
exit:
  ret
}

func freer(p ptr) {
entry:
  free p
  ret
}

func callsFreer(p ptr) {
entry:
  call freer(p)
  ret
}

func pure(n i64) i64 {
entry:
  r1 = mul n, 2
  ret r1
}

func loopWithFree(p ptr) {
entry:
  r1 = mov 0
  br head
head:
  r2 = icmp lt r1, 4
  br r2, body, exit
body:
  call callsFreer(p)
  r1 = add r1, 1
  br head
exit:
  ret
}
`

func mustParse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := irparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCFGAndDominators(t *testing.T) {
	m := mustParse(t, loopProgram)
	f := m.Funcs["main"]
	cfg := analysis.BuildCFG(f)
	// entry(0) -> head(1); head -> body(2), exit(3); body -> head.
	if len(cfg.Succs[0]) != 1 || cfg.Succs[0][0] != 1 {
		t.Fatalf("entry succs: %v", cfg.Succs[0])
	}
	if len(cfg.Preds[1]) != 2 {
		t.Fatalf("head preds: %v", cfg.Preds[1])
	}
	idom := analysis.Dominators(cfg)
	if idom[1] != 0 || idom[2] != 1 || idom[3] != 1 {
		t.Fatalf("idom = %v", idom)
	}
	if !analysis.Dominates(idom, 0, 3) || !analysis.Dominates(idom, 1, 2) {
		t.Fatal("expected dominance missing")
	}
	if analysis.Dominates(idom, 2, 3) {
		t.Fatal("body should not dominate exit")
	}
}

func TestNaturalLoops(t *testing.T) {
	m := mustParse(t, loopProgram)
	f := m.Funcs["main"]
	cfg := analysis.BuildCFG(f)
	idom := analysis.Dominators(cfg)
	loops := analysis.NaturalLoops(cfg, idom)
	if len(loops) != 1 {
		t.Fatalf("loops = %d", len(loops))
	}
	l := loops[0]
	if l.Header != 1 {
		t.Fatalf("header = %d", l.Header)
	}
	if !l.Blocks[1] || !l.Blocks[2] || l.Blocks[0] || l.Blocks[3] {
		t.Fatalf("loop blocks: %v", l.Blocks)
	}
	if len(l.Latches) != 1 || l.Latches[0] != 2 {
		t.Fatalf("latches: %v", l.Latches)
	}
}

func TestMayFree(t *testing.T) {
	m := mustParse(t, loopProgram)
	mf := analysis.MayFree(m)
	cases := map[string]bool{
		"freer":        true,
		"callsFreer":   true, // transitively
		"pure":         false,
		"main":         false,
		"loopWithFree": true,
	}
	for name, want := range cases {
		if mf[name] != want {
			t.Errorf("MayFree[%s] = %v, want %v", name, mf[name], want)
		}
	}
}

func TestLoopMayFree(t *testing.T) {
	m := mustParse(t, loopProgram)
	mf := analysis.MayFree(m)

	f := m.Funcs["main"]
	cfg := analysis.BuildCFG(f)
	loops := analysis.NaturalLoops(cfg, analysis.Dominators(cfg))
	if analysis.LoopMayFree(f, loops[0], mf) {
		t.Error("main's loop flagged as freeing")
	}

	f2 := m.Funcs["loopWithFree"]
	cfg2 := analysis.BuildCFG(f2)
	loops2 := analysis.NaturalLoops(cfg2, analysis.Dominators(cfg2))
	if len(loops2) != 1 {
		t.Fatalf("loopWithFree loops = %d", len(loops2))
	}
	if !analysis.LoopMayFree(f2, loops2[0], mf) {
		t.Error("loop calling a freeing function not flagged")
	}
}

func TestDefsAndInvariance(t *testing.T) {
	m := mustParse(t, loopProgram)
	f := m.Funcs["main"]
	cfg := analysis.BuildCFG(f)
	loops := analysis.NaturalLoops(cfg, analysis.Dominators(cfg))
	defs := analysis.DefsIn(f, loops[0])
	// r0 and r1 are written in the loop.
	if !defs[0] || !defs[1] {
		t.Fatalf("defs: %v", defs)
	}
	if analysis.Invariant(ir.R(0), defs) {
		t.Error("r0 reported invariant")
	}
	if !analysis.Invariant(ir.R(9), defs) {
		t.Error("unused register reported variant")
	}
	if !analysis.Invariant(ir.C(5), defs) {
		t.Error("constant reported variant")
	}
}

func TestNestedLoops(t *testing.T) {
	src := `
func main() {
entry:
  r0 = mov 0
  br ohead
ohead:
  r1 = icmp lt r0, 3
  br r1, ibodyinit, exit
ibodyinit:
  r2 = mov 0
  br ihead
ihead:
  r3 = icmp lt r2, 3
  br r3, ibody, olatch
ibody:
  r2 = add r2, 1
  br ihead
olatch:
  r0 = add r0, 1
  br ohead
exit:
  ret
}`
	m := mustParse(t, src)
	f := m.Funcs["main"]
	cfg := analysis.BuildCFG(f)
	loops := analysis.NaturalLoops(cfg, analysis.Dominators(cfg))
	if len(loops) != 2 {
		t.Fatalf("loops = %d", len(loops))
	}
	var outer, inner *analysis.Loop
	for _, l := range loops {
		if f.Blocks[l.Header].Name == "ohead" {
			outer = l
		}
		if f.Blocks[l.Header].Name == "ihead" {
			inner = l
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("missing loop headers")
	}
	if len(outer.Blocks) <= len(inner.Blocks) {
		t.Fatalf("outer (%d blocks) should contain inner (%d)", len(outer.Blocks), len(inner.Blocks))
	}
	for b := range inner.Blocks {
		if !outer.Blocks[b] {
			t.Fatalf("inner block %d not in outer loop", b)
		}
	}
}

func TestUnreachableBlock(t *testing.T) {
	src := `
func main() {
entry:
  ret
dead:
  br dead
}`
	m := mustParse(t, src)
	f := m.Funcs["main"]
	cfg := analysis.BuildCFG(f)
	idom := analysis.Dominators(cfg)
	if idom[1] != -1 {
		t.Fatalf("unreachable block has idom %d", idom[1])
	}
	// Natural loops must not include unreachable self-loops.
	loops := analysis.NaturalLoops(cfg, idom)
	for _, l := range loops {
		if l.Header == 1 {
			t.Fatal("unreachable self-loop reported")
		}
	}
}
