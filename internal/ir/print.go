package ir

import (
	"fmt"
	"sort"
	"strings"
)

// String renders the module in the textual form accepted by
// internal/irparse, enabling round-trip tests and dumping instrumented
// programs for inspection.
func (m *Module) String() string {
	var sb strings.Builder
	for _, g := range m.Globals {
		fmt.Fprintf(&sb, "global %s %d\n", g.Name, g.Size)
	}
	if len(m.Globals) > 0 {
		sb.WriteByte('\n')
	}
	names := make([]string, 0, len(m.Funcs))
	for name := range m.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		if i > 0 {
			sb.WriteByte('\n')
		}
		m.Funcs[name].print(&sb)
	}
	return sb.String()
}

func (f *Func) print(sb *strings.Builder) {
	fmt.Fprintf(sb, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(sb, "%s %s", p.Name, p.Type)
	}
	sb.WriteString(")")
	if f.Ret != Void {
		fmt.Fprintf(sb, " %s", f.Ret)
	}
	sb.WriteString(" {\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(sb, "%s:\n", b.Name)
		for i := range b.Instrs {
			fmt.Fprintf(sb, "  %s\n", b.Instrs[i].String())
		}
		switch b.Term.Kind {
		case TermBr:
			fmt.Fprintf(sb, "  br %s\n", f.Blocks[b.Term.Then].Name)
		case TermCondBr:
			fmt.Fprintf(sb, "  br %s, %s, %s\n", b.Term.Cond,
				f.Blocks[b.Term.Then].Name, f.Blocks[b.Term.Else].Name)
		case TermRet:
			if b.Term.HasVal {
				fmt.Fprintf(sb, "  ret %s\n", b.Term.Cond)
			} else {
				sb.WriteString("  ret\n")
			}
		}
	}
	sb.WriteString("}\n")
}
