package opt_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/instrument"
	"dangsan/internal/interp"
	"dangsan/internal/ir"
	"dangsan/internal/ir/opt"
	"dangsan/internal/irgen"
	"dangsan/internal/irparse"
)

// fingerprint is everything observable about one run that optimization
// must not change: program output, return value, detector verdict (trap),
// leak count, the detector's invalidation count, and the final contents of
// every oracle-tracked memory cell. All four variants run under the same
// detector, so allocation addresses coincide and cells compare directly.
type fingerprint struct {
	Out         string
	Ret         uint64
	Trap        string
	Live        uint64
	Invalidated uint64
	Cells       []uint64
}

func runVariant(t *testing.T, prog *irgen.Program, build func(m *ir.Module) error) fingerprint {
	t.Helper()
	m, err := irparse.Parse(prog.Source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := build(m); err != nil {
		t.Fatalf("build variant: %v", err)
	}
	det := dangsan.New()
	var out bytes.Buffer
	rt := interp.New(m, det, interp.Options{Output: &out})
	res, err := rt.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	fp := fingerprint{
		Out:         out.String(),
		Ret:         res.Ret,
		Live:        rt.Process().Allocator().Stats().LiveObjects,
		Invalidated: det.Stats().Invalidated,
	}
	if res.Trap != nil {
		// Compare the fault (kind + address), not the full trap string: the
		// optimizer renumbers registers, so the trapping instruction's text
		// legitimately differs across variants.
		if res.Trap.Fault != nil {
			fp.Trap = res.Trap.Fault.Error()
		} else {
			fp.Trap = fmt.Sprintf("trap: %v", res.Trap.Err)
		}
	}
	as := rt.Process().AddressSpace()
	for slot := 0; slot < prog.NumSlots; slot++ {
		v, f := as.LoadWord(irgen.SlotAddr(slot))
		if f != nil {
			t.Fatalf("slot %d: %v", slot, f)
		}
		fp.Cells = append(fp.Cells, v)
	}
	for _, lo := range prog.Oracle.Live {
		base, f := as.LoadWord(irgen.SlotAddr(lo.AnchorSlot))
		if f != nil {
			t.Fatalf("anchor %d: %v", lo.AnchorSlot, f)
		}
		for off := uint64(0); off < lo.Size; off += 8 {
			v, f := as.LoadWord(base + off)
			if f != nil {
				t.Fatalf("obj %d+%d: %v", lo.ID, off, f)
			}
			fp.Cells = append(fp.Cells, v)
		}
	}
	return fp
}

// TestInstrumentationEquivalence sweeps generated programs through four
// pipeline variants — unoptimized instrumentation, instrumentation with its
// own static optimizations (hoisting, elision), ir/opt before
// instrumentation (the paper's LTO order), and ir/opt after — and requires
// bit-identical observable state under the dangsan detector. This is the
// targeted form of the cross-mode axis in internal/differ: any hoist or
// elision that drops, duplicates, or reorders a registration in a way that
// changes invalidation shows up as a fingerprint mismatch.
//
// The sweep is single-threaded only: spawned threads run as goroutines, so
// heap allocation order — and therefore every absolute pointer value — is
// scheduler-dependent in threaded programs and cannot be compared across
// variants bit for bit. Cross-mode equivalence for threaded programs is
// covered by internal/differ, which checks oracle-relative state instead.
func TestInstrumentationEquivalence(t *testing.T) {
	seeds := int64(400)
	if testing.Short() {
		seeds = 200
	}
	variants := []struct {
		name  string
		build func(m *ir.Module) error
	}{
		{"instr-plain", func(m *ir.Module) error {
			_, err := instrument.Pass(m, instrument.Options{})
			return err
		}},
		{"instr-static-opts", func(m *ir.Module) error {
			_, err := instrument.Pass(m, instrument.DefaultOptions())
			return err
		}},
		{"opt-then-instr", func(m *ir.Module) error {
			if _, err := opt.Optimize(m); err != nil {
				return err
			}
			_, err := instrument.Pass(m, instrument.DefaultOptions())
			return err
		}},
		{"instr-then-opt", func(m *ir.Module) error {
			if _, err := instrument.Pass(m, instrument.DefaultOptions()); err != nil {
				return err
			}
			_, err := opt.Optimize(m)
			return err
		}},
	}
	for seed := int64(0); seed < seeds; seed++ {
		cfg := irgen.Config{Mutate: seed%7 == 3}
		prog := irgen.Generate(seed, cfg)
		ref := runVariant(t, prog, variants[0].build)
		for _, v := range variants[1:] {
			got := runVariant(t, prog, v.build)
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("seed %d: %s diverges from %s:\n got %s\nwant %s\nsource:\n%s",
					seed, v.name, variants[0].name, describe(got, ref), describe(ref, got), prog.Source)
			}
		}
	}
}

// describe renders the fields of a that differ from b.
func describe(a, b fingerprint) string {
	var s string
	if a.Out != b.Out {
		s += fmt.Sprintf(" out=%q", a.Out)
	}
	if a.Ret != b.Ret {
		s += fmt.Sprintf(" ret=%d", a.Ret)
	}
	if a.Trap != b.Trap {
		s += fmt.Sprintf(" trap=%q", a.Trap)
	}
	if a.Live != b.Live {
		s += fmt.Sprintf(" live=%d", a.Live)
	}
	if a.Invalidated != b.Invalidated {
		s += fmt.Sprintf(" invalidated=%d", a.Invalidated)
	}
	for i := range a.Cells {
		if i < len(b.Cells) && a.Cells[i] != b.Cells[i] {
			s += fmt.Sprintf(" cell[%d]=0x%x", i, a.Cells[i])
		}
	}
	if s == "" {
		s = " (equal)"
	}
	return s
}

// TestOptimizerPreservesRegPtr guards the invariant the equivalence sweep
// relies on: ir/opt must treat RegPtr as a side-effecting use and never
// delete it, even when its operands look dead.
func TestOptimizerPreservesRegPtr(t *testing.T) {
	src := `
func main() i64 {
entry:
  r1 = malloc 16
  r2 = gep r1, 8
  regptr [r2], r1
  free r1
  ret 0
}`
	m, err := irparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Optimize(m); err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, ins := range b.Instrs {
				if ins.Op == ir.OpRegPtr {
					count++
				}
			}
		}
	}
	if count != 1 {
		t.Fatalf("optimizer left %d regptr instructions, want 1", count)
	}
}
