package opt_test

import (
	"strings"
	"testing"

	"dangsan/internal/detectors"
	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/instrument"
	"dangsan/internal/interp"
	"dangsan/internal/ir"
	"dangsan/internal/ir/opt"
	"dangsan/internal/irparse"
)

func mustParse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := irparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func countInstrs(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

func TestConstantFolding(t *testing.T) {
	m := mustParse(t, `
func main() i64 {
entry:
  r0 = mov 6
  r1 = mov 7
  r2 = mul r0, r1
  r3 = add r2, 0x100
  r4 = icmp lt r3, 1000
  ret r3
}`)
	res, err := opt.Optimize(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Folded < 2 {
		t.Fatalf("folded = %d", res.Folded)
	}
	// The return value must be computable without arithmetic: after
	// folding + DCE only movs (or nothing) remain.
	for _, b := range m.Funcs["main"].Blocks {
		for i := range b.Instrs {
			if op := b.Instrs[i].Op; op != ir.OpMov {
				t.Fatalf("non-mov instruction survived: %s", b.Instrs[i].String())
			}
		}
	}
	r, err := interp.New(m, detectors.None{}, interp.Options{}).Run()
	if err != nil || r.Trap != nil {
		t.Fatal(err, r.Trap)
	}
	if r.Ret != 6*7+0x100 {
		t.Fatalf("ret = %d", r.Ret)
	}
}

func TestDeadCodeElimination(t *testing.T) {
	m := mustParse(t, `
func main() i64 {
entry:
  r0 = mov 1
  r1 = add r0, 2     ; dead: r1 never read
  r2 = mov 42
  ret r2
}`)
	res, err := opt.Optimize(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Eliminated == 0 {
		t.Fatal("nothing eliminated")
	}
	r, _ := interp.New(m, detectors.None{}, interp.Options{}).Run()
	if r.Ret != 42 {
		t.Fatalf("ret = %d", r.Ret)
	}
}

func TestDivByZeroNotRemoved(t *testing.T) {
	// A dead div with an unknown (or zero) divisor may trap: it must stay.
	m := mustParse(t, `
func main() i64 {
entry:
  r0 = mov 0
  r1 = div 5, r0     ; result unused, but traps
  ret 1
}`)
	if _, err := opt.Optimize(m); err != nil {
		t.Fatal(err)
	}
	r, _ := interp.New(m, detectors.None{}, interp.Options{}).Run()
	if r.Trap == nil || !strings.Contains(r.Trap.Err.Error(), "division by zero") {
		t.Fatalf("trap = %v", r.Trap)
	}
}

func TestLoadsNotRemoved(t *testing.T) {
	// A dead load may fault (that is how UAF detection surfaces): keep it.
	m := mustParse(t, `
func main() i64 {
entry:
  r0 = mov 0
  r1 = load i64 [r0]   ; dead result, but faults on NULL
  ret 1
}`)
	if _, err := opt.Optimize(m); err != nil {
		t.Fatal(err)
	}
	r, _ := interp.New(m, detectors.None{}, interp.Options{}).Run()
	if r.Trap == nil || r.Trap.Fault == nil {
		t.Fatalf("trap = %v", r.Trap)
	}
}

func TestBranchFoldingAndUnreachable(t *testing.T) {
	m := mustParse(t, `
func main() i64 {
entry:
  r0 = mov 1
  br r0, yes, no
yes:
  ret 10
no:
  ret 20
}`)
	res, err := opt.Optimize(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksRemoved == 0 {
		t.Fatal("unreachable block kept")
	}
	r, _ := interp.New(m, detectors.None{}, interp.Options{}).Run()
	if r.Ret != 10 {
		t.Fatalf("ret = %d", r.Ret)
	}
}

func TestBlockMerging(t *testing.T) {
	m := mustParse(t, `
func main() i64 {
entry:
  r0 = mov 5
  br middle
middle:
  r1 = add r0, 1
  br tail
tail:
  ret r1
}`)
	if _, err := opt.Optimize(m); err != nil {
		t.Fatal(err)
	}
	if n := len(m.Funcs["main"].Blocks); n != 1 {
		t.Fatalf("blocks = %d, want 1 after merging", n)
	}
	r, _ := interp.New(m, detectors.None{}, interp.Options{}).Run()
	if r.Ret != 6 {
		t.Fatalf("ret = %d", r.Ret)
	}
}

func TestRegPtrHooksPreserved(t *testing.T) {
	// Instrument first, optimize second: the hooks are side-effecting and
	// must survive, and protection must still work.
	src := `
global slot 8
func main() i64 {
entry:
  r0 = malloc 64
  r1 = global slot
  store ptr [r1], r0
  free r0
  r2 = load ptr [r1]
  r3 = load i64 [r2]
  ret r3
}`
	m := mustParse(t, src)
	if _, err := instrument.Pass(m, instrument.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Optimize(m); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range m.Funcs["main"].Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpRegPtr {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("optimizer removed the instrumentation hook")
	}
	r, err := interp.New(m, dangsan.New(), interp.Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Trap == nil || r.Trap.Fault == nil {
		t.Fatalf("optimized program lost protection: %v", r.Trap)
	}
}

// Semantic preservation on a real program: the linked-list example computes
// the same sum before and after optimization, under baseline and DangSan.
func TestSemanticPreservation(t *testing.T) {
	src := `
global head 8
func main() i64 {
entry:
  r9 = global head
  store ptr [r9], 0
  r0 = mov 0
  br build
build:
  r1 = icmp lt r0, 30
  br r1, body, sum
body:
  r2 = malloc 16
  r3 = load ptr [r9]
  store ptr [r2], r3
  r4 = gep r2, 8
  r5 = mul r0, 3
  store i64 [r4], r5
  store ptr [r9], r2
  r0 = add r0, 1
  br build
sum:
  r6 = mov 0
  r7 = load ptr [r9]
  br loop
loop:
  r8 = icmp ne r7, 0
  br r8, sbody, done
sbody:
  r10 = gep r7, 8
  r11 = load i64 [r10]
  r6 = add r6, r11
  r12 = load ptr [r7]
  free r7
  r7 = mov r12
  br loop
done:
  ret r6
}`
	want := uint64(0)
	for i := 0; i < 30; i++ {
		want += uint64(i * 3)
	}
	for _, optimize := range []bool{false, true} {
		m := mustParse(t, src)
		if _, err := instrument.Pass(m, instrument.DefaultOptions()); err != nil {
			t.Fatal(err)
		}
		if optimize {
			if _, err := opt.Optimize(m); err != nil {
				t.Fatal(err)
			}
		}
		for _, det := range []func() detectorsDetector{newNone, newDangSan} {
			r, err := interp.New(m, det(), interp.Options{}).Run()
			if err != nil || r.Trap != nil {
				t.Fatalf("optimize=%v: %v %v", optimize, err, r.Trap)
			}
			if r.Ret != want {
				t.Fatalf("optimize=%v: ret = %d, want %d", optimize, r.Ret, want)
			}
		}
	}
}

type detectorsDetector = detectors.Detector

func newNone() detectorsDetector    { return detectors.None{} }
func newDangSan() detectorsDetector { return dangsan.New() }
