// Package opt implements classic scalar and control-flow optimizations for
// the IR: constant folding, dead code elimination, and CFG simplification.
// They model the "link-time optimization" environment the paper's pass runs
// in (DangSan instruments LLVM bitcode at -O2/LTO): the instrumentation
// pass sees optimized code, and the optimizer must preserve the RegPtr
// hooks and the memory behaviour the detectors observe.
//
// Run the optimizer before instrumentation, as DangSan does; running it
// after is also safe because RegPtr instructions are treated as
// side-effecting uses of their operands.
package opt

import (
	"dangsan/internal/ir"
	"dangsan/internal/ir/analysis"
)

// Result summarizes what the pipeline changed.
type Result struct {
	// Folded counts instructions replaced by constants.
	Folded int
	// Eliminated counts dead instructions removed.
	Eliminated int
	// BlocksRemoved counts unreachable or merged-away blocks.
	BlocksRemoved int
}

// Optimize runs the pipeline to a fixed point (bounded) and re-finalizes
// the module.
func Optimize(m *ir.Module) (Result, error) {
	var total Result
	for round := 0; round < 8; round++ {
		var r Result
		for _, f := range m.Funcs {
			r.Folded += foldConstants(f)
			r.Eliminated += eliminateDead(f)
			r.BlocksRemoved += simplifyCFG(f)
		}
		total.Folded += r.Folded
		total.Eliminated += r.Eliminated
		total.BlocksRemoved += r.BlocksRemoved
		if r == (Result{}) {
			break
		}
	}
	if err := m.Finalize(); err != nil {
		return total, err
	}
	return total, nil
}

// evalBin computes a binary op over constants; ok=false for traps (division
// by zero) which must stay as runtime instructions.
func evalBin(op ir.Op, a, b uint64) (uint64, bool) {
	switch op {
	case ir.OpAdd, ir.OpGep:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case ir.OpRem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpShl:
		return a << (b & 63), true
	case ir.OpShr:
		return a >> (b & 63), true
	default:
		return 0, false
	}
}

func evalCmp(p ir.Pred, a, b uint64) uint64 {
	var r bool
	switch p {
	case ir.PredEQ:
		r = a == b
	case ir.PredNE:
		r = a != b
	case ir.PredLT:
		r = a < b
	case ir.PredLE:
		r = a <= b
	case ir.PredGT:
		r = a > b
	case ir.PredGE:
		r = a >= b
	case ir.PredSLT:
		r = int64(a) < int64(b)
	case ir.PredSGT:
		r = int64(a) > int64(b)
	}
	if r {
		return 1
	}
	return 0
}

// foldConstants performs local constant propagation and folding within each
// block: it tracks registers currently known to hold constants and
// rewrites instructions whose operands are all known.
func foldConstants(f *ir.Func) int {
	folded := 0
	for _, b := range f.Blocks {
		known := map[int]uint64{}
		resolve := func(v ir.Value) ir.Value {
			if v.IsReg {
				if c, ok := known[v.Reg]; ok {
					return ir.C(c)
				}
			}
			return v
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			in.A = resolve(in.A)
			in.B = resolve(in.B)
			for j := range in.Args {
				in.Args[j] = resolve(in.Args[j])
			}
			switch in.Op {
			case ir.OpMov:
				if !in.A.IsReg {
					known[in.Dst] = in.A.Imm
					continue
				}
			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpAnd,
				ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpGep:
				if !in.A.IsReg && !in.B.IsReg {
					if v, ok := evalBin(in.Op, in.A.Imm, in.B.Imm); ok {
						*in = ir.Instr{Op: ir.OpMov, Dst: in.Dst, A: ir.C(v)}
						known[in.Dst] = v
						folded++
						continue
					}
				}
			case ir.OpICmp:
				if !in.A.IsReg && !in.B.IsReg {
					v := evalCmp(in.Pred, in.A.Imm, in.B.Imm)
					*in = ir.Instr{Op: ir.OpMov, Dst: in.Dst, A: ir.C(v)}
					known[in.Dst] = v
					folded++
					continue
				}
			}
			// Any other definition invalidates knowledge of Dst.
			if in.Dst >= 0 {
				delete(known, in.Dst)
			}
		}
		if b.Term.Kind == ir.TermCondBr {
			b.Term.Cond = resolve(b.Term.Cond)
		}
		if b.Term.Kind == ir.TermRet && b.Term.HasVal {
			b.Term.Cond = resolve(b.Term.Cond)
		}
	}
	return folded
}

// hasSideEffects reports whether removing the instruction could change
// program behaviour even if its result is unused.
func hasSideEffects(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpMov, ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr,
		ir.OpXor, ir.OpShl, ir.OpShr, ir.OpICmp, ir.OpGep, ir.OpGlobal:
		return false
	case ir.OpDiv, ir.OpRem:
		// May trap on a zero divisor; only removable when the divisor is a
		// nonzero constant.
		return in.B.IsReg || in.B.Imm == 0
	default:
		// Loads can fault; stores, calls, allocation, RegPtr, print, spawn
		// and join all have effects.
		return true
	}
}

// eliminateDead removes pure instructions whose destination is never read
// before being redefined, using a backward liveness analysis over the CFG.
func eliminateDead(f *ir.Func) int {
	cfg := analysis.BuildCFG(f)
	n := len(f.Blocks)

	// Per-block use/def (use = read before any write in the block).
	use := make([]map[int]bool, n)
	def := make([]map[int]bool, n)
	addUse := func(i int, v ir.Value, defs map[int]bool) {
		if v.IsReg && !defs[v.Reg] {
			use[i][v.Reg] = true
		}
	}
	for i, b := range f.Blocks {
		use[i] = map[int]bool{}
		def[i] = map[int]bool{}
		for j := range b.Instrs {
			in := &b.Instrs[j]
			addUse(i, in.A, def[i])
			addUse(i, in.B, def[i])
			for _, a := range in.Args {
				addUse(i, a, def[i])
			}
			if in.Dst >= 0 {
				def[i][in.Dst] = true
			}
		}
		if b.Term.Kind == ir.TermCondBr || (b.Term.Kind == ir.TermRet && b.Term.HasVal) {
			addUse(i, b.Term.Cond, def[i])
		}
	}

	// liveOut[i] via iteration to a fixed point.
	liveOut := make([]map[int]bool, n)
	liveIn := make([]map[int]bool, n)
	for i := range liveOut {
		liveOut[i] = map[int]bool{}
		liveIn[i] = map[int]bool{}
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			out := map[int]bool{}
			for _, s := range cfg.Succs[i] {
				for r := range liveIn[s] {
					out[r] = true
				}
			}
			in := map[int]bool{}
			for r := range use[i] {
				in[r] = true
			}
			for r := range out {
				if !def[i][r] {
					in[r] = true
				}
			}
			if len(out) != len(liveOut[i]) || len(in) != len(liveIn[i]) {
				changed = true
			} else {
				for r := range in {
					if !liveIn[i][r] {
						changed = true
						break
					}
				}
			}
			liveOut[i], liveIn[i] = out, in
		}
	}

	// Backward sweep per block, removing dead pure definitions.
	removed := 0
	for i, b := range f.Blocks {
		live := map[int]bool{}
		for r := range liveOut[i] {
			live[r] = true
		}
		if b.Term.Kind == ir.TermCondBr || (b.Term.Kind == ir.TermRet && b.Term.HasVal) {
			if b.Term.Cond.IsReg {
				live[b.Term.Cond.Reg] = true
			}
		}
		keep := make([]ir.Instr, 0, len(b.Instrs))
		for j := len(b.Instrs) - 1; j >= 0; j-- {
			in := b.Instrs[j]
			dead := in.Dst >= 0 && !live[in.Dst] && !hasSideEffects(&in)
			if dead {
				removed++
				continue
			}
			if in.Dst >= 0 {
				delete(live, in.Dst)
			}
			mark := func(v ir.Value) {
				if v.IsReg {
					live[v.Reg] = true
				}
			}
			mark(in.A)
			mark(in.B)
			for _, a := range in.Args {
				mark(a)
			}
			keep = append(keep, in)
		}
		// Reverse keep.
		for l, r := 0, len(keep)-1; l < r; l, r = l+1, r-1 {
			keep[l], keep[r] = keep[r], keep[l]
		}
		b.Instrs = keep
	}
	return removed
}

// simplifyCFG folds constant conditional branches, merges trivial
// straight-line block pairs, and drops unreachable blocks.
func simplifyCFG(f *ir.Func) int {
	// Fold condbr on constants.
	for _, b := range f.Blocks {
		if b.Term.Kind == ir.TermCondBr && !b.Term.Cond.IsReg {
			t := b.Term.Then
			if b.Term.Cond.Imm == 0 {
				t = b.Term.Else
			}
			b.Term = ir.Terminator{Kind: ir.TermBr, Then: t}
		}
		if b.Term.Kind == ir.TermCondBr && b.Term.Then == b.Term.Else {
			b.Term = ir.Terminator{Kind: ir.TermBr, Then: b.Term.Then}
		}
	}
	// Merge b -> s when b ends in an unconditional branch to s and s has
	// exactly one predecessor (and is not the entry).
	cfg := analysis.BuildCFG(f)
	for i, b := range f.Blocks {
		if b.Term.Kind != ir.TermBr {
			continue
		}
		s := b.Term.Then
		if s == 0 || s == i || len(cfg.Preds[s]) != 1 {
			continue
		}
		succ := f.Blocks[s]
		b.Instrs = append(b.Instrs, succ.Instrs...)
		b.Term = succ.Term
		succ.Instrs = nil
		succ.Term = ir.Terminator{Kind: ir.TermBr, Then: i} // will become unreachable
		cfg = analysis.BuildCFG(f)                          // conservative refresh
	}
	// Drop unreachable blocks, remapping indices.
	reachable := map[int]bool{}
	stack := []int{0}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reachable[x] {
			continue
		}
		reachable[x] = true
		stack = append(stack, f.Blocks[x].Succs()...)
	}
	if len(reachable) == len(f.Blocks) {
		return 0
	}
	remap := make([]int, len(f.Blocks))
	var kept []*ir.Block
	for i, b := range f.Blocks {
		if reachable[i] {
			remap[i] = len(kept)
			kept = append(kept, b)
		}
	}
	removed := len(f.Blocks) - len(kept)
	for _, b := range kept {
		switch b.Term.Kind {
		case ir.TermBr:
			b.Term.Then = remap[b.Term.Then]
		case ir.TermCondBr:
			b.Term.Then = remap[b.Term.Then]
			b.Term.Else = remap[b.Term.Else]
		}
	}
	f.Blocks = kept
	return removed
}
