// Package ir defines a small typed intermediate representation standing in
// for LLVM bitcode. It exists so that the DangSan pointer-tracker pass
// (internal/instrument) can be implemented as a real compiler pass: it sees
// typed store instructions, a control-flow graph, loops and a call graph —
// the same information the paper's LLVM pass consumes — and decides where
// to insert registerptr calls (the RegPtr instruction) and where the static
// optimizations of §6 allow eliding them.
//
// The IR is a register machine (registers are mutable, no SSA/phi) with two
// value types, I64 and Ptr. Programs are interpreted by internal/interp on
// top of the simulated process runtime.
package ir

import "fmt"

// Type is a value type.
type Type uint8

const (
	// I64 is a 64-bit integer.
	I64 Type = iota
	// Ptr is a pointer. Stores of Ptr-typed values are what the pointer
	// tracker instruments.
	Ptr
	// Void is the return type of functions that return nothing.
	Void
)

func (t Type) String() string {
	switch t {
	case I64:
		return "i64"
	case Ptr:
		return "ptr"
	case Void:
		return "void"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Op is an instruction opcode.
type Op uint8

const (
	// OpMov: dst = a.
	OpMov Op = iota
	// OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr:
	// dst = a <op> b (i64 arithmetic).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	// OpICmp: dst = a <pred> b (0 or 1).
	OpICmp
	// OpGep: dst = a + b, pointer arithmetic (a: Ptr, b: I64, dst: Ptr).
	OpGep
	// OpLoad: dst = *(a); LoadType gives the loaded type.
	OpLoad
	// OpStore: *(a) = b; StoreType gives b's type. Stores with StoreType
	// Ptr are candidates for instrumentation.
	OpStore
	// OpRegPtr: runtime hook registerptr(loc=a, val=b). Inserted by the
	// instrumentation pass; never written by hand.
	OpRegPtr
	// OpAlloca: dst = address of Size fresh stack bytes.
	OpAlloca
	// OpGlobal: dst = address of the named global (resolved at link time).
	OpGlobal
	// OpMalloc: dst = malloc(a).
	OpMalloc
	// OpFree: free(a).
	OpFree
	// OpRealloc: dst = realloc(a, b).
	OpRealloc
	// OpCall: dst = Callee(Args...).
	OpCall
	// OpSpawn: dst = handle of a new thread running Callee(Args...).
	OpSpawn
	// OpJoin: join the thread whose handle is a.
	OpJoin
	// OpPrint: print a (debugging aid for example programs).
	OpPrint
)

var opNames = map[Op]string{
	OpMov: "mov", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpRem: "rem", OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl",
	OpShr: "shr", OpICmp: "icmp", OpGep: "gep", OpLoad: "load",
	OpStore: "store", OpRegPtr: "regptr", OpAlloca: "alloca",
	OpGlobal: "global", OpMalloc: "malloc", OpFree: "free",
	OpRealloc: "realloc", OpCall: "call", OpSpawn: "spawn", OpJoin: "join",
	OpPrint: "print",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Pred is an integer comparison predicate for OpICmp.
type Pred uint8

const (
	// PredEQ etc. follow the usual comparison semantics on uint64 values
	// except PredSLT/PredSGT which compare as signed.
	PredEQ Pred = iota
	PredNE
	PredLT
	PredLE
	PredGT
	PredGE
	PredSLT
	PredSGT
)

var predNames = map[Pred]string{
	PredEQ: "eq", PredNE: "ne", PredLT: "lt", PredLE: "le",
	PredGT: "gt", PredGE: "ge", PredSLT: "slt", PredSGT: "sgt",
}

func (p Pred) String() string {
	if s, ok := predNames[p]; ok {
		return s
	}
	return fmt.Sprintf("pred(%d)", uint8(p))
}

// Value is an instruction operand: a register or an immediate constant.
type Value struct {
	// IsReg selects between Reg and Imm.
	IsReg bool
	// Reg is the register number when IsReg.
	Reg int
	// Imm is the constant when !IsReg.
	Imm uint64
}

// R makes a register operand.
func R(n int) Value { return Value{IsReg: true, Reg: n} }

// C makes a constant operand.
func C(v uint64) Value { return Value{Imm: v} }

func (v Value) String() string {
	if v.IsReg {
		return fmt.Sprintf("r%d", v.Reg)
	}
	return fmt.Sprintf("%d", v.Imm)
}

// Instr is one instruction. Fields are used according to Op; unused fields
// are zero.
type Instr struct {
	Op Op
	// Dst is the destination register (-1 when none).
	Dst int
	// A and B are the operands.
	A, B Value
	// Pred applies to OpICmp.
	Pred Pred
	// LoadType/StoreType give the value type for OpLoad/OpStore.
	LoadType  Type
	StoreType Type
	// Size applies to OpAlloca.
	Size uint64
	// Name is the callee for OpCall/OpSpawn and the symbol for OpGlobal.
	Name string
	// Args are the call/spawn arguments.
	Args []Value
	// NoCheck marks an OpLoad/OpStore whose dereference check the
	// instrumentation pass elided (internal/instrument, ElideDerefChecks):
	// the address was proved to target a live object, so a
	// checked-dereference detector may skip validating it. Metadata only —
	// it does not appear in the textual form, and dropping it is always
	// safe (the access is merely checked again).
	NoCheck bool
}

func (in *Instr) String() string {
	switch in.Op {
	case OpStore:
		return fmt.Sprintf("store %s [%s], %s", in.StoreType, in.A, in.B)
	case OpRegPtr:
		return fmt.Sprintf("regptr [%s], %s", in.A, in.B)
	case OpLoad:
		return fmt.Sprintf("r%d = load %s [%s]", in.Dst, in.LoadType, in.A)
	case OpICmp:
		return fmt.Sprintf("r%d = icmp %s %s, %s", in.Dst, in.Pred, in.A, in.B)
	case OpAlloca:
		return fmt.Sprintf("r%d = alloca %d", in.Dst, in.Size)
	case OpGlobal:
		return fmt.Sprintf("r%d = global %s", in.Dst, in.Name)
	case OpMalloc:
		return fmt.Sprintf("r%d = malloc %s", in.Dst, in.A)
	case OpFree:
		return fmt.Sprintf("free %s", in.A)
	case OpRealloc:
		return fmt.Sprintf("r%d = realloc %s, %s", in.Dst, in.A, in.B)
	case OpCall, OpSpawn:
		s := fmt.Sprintf("%s %s(", in.Op, in.Name)
		for i, a := range in.Args {
			if i > 0 {
				s += ", "
			}
			s += a.String()
		}
		s += ")"
		if in.Dst >= 0 {
			s = fmt.Sprintf("r%d = %s", in.Dst, s)
		}
		return s
	case OpJoin:
		return fmt.Sprintf("join %s", in.A)
	case OpPrint:
		return fmt.Sprintf("print %s", in.A)
	case OpMov:
		return fmt.Sprintf("r%d = mov %s", in.Dst, in.A)
	default:
		return fmt.Sprintf("r%d = %s %s, %s", in.Dst, in.Op, in.A, in.B)
	}
}

// TermKind distinguishes block terminators.
type TermKind uint8

const (
	// TermBr is an unconditional branch.
	TermBr TermKind = iota
	// TermCondBr branches on a condition value.
	TermCondBr
	// TermRet returns from the function.
	TermRet
)

// Terminator ends a basic block.
type Terminator struct {
	Kind TermKind
	// Cond is the condition for TermCondBr; the returned value for TermRet
	// (HasVal selects whether a value is returned).
	Cond   Value
	HasVal bool
	// Then and Else are successor block indices (Then also serves TermBr).
	Then, Else int
}

// Block is a basic block.
type Block struct {
	// Name labels the block in the textual form.
	Name string
	// Index is the block's position in its function.
	Index  int
	Instrs []Instr
	Term   Terminator
}

// Param is a function parameter; parameter i occupies register i on entry.
type Param struct {
	Name string
	Type Type
}

// Func is a function.
type Func struct {
	Name   string
	Params []Param
	Ret    Type
	Blocks []*Block
	// NumRegs is the register frame size (max register index + 1).
	NumRegs int
}

// Global is a module-level variable of Size bytes in the globals segment.
type Global struct {
	Name string
	Size uint64
}

// Module is a compilation unit.
type Module struct {
	Funcs   map[string]*Func
	Globals []Global
}

// NewModule creates an empty module.
func NewModule() *Module {
	return &Module{Funcs: make(map[string]*Func)}
}

// Succs returns the successor block indices of b.
func (b *Block) Succs() []int {
	switch b.Term.Kind {
	case TermBr:
		return []int{b.Term.Then}
	case TermCondBr:
		if b.Term.Then == b.Term.Else {
			return []int{b.Term.Then}
		}
		return []int{b.Term.Then, b.Term.Else}
	default:
		return nil
	}
}
