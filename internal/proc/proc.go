// Package proc models a C-like process running over the simulated address
// space: a shared heap behind the tcmalloc allocator, per-thread stacks, a
// globals segment, and pointer-aware store/load operations.
//
// The runtime plays the role of the instrumented binary in the paper's
// Figure 1. StorePtr corresponds to a pointer-typed store instruction that
// the pointer-tracker compiler pass instrumented: the store executes, then
// the detector's OnPtrStore hook runs (the inserted registerptr call).
// Malloc/Free/Realloc correspond to the allocator calls the heap tracker
// hooks. Workloads written directly against this API — or IR programs run
// by internal/interp — exercise exactly the event stream a DangSan-protected
// C program generates.
package proc

import (
	"fmt"
	"sync"

	"dangsan/internal/detectors"
	"dangsan/internal/faultinject"
	"dangsan/internal/obs"
	"dangsan/internal/tcmalloc"
	"dangsan/internal/vmem"
)

// ExhaustedError reports exhaustion of a fixed process resource (globals
// segment, a thread stack). The infallible AllocGlobal/Alloca panic with
// this value; TryAllocGlobal/TryAlloca return it, so workloads that want to
// survive pressure can.
type ExhaustedError struct {
	Resource string // "globals" or "stack"
	Tid      int32  // thread id for stack exhaustion, -1 otherwise
	Size     uint64 // the request that did not fit
}

func (e *ExhaustedError) Error() string {
	if e.Resource == "stack" {
		return fmt.Sprintf("proc: thread %d stack overflow allocating %d bytes", e.Tid, e.Size)
	}
	return fmt.Sprintf("proc: %s segment exhausted allocating %d bytes", e.Resource, e.Size)
}

// Process is one simulated process: address space, allocator, detector.
type Process struct {
	as    *vmem.AddressSpace
	alloc *tcmalloc.Allocator
	det   detectors.Detector

	mu          sync.Mutex
	nextTID     int32
	globalsBump uint64

	// memcpyHook, when non-nil, receives every Memcpy (and realloc move)
	// so the detector can re-register copied pointers (§7 extension).
	memcpyHook detectors.MemcpyHooker
	// threadAware, when non-nil, is det's per-thread fast-path interface:
	// pointer stores are routed through it with the storing thread's
	// context instead of the plain OnPtrStore hook.
	threadAware detectors.ThreadAware
	// derefChk, when non-nil, is det's checked-dereference interface: every
	// address-consuming operation (load, store, free, realloc, memcpy)
	// validates its address first and the operation traps instead of
	// touching freed memory. Nil for the invalidation-based backends, which
	// keep their zero-cost access path.
	derefChk detectors.DerefChecker
	// tagger, when non-nil, is det's pointer-tagging interface (implies
	// derefChk): malloc returns tagged pointers and checked operations
	// strip the tag before touching simulated memory.
	tagger detectors.TagChecker
	// zeroOnFree wipes object contents before release (secure
	// deallocation, the mitigation the paper cites for partial
	// type-unsafe reuse).
	zeroOnFree bool
	// tracer, when set, receives every traced operation (see trace.go).
	tracer TraceSink

	// met holds the per-operation counters; nil until AttachMetrics, so
	// the metrics-off hot path pays one predicted branch.
	met *procMetrics

	// deferred, when non-nil, is the detector's epoch-quarantine interface:
	// Free hands tracked objects to it instead of invalidating inline, and
	// their memory comes back through the release callback bound at
	// construction. Distinct from EnableQuarantine below, which is the
	// secure-allocator *defense* being modelled (and defeated) — this one
	// is a detector performance mechanism.
	deferred detectors.DeferredFree
	// releaseMu serializes the release thread cache, which epoch drains
	// (possibly on a background goroutine) use to return quarantined
	// memory.
	releaseMu sync.Mutex
	releaseTC *tcmalloc.ThreadCache

	// Quarantine state (see EnableQuarantine).
	quarantineLimit uint64
	quarantineMu    sync.Mutex
	quarantine      []quarantined
	quarantineSet   map[uint64]bool
	quarantineBytes uint64
}

// quarantined is one object parked in the free quarantine.
type quarantined struct {
	base uint64
	size uint64
}

// procMetrics bundles the process's per-operation counters, each sharded
// by thread id.
type procMetrics struct {
	mallocs   *obs.Counter
	frees     *obs.Counter
	reallocs  *obs.Counter
	ptrStores *obs.Counter
	intStores *obs.Counter
	loads     *obs.Counter
	memcpys   *obs.Counter
}

// AttachMetrics registers the process's instruments with reg — operation
// counters, a thread-count gauge — and forwards to the allocator and (when
// it supports it) the detector. Call before threads run; safe with nil.
func (p *Process) AttachMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	p.met = &procMetrics{
		mallocs:   reg.Counter("proc.mallocs"),
		frees:     reg.Counter("proc.frees"),
		reallocs:  reg.Counter("proc.reallocs"),
		ptrStores: reg.Counter("proc.ptr_stores"),
		intStores: reg.Counter("proc.int_stores"),
		loads:     reg.Counter("proc.loads"),
		memcpys:   reg.Counter("proc.memcpys"),
	}
	reg.RegisterFunc("proc.threads", func() int64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return int64(p.nextTID)
	})
	p.alloc.AttachMetrics(reg)
	if ma, ok := p.det.(interface{ AttachMetrics(*obs.Registry) }); ok {
		ma.AttachMetrics(reg)
	}
}

// New creates a process protected by the given detector (use
// detectors.None{} for the uninstrumented baseline).
func New(det detectors.Detector) *Process {
	return NewWithOptions(det, Options{})
}

// Options configures process creation beyond the detector.
type Options struct {
	// HeapBytes shrinks the heap reservation (0 means the standard 64 GiB
	// layout). Tests and chaos runs use tiny heaps so OutOfMemoryError is
	// reachable quickly.
	HeapBytes uint64
	// Faults, when non-nil, injects failures into the allocator's span,
	// central-list, and thread-cache paths and the heap's page mapping.
	// Detector-side injection is configured on the detector itself.
	Faults *faultinject.Plane
}

// NewWithOptions creates a process with a custom heap size and optional
// allocator-level fault injection.
func NewWithOptions(det detectors.Detector, opts Options) *Process {
	var as *vmem.AddressSpace
	if opts.HeapBytes > 0 {
		as = vmem.NewSized(opts.HeapBytes)
	} else {
		as = vmem.New()
	}
	if b, ok := det.(detectors.Binder); ok {
		b.Bind(as)
	}
	ta, _ := det.(detectors.ThreadAware)
	dc, _ := det.(detectors.DerefChecker)
	tg, _ := det.(detectors.TagChecker)
	alloc := tcmalloc.New(as.Heap())
	if opts.Faults != nil {
		alloc.InjectFaults(opts.Faults)
	}
	p := &Process{
		as:          as,
		alloc:       alloc,
		det:         det,
		threadAware: ta,
		derefChk:    dc,
		tagger:      tg,
		globalsBump: vmem.GlobalsBase,
	}
	if df, ok := det.(detectors.DeferredFree); ok {
		p.releaseTC = alloc.NewThreadCache()
		release := func(bases []uint64) (int, error) {
			p.releaseMu.Lock()
			defer p.releaseMu.Unlock()
			n, err := p.releaseTC.FreeBatch(bases)
			// Flush per batch so the returned memory reaches the central
			// lists — reusable by every thread, not parked in a cache no
			// thread owns.
			p.releaseTC.Flush()
			return n, err
		}
		if df.BindRelease(release) {
			p.deferred = df
		}
	}
	return p
}

// Quiesce drains the detector's deferred-free quarantine, if armed: every
// pending epoch retires, so invalidation and allocator accounting reach
// the state an inline-free run would be in. Call at end-of-run checkpoints
// before comparing LiveObjects or dangling-pointer state.
func (p *Process) Quiesce() {
	if p.deferred != nil {
		p.deferred.DrainQuarantine()
	}
}

// ReclaimMemory is the memory-pressure relief valve: drain the quarantine
// (quarantined spans are unusable until their epoch retires) and then
// return idle pages to the OS.
func (p *Process) ReclaimMemory() {
	p.Quiesce()
	p.alloc.ReleaseFreeMemory()
}

// EnableMemcpyHook turns on pointer re-registration on Memcpy and realloc
// moves, if the detector supports it (detectors.MemcpyHooker). It reports
// whether the hook is active.
func (p *Process) EnableMemcpyHook() bool {
	if h, ok := p.det.(detectors.MemcpyHooker); ok {
		p.memcpyHook = h
		return true
	}
	return false
}

// EnableZeroOnFree turns on secure deallocation: freed objects are wiped
// before their memory is released.
func (p *Process) EnableZeroOnFree() { p.zeroOnFree = true }

// EnableQuarantine turns the process into a secure-allocator configuration
// (the defense class of the paper's §9: DieHard(er), Cling, ASan): freed
// objects are parked in a FIFO quarantine and only really released once the
// quarantine exceeds the byte limit, delaying memory reuse. The paper's §1
// point — and the HeapSpray exploit workload — is that an attacker defeats
// this by spraying allocations until the victim chunk is flushed out and
// reused.
func (p *Process) EnableQuarantine(limitBytes uint64) {
	p.quarantineLimit = limitBytes
	p.quarantineSet = make(map[uint64]bool)
}

// QuarantinedBytes reports the bytes currently parked in quarantine.
func (p *Process) QuarantinedBytes() uint64 {
	p.quarantineMu.Lock()
	defer p.quarantineMu.Unlock()
	return p.quarantineBytes
}

// enqueueQuarantine parks an object and returns any objects that must now
// really be freed to respect the limit.
func (p *Process) enqueueQuarantine(base, size uint64) ([]quarantined, error) {
	p.quarantineMu.Lock()
	defer p.quarantineMu.Unlock()
	if p.quarantineSet[base] {
		// Double free caught while the object sits in quarantine — the
		// immediate detection ASan's quarantine provides.
		return nil, &tcmalloc.DoubleFreeError{Addr: base}
	}
	p.quarantineSet[base] = true
	p.quarantine = append(p.quarantine, quarantined{base: base, size: size})
	p.quarantineBytes += size
	var evict []quarantined
	for p.quarantineBytes > p.quarantineLimit && len(p.quarantine) > 0 {
		q := p.quarantine[0]
		p.quarantine = p.quarantine[1:]
		p.quarantineBytes -= q.size
		delete(p.quarantineSet, q.base)
		evict = append(evict, q)
	}
	return evict, nil
}

// FlushQuarantine releases every quarantined object immediately (process
// teardown, tests).
func (th *Thread) FlushQuarantine() error {
	p := th.proc
	p.quarantineMu.Lock()
	pending := p.quarantine
	p.quarantine = nil
	p.quarantineSet = make(map[uint64]bool)
	p.quarantineBytes = 0
	p.quarantineMu.Unlock()
	for _, q := range pending {
		if err := th.tc.Free(q.base); err != nil {
			return err
		}
	}
	return nil
}

// AddressSpace exposes the process's simulated memory.
func (p *Process) AddressSpace() *vmem.AddressSpace { return p.as }

// Allocator exposes the process's allocator (read-mostly: stats, usable
// size).
func (p *Process) Allocator() *tcmalloc.Allocator { return p.alloc }

// Detector returns the detector protecting this process.
func (p *Process) Detector() detectors.Detector { return p.det }

// UsableSize reports the allocator's usable size for the object at addr,
// accepting program-visible pointers: under a tagging detector the tag is
// stripped first, the way a tagging runtime interposes malloc_usable_size.
// Callers holding program pointers should use this, not the raw allocator.
func (p *Process) UsableSize(addr uint64) (uint64, bool) {
	return p.alloc.UsableSize(p.stripAddr(addr))
}

// checkAddr validates an address the program is about to use through the
// detector's checked-dereference interface, returning the address to
// actually access (tag stripped, for taggers). A non-nil fault is a
// detected use-after-free: the caller must not perform the access. For
// detectors without the capability this is a single nil check.
func (p *Process) checkAddr(addr uint64) (uint64, *vmem.Fault) {
	if p.derefChk == nil {
		return addr, nil
	}
	return p.derefChk.CheckDeref(addr)
}

// stripAddr removes a pointer tag without checking it, for accesses whose
// safety was proved statically (the instrumentation pass's elided checks)
// or operations nested inside an already-checked one.
func (p *Process) stripAddr(addr uint64) uint64 {
	if p.tagger != nil {
		return vmem.StripTag(addr)
	}
	return addr
}

// AllocGlobal carves n bytes (8-byte aligned) out of the globals segment,
// modelling a global variable. It panics with *ExhaustedError when the
// segment is full — global allocation happens at program load, where
// exhaustion is a configuration error; use TryAllocGlobal to handle it.
func (p *Process) AllocGlobal(n uint64) uint64 {
	addr, err := p.TryAllocGlobal(n)
	if err != nil {
		panic(err)
	}
	return addr
}

// TryAllocGlobal is AllocGlobal with the exhaustion case surfaced as a
// typed error instead of a panic.
func (p *Process) TryAllocGlobal(n uint64) (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	addr := (p.globalsBump + 7) &^ 7
	if addr+n > vmem.GlobalsBase+vmem.GlobalsSize {
		return 0, &ExhaustedError{Resource: "globals", Tid: -1, Size: n}
	}
	p.globalsBump = addr + n
	p.emit(TraceGlobal, -1, n, addr, 0)
	return addr, nil
}

// GlobalsUsed returns the allocated extent of the globals segment, for
// root scanning by the conservative collector (internal/gc).
func (p *Process) GlobalsUsed() (base, end uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return vmem.GlobalsBase, p.globalsBump
}

// StackUsed returns the live extent of this thread's stack, for root
// scanning by the conservative collector.
func (th *Thread) StackUsed() (base, end uint64) {
	return th.stackBase, th.stackBump
}

// MemoryFootprint reports the process's simulated resident memory plus the
// detector's metadata, the quantity the paper's memory-overhead figures
// compare ("mean/max RSS").
func (p *Process) MemoryFootprint() uint64 {
	return p.as.MappedBytes() + p.det.MetadataBytes()
}

// Thread is one simulated thread. Create with NewThread; each Thread must
// be used by a single goroutine. Thread IDs are dense and start at 0.
type Thread struct {
	proc      *Process
	id        int32
	tc        *tcmalloc.ThreadCache
	stackBase uint64
	stackEnd  uint64
	stackBump uint64
	// stackMapped is the end of the currently mapped stack prefix; pages
	// fault in lazily as Alloca grows past it.
	stackMapped uint64
	// noTrace suppresses event emission for operations nested inside a
	// compound traced operation (realloc's internal malloc/copy/free).
	noTrace bool
	// detCtx is the detector's per-thread fast-path state (nil when the
	// detector is not ThreadAware).
	detCtx detectors.ThreadContext
}

// emit reports a thread-scoped event unless suppressed.
func (th *Thread) emit(kind uint8, a, b, c uint64) {
	if !th.noTrace {
		th.proc.emit(kind, th.id, a, b, c)
	}
}

// NewThread registers a new thread: a thread id, an allocator cache and a
// lazily-growing stack.
func (p *Process) NewThread() *Thread {
	p.mu.Lock()
	id := p.nextTID
	p.nextTID++
	// Emit inside the lock so replay creates threads in id order.
	p.emit(TraceThreadStart, id, 0, 0, 0)
	p.mu.Unlock()
	base, top := p.as.StackRange(int(id))
	const initialPages = 4
	p.as.Stacks().MapPages(base, initialPages)
	th := &Thread{
		proc:        p,
		id:          id,
		tc:          p.alloc.NewThreadCache(),
		stackBase:   base,
		stackEnd:    top,
		stackBump:   base,
		stackMapped: base + initialPages*vmem.PageSize,
	}
	if p.threadAware != nil {
		th.detCtx = p.threadAware.NewThreadContext(id)
	}
	return th
}

// Exit releases the thread's allocator cache and unmaps its stack. The
// Thread must not be used afterwards.
func (th *Thread) Exit() {
	th.tc.Flush()
	th.proc.as.UnmapStack(int(th.id))
	th.proc.emit(TraceThreadExit, th.id, 0, 0, 0)
}

// ID returns the thread id.
func (th *Thread) ID() int32 { return th.id }

// Process returns the owning process.
func (th *Thread) Process() *Process { return th.proc }

// Alloca reserves n bytes (8-byte aligned) of this thread's stack,
// modelling stack variables. The reservation lives until FreeStack. It
// panics with *ExhaustedError on stack overflow, as a real process would
// fault; use TryAlloca to handle overflow gracefully.
func (th *Thread) Alloca(n uint64) uint64 {
	addr, err := th.TryAlloca(n)
	if err != nil {
		panic(err)
	}
	return addr
}

// TryAlloca is Alloca with the overflow case surfaced as a typed error
// instead of a panic.
func (th *Thread) TryAlloca(n uint64) (uint64, error) {
	addr := (th.stackBump + 7) &^ 7
	if addr+n > th.stackEnd {
		return 0, &ExhaustedError{Resource: "stack", Tid: th.id, Size: n}
	}
	th.emit(TraceAlloca, n, addr, 0)
	th.stackBump = addr + n
	if th.stackBump > th.stackMapped {
		grow := (th.stackBump - th.stackMapped + vmem.PageSize - 1) / vmem.PageSize
		th.proc.as.Stacks().MapPages(th.stackMapped, int(grow))
		th.stackMapped += grow * vmem.PageSize
	}
	return addr, nil
}

// StackMark returns the current stack height, for use with FreeStack.
func (th *Thread) StackMark() uint64 {
	th.emit(TraceStackMark, th.stackBump, 0, 0)
	return th.stackBump
}

// FreeStack pops the stack back to a mark returned by StackMark, modelling
// function return.
func (th *Thread) FreeStack(mark uint64) {
	th.emit(TraceFreeStack, mark, 0, 0)
	th.stackBump = mark
}

// Malloc allocates size bytes (plus the detector's pad) and notifies the
// detector. The returned address is the object base; under a
// pointer-tagging detector it carries the object's generation tag in its
// high bits, to be stripped and checked on every use.
func (th *Thread) Malloc(size uint64) (uint64, error) {
	p := th.proc
	base, err := th.tc.Malloc(size + p.det.AllocPad())
	if err != nil {
		return 0, err
	}
	usable, _ := p.alloc.UsableSize(base)
	align, _ := p.alloc.PageAlignOf(base)
	p.det.OnAlloc(base, usable, align)
	if p.met != nil {
		p.met.mallocs.Inc(th.id)
	}
	th.emit(TraceMalloc, size, base, 0)
	if p.tagger != nil {
		base = p.tagger.TagPointer(base)
	}
	return base, nil
}

// Free releases the object at ptr. The detector's OnFree hook — where
// DangSan invalidates dangling pointers — runs before the memory is
// released, exactly as the paper's free interposition does. Invalid
// pointers (including invalidated, non-canonical ones) produce the
// allocator's "attempt to free invalid pointer" error without invoking the
// detector.
func (th *Thread) Free(ptr uint64) error {
	p := th.proc
	// Checked-dereference detectors validate the pointer being freed: a
	// stale tag or a tombstoned range here is a detected free-after-free.
	ptr, fault := p.checkAddr(ptr)
	if fault != nil {
		return fault
	}
	usable, ok := p.alloc.UsableSize(ptr)
	if !ok {
		// Let the allocator classify the failure (invalid vs double free).
		return th.tc.Free(ptr)
	}
	align, _ := p.alloc.PageAlignOf(ptr)
	// Deferred-free mode: offer the detector custody. Mutually exclusive
	// with zero-on-free (which wants the wipe before release, while the
	// object here outlives the free) and with the secure-allocator
	// quarantine (which owns release ordering itself).
	if p.deferred != nil && !p.zeroOnFree && p.quarantineLimit == 0 {
		taken, err := p.deferred.OnFreeDeferred(ptr, usable, align)
		if taken {
			if err != nil {
				return err
			}
			if p.met != nil {
				p.met.frees.Inc(th.id)
			}
			th.emit(TraceFree, ptr, 0, 0)
			return nil
		}
		// Untracked (degraded) object: fall through to the inline path,
		// where OnFree is a cheap no-op lookup and tc.Free reclaims it.
	}
	p.det.OnFree(ptr, usable, align)
	if p.zeroOnFree {
		if f := p.as.Memset(ptr, 0, usable); f != nil {
			panic(f) // the object is live and mapped; cannot happen
		}
	}
	if p.quarantineLimit > 0 {
		// Secure-allocator mode: park the object; release evicted ones.
		// The logical free already happened (detector notified, optional
		// zeroing done); only memory reuse is delayed.
		evict, err := p.enqueueQuarantine(ptr, usable)
		if err != nil {
			return err
		}
		for _, q := range evict {
			if err := th.tc.Free(q.base); err != nil {
				return err
			}
		}
		if p.met != nil {
			p.met.frees.Inc(th.id)
		}
		th.emit(TraceFree, ptr, 0, 0)
		return nil
	}
	err := th.tc.Free(ptr)
	if err == nil {
		if p.met != nil {
			p.met.frees.Inc(th.id)
		}
		th.emit(TraceFree, ptr, 0, 0)
	}
	return err
}

// Calloc allocates zeroed memory for count objects of the given size,
// checking for multiplication overflow like the C calloc.
func (th *Thread) Calloc(count, size uint64) (uint64, error) {
	if size != 0 && count > ^uint64(0)/size {
		return 0, fmt.Errorf("proc: calloc(%d, %d) overflows", count, size)
	}
	total := count * size
	base, err := th.Malloc(total)
	if err != nil {
		return 0, err
	}
	if f := th.proc.as.Memset(th.proc.stripAddr(base), 0, total); f != nil {
		panic(f)
	}
	return base, nil
}

// Memcpy copies n bytes within the simulated space, modelling the C memcpy
// the paper's §7 discusses: by default the copy is type-unsafe and copied
// pointers lose their tracking; with EnableMemcpyHook the detector rescans
// the destination and re-registers them.
func (th *Thread) Memcpy(dst, src, n uint64) *vmem.Fault {
	dst, f := th.proc.checkAddr(dst)
	if f != nil {
		return f
	}
	src, f = th.proc.checkAddr(src)
	if f != nil {
		return f
	}
	if f := th.proc.as.Memmove(dst, src, n); f != nil {
		return f
	}
	if th.proc.memcpyHook != nil {
		th.proc.memcpyHook.OnMemcpy(dst, src, n, th.id)
	}
	if th.proc.met != nil {
		th.proc.met.memcpys.Inc(th.id)
	}
	th.emit(TraceMemcpy, dst, src, n)
	return nil
}

// Realloc resizes the object at ptr, dispatching the three cases of the
// paper's §4.2: unchanged, resized in place (detector refreshes its
// mapping), or moved (malloc of the new object, byte copy, free of the old
// — with the detector seeing the alloc and the free, including pointer
// invalidation for the old object).
func (th *Thread) Realloc(ptr, size uint64) (uint64, error) {
	p := th.proc
	if ptr == 0 {
		return th.Malloc(size)
	}
	// Checked-dereference detectors validate the pointer being resized: a
	// stale tag or a tombstoned range is a detected use-after-free.
	ptr, fault := p.checkAddr(ptr)
	if fault != nil {
		return 0, fault
	}
	oldUsable, ok := p.alloc.UsableSize(ptr)
	if !ok {
		return 0, th.tc.Free(ptr) // surfaces the allocator's error
	}
	// A quarantined object is freed-but-withheld: the allocator still
	// reports it live (its memory has not been returned), so without this
	// check a realloc of a freed pointer would quietly resize dead memory.
	if p.deferred != nil && p.deferred.Quarantined(ptr) {
		return 0, &tcmalloc.DoubleFreeError{Addr: ptr}
	}
	padded := size + p.det.AllocPad()
	kind, err, inPlace := th.tc.TryResizeInPlace(ptr, padded)
	if err != nil {
		return 0, err
	}
	if inPlace {
		if kind == tcmalloc.ReallocInPlace {
			newUsable, _ := p.alloc.UsableSize(ptr)
			align, _ := p.alloc.PageAlignOf(ptr)
			p.det.OnReallocInPlace(ptr, oldUsable, newUsable, align)
		}
		if p.met != nil {
			p.met.reallocs.Inc(th.id)
		}
		th.emit(TraceRealloc, ptr, size, ptr)
		if p.tagger != nil {
			// The object kept its identity and tag; hand back a tagged
			// pointer just like Malloc does.
			return p.tagger.TagPointer(ptr), nil
		}
		return ptr, nil
	}
	// Move: malloc + copy + free, each visible to the detector. The copy
	// is type-unsafe (memcpy): pointers inside the buffer are copied
	// without re-registration, the known limitation of §7 shared with
	// FreeSentry and DangNULL. The trace records the move as one event.
	suppressed := th.noTrace
	th.noTrace = true
	defer func() { th.noTrace = suppressed }()
	newPtr, err := th.Malloc(size)
	if err != nil {
		return 0, err
	}
	rawNew := p.stripAddr(newPtr)
	n := oldUsable
	if padded < n {
		n = padded
	}
	newUsable, _ := p.alloc.UsableSize(rawNew)
	if newUsable < n {
		n = newUsable
	}
	if f := p.as.Memmove(rawNew, ptr, n); f != nil {
		panic(f) // both objects are live and mapped; cannot happen
	}
	if p.memcpyHook != nil {
		p.memcpyHook.OnMemcpy(rawNew, ptr, n, th.id)
	}
	if err := th.Free(ptr); err != nil {
		return 0, err
	}
	if p.met != nil {
		p.met.reallocs.Inc(th.id)
	}
	th.noTrace = suppressed
	th.emit(TraceRealloc, ptr, size, newPtr)
	return newPtr, nil
}

// StorePtr stores a pointer-typed value and notifies the detector — the
// instrumented store. The detector hook runs after the store so that a
// concurrent free observes either an unlogged old value or the logged new
// one, both reconciled at invalidation time.
// The stored value is data, not an address being used: under a tagging
// detector a tagged value round-trips through memory intact and is only
// checked when something dereferences it.
func (th *Thread) StorePtr(loc, val uint64) *vmem.Fault {
	loc, f := th.proc.checkAddr(loc)
	if f != nil {
		return f
	}
	if f := th.proc.as.StoreWord(loc, val); f != nil {
		return f
	}
	th.RegisterPtr(loc, val)
	if th.proc.met != nil {
		th.proc.met.ptrStores.Inc(th.id)
	}
	th.emit(TraceStorePtr, loc, val, 0)
	return nil
}

// RegisterPtr notifies the detector of a pointer-typed store without
// performing the store itself — the bare registerptr call, used when the
// store instruction and its instrumentation are separate (the IR
// interpreter's regptr opcode). Thread-aware detectors receive it
// through this thread's fast-path context.
func (th *Thread) RegisterPtr(loc, val uint64) {
	loc = th.proc.stripAddr(loc)
	if th.detCtx != nil {
		th.proc.threadAware.OnPtrStoreCtx(th.detCtx, loc, val)
	} else {
		th.proc.det.OnPtrStore(loc, val, th.id)
	}
}

// StoreInt stores a non-pointer word; no instrumentation (the compiler pass
// only instruments pointer-typed stores).
func (th *Thread) StoreInt(loc, val uint64) *vmem.Fault {
	loc, f := th.proc.checkAddr(loc)
	if f != nil {
		return f
	}
	if f := th.proc.as.StoreWord(loc, val); f != nil {
		return f
	}
	if th.proc.met != nil {
		th.proc.met.intStores.Inc(th.id)
	}
	th.emit(TraceStoreInt, loc, val, 0)
	return nil
}

// Load reads a word.
func (th *Thread) Load(loc uint64) (uint64, *vmem.Fault) {
	loc, f := th.proc.checkAddr(loc)
	if f != nil {
		return 0, f
	}
	if th.proc.met != nil {
		th.proc.met.loads.Inc(th.id)
	}
	return th.proc.as.LoadWord(loc)
}

// LoadNoCheck is Load without the detector's dereference check — the
// runtime half of an elided check (internal/instrument, ElideDerefChecks):
// the pass proved the address live, so only the tag strip remains.
func (th *Thread) LoadNoCheck(loc uint64) (uint64, *vmem.Fault) {
	if th.proc.met != nil {
		th.proc.met.loads.Inc(th.id)
	}
	return th.proc.as.LoadWord(th.proc.stripAddr(loc))
}

// StoreIntNoCheck is StoreInt without the detector's dereference check,
// for stores whose safety the instrumentation pass proved statically.
func (th *Thread) StoreIntNoCheck(loc, val uint64) *vmem.Fault {
	if f := th.proc.as.StoreWord(th.proc.stripAddr(loc), val); f != nil {
		return f
	}
	if th.proc.met != nil {
		th.proc.met.intStores.Inc(th.id)
	}
	th.emit(TraceStoreInt, loc, val, 0)
	return nil
}

// Deref loads the pointer stored at loc and then reads the word it points
// to — the canonical use-after-free instruction. If the pointer was
// invalidated, the second access faults with a non-canonical address that
// still reveals the original pointer bits; under a checked-dereference
// detector the second check traps first with the detector's own fault kind.
func (th *Thread) Deref(loc uint64) (uint64, *vmem.Fault) {
	loc, f := th.proc.checkAddr(loc)
	if f != nil {
		return 0, f
	}
	ptr, f := th.proc.as.LoadWord(loc)
	if f != nil {
		return 0, f
	}
	ptr, f = th.proc.checkAddr(ptr)
	if f != nil {
		return 0, f
	}
	return th.proc.as.LoadWord(ptr)
}
