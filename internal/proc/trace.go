package proc

// Trace event kinds. They are defined here — next to the operations that
// emit them — and consumed by internal/trace, which provides serialization
// and replay. The (a, b, c) payload meaning per kind is documented on the
// corresponding constant.
const (
	// TraceThreadStart: a thread was created.
	TraceThreadStart uint8 = iota + 1
	// TraceThreadExit: the thread exited.
	TraceThreadExit
	// TraceGlobal: a = size, b = resulting address.
	TraceGlobal
	// TraceMalloc: a = requested size, b = resulting base.
	TraceMalloc
	// TraceFree: a = base.
	TraceFree
	// TraceRealloc: a = old base, b = new size, c = resulting base.
	TraceRealloc
	// TraceAlloca: a = size, b = resulting address.
	TraceAlloca
	// TraceStackMark: a = mark.
	TraceStackMark
	// TraceFreeStack: a = restored mark.
	TraceFreeStack
	// TraceStorePtr: a = location, b = value.
	TraceStorePtr
	// TraceStoreInt: a = location, b = value.
	TraceStoreInt
	// TraceMemcpy: a = dst, b = src, c = length.
	TraceMemcpy
	// TraceKindMax bounds the kind space.
	TraceKindMax
)

// TraceSink receives every traced operation of a process. Implementations
// must be safe for concurrent use; the order in which they serialize
// concurrent events defines the replay order.
type TraceSink interface {
	TraceEvent(kind uint8, tid int32, a, b, c uint64)
}

// SetTracer installs a trace sink. Install it before creating threads;
// operations performed earlier are not captured.
func (p *Process) SetTracer(t TraceSink) { p.tracer = t }

// emit reports an event if tracing is active.
func (p *Process) emit(kind uint8, tid int32, a, b, c uint64) {
	if p.tracer != nil {
		p.tracer.TraceEvent(kind, tid, a, b, c)
	}
}
