package proc_test

import (
	"errors"
	"sync"
	"testing"

	"dangsan/internal/detectors"
	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/pointerlog"
	"dangsan/internal/proc"
	"dangsan/internal/tcmalloc"
	"dangsan/internal/vmem"
)

func TestBaselineMallocStoreFree(t *testing.T) {
	p := proc.New(detectors.None{})
	th := p.NewThread()
	obj, err := th.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	slot := p.AllocGlobal(8)
	if f := th.StorePtr(slot, obj); f != nil {
		t.Fatal(f)
	}
	if err := th.Free(obj); err != nil {
		t.Fatal(err)
	}
	// Baseline: the dangling pointer survives untouched (the vulnerability).
	if v, f := th.Load(slot); f != nil || v != obj {
		t.Fatalf("baseline modified the dangling pointer: 0x%x, %v", v, f)
	}
}

func TestDangSanInvalidatesOnFree(t *testing.T) {
	d := dangsan.New()
	p := proc.New(d)
	th := p.NewThread()

	obj, err := th.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	slotA := p.AllocGlobal(8)
	slotB := th.Alloca(8) // stack-resident pointer: DangSan tracks it too
	heapHolder, _ := th.Malloc(8)

	th.StorePtr(slotA, obj)
	th.StorePtr(slotB, obj+16) // interior pointer
	th.StorePtr(heapHolder, obj)

	if err := th.Free(obj); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name string
		loc  uint64
		orig uint64
	}{
		{"global", slotA, obj},
		{"stack", slotB, obj + 16},
		{"heap", heapHolder, obj},
	} {
		v, f := th.Load(c.loc)
		if f != nil {
			t.Fatalf("%s: %v", c.name, f)
		}
		if v != c.orig|pointerlog.InvalidBit {
			t.Errorf("%s pointer = 0x%x, want 0x%x", c.name, v, c.orig|pointerlog.InvalidBit)
		}
		// Dereferencing faults with a non-canonical address.
		if _, f := th.Deref(c.loc); f == nil || f.Kind != vmem.FaultNonCanonical {
			t.Errorf("%s deref: %v, want non-canonical fault", c.name, f)
		}
	}
	s := d.Stats()
	if s.Invalidated != 3 {
		t.Fatalf("invalidated = %d, want 3 (stats %+v)", s.Invalidated, s)
	}
}

func TestDangSanDoubleFreeAborts(t *testing.T) {
	// The OpenSSL CVE-2010-2939 shape: a pointer slot is freed through
	// twice. DangSan turns the second free into an allocator abort on an
	// 0x8000... address instead of heap corruption.
	d := dangsan.New()
	p := proc.New(d)
	th := p.NewThread()
	obj, _ := th.Malloc(128)
	slot := p.AllocGlobal(8)
	th.StorePtr(slot, obj)

	ptr, _ := th.Load(slot)
	if err := th.Free(ptr); err != nil {
		t.Fatal(err)
	}
	// Second free reads the (now invalidated) pointer from memory.
	ptr2, _ := th.Load(slot)
	err := th.Free(ptr2)
	var inv *tcmalloc.InvalidFreeError
	if !errors.As(err, &inv) {
		t.Fatalf("second free: %v", err)
	}
	if inv.Addr != obj|pointerlog.InvalidBit {
		t.Fatalf("abort address 0x%x, want 0x%x", inv.Addr, obj|pointerlog.InvalidBit)
	}
}

func TestDangSanPointerOverwriteIsStale(t *testing.T) {
	d := dangsan.New()
	p := proc.New(d)
	th := p.NewThread()
	objA, _ := th.Malloc(64)
	objB, _ := th.Malloc(64)
	slot := p.AllocGlobal(8)
	th.StorePtr(slot, objA)
	th.StorePtr(slot, objB) // overwrites; objA's log entry is now stale
	if err := th.Free(objA); err != nil {
		t.Fatal(err)
	}
	if v, _ := th.Load(slot); v != objB {
		t.Fatalf("pointer to objB clobbered: 0x%x", v)
	}
	if s := d.Stats(); s.Stale != 1 {
		t.Fatalf("stale = %d, want 1", s.Stale)
	}
	// Freeing objB invalidates the slot.
	th.Free(objB)
	if v, _ := th.Load(slot); v != objB|pointerlog.InvalidBit {
		t.Fatalf("slot after objB free: 0x%x", v)
	}
}

func TestDangSanReallocCases(t *testing.T) {
	d := dangsan.New()
	p := proc.New(d)
	th := p.NewThread()

	// Case 1: same storage — pointers stay valid.
	obj, _ := th.Malloc(100)
	slot := p.AllocGlobal(8)
	th.StorePtr(slot, obj)
	same, err := th.Realloc(obj, 101)
	if err != nil || same != obj {
		t.Fatalf("case1: 0x%x, %v", same, err)
	}
	if v, _ := th.Load(slot); v != obj {
		t.Fatal("case1 invalidated pointers")
	}

	// Case 3: move — pointers to the old object are invalidated.
	moved, err := th.Realloc(obj, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if moved == obj {
		t.Fatal("expected a move")
	}
	if v, _ := th.Load(slot); v != obj|pointerlog.InvalidBit {
		t.Fatalf("case3: old pointer = 0x%x", v)
	}

	// Case 2: in-place grow of a large object — pointer stays valid, and a
	// pointer into the grown tail is tracked afterwards.
	th.StorePtr(slot, moved)
	grown, err := th.Realloc(moved, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	if grown != moved {
		t.Skip("heap layout prevented in-place growth")
	}
	tail := p.AllocGlobal(8)
	th.StorePtr(tail, grown+1<<20+64) // inside the newly grown region
	if err := th.Free(grown); err != nil {
		t.Fatal(err)
	}
	if v, _ := th.Load(slot); v&pointerlog.InvalidBit == 0 {
		t.Fatalf("pointer to grown object not invalidated: 0x%x", v)
	}
	if v, _ := th.Load(tail); v&pointerlog.InvalidBit == 0 {
		t.Fatalf("pointer into grown tail not invalidated: 0x%x", v)
	}
}

func TestDangSanStoreOfUntrackedValues(t *testing.T) {
	d := dangsan.New()
	p := proc.New(d)
	th := p.NewThread()
	slot := p.AllocGlobal(8)
	// NULL, globals and stack addresses are not heap objects: stores cost a
	// lookup but register nothing.
	th.StorePtr(slot, 0)
	th.StorePtr(slot, p.AllocGlobal(8))
	th.StorePtr(slot, th.Alloca(8))
	if s := d.Stats(); s.Registered != 0 {
		t.Fatalf("registered = %d, want 0", s.Registered)
	}
}

func TestDangSanIntegerStoreNotTracked(t *testing.T) {
	d := dangsan.New()
	p := proc.New(d)
	th := p.NewThread()
	obj, _ := th.Malloc(64)
	slot := p.AllocGlobal(8)
	// An integer that happens to equal a live object address, stored via
	// StoreInt (non-pointer type): never instrumented, never invalidated.
	th.StoreInt(slot, obj)
	th.Free(obj)
	if v, _ := th.Load(slot); v != obj {
		t.Fatalf("integer store modified: 0x%x", v)
	}
}

func TestDangSanHeapReuseAfterInvalidation(t *testing.T) {
	d := dangsan.New()
	p := proc.New(d)
	th := p.NewThread()
	slot := p.AllocGlobal(8)
	// Free an object, let the allocator recycle its slot, and verify the
	// new object is tracked independently.
	a, _ := th.Malloc(64)
	th.StorePtr(slot, a)
	th.Free(a)
	b, _ := th.Malloc(64)
	if a != b {
		t.Skip("allocator did not recycle the slot")
	}
	slot2 := p.AllocGlobal(8)
	th.StorePtr(slot2, b)
	th.Free(b)
	if v, _ := th.Load(slot2); v != b|pointerlog.InvalidBit {
		t.Fatalf("recycled object's pointer not invalidated: 0x%x", v)
	}
	// The first slot was already invalid and must stay as it was.
	if v, _ := th.Load(slot); v != a|pointerlog.InvalidBit {
		t.Fatalf("old invalid pointer changed: 0x%x", v)
	}
}

func TestDangSanMultithreaded(t *testing.T) {
	d := dangsan.New()
	p := proc.New(d)

	// A shared object each thread stores pointers to, then one thread
	// frees: all threads' copies must be invalidated.
	main := p.NewThread()
	shared, _ := main.Malloc(256)

	const workers = 8
	slots := make([]uint64, workers)
	for i := range slots {
		slots[i] = p.AllocGlobal(8)
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			th := p.NewThread()
			defer th.Exit()
			// Each worker also churns private objects.
			for j := 0; j < 200; j++ {
				o, err := th.Malloc(32)
				if err != nil {
					t.Error(err)
					return
				}
				priv := th.Alloca(8)
				th.StorePtr(priv, o)
				if err := th.Free(o); err != nil {
					t.Error(err)
					return
				}
			}
			th.StorePtr(slots[i], shared+uint64(i*8))
		}(i)
	}
	wg.Wait()
	if n := d.Stats().Invalidated; n == 0 {
		t.Fatal("no private pointers invalidated")
	}
	if err := main.Free(shared); err != nil {
		t.Fatal(err)
	}
	for i, slot := range slots {
		v, _ := main.Load(slot)
		if v != (shared+uint64(i*8))|pointerlog.InvalidBit {
			t.Fatalf("worker %d pointer = 0x%x", i, v)
		}
	}
}

func TestMemoryFootprintGrowsWithTracking(t *testing.T) {
	d := dangsan.New()
	p := proc.New(d)
	th := p.NewThread()
	before := p.MemoryFootprint()
	objs := make([]uint64, 1000)
	slotBase := p.AllocGlobal(8 * 1000)
	for i := range objs {
		objs[i], _ = th.Malloc(64)
		th.StorePtr(slotBase+uint64(i*8), objs[i])
	}
	after := p.MemoryFootprint()
	if after <= before {
		t.Fatalf("footprint did not grow: %d -> %d", before, after)
	}
	if d.MetadataBytes() == 0 {
		t.Fatal("no metadata accounted")
	}
}

func TestStackLifecycle(t *testing.T) {
	p := proc.New(detectors.None{})
	th := p.NewThread()
	mark := th.StackMark()
	a := th.Alloca(64)
	if f := th.StoreInt(a, 1); f != nil {
		t.Fatal(f)
	}
	th.FreeStack(mark)
	b := th.Alloca(64)
	if a != b {
		t.Fatalf("stack not reused after pop: 0x%x vs 0x%x", a, b)
	}
	th.Exit()
	// After exit the stack is unmapped.
	if _, f := p.AddressSpace().LoadWord(a); f == nil {
		t.Fatal("stack readable after thread exit")
	}
}
