package proc_test

import (
	"errors"
	"sync"
	"testing"

	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/pointerlog"
	"dangsan/internal/proc"
	"dangsan/internal/tcmalloc"
)

func quarProc(budget uint64, epoch int, syncMode bool) (*proc.Process, *proc.Thread) {
	cfg := pointerlog.DefaultConfig()
	cfg.QuarantineBytes = budget
	cfg.QuarantineEpoch = epoch
	cfg.QuarantineSync = syncMode
	p := proc.New(dangsan.NewWithConfig(cfg))
	return p, p.NewThread()
}

// In deferred-free mode a free returns immediately, the dangling pointer is
// invalidated only at the epoch boundary, and the memory reaches the
// allocator only when the epoch retires — Quiesce forces both.
func TestDeferredFreeQuiesce(t *testing.T) {
	p, th := quarProc(1<<20, 8, true)
	slot := p.AllocGlobal(8)
	obj, err := th.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	th.StorePtr(slot, obj)
	live0 := p.Allocator().Stats().LiveObjects
	if err := th.Free(obj); err != nil {
		t.Fatal(err)
	}
	// Withheld: allocator accounting unchanged, pointer still raw.
	if live := p.Allocator().Stats().LiveObjects; live != live0 {
		t.Fatalf("live objects %d, want %d while quarantined", live, live0)
	}
	if v, f := th.Load(slot); f != nil || v != obj {
		t.Fatalf("pointer before drain: 0x%x, %v", v, f)
	}
	p.Quiesce()
	if v, _ := th.Load(slot); v != obj|pointerlog.InvalidBit {
		t.Fatalf("pointer after drain: 0x%x", v)
	}
	if live := p.Allocator().Stats().LiveObjects; live != live0-1 {
		t.Fatalf("live objects %d after drain, want %d", live, live0-1)
	}
}

// A double free of a quarantined object surfaces DoubleFreeError to the
// program instead of reaching the allocator while it still considers the
// span live.
func TestDeferredDoubleFree(t *testing.T) {
	p, th := quarProc(1<<20, 64, true)
	obj, err := th.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Free(obj); err != nil {
		t.Fatal(err)
	}
	var dfe *tcmalloc.DoubleFreeError
	if err := th.Free(obj); !errors.As(err, &dfe) {
		t.Fatalf("second free: %v, want DoubleFreeError", err)
	}
	p.Quiesce()
}

// Realloc of a quarantined pointer must fail rather than resize dead
// memory (the allocator still reports the span usable).
func TestReallocQuarantinedFails(t *testing.T) {
	p, th := quarProc(1<<20, 64, true)
	obj, err := th.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Free(obj); err != nil {
		t.Fatal(err)
	}
	var dfe *tcmalloc.DoubleFreeError
	if _, err := th.Realloc(obj, 128); !errors.As(err, &dfe) {
		t.Fatalf("realloc of quarantined ptr: %v, want DoubleFreeError", err)
	}
	p.Quiesce()
}

// Overflowing the byte budget must return memory promptly without any
// Quiesce: the fail-open path drains synchronously on the freeing thread.
func TestQuarantineOverflowReleasesEagerly(t *testing.T) {
	p, th := quarProc(256, 8, false)
	live0 := p.Allocator().Stats().LiveObjects
	for i := 0; i < 20; i++ {
		obj, err := th.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := th.Free(obj); err != nil {
			t.Fatal(err)
		}
	}
	// At most a few entries may legitimately still be pending (under
	// budget); everything else must already be back with the allocator.
	if live := p.Allocator().Stats().LiveObjects; live > live0+4 {
		t.Fatalf("live objects %d, want <= %d without Quiesce", live, live0+4)
	}
	p.Quiesce()
	if live := p.Allocator().Stats().LiveObjects; live != live0 {
		t.Fatalf("live objects %d after Quiesce, want %d", live, live0)
	}
}

// Background-worker mode under concurrent malloc/free traffic: after
// Quiesce, every freed span is back with the allocator and every dangling
// pointer is dead. Run with -race.
func TestDeferredFreeConcurrent(t *testing.T) {
	p, _ := quarProc(1<<20, 4, false)
	const goroutines, each = 8, 50
	slots := make([][]uint64, goroutines)
	objs := make([][]uint64, goroutines)
	for g := range slots {
		slots[g] = make([]uint64, each)
		for i := range slots[g] {
			slots[g][i] = p.AllocGlobal(8)
		}
		objs[g] = make([]uint64, each)
	}
	var wg sync.WaitGroup
	live0 := p.Allocator().Stats().LiveObjects
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := p.NewThread()
			for i := 0; i < each; i++ {
				obj, err := th.Malloc(64)
				if err != nil {
					t.Errorf("malloc: %v", err)
					return
				}
				objs[g][i] = obj
				th.StorePtr(slots[g][i], obj)
				if err := th.Free(obj); err != nil {
					t.Errorf("free: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	p.Quiesce()
	if live := p.Allocator().Stats().LiveObjects; live != live0 {
		t.Fatalf("live objects %d after Quiesce, want %d", live, live0)
	}
	th := p.NewThread()
	for g := range slots {
		for i, slot := range slots[g] {
			if v, _ := th.Load(slot); v != objs[g][i]|pointerlog.InvalidBit {
				t.Fatalf("slot [%d][%d]: 0x%x, want invalidated 0x%x", g, i, v, objs[g][i])
			}
		}
	}
}
