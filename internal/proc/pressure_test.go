package proc

import (
	"errors"
	"testing"

	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/tcmalloc"
)

// TestTinyHeapMallocReturnsTypedOOM drives a DangSan-protected process into
// genuine heap exhaustion and back: Malloc and Realloc must surface
// *tcmalloc.OutOfMemoryError (never panic), and after recovery the detector
// must still be fully consistent — allocations tracked, frees invalidating,
// the audit identity intact.
func TestTinyHeapMallocReturnsTypedOOM(t *testing.T) {
	det := dangsan.NewWithOptions(dangsan.Options{Audit: true})
	p := NewWithOptions(det, Options{HeapBytes: 256 << 10})
	th := p.NewThread()
	defer th.Exit()

	// Fill the heap until it refuses.
	var live []uint64
	var oomErr error
	for i := 0; i < 1<<12; i++ {
		b, err := th.Malloc(16 << 10)
		if err != nil {
			oomErr = err
			break
		}
		live = append(live, b)
	}
	if oomErr == nil {
		t.Fatal("a 256 KiB heap absorbed 64 MiB of allocations")
	}
	var oom *tcmalloc.OutOfMemoryError
	if !errors.As(oomErr, &oom) {
		t.Fatalf("Malloc exhaustion is not a typed OutOfMemoryError: %v", oomErr)
	}

	// Realloc growth at the wall must fail the same way, leaving the
	// original object valid.
	if _, err := th.Realloc(live[0], 128<<10); err == nil {
		t.Fatal("Realloc at the heap wall succeeded")
	} else if !errors.As(err, &oom) {
		t.Fatalf("Realloc exhaustion is not a typed OutOfMemoryError: %v", err)
	}

	// The failed calls must not have corrupted detector state: the live
	// objects are still tracked and freeing them invalidates as usual.
	ref := p.AllocGlobal(8)
	if f := th.StorePtr(ref, live[0]); f != nil {
		t.Fatalf("store into live object's tracking slot: %v", f)
	}
	for _, b := range live {
		if err := th.Free(b); err != nil {
			t.Fatalf("free after OOM recovery: %v", err)
		}
	}
	if v, _ := th.Load(ref); v>>63 != 1 {
		t.Fatalf("free after OOM did not invalidate the logged pointer: 0x%x", v)
	}

	// And the memory is genuinely reusable again.
	b, err := th.Malloc(16 << 10)
	if err != nil {
		t.Fatalf("allocation after freeing everything: %v", err)
	}
	if err := th.Free(b); err != nil {
		t.Fatal(err)
	}

	snap := det.Stats() // runs the audit cross-check
	if got := det.AuditViolations(); len(got) != 0 {
		t.Fatalf("audit violations after OOM round-trip: %v", got)
	}
	if snap.DegradedObjects != 0 {
		t.Fatalf("nothing should degrade on allocator-side OOM: %d", snap.DegradedObjects)
	}
	if liveObjs := p.Allocator().Stats().LiveObjects; liveObjs != 0 {
		t.Fatalf("%d objects leaked across the pressure round-trip", liveObjs)
	}
}

// TestTryAllocGlobalExhaustion: the globals segment surfaces a typed
// *ExhaustedError from TryAllocGlobal, and AllocGlobal panics with exactly
// that value.
func TestTryAllocGlobalExhaustion(t *testing.T) {
	p := New(dangsan.New())
	if _, err := p.TryAllocGlobal(1 << 40); err == nil {
		t.Fatal("absurd global allocation succeeded")
	} else {
		var ex *ExhaustedError
		if !errors.As(err, &ex) || ex.Resource != "globals" {
			t.Fatalf("want globals ExhaustedError, got %v", err)
		}
	}
	defer func() {
		r := recover()
		ex, ok := r.(*ExhaustedError)
		if !ok || ex.Resource != "globals" {
			t.Fatalf("AllocGlobal panic = %v, want *ExhaustedError{globals}", r)
		}
	}()
	p.AllocGlobal(1 << 40)
}

// TestTryAllocaExhaustion: stack overflow surfaces as a typed
// *ExhaustedError carrying the thread id.
func TestTryAllocaExhaustion(t *testing.T) {
	p := New(dangsan.New())
	th := p.NewThread()
	defer th.Exit()
	if _, err := th.TryAlloca(1 << 30); err == nil {
		t.Fatal("absurd alloca succeeded")
	} else {
		var ex *ExhaustedError
		if !errors.As(err, &ex) || ex.Resource != "stack" || ex.Tid != th.ID() {
			t.Fatalf("want stack ExhaustedError for tid %d, got %v", th.ID(), err)
		}
	}
}
