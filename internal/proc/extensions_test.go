package proc_test

import (
	"testing"

	"dangsan/internal/detectors"
	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/pointerlog"
	"dangsan/internal/proc"
)

// Without the memcpy hook, pointers copied type-unsafely escape tracking —
// the §7 limitation shared with FreeSentry and DangNULL.
func TestMemcpyUntrackedByDefault(t *testing.T) {
	p := proc.New(dangsan.New())
	th := p.NewThread()
	obj, _ := th.Malloc(64)
	src, _ := th.Malloc(8)
	dst, _ := th.Malloc(8)
	th.StorePtr(src, obj)
	if f := th.Memcpy(dst, src, 8); f != nil {
		t.Fatal(f)
	}
	th.Free(obj)
	// The original copy is invalidated; the memcpy'd copy dangles.
	if v, _ := th.Load(src); v != obj|pointerlog.InvalidBit {
		t.Fatalf("src = 0x%x", v)
	}
	if v, _ := th.Load(dst); v != obj {
		t.Fatalf("dst = 0x%x, want untouched dangling pointer", v)
	}
}

// With the hook enabled, the copied pointer is re-registered and
// invalidated like any other (the extension the paper sketches).
func TestMemcpyHookClosesTheGap(t *testing.T) {
	p := proc.New(dangsan.New())
	if !p.EnableMemcpyHook() {
		t.Fatal("dangsan does not implement the hook")
	}
	th := p.NewThread()
	obj, _ := th.Malloc(64)
	src, _ := th.Malloc(32)
	dst, _ := th.Malloc(32)
	th.StorePtr(src+8, obj+16)
	th.StoreInt(src+16, 12345) // non-pointer data travels too
	if f := th.Memcpy(dst, src, 32); f != nil {
		t.Fatal(f)
	}
	th.Free(obj)
	if v, _ := th.Load(dst + 8); v != (obj+16)|pointerlog.InvalidBit {
		t.Fatalf("copied pointer = 0x%x, want invalidated", v)
	}
	if v, _ := th.Load(dst + 16); v != 12345 {
		t.Fatalf("copied integer = %d, want 12345", v)
	}
}

// Realloc moves are internally a memcpy: with the hook on, pointers stored
// inside a moved buffer stay protected.
func TestReallocMoveWithMemcpyHook(t *testing.T) {
	p := proc.New(dangsan.New())
	p.EnableMemcpyHook()
	th := p.NewThread()
	target, _ := th.Malloc(64)
	buf, _ := th.Malloc(64)
	th.StorePtr(buf, target) // pointer stored inside the buffer
	moved, err := th.Realloc(buf, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if moved == buf {
		t.Skip("realloc did not move")
	}
	th.Free(target)
	if v, _ := th.Load(moved); v != target|pointerlog.InvalidBit {
		t.Fatalf("pointer inside moved buffer = 0x%x, want invalidated", v)
	}
	th.Free(moved)
}

func TestMemcpyHookUnsupportedDetector(t *testing.T) {
	p := proc.New(detectors.None{})
	if p.EnableMemcpyHook() {
		t.Fatal("baseline claims memcpy hook support")
	}
}

func TestZeroOnFree(t *testing.T) {
	p := proc.New(detectors.None{})
	p.EnableZeroOnFree()
	th := p.NewThread()
	obj, _ := th.Malloc(64)
	th.StoreInt(obj, 0xDEAD)
	th.StoreInt(obj+56, 77)
	if err := th.Free(obj); err != nil {
		t.Fatal(err)
	}
	// The memory (still mapped, not yet reused) reads as zero: the secret
	// is gone even though the allocation was recycled, the secure
	// deallocation property.
	for off := uint64(0); off < 64; off += 8 {
		if v, _ := p.AddressSpace().LoadWord(obj + off); v != 0 {
			t.Fatalf("word +%d = 0x%x after zeroing free", off, v)
		}
	}
}

func TestCalloc(t *testing.T) {
	p := proc.New(dangsan.New())
	th := p.NewThread()
	// Dirty a chunk, free it, calloc the same size: must read zero.
	a, _ := th.Malloc(128)
	for off := uint64(0); off < 128; off += 8 {
		th.StoreInt(a+off, ^uint64(0))
	}
	th.Free(a)
	b, err := th.Calloc(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < 128; off += 8 {
		if v, _ := th.Load(b + off); v != 0 {
			t.Fatalf("calloc memory not zeroed at +%d: 0x%x", off, v)
		}
	}
	// Overflow is rejected.
	if _, err := th.Calloc(1<<33, 1<<33); err == nil {
		t.Fatal("calloc overflow accepted")
	}
}
