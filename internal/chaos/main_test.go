package chaos

import (
	"os"
	"testing"

	"dangsan/internal/service"
)

// TestMain lets this test binary be re-exec'd as a worker process: wire
// transport cells spawn the current executable, and a spawned copy must
// become a shard worker instead of running the chaos suite.
func TestMain(m *testing.M) {
	service.RunWorkerIfSpawned()
	os.Exit(m.Run())
}
