// Package chaos is the fault-injection test harness: it sweeps the
// fault-injection plane (internal/faultinject) across rates and seeds,
// drives real workloads through the injected failures, and checks the
// system-wide invariants DangSan's fail-open design promises (paper §4.4):
//
//   - no false UAF reports: a correct program never observes a memory
//     fault, no matter which internal allocations were failed;
//   - no deadlocks or panics: every run terminates, with success or a
//     typed out-of-memory error;
//   - accounting stays exact: the pointer logger's audit identity holds
//     even when log blocks, hash grows, and registrations are denied;
//   - degradation is the only coverage loss: while no object is degraded
//     and no registration dropped, the exploit suite is still detected.
//
// A cell is one (rate, seed) pair; Run executes one cell, Sweep a grid.
// Everything is deterministic per cell, so a failed cell replays exactly.
package chaos

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"dangsan/internal/detectors"
	"dangsan/internal/detectors/camp"
	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/detectors/xtag"
	"dangsan/internal/faultinject"
	"dangsan/internal/pointerlog"
	"dangsan/internal/proc"
	"dangsan/internal/tcmalloc"
	"dangsan/internal/vmem"
	"dangsan/internal/workloads"
)

// Config shapes the workload a chaos cell runs.
type Config struct {
	// Profile is the server workload to drive (zero value: apache, the
	// most allocation-heavy profile).
	Profile workloads.ServerProfile
	// Workers and Requests size the concurrent server run.
	Workers  int
	Requests int
	// HeapBytes shrinks the simulated heap so allocator pressure is
	// reachable (0: 8 MiB).
	HeapBytes uint64
	// MaxMetadataBytes caps the pointer logger's metadata footprint
	// (0: unlimited). See pointerlog.Config.MaxMetadataBytes.
	MaxMetadataBytes uint64
	// Budget bounds per-site injections so pressure is transient and the
	// run can recover (<0: unlimited; 0: the default 256).
	Budget int64
	// QuarantineBytes sets the epoch-quarantine byte budget for the
	// quarantined stages (0: a deliberately tiny 64 KiB so the overflow
	// fail-open path — synchronous drains on the freeing thread — is
	// exercised under injection, not just the happy path).
	QuarantineBytes uint64
	// QuarantineEpoch sets the drain batch width for the quarantined
	// stages (0: 16, small enough that epochs retire many times per run).
	QuarantineEpoch int
	// ColdSpillBytes sets the tiered-log spill threshold for the tiered
	// stages (0: the minimum threshold, so the server workload's hash-mode
	// objects actually spill and the ColdIO site sees traffic).
	ColdSpillBytes uint64
	// Timeout is the per-run watchdog; exceeding it counts as a deadlock
	// violation (0: 60s).
	Timeout time.Duration
	// SkipExploits disables the exploit-detection sub-check.
	SkipExploits bool
}

func (c Config) normalized() Config {
	if c.Profile.Name == "" {
		c.Profile, _ = workloads.ServerProfileByName("apache")
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Requests <= 0 {
		c.Requests = 300
	}
	if c.HeapBytes == 0 {
		c.HeapBytes = 8 << 20
	}
	if c.Budget == 0 {
		c.Budget = 256
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
	return c
}

// ExploitResult is one exploit scenario's outcome under injection.
type ExploitResult struct {
	Name string `json:"name"`
	// Prevented mirrors workloads.ExploitOutcome.Prevented.
	Prevented bool `json:"prevented"`
	// Skipped is true when the scenario could not run to its verdict
	// (allocator OOM mid-scenario) or detection was not required (the
	// detector degraded objects or dropped registrations, so coverage
	// loss is expected).
	Skipped bool   `json:"skipped"`
	Detail  string `json:"detail,omitempty"`
}

// Result is one chaos cell's outcome. Violations must be empty for the
// cell to pass; everything else is reporting.
type Result struct {
	Rate float64 `json:"rate"`
	Seed int64   `json:"seed"`
	// Seconds is the concurrent server run's wall time.
	Seconds float64 `json:"seconds"`
	// Completed is true when the concurrent run served every request.
	Completed bool `json:"completed"`
	// OOMAborted is true when the concurrent run stopped early on a typed
	// out-of-memory error — graceful abort, not a violation.
	OOMAborted bool `json:"oom_aborted"`
	// Injected is the total injection count across both server runs.
	Injected uint64 `json:"injected"`
	// Sites breaks injections down per site (concurrent run).
	Sites []faultinject.SiteStats `json:"sites,omitempty"`
	// Degraded and Dropped aggregate the detector's coverage-loss
	// counters across both server runs.
	Degraded uint64 `json:"degraded"`
	Dropped  uint64 `json:"dropped"`
	// Exploits reports the detection sub-check.
	Exploits []ExploitResult `json:"exploits,omitempty"`
	// Violations lists every broken invariant: false UAF faults, panics,
	// hangs, audit failures, missed exploit detections.
	Violations []string `json:"violations,omitempty"`
}

// quarMode selects the free path for one chaos stage.
type quarMode int

const (
	quarOff  quarMode = iota // inline invalidation
	quarBack                 // epoch quarantine, background workers
	quarSync                 // epoch quarantine, drains on the freeing thread
)

// detector builds a DangSan detector wired to the plane, with the audit
// cross-check, the epoch quarantine, and the cold tier on request.
func (c Config) detector(plane *faultinject.Plane, audit, tiered bool, quar quarMode) *dangsan.Detector {
	cfg := pointerlog.DefaultConfig()
	cfg.MaxMetadataBytes = c.MaxMetadataBytes
	if tiered {
		cfg.ColdSpillBytes = c.ColdSpillBytes
		if cfg.ColdSpillBytes == 0 {
			cfg.ColdSpillBytes = pointerlog.MinColdSpillBytes
		}
	}
	if quar != quarOff {
		cfg.QuarantineBytes = c.QuarantineBytes
		if cfg.QuarantineBytes == 0 {
			cfg.QuarantineBytes = 64 << 10
		}
		cfg.QuarantineEpoch = c.QuarantineEpoch
		if cfg.QuarantineEpoch == 0 {
			cfg.QuarantineEpoch = 16
		}
		cfg.QuarantineSync = quar == quarSync
	}
	return dangsan.NewWithOptions(dangsan.Options{
		Config: cfg,
		Audit:  audit,
		Faults: plane,
	})
}

// classify sorts a server-run error into the result: nil and typed OOM are
// acceptable (the latter marks the run OOM-aborted); memory faults are
// false-UAF violations; panics and anything else are violations too.
func classify(r *Result, stage string, err error) {
	if err == nil {
		return
	}
	var oom *tcmalloc.OutOfMemoryError
	if errors.As(err, &oom) {
		r.OOMAborted = true
		return
	}
	var fault *vmem.Fault
	if errors.As(err, &fault) {
		r.Violations = append(r.Violations,
			fmt.Sprintf("%s: memory fault on correct code (false UAF): %v", stage, err))
		return
	}
	if strings.Contains(err.Error(), "panic") {
		r.Violations = append(r.Violations, fmt.Sprintf("%s: worker panicked: %v", stage, err))
		return
	}
	r.Violations = append(r.Violations, fmt.Sprintf("%s: unexpected error: %v", stage, err))
}

// runServer executes one watched server run and classifies the outcome.
// It returns false on watchdog expiry (the goroutine is abandoned; the
// cell already failed).
func (c Config) runServer(r *Result, stage string, plane *faultinject.Plane, workers int, audit, tiered bool, quar quarMode) (*dangsan.Detector, bool) {
	det := c.detector(plane, audit, tiered, quar)
	p := proc.NewWithOptions(det, proc.Options{HeapBytes: c.HeapBytes, Faults: plane})
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		err := workloads.RunServer(p, c.Profile, workers, c.Requests, r.Seed)
		// Retire the quarantine inside the watched section: a drain that
		// deadlocks or panics must trip the watchdog/classifier, and the
		// stats read below must see fully-drained counters.
		p.Quiesce()
		done <- err
	}()
	select {
	case err := <-done:
		if stage == "concurrent" {
			r.Seconds = time.Since(start).Seconds()
			r.Completed = err == nil
		}
		classify(r, stage, err)
	case <-time.After(c.Timeout):
		r.Violations = append(r.Violations,
			fmt.Sprintf("%s: server run exceeded %v watchdog (deadlock?)", stage, c.Timeout))
		return det, false
	}
	snap := det.Stats()
	r.Degraded += snap.DegradedObjects
	r.Dropped += snap.DroppedRegistrations
	return det, true
}

// coverageLoser is the Degraded() counter pair every non-dangsan backend
// exposes; chaos uses it to aggregate fail-open coverage loss.
type coverageLoser interface {
	Degraded() (objects, dropped uint64)
}

// runCheckedServer executes one watched server run under a
// checked-dereference backend (xtag, camp) and classifies the outcome. The
// invariant is the same fail-open promise the dangsan stages check: correct
// code must never observe a tag-mismatch or freed-range fault, no matter
// which metadata allocations were denied — a denied charge leaves the
// object untagged/untracked, and untracked passes every check.
func (c Config) runCheckedServer(r *Result, stage string, plane *faultinject.Plane, workers int, det detectors.Detector) bool {
	p := proc.NewWithOptions(det, proc.Options{HeapBytes: c.HeapBytes, Faults: plane})
	done := make(chan error, 1)
	go func() {
		err := workloads.RunServer(p, c.Profile, workers, c.Requests, r.Seed)
		p.Quiesce()
		done <- err
	}()
	select {
	case err := <-done:
		classify(r, stage, err)
	case <-time.After(c.Timeout):
		r.Violations = append(r.Violations,
			fmt.Sprintf("%s: server run exceeded %v watchdog (deadlock?)", stage, c.Timeout))
		return false
	}
	if cl, ok := det.(coverageLoser); ok {
		objs, drops := cl.Degraded()
		r.Degraded += objs
		r.Dropped += drops
	}
	return true
}

// Run executes one chaos cell: a concurrent server run, a single-worker
// audited run, and the exploit suite, all against a plane armed at the
// given rate with the cell's seed.
func Run(cfg Config, rate float64, seed int64) Result {
	cfg = cfg.normalized()
	r := Result{Rate: rate, Seed: seed}

	// Concurrent run: survival under pressure. Audit stays off — the
	// audit identity is exact only without racing frees (see
	// pointerlog/audit.go) — correctness is checked via fault/panic/hang
	// classification instead.
	plane := faultinject.New(seed)
	plane.EnableAll(rate, cfg.Budget)
	if _, ok := cfg.runServer(&r, "concurrent", plane, cfg.Workers, false, false, quarOff); ok {
		r.Sites = plane.Snapshot()
	}
	r.Injected += plane.TotalInjected()

	// Audited run: same seed, fresh plane, one worker, audit on. The
	// accounting identity must hold exactly even with injected metadata
	// failures.
	auditPlane := faultinject.New(seed)
	auditPlane.EnableAll(rate, cfg.Budget)
	if det, ok := cfg.runServer(&r, "audited", auditPlane, 1, true, false, quarOff); ok {
		for _, v := range det.AuditViolations() {
			r.Violations = append(r.Violations, "audited: "+v)
		}
	}
	r.Injected += auditPlane.TotalInjected()

	// Quarantined run: concurrent, background epoch workers, and (by
	// default) a tiny byte budget so quarantine overflow keeps forcing the
	// synchronous fail-open drain while injection denies allocations.
	qPlane := faultinject.New(seed)
	qPlane.EnableAll(rate, cfg.Budget)
	cfg.runServer(&r, "quarantined", qPlane, cfg.Workers, false, false, quarBack)
	r.Injected += qPlane.TotalInjected()

	// Quarantined audited run: one worker, synchronous drains, and the
	// extended accounting identity (live + quarantined + released) must
	// hold exactly through every defer/drain cycle.
	qaPlane := faultinject.New(seed)
	qaPlane.EnableAll(rate, cfg.Budget)
	if det, ok := cfg.runServer(&r, "quarantined-audited", qaPlane, 1, true, false, quarSync); ok {
		for _, v := range det.AuditViolations() {
			r.Violations = append(r.Violations, "quarantined-audited: "+v)
		}
	}
	r.Injected += qaPlane.TotalInjected()

	// Tiered run: concurrent, cold tier armed at the minimum threshold so
	// hash-mode objects spill, with the ColdIO site denying segment writes
	// and reads. Both directions must fail open — a denied write keeps the
	// table resident, a denied read skips only that segment's coverage.
	tPlane := faultinject.New(seed)
	tPlane.EnableAll(rate, cfg.Budget)
	if det, ok := cfg.runServer(&r, "tiered", tPlane, cfg.Workers, false, true, quarOff); ok {
		det.Close()
	}
	r.Injected += tPlane.TotalInjected()

	// Tiered audited run: one worker, synchronous quarantine drains, audit
	// on — the cross-tier identity (live + quarantined + released +
	// spilled) must hold exactly through every spill, epoch drain, and
	// epoch-boundary compaction, even with ColdIO injecting.
	taPlane := faultinject.New(seed)
	taPlane.EnableAll(rate, cfg.Budget)
	if det, ok := cfg.runServer(&r, "tiered-audited", taPlane, 1, true, true, quarSync); ok {
		for _, v := range det.AuditViolations() {
			r.Violations = append(r.Violations, "tiered-audited: "+v)
		}
		det.Close()
	}
	r.Injected += taPlane.TotalInjected()

	// Checked-dereference stages: the same concurrent server run under the
	// xtag and camp backends with their metadata paths injected. Their
	// fail-open contract is check-side: a denied metadata charge leaves the
	// object untagged (xtag) or untracked (camp), and every dereference of
	// it passes — so a correct run must still never fault.
	for _, cb := range []struct {
		name string
		mk   func(*faultinject.Plane) detectors.Detector
	}{
		{"xtag", func(pl *faultinject.Plane) detectors.Detector {
			return xtag.NewWithOptions(xtag.Options{Faults: pl})
		}},
		{"camp", func(pl *faultinject.Plane) detectors.Detector {
			return camp.NewWithOptions(camp.Options{Faults: pl})
		}},
	} {
		pl := faultinject.New(seed)
		pl.EnableAll(rate, cfg.Budget)
		cfg.runCheckedServer(&r, cb.name, pl, cfg.Workers, cb.mk(pl))
		r.Injected += pl.TotalInjected()
	}

	if !cfg.SkipExploits {
		r.Exploits = cfg.runExploits(&r, rate, seed)
		r.Exploits = append(r.Exploits, cfg.runXTagExploits(&r, rate, seed)...)
	}
	return r
}

// runXTagExploits drives the UAF scenarios under xtag with injection: tag
// checks catch all three (the reuse that arms each exploit gives the
// recycled memory a fresh generation, so the stale tagged pointer
// mismatches). Detection is required exactly when no object degraded. camp
// is deliberately absent: its freed-range registry is cleared by reuse, and
// all three scenarios reuse the victim's memory before the stale access —
// the documented false-negative window of pure range checking.
func (c Config) runXTagExploits(r *Result, rate float64, seed int64) []ExploitResult {
	scenarios := []struct {
		name string
		run  func(*proc.Process) (workloads.ExploitOutcome, error)
	}{
		{"double-free-openssl", workloads.DoubleFreeOpenSSL},
		{"uaf-wireshark", workloads.UAFWireshark},
		{"uaf-litespeed", workloads.UAFLitespeed},
	}
	out := make([]ExploitResult, 0, len(scenarios))
	for i, sc := range scenarios {
		plane := faultinject.New(seed + int64(i)*7919)
		plane.EnableAll(rate, c.Budget)
		det := xtag.NewWithOptions(xtag.Options{Faults: plane})
		p := proc.NewWithOptions(det, proc.Options{HeapBytes: c.HeapBytes, Faults: plane})
		outcome, err := sc.run(p)
		res := ExploitResult{Name: "xtag:" + sc.name}
		degraded, _ := det.Degraded()
		switch {
		case err != nil:
			var oom *tcmalloc.OutOfMemoryError
			if errors.As(err, &oom) {
				res.Skipped = true
				res.Detail = "oom-aborted: " + err.Error()
			} else {
				r.Violations = append(r.Violations,
					fmt.Sprintf("exploit xtag:%s: unexpected error: %v", sc.name, err))
				res.Detail = err.Error()
			}
		case degraded > 0:
			res.Skipped = true
			res.Prevented = outcome.Prevented
			res.Detail = fmt.Sprintf("degraded=%d: %s", degraded, outcome.Detail)
		default:
			res.Prevented = outcome.Prevented
			res.Detail = outcome.Detail
			if !outcome.Prevented {
				r.Violations = append(r.Violations,
					fmt.Sprintf("exploit xtag:%s: not prevented with full coverage: %s", sc.name, outcome.Detail))
			}
		}
		out = append(out, res)
	}
	return out
}

// runExploits drives the three UAF scenarios under injection. Detection is
// required exactly when the detector lost no coverage during the scenario
// (nothing degraded, nothing dropped); OOM-aborted scenarios are skipped.
func (c Config) runExploits(r *Result, rate float64, seed int64) []ExploitResult {
	scenarios := []struct {
		name string
		run  func(*proc.Process) (workloads.ExploitOutcome, error)
	}{
		{"double-free-openssl", workloads.DoubleFreeOpenSSL},
		{"uaf-wireshark", workloads.UAFWireshark},
		{"uaf-litespeed", workloads.UAFLitespeed},
	}
	out := make([]ExploitResult, 0, len(scenarios))
	for i, sc := range scenarios {
		plane := faultinject.New(seed + int64(i)*7919)
		plane.EnableAll(rate, c.Budget)
		det := c.detector(plane, false, false, quarOff)
		p := proc.NewWithOptions(det, proc.Options{HeapBytes: c.HeapBytes, Faults: plane})
		outcome, err := sc.run(p)
		res := ExploitResult{Name: sc.name}
		snap := det.Stats()
		switch {
		case err != nil:
			var oom *tcmalloc.OutOfMemoryError
			if errors.As(err, &oom) {
				res.Skipped = true
				res.Detail = "oom-aborted: " + err.Error()
			} else {
				r.Violations = append(r.Violations,
					fmt.Sprintf("exploit %s: unexpected error: %v", sc.name, err))
				res.Detail = err.Error()
			}
		case snap.DegradedObjects > 0 || snap.DroppedRegistrations > 0:
			// Coverage was lost; detection is not required. Record what
			// happened but don't judge it.
			res.Skipped = true
			res.Prevented = outcome.Prevented
			res.Detail = fmt.Sprintf("degraded=%d dropped=%d: %s",
				snap.DegradedObjects, snap.DroppedRegistrations, outcome.Detail)
		default:
			res.Prevented = outcome.Prevented
			res.Detail = outcome.Detail
			if !outcome.Prevented {
				r.Violations = append(r.Violations,
					fmt.Sprintf("exploit %s: not prevented with full coverage: %s", sc.name, outcome.Detail))
			}
		}
		out = append(out, res)
	}
	return out
}

// Sweep runs the full rate × seed grid and returns one Result per cell.
func Sweep(cfg Config, rates []float64, seeds []int64) []Result {
	out := make([]Result, 0, len(rates)*len(seeds))
	for _, rate := range rates {
		for _, seed := range seeds {
			out = append(out, Run(cfg, rate, seed))
		}
	}
	return out
}

// Failed collects the violations across a sweep, prefixed with their cell.
func Failed(results []Result) []string {
	var out []string
	for _, r := range results {
		for _, v := range r.Violations {
			out = append(out, fmt.Sprintf("rate=%g seed=%d: %s", r.Rate, r.Seed, v))
		}
	}
	return out
}
