package chaos

import (
	"fmt"
	"os"
	"time"

	"dangsan/internal/pointerlog"
	"dangsan/internal/service"
)

// ShardConfig shapes the sharded-service chaos cells: a supervised
// service (audit armed, epoch quarantine, cold tier at the minimum spill
// threshold) under continuous client load while a deterministic disruption
// script kills, hangs, and slows shards. The invariants extend the
// in-process fail-open contract across the shard boundary:
//
//   - no false UAF verdicts: a live key never faults, disrupted or not;
//   - no hangs: the watchdog bounds the whole cell; every request is
//     bounded by deadline × retry wall-cap;
//   - typed errors only: anything else a client observes is a violation;
//   - audit identity holds across every worker failover: the rebuilt
//     worker's LogBytes == live + quarantined + released + spilled.
type ShardConfig struct {
	// Shards is the service's worker count (0: 4).
	Shards int
	// Clients is the concurrent load-generator population (0: 4).
	Clients int
	// HeapBytes sizes each worker's heap (0: 32 MiB).
	HeapBytes uint64
	// Timeout is the per-cell watchdog (0: 120s).
	Timeout time.Duration
	// Transport selects where workers live ("" / "chan": in-process
	// goroutines; "unix" / "tcp": spawned worker processes over the wire
	// codec). Wire cells extend the disruption script with sigkill (real
	// SIGKILL of the worker process) and the network stages — partition,
	// trickle, garbage — that break the wire rather than the worker.
	Transport string
}

func (c ShardConfig) normalized() ShardConfig {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.HeapBytes == 0 {
		c.HeapBytes = 32 << 20
	}
	if c.Timeout == 0 {
		c.Timeout = 120 * time.Second
	}
	if c.Transport == "" {
		c.Transport = service.TransportChan
	}
	return c
}

// wire reports whether the cell's workers are separate processes.
func (c ShardConfig) wire() bool { return c.Transport != service.TransportChan }

// ShardResult is one sharded-service chaos cell's outcome.
type ShardResult struct {
	Rate    float64 `json:"rate"`
	Seed    int64   `json:"seed"`
	Seconds float64 `json:"seconds"`
	// Kills/Hangs/Slows count the injected disruptions per kind.
	Kills int `json:"kills"`
	Hangs int `json:"hangs"`
	Slows int `json:"slows"`
	// Wire-cell disruptions: SigKills are real SIGKILLs of worker
	// processes; Partitions/Trickles/Garbage are network faults armed on
	// the coordinator's connections (dropped mid-request, byte-trickled
	// writes, non-frame bytes ahead of a request).
	SigKills   int `json:"sigkills,omitempty"`
	Partitions int `json:"partitions,omitempty"`
	Trickles   int `json:"trickles,omitempty"`
	Garbage    int `json:"garbage,omitempty"`
	// Failovers is the completed worker rebuild count; RecoveredLocs the
	// cold-segment locations recovered through ReadSegments across them;
	// Replayed the journal objects re-established.
	Failovers     uint64 `json:"failovers"`
	RecoveredLocs uint64 `json:"recovered_locs"`
	Replayed      uint64 `json:"replayed"`
	// Issued/Degraded/Detected/Missed summarize the client population's
	// view. Degraded and Missed are expected under disruption (fail-open
	// and not-yet-drained quarantine); FalseUAF is folded into
	// Violations.
	Issued   uint64 `json:"issued"`
	Degraded uint64 `json:"degraded"`
	Detected uint64 `json:"detected"`
	Missed   uint64 `json:"missed"`
	// Violations must be empty for the cell to pass.
	Violations []string `json:"violations,omitempty"`
}

// shardRNG is a tiny deterministic splitmix64 stream for the disruption
// script's shard choices.
type shardRNG struct{ state uint64 }

func (r *shardRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RunShard executes one sharded-service chaos cell under the watchdog.
// rate scales the disruption count (1 + rate×10 per kind); seed drives
// the load streams and the script's shard choices. Like the other chaos
// stages, a watchdog expiry abandons the cell's goroutine — the cell has
// already failed.
func RunShard(cfg ShardConfig, rate float64, seed int64) ShardResult {
	cfg = cfg.normalized()
	resCh := make(chan ShardResult, 1)
	go func() { resCh <- runShardCell(cfg, rate, seed) }()
	select {
	case r := <-resCh:
		return r
	case <-time.After(cfg.Timeout):
		return ShardResult{Rate: rate, Seed: seed, Violations: []string{
			fmt.Sprintf("shard cell exceeded %v watchdog (deadlock?)", cfg.Timeout)}}
	}
}

func runShardCell(cfg ShardConfig, rate float64, seed int64) ShardResult {
	r := ShardResult{Rate: rate, Seed: seed}
	start := time.Now()
	dir, err := os.MkdirTemp("", "dangsan-shard-chaos")
	if err != nil {
		r.Violations = append(r.Violations, fmt.Sprintf("cold dir: %v", err))
		return r
	}
	defer os.RemoveAll(dir)
	scfg := service.Config{
		Shards:            cfg.Shards,
		HeapBytes:         cfg.HeapBytes,
		Audit:             true,
		QuarantineBytes:   256 << 10,
		QuarantineEpoch:   8,
		ColdSpillBytes:    pointerlog.MinColdSpillBytes,
		ColdDir:           dir,
		Seed:              uint64(seed),
		Transport:         cfg.Transport,
		WorkDir:           dir,
		RequestTimeout:    25 * time.Millisecond,
		Retry:             service.RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond, MaxElapsed: 100 * time.Millisecond},
		HeartbeatInterval: 2 * time.Millisecond,
		HeartbeatTimeout:  10 * time.Millisecond,
		HeartbeatMisses:   2,
		BreakerThreshold:  3,
		BreakerCooldown:   10 * time.Millisecond,
		SlowDelay:         60 * time.Millisecond,
		FreedWindow:       256,
	}
	if cfg.wire() {
		// Process workers pay exec/scheduling noise a goroutine never sees;
		// padded timings keep the disruptions — not OS jitter — the thing
		// the cell measures.
		scfg.RequestTimeout = 100 * time.Millisecond
		scfg.Retry = service.RetryPolicy{MaxAttempts: 3, BaseDelay: 200 * time.Microsecond, MaxDelay: 2 * time.Millisecond, MaxElapsed: 500 * time.Millisecond}
		scfg.HeartbeatInterval = 10 * time.Millisecond
		scfg.HeartbeatTimeout = 50 * time.Millisecond
		scfg.SlowDelay = 150 * time.Millisecond
	}
	svc, err := service.New(scfg)
	if err != nil {
		r.Violations = append(r.Violations, fmt.Sprintf("service start: %v", err))
		return r
	}
	defer svc.Close()

	// Continuous client load for the whole disruption script.
	stop := make(chan struct{})
	loadCh := make(chan service.LoadResult, 1)
	go func() {
		loadCh <- service.RunLoad(svc, service.LoadConfig{
			Clients:     cfg.Clients,
			Seed:        uint64(seed)*2654435761 + 1,
			HeavyFrac:   0.03,
			HeavyStores: 200,
			Stop:        stop,
		})
	}()

	// Deterministic disruption script: every kind runs 1 + rate×10 times
	// (at least one kill per cell, so failover + audit-across-restart is
	// always exercised), each against a seeded shard choice, each waiting
	// for the supervisor to complete the failover before the next hit.
	rng := shardRNG{state: uint64(seed) ^ 0xc4a5}
	reps := 1 + int(rate*10)
	// Wire cells pay process spawn + per-op replay round trips per
	// failover (slower still under the race detector), so their recovery
	// waits get a bigger budget than the in-process cells.
	waitBudget := 10 * time.Second
	if cfg.wire() {
		waitBudget = 30 * time.Second
	}
	kinds := []string{"kill", "hang", "slow"}
	if cfg.wire() {
		// Process cells add the stages a goroutine can't model: a real
		// SIGKILL (failover must rebuild from the dead process's spill
		// file), and the network faults — the worker is healthy, the wire
		// is not, so no failover is owed; the shard just has to come back
		// clean once the one-shot faults burn off.
		kinds = append(kinds, "sigkill", "partition", "trickle", "garbage")
	}
	for _, kind := range kinds {
		netFault := kind == "partition" || kind == "trickle" || kind == "garbage"
		for i := 0; i < reps; i++ {
			shard := int(rng.next() % uint64(cfg.Shards))
			before := svc.Counters().Failovers
			if derr := svc.Disrupt(shard, kind); derr != nil {
				r.Violations = append(r.Violations, fmt.Sprintf("disrupt %s shard %d: %v", kind, shard, derr))
				continue
			}
			switch kind {
			case "kill":
				r.Kills++
			case "hang":
				r.Hangs++
			case "slow":
				r.Slows++
			case "sigkill":
				r.SigKills++
			case "partition":
				r.Partitions++
			case "trickle":
				r.Trickles++
			case "garbage":
				r.Garbage++
			}
			if netFault {
				// Recovery here means the shard answers a clean stats
				// exchange again — poisoned connections redialed, any
				// heartbeat-triggered rebuild finished.
				if !waitCondition(waitBudget, func() bool {
					_, _, _, serr := svc.DetectorStats(shard)
					return serr == nil
				}) {
					r.Violations = append(r.Violations,
						fmt.Sprintf("%s shard %d (rep %d): shard never recovered from network fault", kind, shard, i))
				}
				continue
			}
			if !waitCondition(waitBudget, func() bool { return svc.Counters().Failovers > before }) {
				r.Violations = append(r.Violations,
					fmt.Sprintf("%s shard %d (rep %d): failover never completed", kind, shard, i))
			}
		}
	}

	close(stop)
	load := <-loadCh
	r.Issued, r.Degraded, r.Detected, r.Missed = load.Issued, load.Degraded, load.Detected, load.MissedUAF
	r.Violations = append(r.Violations, load.Violations()...)

	// End-of-cell cross-check: drain every quarantine, then require the
	// audit identity on every (rebuilt) worker and fold in any violations
	// the service recorded during failovers. A trailing failover (a net
	// fault's heartbeat misses can trigger a rebuild right as the script
	// ends) surfaces as transient typed errors here, so both checks retry
	// until the service settles; only never settling is a violation.
	var qerr error
	if !waitCondition(waitBudget, func() bool { qerr = svc.Quiesce(); return qerr == nil }) {
		r.Violations = append(r.Violations, fmt.Sprintf("quiesce: %v", qerr))
	}
	for i := 0; i < svc.Shards(); i++ {
		var audit []string
		var serr error
		ok := waitCondition(waitBudget, func() bool {
			_, _, audit, serr = svc.DetectorStats(i)
			return serr == nil
		})
		if !ok {
			r.Violations = append(r.Violations, fmt.Sprintf("shard %d stats: %v", i, serr))
			continue
		}
		for _, v := range audit {
			r.Violations = append(r.Violations, fmt.Sprintf("shard %d audit: %s", i, v))
		}
	}
	r.Violations = append(r.Violations, svc.Violations()...)
	c := svc.Counters()
	r.Failovers, r.RecoveredLocs, r.Replayed = c.Failovers, c.RecoveredLocs, c.ReplayedObjects
	r.Seconds = time.Since(start).Seconds()
	return r
}

// waitCondition polls cond every millisecond up to d.
func waitCondition(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// SweepShards runs the rate × seed grid of sharded-service cells.
func SweepShards(cfg ShardConfig, rates []float64, seeds []int64) []ShardResult {
	var out []ShardResult
	for _, rate := range rates {
		for _, seed := range seeds {
			out = append(out, RunShard(cfg, rate, seed))
		}
	}
	return out
}

// FailedShards summarizes the violating cells (empty: the sweep passed).
func FailedShards(results []ShardResult) []string {
	var out []string
	for _, r := range results {
		for _, v := range r.Violations {
			out = append(out, fmt.Sprintf("rate=%g seed=%d: %s", r.Rate, r.Seed, v))
		}
	}
	return out
}
