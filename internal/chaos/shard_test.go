package chaos

import (
	"testing"
	"time"
)

func shardTestConfig() ShardConfig {
	return ShardConfig{
		Shards:  4,
		Clients: 4,
		Timeout: 120 * time.Second,
	}
}

// TestShardSweepInvariants is the sharded-service acceptance gate: a
// rate × seed grid of cells, each driving a supervised 4-shard service
// with concurrent clients while the disruption script kills, hangs, and
// slows shards — with zero invariant violations: no false UAF verdicts,
// no untyped client errors, no hangs past the watchdog, and the audit
// identity holding on every rebuilt worker.
func TestShardSweepInvariants(t *testing.T) {
	rates := []float64{0.0, 0.1, 0.3}
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		rates = rates[:2]
		seeds = seeds[:2]
	}
	results := SweepShards(shardTestConfig(), rates, seeds)
	if len(results) != len(rates)*len(seeds) {
		t.Fatalf("grid has %d cells, want %d", len(results), len(rates)*len(seeds))
	}
	for _, v := range FailedShards(results) {
		t.Error(v)
	}
	for _, r := range results {
		t.Logf("rate=%g seed=%d: %.2fs kills=%d hangs=%d slows=%d failovers=%d replayed=%d recovered=%d issued=%d degraded=%d detected=%d missed=%d",
			r.Rate, r.Seed, r.Seconds, r.Kills, r.Hangs, r.Slows,
			r.Failovers, r.Replayed, r.RecoveredLocs, r.Issued, r.Degraded, r.Detected, r.Missed)
		// Every cell injects at least one disruption of each kind, and the
		// supervisor must have rebuilt a worker for every one of them.
		if r.Kills == 0 {
			t.Errorf("rate=%g seed=%d: no kill injected; failover was not exercised", r.Rate, r.Seed)
		}
		if r.Failovers < uint64(r.Kills+r.Hangs+r.Slows) {
			t.Errorf("rate=%g seed=%d: %d disruptions but only %d failovers",
				r.Rate, r.Seed, r.Kills+r.Hangs+r.Slows, r.Failovers)
		}
		if r.Issued == 0 {
			t.Errorf("rate=%g seed=%d: load generator issued nothing", r.Rate, r.Seed)
		}
	}
}

// TestWireShardSweepInvariants runs the sharded-service chaos grid with
// workers as real OS processes over unix sockets. On top of the in-process
// script it injects real SIGKILLs and the network stages — partition
// (connection dropped mid-request), trickle (byte-at-a-time writes until
// the deadline), garbage (non-frame bytes ahead of a request) — and holds
// the same invariants: no false UAF, no hang, typed errors only, audit
// identity on every rebuilt worker process.
func TestWireShardSweepInvariants(t *testing.T) {
	cfg := ShardConfig{
		Shards:    2,
		Clients:   2,
		Timeout:   180 * time.Second,
		Transport: "unix",
	}
	rates := []float64{0.0, 0.1}
	seeds := []int64{1, 2}
	if testing.Short() {
		rates = rates[:1]
		seeds = seeds[:1]
	}
	results := SweepShards(cfg, rates, seeds)
	for _, v := range FailedShards(results) {
		t.Error(v)
	}
	for _, r := range results {
		t.Logf("rate=%g seed=%d: %.2fs kills=%d hangs=%d slows=%d sigkills=%d partitions=%d trickles=%d garbage=%d failovers=%d replayed=%d recovered=%d issued=%d degraded=%d detected=%d missed=%d",
			r.Rate, r.Seed, r.Seconds, r.Kills, r.Hangs, r.Slows,
			r.SigKills, r.Partitions, r.Trickles, r.Garbage,
			r.Failovers, r.Replayed, r.RecoveredLocs, r.Issued, r.Degraded, r.Detected, r.Missed)
		if r.SigKills == 0 || r.Partitions == 0 || r.Trickles == 0 || r.Garbage == 0 {
			t.Errorf("rate=%g seed=%d: wire stages not all injected (sigkill=%d partition=%d trickle=%d garbage=%d)",
				r.Rate, r.Seed, r.SigKills, r.Partitions, r.Trickles, r.Garbage)
		}
		// Every queue-observed disruption and every SIGKILL owes a completed
		// failover; network faults do not (the worker process never died).
		if r.Failovers < uint64(r.Kills+r.Hangs+r.Slows+r.SigKills) {
			t.Errorf("rate=%g seed=%d: %d process disruptions but only %d failovers",
				r.Rate, r.Seed, r.Kills+r.Hangs+r.Slows+r.SigKills, r.Failovers)
		}
		if r.Issued == 0 {
			t.Errorf("rate=%g seed=%d: load generator issued nothing", r.Rate, r.Seed)
		}
	}
}

// TestShardCellRebuildCoversColdTier: the heavy-key fraction of the load
// pushes location sets across the cold spill threshold, so at least one
// failover in a multi-kill cell must have recovered spilled locations via
// ReadSegments and replayed journal objects into the replacement worker.
func TestShardCellRebuildCoversColdTier(t *testing.T) {
	r := RunShard(shardTestConfig(), 0.3, 42)
	if len(r.Violations) != 0 {
		t.Fatalf("violations: %v", r.Violations)
	}
	if r.Replayed == 0 {
		t.Fatal("no journal objects replayed across any failover")
	}
	if r.RecoveredLocs == 0 {
		t.Fatal("no cold-spill locations recovered across any failover")
	}
}
