package chaos

import (
	"testing"
	"time"

	"dangsan/internal/workloads"
)

// testConfig keeps chaos cells quick enough for the race detector.
func testConfig() Config {
	return Config{
		Workers:  4,
		Requests: 120,
		Timeout:  90 * time.Second,
	}
}

// TestSweepInvariants is the chaos acceptance gate: a rate × seed grid of
// cells, each running the server workload concurrently and audited plus the
// exploit suite, with zero invariant violations — no false UAF, no hangs,
// no panics, no audit drift, no missed detections at full coverage.
func TestSweepInvariants(t *testing.T) {
	rates := []float64{0.02, 0.1, 0.3}
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		rates = rates[:2]
		seeds = seeds[:2]
	}
	results := Sweep(testConfig(), rates, seeds)
	for _, v := range Failed(results) {
		t.Error(v)
	}
	var injected uint64
	for _, r := range results {
		injected += r.Injected
		t.Logf("rate=%g seed=%d: %.3fs completed=%v oom=%v injected=%d degraded=%d dropped=%d",
			r.Rate, r.Seed, r.Seconds, r.Completed, r.OOMAborted, r.Injected, r.Degraded, r.Dropped)
	}
	if injected == 0 {
		t.Fatal("sweep injected nothing; the plane is not wired in")
	}
}

// TestZeroRateCellIsClean: with the plane armed at rate 0 nothing is
// injected, nothing degrades, and the run completes with full detection.
func TestZeroRateCellIsClean(t *testing.T) {
	r := Run(testConfig(), 0, 1)
	if len(r.Violations) != 0 {
		t.Fatalf("violations at rate 0: %v", r.Violations)
	}
	if !r.Completed || r.OOMAborted {
		t.Fatalf("rate-0 run should complete: completed=%v oom=%v", r.Completed, r.OOMAborted)
	}
	if r.Injected != 0 || r.Degraded != 0 || r.Dropped != 0 {
		t.Fatalf("rate-0 run should be untouched: injected=%d degraded=%d dropped=%d",
			r.Injected, r.Degraded, r.Dropped)
	}
	for _, e := range r.Exploits {
		if e.Skipped || !e.Prevented {
			t.Errorf("exploit %s at rate 0: skipped=%v prevented=%v (%s)",
				e.Name, e.Skipped, e.Prevented, e.Detail)
		}
	}
}

// TestMetadataPressureDegradesGracefully: a tiny MaxMetadataBytes budget
// (no injected faults at all) must push the detector into degraded mode —
// the server still completes every request, objects simply go untracked.
func TestMetadataPressureDegradesGracefully(t *testing.T) {
	cfg := testConfig()
	cfg.MaxMetadataBytes = 64 << 10
	cfg.SkipExploits = true // coverage is expected to be lost here
	r := Run(cfg, 0, 1)
	if len(r.Violations) != 0 {
		t.Fatalf("violations under metadata pressure: %v", r.Violations)
	}
	if !r.Completed {
		t.Fatalf("server must finish degraded instead of failing: oom=%v", r.OOMAborted)
	}
	if r.Degraded == 0 {
		t.Fatal("tiny metadata budget produced no degraded objects")
	}
}

// TestSweepGridShape: Sweep runs every cell of the grid.
func TestSweepGridShape(t *testing.T) {
	cfg := testConfig()
	cfg.Requests = 20
	cfg.Workers = 2
	cfg.SkipExploits = true
	results := Sweep(cfg, []float64{0, 0.5}, []int64{7, 8, 9})
	if len(results) != 6 {
		t.Fatalf("got %d results, want 6", len(results))
	}
	seen := map[[2]int64]bool{}
	for _, r := range results {
		seen[[2]int64{int64(r.Rate * 10), r.Seed}] = true
	}
	if len(seen) != 6 {
		t.Fatalf("cells not distinct: %v", seen)
	}
}

// TestProfileOverride: a custom profile flows through to the runs.
func TestProfileOverride(t *testing.T) {
	prof, err := workloads.ServerProfileByName("cherokee")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Profile = prof
	cfg.Requests = 20
	cfg.SkipExploits = true
	r := Run(cfg, 0.05, 42)
	if len(r.Violations) != 0 {
		t.Fatalf("cherokee cell violations: %v", r.Violations)
	}
}
