package rbtree

import (
	"math/rand"
	"testing"
)

func TestInsertLookup(t *testing.T) {
	var tr Tree
	tr.Insert(100, 200, "a")
	tr.Insert(300, 350, "b")
	tr.Insert(0, 50, "c")

	cases := []struct {
		addr uint64
		want string
		ok   bool
	}{
		{100, "a", true},
		{199, "a", true},
		{200, "", false},
		{99, "", false},
		{300, "b", true},
		{349, "b", true},
		{25, "c", true},
		{50, "", false},
		{1000, "", false},
	}
	for _, c := range cases {
		v, ok := tr.LookupContaining(c.addr)
		if ok != c.ok || (ok && v.(string) != c.want) {
			t.Errorf("LookupContaining(%d) = %v, %v; want %q, %v", c.addr, v, ok, c.want, c.ok)
		}
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestInsertReplace(t *testing.T) {
	var tr Tree
	tr.Insert(10, 20, 1)
	tr.Insert(10, 30, 2)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after replace", tr.Len())
	}
	v, ok := tr.LookupContaining(25)
	if !ok || v.(int) != 2 {
		t.Fatalf("lookup in extended range: %v, %v", v, ok)
	}
}

func TestDelete(t *testing.T) {
	var tr Tree
	tr.Insert(10, 20, "x")
	tr.Insert(30, 40, "y")
	if !tr.Delete(10) {
		t.Fatal("delete failed")
	}
	if tr.Delete(10) {
		t.Fatal("second delete succeeded")
	}
	if _, ok := tr.LookupContaining(15); ok {
		t.Fatal("deleted range still found")
	}
	if v, ok := tr.LookupContaining(35); !ok || v.(string) != "y" {
		t.Fatal("surviving range lost")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestDeleteEmptyAndMissing(t *testing.T) {
	var tr Tree
	if tr.Delete(5) {
		t.Fatal("delete on empty tree succeeded")
	}
	tr.Insert(10, 20, nil)
	if tr.Delete(15) {
		t.Fatal("delete of non-base address succeeded")
	}
}

func TestWalkOrder(t *testing.T) {
	var tr Tree
	bases := []uint64{50, 10, 90, 30, 70}
	for _, b := range bases {
		tr.Insert(b, b+5, b)
	}
	var got []uint64
	tr.Walk(func(base, end uint64, v Value) bool {
		got = append(got, base)
		return true
	})
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("walk out of order: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("walked %d nodes", len(got))
	}
	// Early termination.
	count := 0
	tr.Walk(func(base, end uint64, v Value) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestRandomOpsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var tr Tree
	ref := make(map[uint64]uint64) // base -> end
	for i := 0; i < 5000; i++ {
		if len(ref) > 0 && rng.Intn(3) == 0 {
			// Delete a random existing base.
			for base := range ref {
				if !tr.Delete(base) {
					t.Fatalf("delete of existing base %d failed", base)
				}
				delete(ref, base)
				break
			}
		} else {
			base := uint64(rng.Intn(1 << 20))
			end := base + uint64(rng.Intn(64)+1)
			tr.Insert(base, end, base)
			ref[base] = end
		}
		if i%500 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("iter %d: %v", i, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
	}
	// Every stored base must resolve.
	for base, end := range ref {
		v, ok := tr.LookupContaining(base)
		if !ok || v.(uint64) != base {
			t.Fatalf("lost range [%d,%d)", base, end)
		}
	}
}

func TestEmptyRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty range accepted")
		}
	}()
	var tr Tree
	tr.Insert(10, 10, nil)
}

func BenchmarkLookup1e5(b *testing.B) {
	var tr Tree
	for i := 0; i < 100000; i++ {
		base := uint64(i) * 64
		tr.Insert(base, base+48, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tr.LookupContaining(uint64(i%100000)*64 + 10); !ok {
			b.Fatal("miss")
		}
	}
}
