// Package rbtree implements a left-leaning red-black tree keyed by address
// ranges. It is the object-lookup substrate for the DangNULL baseline
// (internal/detectors/dangnull): DangNULL maps pointer values to objects
// with a balanced tree, whose O(log n) lookups degrade as the number of
// live objects grows — the design point the paper's §4.3 argues against and
// the mapper ablation benchmark quantifies.
//
// Ranges never overlap (they are live heap objects), so the tree is keyed
// by range base; a containing-range query finds the greatest base <= addr
// and checks the range end.
package rbtree

// Value is the payload associated with a range.
type Value interface{}

const (
	red   = true
	black = false
)

type node struct {
	base, end   uint64 // [base, end)
	value       Value
	left, right *node
	color       bool
}

// Tree is a left-leaning red-black interval tree. Not safe for concurrent
// use; DangNULL serializes access with its global lock.
type Tree struct {
	root *node
	size int
}

// Len returns the number of ranges in the tree.
func (t *Tree) Len() int { return t.size }

func isRed(n *node) bool { return n != nil && n.color == red }

func rotateLeft(h *node) *node {
	x := h.right
	h.right = x.left
	x.left = h
	x.color = h.color
	h.color = red
	return x
}

func rotateRight(h *node) *node {
	x := h.left
	h.left = x.right
	x.right = h
	x.color = h.color
	h.color = red
	return x
}

func flipColors(h *node) {
	h.color = !h.color
	h.left.color = !h.left.color
	h.right.color = !h.right.color
}

func fixUp(h *node) *node {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	return h
}

// Insert adds the range [base, end) with the given value. Inserting a range
// with an existing base replaces its value and end.
func (t *Tree) Insert(base, end uint64, v Value) {
	if end <= base {
		panic("rbtree: empty range")
	}
	var grew bool
	t.root, grew = t.insert(t.root, base, end, v)
	t.root.color = black
	if grew {
		t.size++
	}
}

func (t *Tree) insert(h *node, base, end uint64, v Value) (*node, bool) {
	if h == nil {
		return &node{base: base, end: end, value: v, color: red}, true
	}
	var grew bool
	switch {
	case base < h.base:
		h.left, grew = t.insert(h.left, base, end, v)
	case base > h.base:
		h.right, grew = t.insert(h.right, base, end, v)
	default:
		h.end, h.value = end, v
	}
	return fixUp(h), grew
}

// LookupContaining returns the value of the range containing addr.
func (t *Tree) LookupContaining(addr uint64) (Value, bool) {
	n := t.root
	var candidate *node
	for n != nil {
		if addr < n.base {
			n = n.left
		} else {
			candidate = n
			n = n.right
		}
	}
	if candidate != nil && addr < candidate.end {
		return candidate.value, true
	}
	return nil, false
}

// Get returns the value of the range whose base is exactly base.
func (t *Tree) Get(base uint64) (Value, bool) {
	n := t.root
	for n != nil {
		switch {
		case base < n.base:
			n = n.left
		case base > n.base:
			n = n.right
		default:
			return n.value, true
		}
	}
	return nil, false
}

// Delete removes the range whose base is exactly base, reporting whether it
// existed.
func (t *Tree) Delete(base uint64) bool {
	if _, ok := t.Get(base); !ok {
		return false
	}
	t.root = t.delete(t.root, base)
	if t.root != nil {
		t.root.color = black
	}
	t.size--
	return true
}

func moveRedLeft(h *node) *node {
	flipColors(h)
	if isRed(h.right.left) {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		flipColors(h)
	}
	return h
}

func moveRedRight(h *node) *node {
	flipColors(h)
	if isRed(h.left.left) {
		h = rotateRight(h)
		flipColors(h)
	}
	return h
}

func minNode(h *node) *node {
	for h.left != nil {
		h = h.left
	}
	return h
}

func (t *Tree) deleteMin(h *node) *node {
	if h.left == nil {
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = t.deleteMin(h.left)
	return fixUp(h)
}

func (t *Tree) delete(h *node, base uint64) *node {
	if base < h.base {
		if !isRed(h.left) && !isRed(h.left.left) {
			h = moveRedLeft(h)
		}
		h.left = t.delete(h.left, base)
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if base == h.base && h.right == nil {
			return nil
		}
		if !isRed(h.right) && !isRed(h.right.left) {
			h = moveRedRight(h)
		}
		if base == h.base {
			m := minNode(h.right)
			h.base, h.end, h.value = m.base, m.end, m.value
			h.right = t.deleteMin(h.right)
		} else {
			h.right = t.delete(h.right, base)
		}
	}
	return fixUp(h)
}

// Walk visits every range in base order.
func (t *Tree) Walk(fn func(base, end uint64, v Value) bool) {
	walk(t.root, fn)
}

func walk(n *node, fn func(base, end uint64, v Value) bool) bool {
	if n == nil {
		return true
	}
	if !walk(n.left, fn) {
		return false
	}
	if !fn(n.base, n.end, n.value) {
		return false
	}
	return walk(n.right, fn)
}

// CheckInvariants verifies red-black and BST invariants; used by tests.
func (t *Tree) CheckInvariants() error {
	_, err := check(t.root, 0, ^uint64(0))
	return err
}

type invariantError string

func (e invariantError) Error() string { return string(e) }

func check(n *node, lo, hi uint64) (int, error) {
	if n == nil {
		return 1, nil
	}
	if n.base < lo || n.base > hi {
		return 0, invariantError("BST order violated")
	}
	if isRed(n.right) {
		return 0, invariantError("right-leaning red link")
	}
	if isRed(n) && isRed(n.left) {
		return 0, invariantError("consecutive red links")
	}
	lh, err := check(n.left, lo, n.base)
	if err != nil {
		return 0, err
	}
	rh, err := check(n.right, n.base, hi)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, invariantError("black height mismatch")
	}
	if !isRed(n) {
		lh++
	}
	return lh, nil
}
