package rbtree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestModelEquivalenceQuick drives the tree and a map model with the same
// random operation tape and checks they always agree — the model-based
// property test for the DangNULL substrate.
func TestModelEquivalenceQuick(t *testing.T) {
	f := func(seed int64, opsRaw []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		var tr Tree
		model := map[uint64]uint64{} // base -> end
		for _, op := range opsRaw {
			base := uint64(rng.Intn(1<<12) * 16)
			switch op % 3 {
			case 0: // insert
				end := base + uint64(rng.Intn(15)+1)
				tr.Insert(base, end, end)
				model[base] = end
			case 1: // delete
				okTree := tr.Delete(base)
				_, okModel := model[base]
				if okTree != okModel {
					return false
				}
				delete(model, base)
			case 2: // lookup containing a probe address
				probe := base + uint64(rng.Intn(20))
				v, ok := tr.LookupContaining(probe)
				// Model answer: greatest base <= probe with probe < end.
				var wantOK bool
				var wantEnd uint64
				var bestBase uint64
				for b, e := range model {
					if b <= probe && probe < e && (!wantOK || b > bestBase) {
						wantOK, bestBase, wantEnd = true, b, e
					}
				}
				if ok != wantOK {
					return false
				}
				if ok && v.(uint64) != wantEnd {
					return false
				}
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		return tr.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
