package sizeclass

import (
	"testing"
	"testing/quick"
)

func TestClassTableInvariants(t *testing.T) {
	if NumClasses() < 20 {
		t.Fatalf("suspiciously few classes: %d", NumClasses())
	}
	prev := uint64(0)
	for c := 0; c < NumClasses(); c++ {
		cl := ForClass(c)
		if cl.Size <= prev {
			t.Fatalf("class %d size %d not increasing (prev %d)", c, cl.Size, prev)
		}
		prev = cl.Size
		if cl.Align == 0 || cl.Align&(cl.Align-1) != 0 {
			t.Fatalf("class %d alignment %d not a power of two", c, cl.Align)
		}
		if cl.Size%cl.Align != 0 {
			t.Fatalf("class %d size %d not a multiple of alignment %d", c, cl.Size, cl.Align)
		}
		if cl.Pages < 1 {
			t.Fatalf("class %d has %d pages", c, cl.Pages)
		}
		spanBytes := uint64(cl.Pages) * PageSize
		if cl.ObjectsPerSpan != int(spanBytes/cl.Size) {
			t.Fatalf("class %d objectsPerSpan mismatch", c)
		}
		if cl.ObjectsPerSpan < 1 {
			t.Fatalf("class %d holds no objects", c)
		}
		// The waste heuristic: at most 1/8 of the span unusable.
		waste := spanBytes % cl.Size
		if waste > spanBytes/8 {
			t.Fatalf("class %d wastes %d of %d bytes", c, waste, spanBytes)
		}
	}
	if ForClass(NumClasses()-1).Size != MaxSmallSize {
		t.Fatalf("last class size = %d, want %d", ForClass(NumClasses()-1).Size, MaxSmallSize)
	}
}

func TestSizeToClassExact(t *testing.T) {
	// Every class size must map to its own class.
	for c := 0; c < NumClasses(); c++ {
		if got := SizeToClass(ForClass(c).Size); got != c {
			t.Fatalf("SizeToClass(%d) = %d, want %d", ForClass(c).Size, got, c)
		}
	}
}

func TestSizeToClassBounds(t *testing.T) {
	cases := []uint64{1, 7, 8, 9, 16, 100, 1024, 1025, 4096, 100000, MaxSmallSize}
	for _, size := range cases {
		c := SizeToClass(size)
		cl := ForClass(c)
		if cl.Size < size {
			t.Errorf("SizeToClass(%d) -> class size %d is too small", size, cl.Size)
		}
		if c > 0 && ForClass(c-1).Size >= size {
			t.Errorf("SizeToClass(%d) -> class %d, but class %d (size %d) suffices",
				size, c, c-1, ForClass(c-1).Size)
		}
	}
}

func TestSizeToClassPanics(t *testing.T) {
	for _, size := range []uint64{0, MaxSmallSize + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SizeToClass(%d) did not panic", size)
				}
			}()
			SizeToClass(size)
		}()
	}
}

func TestRoundUp(t *testing.T) {
	if got := RoundUp(1); got != MinAlign {
		t.Errorf("RoundUp(1) = %d, want %d", got, MinAlign)
	}
	if got := RoundUp(MaxSmallSize + 1); got != MaxSmallSize+PageSize {
		// MaxSmallSize is page aligned, so +1 rounds to one more page.
		t.Errorf("RoundUp(MaxSmallSize+1) = %d", got)
	}
	if got := RoundUp(1 << 20); got != 1<<20 {
		t.Errorf("RoundUp(1MiB) = %d, want exact", got)
	}
}

// Property: SizeToClass returns the tightest class for every size, and
// RoundUp never shrinks a request and wastes at most 12.5% + alignment.
func TestSizeToClassProperty(t *testing.T) {
	f := func(raw uint32) bool {
		size := uint64(raw)%MaxSmallSize + 1
		c := SizeToClass(size)
		cl := ForClass(c)
		if cl.Size < size {
			return false
		}
		if c > 0 && ForClass(c-1).Size >= size {
			return false
		}
		return RoundUp(size) == cl.Size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
