// Package sizeclass computes the tcmalloc-style size class table used by the
// simulated allocator.
//
// DangSan's pointer-to-object mapper relies on a layout invariant that
// tcmalloc provides: every span (run of pages) holds objects of exactly one
// size class, every object in a span starts at a multiple of the class's
// power-of-two alignment, and large allocations are page aligned. That
// invariant is what makes variable-compression-ratio memory shadowing
// possible — the shadow map stores, per page, the log2 of the object
// alignment in that page, and metadata lookup is a shift and an add.
package sizeclass

import "dangsan/internal/vmem"

const (
	// MinAlign is the minimum alignment of any allocation.
	MinAlign = 8
	// MaxSmallSize is the largest size served from size classes; bigger
	// allocations get dedicated page-aligned spans.
	MaxSmallSize = 256 << 10
	// PageSize mirrors the simulated page size.
	PageSize = vmem.PageSize

	smallGranularity = 8 // lookup granularity below smallCutoff
	smallCutoff      = 1024
	largeGranularity = 128 // lookup granularity between smallCutoff and MaxSmallSize
)

// Class describes one size class.
type Class struct {
	// Size is the object size in bytes (all objects in the class's spans
	// occupy exactly Size bytes).
	Size uint64
	// Pages is the number of pages in one span of this class.
	Pages int
	// Align is the power-of-two alignment of objects in this class. The
	// object stride (Size) is always a multiple of Align.
	Align uint64
	// ObjectsPerSpan is Pages*PageSize/Size.
	ObjectsPerSpan int
}

var (
	classes []Class
	// classBySmall maps (size+7)/8 to a class index for size <= smallCutoff.
	classBySmall [smallCutoff/smallGranularity + 1]int32
	// classByLarge maps (size+127)/128 to a class index for
	// smallCutoff < size <= MaxSmallSize.
	classByLarge [MaxSmallSize/largeGranularity + 1]int32
)

// lgFloor returns floor(log2(n)) for n > 0.
func lgFloor(n uint64) uint {
	lg := uint(0)
	for n > 1 {
		n >>= 1
		lg++
	}
	return lg
}

// alignmentFor mirrors tcmalloc's AlignmentForSize: 8 bytes for tiny
// objects, then 1/8 of the enclosing power of two (giving roughly 12.5%
// size-class steps), capped at a page.
func alignmentFor(size uint64) uint64 {
	var align uint64
	switch {
	case size > MaxSmallSize:
		align = PageSize
	case size >= 128:
		align = (uint64(1) << lgFloor(size)) / 8
	case size >= MinAlign:
		align = MinAlign
	default:
		align = MinAlign
	}
	if align > PageSize {
		align = PageSize
	}
	return align
}

// pagesFor picks the span length for a class so that per-span waste stays
// under 1/8 and spans hold a reasonable number of objects, following
// tcmalloc's heuristic.
func pagesFor(size uint64) int {
	pages := 1
	for {
		spanBytes := uint64(pages) * PageSize
		waste := spanBytes % size
		if waste <= spanBytes/8 {
			return pages
		}
		pages++
	}
}

func init() {
	// Generate candidate sizes with tcmalloc's alignment ladder and merge
	// classes whose spans would hold the same number of objects.
	var sizes []uint64
	for size := uint64(MinAlign); size <= MaxSmallSize; {
		sizes = append(sizes, size)
		size += alignmentFor(size)
	}
	for _, size := range sizes {
		pages := pagesFor(size)
		objs := uint64(pages) * PageSize / size
		if n := len(classes); n > 0 {
			prev := &classes[n-1]
			// Merge: if a span of the previous class's page count holds the
			// same number of these larger objects, the previous class is
			// redundant — replace it.
			if prev.Pages == pages && uint64(prev.ObjectsPerSpan) == objs {
				prev.Size = size
				prev.Align = alignmentFor(size)
				continue
			}
		}
		classes = append(classes, Class{
			Size:           size,
			Pages:          pages,
			Align:          alignmentFor(size),
			ObjectsPerSpan: int(objs),
		})
	}
	// Build the two-level lookup arrays.
	ci := int32(0)
	for i := range classBySmall {
		size := uint64(i) * smallGranularity
		for classes[ci].Size < size {
			ci++
		}
		classBySmall[i] = ci
	}
	ci = 0
	for i := range classByLarge {
		size := uint64(i) * largeGranularity
		for classes[ci].Size < size {
			ci++
		}
		classByLarge[i] = ci
	}
}

// NumClasses returns the number of size classes.
func NumClasses() int { return len(classes) }

// ForClass returns the descriptor of class c.
func ForClass(c int) Class { return classes[c] }

// SizeToClass maps an allocation size (1..MaxSmallSize) to its class index.
// It panics for size 0 or size > MaxSmallSize; callers route large sizes to
// the page heap directly.
func SizeToClass(size uint64) int {
	switch {
	case size == 0:
		panic("sizeclass: zero size")
	case size <= smallCutoff:
		return int(classBySmall[(size+smallGranularity-1)/smallGranularity])
	case size <= MaxSmallSize:
		return int(classByLarge[(size+largeGranularity-1)/largeGranularity])
	default:
		panic("sizeclass: size exceeds MaxSmallSize")
	}
}

// RoundUp returns the allocated size for a request of the given size: the
// class size for small requests, whole pages for large ones.
func RoundUp(size uint64) uint64 {
	if size <= MaxSmallSize {
		return classes[SizeToClass(size)].Size
	}
	return (size + PageSize - 1) &^ (PageSize - 1)
}
