package instrument_test

import (
	"strings"
	"testing"

	"dangsan/internal/instrument"
	"dangsan/internal/ir"
	"dangsan/internal/irparse"
)

func mustParse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := irparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func countOps(f *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == op {
				n++
			}
		}
	}
	return n
}

func TestInsertAfterPtrStore(t *testing.T) {
	m := mustParse(t, `
global g 8
func main() {
entry:
  r0 = malloc 64
  r1 = global g
  store ptr [r1], r0
  store i64 [r1], 42
  ret
}`)
	res, err := instrument.Pass(m, instrument.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.PtrStores != 1 || res.Inserted != 1 {
		t.Fatalf("result: %+v", res)
	}
	f := m.Funcs["main"]
	if countOps(f, ir.OpRegPtr) != 1 {
		t.Fatal("regptr count wrong")
	}
	// The hook must directly follow the pointer store with its operands.
	instrs := f.Blocks[0].Instrs
	for i := range instrs {
		if instrs[i].Op == ir.OpStore && instrs[i].StoreType == ir.Ptr {
			next := instrs[i+1]
			if next.Op != ir.OpRegPtr || next.A != instrs[i].A || next.B != instrs[i].B {
				t.Fatalf("hook after store: %+v", next)
			}
			return
		}
	}
	t.Fatal("pointer store not found")
}

func TestElideArithmeticUpdate(t *testing.T) {
	// p = p + 8 into the slot p was loaded from: no re-registration needed.
	m := mustParse(t, `
global g 8
func main() {
entry:
  r0 = malloc 64
  r1 = global g
  store ptr [r1], r0
  r2 = load ptr [r1]
  r3 = gep r2, 8
  store ptr [r1], r3
  ret
}`)
	res, err := instrument.Pass(m, instrument.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.PtrStores != 2 || res.Inserted != 1 || res.ElidedArithmetic != 1 {
		t.Fatalf("result: %+v", res)
	}
}

func TestNoElisionAcrossClobber(t *testing.T) {
	// A call between the load and the store may free or overwrite: the
	// elision must not fire.
	m := mustParse(t, `
global g 8
func clobber() {
entry:
  ret
}
func main() {
entry:
  r0 = malloc 64
  r1 = global g
  store ptr [r1], r0
  r2 = load ptr [r1]
  r3 = gep r2, 8
  call clobber()
  store ptr [r1], r3
  ret
}`)
	res, err := instrument.Pass(m, instrument.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.ElidedArithmetic != 0 || res.Inserted != 2 {
		t.Fatalf("result: %+v", res)
	}
}

func TestNoElisionWithoutGep(t *testing.T) {
	// Storing back an unmodified loaded pointer is not the arithmetic
	// pattern (it is the lookback's job at run time).
	m := mustParse(t, `
global g 8
func main() {
entry:
  r0 = malloc 64
  r1 = global g
  store ptr [r1], r0
  r2 = load ptr [r1]
  store ptr [r1], r2
  ret
}`)
	res, err := instrument.Pass(m, instrument.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.ElidedArithmetic != 0 {
		t.Fatalf("result: %+v", res)
	}
}

const loopStoreSrc = `
global g 8
func main() {
entry:
  r0 = malloc 64
  r1 = global g
  r2 = mov 0
  br head
head:
  r3 = icmp lt r2, 100
  br r3, body, exit
body:
  store ptr [r1], r0
  r2 = add r2, 1
  br head
exit:
  free r0
  ret
}`

func TestHoistLoopInvariant(t *testing.T) {
	m := mustParse(t, loopStoreSrc)
	res, err := instrument.Pass(m, instrument.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Hoisted != 1 || res.Inserted != 0 {
		t.Fatalf("result: %+v", res)
	}
	f := m.Funcs["main"]
	// The hook landed in a block that is not part of the loop body.
	var hookBlock *ir.Block
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpRegPtr {
				hookBlock = b
			}
		}
	}
	if hookBlock == nil {
		t.Fatal("no hook found")
	}
	if hookBlock.Name == "body" || hookBlock.Name == "head" {
		t.Fatalf("hook still inside the loop: %s", hookBlock.Name)
	}
	// The module must still validate and print.
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.String(), "regptr") {
		t.Fatal("printed module lost the hook")
	}
}

func TestNoHoistWhenLoopFrees(t *testing.T) {
	m := mustParse(t, `
global g 8
func main() {
entry:
  r1 = global g
  r2 = mov 0
  br head
head:
  r3 = icmp lt r2, 10
  br r3, body, exit
body:
  r0 = malloc 64
  store ptr [r1], r0
  free r0
  r2 = add r2, 1
  br head
exit:
  ret
}`)
	res, err := instrument.Pass(m, instrument.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Hoisted != 0 || res.Inserted != 1 {
		t.Fatalf("result: %+v", res)
	}
}

func TestNoHoistWhenValueVaries(t *testing.T) {
	m := mustParse(t, `
global g 8
func main() {
entry:
  r1 = global g
  r2 = mov 0
  br head
head:
  r3 = icmp lt r2, 10
  br r3, body, exit
body:
  r0 = malloc 64
  store ptr [r1], r0
  r2 = add r2, 1
  br head
exit:
  ret
}`)
	res, err := instrument.Pass(m, instrument.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// r0 is redefined each iteration: the store's value is loop-variant.
	if res.Hoisted != 0 || res.Inserted != 1 {
		t.Fatalf("result: %+v", res)
	}
}

func TestOptionsDisableOptimizations(t *testing.T) {
	m := mustParse(t, loopStoreSrc)
	res, err := instrument.Pass(m, instrument.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hoisted != 0 || res.ElidedArithmetic != 0 || res.Inserted != 1 {
		t.Fatalf("result: %+v", res)
	}
}

func TestHoistDeduplicates(t *testing.T) {
	// Two identical invariant stores in one loop produce one hoisted hook.
	m := mustParse(t, `
global g 8
func main() {
entry:
  r0 = malloc 64
  r1 = global g
  r2 = mov 0
  br head
head:
  r3 = icmp lt r2, 10
  br r3, body, exit
body:
  store ptr [r1], r0
  store ptr [r1], r0
  r2 = add r2, 1
  br head
exit:
  ret
}`)
	res, err := instrument.Pass(m, instrument.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Hoisted != 2 {
		t.Fatalf("hoisted = %d", res.Hoisted)
	}
	if n := countOps(m.Funcs["main"], ir.OpRegPtr); n != 1 {
		t.Fatalf("regptr instructions = %d, want 1 (deduplicated)", n)
	}
}

// TestElideDerefChecks pins the checked-dereference elision rule: accesses
// whose address chains back (through gep/mov, within the block) to a fresh
// malloc, an alloca, or a global are marked NoCheck; an address that came
// out of memory — the shape of a use-after-free read — or that crosses a
// possible free is not.
func TestElideDerefChecks(t *testing.T) {
	m := mustParse(t, `
global g 8
func main() {
entry:
  r0 = malloc 64
  r1 = gep r0, 8
  store i64 [r1], 1
  r2 = load i64 [r1]
  r3 = alloca 16
  store i64 [r3], 2
  r4 = global g
  store ptr [r4], r0
  r5 = load ptr [r4]
  r6 = load i64 [r5]
  free r0
  r7 = load i64 [r1]
  ret
}`)
	res, err := instrument.Pass(m, instrument.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f := m.Funcs["main"]
	var elided, checked []string
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != ir.OpLoad && in.Op != ir.OpStore {
				continue
			}
			if in.NoCheck {
				elided = append(elided, in.String())
			} else {
				checked = append(checked, in.String())
			}
		}
	}
	// Elided: the store through the fresh malloc's gep (r1), the alloca
	// store (r3), and the ptr store whose address comes straight from the
	// adjacent global instruction (r4).
	wantElided := 3
	// Checked: the load back through r1 (an OpStore hazard intervenes
	// between the malloc and it), the load from the global (hazard: the
	// ptr store), the deref of the loaded pointer (r5 — address from
	// memory, the UAF shape), and the load after free (r7's check — the
	// free hazard intervenes).
	wantChecked := 4
	if len(elided) != wantElided || len(checked) != wantChecked {
		t.Fatalf("elided=%v checked=%v, want %d/%d", elided, checked, wantElided, wantChecked)
	}
	if res.ElidedChecks != wantElided || res.DerefChecks != wantChecked {
		t.Fatalf("result: %+v", res)
	}
	for _, s := range checked {
		if strings.Contains(s, "[r5]") {
			// double-check the UAF-shaped deref kept its check
			goto ok
		}
	}
	t.Fatal("load through memory-sourced pointer not in checked set")
ok:
	// With the option off, nothing is marked and nothing is counted.
	m2 := mustParse(t, `
func main() {
entry:
  r0 = malloc 64
  r1 = load i64 [r0]
  ret
}`)
	res2, err := instrument.Pass(m2, instrument.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ElidedChecks != 0 || res2.DerefChecks != 0 {
		t.Fatalf("option off: %+v", res2)
	}
	for _, b := range m2.Funcs["main"].Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].NoCheck {
				t.Fatal("NoCheck set with option off")
			}
		}
	}
}
