// Package instrument implements the DangSan pointer-tracker compiler pass
// (paper §4.1 and §6): it scans every function for stores of pointer-typed
// values and inserts a registerptr hook (ir.OpRegPtr) after each one, except
// where static analysis proves the registration redundant:
//
//   - Pointer-arithmetic elision: a store of the form p = p ± k into the
//     slot p was loaded from cannot change which object the slot refers to
//     (out-of-bounds arithmetic is undefined behaviour, and the +1
//     allocation pad covers one-past-the-end), so no re-registration is
//     needed.
//   - Loop-invariant hoisting: a registration whose location and value are
//     loop-invariant, inside a loop that provably cannot call free, is
//     moved to the loop preheader and executed once.
package instrument

import (
	"fmt"

	"dangsan/internal/ir"
	"dangsan/internal/ir/analysis"
)

// Result reports what the pass did, for tests and the compiler example.
type Result struct {
	// PtrStores is the number of pointer-typed stores seen.
	PtrStores int
	// Inserted is the number of inline registerptr hooks inserted.
	Inserted int
	// Hoisted is the number of registrations moved to loop preheaders.
	Hoisted int
	// ElidedArithmetic is the number of registrations removed by the
	// pointer-arithmetic rule.
	ElidedArithmetic int
	// DerefChecks is the number of loads and stores left carrying a
	// dereference check for the checked-dereference detectors (camp, xtag).
	// Counted only when ElideDerefChecks runs.
	DerefChecks int
	// ElidedChecks is the number of dereference checks removed because the
	// accessed address was proved to target a live object.
	ElidedChecks int
}

// Options control which optimizations run (for ablation).
type Options struct {
	// HoistLoopInvariant enables the loop optimization.
	HoistLoopInvariant bool
	// ElideArithmetic enables the pointer-arithmetic optimization.
	ElideArithmetic bool
	// ElideDerefChecks enables the checked-dereference elision used by the
	// camp configuration: loads and stores whose address provably targets a
	// live object are marked ir.Instr.NoCheck, so the runtime skips the
	// detector's range/tag check (the CAMP paper's "remove checks the
	// allocator can prove safe" optimization).
	ElideDerefChecks bool
}

// DefaultOptions enables every optimization, as DangSan does.
func DefaultOptions() Options {
	return Options{HoistLoopInvariant: true, ElideArithmetic: true, ElideDerefChecks: true}
}

// Pass instruments the module in place and returns statistics. The module
// must be finalized; it is re-finalized before returning.
func Pass(m *ir.Module, opts Options) (Result, error) {
	var res Result
	mayFree := analysis.MayFree(m)
	for _, f := range m.Funcs {
		instrumentFunc(m, f, mayFree, opts, &res)
		if opts.ElideDerefChecks {
			elideDerefChecks(f, &res)
		}
	}
	if err := m.Finalize(); err != nil {
		return res, fmt.Errorf("instrument: %w", err)
	}
	return res, nil
}

// hoistTarget identifies a loop that will receive hoisted registrations.
type hoistTarget struct {
	loop *analysis.Loop
	// regs are the (loc, val) operand pairs to register in the preheader,
	// deduplicated.
	regs []ir.Instr
	seen map[[2]ir.Value]bool
}

func instrumentFunc(m *ir.Module, f *ir.Func, mayFree map[string]bool, opts Options, res *Result) {
	cfg := analysis.BuildCFG(f)
	idom := analysis.Dominators(cfg)
	loops := analysis.NaturalLoops(cfg, idom)

	// Precompute loop metadata: def sets and freedom from free.
	type loopInfo struct {
		loop     *analysis.Loop
		defs     map[int]bool
		freeless bool
		size     int
	}
	infos := make([]loopInfo, 0, len(loops))
	for _, l := range loops {
		infos = append(infos, loopInfo{
			loop:     l,
			defs:     analysis.DefsIn(f, l),
			freeless: !analysis.LoopMayFree(f, l, mayFree),
			size:     len(l.Blocks),
		})
	}

	hoists := make(map[*analysis.Loop]*hoistTarget)

	nBlocks := len(f.Blocks) // original blocks only; preheaders appended later
	for bi := 0; bi < nBlocks; bi++ {
		b := f.Blocks[bi]
		out := make([]ir.Instr, 0, len(b.Instrs)+4)
		for ii := range b.Instrs {
			in := b.Instrs[ii]
			out = append(out, in)
			if in.Op != ir.OpStore || in.StoreType != ir.Ptr {
				continue
			}
			res.PtrStores++

			if opts.ElideArithmetic && isArithmeticUpdate(b, ii) {
				res.ElidedArithmetic++
				continue
			}

			if opts.HoistLoopInvariant {
				// Pick the largest free-less loop containing this block in
				// which both operands are invariant.
				var best *loopInfo
				for i := range infos {
					li := &infos[i]
					if !li.loop.Blocks[bi] || !li.freeless {
						continue
					}
					// A loop whose header is the function entry has no
					// out-of-loop edge to splice a preheader onto.
					if li.loop.Header == 0 {
						continue
					}
					if !analysis.Invariant(in.A, li.defs) || !analysis.Invariant(in.B, li.defs) {
						continue
					}
					if best == nil || li.size > best.size {
						best = li
					}
				}
				if best != nil {
					ht := hoists[best.loop]
					if ht == nil {
						ht = &hoistTarget{loop: best.loop, seen: make(map[[2]ir.Value]bool)}
						hoists[best.loop] = ht
					}
					key := [2]ir.Value{in.A, in.B}
					if !ht.seen[key] {
						ht.seen[key] = true
						ht.regs = append(ht.regs, ir.Instr{
							Op: ir.OpRegPtr, Dst: -1, A: in.A, B: in.B,
						})
					}
					res.Hoisted++
					continue
				}
			}

			out = append(out, ir.Instr{Op: ir.OpRegPtr, Dst: -1, A: in.A, B: in.B})
			res.Inserted++
		}
		b.Instrs = out
	}

	// Materialize preheaders and place hoisted registrations.
	for _, ht := range hoists {
		ph := ensurePreheader(f, cfg, ht.loop)
		ph.Instrs = append(ph.Instrs, ht.regs...)
	}
}

// isArithmeticUpdate recognizes, within a single block:
//
//	rX = load ptr [A]
//	rY = gep rX, <k>           (possibly through moves)
//	store ptr [A], rY          <- the store at index si
//
// with no intervening instruction that could write memory, free, or
// redefine the involved registers. Such a store keeps the slot pointing
// into the same object, so its registration can be elided (paper §6).
func isArithmeticUpdate(b *ir.Block, si int) bool {
	st := &b.Instrs[si]
	if !st.B.IsReg {
		return false
	}
	// Walk backwards resolving the stored register through gep/mov chains
	// until we reach a load from the same address operand.
	reg := st.B.Reg
	sawGep := false
	for i := si - 1; i >= 0; i-- {
		in := &b.Instrs[i]
		// Instructions that may write memory or free invalidate the window.
		switch in.Op {
		case ir.OpStore, ir.OpCall, ir.OpSpawn, ir.OpFree, ir.OpRealloc:
			return false
		}
		if in.Dst != reg {
			// Redefinition of the address operand's register also breaks
			// the pattern.
			if st.A.IsReg && in.Dst == st.A.Reg {
				return false
			}
			continue
		}
		switch in.Op {
		case ir.OpGep:
			if !in.A.IsReg {
				return false
			}
			reg = in.A.Reg
			sawGep = true
		case ir.OpMov:
			if !in.A.IsReg {
				return false
			}
			reg = in.A.Reg
		case ir.OpLoad:
			return sawGep && in.LoadType == ir.Ptr && sameValue(in.A, st.A)
		default:
			return false
		}
	}
	return false
}

func sameValue(a, b ir.Value) bool {
	return a.IsReg == b.IsReg && a.Reg == b.Reg && a.Imm == b.Imm
}

// elideDerefChecks marks every load and store whose address provably
// targets a live object with ir.Instr.NoCheck, so the runtime skips the
// checked-dereference detectors' validation. Runs after instrumentation
// (the inserted OpRegPtr hooks are transparent to the proof).
func elideDerefChecks(f *ir.Func, res *Result) {
	for _, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op != ir.OpLoad && in.Op != ir.OpStore {
				continue
			}
			if addrProvablyLive(b, ii) {
				in.NoCheck = true
				res.ElidedChecks++
			} else {
				res.DerefChecks++
			}
		}
	}
}

// addrProvablyLive reports whether the address operand of the load/store at
// index si provably targets a live object, within its block:
//
//	rX = alloca <n> | global <g> | malloc <n>
//	rY = gep/mov chain over rX
//	load/store ... [rY]          <- the access at index si
//
// with no intervening instruction that could free an object or publish the
// pointer to code that might (store, call, spawn, free, realloc). Stack and
// global storage is never freed; a heap object fresh from malloc cannot be
// freed before its address escapes, even by another thread. A register
// whose value came out of memory (OpLoad) is never proved — that is exactly
// the shape of a use-after-free read, and its check must stay.
func addrProvablyLive(b *ir.Block, si int) bool {
	a := b.Instrs[si].A
	if !a.IsReg {
		return false
	}
	reg := a.Reg
	for i := si - 1; i >= 0; i-- {
		in := &b.Instrs[i]
		// Hazards: anything that may free an object, run code that frees,
		// or let the pointer escape to a freeing thread.
		switch in.Op {
		case ir.OpStore, ir.OpCall, ir.OpSpawn, ir.OpFree, ir.OpRealloc:
			return false
		}
		if in.Dst != reg {
			continue
		}
		switch in.Op {
		case ir.OpMov, ir.OpGep:
			if !in.A.IsReg {
				return false
			}
			reg = in.A.Reg
		case ir.OpAlloca, ir.OpGlobal, ir.OpMalloc:
			return true
		default:
			return false
		}
	}
	return false
}

// ensurePreheader returns a block that executes exactly once before the
// loop is entered: the unique out-of-loop predecessor when it has a single
// successor, or a freshly created block spliced onto every out-of-loop edge
// into the header.
func ensurePreheader(f *ir.Func, cfg *analysis.CFG, l *analysis.Loop) *ir.Block {
	header := l.Header
	var outside []int
	for _, p := range cfg.Preds[header] {
		if !l.Blocks[p] {
			outside = append(outside, p)
		}
	}
	if len(outside) == 1 {
		p := f.Blocks[outside[0]]
		if p.Term.Kind == ir.TermBr && p.Term.Then == header {
			return p
		}
	}
	ph := &ir.Block{
		Name: fmt.Sprintf("%s.preheader", f.Blocks[header].Name),
		Term: ir.Terminator{Kind: ir.TermBr, Then: header},
	}
	f.Blocks = append(f.Blocks, ph)
	phIdx := len(f.Blocks) - 1
	ph.Index = phIdx
	for _, pi := range outside {
		t := &f.Blocks[pi].Term
		if t.Kind == ir.TermBr || t.Kind == ir.TermCondBr {
			if t.Then == header {
				t.Then = phIdx
			}
			if t.Kind == ir.TermCondBr && t.Else == header {
				t.Else = phIdx
			}
		}
	}
	return ph
}
