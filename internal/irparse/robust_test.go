package irparse

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property: the parser never panics, whatever bytes it is fed — it either
// produces a module or an error.
func TestParseNeverPanicsQuick(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Mutation robustness: valid programs with random line-level corruption
// must parse or fail cleanly, never panic, and never mis-parse into a
// module that fails finalization later.
func TestParseMutationRobustness(t *testing.T) {
	base := `
global g 8
func helper(p ptr) i64 {
entry:
  r1 = load i64 [p]
  ret r1
}
func main() i64 {
entry:
  r0 = malloc 64
  r1 = global g
  store ptr [r1], r0
  r2 = call helper(r0)
  free r0
  ret r2
}`
	tokens := []string{"r0", "free", "[", "]", "=", "ptr", "br", "}", "{", "call", "###", ","}
	rng := rand.New(rand.NewSource(5))
	lines := strings.Split(base, "\n")
	for iter := 0; iter < 500; iter++ {
		mutated := make([]string, len(lines))
		copy(mutated, lines)
		li := rng.Intn(len(mutated))
		switch rng.Intn(3) {
		case 0: // inject a token
			mutated[li] += " " + tokens[rng.Intn(len(tokens))]
		case 1: // truncate a line
			if len(mutated[li]) > 2 {
				mutated[li] = mutated[li][:rng.Intn(len(mutated[li]))]
			}
		case 2: // duplicate a line
			mutated = append(mutated[:li], append([]string{mutated[li]}, mutated[li:]...)...)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("iter %d panicked: %v\n%s", iter, r, strings.Join(mutated, "\n"))
				}
			}()
			_, _ = Parse(strings.Join(mutated, "\n"))
		}()
	}
}
