package irparse

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property: the parser never panics, whatever bytes it is fed — it either
// produces a module or an error.
func TestParseNeverPanicsQuick(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestParseRegressionCorpus is the deterministic companion to FuzzParse: a
// corpus of malformed inputs that each probe a distinct failure path
// (truncation, bad operands, structural errors, hostile tokens). Each must
// produce a module or an error — never a panic. Inputs the fuzzer surfaces
// as crashers get minimized and added here.
func TestParseRegressionCorpus(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"whitespace", " \t \n\n  \t\n"},
		{"nul-bytes", "func\x00main() {\x00ret\n}"},
		{"crlf", "func main() i64 {\r\n  ret 0\r\n}\r\n"},
		{"truncated-func", "func main() i64 {"},
		{"unopened-brace", "ret 0\n}"},
		{"double-brace", "func f() {{\n  ret\n}"},
		{"label-only", "func f() {\nL:\n}"},
		{"missing-param-type", "func f(v) {\n  ret\n}"},
		{"param-comma-garbage", "func f(,) {\n  ret\n}"},
		{"huge-int", "func f() i64 {\n  ret 99999999999999999999999999\n}"},
		{"negative-hex", "func f() i64 {\n  ret -0x8000000000000000\n}"},
		{"bad-store-type", "func f() {\n  store f64 [r1], 0\n  ret\n}"},
		{"store-no-bracket", "func f() {\n  store i64 r1, 0\n  ret\n}"},
		{"icmp-bad-pred", "func f() {\n  r1 = icmp wat 1, 2\n  ret\n}"},
		{"call-unclosed", "func f() {\n  r1 = call g(1, 2\n  ret\n}"},
		{"br-three-args", "func f() {\n  br 1, a, b, c\n  ret\n}"},
		{"dup-global", "global g 8\nglobal g 16\n"},
		{"global-bad-size", "global g -8\n"},
		{"assign-no-rhs", "func f() {\n  r1 =\n  ret\n}"},
		{"deep-gep-chain", "func f() {\n" + strings.Repeat("  r1 = gep r1, 8\n", 500) + "  ret\n}"},
		{"unicode-name", "func fé() {\n  ret\n}"},
		{"huge-register", "func f() {\n  r999999999999999999999 = mov 0\n  ret\n}"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse panicked: %v", r)
				}
			}()
			m, err := Parse(tc.src)
			if err == nil && m == nil {
				t.Fatal("nil module and nil error")
			}
		})
	}
}

// Mutation robustness: valid programs with random line-level corruption
// must parse or fail cleanly, never panic, and never mis-parse into a
// module that fails finalization later.
func TestParseMutationRobustness(t *testing.T) {
	base := `
global g 8
func helper(p ptr) i64 {
entry:
  r1 = load i64 [p]
  ret r1
}
func main() i64 {
entry:
  r0 = malloc 64
  r1 = global g
  store ptr [r1], r0
  r2 = call helper(r0)
  free r0
  ret r2
}`
	tokens := []string{"r0", "free", "[", "]", "=", "ptr", "br", "}", "{", "call", "###", ","}
	rng := rand.New(rand.NewSource(5))
	lines := strings.Split(base, "\n")
	for iter := 0; iter < 500; iter++ {
		mutated := make([]string, len(lines))
		copy(mutated, lines)
		li := rng.Intn(len(mutated))
		switch rng.Intn(3) {
		case 0: // inject a token
			mutated[li] += " " + tokens[rng.Intn(len(tokens))]
		case 1: // truncate a line
			if len(mutated[li]) > 2 {
				mutated[li] = mutated[li][:rng.Intn(len(mutated[li]))]
			}
		case 2: // duplicate a line
			mutated = append(mutated[:li], append([]string{mutated[li]}, mutated[li:]...)...)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("iter %d panicked: %v\n%s", iter, r, strings.Join(mutated, "\n"))
				}
			}()
			_, _ = Parse(strings.Join(mutated, "\n"))
		}()
	}
}
