// Package irparse parses the textual form of the internal/ir intermediate
// representation, so that example programs and the dangsan-run tool can
// compile and execute standalone .ir files. The syntax mirrors a simplified
// LLVM assembly; see the package tests and examples/compiler for grammar
// examples.
package irparse

import (
	"fmt"
	"strconv"
	"strings"

	"dangsan/internal/ir"
)

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
}

type parser struct {
	lines []string
	pos   int // current line index
	mod   *ir.Module
}

// Parse parses a module and finalizes it.
func Parse(src string) (*ir.Module, error) {
	p := &parser{
		lines: strings.Split(src, "\n"),
		mod:   ir.NewModule(),
	}
	if err := p.parseModule(); err != nil {
		return nil, err
	}
	if err := p.mod.Finalize(); err != nil {
		return nil, err
	}
	return p.mod, nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{Line: p.pos + 1, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next non-empty line with comments stripped, or "" at EOF.
func (p *parser) next() string {
	for p.pos < len(p.lines) {
		line := p.lines[p.pos]
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			return line
		}
		p.pos++
	}
	return ""
}

func (p *parser) parseModule() error {
	for {
		line := p.next()
		if line == "" {
			return nil
		}
		switch {
		case strings.HasPrefix(line, "global "):
			fields := strings.Fields(line)
			if len(fields) != 3 {
				return p.errf("global syntax: global <name> <size>")
			}
			size, err := strconv.ParseUint(fields[2], 0, 64)
			if err != nil {
				return p.errf("bad global size %q", fields[2])
			}
			p.mod.Globals = append(p.mod.Globals, ir.Global{Name: fields[1], Size: size})
			p.pos++
		case strings.HasPrefix(line, "func "):
			if err := p.parseFunc(line); err != nil {
				return err
			}
		default:
			return p.errf("expected 'global' or 'func', got %q", line)
		}
	}
}

// parseFunc parses a function from its header line through the closing '}'.
func (p *parser) parseFunc(header string) error {
	rest := strings.TrimPrefix(header, "func ")
	open := strings.Index(rest, "(")
	closeIdx := strings.Index(rest, ")")
	if open < 0 || closeIdx < open || !strings.HasSuffix(rest, "{") {
		return p.errf("function header syntax: func name(args...) [type] {")
	}
	f := &ir.Func{Name: strings.TrimSpace(rest[:open]), Ret: ir.Void}
	if f.Name == "" {
		return p.errf("missing function name")
	}
	regs := map[string]int{}
	if args := strings.TrimSpace(rest[open+1 : closeIdx]); args != "" {
		for _, a := range strings.Split(args, ",") {
			fields := strings.Fields(strings.TrimSpace(a))
			if len(fields) != 2 {
				return p.errf("parameter syntax: <name> <type>")
			}
			ty, err := p.parseType(fields[1])
			if err != nil {
				return err
			}
			regs[fields[0]] = len(f.Params)
			f.Params = append(f.Params, ir.Param{Name: fields[0], Type: ty})
		}
	}
	if tail := strings.TrimSpace(strings.TrimSuffix(rest[closeIdx+1:], "{")); tail != "" {
		ty, err := p.parseType(tail)
		if err != nil {
			return err
		}
		f.Ret = ty
	}
	p.pos++

	// First pass: collect blocks and raw lines; branch targets resolve at
	// the end.
	type rawBr struct {
		blockIdx int
		line     int
		cond     ir.Value
		hasCond  bool
		then     string
		els      string
	}
	var pendingBr []rawBr
	labelIdx := map[string]int{}
	var cur *ir.Block
	terminated := false

	startBlock := func(name string) error {
		if _, dup := labelIdx[name]; dup {
			return p.errf("duplicate label %q", name)
		}
		if cur != nil && !terminated {
			return p.errf("block %s lacks a terminator (no fallthrough)", cur.Name)
		}
		cur = &ir.Block{Name: name}
		labelIdx[name] = len(f.Blocks)
		f.Blocks = append(f.Blocks, cur)
		terminated = false
		return nil
	}

	for {
		line := p.next()
		if line == "" {
			return p.errf("unexpected end of file in func %s", f.Name)
		}
		if line == "}" {
			p.pos++
			break
		}
		if strings.HasSuffix(line, ":") && !strings.Contains(line, " ") {
			if err := startBlock(strings.TrimSuffix(line, ":")); err != nil {
				return err
			}
			p.pos++
			continue
		}
		if cur == nil {
			if err := startBlock("entry"); err != nil {
				return err
			}
		}
		if terminated {
			return p.errf("instruction after terminator in block %s", cur.Name)
		}
		switch {
		case strings.HasPrefix(line, "br "):
			args := splitArgs(strings.TrimPrefix(line, "br "))
			switch len(args) {
			case 1:
				pendingBr = append(pendingBr, rawBr{
					blockIdx: len(f.Blocks) - 1, line: p.pos + 1, then: args[0],
				})
			case 3:
				cond, err := p.parseValue(args[0], regs)
				if err != nil {
					return err
				}
				pendingBr = append(pendingBr, rawBr{
					blockIdx: len(f.Blocks) - 1, line: p.pos + 1,
					cond: cond, hasCond: true, then: args[1], els: args[2],
				})
			default:
				return p.errf("br syntax: 'br label' or 'br cond, l1, l2'")
			}
			terminated = true
		case line == "ret":
			cur.Term = ir.Terminator{Kind: ir.TermRet}
			terminated = true
		case strings.HasPrefix(line, "ret "):
			v, err := p.parseValue(strings.TrimSpace(strings.TrimPrefix(line, "ret ")), regs)
			if err != nil {
				return err
			}
			cur.Term = ir.Terminator{Kind: ir.TermRet, HasVal: true, Cond: v}
			terminated = true
		default:
			in, err := p.parseInstr(line, regs)
			if err != nil {
				return err
			}
			cur.Instrs = append(cur.Instrs, in)
		}
		p.pos++
	}
	if cur == nil {
		return p.errf("func %s has no body", f.Name)
	}
	if !terminated {
		return p.errf("func %s: last block %s lacks a terminator", f.Name, cur.Name)
	}
	for _, br := range pendingBr {
		b := f.Blocks[br.blockIdx]
		then, ok := labelIdx[br.then]
		if !ok {
			return &ParseError{Line: br.line, Msg: fmt.Sprintf("unknown label %q", br.then)}
		}
		if br.hasCond {
			els, ok := labelIdx[br.els]
			if !ok {
				return &ParseError{Line: br.line, Msg: fmt.Sprintf("unknown label %q", br.els)}
			}
			b.Term = ir.Terminator{Kind: ir.TermCondBr, Cond: br.cond, Then: then, Else: els}
		} else {
			b.Term = ir.Terminator{Kind: ir.TermBr, Then: then}
		}
	}
	if _, dup := p.mod.Funcs[f.Name]; dup {
		return p.errf("duplicate function %q", f.Name)
	}
	p.mod.Funcs[f.Name] = f
	return nil
}

func (p *parser) parseType(s string) (ir.Type, error) {
	switch s {
	case "i64":
		return ir.I64, nil
	case "ptr":
		return ir.Ptr, nil
	case "void":
		return ir.Void, nil
	default:
		return 0, p.errf("unknown type %q", s)
	}
}

// parseValue parses a register (rN or a parameter name) or an integer
// constant (decimal, hex, or negative).
func (p *parser) parseValue(s string, regs map[string]int) (ir.Value, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return ir.Value{}, p.errf("empty operand")
	}
	if n, ok := regs[s]; ok {
		return ir.R(n), nil
	}
	if len(s) > 1 && s[0] == 'r' {
		if n, err := strconv.Atoi(s[1:]); err == nil && n >= 0 {
			return ir.R(n), nil
		}
	}
	if i, err := strconv.ParseInt(s, 0, 64); err == nil {
		return ir.C(uint64(i)), nil
	}
	if u, err := strconv.ParseUint(s, 0, 64); err == nil {
		return ir.C(u), nil
	}
	return ir.Value{}, p.errf("bad operand %q", s)
}

// parseAddr parses a bracketed address operand "[v]".
func (p *parser) parseAddr(s string, regs map[string]int) (ir.Value, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return ir.Value{}, p.errf("expected [address], got %q", s)
	}
	return p.parseValue(s[1:len(s)-1], regs)
}

func splitArgs(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, x := range parts {
		if t := strings.TrimSpace(x); t != "" {
			out = append(out, t)
		}
	}
	return out
}

var binOps = map[string]ir.Op{
	"mov": ir.OpMov, "add": ir.OpAdd, "sub": ir.OpSub, "mul": ir.OpMul,
	"div": ir.OpDiv, "rem": ir.OpRem, "and": ir.OpAnd, "or": ir.OpOr,
	"xor": ir.OpXor, "shl": ir.OpShl, "shr": ir.OpShr,
}

var preds = map[string]ir.Pred{
	"eq": ir.PredEQ, "ne": ir.PredNE, "lt": ir.PredLT, "le": ir.PredLE,
	"gt": ir.PredGT, "ge": ir.PredGE, "slt": ir.PredSLT, "sgt": ir.PredSGT,
}

// parseInstr parses one non-terminator instruction.
func (p *parser) parseInstr(line string, regs map[string]int) (ir.Instr, error) {
	var dst = -1
	rest := line
	if eq := strings.Index(line, "="); eq >= 0 && !strings.Contains(line[:eq], "[") {
		dstTok := strings.TrimSpace(line[:eq])
		v, err := p.parseValue(dstTok, regs)
		if err != nil || !v.IsReg {
			return ir.Instr{}, p.errf("bad destination %q", dstTok)
		}
		dst = v.Reg
		rest = strings.TrimSpace(line[eq+1:])
	}
	op, rest := splitWord(rest)
	_, isBinOp := binOps[op]
	switch {
	case op == "mov":
		args := splitArgs(rest)
		if len(args) != 1 {
			return ir.Instr{}, p.errf("mov takes one operand")
		}
		v, err := p.parseValue(args[0], regs)
		if err != nil {
			return ir.Instr{}, err
		}
		return ir.Instr{Op: ir.OpMov, Dst: dst, A: v}, nil

	case isBinOp:
		args := splitArgs(rest)
		in := ir.Instr{Op: binOps[op], Dst: dst}
		if len(args) != 2 {
			return ir.Instr{}, p.errf("%s takes two operands", op)
		}
		var err error
		if in.A, err = p.parseValue(args[0], regs); err != nil {
			return ir.Instr{}, err
		}
		if in.B, err = p.parseValue(args[1], regs); err != nil {
			return ir.Instr{}, err
		}
		return in, nil

	case op == "icmp":
		predTok, rest2 := splitWord(rest)
		pred, ok := preds[predTok]
		if !ok {
			return ir.Instr{}, p.errf("unknown predicate %q", predTok)
		}
		args := splitArgs(rest2)
		if len(args) != 2 {
			return ir.Instr{}, p.errf("icmp takes two operands")
		}
		a, err := p.parseValue(args[0], regs)
		if err != nil {
			return ir.Instr{}, err
		}
		b, err := p.parseValue(args[1], regs)
		if err != nil {
			return ir.Instr{}, err
		}
		return ir.Instr{Op: ir.OpICmp, Dst: dst, Pred: pred, A: a, B: b}, nil

	case op == "gep":
		args := splitArgs(rest)
		if len(args) != 2 {
			return ir.Instr{}, p.errf("gep takes base, offset")
		}
		a, err := p.parseValue(args[0], regs)
		if err != nil {
			return ir.Instr{}, err
		}
		b, err := p.parseValue(args[1], regs)
		if err != nil {
			return ir.Instr{}, err
		}
		return ir.Instr{Op: ir.OpGep, Dst: dst, A: a, B: b}, nil

	case op == "load":
		tyTok, rest2 := splitWord(rest)
		ty, err := p.parseType(tyTok)
		if err != nil {
			return ir.Instr{}, err
		}
		addr, err := p.parseAddr(rest2, regs)
		if err != nil {
			return ir.Instr{}, err
		}
		return ir.Instr{Op: ir.OpLoad, Dst: dst, LoadType: ty, A: addr}, nil

	case op == "store":
		tyTok, rest2 := splitWord(rest)
		ty, err := p.parseType(tyTok)
		if err != nil {
			return ir.Instr{}, err
		}
		comma := strings.LastIndex(rest2, ",")
		if comma < 0 {
			return ir.Instr{}, p.errf("store syntax: store <type> [addr], <val>")
		}
		addr, err := p.parseAddr(rest2[:comma], regs)
		if err != nil {
			return ir.Instr{}, err
		}
		val, err := p.parseValue(rest2[comma+1:], regs)
		if err != nil {
			return ir.Instr{}, err
		}
		return ir.Instr{Op: ir.OpStore, Dst: -1, StoreType: ty, A: addr, B: val}, nil

	case op == "regptr":
		comma := strings.LastIndex(rest, ",")
		if comma < 0 {
			return ir.Instr{}, p.errf("regptr syntax: regptr [addr], <val>")
		}
		addr, err := p.parseAddr(rest[:comma], regs)
		if err != nil {
			return ir.Instr{}, err
		}
		val, err := p.parseValue(rest[comma+1:], regs)
		if err != nil {
			return ir.Instr{}, err
		}
		return ir.Instr{Op: ir.OpRegPtr, Dst: -1, A: addr, B: val}, nil

	case op == "alloca":
		size, err := strconv.ParseUint(strings.TrimSpace(rest), 0, 64)
		if err != nil {
			return ir.Instr{}, p.errf("alloca size %q", rest)
		}
		return ir.Instr{Op: ir.OpAlloca, Dst: dst, Size: size}, nil

	case op == "global":
		return ir.Instr{Op: ir.OpGlobal, Dst: dst, Name: strings.TrimSpace(rest)}, nil

	case op == "malloc":
		v, err := p.parseValue(rest, regs)
		if err != nil {
			return ir.Instr{}, err
		}
		return ir.Instr{Op: ir.OpMalloc, Dst: dst, A: v}, nil

	case op == "free":
		v, err := p.parseValue(rest, regs)
		if err != nil {
			return ir.Instr{}, err
		}
		return ir.Instr{Op: ir.OpFree, Dst: -1, A: v}, nil

	case op == "realloc":
		args := splitArgs(rest)
		if len(args) != 2 {
			return ir.Instr{}, p.errf("realloc takes ptr, size")
		}
		a, err := p.parseValue(args[0], regs)
		if err != nil {
			return ir.Instr{}, err
		}
		b, err := p.parseValue(args[1], regs)
		if err != nil {
			return ir.Instr{}, err
		}
		return ir.Instr{Op: ir.OpRealloc, Dst: dst, A: a, B: b}, nil

	case op == "call" || op == "spawn":
		name, args, err := p.parseCall(rest, regs)
		if err != nil {
			return ir.Instr{}, err
		}
		o := ir.OpCall
		if op == "spawn" {
			o = ir.OpSpawn
		}
		return ir.Instr{Op: o, Dst: dst, Name: name, Args: args}, nil

	case op == "join":
		v, err := p.parseValue(rest, regs)
		if err != nil {
			return ir.Instr{}, err
		}
		return ir.Instr{Op: ir.OpJoin, Dst: -1, A: v}, nil

	case op == "print":
		v, err := p.parseValue(rest, regs)
		if err != nil {
			return ir.Instr{}, err
		}
		return ir.Instr{Op: ir.OpPrint, Dst: -1, A: v}, nil

	default:
		return ir.Instr{}, p.errf("unknown instruction %q", op)
	}
}

func (p *parser) parseCall(s string, regs map[string]int) (string, []ir.Value, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(strings.TrimSpace(s), ")") {
		return "", nil, p.errf("call syntax: name(args...)")
	}
	name := strings.TrimSpace(s[:open])
	inner := strings.TrimSpace(s)
	inner = inner[open+1 : len(inner)-1]
	var args []ir.Value
	if strings.TrimSpace(inner) != "" {
		for _, a := range splitArgs(inner) {
			v, err := p.parseValue(a, regs)
			if err != nil {
				return "", nil, err
			}
			args = append(args, v)
		}
	}
	return name, args, nil
}

func splitWord(s string) (string, string) {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, ' '); i >= 0 {
		return s[:i], strings.TrimSpace(s[i+1:])
	}
	return s, ""
}
