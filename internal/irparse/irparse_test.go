package irparse

import (
	"strings"
	"testing"

	"dangsan/internal/ir"
)

const sampleProgram = `
global counter 8

func main() i64 {
entry:
  r0 = malloc 64          ; heap object
  r1 = global counter
  store ptr [r1], r0
  r2 = mov 0
  br loop
loop:
  r3 = icmp lt r2, 10
  br r3, body, done
body:
  r2 = add r2, 1
  br loop
done:
  free r0
  ret r2
}

func helper(p ptr, n i64) ptr {
entry:
  r2 = gep p, n
  ret r2
}
`

func TestParseSample(t *testing.T) {
	m, err := Parse(sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(m.Funcs))
	}
	main := m.Funcs["main"]
	if main.Ret != ir.I64 || len(main.Params) != 0 {
		t.Fatalf("main signature wrong: %+v", main)
	}
	if len(main.Blocks) != 4 {
		t.Fatalf("main blocks = %d", len(main.Blocks))
	}
	helper := m.Funcs["helper"]
	if len(helper.Params) != 2 || helper.Params[0].Type != ir.Ptr || helper.Params[1].Type != ir.I64 {
		t.Fatalf("helper params: %+v", helper.Params)
	}
	if helper.Ret != ir.Ptr {
		t.Fatalf("helper ret = %v", helper.Ret)
	}
	// Parameters map to registers 0 and 1; r2 = gep p, n uses them.
	gep := helper.Blocks[0].Instrs[0]
	if gep.Op != ir.OpGep || !gep.A.IsReg || gep.A.Reg != 0 || !gep.B.IsReg || gep.B.Reg != 1 {
		t.Fatalf("gep operands: %+v", gep)
	}
	if len(m.Globals) != 1 || m.Globals[0].Name != "counter" || m.Globals[0].Size != 8 {
		t.Fatalf("globals: %+v", m.Globals)
	}
}

func TestParseBranchTargets(t *testing.T) {
	m, err := Parse(sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	main := m.Funcs["main"]
	entry := main.Blocks[0]
	if entry.Term.Kind != ir.TermBr || main.Blocks[entry.Term.Then].Name != "loop" {
		t.Fatalf("entry terminator: %+v", entry.Term)
	}
	loop := main.Blocks[1]
	if loop.Term.Kind != ir.TermCondBr {
		t.Fatalf("loop terminator: %+v", loop.Term)
	}
	if main.Blocks[loop.Term.Then].Name != "body" || main.Blocks[loop.Term.Else].Name != "done" {
		t.Fatalf("condbr targets: %+v", loop.Term)
	}
}

func TestNoFallthrough(t *testing.T) {
	src := "func main() {\na:\n  r0 = mov 1\nb:\n  ret\n}"
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Fatalf("fallthrough accepted: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	m, err := Parse(sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	text := m.String()
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if m2.String() != text {
		t.Fatalf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text, m2.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown instr", "func main() {\nentry:\n  frobnicate r0\n  ret\n}", "unknown instruction"},
		{"unknown label", "func main() {\nentry:\n  br nowhere\n}", "unknown label"},
		{"unknown global", "func main() {\nentry:\n  r0 = global g\n  ret\n}", "unknown global"},
		{"unknown callee", "func main() {\nentry:\n  call nope()\n  ret\n}", "unknown function"},
		{"missing terminator", "func main() {\nentry:\n  r0 = mov 1\n}", "terminator"},
		{"arg count", "func f(n i64) {\nentry:\n  ret\n}\nfunc main() {\nentry:\n  call f()\n  ret\n}", "args"},
		{"dup label", "func main() {\na:\n  br a\na:\n  ret\n}", "duplicate label"},
		{"instr after term", "func main() {\nentry:\n  ret\n  r0 = mov 1\n}", "after terminator"},
		{"void with value", "func main() {\nentry:\n  ret 3\n}", "value returned"},
		{"missing ret value", "func main() i64 {\nentry:\n  ret\n}", "missing return value"},
		{"bad operand", "func main() {\nentry:\n  r0 = mov $x\n  ret\n}", "bad operand"},
		{"dup function", "func f() {\nentry:\n  ret\n}\nfunc f() {\nentry:\n  ret\n}", "duplicate function"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatal("no error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestParseNegativeAndHex(t *testing.T) {
	src := `
func main() i64 {
entry:
  r0 = mov -1
  r1 = mov 0xff
  r2 = add r0, r1
  ret r2
}`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	instrs := m.Funcs["main"].Blocks[0].Instrs
	if instrs[0].A.Imm != ^uint64(0) {
		t.Fatalf("mov -1 parsed as %d", instrs[0].A.Imm)
	}
	if instrs[1].A.Imm != 255 {
		t.Fatalf("mov 0xff parsed as %d", instrs[1].A.Imm)
	}
}

func TestParseSpawnJoin(t *testing.T) {
	src := `
func worker(n i64) {
entry:
  print n
  ret
}
func main() {
entry:
  r0 = spawn worker(7)
  join r0
  ret
}`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	instrs := m.Funcs["main"].Blocks[0].Instrs
	if instrs[0].Op != ir.OpSpawn || instrs[0].Name != "worker" {
		t.Fatalf("spawn: %+v", instrs[0])
	}
	if instrs[1].Op != ir.OpJoin {
		t.Fatalf("join: %+v", instrs[1])
	}
}
