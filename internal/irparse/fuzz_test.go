package irparse_test

import (
	"os"
	"path/filepath"
	"testing"

	"dangsan/internal/irparse"
)

// FuzzParse feeds arbitrary bytes to the parser. The contract is simple:
// Parse returns a module or an error, and never panics, regardless of
// input. The example programs seed the corpus with valid syntax so the
// fuzzer starts from inputs that reach deep into the grammar; the inline
// seeds cover constructs the examples don't use.
func FuzzParse(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "programs", "*.ir"))
	if err != nil || len(paths) == 0 {
		f.Fatalf("no example programs found: %v", err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add("global g 8\nfunc main() i64 {\n  r1 = global g\n  ret 0\n}\n")
	f.Add("func f(a i64, b ptr) {\nL:\n  br L\n}\n")
	f.Add("func m() {\n  r1 = icmp slt 1, -2\n  r2 = realloc r1, 0x10\n  join r2\n  ret\n}\n")
	f.Add("; comment\n# comment\nfunc main() i64 {\n  ret 9223372036854775807\n}\n")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := irparse.Parse(src)
		if err == nil && m == nil {
			t.Fatal("Parse returned nil module and nil error")
		}
	})
}
