package tcmalloc

import (
	"fmt"
	"sync/atomic"

	"dangsan/internal/faultinject"
	"dangsan/internal/obs"
	"dangsan/internal/sizeclass"
	"dangsan/internal/vmem"
)

// InvalidFreeError reports a free (or realloc) of a pointer that is not the
// base of a live allocation. This is the abort path from the paper's
// OpenSSL case study: freeing a pointer that DangSan already invalidated
// produces "attempt to free invalid pointer 0x80000000022ba510".
type InvalidFreeError struct {
	Addr uint64
}

func (e *InvalidFreeError) Error() string {
	return fmt.Sprintf("tcmalloc: attempt to free invalid pointer 0x%x", e.Addr)
}

// DoubleFreeError reports a free of an object that is already free.
type DoubleFreeError struct {
	Addr uint64
}

func (e *DoubleFreeError) Error() string {
	return fmt.Sprintf("tcmalloc: double free of pointer 0x%x", e.Addr)
}

// OutOfMemoryError reports heap-reservation exhaustion.
type OutOfMemoryError struct {
	Size uint64
}

func (e *OutOfMemoryError) Error() string {
	return fmt.Sprintf("tcmalloc: out of memory allocating %d bytes", e.Size)
}

// ReallocKind describes how a Realloc request was satisfied; the DangSan
// heap tracker must distinguish these cases (paper §4.2).
type ReallocKind int

const (
	// ReallocSame: the rounded size did not change; the object is untouched.
	ReallocSame ReallocKind = iota
	// ReallocInPlace: the object was grown or shrunk in place; pointers to
	// it remain valid but the object's extent changed.
	ReallocInPlace
	// ReallocMoved: a new object was allocated, bytes copied, old freed.
	ReallocMoved
)

// Stats is a snapshot of allocator-wide accounting.
type Stats struct {
	// LiveObjects is the number of currently allocated objects.
	LiveObjects uint64
	// LiveBytes is the usable bytes of currently allocated objects.
	LiveBytes uint64
	// TotalAllocs counts Malloc calls that succeeded (including the moves
	// performed by Realloc).
	TotalAllocs uint64
	// TotalFrees counts successful Free calls.
	TotalFrees uint64
	// HeapBytes is the total heap address range ever reserved.
	HeapBytes uint64
	// FreeListBytes is the bytes parked on page-heap free lists.
	FreeListBytes uint64
	// MappedBytes is the resident (mapped) bytes of the heap segment.
	MappedBytes uint64
}

// Allocator is the process-wide allocator state shared by all threads.
type Allocator struct {
	seg     *vmem.Segment
	heap    *pageHeap
	central []centralList

	liveObjects atomic.Uint64
	liveBytes   atomic.Uint64
	totalAllocs atomic.Uint64
	totalFrees  atomic.Uint64

	// classAllocs/classFrees count operations per size class; the trailing
	// element counts large spans. Plain atomics, no sharding: the caller's
	// thread cache already batches central traffic, and these sit next to
	// liveObjects/totalAllocs which the same paths already touch.
	classAllocs []atomic.Uint64
	classFrees  []atomic.Uint64
}

// New creates an allocator over the given heap segment (normally
// space.Heap()).
func New(seg *vmem.Segment) *Allocator {
	a := &Allocator{
		seg:         seg,
		heap:        newPageHeap(seg),
		central:     make([]centralList, sizeclass.NumClasses()),
		classAllocs: make([]atomic.Uint64, sizeclass.NumClasses()+1),
		classFrees:  make([]atomic.Uint64, sizeclass.NumClasses()+1),
	}
	for c := range a.central {
		a.central[c].class = c
		a.central[c].heap = a.heap
	}
	return a
}

// SizeClassCount holds one size class's row of the per-class breakdown.
type SizeClassCount struct {
	Class  int    `json:"class"`
	Size   uint64 `json:"size"` // 0 for the large-span row
	Allocs uint64 `json:"allocs"`
	Frees  uint64 `json:"frees"`
}

// SizeClassCounts returns the nonzero rows of the per-class operation
// counts. The large-span row reports Class == NumClasses and Size == 0.
func (a *Allocator) SizeClassCounts() []SizeClassCount {
	var out []SizeClassCount
	for c := range a.classAllocs {
		allocs, frees := a.classAllocs[c].Load(), a.classFrees[c].Load()
		if allocs == 0 && frees == 0 {
			continue
		}
		row := SizeClassCount{Class: c, Allocs: allocs, Frees: frees}
		if c < sizeclass.NumClasses() {
			row.Size = sizeclass.ForClass(c).Size
		}
		out = append(out, row)
	}
	return out
}

// CentralFreeBytes sums the bytes parked on central free lists (objects in
// partially used spans), the component of allocator slack that
// FreeListBytes — whole free spans in the page heap — does not cover.
func (a *Allocator) CentralFreeBytes() uint64 {
	var n uint64
	for c := range a.central {
		cl := &a.central[c]
		size := sizeclass.ForClass(c).Size
		cl.mu.Lock()
		for _, s := range cl.nonempty {
			n += uint64(len(s.freeObjs)) * size
		}
		cl.mu.Unlock()
	}
	return n
}

// AttachMetrics registers the allocator's instruments with reg: gauges
// over the Stats counters, central-list slack, and the per-sizeclass
// breakdown as a structured object. Safe to call with nil.
func (a *Allocator) AttachMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterFunc("tcmalloc.live_objects", func() int64 { return int64(a.liveObjects.Load()) })
	reg.RegisterFunc("tcmalloc.live_bytes", func() int64 { return int64(a.liveBytes.Load()) })
	reg.RegisterFunc("tcmalloc.total_allocs", func() int64 { return int64(a.totalAllocs.Load()) })
	reg.RegisterFunc("tcmalloc.total_frees", func() int64 { return int64(a.totalFrees.Load()) })
	reg.RegisterFunc("tcmalloc.pageheap_free_bytes", func() int64 {
		a.heap.mu.Lock()
		defer a.heap.mu.Unlock()
		return int64(a.heap.freeBytes)
	})
	reg.RegisterFunc("tcmalloc.central_free_bytes", func() int64 { return int64(a.CentralFreeBytes()) })
	reg.RegisterFunc("tcmalloc.mapped_bytes", func() int64 { return int64(a.seg.MappedBytes()) })
	reg.RegisterObject("tcmalloc.sizeclass", func() any { return a.SizeClassCounts() })
}

// NewThreadCache creates a cache for one thread. The caller owns it and must
// not share it between goroutines.
func (a *Allocator) NewThreadCache() *ThreadCache {
	return newThreadCache(a)
}

// InjectFaults attaches a fault-injection plane to the allocator's span
// allocation, central-list population, thread-cache refill, and heap page
// mapping. Injected failures surface as ordinary OutOfMemoryError values. A
// nil plane disables injection.
func (a *Allocator) InjectFaults(p *faultinject.Plane) {
	a.heap.faults.Store(p)
	a.seg.InjectFaults(p)
}

// Malloc allocates size bytes and returns the object base address. A size of
// zero allocates the minimum object, matching C malloc's unique-pointer
// behaviour.
func (tc *ThreadCache) Malloc(size uint64) (uint64, error) {
	a := tc.alloc
	if size == 0 {
		size = 1
	}
	var addr uint64
	if size <= sizeclass.MaxSmallSize {
		class := sizeclass.SizeToClass(size)
		addr = tc.pop(class)
		if addr == 0 {
			return 0, &OutOfMemoryError{Size: size}
		}
		s := a.heap.spanOf(addr)
		if idx, _ := s.objectIndex(addr); !s.setLive(idx) {
			panic(fmt.Sprintf("tcmalloc: allocated object 0x%x already live", addr))
		}
		a.liveBytes.Add(sizeclass.ForClass(class).Size)
		a.classAllocs[class].Add(1)
	} else {
		npages := int((size + vmem.PageSize - 1) / vmem.PageSize)
		s := a.heap.allocSpan(npages, spanLarge, 0)
		if s == nil {
			return 0, &OutOfMemoryError{Size: size}
		}
		addr = s.base
		a.liveBytes.Add(uint64(npages) * vmem.PageSize)
		a.classAllocs[len(a.classAllocs)-1].Add(1)
	}
	a.liveObjects.Add(1)
	a.totalAllocs.Add(1)
	return addr, nil
}

// Free releases the object at addr. It returns InvalidFreeError when addr is
// not the base of a live allocation — including the non-canonical addresses
// produced by DangSan's pointer invalidation — and DoubleFreeError when the
// object is already on a free list.
func (tc *ThreadCache) Free(addr uint64) error {
	a := tc.alloc
	if !vmem.Canonical(addr) {
		return &InvalidFreeError{Addr: addr}
	}
	s := a.heap.spanOf(addr)
	if s == nil {
		return &InvalidFreeError{Addr: addr}
	}
	switch s.state {
	case spanLarge:
		if addr != s.base {
			return &InvalidFreeError{Addr: addr}
		}
		a.liveBytes.Add(^(uint64(s.npages)*vmem.PageSize - 1))
		a.heap.freeSpan(s)
		a.classFrees[len(a.classFrees)-1].Add(1)
	case spanSmall:
		idx, exact := s.objectIndex(addr)
		if !exact {
			return &InvalidFreeError{Addr: addr}
		}
		if !s.clearLive(idx) {
			return &DoubleFreeError{Addr: addr}
		}
		class := s.class
		tc.push(class, addr)
		a.liveBytes.Add(^(sizeclass.ForClass(class).Size - 1))
		a.classFrees[class].Add(1)
	default:
		// Span is on a free list: the whole range is free already.
		return &DoubleFreeError{Addr: addr}
	}
	a.liveObjects.Add(^uint64(0))
	a.totalFrees.Add(1)
	return nil
}

// FreeBatch releases every object in bases, continuing past per-object
// errors so one bad address cannot strand the rest of an epoch batch. It
// returns the number of objects actually freed and the first error
// encountered. Built for the quarantine drain's memory-return path; like
// all ThreadCache methods it must run on the cache's owning goroutine (or
// under the caller's external lock).
func (tc *ThreadCache) FreeBatch(bases []uint64) (int, error) {
	freed := 0
	var first error
	for _, b := range bases {
		if err := tc.Free(b); err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		freed++
	}
	return freed, first
}

// TryResizeInPlace attempts to satisfy a realloc without moving the object:
// either the new size fits the existing storage (ReallocSame) or the
// object's large span is grown/shrunk in place (ReallocInPlace). It reports
// ok=false when the object would have to move — the caller then performs
// malloc+copy+free itself, which lets the DangSan heap tracker interpose on
// all three realloc cases separately (paper §4.2).
func (tc *ThreadCache) TryResizeInPlace(addr, newSize uint64) (ReallocKind, error, bool) {
	a := tc.alloc
	if !vmem.Canonical(addr) {
		return ReallocSame, &InvalidFreeError{Addr: addr}, false
	}
	s := a.heap.spanOf(addr)
	if s == nil {
		return ReallocSame, &InvalidFreeError{Addr: addr}, false
	}
	if newSize == 0 {
		newSize = 1
	}
	oldSize, ok := a.UsableSize(addr)
	if !ok {
		return ReallocSame, &InvalidFreeError{Addr: addr}, false
	}
	// Case 1: the new request fits the existing storage exactly.
	if newSize <= sizeclass.MaxSmallSize && s.state == spanSmall {
		if sizeclass.ForClass(sizeclass.SizeToClass(newSize)).Size == oldSize {
			return ReallocSame, nil, true
		}
	}
	if s.state == spanLarge && newSize > sizeclass.MaxSmallSize {
		wantPages := int((newSize + vmem.PageSize - 1) / vmem.PageSize)
		if wantPages == s.npages {
			return ReallocSame, nil, true
		}
		// Case 2: resize the large span in place when possible.
		if a.heap.resizeSpan(s, wantPages) {
			newBytes := uint64(s.npages) * vmem.PageSize
			a.liveBytes.Add(newBytes - oldSize) // wraps correctly when shrinking
			return ReallocInPlace, nil, true
		}
	}
	return ReallocSame, nil, false
}

// Realloc resizes the object at addr to newSize. It returns the (possibly
// new) address and how the request was satisfied. Realloc(0, n) behaves as
// Malloc(n); Realloc(addr, 0) behaves as Free + Malloc(minimum).
func (tc *ThreadCache) Realloc(addr, newSize uint64) (uint64, ReallocKind, error) {
	if addr == 0 {
		na, err := tc.Malloc(newSize)
		return na, ReallocMoved, err
	}
	a := tc.alloc
	kind, err, ok := tc.TryResizeInPlace(addr, newSize)
	if err != nil {
		return 0, ReallocSame, err
	}
	if ok {
		return addr, kind, nil
	}
	if newSize == 0 {
		newSize = 1
	}
	oldSize, usableOK := a.UsableSize(addr)
	if !usableOK {
		return 0, ReallocSame, &InvalidFreeError{Addr: addr}
	}
	// Case 3: move.
	newAddr, err := tc.Malloc(newSize)
	if err != nil {
		return 0, ReallocSame, err
	}
	n := oldSize
	if newSize < n {
		n = newSize
	}
	if f := reallocCopy(a.seg, newAddr, addr, n); f != nil {
		// Copy inside mapped, live objects cannot fault; treat as corruption.
		panic(f)
	}
	if err := tc.Free(addr); err != nil {
		return 0, ReallocSame, err
	}
	return newAddr, ReallocMoved, nil
}

// reallocCopy copies n bytes between two live heap objects word-wise.
func reallocCopy(seg *vmem.Segment, dst, src, n uint64) *vmem.Fault {
	i := uint64(0)
	for ; i+vmem.WordSize <= n; i += vmem.WordSize {
		w, f := seg.LoadWord(src + i)
		if f != nil {
			return f
		}
		if f := seg.StoreWord(dst+i, w); f != nil {
			return f
		}
	}
	for ; i < n; i++ {
		// Tail bytes: read-modify-write the destination word.
		w, f := seg.LoadWord((src + i) &^ 7)
		if f != nil {
			return f
		}
		b := byte(w >> (8 * ((src + i) & 7)))
		dw, f := seg.LoadWord((dst + i) &^ 7)
		if f != nil {
			return f
		}
		shift := 8 * ((dst + i) & 7)
		if f := seg.StoreWord((dst+i)&^7, dw&^(0xff<<shift)|uint64(b)<<shift); f != nil {
			return f
		}
	}
	return nil
}

// UsableSize returns the usable size of the live object whose base is addr.
func (a *Allocator) UsableSize(addr uint64) (uint64, bool) {
	s := a.heap.spanOf(addr)
	if s == nil {
		return 0, false
	}
	switch s.state {
	case spanSmall:
		idx, exact := s.objectIndex(addr)
		if !exact || !s.isLive(idx) {
			return 0, false
		}
		return sizeclass.ForClass(s.class).Size, true
	case spanLarge:
		if addr != s.base {
			return 0, false
		}
		return uint64(s.npages) * vmem.PageSize, true
	}
	return 0, false
}

// ObjectRange maps any interior pointer to the base and size of the object
// containing it. It reports false for addresses in free or unreserved
// memory. This is the allocator-level range query that tree-based systems
// like DangNULL implement with a lookup structure; tcmalloc's page map makes
// it O(1).
func (a *Allocator) ObjectRange(addr uint64) (base, size uint64, ok bool) {
	s := a.heap.spanOf(addr)
	if s == nil {
		return 0, 0, false
	}
	switch s.state {
	case spanSmall:
		idx, _ := s.objectIndex(addr)
		if !s.isLive(idx) {
			return 0, 0, false
		}
		return s.objectBase(idx), sizeclass.ForClass(s.class).Size, true
	case spanLarge:
		return s.base, uint64(s.npages) * vmem.PageSize, true
	}
	return 0, 0, false
}

// ReleaseFreeMemory returns idle pages to the simulated OS, making stale
// pointer-log locations in those pages fault on access.
func (a *Allocator) ReleaseFreeMemory() uint64 {
	return a.heap.releaseFreePages()
}

// Stats returns an accounting snapshot.
func (a *Allocator) Stats() Stats {
	a.heap.mu.Lock()
	heapBytes := a.heap.reservedBytes
	freeBytes := a.heap.freeBytes
	a.heap.mu.Unlock()
	return Stats{
		LiveObjects:   a.liveObjects.Load(),
		LiveBytes:     a.liveBytes.Load(),
		TotalAllocs:   a.totalAllocs.Load(),
		TotalFrees:    a.totalFrees.Load(),
		HeapBytes:     heapBytes,
		FreeListBytes: freeBytes,
		MappedBytes:   a.seg.MappedBytes(),
	}
}

// PageAlignOf returns the power-of-two alignment guarantee for objects in
// the page containing addr: the size-class alignment for small spans, page
// alignment for large spans. The shadow mapper uses this to pick the
// per-page compression ratio.
func (a *Allocator) PageAlignOf(addr uint64) (uint64, bool) {
	s := a.heap.spanOf(addr)
	if s == nil {
		return 0, false
	}
	switch s.state {
	case spanSmall:
		return sizeclass.ForClass(s.class).Align, true
	case spanLarge:
		return vmem.PageSize, true
	}
	return 0, false
}
