package tcmalloc

import (
	"sync"

	"dangsan/internal/faultinject"
	"dangsan/internal/sizeclass"
)

// centralList is the central free list for one size class: a set of spans
// with at least one free object. Thread caches fetch and return objects in
// batches under the per-class lock, which keeps lock traffic low — the same
// structure as tcmalloc's CentralFreeList.
type centralList struct {
	mu    sync.Mutex
	class int
	// nonempty holds spans of this class that have free objects.
	nonempty []*span
	heap     *pageHeap
}

// batchSize mirrors tcmalloc's num_objects_to_move: how many objects move
// between a thread cache and the central list at a time.
func batchSize(class int) int {
	size := sizeclass.ForClass(class).Size
	n := int(64 * 1024 / size)
	if n < 2 {
		n = 2
	}
	if n > 32 {
		n = 32
	}
	return n
}

// fetch pops up to max objects into out, fetching new spans from the page
// heap as needed. It returns the number of objects delivered (0 only when
// the heap is exhausted).
func (c *centralList) fetch(out []uint64, max int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	got := 0
	for got < max {
		if len(c.nonempty) == 0 && !c.populate() {
			break
		}
		s := c.nonempty[len(c.nonempty)-1]
		for got < max && len(s.freeObjs) > 0 {
			idx := s.freeObjs[len(s.freeObjs)-1]
			s.freeObjs = s.freeObjs[:len(s.freeObjs)-1]
			s.allocated++
			out[got] = s.objectBase(int(idx))
			got++
		}
		if len(s.freeObjs) == 0 {
			s.inCentral = false
			c.nonempty = c.nonempty[:len(c.nonempty)-1]
		}
	}
	return got
}

// populate pulls a fresh span from the page heap and carves it into objects.
func (c *centralList) populate() bool {
	if c.heap.faults.Load().Fail(faultinject.CentralPopulate) {
		return false
	}
	cl := sizeclass.ForClass(c.class)
	s := c.heap.allocSpan(cl.Pages, spanSmall, c.class)
	if s == nil {
		return false
	}
	s.allocated = 0
	s.freeObjs = make([]uint32, cl.ObjectsPerSpan)
	s.liveBits = make([]uint64, (cl.ObjectsPerSpan+63)/64)
	// Push in reverse so objects pop in address order, which improves the
	// spatial locality that pointer compression exploits.
	for i := 0; i < cl.ObjectsPerSpan; i++ {
		s.freeObjs[i] = uint32(cl.ObjectsPerSpan - 1 - i)
	}
	s.inCentral = true
	c.nonempty = append(c.nonempty, s)
	return true
}

// release returns objects to their spans; fully free spans go back to the
// page heap.
func (c *centralList) release(objs []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, addr := range objs {
		s := c.heap.spanOf(addr)
		if s == nil || s.state != spanSmall || s.class != c.class {
			panic("tcmalloc: central release of foreign object")
		}
		idx, exact := s.objectIndex(addr)
		if !exact {
			panic("tcmalloc: central release of interior pointer")
		}
		s.freeObjs = append(s.freeObjs, uint32(idx))
		s.allocated--
		if s.allocated == 0 {
			// Whole span is free: detach and return to the page heap.
			if s.inCentral {
				for i, sp := range c.nonempty {
					if sp == s {
						c.nonempty = append(c.nonempty[:i], c.nonempty[i+1:]...)
						break
					}
				}
				s.inCentral = false
			}
			c.heap.freeSpan(s)
			continue
		}
		if !s.inCentral {
			s.inCentral = true
			c.nonempty = append(c.nonempty, s)
		}
	}
}
