package tcmalloc

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"dangsan/internal/sizeclass"
	"dangsan/internal/vmem"
)

func newTestAlloc() (*Allocator, *ThreadCache) {
	as := vmem.New()
	a := New(as.Heap())
	return a, a.NewThreadCache()
}

func TestMallocFreeSmall(t *testing.T) {
	a, tc := newTestAlloc()
	addr, err := tc.Malloc(24)
	if err != nil {
		t.Fatal(err)
	}
	if addr < vmem.HeapBase {
		t.Fatalf("address 0x%x below heap base", addr)
	}
	size, ok := a.UsableSize(addr)
	if !ok || size < 24 {
		t.Fatalf("UsableSize = %d, %v", size, ok)
	}
	st := a.Stats()
	if st.LiveObjects != 1 || st.LiveBytes != size {
		t.Fatalf("stats after malloc: %+v", st)
	}
	if err := tc.Free(addr); err != nil {
		t.Fatal(err)
	}
	st = a.Stats()
	if st.LiveObjects != 0 || st.LiveBytes != 0 {
		t.Fatalf("stats after free: %+v", st)
	}
}

func TestMallocZeroSize(t *testing.T) {
	_, tc := newTestAlloc()
	a1, err := tc.Malloc(0)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := tc.Malloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Fatal("two live zero-size allocations share an address")
	}
}

func TestMallocAlignment(t *testing.T) {
	a, tc := newTestAlloc()
	for _, size := range []uint64{1, 8, 13, 100, 1000, 5000, 100000, 300000} {
		addr, err := tc.Malloc(size)
		if err != nil {
			t.Fatal(err)
		}
		align, ok := a.PageAlignOf(addr)
		if !ok {
			t.Fatalf("PageAlignOf(0x%x) failed", addr)
		}
		if addr%align != 0 {
			t.Errorf("size %d: addr 0x%x not aligned to %d", size, addr, align)
		}
	}
}

func TestFreeInvalidPointer(t *testing.T) {
	_, tc := newTestAlloc()
	addr, err := tc.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	var invErr *InvalidFreeError

	// The DangSan signature case: freeing an invalidated (MSB-set) pointer.
	if err := tc.Free(addr | 1<<63); !errors.As(err, &invErr) {
		t.Fatalf("free of invalidated pointer: %v", err)
	}
	if invErr.Addr != addr|1<<63 {
		t.Fatalf("error address = 0x%x", invErr.Addr)
	}
	// Interior pointer.
	if err := tc.Free(addr + 8); !errors.As(err, &invErr) {
		t.Fatalf("free of interior pointer: %v", err)
	}
	// Never-allocated heap address.
	if err := tc.Free(vmem.HeapBase + 1<<30); !errors.As(err, &invErr) {
		t.Fatalf("free of unreserved address: %v", err)
	}
	// Non-heap address.
	if err := tc.Free(vmem.GlobalsBase); !errors.As(err, &invErr) {
		t.Fatalf("free of globals address: %v", err)
	}
	// The real object is still free-able.
	if err := tc.Free(addr); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFree(t *testing.T) {
	_, tc := newTestAlloc()
	addr, err := tc.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.Free(addr); err != nil {
		t.Fatal(err)
	}
	var dfErr *DoubleFreeError
	if err := tc.Free(addr); !errors.As(err, &dfErr) {
		t.Fatalf("double free: %v", err)
	}
}

func TestDoubleFreeLarge(t *testing.T) {
	_, tc := newTestAlloc()
	addr, err := tc.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.Free(addr); err != nil {
		t.Fatal(err)
	}
	// After freeSpan the range is spanFree; a second free must fail (either
	// kind of error is acceptable depending on coalescing).
	if err := tc.Free(addr); err == nil {
		t.Fatal("double free of large object succeeded")
	}
}

func TestLargeAlloc(t *testing.T) {
	a, tc := newTestAlloc()
	size := uint64(sizeclass.MaxSmallSize + 1)
	addr, err := tc.Malloc(size)
	if err != nil {
		t.Fatal(err)
	}
	if addr%vmem.PageSize != 0 {
		t.Fatalf("large alloc not page aligned: 0x%x", addr)
	}
	usable, ok := a.UsableSize(addr)
	if !ok || usable < size {
		t.Fatalf("usable = %d", usable)
	}
	if err := tc.Free(addr); err != nil {
		t.Fatal(err)
	}
}

func TestObjectRangeInterior(t *testing.T) {
	a, tc := newTestAlloc()
	addr, err := tc.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	usable, _ := a.UsableSize(addr)
	for _, off := range []uint64{0, 1, usable / 2, usable - 1} {
		base, size, ok := a.ObjectRange(addr + off)
		if !ok || base != addr || size != usable {
			t.Fatalf("ObjectRange(+%d) = 0x%x, %d, %v; want 0x%x, %d",
				off, base, size, ok, addr, usable)
		}
	}
	tc.Free(addr)
	if _, _, ok := a.ObjectRange(addr); ok {
		t.Fatal("ObjectRange found a freed object")
	}
}

func TestReallocSame(t *testing.T) {
	_, tc := newTestAlloc()
	addr, _ := tc.Malloc(100)
	na, kind, err := tc.Realloc(addr, 101)
	if err != nil || kind != ReallocSame || na != addr {
		t.Fatalf("Realloc(100->101) = 0x%x, %v, %v", na, kind, err)
	}
}

func TestReallocMovePreservesData(t *testing.T) {
	as := vmem.New()
	a := New(as.Heap())
	tc := a.NewThreadCache()
	addr, _ := tc.Malloc(64)
	if f := as.StoreWord(addr, 0xDEADBEEF); f != nil {
		t.Fatal(f)
	}
	if f := as.StoreWord(addr+56, 42); f != nil {
		t.Fatal(f)
	}
	na, kind, err := tc.Realloc(addr, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if kind != ReallocMoved || na == addr {
		t.Fatalf("expected move, got kind=%v addr 0x%x -> 0x%x", kind, addr, na)
	}
	if v, _ := as.LoadWord(na); v != 0xDEADBEEF {
		t.Fatalf("word 0 = 0x%x", v)
	}
	if v, _ := as.LoadWord(na + 56); v != 42 {
		t.Fatalf("word 56 = %d", v)
	}
	// Old object must be gone.
	if _, ok := a.UsableSize(addr); ok {
		t.Fatal("old object still live after realloc move")
	}
	if err := tc.Free(na); err != nil {
		t.Fatal(err)
	}
}

func TestReallocLargeInPlace(t *testing.T) {
	a, tc := newTestAlloc()
	// Allocate a large object; the bump-pointer heap leaves free space
	// after it (grow() rounds up to 8 pages), so an in-place grow works.
	addr, err := tc.Malloc(2 * vmem.PageSize * 100) // 200 pages
	if err != nil {
		t.Fatal(err)
	}
	// Shrink in place.
	na, kind, err := tc.Realloc(addr, vmem.PageSize*150)
	if err != nil || na != addr || kind != ReallocInPlace {
		t.Fatalf("shrink: 0x%x, %v, %v", na, kind, err)
	}
	if usable, _ := a.UsableSize(addr); usable != vmem.PageSize*150 {
		t.Fatalf("usable after shrink = %d", usable)
	}
	// Grow back in place (the tail we just freed is adjacent).
	na, kind, err = tc.Realloc(addr, vmem.PageSize*200)
	if err != nil || na != addr || kind != ReallocInPlace {
		t.Fatalf("grow: 0x%x, %v, %v", na, kind, err)
	}
	if err := tc.Free(addr); err != nil {
		t.Fatal(err)
	}
}

func TestReallocNilAndInvalid(t *testing.T) {
	_, tc := newTestAlloc()
	addr, kind, err := tc.Realloc(0, 64)
	if err != nil || kind != ReallocMoved || addr == 0 {
		t.Fatalf("Realloc(0, 64) = 0x%x, %v, %v", addr, kind, err)
	}
	var invErr *InvalidFreeError
	if _, _, err := tc.Realloc(addr|1<<63, 128); !errors.As(err, &invErr) {
		t.Fatalf("realloc of invalidated pointer: %v", err)
	}
}

func TestSpanReuseAfterFree(t *testing.T) {
	a, tc := newTestAlloc()
	// Fill and free an entire span; its pages must return to the page heap
	// and be reusable by a different size class.
	cl := sizeclass.ForClass(sizeclass.SizeToClass(64))
	addrs := make([]uint64, cl.ObjectsPerSpan*2)
	for i := range addrs {
		var err error
		addrs[i], err = tc.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, addr := range addrs {
		if err := tc.Free(addr); err != nil {
			t.Fatal(err)
		}
	}
	tc.Flush()
	if err := a.heap.checkFreeLists(); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.LiveObjects != 0 {
		t.Fatalf("%d live objects after freeing all", st.LiveObjects)
	}
	if st.FreeListBytes == 0 {
		t.Fatal("no bytes returned to the page heap")
	}
}

func TestHeapCoalescing(t *testing.T) {
	a, tc := newTestAlloc()
	// Three adjacent large allocations freed in mixed order must coalesce.
	p1, _ := tc.Malloc(8 * vmem.PageSize)
	p2, _ := tc.Malloc(8 * vmem.PageSize)
	p3, _ := tc.Malloc(8 * vmem.PageSize)
	if p2 != p1+8*vmem.PageSize || p3 != p2+8*vmem.PageSize {
		t.Skip("allocations not adjacent; bump layout changed")
	}
	tc.Free(p1)
	tc.Free(p3)
	tc.Free(p2) // middle free should merge all three
	if err := a.heap.checkFreeLists(); err != nil {
		t.Fatal(err)
	}
	s := a.heap.spanOf(p1)
	if s == nil || s.state != spanFree || s.npages < 24 {
		t.Fatalf("coalesced span: %+v", s)
	}
}

func TestReleaseFreeMemoryFaults(t *testing.T) {
	as := vmem.New()
	a := New(as.Heap())
	tc := a.NewThreadCache()
	addr, _ := tc.Malloc(1 << 20)
	if f := as.StoreWord(addr, 7); f != nil {
		t.Fatal(f)
	}
	tc.Free(addr)
	released := a.ReleaseFreeMemory()
	if released == 0 {
		t.Fatal("nothing released")
	}
	// The freed object's memory is now unmapped: access faults, exactly the
	// SIGSEGV DangSan catches while scanning stale log entries.
	if _, f := as.LoadWord(addr); f == nil || f.Kind != vmem.FaultUnmapped {
		t.Fatalf("access to released memory: %v", f)
	}
	// Allocating again must remap.
	addr2, err := tc.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if f := as.StoreWord(addr2, 9); f != nil {
		t.Fatalf("store to recycled memory: %v", f)
	}
}

func TestOutOfMemory(t *testing.T) {
	as := vmem.New()
	a := New(as.Heap())
	tc := a.NewThreadCache()
	// Ask for more than the whole heap reservation.
	_, err := tc.Malloc(vmem.HeapMax + vmem.PageSize)
	var oom *OutOfMemoryError
	if !errors.As(err, &oom) {
		t.Fatalf("err = %v", err)
	}
}

func TestThreadCacheFlush(t *testing.T) {
	a, tc := newTestAlloc()
	addr, _ := tc.Malloc(64)
	tc.Free(addr)
	if tc.CachedBytes() == 0 {
		t.Fatal("free did not land in the thread cache")
	}
	tc.Flush()
	if tc.CachedBytes() != 0 {
		t.Fatal("flush left cached bytes")
	}
	_ = a
}

func TestConcurrentMallocFree(t *testing.T) {
	as := vmem.New()
	a := New(as.Heap())
	const threads = 8
	const iters = 3000
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			tc := a.NewThreadCache()
			rng := rand.New(rand.NewSource(seed))
			live := make([]uint64, 0, 64)
			for i := 0; i < iters; i++ {
				if len(live) > 0 && rng.Intn(2) == 0 {
					j := rng.Intn(len(live))
					if err := tc.Free(live[j]); err != nil {
						t.Error(err)
						return
					}
					live = append(live[:j], live[j+1:]...)
				} else {
					size := uint64(rng.Intn(2000) + 1)
					addr, err := tc.Malloc(size)
					if err != nil {
						t.Error(err)
						return
					}
					live = append(live, addr)
				}
			}
			for _, addr := range live {
				if err := tc.Free(addr); err != nil {
					t.Error(err)
				}
			}
			tc.Flush()
		}(int64(w))
	}
	wg.Wait()
	st := a.Stats()
	if st.LiveObjects != 0 || st.LiveBytes != 0 {
		t.Fatalf("leak after concurrent run: %+v", st)
	}
	if err := a.heap.checkFreeLists(); err != nil {
		t.Fatal(err)
	}
}

// Property: allocations never overlap while live, across random sizes.
func TestNoOverlapProperty(t *testing.T) {
	a, tc := newTestAlloc()
	rng := rand.New(rand.NewSource(7))
	type obj struct{ base, size uint64 }
	var live []obj
	for i := 0; i < 2000; i++ {
		if len(live) > 40 || (len(live) > 0 && rng.Intn(3) == 0) {
			j := rng.Intn(len(live))
			if err := tc.Free(live[j].base); err != nil {
				t.Fatal(err)
			}
			live = append(live[:j], live[j+1:]...)
			continue
		}
		size := uint64(rng.Intn(300000) + 1)
		addr, err := tc.Malloc(size)
		if err != nil {
			t.Fatal(err)
		}
		usable, _ := a.UsableSize(addr)
		for _, o := range live {
			if addr < o.base+o.size && o.base < addr+usable {
				t.Fatalf("overlap: new [0x%x,+%d) with live [0x%x,+%d)",
					addr, usable, o.base, o.size)
			}
		}
		live = append(live, obj{addr, usable})
	}
}

func BenchmarkMallocFreeSmall(b *testing.B) {
	_, tc := newTestAlloc()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr, err := tc.Malloc(64)
		if err != nil {
			b.Fatal(err)
		}
		if err := tc.Free(addr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObjectRange(b *testing.B) {
	a, tc := newTestAlloc()
	addrs := make([]uint64, 1024)
	for i := range addrs {
		addrs[i], _ = tc.Malloc(64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := a.ObjectRange(addrs[i%len(addrs)] + 8); !ok {
			b.Fatal("lookup failed")
		}
	}
}
