// Package tcmalloc implements a thread-caching memory allocator over the
// simulated address space, closely following the structure of Google's
// tcmalloc: a page heap hands out spans (runs of pages), central free lists
// split spans of a single size class into objects, and per-thread caches
// serve allocation fast paths without locks.
//
// DangSan builds on two tcmalloc properties that this package preserves:
//
//   - Every span holds objects of exactly one size class, and every object
//     starts at a multiple of the class's power-of-two alignment. This makes
//     variable-compression-ratio memory shadowing possible (internal/shadow).
//   - free() of a pointer that is not the base of a live allocation aborts
//     with "attempt to free invalid pointer", which is how DangSan's
//     invalidated pointers surface in double-free exploits (paper §8.1).
package tcmalloc

import (
	"sync/atomic"

	"dangsan/internal/sizeclass"
	"dangsan/internal/vmem"
)

// spanState describes what a span is currently used for.
type spanState uint8

const (
	spanFree  spanState = iota // on a page-heap free list
	spanSmall                  // carries small objects of one size class
	spanLarge                  // a single large allocation
)

// span is a contiguous run of pages managed as a unit.
type span struct {
	base   uint64 // first address
	npages int
	state  spanState

	// Small-object spans only.
	class     int      // size class index
	freeObjs  []uint32 // stack of free object indices within the span
	allocated int      // live objects in this span
	inCentral bool     // linked into the central free list for its class
	// liveBits has one bit per object slot, set while the object is live
	// (between Malloc and Free). Accessed with atomic CAS so Free can
	// detect double frees from any thread without a lock.
	liveBits []uint64

	// Free spans only: links in the page-heap free list.
	prev, next *span
}

// objects returns the number of object slots in a small span.
func (s *span) objects() int {
	return sizeclass.ForClass(s.class).ObjectsPerSpan
}

// objectBase returns the address of object i.
func (s *span) objectBase(i int) uint64 {
	return s.base + uint64(i)*sizeclass.ForClass(s.class).Size
}

// objectIndex maps an address inside the span to its object index and
// reports whether the address is exactly an object base.
func (s *span) objectIndex(addr uint64) (int, bool) {
	off := addr - s.base
	size := sizeclass.ForClass(s.class).Size
	return int(off / size), off%size == 0
}

// end returns one past the last address of the span.
func (s *span) end() uint64 {
	return s.base + uint64(s.npages)*vmem.PageSize
}

// setLive atomically sets the live bit for object i, reporting whether the
// bit was previously clear.
func (s *span) setLive(i int) bool {
	return atomicSetBit(&s.liveBits[i/64], uint(i%64))
}

// clearLive atomically clears the live bit for object i, reporting whether
// the bit was previously set.
func (s *span) clearLive(i int) bool {
	return atomicClearBit(&s.liveBits[i/64], uint(i%64))
}

// isLive reports whether object i is currently live.
func (s *span) isLive(i int) bool {
	return atomic.LoadUint64(&s.liveBits[i/64])&(1<<uint(i%64)) != 0
}

// atomicSetBit sets bit b of *w, returning true if it was clear before.
func atomicSetBit(w *uint64, b uint) bool {
	mask := uint64(1) << b
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return true
		}
	}
}

// atomicClearBit clears bit b of *w, returning true if it was set before.
func atomicClearBit(w *uint64, b uint) bool {
	mask := uint64(1) << b
	for {
		old := atomic.LoadUint64(w)
		if old&mask == 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old&^mask) {
			return true
		}
	}
}
