package tcmalloc

import (
	"dangsan/internal/faultinject"
	"dangsan/internal/sizeclass"
)

// ThreadCache serves small allocations for one thread without any locking.
// Each size class has a stack of free object addresses; refills and
// overflows move whole batches to the central list. A ThreadCache must only
// be used from the goroutine modelling its thread.
type ThreadCache struct {
	alloc *Allocator
	lists [][]uint64 // per-class free stacks
	// maxLen caps each list; exceeded lists release a batch back.
	maxLen []int
	// cachedBytes tracks bytes parked in this cache (for stats).
	cachedBytes uint64
}

func newThreadCache(a *Allocator) *ThreadCache {
	n := sizeclass.NumClasses()
	tc := &ThreadCache{
		alloc:  a,
		lists:  make([][]uint64, n),
		maxLen: make([]int, n),
	}
	for c := 0; c < n; c++ {
		tc.maxLen[c] = 2 * batchSize(c)
	}
	return tc
}

// pop takes one object of the given class, refilling from the central list
// when empty. Returns 0 when the heap is exhausted.
func (tc *ThreadCache) pop(class int) uint64 {
	list := tc.lists[class]
	if len(list) == 0 {
		if tc.alloc.heap.faults.Load().Fail(faultinject.ThreadCacheRefill) {
			return 0
		}
		batch := batchSize(class)
		buf := make([]uint64, batch)
		got := tc.alloc.central[class].fetch(buf, batch)
		if got == 0 {
			return 0
		}
		list = append(list, buf[:got]...)
		tc.cachedBytes += uint64(got) * sizeclass.ForClass(class).Size
	}
	addr := list[len(list)-1]
	tc.lists[class] = list[:len(list)-1]
	tc.cachedBytes -= sizeclass.ForClass(class).Size
	return addr
}

// push returns one object of the given class, spilling a batch to the
// central list when the cache is over capacity.
func (tc *ThreadCache) push(class int, addr uint64) {
	tc.lists[class] = append(tc.lists[class], addr)
	tc.cachedBytes += sizeclass.ForClass(class).Size
	if len(tc.lists[class]) > tc.maxLen[class] {
		spill := batchSize(class)
		list := tc.lists[class]
		tc.alloc.central[class].release(list[len(list)-spill:])
		tc.lists[class] = list[:len(list)-spill]
		tc.cachedBytes -= uint64(spill) * sizeclass.ForClass(class).Size
	}
}

// Flush returns every cached object to the central lists. Call when the
// owning thread exits, or before measuring external fragmentation.
func (tc *ThreadCache) Flush() {
	for c, list := range tc.lists {
		if len(list) > 0 {
			tc.alloc.central[c].release(list)
			tc.lists[c] = tc.lists[c][:0]
		}
	}
	tc.cachedBytes = 0
}

// CachedBytes reports the bytes currently parked in this thread cache.
func (tc *ThreadCache) CachedBytes() uint64 { return tc.cachedBytes }
