package tcmalloc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dangsan/internal/faultinject"
	"dangsan/internal/vmem"
)

// maxSmallSpanPages is the largest span length with a dedicated free list;
// longer free spans live on the large list.
const maxSmallSpanPages = 128

// pageHeap manages spans of pages carved from the heap segment. It grows the
// heap with a bump pointer, keeps free lists indexed by span length, and
// coalesces adjacent free spans on release, as tcmalloc's PageHeap does.
type pageHeap struct {
	mu      sync.Mutex
	seg     *vmem.Segment
	pm      pageMap
	heapEnd uint64 // bump pointer: next unreserved heap address

	// free[n] is a doubly linked list of free spans of exactly n pages
	// (1 <= n <= maxSmallSpanPages); freeLarge holds the rest.
	free      [maxSmallSpanPages + 1]span // sentinel heads
	freeLarge span                        // sentinel head

	// Stats (guarded by mu).
	reservedBytes uint64 // total heap pages ever reserved from the segment
	freeBytes     uint64 // bytes sitting on free lists

	// faults, when set, can fail span allocation and page mapping.
	faults atomic.Pointer[faultinject.Plane]
}

func newPageHeap(seg *vmem.Segment) *pageHeap {
	ph := &pageHeap{seg: seg, heapEnd: seg.Base()}
	for i := range ph.free {
		ph.free[i].next = &ph.free[i]
		ph.free[i].prev = &ph.free[i]
	}
	ph.freeLarge.next = &ph.freeLarge
	ph.freeLarge.prev = &ph.freeLarge
	return ph
}

// listFor returns the sentinel of the free list that holds spans of n pages.
func (ph *pageHeap) listFor(n int) *span {
	if n <= maxSmallSpanPages {
		return &ph.free[n]
	}
	return &ph.freeLarge
}

func listPush(head, s *span) {
	s.next = head.next
	s.prev = head
	head.next.prev = s
	head.next = s
}

func listRemove(s *span) {
	s.prev.next = s.next
	s.next.prev = s.prev
	s.prev, s.next = nil, nil
}

// allocSpan returns a span of exactly n pages with the given state and
// class, growing the heap if needed. The span's pages are mapped. Returns
// nil if the heap reservation is exhausted. state and class are set while
// the lock is still held: freeSpan reads a neighbor's state during
// coalescing under this lock, so the caller must not write them after
// allocSpan returns.
func (ph *pageHeap) allocSpan(n int, state spanState, class int) *span {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	s := ph.allocSpanLocked(n)
	if s != nil {
		s.state = state
		s.class = class
	}
	return s
}

func (ph *pageHeap) allocSpanLocked(n int) *span {
	if n < 1 {
		panic("tcmalloc: allocSpan of zero pages")
	}
	if ph.faults.Load().Fail(faultinject.SpanAlloc) {
		return nil
	}
	s := ph.takeSpanLocked(n)
	if s == nil {
		return nil
	}
	// Map the span's pages now that it is ours: they may never have been
	// mapped, or were released to the OS while the span sat free. On map
	// failure the span returns to the free lists exactly as taken, and the
	// caller observes ordinary heap exhaustion.
	if ph.seg.TryMapPages(s.base, s.npages) != nil {
		s.state = spanFree
		ph.pm.setSpan(s)
		listPush(ph.listFor(s.npages), s)
		ph.freeBytes += uint64(s.npages) * vmem.PageSize
		return nil
	}
	return s
}

// takeSpanLocked removes a span of exactly n pages from the free lists or
// grows the heap; the span's pages are NOT guaranteed mapped yet.
func (ph *pageHeap) takeSpanLocked(n int) *span {
	// Best fit: exact list first, then longer lists, then the large list.
	for ln := n; ln <= maxSmallSpanPages; ln++ {
		head := &ph.free[ln]
		if head.next != head {
			s := head.next
			listRemove(s)
			ph.freeBytes -= uint64(s.npages) * vmem.PageSize
			return ph.carve(s, n)
		}
	}
	var best *span
	for s := ph.freeLarge.next; s != &ph.freeLarge; s = s.next {
		if s.npages >= n && (best == nil || s.npages < best.npages || (s.npages == best.npages && s.base < best.base)) {
			best = s
		}
	}
	if best != nil {
		listRemove(best)
		ph.freeBytes -= uint64(best.npages) * vmem.PageSize
		return ph.carve(best, n)
	}
	return ph.grow(n)
}

// carve trims s down to n pages, returning the remainder to the free lists.
func (ph *pageHeap) carve(s *span, n int) *span {
	if s.npages > n {
		rest := &span{
			base:   s.base + uint64(n)*vmem.PageSize,
			npages: s.npages - n,
			state:  spanFree,
		}
		s.npages = n
		ph.pm.setSpan(rest)
		listPush(ph.listFor(rest.npages), rest)
		ph.freeBytes += uint64(rest.npages) * vmem.PageSize
	}
	s.state = spanSmall // allocSpan overwrites; any non-free state works here
	ph.pm.setSpan(s)
	return s
}

// grow reserves n fresh pages (rounded up to at least 8 to amortize) from
// the segment's bump pointer.
func (ph *pageHeap) grow(n int) *span {
	ask := n
	if ask < 8 {
		ask = 8
	}
	if ph.heapEnd+uint64(ask)*vmem.PageSize > ph.seg.End() {
		ask = n // try the exact request before giving up
		if ph.heapEnd+uint64(ask)*vmem.PageSize > ph.seg.End() {
			return nil
		}
	}
	base := ph.heapEnd
	ph.heapEnd += uint64(ask) * vmem.PageSize
	ph.reservedBytes += uint64(ask) * vmem.PageSize
	s := &span{base: base, npages: ask}
	ph.pm.setSpan(s)
	return ph.carve(s, n)
}

// freeSpan returns s to the free lists, coalescing with free neighbors.
func (ph *pageHeap) freeSpan(s *span) {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	s.state = spanFree
	s.class = 0
	s.freeObjs = nil
	s.allocated = 0
	// Coalesce with the preceding span.
	if s.base > ph.seg.Base() {
		if prev := ph.pm.get(s.base - 1); prev != nil && prev.state == spanFree {
			listRemove(prev)
			ph.freeBytes -= uint64(prev.npages) * vmem.PageSize
			prev.npages += s.npages
			s = prev
		}
	}
	// Coalesce with the following span.
	if s.end() < ph.heapEnd {
		if next := ph.pm.get(s.end()); next != nil && next.state == spanFree {
			listRemove(next)
			ph.freeBytes -= uint64(next.npages) * vmem.PageSize
			s.npages += next.npages
		}
	}
	ph.pm.setSpan(s)
	listPush(ph.listFor(s.npages), s)
	ph.freeBytes += uint64(s.npages) * vmem.PageSize
}

// resizeSpan grows or shrinks a large span in place. Growing succeeds only
// when the immediately following span is free and long enough. It returns
// whether the resize happened; on success s.npages == wantPages.
func (ph *pageHeap) resizeSpan(s *span, wantPages int) bool {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	if s.state != spanLarge || wantPages < 1 {
		return false
	}
	switch {
	case wantPages == s.npages:
		return true
	case wantPages < s.npages:
		// Shrink: split off the tail and free it.
		tail := &span{
			base:   s.base + uint64(wantPages)*vmem.PageSize,
			npages: s.npages - wantPages,
			state:  spanFree,
		}
		s.npages = wantPages
		ph.pm.setSpan(s)
		ph.pm.setSpan(tail)
		listPush(ph.listFor(tail.npages), tail)
		ph.freeBytes += uint64(tail.npages) * vmem.PageSize
		return true
	default:
		// Grow: absorb from the following free span.
		need := wantPages - s.npages
		if s.end() >= ph.heapEnd {
			return false
		}
		next := ph.pm.get(s.end())
		if next == nil || next.state != spanFree || next.npages < need {
			return false
		}
		// Map the absorbed pages before touching any free-list state so a
		// mapping failure leaves the heap exactly as it was.
		if ph.seg.TryMapPages(next.base, need) != nil {
			return false
		}
		listRemove(next)
		ph.freeBytes -= uint64(next.npages) * vmem.PageSize
		if next.npages > need {
			rest := &span{
				base:   next.base + uint64(need)*vmem.PageSize,
				npages: next.npages - need,
				state:  spanFree,
			}
			ph.pm.setSpan(rest)
			listPush(ph.listFor(rest.npages), rest)
			ph.freeBytes += uint64(rest.npages) * vmem.PageSize
		}
		s.npages = wantPages
		ph.pm.setSpan(s)
		return true
	}
}

// spanOf returns the span covering addr (free or in use), or nil.
func (ph *pageHeap) spanOf(addr uint64) *span {
	return ph.pm.get(addr)
}

// releaseFreePages unmaps the pages of every free span, simulating
// madvise(MADV_DONTNEED)/munmap of idle memory. Spans remain on the free
// lists; their pages are remapped when reused. This models the case where a
// logged pointer location's memory has been returned to the OS, which
// DangSan handles by catching SIGSEGV during invalidation (paper §4.4).
func (ph *pageHeap) releaseFreePages() uint64 {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	var released uint64
	release := func(head *span) {
		for s := head.next; s != head; s = s.next {
			ph.seg.UnmapPages(s.base, s.npages)
			released += uint64(s.npages) * vmem.PageSize
		}
	}
	for i := 1; i <= maxSmallSpanPages; i++ {
		release(&ph.free[i])
	}
	release(&ph.freeLarge)
	return released
}

// remapSpan ensures the pages of s are mapped (they may have been released
// to the OS while the span sat on a free list).
func (ph *pageHeap) remapSpan(s *span) {
	ph.seg.MapPages(s.base, s.npages)
}

// checkFreeLists panics if a free-list invariant is broken; used by tests.
func (ph *pageHeap) checkFreeLists() error {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	var total uint64
	check := func(head *span, wantPages int) error {
		for s := head.next; s != head; s = s.next {
			if s.state != spanFree {
				return fmt.Errorf("span 0x%x on free list but state=%d", s.base, s.state)
			}
			if wantPages > 0 && s.npages != wantPages {
				return fmt.Errorf("span 0x%x has %d pages on list for %d", s.base, s.npages, wantPages)
			}
			if wantPages == 0 && s.npages <= maxSmallSpanPages {
				return fmt.Errorf("span 0x%x (%d pages) on large list", s.base, s.npages)
			}
			total += uint64(s.npages) * vmem.PageSize
		}
		return nil
	}
	for i := 1; i <= maxSmallSpanPages; i++ {
		if err := check(&ph.free[i], i); err != nil {
			return err
		}
	}
	if err := check(&ph.freeLarge, 0); err != nil {
		return err
	}
	if total != ph.freeBytes {
		return fmt.Errorf("freeBytes=%d but lists hold %d", ph.freeBytes, total)
	}
	return nil
}
