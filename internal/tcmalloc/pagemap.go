package tcmalloc

import (
	"sync/atomic"

	"dangsan/internal/vmem"
)

// pageMap maps heap page numbers to the span covering them. It is a
// two-level radix tree (mirroring tcmalloc's PageMap) so that the 64 GiB
// heap reservation costs no memory until used. Readers are lock-free;
// writers hold the page-heap lock.
const (
	pageMapLeafBits = 12
	pageMapLeafSize = 1 << pageMapLeafBits
	pageMapRootSize = int(vmem.HeapMax >> vmem.PageShift >> pageMapLeafBits)
)

type pageMapLeaf struct {
	spans [pageMapLeafSize]atomic.Pointer[span]
}

type pageMap struct {
	root [pageMapRootSize]atomic.Pointer[pageMapLeaf]
}

// pageIndex converts a heap address to its page number within the heap.
func pageIndex(addr uint64) uint64 {
	return (addr - vmem.HeapBase) >> vmem.PageShift
}

// get returns the span covering the page containing addr, or nil.
func (m *pageMap) get(addr uint64) *span {
	if addr < vmem.HeapBase || addr >= vmem.HeapBase+vmem.HeapMax {
		return nil
	}
	pi := pageIndex(addr)
	leaf := m.root[pi>>pageMapLeafBits].Load()
	if leaf == nil {
		return nil
	}
	return leaf.spans[pi&(pageMapLeafSize-1)].Load()
}

// set records s as the owner of n pages starting at the page containing
// addr (addr must be page aligned). Passing s == nil clears the range.
func (m *pageMap) set(addr uint64, n int, s *span) {
	pi := pageIndex(addr)
	for i := uint64(0); i < uint64(n); i++ {
		ri := (pi + i) >> pageMapLeafBits
		leaf := m.root[ri].Load()
		if leaf == nil {
			fresh := new(pageMapLeaf)
			if m.root[ri].CompareAndSwap(nil, fresh) {
				leaf = fresh
			} else {
				leaf = m.root[ri].Load()
			}
		}
		leaf.spans[(pi+i)&(pageMapLeafSize-1)].Store(s)
	}
}

// setEnds records s for only the first and last page of its range; interior
// pages are set too in this implementation for simplicity and O(1) interior
// lookups (the classic tcmalloc optimization of recording only boundaries
// would make Free of interior pointers more expensive).
func (m *pageMap) setSpan(s *span) {
	m.set(s.base, s.npages, s)
}

// clearSpan removes the mapping for s's range.
func (m *pageMap) clearSpan(s *span) {
	m.set(s.base, s.npages, nil)
}
