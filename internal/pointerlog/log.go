package pointerlog

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"dangsan/internal/faultinject"
	"dangsan/internal/obs"
)

// ErrMetadataExhausted reports that the logger could not allocate per-object
// metadata: the registry is full, Config.MaxMetadataBytes is reached, or a
// fault was injected. Callers (the DangSan detector) route it into degraded
// mode — the object stays usable but untracked — instead of crashing.
var ErrMetadataExhausted = errors.New("pointerlog: metadata exhausted")

const (
	// embedEntries is the number of log entries embedded directly in the
	// ThreadLog, serving the common case of objects with few pointers
	// without a second allocation (paper Fig. 7's static log).
	embedEntries = 12
	// blockEntries is the size of each indirect log block.
	blockEntries = 32
)

// logBlock is one chunk of the indirect log. Blocks form a singly linked
// list appended to by the owning thread; the invalidating thread walks it
// concurrently.
type logBlock struct {
	next    atomic.Pointer[logBlock]
	entries [blockEntries]uint64 // atomic access; 0 = unused
}

// ThreadLog holds the pointer locations recorded by one thread for one
// object. Only the owning thread writes it (append-only, except for
// in-place compression of the most recent entry); the freeing thread reads
// it concurrently without synchronization, relying on atomic word access
// and free-time verification instead of locks.
type ThreadLog struct {
	tid  int32
	next atomic.Pointer[ThreadLog]

	embed  [embedEntries]uint64 // atomic access
	blocks atomic.Pointer[logBlock]
	hash   atomic.Pointer[locSet]
	// cold is the spilled tier for this log: segments already flushed to
	// the logger's spill file plus the reservoir summary. Nil until the
	// first spill (Config.ColdSpillBytes).
	cold atomic.Pointer[coldState]

	// Owner-only state.
	count    int       // entries appended (embed + blocks)
	tail     *logBlock // block being filled
	tailUsed int
	lastSlot *uint64 // most recent entry, target for compression
	lookback []uint64
	lookPos  int
}

// ObjectMeta is the per-object metadata the shadow map points at: the
// object's extent and the head of its thread-log list.
//
// The extent is stored atomically because metas are recycled: a thread
// holding a stale handle (its object freed and the meta re-issued for a
// new allocation) may read the extent while CreateMeta is overwriting it.
// The value it sees is reconciled by free-time verification either way —
// the atomics only remove the data race, not the (benign) staleness.
type ObjectMeta struct {
	base atomic.Uint64
	size atomic.Uint64

	logs atomic.Pointer[ThreadLog]
}

// Base returns the object's start address.
func (meta *ObjectMeta) Base() uint64 { return meta.base.Load() }

// Size returns the object's usable size in bytes (including DangSan's +1
// allocation pad).
func (meta *ObjectMeta) Size() uint64 { return meta.size.Load() }

// SetSize updates the object's usable size (in-place realloc). The caller
// must bump the logger generation so cached extents are refreshed.
func (meta *ObjectMeta) SetSize(n uint64) { meta.size.Store(n) }

// Logger owns the pointer-log state for one simulated process.
type Logger struct {
	cfg   Config
	stats Stats

	// gen is the cache-invalidation generation for per-thread store fast
	// paths (detectors caching a {meta, ThreadLog} pair): it is bumped
	// whenever object metadata becomes stale — every Invalidate and every
	// in-place realloc — so a cached pair is valid exactly while the
	// generation it was filled under still matches.
	gen atomic.Uint64

	// Metadata registry. MetaAt (the pointer-store hot path) is lock-free:
	// slabs are published with atomic stores and never move; the mutex
	// only guards allocation and the free list (malloc/free frequency,
	// which is orders of magnitude rarer than pointer stores).
	mu    sync.Mutex
	slabs []atomic.Pointer[metaSlab]
	free  []uint64
	next  atomic.Uint64
	// slabCount tracks allocated registry slabs for MetadataBytes.
	slabCount atomic.Uint64

	// faults, when set, can fail metadata allocation (CreateMeta), log-block
	// allocation, and hash-table creation/growth. hashGrowOK is the
	// precomputed grow gate handed to locSet.insert so the hot path does not
	// allocate a closure per call. Set both via InjectFaults before the
	// logger sees concurrent traffic.
	faults     atomic.Pointer[faultinject.Plane]
	hashGrowOK func() bool

	// met holds the observability instruments; nil until AttachMetrics,
	// so the metrics-off hot path pays one predicted branch.
	met *loggerMetrics

	// cold is the spill file shared by every thread log that tiers out;
	// created lazily at the first spill.
	cold atomic.Pointer[coldLog]

	// Audit-mode state (cfg.Audit; guarded by mu): the sets of live and
	// quarantined meta indices, so the auditor can re-measure every log
	// structure still charged to the accounting, and the violations it
	// found. A meta moves live → quarantined at QuarantineMeta (deferred
	// free) and out of both at ReleaseMeta (epoch retirement).
	auditLive map[uint64]struct{}
	auditQuar map[uint64]struct{}
	auditErrs []string
}

// loggerMetrics bundles the logger's obs instruments.
type loggerMetrics struct {
	registerNs         *obs.Histogram
	invalidateNs       *obs.Histogram
	invalidateUnits    *obs.Histogram
	invalidateBatch    *obs.Histogram
	invalidateSerial   *obs.Counter
	invalidateParallel *obs.Counter
	spillNs            *obs.Histogram
}

const metaSlabSize = 1 << 12

// maxMetaSlabs bounds live tracked objects to maxMetaSlabs*metaSlabSize
// (256M), far beyond any workload here.
const maxMetaSlabs = 1 << 16

type metaSlab [metaSlabSize]ObjectMeta

// NewLogger creates a Logger with the given configuration.
func NewLogger(cfg Config) *Logger {
	lg := &Logger{
		cfg:   cfg.validated(),
		slabs: make([]atomic.Pointer[metaSlab], maxMetaSlabs),
	}
	if lg.cfg.Audit {
		lg.auditLive = make(map[uint64]struct{})
		lg.auditQuar = make(map[uint64]struct{})
	}
	return lg
}

// AttachMetrics registers the logger's instruments with reg: Register and
// Invalidate latency histograms, the free-time fan-out histogram, and
// gauges over the counters Stats already tracks. Call before the logger
// sees concurrent traffic.
func (lg *Logger) AttachMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	lg.met = &loggerMetrics{
		registerNs:         reg.Histogram("pointerlog.register_ns"),
		invalidateNs:       reg.Histogram("pointerlog.invalidate_ns"),
		invalidateUnits:    reg.Histogram("pointerlog.invalidate_units"),
		invalidateBatch:    reg.Histogram("pointerlog.invalidate_batch_objects"),
		invalidateSerial:   reg.Counter("pointerlog.invalidate_serial"),
		invalidateParallel: reg.Counter("pointerlog.invalidate_parallel"),
		// The spill histogram lives in the dangsan namespace: tiering is
		// part of the detector's store/free plane, and the dashboards
		// group it with dangsan.free_ns rather than the logger internals.
		spillNs: reg.Histogram("dangsan.spill_ns"),
	}
	reg.RegisterFunc("pointerlog.log_bytes", func() int64 {
		return int64(lg.stats.LogBytesTotal())
	})
	reg.RegisterFunc("pointerlog.log_bytes_live", func() int64 {
		return int64(lg.stats.Snapshot().LogBytesLive)
	})
	reg.RegisterFunc("pointerlog.objects_tracked", func() int64 {
		return int64(lg.stats.Snapshot().ObjectsTracked)
	})
	reg.RegisterFunc("pointerlog.hash_tables", func() int64 {
		return int64(lg.stats.Snapshot().HashTables)
	})
	reg.RegisterFunc("pointerlog.registered", func() int64 {
		return int64(lg.stats.Snapshot().Registered)
	})
	reg.RegisterFunc("pointerlog.duplicates", func() int64 {
		return int64(lg.stats.Snapshot().Duplicates)
	})
	reg.RegisterFunc("pointerlog.degraded_objects", func() int64 {
		return int64(lg.stats.Snapshot().DegradedObjects)
	})
	reg.RegisterFunc("pointerlog.dropped_registrations", func() int64 {
		return int64(lg.stats.Snapshot().DroppedRegistrations)
	})
	reg.RegisterFunc("pointerlog.metadata_bytes", func() int64 {
		return int64(lg.MetadataBytes())
	})
	reg.RegisterFunc("pointerlog.log_bytes_spilled", func() int64 {
		return int64(lg.stats.SpilledLogBytesTotal())
	})
	reg.RegisterFunc("pointerlog.spills", func() int64 {
		return int64(lg.stats.Snapshot().Spills)
	})
	reg.RegisterFunc("pointerlog.spill_failures", func() int64 {
		return int64(lg.stats.Snapshot().SpillFailures)
	})
	reg.RegisterFunc("pointerlog.cold_read_errors", func() int64 {
		return int64(lg.stats.Snapshot().ColdReadErrors)
	})
	reg.RegisterFunc("pointerlog.cold_segments", func() int64 {
		return lg.ColdLogStats().Segments
	})
	reg.RegisterFunc("pointerlog.cold_bytes_disk", func() int64 {
		return lg.ColdLogStats().DiskBytes
	})
	reg.RegisterFunc("pointerlog.cold_bytes_garbage", func() int64 {
		return lg.ColdLogStats().GarbageBytes
	})
	reg.RegisterFunc("pointerlog.cold_compactions", func() int64 {
		return int64(lg.ColdLogStats().Compactions)
	})
}

// Config returns the logger's configuration.
func (lg *Logger) Config() Config { return lg.cfg }

// Stats returns the logger's counters.
func (lg *Logger) Stats() *Stats { return &lg.stats }

// Gen returns the current fast-path cache generation. A per-thread
// cache of a {meta, ThreadLog} pair filled at generation g may be used
// without re-looking-up the object for as long as Gen() == g.
func (lg *Logger) Gen() uint64 { return lg.gen.Load() }

// BumpGen invalidates every per-thread fast-path cache. Invalidate
// bumps automatically; callers must bump for any other event that makes
// cached object extents stale (e.g. in-place realloc).
func (lg *Logger) BumpGen() { lg.gen.Add(1) }

// metaSlabBytes is the in-memory size of one registry slab, for the
// MetadataBytes budget accounting.
const metaSlabBytes = uint64(unsafe.Sizeof(metaSlab{}))

// InjectFaults attaches a fault-injection plane covering metadata
// allocation (MetaAlloc), indirect log blocks (LogBlockAlloc), and
// hash-table creation and growth (HashGrowAlloc). Must be called before the
// logger sees concurrent traffic; a nil plane disables injection.
func (lg *Logger) InjectFaults(p *faultinject.Plane) {
	lg.faults.Store(p)
	if p == nil {
		lg.hashGrowOK = nil
	} else {
		lg.hashGrowOK = func() bool { return !p.Fail(faultinject.HashGrowAlloc) }
	}
}

// MetadataBytes reports the logger's current metadata footprint: live log
// structures plus registry slabs. This is the quantity bounded by
// Config.MaxMetadataBytes.
func (lg *Logger) MetadataBytes() uint64 {
	n := lg.slabCount.Load() * metaSlabBytes
	total := lg.stats.LogBytesTotal()
	// Spilled bytes left RAM for the cold tier; like released bytes they
	// no longer count against the resident-metadata budget.
	gone := lg.stats.ReleasedLogBytesTotal() + lg.stats.SpilledLogBytesTotal()
	if gone < total {
		n += total - gone
	}
	return n
}

// NoteDegraded records that an allocation entered degraded (untracked)
// mode. The detector calls this when CreateMeta or the shadow map fails.
func (lg *Logger) NoteDegraded(tid int32) {
	lg.stats.shard(tid).degradedObjects.Add(1)
}

// CreateMeta allocates (or recycles) an ObjectMeta for a new object and
// returns it together with the nonzero handle to store in the shadow map.
// It returns ErrMetadataExhausted when the registry is full, the
// MaxMetadataBytes budget is reached, or a fault is injected; the caller
// must leave the object untracked (degraded) rather than abort.
func (lg *Logger) CreateMeta(base, size uint64) (*ObjectMeta, uint64, error) {
	if lg.faults.Load().Fail(faultinject.MetaAlloc) {
		return nil, 0, ErrMetadataExhausted
	}
	if max := lg.cfg.MaxMetadataBytes; max > 0 && lg.MetadataBytes() >= max {
		return nil, 0, ErrMetadataExhausted
	}
	lg.mu.Lock()
	var idx uint64
	if n := len(lg.free); n > 0 {
		idx = lg.free[n-1]
		lg.free = lg.free[:n-1]
	} else {
		idx = lg.next.Load()
		si := int(idx >> 12)
		if si >= maxMetaSlabs {
			lg.mu.Unlock()
			return nil, 0, ErrMetadataExhausted
		}
		if lg.slabs[si].Load() == nil {
			lg.slabs[si].Store(new(metaSlab))
			lg.slabCount.Add(1)
		}
		lg.next.Store(idx + 1)
	}
	if lg.auditLive != nil {
		lg.auditLive[idx] = struct{}{}
	}
	m := &lg.slabs[idx>>12].Load()[idx&(metaSlabSize-1)]
	lg.mu.Unlock()
	m.base.Store(base)
	m.size.Store(size)
	m.logs.Store(nil)
	// No tid on the allocation path; spread by handle instead.
	lg.stats.shard(int32(idx)).objectsTracked.Add(1)
	return m, idx + 1, nil
}

// MustCreateMeta is CreateMeta for contexts where exhaustion cannot happen
// (no fault plane, no budget); it panics on error.
func (lg *Logger) MustCreateMeta(base, size uint64) (*ObjectMeta, uint64) {
	m, handle, err := lg.CreateMeta(base, size)
	if err != nil {
		panic(err)
	}
	return m, handle
}

// MetaAt resolves a handle previously returned by CreateMeta (and stored in
// the shadow map) back to its ObjectMeta. Handle 0 returns nil. Lock-free:
// called on every instrumented pointer store.
func (lg *Logger) MetaAt(handle uint64) *ObjectMeta {
	if handle == 0 {
		return nil
	}
	idx := handle - 1
	if idx >= lg.next.Load() {
		return nil
	}
	slab := lg.slabs[idx>>12].Load()
	if slab == nil {
		return nil
	}
	return &slab[idx&(metaSlabSize-1)]
}

// ReleaseMeta recycles the meta behind handle. Call only after Invalidate;
// a racing Register may still append to the dying log list, which is benign
// because every entry is re-verified at the next free of whatever object
// the meta gets recycled for.
//
// The object's log structures die with it: their measured footprint moves
// from the live accounting into LogBytesReleased, and the log list is
// dropped so the memory is actually reclaimable. Bytes a racing Register
// charges after the measurement leak from the live gauge until process
// teardown — the same benign race as the append itself.
func (lg *Logger) ReleaseMeta(handle uint64) {
	if handle == 0 {
		return
	}
	if meta := lg.MetaAt(handle); meta != nil {
		// Cold segments die with the object: mark them garbage so the
		// next compaction reclaims their file bytes.
		lg.retireCold(meta)
		if fp := meta.logFootprint(); fp != 0 {
			lg.stats.shard(int32(handle-1)).logBytesReleased.Add(fp)
		}
		meta.logs.Store(nil)
	}
	lg.mu.Lock()
	if lg.auditLive != nil {
		delete(lg.auditLive, handle-1)
		delete(lg.auditQuar, handle-1)
	}
	lg.free = append(lg.free, handle-1)
	lg.mu.Unlock()
	if lg.cfg.Audit {
		lg.auditNow("free")
	}
}

// QuarantineMeta moves handle's meta from the live to the quarantined
// audit set: the object has been freed (its shadow entry cleared), but its
// invalidation and metadata release are deferred to an epoch drain, so the
// log structures remain charged to the accounting. No-op outside audit
// mode — the quarantine engine itself tracks its entries independently.
func (lg *Logger) QuarantineMeta(handle uint64) {
	if handle == 0 || !lg.cfg.Audit {
		return
	}
	lg.mu.Lock()
	idx := handle - 1
	if _, ok := lg.auditLive[idx]; ok {
		delete(lg.auditLive, idx)
		lg.auditQuar[idx] = struct{}{}
	}
	lg.mu.Unlock()
}

// logFootprint measures the memory currently held by meta's log
// structures, mirroring exactly what the incremental LogBytes charges
// account for: per thread log its fixed struct cost, indirect blocks, and
// hash-table fallback. Safe for any thread; a racing owner's appends may
// or may not be counted.
func (meta *ObjectMeta) logFootprint() uint64 {
	var n uint64
	for tl := meta.logs.Load(); tl != nil; tl = tl.next.Load() {
		n += embedEntries*8 + 64 + uint64(len(tl.lookback))*8
		for b := tl.blocks.Load(); b != nil; b = b.next.Load() {
			n += blockEntries*8 + 8
		}
		if h := tl.hash.Load(); h != nil {
			n += h.bytes()
		}
		// The cold state (reservoir + headers) is resident; the segments
		// themselves are on disk and tracked by the spilled term instead.
		if tl.cold.Load() != nil {
			n += coldStateBytes
		}
	}
	return n
}

// threadLogFor finds or creates the calling thread's log for meta. New logs
// are pushed onto the list head with compare-and-swap — the only
// synchronization on the entire store fast path, and it runs only the first
// time a thread touches an object (paper §4.4: "modifications to the list
// are rare ... few compare-and-exchange conflicts").
func (lg *Logger) threadLogFor(meta *ObjectMeta, tid int32, sh *statShard) *ThreadLog {
	head := meta.logs.Load()
	for tl := head; tl != nil; tl = tl.next.Load() {
		if tl.tid == tid {
			return tl
		}
	}
	tl := &ThreadLog{tid: tid}
	if lg.cfg.Lookback > 0 {
		tl.lookback = make([]uint64, lg.cfg.Lookback)
	}
	for {
		tl.next.Store(head)
		if meta.logs.CompareAndSwap(head, tl) {
			// Account only for the log that actually entered the list, so
			// memory-overhead figures don't overcount under contention.
			sh.logBytes.Add(uint64(embedEntries*8 + 64 + lg.cfg.Lookback*8))
			return tl
		}
		// Lost the race: another thread inserted. Re-scan in case it was us
		// in a recycled meta... it cannot be (one goroutine per tid), so
		// just retry the push with the new head.
		head = meta.logs.Load()
		for other := head; other != nil; other = other.next.Load() {
			if other.tid == tid {
				return other
			}
		}
	}
}

// Register records that the pointer slot at loc now holds a pointer into
// meta's object. tid identifies the calling thread. This is the paper's
// regptr/logptr path, invoked from every instrumented pointer store. It
// returns the thread log it appended to, which the caller may cache and
// pass to RegisterWith for as long as Gen() is unchanged, skipping the
// log-list walk on subsequent stores into the same object.
func (lg *Logger) Register(meta *ObjectMeta, loc uint64, tid int32) *ThreadLog {
	var start time.Time
	met := lg.met
	if met != nil {
		start = time.Now()
	}
	sh := lg.stats.shard(tid)
	tl := lg.threadLogFor(meta, tid, sh)
	lg.registerIn(tl, loc, sh)
	if met != nil {
		met.registerNs.Since(tid, start)
	}
	return tl
}

// RegisterWith is the store fast path: Register with the thread-log
// lookup already resolved. tl must be the calling thread's own log, as
// previously returned by Register for the same (object, tid) pair at
// the current generation.
func (lg *Logger) RegisterWith(tl *ThreadLog, loc uint64, tid int32) {
	var start time.Time
	met := lg.met
	if met != nil {
		start = time.Now()
	}
	lg.registerIn(tl, loc, lg.stats.shard(tid))
	if met != nil {
		met.registerNs.Since(tid, start)
	}
}

func (lg *Logger) registerIn(tl *ThreadLog, loc uint64, sh *statShard) {
	// Hash-table mode: the log overflowed earlier. Checked before the
	// lookback ring: once every location lands in the hash table, the ring
	// is pure overhead — scanning it can only reclassify a hash-resident
	// duplicate (same outcome, more work) and refreshing it buys nothing
	// because the table already deduplicates the full history.
	if h := tl.hash.Load(); h != nil {
		added, grown, dropped := h.insert(loc, lg.hashGrowOK)
		// A duplicate insert can still grow the table — the load-factor
		// check runs before probing — so growth must be charged before the
		// duplicate return or those bytes vanish from the accounting.
		if grown > 0 {
			sh.logBytes.Add(grown)
			// Tiering check only on the (rare) grow: the common insert
			// path stays branch-identical to the untiered logger.
			if max := lg.cfg.ColdSpillBytes; max > 0 && h.bytes() >= max {
				lg.spill(tl, h, sh)
			}
		}
		if dropped {
			// Denied grow on a full table: the location goes unlogged.
			// Coverage loss only — a free simply won't invalidate it.
			sh.droppedRegs.Add(1)
			return
		}
		if !added {
			sh.duplicates.Add(1)
			return
		}
		sh.logged.Add(1)
		return
	}

	// Lookback: suppress duplicates within the recent window.
	if n := len(tl.lookback); n > 0 {
		for i := 0; i < n; i++ {
			if tl.lookback[i] == loc {
				sh.duplicates.Add(1)
				return
			}
		}
		tl.lookback[tl.lookPos] = loc
		tl.lookPos++
		if tl.lookPos == n {
			tl.lookPos = 0
		}
	}

	// Compression: fold into the most recent entry when possible.
	if lg.cfg.Compression && tl.tryCompress(loc) {
		sh.logged.Add(1)
		sh.compressed.Add(1)
		return
	}

	// Switch to the hash table once the log hits the threshold, preventing
	// unbounded growth when duplicates recur with cycles longer than the
	// lookback (paper §4.4).
	if tl.count >= lg.cfg.MaxLogEntries {
		if lg.faults.Load().Fail(faultinject.HashGrowAlloc) {
			sh.droppedRegs.Add(1)
			return
		}
		h := newLocSet()
		sh.hashTables.Add(1)
		sh.logBytes.Add(h.bytes())
		tl.hash.Store(h)
		h.insert(loc, nil)
		sh.logged.Add(1)
		return
	}

	// Append a fresh entry.
	var slot *uint64
	if tl.count < embedEntries {
		slot = &tl.embed[tl.count]
	} else {
		if tl.tail == nil || tl.tailUsed == blockEntries {
			if lg.faults.Load().Fail(faultinject.LogBlockAlloc) {
				sh.droppedRegs.Add(1)
				return
			}
			b := new(logBlock)
			sh.logBytes.Add(blockEntries*8 + 8)
			if tl.tail == nil {
				tl.blocks.Store(b)
			} else {
				tl.tail.next.Store(b)
			}
			tl.tail = b
			tl.tailUsed = 0
		}
		slot = &tl.tail.entries[tl.tailUsed]
		tl.tailUsed++
	}
	atomic.StoreUint64(slot, loc)
	tl.lastSlot = slot
	tl.count++
	sh.logged.Add(1)
}

// tryCompress attempts to fold loc into the owner's most recent entry.
func (tl *ThreadLog) tryCompress(loc uint64) bool {
	if tl.lastSlot == nil {
		return false
	}
	e := atomic.LoadUint64(tl.lastSlot)
	if e == 0 {
		return false
	}
	if isCompressed(e) {
		if ne, ok := tryCompressAdd(e, loc); ok {
			atomic.StoreUint64(tl.lastSlot, ne)
			return true
		}
		return false
	}
	// Two raw locations sharing all but the LSB merge into one compressed
	// entry. A location with LSB 0 must occupy the first slot.
	if e>>8 != loc>>8 || e == loc {
		return false
	}
	var ne uint64
	var ok bool
	if loc&0xff == 0 {
		ne, ok = tryCompressAdd(compressOne(loc), e)
	} else {
		ne, ok = tryCompressAdd(compressOne(e), loc)
	}
	if !ok {
		return false
	}
	atomic.StoreUint64(tl.lastSlot, ne)
	return true
}

// forEachLocation visits every location recorded in this thread log. Any
// thread may call it; it tolerates concurrent appends (which may or may not
// be visited).
func (tl *ThreadLog) forEachLocation(fn func(loc uint64)) {
	var scratch [3]uint64
	visit := func(e uint64) {
		for _, loc := range decodeEntry(e, scratch[:0]) {
			fn(loc)
		}
	}
	for i := 0; i < embedEntries; i++ {
		visit(atomic.LoadUint64(&tl.embed[i]))
	}
	for b := tl.blocks.Load(); b != nil; b = b.next.Load() {
		for i := 0; i < blockEntries; i++ {
			visit(atomic.LoadUint64(&b.entries[i]))
		}
	}
	if h := tl.hash.Load(); h != nil {
		h.forEach(fn)
	}
}

// ForEachLocation visits every location recorded for meta across all
// threads.
func (meta *ObjectMeta) ForEachLocation(fn func(loc uint64)) {
	for tl := meta.logs.Load(); tl != nil; tl = tl.next.Load() {
		tl.forEachLocation(fn)
	}
}

// LogThreads returns the number of per-thread logs attached to meta.
func (meta *ObjectMeta) LogThreads() int {
	n := 0
	for tl := meta.logs.Load(); tl != nil; tl = tl.next.Load() {
		n++
	}
	return n
}
