package pointerlog

import (
	"sync"
	"testing"

	"dangsan/internal/vmem"
)

// invalConfig returns the default config with an explicit invalidation
// worker count and a threshold low enough that every walk qualifies.
func invalConfig(workers int) Config {
	cfg := DefaultConfig()
	cfg.InvalidateWorkers = workers
	cfg.ParallelInvalidateMin = 1
	return cfg
}

// fillObject registers nLocs distinct live locations spread over nTids
// thread logs and returns them.
func fillObject(lg *Logger, as *vmem.AddressSpace, meta *ObjectMeta, nLocs, nTids int) []uint64 {
	locs := make([]uint64, nLocs)
	for i := range locs {
		loc := vmem.GlobalsBase + uint64(i)*8
		locs[i] = loc
		as.StoreWord(loc, meta.Base()+uint64(i)%meta.Size()&^7)
		lg.Register(meta, loc, int32(i%nTids))
	}
	return locs
}

// Parallel invalidation must produce exactly the memory effects and
// counter totals of the serial walk, in both large-log regimes (hash
// fallback and many thread logs).
func TestParallelInvalidateMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name  string
		nTids int
	}{
		{"hash-fallback-single-log", 1},
		{"many-thread-logs", 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const nLocs = 20000
			run := func(workers int) (Snapshot, []uint64) {
				as := vmem.New()
				as.Heap().MapPages(vmem.HeapBase, 4)
				lg := NewLogger(invalConfig(workers))
				meta, _ := lg.MustCreateMeta(vmem.HeapBase, 4096)
				locs := fillObject(lg, as, meta, nLocs, tc.nTids)
				// Overwrite a deterministic subset so the stale path runs.
				for i := 0; i < len(locs); i += 3 {
					as.StoreWord(locs[i], 7)
				}
				lg.Invalidate(meta, as)
				words := make([]uint64, len(locs))
				for i, loc := range locs {
					words[i], _ = as.LoadWord(loc)
				}
				return lg.Stats().Snapshot(), words
			}
			serialSnap, serialWords := run(1)
			parSnap, parWords := run(4)
			if serialSnap != parSnap {
				t.Errorf("counters diverge:\nserial   %+v\nparallel %+v", serialSnap, parSnap)
			}
			for i := range serialWords {
				if serialWords[i] != parWords[i] {
					t.Fatalf("memory diverges at loc %d: serial 0x%x parallel 0x%x", i, serialWords[i], parWords[i])
				}
			}
			if serialSnap.Invalidated == 0 || serialSnap.Stale == 0 {
				t.Fatalf("fixture did not exercise both paths: %+v", serialSnap)
			}
		})
	}
}

// Racing program stores must never be clobbered by a parallel
// invalidation: a location overwritten mid-walk keeps its new value.
// Run with -race to check the walk is data-race-free against concurrent
// owner appends and program stores.
func TestParallelInvalidateConcurrentStores(t *testing.T) {
	as := vmem.New()
	as.Heap().MapPages(vmem.HeapBase, 4)
	lg := NewLogger(invalConfig(4))
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 4096)
	locs := fillObject(lg, as, meta, 20000, 2)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// One goroutine keeps overwriting logged slots with a non-pointer;
	// another keeps appending fresh registrations to its own thread log.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i = (i + 7) % len(locs) {
			select {
			case <-stop:
				return
			default:
				as.StoreWord(locs[i], 7)
			}
		}
	}()
	go func() {
		defer wg.Done()
		next := uint64(vmem.GlobalsBase + 1<<20)
		for {
			select {
			case <-stop:
				return
			default:
				lg.Register(meta, next, 3)
				next += 8
			}
		}
	}()
	for i := 0; i < 4; i++ {
		lg.Invalidate(meta, as)
	}
	close(stop)
	wg.Wait()

	for i, loc := range locs {
		w, _ := as.LoadWord(loc)
		// Every slot now holds the overwritten marker, an invalidated
		// pointer, or a still-live pointer registered after the last walk
		// — never a clobbered marker.
		if w != 7 && w&InvalidBit == 0 && (w < meta.Base() || w >= meta.Base()+meta.Size()) {
			t.Fatalf("loc %d corrupted: 0x%x", i, w)
		}
	}
}

// The threadLogFor CAS race must not leak LogBytes: when many threads
// race to create their logs for one object, the accounting must equal
// exactly one log's bytes per thread that won a slot (seed bug: the
// loser's speculative bytes were never subtracted).
func TestThreadLogBytesExactUnderContention(t *testing.T) {
	cfg := DefaultConfig()
	for iter := 0; iter < 50; iter++ {
		lg := NewLogger(cfg)
		meta, _ := lg.MustCreateMeta(vmem.HeapBase, 4096)
		const nThreads = 8
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(nThreads)
		for tid := int32(0); tid < nThreads; tid++ {
			go func(tid int32) {
				defer done.Done()
				start.Wait()
				lg.Register(meta, vmem.GlobalsBase+uint64(tid)*8, tid)
			}(tid)
		}
		start.Done()
		done.Wait()
		perLog := uint64(embedEntries*8 + 64 + cfg.Lookback*8)
		if got := lg.Stats().Snapshot().LogBytes; got != nThreads*perLog {
			t.Fatalf("iter %d: LogBytes = %d, want exactly %d", iter, got, nThreads*perLog)
		}
	}
}

// A forced-parallel walk over an object with a single tiny log (fewer
// units than workers) degrades gracefully.
func TestParallelInvalidateFewUnits(t *testing.T) {
	as := vmem.New()
	as.Heap().MapPages(vmem.HeapBase, 1)
	lg := NewLogger(invalConfig(8))
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 64)
	loc := uint64(vmem.GlobalsBase + 8)
	as.StoreWord(loc, vmem.HeapBase+8)
	lg.Register(meta, loc, 0)
	lg.Invalidate(meta, as)
	if w, _ := as.LoadWord(loc); w != (vmem.HeapBase+8)|InvalidBit {
		t.Fatalf("loc = 0x%x", w)
	}
	if s := lg.Stats().Snapshot(); s.Invalidated != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// Gen must advance on every Invalidate so fast-path caches drop.
func TestGenBumpsOnInvalidate(t *testing.T) {
	as := vmem.New()
	as.Heap().MapPages(vmem.HeapBase, 1)
	lg := NewLogger(DefaultConfig())
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 64)
	g0 := lg.Gen()
	lg.Invalidate(meta, as)
	if lg.Gen() == g0 {
		t.Fatal("Invalidate did not bump generation")
	}
	lg.BumpGen()
	if lg.Gen() != g0+2 {
		t.Fatalf("BumpGen: gen = %d, want %d", lg.Gen(), g0+2)
	}
}
