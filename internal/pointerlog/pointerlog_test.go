package pointerlog

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"dangsan/internal/vmem"
)

// collect gathers all recorded locations for meta, sorted.
func collect(meta *ObjectMeta) []uint64 {
	var locs []uint64
	meta.ForEachLocation(func(loc uint64) { locs = append(locs, loc) })
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	return locs
}

func TestEntryEncoding(t *testing.T) {
	base := uint64(vmem.GlobalsBase + 0x1000)
	// Raw entries decode to themselves.
	got := decodeEntry(base, nil)
	if len(got) != 1 || got[0] != base {
		t.Fatalf("raw decode = %v", got)
	}
	// Compress three locations in one 256-byte region.
	e := compressOne(base) // LSB 0 in slot 0
	e, ok := tryCompressAdd(e, base+8)
	if !ok {
		t.Fatal("add second failed")
	}
	e, ok = tryCompressAdd(e, base+16)
	if !ok {
		t.Fatal("add third failed")
	}
	if !isCompressed(e) {
		t.Fatal("entry not marked compressed")
	}
	got = decodeEntry(e, nil)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []uint64{base, base + 8, base + 16}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("decode = %x, want %x", got, want)
	}
	// Full entry rejects a fourth.
	if _, ok := tryCompressAdd(e, base+24); ok {
		t.Fatal("fourth add accepted")
	}
	// Different common part rejected.
	if _, ok := tryCompressAdd(compressOne(base), base+256); ok {
		t.Fatal("cross-region add accepted")
	}
	// Zero LSB can't fill slot 2/3.
	if _, ok := tryCompressAdd(compressOne(base+8), base); ok {
		t.Fatal("zero-LSB added to non-first slot")
	}
	// Containment checks.
	for _, loc := range want {
		if !entryContains(e, loc) {
			t.Errorf("entryContains(0x%x) = false", loc)
		}
	}
	if entryContains(e, base+24) {
		t.Error("entryContains(+24) = true")
	}
}

// Property: raw entries are never mistaken for compressed ones and
// vice versa, for any simulated address.
func TestEntryDiscriminationProperty(t *testing.T) {
	f := func(off uint32) bool {
		loc := (vmem.HeapBase + uint64(off)) &^ 7
		if isCompressed(loc) {
			return false
		}
		return isCompressed(compressOne(loc))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterAndCollect(t *testing.T) {
	lg := NewLogger(DefaultConfig())
	meta, handle := lg.MustCreateMeta(vmem.HeapBase, 64)
	if handle == 0 {
		t.Fatal("zero handle")
	}
	if lg.MetaAt(handle) != meta {
		t.Fatal("MetaAt mismatch")
	}
	locs := []uint64{
		vmem.GlobalsBase + 0x100,
		vmem.GlobalsBase + 0x2000,
		vmem.StacksBase + 0x40,
	}
	for _, loc := range locs {
		lg.Register(meta, loc, 1)
	}
	got := collect(meta)
	if len(got) != 3 {
		t.Fatalf("collected %d locations: %x", len(got), got)
	}
	s := lg.Stats().Snapshot()
	if s.Registered != 3 || s.Logged != 3 || s.Duplicates != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestLookbackSuppressesDuplicates(t *testing.T) {
	lg := NewLogger(DefaultConfig())
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 64)
	loc := uint64(vmem.GlobalsBase + 0x100)
	for i := 0; i < 100; i++ {
		lg.Register(meta, loc, 1)
	}
	s := lg.Stats().Snapshot()
	if s.Duplicates != 99 {
		t.Fatalf("duplicates = %d, want 99", s.Duplicates)
	}
	if got := collect(meta); len(got) != 1 {
		t.Fatalf("log holds %d entries", len(got))
	}
}

func TestLookbackWindowCycles(t *testing.T) {
	// A cycle longer than the lookback defeats it (the case the hash table
	// exists for).
	cfg := DefaultConfig()
	cfg.Lookback = 2
	cfg.Compression = false
	lg := NewLogger(cfg)
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 64)
	locs := []uint64{
		vmem.GlobalsBase + 0x1000,
		vmem.GlobalsBase + 0x3000,
		vmem.GlobalsBase + 0x5000,
	}
	for round := 0; round < 4; round++ {
		for _, loc := range locs {
			lg.Register(meta, loc, 1)
		}
	}
	if dup := lg.Stats().Snapshot().Duplicates; dup != 0 {
		t.Fatalf("lookback 2 caught cycle of 3: dup=%d", dup)
	}
}

func TestZeroLookback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lookback = 0
	cfg.Compression = false
	lg := NewLogger(cfg)
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 64)
	loc := uint64(vmem.GlobalsBase + 0x100)
	lg.Register(meta, loc, 1)
	lg.Register(meta, loc, 1)
	if s := lg.Stats().Snapshot(); s.Logged != 2 {
		t.Fatalf("logged = %d, want 2 with lookback disabled", s.Logged)
	}
}

func TestCompressionPacksNeighbors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lookback = 0 // isolate compression
	lg := NewLogger(cfg)
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 64)
	base := uint64(vmem.GlobalsBase + 0x300)
	lg.Register(meta, base, 1)
	lg.Register(meta, base+8, 1)
	lg.Register(meta, base+16, 1)
	s := lg.Stats().Snapshot()
	if s.Compressed != 2 {
		t.Fatalf("compressed = %d, want 2", s.Compressed)
	}
	got := collect(meta)
	if len(got) != 3 || got[0] != base || got[1] != base+8 || got[2] != base+16 {
		t.Fatalf("collected %x", got)
	}
	// All three share one entry: the embedded log used only one slot.
	tl := meta.logs.Load()
	if tl.count != 1 {
		t.Fatalf("entry count = %d, want 1", tl.count)
	}
}

func TestCompressionDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lookback = 0
	cfg.Compression = false
	lg := NewLogger(cfg)
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 64)
	base := uint64(vmem.GlobalsBase + 0x300)
	lg.Register(meta, base, 1)
	lg.Register(meta, base+8, 1)
	if tl := meta.logs.Load(); tl.count != 2 {
		t.Fatalf("count = %d, want 2 without compression", tl.count)
	}
}

func TestIndirectBlocksAndHashFallback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lookback = 0
	cfg.Compression = false
	cfg.MaxLogEntries = 40 // embed (12) + part of one block
	lg := NewLogger(cfg)
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 64)
	// Spread locations so neither lookback nor compression could apply.
	n := 200
	for i := 0; i < n; i++ {
		lg.Register(meta, vmem.GlobalsBase+uint64(i)*0x1000, 1)
	}
	s := lg.Stats().Snapshot()
	if s.HashTables != 1 {
		t.Fatalf("hash tables = %d, want 1", s.HashTables)
	}
	if got := collect(meta); len(got) != n {
		t.Fatalf("collected %d, want %d", len(got), n)
	}
	// Duplicates are caught by the hash table too.
	lg.Register(meta, vmem.GlobalsBase+0x1000*100, 1)
	if s := lg.Stats().Snapshot(); s.Duplicates != 1 {
		t.Fatalf("hash duplicate not detected: %+v", s)
	}
}

func TestPerThreadLogs(t *testing.T) {
	lg := NewLogger(DefaultConfig())
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 64)
	lg.Register(meta, vmem.GlobalsBase+0x100, 1)
	lg.Register(meta, vmem.GlobalsBase+0x1100, 2)
	lg.Register(meta, vmem.GlobalsBase+0x2100, 3)
	if n := meta.LogThreads(); n != 3 {
		t.Fatalf("thread logs = %d, want 3", n)
	}
	if got := collect(meta); len(got) != 3 {
		t.Fatalf("locations = %d", len(got))
	}
}

func TestConcurrentRegister(t *testing.T) {
	lg := NewLogger(DefaultConfig())
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 64)
	const threads = 8
	const perThread = 500
	var wg sync.WaitGroup
	for tid := int32(0); tid < threads; tid++ {
		wg.Add(1)
		go func(tid int32) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				loc := vmem.GlobalsBase + uint64(tid)*0x40000 + uint64(i)*0x200
				lg.Register(meta, loc, tid)
			}
		}(tid)
	}
	wg.Wait()
	if n := meta.LogThreads(); n != threads {
		t.Fatalf("thread logs = %d, want %d", n, threads)
	}
	if got := collect(meta); len(got) != threads*perThread {
		t.Fatalf("locations = %d, want %d", len(got), threads*perThread)
	}
}

func newSpace(t testing.TB) *vmem.AddressSpace {
	t.Helper()
	return vmem.New()
}

func TestInvalidate(t *testing.T) {
	as := newSpace(t)
	lg := NewLogger(DefaultConfig())
	as.Heap().MapPages(vmem.HeapBase, 1)
	objBase := uint64(vmem.HeapBase)
	meta, _ := lg.MustCreateMeta(objBase, 64)

	ptrLoc := uint64(vmem.GlobalsBase + 0x100)
	staleLoc := uint64(vmem.GlobalsBase + 0x200)
	interiorLoc := uint64(vmem.GlobalsBase + 0x300)

	// A live pointer to the object's base.
	as.StoreWord(ptrLoc, objBase)
	lg.Register(meta, ptrLoc, 1)
	// A pointer that was overwritten with an unrelated value.
	as.StoreWord(staleLoc, objBase)
	lg.Register(meta, staleLoc, 1)
	as.StoreWord(staleLoc, 12345)
	// An interior pointer.
	as.StoreWord(interiorLoc, objBase+48)
	lg.Register(meta, interiorLoc, 1)

	lg.Invalidate(meta, as)

	if v, _ := as.LoadWord(ptrLoc); v != objBase|InvalidBit {
		t.Fatalf("base pointer = 0x%x", v)
	}
	if v, _ := as.LoadWord(staleLoc); v != 12345 {
		t.Fatalf("stale location clobbered: 0x%x", v)
	}
	if v, _ := as.LoadWord(interiorLoc); v != (objBase+48)|InvalidBit {
		t.Fatalf("interior pointer = 0x%x", v)
	}
	s := lg.Stats().Snapshot()
	if s.Invalidated != 2 || s.Stale != 1 {
		t.Fatalf("stats: %+v", s)
	}
	// The invalidated pointer's low bits still identify the original
	// address (the debugging property).
	v, _ := as.LoadWord(ptrLoc)
	if v&^InvalidBit != objBase {
		t.Fatal("invalidation destroyed the address bits")
	}
	// Dereferencing the invalidated pointer faults as non-canonical.
	if _, f := as.LoadWord(v); f == nil || f.Kind != vmem.FaultNonCanonical {
		t.Fatalf("deref of invalidated pointer: %v", f)
	}
}

func TestInvalidateOnePastEnd(t *testing.T) {
	// With the +1 allocation pad, a pointer one past the logical end stays
	// inside [Base, Base+Size) and must be invalidated.
	as := newSpace(t)
	lg := NewLogger(DefaultConfig())
	as.Heap().MapPages(vmem.HeapBase, 1)
	logical := uint64(64)
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, logical+8) // padded usable size
	loc := uint64(vmem.GlobalsBase + 0x100)
	as.StoreWord(loc, vmem.HeapBase+logical) // one past the end
	lg.Register(meta, loc, 1)
	lg.Invalidate(meta, as)
	if v, _ := as.LoadWord(loc); v&InvalidBit == 0 {
		t.Fatal("one-past-end pointer not invalidated")
	}
}

func TestInvalidateSkipsUnmappedLocation(t *testing.T) {
	as := newSpace(t)
	lg := NewLogger(DefaultConfig())
	as.Heap().MapPages(vmem.HeapBase, 2)
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 64)
	// The pointer lives in a heap page that later gets unmapped.
	loc := uint64(vmem.HeapBase + vmem.PageSize)
	as.StoreWord(loc, vmem.HeapBase)
	lg.Register(meta, loc, 1)
	as.Heap().UnmapPages(loc, 1)
	lg.Invalidate(meta, as) // must not panic
	if s := lg.Stats().Snapshot(); s.Faulted != 1 || s.Invalidated != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestInvalidateRace(t *testing.T) {
	// A store racing with invalidation must never be clobbered: either the
	// old value is invalidated before the store (store wins the slot), or
	// the new value is observed. The new value points elsewhere, so it must
	// survive.
	as := newSpace(t)
	lg := NewLogger(DefaultConfig())
	as.Heap().MapPages(vmem.HeapBase, 1)
	for iter := 0; iter < 200; iter++ {
		meta, _ := lg.MustCreateMeta(vmem.HeapBase, 64)
		loc := uint64(vmem.GlobalsBase + 0x100)
		as.StoreWord(loc, vmem.HeapBase)
		lg.Register(meta, loc, 1)
		done := make(chan struct{})
		go func() {
			as.StoreWord(loc, 777) // unrelated value
			close(done)
		}()
		lg.Invalidate(meta, as)
		<-done
		v, _ := as.LoadWord(loc)
		if v != 777 && v != 777|InvalidBit {
			// 777 must survive; it can never carry the invalid bit since it
			// is out of the object's range.
			if v != 777 {
				t.Fatalf("iter %d: racing store lost: 0x%x", iter, v)
			}
		}
		if v == 777|InvalidBit {
			t.Fatalf("iter %d: unrelated value invalidated", iter)
		}
	}
}

func TestMetaRecycling(t *testing.T) {
	lg := NewLogger(DefaultConfig())
	_, h1 := lg.MustCreateMeta(vmem.HeapBase, 64)
	lg.ReleaseMeta(h1)
	m2, h2 := lg.MustCreateMeta(vmem.HeapBase+128, 32)
	if h2 != h1 {
		t.Fatalf("handle not recycled: %d vs %d", h1, h2)
	}
	if m2.Base() != vmem.HeapBase+128 || m2.Size() != 32 {
		t.Fatalf("recycled meta not reset: %+v", m2)
	}
	if got := collect(m2); len(got) != 0 {
		t.Fatalf("recycled meta kept logs: %x", got)
	}
	// MetaAt of an out-of-range handle is nil.
	if lg.MetaAt(10_000) != nil {
		t.Fatal("MetaAt accepted bogus handle")
	}
	if lg.MetaAt(0) != nil {
		t.Fatal("MetaAt(0) != nil")
	}
}

// Property: for any set of distinct aligned locations, registering then
// collecting yields exactly that set (no loss, no phantom entries),
// regardless of compression.
func TestRegisterCollectProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 50; iter++ {
		lg := NewLogger(DefaultConfig())
		meta, _ := lg.MustCreateMeta(vmem.HeapBase, 64)
		n := rng.Intn(300) + 1
		set := make(map[uint64]bool, n)
		for len(set) < n {
			loc := vmem.GlobalsBase + uint64(rng.Intn(1<<16))*8
			set[loc] = true
		}
		for loc := range set {
			lg.Register(meta, loc, 1)
		}
		got := collect(meta)
		seen := make(map[uint64]bool)
		for _, loc := range got {
			seen[loc] = true
		}
		if len(seen) != n {
			t.Fatalf("iter %d: got %d distinct, want %d", iter, len(seen), n)
		}
		for loc := range set {
			if !seen[loc] {
				t.Fatalf("iter %d: lost location 0x%x", iter, loc)
			}
		}
	}
}

func TestLocSet(t *testing.T) {
	s := newLocSet()
	locs := make([]uint64, 500)
	for i := range locs {
		locs[i] = vmem.GlobalsBase + uint64(i)*8
		if added, _, _ := s.insert(locs[i], nil); !added {
			t.Fatalf("insert %d reported duplicate", i)
		}
	}
	if s.len() != 500 {
		t.Fatalf("len = %d", s.len())
	}
	for _, loc := range locs {
		if !s.contains(loc) {
			t.Fatalf("missing 0x%x", loc)
		}
		if added, _, _ := s.insert(loc, nil); added {
			t.Fatalf("re-insert of 0x%x not detected", loc)
		}
	}
	if s.contains(vmem.GlobalsBase + 500*8) {
		t.Fatal("phantom member")
	}
	count := 0
	s.forEach(func(uint64) { count++ })
	if count != 500 {
		t.Fatalf("forEach visited %d", count)
	}
}

func BenchmarkRegisterUnique(b *testing.B) {
	lg := NewLogger(DefaultConfig())
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg.Register(meta, vmem.GlobalsBase+uint64(i%(1<<20))*8, 1)
	}
}

func BenchmarkRegisterDuplicate(b *testing.B) {
	lg := NewLogger(DefaultConfig())
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 64)
	loc := uint64(vmem.GlobalsBase + 0x100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg.Register(meta, loc, 1)
	}
}

func BenchmarkInvalidate(b *testing.B) {
	as := vmem.New()
	lg := NewLogger(DefaultConfig())
	as.Heap().MapPages(vmem.HeapBase, 1)
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 64)
	for i := 0; i < 64; i++ {
		loc := vmem.GlobalsBase + uint64(i)*0x100
		as.StoreWord(loc, vmem.HeapBase)
		lg.Register(meta, loc, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg.Invalidate(meta, as)
	}
}
