package pointerlog

import (
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dangsan/internal/faultinject"
)

// The cold tier. A hash-mode location set that crosses
// Config.ColdSpillBytes has its entries flushed to a per-logger spill
// file as one framed segment (segment.go) and swaps in a fresh — hot —
// table, so the resident footprint of a long-lived, store-heavy object
// stays bounded by the spill threshold while the full location history
// remains reachable for free-time invalidation. The tiering borrows
// dkdtree's PointLog shape: buffered append-only file log, reservoir
// sample kept in memory, split (here: compaction) when the dead fraction
// dominates.
//
// Concurrency contract, layer by layer:
//
//   - coldState is owned by the ThreadLog's owning thread for writes
//     (spill, reservoir update); invalidating threads read the segment
//     list and reservoir through atomics. A spill publishes its segment
//     node BEFORE swapping in the fresh table, so a concurrent
//     invalidator sees every location in at least one tier (seeing it in
//     both is the usual benign double visit — the second CAS classifies
//     it stale).
//   - coldLog serializes file access with an RWMutex: segment reads
//     (invalidation) share, appends and compaction exclude. Segment
//     offsets move only during compaction, under the write lock, so a
//     reader's offset is stable for the duration of its ReadAt.
//   - Failure is open in both directions: a spill that cannot reach disk
//     leaves the table resident (latency + memory cost, no coverage
//     loss); a segment read that fails skips that segment (coverage
//     loss, counted in ColdReadErrors, never a false report).

// coldStateBytes is the accounting charge for one coldState: the
// reservoir plus header fields. Charged to LogBytes when the state is
// created and released with the rest of the log footprint.
const coldStateBytes = coldReservoirK*8 + 64

// coldSeg describes one spilled segment. length/count/entries are
// immutable after publication; off moves only during compaction (under
// the coldLog write lock); dead flips once, at retirement.
type coldSeg struct {
	off     int64
	length  int
	count   int // locations encoded
	entries int // 8-byte entries on disk
	dead    atomic.Bool
}

// coldSegNode is a link in a coldState's lock-free (prepend-published)
// segment list.
type coldSegNode struct {
	seg  *coldSeg
	next *coldSegNode
}

// coldState is the per-ThreadLog cold tier: the spilled segments and the
// in-memory reservoir summary.
type coldState struct {
	segs atomic.Pointer[coldSegNode]
	locs atomic.Uint64 // total locations spilled (invalidation sizing)

	// reservoir is a uniform sample over every location ever spilled
	// from this log (slot 0 is unused storage for never-filled slots:
	// locations are nonzero, so 0 means empty). Slots are atomic because
	// triage reads race owner writes; the sampling state itself is
	// owner-only.
	reservoir [coldReservoirK]atomic.Uint64
	resSeen   uint64
	rng       uint64
}

func newColdState(tid int32) *coldState {
	// Seed the sampler from the tid so reservoirs differ across logs but
	// every run of a deterministic workload samples identically.
	return &coldState{rng: uint64(uint32(tid))*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D}
}

// nextRand is xorshift64*; owner-only.
func (cs *coldState) nextRand() uint64 {
	x := cs.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	cs.rng = x
	return x * 0x2545F4914F6CDD1D
}

// sample offers locs to the reservoir (Vitter's algorithm R). Owner-only.
func (cs *coldState) sample(locs []uint64) {
	for _, loc := range locs {
		cs.resSeen++
		if cs.resSeen <= coldReservoirK {
			cs.reservoir[cs.resSeen-1].Store(loc)
			continue
		}
		if j := cs.nextRand() % cs.resSeen; j < coldReservoirK {
			cs.reservoir[j].Store(loc)
		}
	}
}

// publish prepends seg to the segment list. Owner-only (one writer); the
// store publishes the node to concurrent invalidators.
func (cs *coldState) publish(seg *coldSeg) {
	cs.segs.Store(&coldSegNode{seg: seg, next: cs.segs.Load()})
	cs.locs.Add(uint64(seg.count))
}

// coldLog is the per-logger spill file and segment registry.
type coldLog struct {
	dir string

	mu   sync.RWMutex
	f    *os.File
	path string
	segs []*coldSeg // every published segment, live and dead

	size     atomic.Int64 // file append offset
	garbage  atomic.Int64 // bytes held by dead segments
	liveSegs atomic.Int64
	compacts atomic.Uint64
}

// ensureCold returns the logger's cold log, creating it on first use.
func (lg *Logger) ensureCold() *coldLog {
	if c := lg.cold.Load(); c != nil {
		return c
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if c := lg.cold.Load(); c != nil {
		return c
	}
	c := &coldLog{dir: lg.cfg.ColdDir}
	lg.cold.Store(c)
	return c
}

// appendSegment writes one framed segment and registers it. The file is
// created lazily so a logger that never spills never touches disk.
func (c *coldLog) appendSegment(buf []byte, faults *faultinject.Plane) (*coldSeg, error) {
	if faults.Fail(faultinject.ColdIO) {
		return nil, errSegTruncated
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		f, err := os.CreateTemp(c.dir, "dangsan-coldlog-*.seg")
		if err != nil {
			return nil, err
		}
		c.f = f
		c.path = f.Name()
	}
	off := c.size.Load()
	if _, err := c.f.WriteAt(buf, off); err != nil {
		return nil, err
	}
	seg := &coldSeg{off: off, length: len(buf)}
	c.size.Store(off + int64(len(buf)))
	c.segs = append(c.segs, seg)
	c.liveSegs.Add(1)
	return seg, nil
}

// readSeg reads seg's framed bytes. Shared-locked so compaction cannot
// move the segment mid-read.
func (c *coldLog) readSeg(seg *coldSeg, faults *faultinject.Plane) ([]byte, error) {
	if faults.Fail(faultinject.ColdIO) {
		return nil, errSegTruncated
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.f == nil {
		return nil, os.ErrClosed
	}
	buf := make([]byte, seg.length)
	if _, err := c.f.ReadAt(buf, seg.off); err != nil {
		return nil, err
	}
	return buf, nil
}

// retire marks seg dead and accounts its bytes as garbage. Idempotent.
func (c *coldLog) retire(seg *coldSeg) {
	if seg.dead.CompareAndSwap(false, true) {
		c.garbage.Add(int64(seg.length))
		c.liveSegs.Add(-1)
	}
}

// overGarbage reports whether dead bytes dominate the file — the
// compaction trigger. Lock-free so release paths can poll it cheaply.
func (c *coldLog) overGarbage() bool {
	g := c.garbage.Load()
	return g > 0 && g*2 >= c.size.Load()
}

// compact rewrites the spill file with only the live segments, updating
// their offsets in place. Runs under the write lock, so invalidating
// readers wait rather than read through the move; callers gate on
// overGarbage (epoch boundaries and metadata release), so the rewrite
// amortizes the same way the epoch drain amortizes shadow walks.
func (c *coldLog) compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	nf, err := os.CreateTemp(c.dir, "dangsan-coldlog-*.seg")
	if err != nil {
		return err
	}
	live := c.segs[:0]
	var off int64
	for _, seg := range c.segs {
		if seg.dead.Load() {
			continue
		}
		buf := make([]byte, seg.length)
		if _, err := c.f.ReadAt(buf, seg.off); err != nil {
			nf.Close()
			os.Remove(nf.Name())
			return err
		}
		if _, err := nf.WriteAt(buf, off); err != nil {
			nf.Close()
			os.Remove(nf.Name())
			return err
		}
		seg.off = off
		off += int64(seg.length)
		live = append(live, seg)
	}
	old, oldPath := c.f, c.path
	c.f, c.path = nf, nf.Name()
	c.segs = live
	c.size.Store(off)
	c.garbage.Store(0)
	c.compacts.Add(1)
	old.Close()
	os.Remove(oldPath)
	return nil
}

// close releases the spill file. The logger is unusable for cold reads
// afterwards.
func (c *coldLog) close() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f != nil {
		c.f.Close()
		os.Remove(c.path)
		c.f = nil
	}
}

// spill flushes tl's current hash table to the cold tier and swaps in a
// fresh hot table. Owner-thread only (called from the register path).
// On any failure the table simply stays resident — fail-open.
func (lg *Logger) spill(tl *ThreadLog, h *locSet, sh *statShard) {
	var start time.Time
	met := lg.met
	if met != nil {
		start = time.Now()
	}

	t := h.table.Load()
	locs := make([]uint64, 0, t.used)
	for _, e := range t.entries {
		// Owner-thread plain read: all writers of these slots are this
		// thread (atomic stores happen-before in program order here).
		if e != 0 {
			locs = append(locs, e)
		}
	}
	if len(locs) == 0 {
		return
	}
	buf, nEntries := encodeSegment(locs)
	seg, err := lg.ensureCold().appendSegment(buf, lg.faults.Load())
	if err != nil {
		sh.spillFailures.Add(1)
		return
	}
	seg.count = len(locs)
	seg.entries = nEntries

	cs := tl.cold.Load()
	if cs == nil {
		cs = newColdState(tl.tid)
		sh.logBytes.Add(coldStateBytes)
		tl.cold.Store(cs)
	}
	// Publish the segment before swapping tables: an invalidator racing
	// the spill must find every location in at least one tier.
	cs.publish(seg)
	cs.sample(locs)

	fresh := newLocSet()
	sh.logBytes.Add(fresh.bytes())
	tl.hash.Store(fresh)
	// The old table's resident bytes leave RAM for the cold tier: the
	// audit identity tracks them in the spilled term from here on.
	sh.logBytesSpilled.Add(h.bytes())
	sh.spills.Add(1)
	if met != nil {
		met.spillNs.Since(tl.tid, start)
	}
}

// retireCold marks every cold segment reachable from meta's logs dead, so
// compaction can reclaim their file bytes. Called at metadata release; a
// racing owner appending a fresh segment to a dying log may leak that
// segment as permanently live — the same benign-race leak the in-memory
// accounting documents for late appends.
func (lg *Logger) retireCold(meta *ObjectMeta) {
	c := lg.cold.Load()
	if c == nil {
		return
	}
	retired := false
	for tl := meta.logs.Load(); tl != nil; tl = tl.next.Load() {
		cs := tl.cold.Load()
		if cs == nil {
			continue
		}
		for n := cs.segs.Load(); n != nil; n = n.next {
			c.retire(n.seg)
			retired = true
		}
	}
	if retired && c.overGarbage() {
		c.compact()
	}
}

// CompactCold rewrites the spill file without its dead segments if
// garbage dominates it. The quarantine engine calls this at epoch
// boundaries so disk reclamation rides the same amortization as the
// batched shadow walk; it is also safe (and cheap when below threshold)
// to call at any quiescent point.
func (lg *Logger) CompactCold() {
	if c := lg.cold.Load(); c != nil && c.overGarbage() {
		c.compact()
	}
}

// forEachColdLocation streams every location spilled for meta through fn.
// Unreadable segments are skipped and counted (coverage loss, fail-open).
func (lg *Logger) forEachColdLocation(meta *ObjectMeta, sh *statShard, fn func(loc uint64)) {
	c := lg.cold.Load()
	if c == nil {
		return
	}
	faults := lg.faults.Load()
	for tl := meta.logs.Load(); tl != nil; tl = tl.next.Load() {
		cs := tl.cold.Load()
		if cs == nil {
			continue
		}
		for n := cs.segs.Load(); n != nil; n = n.next {
			buf, err := c.readSeg(n.seg, faults)
			if err != nil {
				sh.coldReadErrs.Add(1)
				continue
			}
			if err := forEachSegmentLocation(buf, fn); err != nil {
				sh.coldReadErrs.Add(1)
			}
		}
	}
}

// ColdTriage samples meta's cold-tier reservoirs against memory: of the
// sampled spilled locations, how many still hold a pointer into the
// object? This is the fast "probably-stale" probe — O(reservoir) word
// loads, no disk — that lets a caller rank objects by how much live
// invalidation work their cold tier probably holds. The full segment
// walk at free time is unaffected; triage is advisory only.
func (lg *Logger) ColdTriage(meta *ObjectMeta, mem Memory) (sampled, live int) {
	base := meta.Base()
	end := base + meta.Size()
	for tl := meta.logs.Load(); tl != nil; tl = tl.next.Load() {
		cs := tl.cold.Load()
		if cs == nil {
			continue
		}
		for i := range cs.reservoir {
			loc := cs.reservoir[i].Load()
			if loc == 0 {
				continue
			}
			sampled++
			w, fault := mem.LoadWord(loc)
			if fault == nil && w >= base && w < end {
				live++
			}
		}
	}
	return sampled, live
}

// ColdStats is a point-in-time summary of the cold tier.
type ColdStats struct {
	// Segments is the number of live (unretired) segments on disk.
	Segments int64
	// DiskBytes is the spill file's append offset (live + garbage).
	DiskBytes int64
	// GarbageBytes is the portion held by retired segments, reclaimed at
	// the next compaction.
	GarbageBytes int64
	// Compactions is the number of file rewrites so far.
	Compactions uint64
	// Path is the spill file's location ("" before the first spill).
	Path string
}

// ColdLogStats reports the cold tier's file-level state.
func (lg *Logger) ColdLogStats() ColdStats {
	c := lg.cold.Load()
	if c == nil {
		return ColdStats{}
	}
	c.mu.RLock()
	path := c.path
	c.mu.RUnlock()
	return ColdStats{
		Segments:     c.liveSegs.Load(),
		DiskBytes:    c.size.Load(),
		GarbageBytes: c.garbage.Load(),
		Compactions:  c.compacts.Load(),
		Path:         path,
	}
}

// Close releases the logger's cold-tier file, if any. The logger must be
// quiescent (no in-flight registers or invalidations).
func (lg *Logger) Close() {
	lg.cold.Load().close()
}
