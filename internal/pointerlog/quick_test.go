package pointerlog

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"dangsan/internal/vmem"
)

// Property: any set of up to three 8-byte-aligned locations in the same
// 256-byte region with distinct nonzero low bytes (plus at most one
// zero-low-byte location placed first) packs into one entry and decodes to
// exactly the same set.
func TestCompressionRoundTripQuick(t *testing.T) {
	f := func(block uint32, lsbs [3]uint8) bool {
		base := (vmem.HeapBase + uint64(block)<<8) &^ 0xff
		// Force alignment and dedupe.
		var locs []uint64
		seen := map[uint64]bool{}
		for _, l := range lsbs {
			loc := base | uint64(l&0xf8)
			if !seen[loc] {
				seen[loc] = true
				locs = append(locs, loc)
			}
		}
		// Build the entry the way the logger does: first location seeds it,
		// later ones join only if their LSB is nonzero.
		e := compressOne(locs[0])
		accepted := []uint64{locs[0]}
		for _, loc := range locs[1:] {
			if ne, ok := tryCompressAdd(e, loc); ok {
				e = ne
				accepted = append(accepted, loc)
			}
		}
		got := decodeEntry(e, nil)
		if len(got) != len(accepted) {
			return false
		}
		want := map[uint64]bool{}
		for _, l := range accepted {
			want[l] = true
		}
		for _, l := range got {
			if !want[l] {
				return false
			}
		}
		// entryContains agrees with membership for every candidate.
		for _, l := range locs {
			inAccepted := false
			for _, a := range accepted {
				if a == l {
					inAccepted = true
				}
			}
			if entryContains(e, l) != inAccepted {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: a location never decodes out of an entry it wasn't put into —
// across random pairs of raw entries and probe locations.
func TestEntryNoFalseContainsQuick(t *testing.T) {
	f := func(a, b uint32) bool {
		locA := (vmem.HeapBase + uint64(a)) &^ 7
		locB := (vmem.GlobalsBase + uint64(b)) &^ 7
		if locA == locB {
			return true
		}
		return !entryContains(locA, locB) && !entryContains(compressOne(locA), locB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the LSB-0 first-slot rule. A location whose low byte is zero
// is indistinguishable from an empty slot anywhere but slot one, so
// tryCompress must (a) never fold it into an existing compressed entry,
// and (b) when merging it with a raw neighbour, emit an entry whose
// first slot holds the zero byte — regardless of registration order.
func TestCompressLSBZeroFirstSlotQuick(t *testing.T) {
	f := func(block uint32, lsb uint8) bool {
		base := (vmem.HeapBase + uint64(block)<<8) &^ 0xff // LSB-0 location
		other := base | uint64(lsb&0xf8)
		if other == base {
			return true
		}
		// (a) tryCompressAdd always rejects an LSB-0 location.
		if _, ok := tryCompressAdd(compressOne(other), base); ok {
			return false
		}
		// (b) Merge order does not matter: both orders must produce one
		// compressed entry with base in the first slot.
		for _, order := range [][2]uint64{{base, other}, {other, base}} {
			lg := NewLogger(DefaultConfig())
			meta, _ := lg.MustCreateMeta(vmem.HeapBase, 64)
			tl := lg.Register(meta, order[0], 0)
			lg.Register(meta, order[1], 0)
			e := atomic.LoadUint64(tl.lastSlot)
			if !isCompressed(e) || e&0xff != 0 {
				return false
			}
			got := decodeEntry(e, nil)
			if len(got) != 2 || got[0] != base || got[1] != other {
				return false
			}
		}
		// (c) A compressed entry that is already seeded with nonzero LSBs
		// never absorbs the LSB-0 location: it starts a fresh raw entry.
		lg := NewLogger(DefaultConfig())
		meta, _ := lg.MustCreateMeta(vmem.HeapBase, 64)
		third := base | uint64(lsb&0xf8|8)%0x100
		if third == other || third == base {
			third = base | (uint64(other&0xff)+8)%0x100&^7
		}
		if third == other || third == base {
			return true
		}
		tl := lg.Register(meta, other, 0)
		lg.Register(meta, third, 0)
		lg.Register(meta, base, 0)
		if atomic.LoadUint64(tl.lastSlot) != base {
			return false
		}
		if got := lg.Stats().Snapshot(); got.Logged != 3 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the three-location capacity boundary. Three distinct
// nonzero-LSB locations in one 256-byte region fill an entry exactly and
// round-trip; a fourth distinct location must be rejected by
// tryCompressAdd without disturbing the stored three.
func TestCompressCapacityBoundaryQuick(t *testing.T) {
	f := func(block uint32, raw [4]uint8) bool {
		base := (vmem.HeapBase + uint64(block)<<8) &^ 0xff
		// Derive four distinct aligned offsets with nonzero low bytes.
		var locs []uint64
		seen := map[uint64]bool{}
		for i := 0; len(locs) < 4; i++ {
			off := uint64(raw[i%4]&0xf8) + uint64(i*8)
			loc := base | off%0x100
			if loc&0xff == 0 || seen[loc] {
				continue
			}
			seen[loc] = true
			locs = append(locs, loc)
		}
		e := compressOne(locs[0])
		for _, loc := range locs[1:3] {
			ne, ok := tryCompressAdd(e, loc)
			if !ok {
				return false // three nonzero-LSB locations must always fit
			}
			e = ne
		}
		got := decodeEntry(e, nil)
		if len(got) != 3 {
			return false
		}
		want := map[uint64]bool{locs[0]: true, locs[1]: true, locs[2]: true}
		for _, l := range got {
			if !want[l] {
				return false
			}
		}
		// Boundary: the fourth location bounces and the entry is unchanged.
		ne, ok := tryCompressAdd(e, locs[3])
		if ok || ne != e {
			return false
		}
		return !entryContains(e, locs[3])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Register/Invalidate honors the contract for arbitrary
// object-and-slot layouts: every still-pointing slot gets the invalid bit,
// every overwritten slot is untouched.
func TestInvalidateContractQuick(t *testing.T) {
	as := vmem.New()
	as.Heap().MapPages(vmem.HeapBase, 4)
	f := func(offsets [6]uint16, overwrite [6]bool) bool {
		lg := NewLogger(DefaultConfig())
		meta, _ := lg.MustCreateMeta(vmem.HeapBase, 256)
		type slot struct {
			loc       uint64
			val       uint64
			overwrite bool
		}
		var slots []slot
		seen := map[uint64]bool{}
		for i, off := range offsets {
			loc := vmem.GlobalsBase + uint64(off)&^7
			if seen[loc] {
				continue
			}
			seen[loc] = true
			val := vmem.HeapBase + uint64(off)%256&^7
			s := slot{loc: loc, val: val, overwrite: overwrite[i]}
			as.StoreWord(s.loc, s.val)
			lg.Register(meta, s.loc, 1)
			slots = append(slots, s)
		}
		for _, s := range slots {
			if s.overwrite {
				as.StoreWord(s.loc, 999)
			}
		}
		lg.Invalidate(meta, as)
		for _, s := range slots {
			got, _ := as.LoadWord(s.loc)
			if s.overwrite && got != 999 {
				return false
			}
			if !s.overwrite && got != s.val|InvalidBit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
