package pointerlog

import (
	"testing"
	"testing/quick"

	"dangsan/internal/vmem"
)

// Property: any set of up to three 8-byte-aligned locations in the same
// 256-byte region with distinct nonzero low bytes (plus at most one
// zero-low-byte location placed first) packs into one entry and decodes to
// exactly the same set.
func TestCompressionRoundTripQuick(t *testing.T) {
	f := func(block uint32, lsbs [3]uint8) bool {
		base := (vmem.HeapBase + uint64(block)<<8) &^ 0xff
		// Force alignment and dedupe.
		var locs []uint64
		seen := map[uint64]bool{}
		for _, l := range lsbs {
			loc := base | uint64(l&0xf8)
			if !seen[loc] {
				seen[loc] = true
				locs = append(locs, loc)
			}
		}
		// Build the entry the way the logger does: first location seeds it,
		// later ones join only if their LSB is nonzero.
		e := compressOne(locs[0])
		accepted := []uint64{locs[0]}
		for _, loc := range locs[1:] {
			if ne, ok := tryCompressAdd(e, loc); ok {
				e = ne
				accepted = append(accepted, loc)
			}
		}
		got := decodeEntry(e, nil)
		if len(got) != len(accepted) {
			return false
		}
		want := map[uint64]bool{}
		for _, l := range accepted {
			want[l] = true
		}
		for _, l := range got {
			if !want[l] {
				return false
			}
		}
		// entryContains agrees with membership for every candidate.
		for _, l := range locs {
			inAccepted := false
			for _, a := range accepted {
				if a == l {
					inAccepted = true
				}
			}
			if entryContains(e, l) != inAccepted {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: a location never decodes out of an entry it wasn't put into —
// across random pairs of raw entries and probe locations.
func TestEntryNoFalseContainsQuick(t *testing.T) {
	f := func(a, b uint32) bool {
		locA := (vmem.HeapBase + uint64(a)) &^ 7
		locB := (vmem.GlobalsBase + uint64(b)) &^ 7
		if locA == locB {
			return true
		}
		return !entryContains(locA, locB) && !entryContains(compressOne(locA), locB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Register/Invalidate honors the contract for arbitrary
// object-and-slot layouts: every still-pointing slot gets the invalid bit,
// every overwritten slot is untouched.
func TestInvalidateContractQuick(t *testing.T) {
	as := vmem.New()
	as.Heap().MapPages(vmem.HeapBase, 4)
	f := func(offsets [6]uint16, overwrite [6]bool) bool {
		lg := NewLogger(DefaultConfig())
		meta, _ := lg.CreateMeta(vmem.HeapBase, 256)
		type slot struct {
			loc       uint64
			val       uint64
			overwrite bool
		}
		var slots []slot
		seen := map[uint64]bool{}
		for i, off := range offsets {
			loc := vmem.GlobalsBase + uint64(off)&^7
			if seen[loc] {
				continue
			}
			seen[loc] = true
			val := vmem.HeapBase + uint64(off)%256&^7
			s := slot{loc: loc, val: val, overwrite: overwrite[i]}
			as.StoreWord(s.loc, s.val)
			lg.Register(meta, s.loc, 1)
			slots = append(slots, s)
		}
		for _, s := range slots {
			if s.overwrite {
				as.StoreWord(s.loc, 999)
			}
		}
		lg.Invalidate(meta, as)
		for _, s := range slots {
			got, _ := as.LoadWord(s.loc)
			if s.overwrite && got != 999 {
				return false
			}
			if !s.overwrite && got != s.val|InvalidBit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
