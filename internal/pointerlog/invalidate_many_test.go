package pointerlog

import (
	"testing"

	"dangsan/internal/vmem"
)

// setupMany builds n one-page objects with locsPer disjoint live locations
// each, overwriting every third location so the stale path runs too.
func setupMany(cfg Config, n, locsPer int) (*Logger, *vmem.AddressSpace, []*ObjectMeta, []uint64) {
	as := vmem.New()
	as.Heap().MapPages(vmem.HeapBase, n)
	lg := NewLogger(cfg)
	metas := make([]*ObjectMeta, n)
	var locs []uint64
	for i := range metas {
		base := vmem.HeapBase + uint64(i)*vmem.PageSize
		metas[i], _ = lg.MustCreateMeta(base, vmem.PageSize)
		for j := 0; j < locsPer; j++ {
			loc := vmem.GlobalsBase + uint64(i*locsPer+j)*8
			as.StoreWord(loc, base+uint64(j*8)%vmem.PageSize)
			lg.Register(metas[i], loc, int32(j%4))
			locs = append(locs, loc)
		}
	}
	for i := 0; i < len(locs); i += 3 {
		as.StoreWord(locs[i], 7)
	}
	return lg, as, metas, locs
}

// A batched walk over disjoint objects must produce exactly the memory
// effects and counter totals of invalidating each object in turn.
func TestInvalidateManyMatchesSerialLoop(t *testing.T) {
	const n, locsPer = 8, 200
	run := func(batch bool) (Snapshot, []uint64) {
		lg, as, metas, locs := setupMany(invalConfig(1), n, locsPer)
		if batch {
			lg.InvalidateMany(metas, as)
		} else {
			for _, m := range metas {
				lg.Invalidate(m, as)
			}
		}
		words := make([]uint64, len(locs))
		for i, loc := range locs {
			words[i], _ = as.LoadWord(loc)
		}
		return lg.Stats().Snapshot(), words
	}
	loopSnap, loopWords := run(false)
	batchSnap, batchWords := run(true)
	if loopSnap != batchSnap {
		t.Errorf("counters diverge:\nloop  %+v\nbatch %+v", loopSnap, batchSnap)
	}
	for i := range loopWords {
		if loopWords[i] != batchWords[i] {
			t.Fatalf("memory diverges at loc %d: loop 0x%x batch 0x%x", i, loopWords[i], batchWords[i])
		}
	}
	if batchSnap.Invalidated == 0 || batchSnap.Stale == 0 {
		t.Fatalf("fixture did not exercise both paths: %+v", batchSnap)
	}
}

// The parallel batched walk must match the serial batched walk on disjoint
// location sets.
func TestInvalidateManyParallelMatchesSerial(t *testing.T) {
	const n, locsPer = 8, 400
	run := func(workers int) (Snapshot, []uint64) {
		lg, as, metas, locs := setupMany(invalConfig(workers), n, locsPer)
		lg.InvalidateMany(metas, as)
		words := make([]uint64, len(locs))
		for i, loc := range locs {
			words[i], _ = as.LoadWord(loc)
		}
		return lg.Stats().Snapshot(), words
	}
	serialSnap, serialWords := run(1)
	parSnap, parWords := run(4)
	if serialSnap != parSnap {
		t.Errorf("counters diverge:\nserial   %+v\nparallel %+v", serialSnap, parSnap)
	}
	for i := range serialWords {
		if serialWords[i] != parWords[i] {
			t.Fatalf("memory diverges at loc %d: serial 0x%x parallel 0x%x", i, serialWords[i], parWords[i])
		}
	}
}

// One location registered against two batch members (the value moved from
// object A to object B before either died) is visited once thanks to the
// serial path's dedup, and counts exactly one invalidation — the value
// lies in the merged dead range either way.
func TestInvalidateManySharedLocation(t *testing.T) {
	as := vmem.New()
	as.Heap().MapPages(vmem.HeapBase, 2)
	lg := NewLogger(invalConfig(1))
	a, _ := lg.MustCreateMeta(vmem.HeapBase, vmem.PageSize)
	b, _ := lg.MustCreateMeta(vmem.HeapBase+vmem.PageSize, vmem.PageSize)
	loc := uint64(vmem.GlobalsBase + 8)
	as.StoreWord(loc, a.Base()+16)
	lg.Register(a, loc, 0)
	as.StoreWord(loc, b.Base()+16)
	lg.Register(b, loc, 0)

	lg.InvalidateMany([]*ObjectMeta{a, b}, as)
	if v, _ := as.LoadWord(loc); v != (b.Base()+16)|InvalidBit {
		t.Fatalf("loc = 0x%x", v)
	}
	if s := lg.Stats().Snapshot(); s.Invalidated != 1 || s.Stale != 0 {
		t.Fatalf("stats: %+v (want one invalidation, no stale visit)", s)
	}
}

// Degenerate batches: empty is a no-op (not even a generation bump), a
// single meta behaves exactly like Invalidate.
func TestInvalidateManyDegenerate(t *testing.T) {
	as := vmem.New()
	as.Heap().MapPages(vmem.HeapBase, 1)
	lg := NewLogger(DefaultConfig())
	g0 := lg.Gen()
	lg.InvalidateMany(nil, as)
	if lg.Gen() != g0 {
		t.Fatal("empty batch bumped the generation")
	}

	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 64)
	loc := uint64(vmem.GlobalsBase + 8)
	as.StoreWord(loc, vmem.HeapBase+8)
	lg.Register(meta, loc, 0)
	lg.InvalidateMany([]*ObjectMeta{meta}, as)
	if v, _ := as.LoadWord(loc); v != (vmem.HeapBase+8)|InvalidBit {
		t.Fatalf("loc = 0x%x", v)
	}
	if lg.Gen() == g0 {
		t.Fatal("single-meta batch did not bump the generation")
	}
}
