package pointerlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
)

// Cold-segment on-disk format. A spill file is a sequence of self-framing
// segments, each:
//
//	offset  size  field
//	0       4     magic ("DSg1")
//	4       4     count    — locations encoded in the payload
//	8       4     payload  — payload length in bytes (multiple of 8)
//	12      4     checksum — FNV-1a over the payload bytes
//	16      n     payload  — log entries, little-endian uint64 each, in
//	                         the in-memory entry encoding (raw location or
//	                         compressed trio; see entry.go), so the read
//	                         path streams straight through decodeEntry.
//
// Segments are append-only and independently decodable: a reader needs no
// index, only the previous segment's end. A torn final segment — the
// process died mid-write — fails its length or checksum test and is
// dropped; every fully written segment before it is still recovered
// (ReadSegments). This is the same crash-safety contract as a
// log-structured file system's tail scan, which is fitting given the
// paper sells the pointer log as "an LSFS in memory" (§4.4).

// segMagic marks a segment header ("DSg1" little-endian).
const segMagic = uint32('D') | uint32('S')<<8 | uint32('g')<<16 | uint32('1')<<24

// segHeaderBytes is the fixed segment header size.
const segHeaderBytes = 16

// errSegTruncated reports a segment cut short by a crash mid-append; the
// reader treats it as end-of-log.
var errSegTruncated = errors.New("pointerlog: truncated cold segment")

// errSegCorrupt reports a segment whose framing or checksum is wrong.
var errSegCorrupt = errors.New("pointerlog: corrupt cold segment")

// fnv1a is the payload checksum (FNV-1a 32-bit).
func fnv1a(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// encodeSegment packs locs (raw pointer locations) into a framed segment.
// The locations are sorted and greedily folded through the entry
// compression — up to three locations sharing all but their low byte per
// 8-byte entry — so spatially local location sets shrink up to 3x on
// disk, exactly as they do in the in-memory log. Returns the framed bytes
// and the number of entries in the payload.
func encodeSegment(locs []uint64) ([]byte, int) {
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	entries := make([]uint64, 0, len(locs))
	for _, loc := range locs {
		if n := len(entries); n > 0 && isCompressed(entries[n-1]) {
			if ne, ok := tryCompressAdd(entries[n-1], loc); ok {
				entries[n-1] = ne
				continue
			}
		}
		// Start a new entry. A compressed singleton keeps the option of
		// folding the next location in; a location whose low byte is zero
		// cannot take later companions (LSB 0 marks an empty slot), so it
		// is stored raw.
		if loc&0xff != 0 {
			entries = append(entries, compressOne(loc))
		} else {
			entries = append(entries, loc)
		}
	}

	payload := make([]byte, len(entries)*8)
	for i, e := range entries {
		binary.LittleEndian.PutUint64(payload[i*8:], e)
	}
	buf := make([]byte, segHeaderBytes+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], segMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(locs)))
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[12:], fnv1a(payload))
	copy(buf[segHeaderBytes:], payload)
	return buf, len(entries)
}

// decodeSegmentHeader validates the 16-byte header in b and returns the
// declared location count and payload length.
func decodeSegmentHeader(b []byte) (count, payloadLen int, err error) {
	if len(b) < segHeaderBytes {
		return 0, 0, errSegTruncated
	}
	if binary.LittleEndian.Uint32(b) != segMagic {
		return 0, 0, errSegCorrupt
	}
	count = int(binary.LittleEndian.Uint32(b[4:]))
	payloadLen = int(binary.LittleEndian.Uint32(b[8:]))
	if payloadLen%8 != 0 {
		return 0, 0, errSegCorrupt
	}
	return count, payloadLen, nil
}

// decodeSegment parses one segment at the start of b, appending its
// decoded locations to out. It returns the extended slice and the total
// framed length consumed. A short or checksum-failing segment returns
// errSegTruncated — indistinguishable from a crash mid-append, and
// handled the same way: stop reading.
func decodeSegment(b []byte, out []uint64) ([]uint64, int, error) {
	count, payloadLen, err := decodeSegmentHeader(b)
	if err != nil {
		return out, 0, err
	}
	if len(b) < segHeaderBytes+payloadLen {
		return out, 0, errSegTruncated
	}
	payload := b[segHeaderBytes : segHeaderBytes+payloadLen]
	if fnv1a(payload) != binary.LittleEndian.Uint32(b[12:]) {
		return out, 0, errSegTruncated
	}
	start := len(out)
	for i := 0; i < payloadLen; i += 8 {
		out = decodeEntry(binary.LittleEndian.Uint64(payload[i:]), out)
	}
	if len(out)-start != count {
		return out[:start], 0, errSegCorrupt
	}
	return out, segHeaderBytes + payloadLen, nil
}

// forEachSegmentLocation streams the locations of the framed segment in b
// to fn without materializing them. b must be exactly one validated
// segment's bytes (header + payload), as returned by a coldSeg read.
func forEachSegmentLocation(b []byte, fn func(loc uint64)) error {
	_, payloadLen, err := decodeSegmentHeader(b)
	if err != nil {
		return err
	}
	if len(b) < segHeaderBytes+payloadLen {
		return errSegTruncated
	}
	payload := b[segHeaderBytes : segHeaderBytes+payloadLen]
	if fnv1a(payload) != binary.LittleEndian.Uint32(b[12:]) {
		return errSegTruncated
	}
	var scratch [3]uint64
	for i := 0; i < payloadLen; i += 8 {
		for _, loc := range decodeEntry(binary.LittleEndian.Uint64(payload[i:]), scratch[:0]) {
			fn(loc)
		}
	}
	return nil
}

// ReadSegments recovers every intact segment from a spill file: the
// restart/crash path. It decodes segments front to back and stops at the
// first truncated one (a crash mid-append leaves at most one, at the
// tail). The locations of all intact segments are returned in file order.
// A corrupt segment anywhere but the tail is reported as an error —
// unlike truncation, mid-file corruption means lost coverage a restart
// cannot scope.
func ReadSegments(path string) ([]uint64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var locs []uint64
	off := 0
	for off < len(b) {
		out, n, err := decodeSegment(b[off:], locs)
		if errors.Is(err, errSegTruncated) {
			break
		}
		if err != nil {
			return locs, fmt.Errorf("segment at offset %d: %w", off, err)
		}
		locs = out
		off += n
	}
	return locs, nil
}
