package pointerlog

import (
	"errors"
	"testing"

	"dangsan/internal/faultinject"
	"dangsan/internal/obs"
)

// TestCreateMetaMaxMetadataBytes: once the metadata footprint reaches the
// budget, CreateMeta returns ErrMetadataExhausted instead of allocating.
func TestCreateMetaMaxMetadataBytes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxMetadataBytes = 1 // any footprint at all exhausts the budget
	lg := NewLogger(cfg)

	// The first object fits: nothing has been charged yet.
	if _, _, err := lg.CreateMeta(0x1000, 64); err != nil {
		t.Fatalf("first CreateMeta under budget failed: %v", err)
	}
	if lg.MetadataBytes() < metaSlabBytes {
		t.Fatalf("slab not charged: MetadataBytes=%d", lg.MetadataBytes())
	}
	// The second one finds the budget blown.
	_, _, err := lg.CreateMeta(0x2000, 64)
	if !errors.Is(err, ErrMetadataExhausted) {
		t.Fatalf("want ErrMetadataExhausted, got %v", err)
	}

	// The degraded path the detector takes is NoteDegraded; it must land
	// in the snapshot.
	lg.NoteDegraded(0)
	lg.NoteDegraded(1)
	if got := lg.Stats().Snapshot().DegradedObjects; got != 2 {
		t.Fatalf("DegradedObjects=%d want 2", got)
	}
}

// TestCreateMetaUnlimitedByDefault: MaxMetadataBytes 0 never exhausts.
func TestCreateMetaUnlimitedByDefault(t *testing.T) {
	lg := NewLogger(DefaultConfig())
	for i := 0; i < 3*metaSlabSize; i++ { // cross several slab boundaries
		if _, _, err := lg.CreateMeta(uint64(0x1000+i*64), 64); err != nil {
			t.Fatalf("CreateMeta %d: %v", i, err)
		}
	}
	if lg.MetadataBytes() < 3*metaSlabBytes {
		t.Fatalf("expected ≥3 slabs charged, MetadataBytes=%d", lg.MetadataBytes())
	}
}

// TestCreateMetaFaultInjected: the MetaAlloc site converts into the same
// typed error, and the plane counts the injection.
func TestCreateMetaFaultInjected(t *testing.T) {
	plane := faultinject.New(5)
	plane.Enable(faultinject.MetaAlloc, 1.0, -1)
	lg := NewLogger(DefaultConfig())
	lg.InjectFaults(plane)
	_, _, err := lg.CreateMeta(0x1000, 64)
	if !errors.Is(err, ErrMetadataExhausted) {
		t.Fatalf("want ErrMetadataExhausted, got %v", err)
	}
	if plane.Injected(faultinject.MetaAlloc) != 1 {
		t.Fatalf("plane counted %d injections, want 1", plane.Injected(faultinject.MetaAlloc))
	}
}

// TestRegisterDropsOnLogBlockFault: when indirect-block allocation is
// denied, registrations past the embedded entries are dropped and counted —
// and the audit accounting still balances (nothing was charged for them).
func TestRegisterDropsOnLogBlockFault(t *testing.T) {
	plane := faultinject.New(6)
	plane.Enable(faultinject.LogBlockAlloc, 1.0, -1)
	cfg := DefaultConfig()
	cfg.Lookback = 0
	cfg.Compression = false
	cfg.Audit = true
	lg := NewLogger(cfg)
	lg.InjectFaults(plane)

	meta, _ := lg.MustCreateMeta(0x10000, 4096)
	for i := 0; i < embedEntries+5; i++ {
		lg.Register(meta, uint64(0x200000+i*4096), 0) // far apart: no compression
	}
	snap := lg.Stats().Snapshot()
	if snap.DroppedRegistrations != 5 {
		t.Fatalf("DroppedRegistrations=%d want 5", snap.DroppedRegistrations)
	}
	if err := lg.AuditCheck(); err != nil {
		t.Fatalf("accounting drifted under dropped registrations: %v", err)
	}
}

// TestRegisterDropsOnHashSwitchFault: the log-to-hash-table switch draws
// the HashGrowAlloc site; a denied switch drops that registration, and the
// log recovers when the fault clears.
func TestRegisterDropsOnHashSwitchFault(t *testing.T) {
	plane := faultinject.New(7)
	plane.Enable(faultinject.HashGrowAlloc, 1.0, 1) // exactly one denial
	cfg := DefaultConfig()
	cfg.Lookback = 0
	cfg.Compression = false
	cfg.MaxLogEntries = embedEntries // switch as soon as the embed array fills
	cfg.Audit = true
	lg := NewLogger(cfg)
	lg.InjectFaults(plane)

	meta, _ := lg.MustCreateMeta(0x10000, 4096)
	for i := 0; i <= embedEntries; i++ {
		lg.Register(meta, uint64(0x200000+i*4096), 0)
	}
	snap := lg.Stats().Snapshot()
	if snap.DroppedRegistrations != 1 {
		t.Fatalf("DroppedRegistrations=%d want 1", snap.DroppedRegistrations)
	}
	if snap.HashTables != 0 {
		t.Fatalf("hash table created despite denied allocation")
	}
	// Budget drained: the next registration succeeds by creating the table.
	lg.Register(meta, 0x900000, 0)
	snap = lg.Stats().Snapshot()
	if snap.HashTables != 1 {
		t.Fatalf("log did not recover after the fault cleared: %+v", snap)
	}
	if err := lg.AuditCheck(); err != nil {
		t.Fatalf("accounting drifted across the denied switch: %v", err)
	}
}

// TestRegisteredCountsDrops: regression for the degraded-mode accounting
// bug where the derived Registered total omitted dropped registrations —
// every Register call ends in exactly one of logged, duplicate, or dropped,
// so Registered must equal their sum even when the log is shedding load.
// Checked both on the Snapshot and end-to-end through the obs gauge.
func TestRegisteredCountsDrops(t *testing.T) {
	plane := faultinject.New(9)
	plane.Enable(faultinject.LogBlockAlloc, 1.0, -1)
	cfg := DefaultConfig()
	cfg.Lookback = 1
	cfg.Compression = false
	lg := NewLogger(cfg)
	lg.InjectFaults(plane)
	reg := obs.NewRegistry()
	lg.AttachMetrics(reg)

	meta, _ := lg.MustCreateMeta(0x10000, 4096)
	lg.Register(meta, 0x200000, 0)
	lg.Register(meta, 0x200000, 0) // lookback duplicate, while room remains
	for i := 1; i < embedEntries+5; i++ {
		lg.Register(meta, uint64(0x200000+i*4096), 0)
	}
	const calls = embedEntries + 6

	snap := lg.Stats().Snapshot()
	if snap.DroppedRegistrations != 5 || snap.Duplicates != 1 {
		t.Fatalf("fixture drifted: %+v", snap)
	}
	if want := snap.Logged + snap.Duplicates + snap.DroppedRegistrations; snap.Registered != want {
		t.Fatalf("Registered=%d want %d (logged=%d dup=%d dropped=%d)",
			snap.Registered, want, snap.Logged, snap.Duplicates, snap.DroppedRegistrations)
	}
	if snap.Registered != calls {
		t.Fatalf("Registered=%d want %d (one per Register call)", snap.Registered, calls)
	}
	if g := reg.Snapshot().Gauges["pointerlog.registered"]; g != int64(calls) {
		t.Fatalf("gauge pointerlog.registered=%d want %d", g, calls)
	}
}

// TestLocSetFullTableDrop: with growth denied, the table absorbs inserts
// until it is one slot from full, then drops — it must never fill the last
// slot (which would make every miss probe spin forever).
func TestLocSetFullTableDrop(t *testing.T) {
	s := newLocSet()
	deny := func() bool { return false }
	var added, dropped int
	for i := 1; i <= 4*locSetInitial; i++ {
		a, grown, d := s.insert(uint64(i*8), deny)
		if grown != 0 {
			t.Fatalf("insert %d grew the table despite denial", i)
		}
		if a {
			added++
		}
		if d {
			dropped++
		}
	}
	if added != locSetInitial-1 {
		t.Fatalf("added=%d want %d (one slot must stay empty)", added, locSetInitial-1)
	}
	if dropped != 4*locSetInitial-added {
		t.Fatalf("dropped=%d want %d", dropped, 4*locSetInitial-added)
	}
	// Probes for entries present and absent must both terminate.
	if !s.contains(8) {
		t.Fatal("first inserted location missing")
	}
	if s.contains(uint64(5 * locSetInitial * 8)) {
		t.Fatal("never-inserted location reported present")
	}
	// Re-inserting an existing location on a full table is a duplicate,
	// not a drop.
	a, _, d := s.insert(8, deny)
	if a || d {
		t.Fatalf("duplicate insert on full table: added=%v dropped=%v", a, d)
	}
}

// TestRegisterWithHashDropsWhenFull: end-to-end through the Logger — an
// object in hash mode whose table cannot grow eventually drops instead of
// hanging, and keeps the accounting exact.
func TestRegisterWithHashDropsWhenFull(t *testing.T) {
	plane := faultinject.New(8)
	cfg := DefaultConfig()
	cfg.Lookback = 0
	cfg.Compression = false
	cfg.MaxLogEntries = embedEntries
	cfg.Audit = true
	lg := NewLogger(cfg)
	lg.InjectFaults(plane)

	meta, _ := lg.MustCreateMeta(0x10000, 4096)
	// Fill past the switch so the hash table exists (no faults armed yet).
	for i := 0; i <= embedEntries; i++ {
		lg.Register(meta, uint64(0x200000+i*4096), 0)
	}
	if lg.Stats().Snapshot().HashTables != 1 {
		t.Fatal("hash mode not reached")
	}
	// Now deny all growth and hammer distinct locations.
	plane.Enable(faultinject.HashGrowAlloc, 1.0, -1)
	for i := 0; i < 4*locSetInitial; i++ {
		lg.Register(meta, uint64(0x400000+i*4096), 0)
	}
	snap := lg.Stats().Snapshot()
	if snap.DroppedRegistrations == 0 {
		t.Fatal("full table with denied growth never dropped")
	}
	if err := lg.AuditCheck(); err != nil {
		t.Fatalf("accounting drifted in degraded hash mode: %v", err)
	}
}
