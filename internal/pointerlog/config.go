// Package pointerlog implements DangSan's pointer logger: per-thread,
// lock-free, append-only logs of the memory locations that hold pointers
// into each heap object, plus the invalidation pass that runs at free time.
//
// The design follows the paper's log-structured-file-system insight (§4.4):
// pointer tracking is extremely write-heavy (every pointer-typed store) and
// read-rare (only free reads the log), and it needs no consistency between
// threads because every logged location is re-verified at free time — a
// location that no longer holds a pointer into the object is simply skipped
// as stale. Each object therefore keeps a singly linked list of per-thread
// logs; a thread appends to its own log without synchronization, and only
// list insertion uses compare-and-swap.
//
// Three mechanisms bound log growth (paper §4.4 and §6):
//
//   - a fixed lookback over the most recent entries suppresses tight
//     duplicate cycles (e.g. loop iterator slots);
//   - pointer compression packs up to three locations that differ only in
//     their least significant byte into one 8-byte entry;
//   - a hash-table fallback replaces the log once it exceeds a threshold,
//     bounding memory on pathological duplicate patterns the lookback
//     cannot catch.
package pointerlog

import (
	"math"
	"runtime"
)

// DefaultLookback is the paper's chosen lookback window: "we have chosen to
// use a lookback size of four" — performance is flat between one and four
// and degrades beyond.
const DefaultLookback = 4

// DefaultMaxLogEntries is the log size (embedded + indirect blocks, counted
// in 8-byte entries) beyond which an object's per-thread log switches to the
// hash-table fallback.
const DefaultMaxLogEntries = 128

// MaxLookback bounds the configurable lookback window.
const MaxLookback = 64

// DefaultParallelInvalidateMin is the estimated log-entry count (inline
// entries plus hash-table capacity) above which Invalidate fans the walk
// out over worker goroutines. Thread-log inline storage is bounded by
// MaxLogEntries, so in the default configuration only objects that
// overflowed into the hash fallback — or are shared by very many
// threads — cross it.
const DefaultParallelInvalidateMin = 4096

// MaxInvalidateWorkers caps the free-time worker pool.
const MaxInvalidateWorkers = 8

// DefaultQuarantineEpoch is the number of deferred frees drained per epoch
// batch when quarantine mode is on and no explicit epoch is configured.
// Large enough that the merged walk amortizes the per-batch overhead,
// small enough that memory is not held hostage long after its free.
const DefaultQuarantineEpoch = 64

// MaxQuarantineEpoch bounds the configurable epoch width: past a few
// thousand objects per batch the merged-walk win flattens while the
// drain's stop-the-free-path cost (on overflow) keeps growing.
const MaxQuarantineEpoch = 4096

// DefaultColdSpillBytes is the recommended hash-table residency (bytes of
// table slots) at which a location set's entries are spilled to the cold
// tier. Spilling is opt-in (Config.ColdSpillBytes == 0 disables it); there
// is no implicit default. 64 KiB keeps the hot tier within L2 while each
// spill segment still amortizes a file write over thousands of locations.
const DefaultColdSpillBytes = 64 << 10

// MinColdSpillBytes floors the configurable spill threshold: below one
// initial table (locSetInitial slots) the hot tier could never hold even a
// freshly swapped-in table, and every grow would spill.
const MinColdSpillBytes = locSetInitial * 8 * 2

// coldReservoirK is the per-thread-log reservoir size backing the
// "probably-stale" triage: a uniform sample of every location ever spilled,
// kept in memory so ColdTriage can estimate liveness without touching disk.
const coldReservoirK = 64

// Config carries the tunables that the paper's design discussion and our
// ablation benchmarks vary. The zero value is not valid; use
// DefaultConfig().
type Config struct {
	// Lookback is the number of recent entries checked for duplicates
	// before appending (0 disables the lookback).
	Lookback int
	// MaxLogEntries is the per-thread log length that triggers the
	// hash-table fallback.
	MaxLogEntries int
	// Compression enables packing up to three nearby locations into one
	// log entry.
	Compression bool
	// InvalidateWorkers bounds the goroutines walking one object's logs
	// at free time. 0 picks min(GOMAXPROCS, MaxInvalidateWorkers); 1
	// forces the serial walk.
	InvalidateWorkers int
	// ParallelInvalidateMin is the estimated entry count above which the
	// free-time walk is parallelized. 0 picks
	// DefaultParallelInvalidateMin; negative disables parallel walks.
	ParallelInvalidateMin int
	// Audit enables the accounting cross-check: at every release (and on
	// demand via AuditCheck) the logger re-measures the live log footprint
	// by walking the structures and requires it to match the incremental
	// LogBytes charges exactly. Debugging aid for deterministic workloads;
	// see audit.go for the precise identity and its caveats.
	Audit bool
	// MaxMetadataBytes caps the logger's metadata footprint (live log
	// structures plus registry slabs). Once MetadataBytes() reaches the
	// cap, CreateMeta returns ErrMetadataExhausted and the detector tracks
	// no further objects until pressure subsides — explicit degraded mode
	// in place of unbounded growth. 0 means unlimited.
	MaxMetadataBytes uint64
	// QuarantineBytes, when nonzero, arms the detector-level free
	// quarantine: freed objects keep their memory and metadata until an
	// epoch batch invalidates them together (InvalidateMany), bounded by
	// this many quarantined object bytes. Exceeding the bound forces a
	// synchronous drain on the freeing thread — the same fail-open shape
	// as MaxMetadataBytes, never a panic. 0 disables quarantine.
	QuarantineBytes uint64
	// QuarantineEpoch is the number of deferred frees retired per epoch
	// batch (0 picks DefaultQuarantineEpoch when quarantine is armed).
	QuarantineEpoch int
	// QuarantineSync drains epochs synchronously on the freeing thread at
	// each epoch boundary instead of handing batches to a background
	// worker. Deterministic-by-construction: the differ's quarantine cells
	// and the audited chaos stage use it so the accounting identity and
	// invalidation counts are reproducible run to run.
	QuarantineSync bool
	// ColdSpillBytes, when nonzero, arms the tiered log: once a hash-mode
	// location set's table crosses this many resident bytes, its entries
	// are flushed as a compressed append-only segment to a per-logger
	// spill file and a fresh (hot) table takes over. Free-time
	// invalidation streams the segments back through the entry decoder;
	// a spill that cannot reach disk fails open (the table stays
	// resident). Values below MinColdSpillBytes are raised to it.
	// 0 keeps every location set fully resident (the pre-tiering
	// behaviour).
	ColdSpillBytes uint64
	// ColdDir is the directory for the spill file (os.CreateTemp
	// semantics: "" means the system temp dir). The file is unlinked on
	// Logger.Close.
	ColdDir string
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		Lookback:      DefaultLookback,
		MaxLogEntries: DefaultMaxLogEntries,
		Compression:   true,
	}
}

func (c Config) validated() Config {
	if c.Lookback < 0 {
		c.Lookback = 0
	}
	if c.Lookback > MaxLookback {
		c.Lookback = MaxLookback
	}
	if c.MaxLogEntries < embedEntries {
		c.MaxLogEntries = embedEntries
	}
	if c.InvalidateWorkers <= 0 {
		c.InvalidateWorkers = runtime.GOMAXPROCS(0)
	}
	if c.InvalidateWorkers > MaxInvalidateWorkers {
		c.InvalidateWorkers = MaxInvalidateWorkers
	}
	switch {
	case c.ParallelInvalidateMin == 0:
		c.ParallelInvalidateMin = DefaultParallelInvalidateMin
	case c.ParallelInvalidateMin < 0:
		c.ParallelInvalidateMin = math.MaxInt
	}
	if c.QuarantineBytes > 0 {
		if c.QuarantineEpoch <= 0 {
			c.QuarantineEpoch = DefaultQuarantineEpoch
		}
		if c.QuarantineEpoch > MaxQuarantineEpoch {
			c.QuarantineEpoch = MaxQuarantineEpoch
		}
	}
	if c.ColdSpillBytes > 0 && c.ColdSpillBytes < MinColdSpillBytes {
		c.ColdSpillBytes = MinColdSpillBytes
	}
	return c
}
