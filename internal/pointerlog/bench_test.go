package pointerlog

import (
	"sync/atomic"
	"testing"

	"dangsan/internal/obs"
	"dangsan/internal/vmem"
)

// BenchmarkRegisterParallel drives the register hot path from many
// goroutines storing into one shared object, the shape of the paper's
// Fig. 10 scalability experiment. Each goroutine owns a distinct tid (so
// it appends to its own thread log, per the lock-free design) and a
// distinct location range; any slowdown versus the single-threaded rate
// is contention our implementation added, not the algorithm's.
func BenchmarkRegisterParallel(b *testing.B) {
	lg := NewLogger(DefaultConfig())
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 1<<20)
	var tids atomic.Int32
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		tid := tids.Add(1) - 1
		base := vmem.GlobalsBase + uint64(tid)<<14
		i := uint64(0)
		for pb.Next() {
			lg.Register(meta, base+(i&1023)*8, tid)
			i++
		}
	})
}

// BenchmarkRegisterParallelFastPath is the same workload through the
// memoized store path used by detectors.ThreadAware: each goroutine
// holds its cached thread log and revalidates it against the logger
// generation before every append, exactly as dangsan.OnPtrStoreCtx does
// on a cache hit.
func BenchmarkRegisterParallelFastPath(b *testing.B) {
	lg := NewLogger(DefaultConfig())
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 1<<20)
	var tids atomic.Int32
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		tid := tids.Add(1) - 1
		base := vmem.GlobalsBase + uint64(tid)<<14
		tl := lg.Register(meta, base, tid)
		gen := lg.Gen()
		i := uint64(0)
		for pb.Next() {
			if gen != lg.Gen() {
				gen = lg.Gen()
				tl = lg.Register(meta, base+(i&1023)*8, tid)
			} else {
				lg.RegisterWith(tl, base+(i&1023)*8, tid)
			}
			i++
		}
	})
}

// BenchmarkRegisterSingle is the 1-thread anchor for RegisterParallel.
func BenchmarkRegisterSingle(b *testing.B) {
	lg := NewLogger(DefaultConfig())
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 1<<20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lg.Register(meta, vmem.GlobalsBase+(uint64(i)&1023)*8, 0)
	}
}

// BenchmarkRegisterSingleMetricsOn is RegisterSingle with an observability
// registry attached: the delta against RegisterSingle is the cost of the
// two time.Now() calls bracketing each register for the latency histogram.
func BenchmarkRegisterSingleMetricsOn(b *testing.B) {
	lg := NewLogger(DefaultConfig())
	lg.AttachMetrics(obs.NewRegistry())
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 1<<20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lg.Register(meta, vmem.GlobalsBase+(uint64(i)&1023)*8, 0)
	}
}

// invalidateFixture builds an object with nLocs distinct registered
// locations (driving the log into the hash-table fallback) all still
// pointing into the object, so Invalidate takes the CAS path for each.
func invalidateFixture(b *testing.B, nLocs int, tids int) (*Logger, *ObjectMeta, *vmem.AddressSpace, []uint64) {
	b.Helper()
	as := vmem.New()
	as.Heap().MapPages(vmem.HeapBase, 16)
	lg := NewLogger(DefaultConfig())
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 4096)
	locs := make([]uint64, nLocs)
	for i := range locs {
		loc := vmem.GlobalsBase + uint64(i)*8
		locs[i] = loc
		as.StoreWord(loc, vmem.HeapBase+uint64(i)%4096&^7)
		lg.Register(meta, loc, int32(i%tids))
	}
	return lg, meta, as, locs
}

// BenchmarkInvalidateLargeLog measures free-time invalidation of an
// object with 64Ki live pointer locations in a single thread's log (the
// hash-table-fallback regime where parallel invalidation applies).
func BenchmarkInvalidateLargeLog(b *testing.B) {
	lg, meta, as, locs := invalidateFixture(b, 1<<16, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg.Invalidate(meta, as)
		b.StopTimer()
		for j, loc := range locs {
			as.StoreWord(loc, vmem.HeapBase+uint64(j)%4096&^7)
		}
		b.StartTimer()
	}
}

// BenchmarkInvalidateLargeLogWorkers4 forces a 4-worker parallel walk
// regardless of GOMAXPROCS, so the dispatch overhead (unit building,
// goroutine spawn, shard flushes) is visible even on small machines. On
// a multi-core host compare against BenchmarkInvalidateLargeLog run
// with GOMAXPROCS=1 for the speedup.
func BenchmarkInvalidateLargeLogWorkers4(b *testing.B) {
	as := vmem.New()
	as.Heap().MapPages(vmem.HeapBase, 16)
	cfg := DefaultConfig()
	cfg.InvalidateWorkers = 4
	lg := NewLogger(cfg)
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 4096)
	locs := make([]uint64, 1<<16)
	for i := range locs {
		loc := vmem.GlobalsBase + uint64(i)*8
		locs[i] = loc
		as.StoreWord(loc, vmem.HeapBase+uint64(i)%4096&^7)
		lg.Register(meta, loc, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg.Invalidate(meta, as)
		b.StopTimer()
		for j, loc := range locs {
			as.StoreWord(loc, vmem.HeapBase+uint64(j)%4096&^7)
		}
		b.StartTimer()
	}
}

// BenchmarkInvalidateManyThreadLogs is the other parallel-invalidation
// regime: the object's locations are spread over 16 per-thread logs.
func BenchmarkInvalidateManyThreadLogs(b *testing.B) {
	lg, meta, as, locs := invalidateFixture(b, 1<<16, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg.Invalidate(meta, as)
		b.StopTimer()
		for j, loc := range locs {
			as.StoreWord(loc, vmem.HeapBase+uint64(j)%4096&^7)
		}
		b.StartTimer()
	}
}
