package pointerlog

import "sync/atomic"

// locSet is the hash-table fallback: an open-addressing set of pointer
// locations. It has exactly one writer (the thread that owns the enclosing
// ThreadLog) and potentially concurrent readers (the thread running free).
// Writers publish entries and grown tables with atomic stores; readers that
// race with a grow may miss entries added concurrently, which the design
// tolerates — a missed location is the same benign race as a pointer
// propagated during free (paper §7).
type locSet struct {
	table atomic.Pointer[locTable]
}

type locTable struct {
	mask    uint64
	entries []uint64 // atomic access; 0 = empty slot
	used    int      // owner-only
}

const locSetInitial = 64 // slots; must be a power of two

func newLocSet() *locSet {
	s := &locSet{}
	s.table.Store(&locTable{
		mask:    locSetInitial - 1,
		entries: make([]uint64, locSetInitial),
	})
	return s
}

// hashLoc mixes a pointer location; Fibonacci hashing on the aligned bits.
func hashLoc(loc uint64) uint64 {
	return (loc >> 3) * 0x9E3779B97F4A7C15
}

// insert adds loc to the set, reporting whether it was newly added and
// by how many bytes the table grew (so the caller charges LogBytes
// without re-measuring the table on every call). Owner-only. loc must
// be nonzero.
//
// growOK, when non-nil, is consulted before the table is doubled; a false
// return denies the grow (fault injection simulating allocation failure).
// A denied grow is survivable — inserts continue into the existing table —
// until the table is nearly full, at which point new locations are dropped
// (reported via dropped) rather than filling the last free slot, which
// would turn every miss probe into an infinite loop.
func (s *locSet) insert(loc uint64, growOK func() bool) (added bool, grown uint64, dropped bool) {
	t := s.table.Load()
	if t.used*10 >= len(t.entries)*7 {
		if growOK == nil || growOK() {
			old := uint64(len(t.entries)) * 8
			t = s.grow(t)
			grown = uint64(len(t.entries))*8 - old
		} else if t.used >= len(t.entries)-1 {
			if s.contains(loc) {
				return false, 0, false
			}
			return false, 0, true
		}
	}
	i := hashLoc(loc) & t.mask
	for {
		e := atomic.LoadUint64(&t.entries[i])
		if e == loc {
			return false, grown, false
		}
		if e == 0 {
			atomic.StoreUint64(&t.entries[i], loc)
			t.used++
			return true, grown, false
		}
		i = (i + 1) & t.mask
	}
}

// contains reports whether loc is in the set. Safe for any thread.
func (s *locSet) contains(loc uint64) bool {
	t := s.table.Load()
	i := hashLoc(loc) & t.mask
	for {
		e := atomic.LoadUint64(&t.entries[i])
		if e == loc {
			return true
		}
		if e == 0 {
			return false
		}
		i = (i + 1) & t.mask
	}
}

// grow doubles the table. Owner-only.
func (s *locSet) grow(old *locTable) *locTable {
	t := &locTable{
		mask:    old.mask*2 + 1,
		entries: make([]uint64, len(old.entries)*2),
		used:    old.used,
	}
	for _, e := range old.entries {
		if e == 0 {
			continue
		}
		i := hashLoc(e) & t.mask
		for t.entries[i] != 0 {
			i = (i + 1) & t.mask
		}
		t.entries[i] = e
	}
	s.table.Store(t)
	return t
}

// forEach calls fn for every location in the set. Safe for any thread;
// entries inserted concurrently may or may not be visited.
func (s *locSet) forEach(fn func(loc uint64)) {
	t := s.table.Load()
	for i := range t.entries {
		if e := atomic.LoadUint64(&t.entries[i]); e != 0 {
			fn(e)
		}
	}
}

// len returns the number of entries (owner's view).
func (s *locSet) len() int {
	return s.table.Load().used
}

// bytes reports the memory footprint of the current table.
func (s *locSet) bytes() uint64 {
	return uint64(len(s.table.Load().entries)) * 8
}
