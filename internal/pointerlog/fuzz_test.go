package pointerlog

import "testing"

// fuzzLoc masks an arbitrary 64-bit value into a valid pointer location:
// 8-byte aligned, inside the simulated address range [2^40, 2^48) that the
// entry encoding's invariants rely on (common part nonzero, top two bytes
// zero).
func fuzzLoc(x uint64) uint64 {
	const lo = uint64(1) << 40
	const span = (uint64(1) << 48) - lo
	return (lo + x%span) &^ 7
}

// FuzzEntryRoundtrip checks that compressed-entry packing is lossless for
// arbitrary location triples: every location accepted by tryCompressAdd
// comes back out of decodeEntry exactly once, entryContains agrees with the
// decoded set, and the LSB-0 first-slot rule holds (a location whose low
// byte is zero is only representable in the first slot, because zero marks
// an empty slot elsewhere).
func FuzzEntryRoundtrip(f *testing.F) {
	f.Add(uint64(0), uint64(8), uint64(16))
	f.Add(uint64(0x100), uint64(0x108), uint64(0x1f8)) // shared common part
	f.Add(uint64(0x200), uint64(0x200), uint64(0x200)) // duplicates
	f.Add(uint64(0xf00), uint64(0x1000), uint64(0x10000))
	f.Add(uint64(0xfffffffffff8), uint64(0xfffffffffff0), uint64(0xffffffffff00))
	f.Fuzz(func(t *testing.T, a, b, c uint64) {
		la, lb, lc := fuzzLoc(a), fuzzLoc(b), fuzzLoc(c)

		e := compressOne(la)
		if !isCompressed(e) {
			t.Fatalf("compressOne(%#x) = %#x not recognized as compressed", la, e)
		}
		want := []uint64{la}
		for _, l := range []uint64{lb, lc} {
			ne, ok := tryCompressAdd(e, l)
			if ok {
				e = ne
				want = append(want, l)
				if l&0xff == 0 {
					t.Fatalf("entry %#x accepted LSB-0 location %#x outside the first slot", ne, l)
				}
				if l>>8 != la>>8 {
					t.Fatalf("entry %#x accepted location %#x with a different common part than %#x", ne, l, la)
				}
			} else if l&0xff != 0 && l>>8 == la>>8 && len(want) < 3 {
				t.Fatalf("entry %#x rejected compatible location %#x with a free slot", e, l)
			}
		}

		got := decodeEntry(e, nil)
		if len(got) != len(want) {
			t.Fatalf("decode %#x: got %d locations %#x, want %d %#x", e, len(got), got, len(want), want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("decode %#x: slot %d = %#x, want %#x", e, i, got[i], want[i])
			}
			if !entryContains(e, want[i]) {
				t.Fatalf("entry %#x does not contain packed location %#x", e, want[i])
			}
		}

		// entryContains must not report locations that were never packed.
		packed := map[uint64]bool{}
		for _, l := range want {
			packed[l] = true
		}
		for _, probe := range []uint64{la ^ 8, la ^ 0x100, lb ^ 16, lc ^ 0x800} {
			probe = fuzzLoc(probe)
			if !packed[probe] && entryContains(e, probe) {
				t.Fatalf("entry %#x claims to contain %#x, packed only %#x", e, probe, want)
			}
		}

		// Raw entries must roundtrip to themselves and never be mistaken
		// for compressed ones.
		if isCompressed(la) {
			t.Fatalf("raw location %#x classified as compressed", la)
		}
		if raw := decodeEntry(la, nil); len(raw) != 1 || raw[0] != la {
			t.Fatalf("raw entry %#x decodes to %#x", la, raw)
		}
	})
}
