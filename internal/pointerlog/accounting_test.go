package pointerlog

import (
	"sync"
	"testing"

	"dangsan/internal/vmem"
)

// hashModeLogger builds a logger whose first thread log for meta has
// switched to hash-table mode: MaxLogEntries is forced to the minimum
// (the embedded log) and 13 distinct locations are registered, the last
// of which triggers the fallback.
func hashModeLogger(t testing.TB, cfg Config) (*Logger, *ObjectMeta, *ThreadLog) {
	t.Helper()
	cfg.MaxLogEntries = embedEntries
	cfg.Compression = false
	lg := NewLogger(cfg)
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 64)
	for i := 0; i <= embedEntries; i++ {
		lg.Register(meta, vmem.GlobalsBase+uint64(i)*0x1000, 1)
	}
	tl := meta.logs.Load()
	if tl.hash.Load() == nil {
		t.Fatal("log did not switch to hash mode")
	}
	return lg, meta, tl
}

// A duplicate insert at the load threshold still grows the table (the
// load check runs before probing), and the growth must be reported so the
// caller can charge it.
func TestLocSetGrowOnDuplicateInsert(t *testing.T) {
	s := newLocSet()
	// 64 slots grow once used*10 >= 64*7; 45 distinct entries cross it.
	for i := 0; i < 45; i++ {
		if added, _, _ := s.insert(vmem.GlobalsBase+uint64(i)*8, nil); !added {
			t.Fatalf("insert %d reported duplicate", i)
		}
	}
	if got := s.bytes(); got != locSetInitial*8 {
		t.Fatalf("table grew early: %d bytes", got)
	}
	added, grown, _ := s.insert(vmem.GlobalsBase, nil) // duplicate of the first
	if added {
		t.Fatal("duplicate reported as added")
	}
	if grown != locSetInitial*8 {
		t.Fatalf("duplicate-triggered grow reported %d bytes, want %d", grown, locSetInitial*8)
	}
	if got := s.bytes(); got != 2*locSetInitial*8 {
		t.Fatalf("table = %d bytes after grow", got)
	}
	if s.len() != 45 {
		t.Fatalf("len = %d after duplicate", s.len())
	}
}

// Regression for the accounting drop: when a duplicate Register triggers
// a hash-table grow, the grown bytes must land in LogBytes — the seed
// returned before charging them, so the audit identity (incremental
// charges == measured footprint) broke on exactly this path.
func TestRegisterChargesGrowOnDuplicate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lookback = 0
	cfg.Audit = true
	lg, meta, tl := hashModeLogger(t, cfg)
	h := tl.hash.Load()

	// Fill the table to the load threshold with distinct locations.
	i := uint64(0)
	for h.len() < 45 {
		lg.Register(meta, vmem.StacksBase+i*8, 1)
		i++
	}
	if h.bytes() != locSetInitial*8 {
		t.Fatalf("table grew during fill: %d bytes", h.bytes())
	}
	before := lg.Stats().Snapshot()

	// A location already in the table: classified duplicate, but the
	// insert doubles the table first.
	lg.Register(meta, vmem.StacksBase, 1)

	after := lg.Stats().Snapshot()
	if after.Duplicates != before.Duplicates+1 {
		t.Fatalf("duplicate not classified: %+v -> %+v", before, after)
	}
	if h.bytes() != 2*locSetInitial*8 {
		t.Fatalf("table = %d bytes, expected doubled", h.bytes())
	}
	if charged := after.LogBytes - before.LogBytes; charged != locSetInitial*8 {
		t.Fatalf("duplicate-triggered grow charged %d bytes, want %d", charged, locSetInitial*8)
	}
	if err := lg.AuditCheck(); err != nil {
		t.Fatalf("accounting drifted: %v", err)
	}
}

// Once a thread log is in hash-table mode the lookback ring is dead
// weight: the table deduplicates the full history, so the ring is neither
// scanned nor refreshed.
func TestHashModeSkipsLookback(t *testing.T) {
	lg, meta, tl := hashModeLogger(t, DefaultConfig())

	ringBefore := append([]uint64(nil), tl.lookback...)
	posBefore := tl.lookPos

	// The most recent pre-overflow location sits in the ring but not in
	// the hash table (only post-overflow locations are inserted). With the
	// ring consulted it would be misclassified as a duplicate and never
	// reach the table; skipping the ring logs it.
	recent := vmem.GlobalsBase + uint64(embedEntries-1)*0x1000
	for i, v := range ringBefore {
		if v == recent {
			break
		}
		if i == len(ringBefore)-1 {
			t.Fatalf("test setup: 0x%x not in lookback ring %x", recent, ringBefore)
		}
	}
	before := lg.Stats().Snapshot()
	lg.Register(meta, recent, 1)
	after := lg.Stats().Snapshot()
	if after.Logged != before.Logged+1 {
		t.Fatalf("hash-mode register consulted the lookback ring: %+v -> %+v", before, after)
	}
	if !tl.hash.Load().contains(recent) {
		t.Fatal("location missing from hash table")
	}

	// Duplicates are still caught — by the table.
	lg.Register(meta, recent, 1)
	if s := lg.Stats().Snapshot(); s.Duplicates != after.Duplicates+1 {
		t.Fatalf("hash-mode duplicate not detected: %+v", s)
	}

	// And the ring itself was never touched.
	for i, v := range tl.lookback {
		if v != ringBefore[i] {
			t.Fatalf("lookback ring updated in hash mode: %x -> %x", ringBefore, tl.lookback)
		}
	}
	if tl.lookPos != posBefore {
		t.Fatalf("lookPos moved in hash mode: %d -> %d", posBefore, tl.lookPos)
	}
}

// The stale-handle race: a thread holding a recycled handle reads the
// meta's extent while CreateMeta re-initializes it for a new object. The
// reads and writes must be free of data races (run with -race); any value
// observed is reconciled by free-time verification.
func TestStaleHandleRaceRecycle(t *testing.T) {
	as := vmem.New()
	as.Heap().MapPages(vmem.HeapBase, 4)
	lg := NewLogger(DefaultConfig())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The stale-handle reader: what OnPtrStore does with a memoized or
		// recycled handle.
		for {
			select {
			case <-stop:
				return
			default:
			}
			if m := lg.MetaAt(1); m != nil {
				base, size := m.Base(), m.Size()
				if base != 0 && (base < vmem.HeapBase || base+size > vmem.HeapBase+1<<20) {
					t.Error("extent torn") // can't happen with atomic reads
					return
				}
			}
		}
	}()

	for i := 0; i < 2000; i++ {
		base := vmem.HeapBase + uint64(i%4)*4096
		meta, h := lg.MustCreateMeta(base, 128+uint64(i%7)*8)
		lg.Register(meta, vmem.GlobalsBase+uint64(i%64)*8, 0)
		lg.Invalidate(meta, as)
		lg.ReleaseMeta(h)
	}
	close(stop)
	wg.Wait()
}

// BenchmarkRegisterHashMode measures the hash-mode register path — where
// skipping the dead lookback ring shortens every call.
func BenchmarkRegisterHashMode(b *testing.B) {
	lg, meta, tl := hashModeLogger(b, DefaultConfig())
	// Populate the table past the ring size so hits rotate over it.
	locs := make([]uint64, 64)
	for i := range locs {
		locs[i] = vmem.StacksBase + uint64(i)*8
		lg.Register(meta, locs[i], 1)
	}
	if tl.hash.Load() == nil {
		b.Fatal("not in hash mode")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg.Register(meta, locs[i&63], 1)
	}
}
