package pointerlog

import (
	"sync"
	"sync/atomic"
	"time"

	"dangsan/internal/vmem"
)

// InvalidBit is OR-ed into a pointer value to invalidate it. Setting the
// most significant bit makes the address non-canonical on x86-64 — any
// dereference faults — while keeping the low bits intact so the fault
// address can be related back to the original pointer, pointer differences
// still work, and partial type-unsafe reuse only sees its top byte change
// (paper §4.4's argument for bit-setting over nullification).
const InvalidBit = uint64(1) << 63

// DecodeFault inspects a faulting address: if it is an invalidated pointer
// (InvalidBit set over an otherwise-canonical address), it returns the
// original pointer and true — the debugging affordance the paper's §4.4
// chooses bit-setting for, letting a crash report name the freed object.
func DecodeFault(addr uint64) (orig uint64, invalidated bool) {
	orig = addr &^ InvalidBit
	if addr&InvalidBit != 0 && vmem.Canonical(orig) {
		return orig, true
	}
	return addr, false
}

// Memory is the slice of the simulated address space the invalidator needs:
// checked word reads (which report the simulated SIGSEGV instead of
// crashing) and compare-and-swap.
type Memory interface {
	LoadWord(addr uint64) (uint64, *vmem.Fault)
	CASWord(addr, old, new uint64) (bool, *vmem.Fault)
}

// invalCounts accumulates per-walk counters locally so the walk touches
// shared (sharded) counters O(1) times per free, not once per location.
type invalCounts struct {
	invalidated, stale, faulted, coldReadErrs uint64
}

func (c *invalCounts) flush(sh *statShard) {
	if c.invalidated != 0 {
		sh.invalidated.Add(c.invalidated)
	}
	if c.stale != 0 {
		sh.stale.Add(c.stale)
	}
	if c.faulted != 0 {
		sh.faulted.Add(c.faulted)
	}
	if c.coldReadErrs != 0 {
		sh.coldReadErrs.Add(c.coldReadErrs)
	}
}

// invalUnit is one independently walkable chunk of an object's logs:
// a whole thread log's inline storage (embed array plus indirect
// blocks — bounded by MaxLogEntries), a slot range of a hash-table
// fallback, or one cold segment streamed back from the spill file.
type invalUnit struct {
	tl     *ThreadLog
	table  *locTable
	lo, hi int
	seg    *coldSeg
}

// hashSlotsPerUnit is the hash-table slot range covered by one parallel
// work unit.
const hashSlotsPerUnit = 1 << 13

// Invalidate implements the paper's invalptrs: walk every location recorded
// for meta's object and overwrite, with compare-and-swap, every value that
// still points into [Base, Base+Size). Stale locations — overwritten since
// being logged, or in memory since returned to the OS — are skipped; that
// deferred reconciliation is what lets Register run without locks.
//
// Objects whose logs are large (the hash-table-fallback regime, or wide
// fan-in across many thread logs) are walked by a bounded pool of worker
// goroutines (Config.InvalidateWorkers, Config.ParallelInvalidateMin).
// Parallel walks preserve the CAS contract: two workers hitting the same
// location (recorded by two threads) interleave exactly like two serial
// visits — the loser of the CAS re-reads and classifies the value as
// stale, so racing program stores are never clobbered and counter totals
// match the serial walk.
func (lg *Logger) Invalidate(meta *ObjectMeta, mem Memory) {
	// Any cached {meta, ThreadLog} fast-path pair is stale from here on.
	lg.gen.Add(1)

	var start time.Time
	met := lg.met
	if met != nil {
		start = time.Now()
	}

	base := meta.Base()
	end := base + meta.Size()
	sh := lg.stats.shard(int32(base >> 12))
	tid := int32(base >> 12)

	// Size the walk. Thread-log inline storage is bounded by
	// MaxLogEntries; only hash fallbacks (and many-threaded objects) can
	// push the estimate past the parallel threshold.
	est := 0
	for tl := meta.logs.Load(); tl != nil; tl = tl.next.Load() {
		est += embedEntries
		for b := tl.blocks.Load(); b != nil; b = b.next.Load() {
			est += blockEntries
		}
		if h := tl.hash.Load(); h != nil {
			est += len(h.table.Load().entries)
		}
		if cs := tl.cold.Load(); cs != nil {
			est += int(cs.locs.Load())
		}
	}

	workers := lg.cfg.InvalidateWorkers
	if workers <= 1 || est < lg.cfg.ParallelInvalidateMin {
		var c invalCounts
		visit := func(loc uint64) {
			lg.invalidateLocation(loc, base, end, mem, &c)
		}
		meta.ForEachLocation(visit)
		lg.forEachColdLocation(meta, sh, visit)
		c.flush(sh)
		if met != nil {
			met.invalidateSerial.Inc(tid)
			met.invalidateUnits.Observe(tid, 1)
			met.invalidateNs.Since(tid, start)
		}
		return
	}

	// Parallel walk: split into units, fan out over a bounded pool.
	var units []invalUnit
	for tl := meta.logs.Load(); tl != nil; tl = tl.next.Load() {
		units = append(units, invalUnit{tl: tl})
		if h := tl.hash.Load(); h != nil {
			t := h.table.Load()
			for lo := 0; lo < len(t.entries); lo += hashSlotsPerUnit {
				hi := lo + hashSlotsPerUnit
				if hi > len(t.entries) {
					hi = len(t.entries)
				}
				units = append(units, invalUnit{table: t, lo: lo, hi: hi})
			}
		}
		if cs := tl.cold.Load(); cs != nil {
			for n := cs.segs.Load(); n != nil; n = n.next {
				units = append(units, invalUnit{seg: n.seg})
			}
		}
	}
	if workers > len(units) {
		workers = len(units)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var c invalCounts
			for {
				i := int(next.Add(1)) - 1
				if i >= len(units) {
					break
				}
				lg.invalidateUnit(&units[i], base, end, mem, &c)
			}
			// Each worker flushes to its own shard to keep the flush
			// contention-free; totals are unaffected by which shard
			// holds them.
			c.flush(lg.stats.shard(int32(w)))
		}(w)
	}
	wg.Wait()
	if met != nil {
		met.invalidateParallel.Inc(tid)
		met.invalidateUnits.Observe(tid, uint64(len(units)))
		met.invalidateNs.Since(tid, start)
	}
}

// invalidateUnit walks one unit. The hash-range walk reads the table
// published at unit-build time; entries a racing owner adds afterwards
// may be missed, the same benign race the serial walk tolerates. A
// segment unit streams its locations back from the spill file; a read
// failure skips the segment (counted, fail-open).
func (lg *Logger) invalidateUnit(u *invalUnit, base, end uint64, mem Memory, c *invalCounts) {
	var scratch [3]uint64
	visit := func(e uint64) {
		for _, loc := range decodeEntry(e, scratch[:0]) {
			lg.invalidateLocation(loc, base, end, mem, c)
		}
	}
	if u.seg != nil {
		cold := lg.cold.Load()
		if cold == nil {
			return
		}
		buf, err := cold.readSeg(u.seg, lg.faults.Load())
		if err != nil {
			c.coldReadErrs++
			return
		}
		if err := forEachSegmentLocation(buf, func(loc uint64) {
			lg.invalidateLocation(loc, base, end, mem, c)
		}); err != nil {
			c.coldReadErrs++
		}
		return
	}
	if u.tl != nil {
		for i := 0; i < embedEntries; i++ {
			visit(atomic.LoadUint64(&u.tl.embed[i]))
		}
		for b := u.tl.blocks.Load(); b != nil; b = b.next.Load() {
			for i := 0; i < blockEntries; i++ {
				visit(atomic.LoadUint64(&b.entries[i]))
			}
		}
		return
	}
	for i := u.lo; i < u.hi; i++ {
		if e := atomic.LoadUint64(&u.table.entries[i]); e != 0 {
			visit(e)
		}
	}
}

func (lg *Logger) invalidateLocation(loc, base, end uint64, mem Memory, c *invalCounts) {
	for {
		w, fault := mem.LoadWord(loc)
		if fault != nil {
			// The memory holding the pointer was itself freed and returned
			// to the OS; DangSan catches the SIGSEGV and skips the entry.
			c.faulted++
			return
		}
		if w < base || w >= end {
			c.stale++
			return
		}
		ok, fault := mem.CASWord(loc, w, w|InvalidBit)
		if fault != nil {
			c.faulted++
			return
		}
		if ok {
			c.invalidated++
			return
		}
		// Lost a race with a concurrent store; re-check the fresh value.
	}
}
