package pointerlog

import "dangsan/internal/vmem"

// InvalidBit is OR-ed into a pointer value to invalidate it. Setting the
// most significant bit makes the address non-canonical on x86-64 — any
// dereference faults — while keeping the low bits intact so the fault
// address can be related back to the original pointer, pointer differences
// still work, and partial type-unsafe reuse only sees its top byte change
// (paper §4.4's argument for bit-setting over nullification).
const InvalidBit = uint64(1) << 63

// DecodeFault inspects a faulting address: if it is an invalidated pointer
// (InvalidBit set over an otherwise-canonical address), it returns the
// original pointer and true — the debugging affordance the paper's §4.4
// chooses bit-setting for, letting a crash report name the freed object.
func DecodeFault(addr uint64) (orig uint64, invalidated bool) {
	orig = addr &^ InvalidBit
	if addr&InvalidBit != 0 && vmem.Canonical(orig) {
		return orig, true
	}
	return addr, false
}

// Memory is the slice of the simulated address space the invalidator needs:
// checked word reads (which report the simulated SIGSEGV instead of
// crashing) and compare-and-swap.
type Memory interface {
	LoadWord(addr uint64) (uint64, *vmem.Fault)
	CASWord(addr, old, new uint64) (bool, *vmem.Fault)
}

// Invalidate implements the paper's invalptrs: walk every location recorded
// for meta's object and overwrite, with compare-and-swap, every value that
// still points into [Base, Base+Size). Stale locations — overwritten since
// being logged, or in memory since returned to the OS — are skipped; that
// deferred reconciliation is what lets Register run without locks.
func (lg *Logger) Invalidate(meta *ObjectMeta, mem Memory) {
	base, end := meta.Base, meta.Base+meta.Size
	meta.ForEachLocation(func(loc uint64) {
		lg.invalidateLocation(loc, base, end, mem)
	})
}

func (lg *Logger) invalidateLocation(loc, base, end uint64, mem Memory) {
	for {
		w, fault := mem.LoadWord(loc)
		if fault != nil {
			// The memory holding the pointer was itself freed and returned
			// to the OS; DangSan catches the SIGSEGV and skips the entry.
			lg.stats.Faulted.Add(1)
			return
		}
		if w < base || w >= end {
			lg.stats.Stale.Add(1)
			return
		}
		ok, fault := mem.CASWord(loc, w, w|InvalidBit)
		if fault != nil {
			lg.stats.Faulted.Add(1)
			return
		}
		if ok {
			lg.stats.Invalidated.Add(1)
			return
		}
		// Lost a race with a concurrent store; re-check the fresh value.
	}
}
