package pointerlog

// Log entry encoding. Pointer locations are 8-byte-aligned user-space
// addresses below 2^48, so a raw entry always has its top two bytes zero.
// A compressed entry (paper §6, Fig. 8) packs up to three locations that
// share everything but their least significant byte:
//
//	bits 24..63: common part (location >> 8), guaranteed nonzero because
//	             all simulated segments live at or above 2^40
//	bits 16..23: least significant byte of the third location (0 = empty)
//	bits  8..15: least significant byte of the second location (0 = empty)
//	bits  0..7:  least significant byte of the first location
//
// A location whose LSB is zero can only occupy the first slot (otherwise it
// would be indistinguishable from an empty slot); such locations simply
// start a new entry. Because locations are 8-byte aligned, an entry can
// cover three of the 32 pointer slots in one 256-byte region, giving up to
// a 3x space saving on spatially local pointer stores.

// isCompressed reports whether e is a compressed entry.
func isCompressed(e uint64) bool {
	return e>>48 != 0
}

// compressOne builds a compressed entry holding just loc.
func compressOne(loc uint64) uint64 {
	return (loc>>8)<<24 | loc&0xff
}

// compressedCommon extracts the common part (location >> 8).
func compressedCommon(e uint64) uint64 {
	return e >> 24
}

// tryCompressAdd attempts to add loc to compressed entry e, returning the
// new entry and true on success. It fails when the entry is full, the
// common parts differ, or loc's LSB is zero (reserved for "empty").
func tryCompressAdd(e, loc uint64) (uint64, bool) {
	lsb := loc & 0xff
	if lsb == 0 || compressedCommon(e) != loc>>8 {
		return e, false
	}
	if (e>>8)&0xff == 0 {
		return e | lsb<<8, true
	}
	if (e>>16)&0xff == 0 {
		return e | lsb<<16, true
	}
	return e, false
}

// compressedContains reports whether the compressed entry e holds loc.
func compressedContains(e, loc uint64) bool {
	if compressedCommon(e) != loc>>8 {
		return false
	}
	lsb := loc & 0xff
	if e&0xff == lsb {
		return true
	}
	return lsb != 0 && ((e>>8)&0xff == lsb || (e>>16)&0xff == lsb)
}

// decodeEntry appends the locations encoded in e to out and returns it.
// Raw entries decode to themselves; the zero entry decodes to nothing.
func decodeEntry(e uint64, out []uint64) []uint64 {
	if e == 0 {
		return out
	}
	if !isCompressed(e) {
		return append(out, e)
	}
	common := compressedCommon(e) << 8
	out = append(out, common|e&0xff)
	if b := (e >> 8) & 0xff; b != 0 {
		out = append(out, common|b)
	}
	if b := (e >> 16) & 0xff; b != 0 {
		out = append(out, common|b)
	}
	return out
}

// entryContains reports whether entry e (raw or compressed) holds loc.
func entryContains(e, loc uint64) bool {
	if e == 0 {
		return false
	}
	if !isCompressed(e) {
		return e == loc
	}
	return compressedContains(e, loc)
}
