package pointerlog

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// deadRange is one half-open [lo, hi) extent of dying object memory. The
// batch invalidator coalesces the extents of every object in an epoch into
// a sorted, disjoint set so that a single pass over the merged location
// logs can classify any pointer value with one binary search.
type deadRange struct {
	lo, hi uint64
}

// mergeDeadRanges sorts the extents and coalesces overlapping or adjacent
// ones. Quarantined objects cannot overlap while their memory is withheld
// from the allocator, but adjacency is common (neighbouring size-class
// objects dying in the same epoch), and merging adjacent runs shrinks the
// binary-search depth.
func mergeDeadRanges(ranges []deadRange) []deadRange {
	if len(ranges) < 2 {
		return ranges
	}
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].lo < ranges[j].lo })
	out := ranges[:1]
	for _, r := range ranges[1:] {
		if last := &out[len(out)-1]; r.lo <= last.hi {
			if r.hi > last.hi {
				last.hi = r.hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// rangesContain reports whether w falls inside one of the sorted, disjoint
// dead ranges.
func rangesContain(ranges []deadRange, w uint64) bool {
	i := sort.Search(len(ranges), func(i int) bool { return ranges[i].hi > w })
	return i < len(ranges) && w >= ranges[i].lo
}

// InvalidateMany is the epoch-drain form of Invalidate: one walk over the
// union of the batch's location logs invalidates every pointer into any of
// the dying objects. The win over per-object Invalidate calls is twofold:
// the generation bump (which flushes every thread's store fast-path cache)
// happens once per epoch instead of once per free, and a location that was
// logged against several dying objects — the common case for connection
// slots that cycled through many request buffers — is loaded and classified
// once instead of once per object.
//
// The CAS contract is identical to Invalidate's: racing program stores win,
// the walk re-reads and reclassifies. Counter semantics differ only in
// timing — a location overwritten between the object's free and the epoch
// drain counts as stale here where the inline walk would have counted it
// invalidated.
func (lg *Logger) InvalidateMany(metas []*ObjectMeta, mem Memory) {
	switch len(metas) {
	case 0:
		return
	case 1:
		lg.Invalidate(metas[0], mem)
		return
	}

	lg.gen.Add(1)

	var start time.Time
	met := lg.met
	if met != nil {
		start = time.Now()
	}

	ranges := make([]deadRange, 0, len(metas))
	est := 0
	for _, meta := range metas {
		base := meta.Base()
		ranges = append(ranges, deadRange{lo: base, hi: base + meta.Size()})
		for tl := meta.logs.Load(); tl != nil; tl = tl.next.Load() {
			est += embedEntries
			for b := tl.blocks.Load(); b != nil; b = b.next.Load() {
				est += blockEntries
			}
			if h := tl.hash.Load(); h != nil {
				est += len(h.table.Load().entries)
			}
			if cs := tl.cold.Load(); cs != nil {
				est += int(cs.locs.Load())
			}
		}
	}
	ranges = mergeDeadRanges(ranges)

	tid := int32(ranges[0].lo >> 12)
	sh := lg.stats.shard(tid)

	workers := lg.cfg.InvalidateWorkers
	if workers <= 1 || est < lg.cfg.ParallelInvalidateMin {
		// Serial drain: dedupe locations across the batch so each unique
		// slot is loaded once no matter how many dying objects logged it.
		var c invalCounts
		seen := make(map[uint64]struct{}, est)
		visit := func(loc uint64) {
			if _, dup := seen[loc]; dup {
				return
			}
			seen[loc] = struct{}{}
			lg.invalidateRanges(loc, ranges, mem, &c)
		}
		for _, meta := range metas {
			meta.ForEachLocation(visit)
			// Cold locations join the same dedup set: a location present
			// in both tiers (re-logged after its spill) is still loaded
			// once per batch.
			lg.forEachColdLocation(meta, sh, visit)
		}
		c.flush(sh)
		if met != nil {
			met.invalidateSerial.Inc(tid)
			met.invalidateUnits.Observe(tid, 1)
			met.invalidateBatch.Observe(tid, uint64(len(metas)))
			met.invalidateNs.Since(tid, start)
		}
		return
	}

	// Parallel drain: gather units across the whole batch and fan out over
	// the bounded pool. No cross-unit dedupe — a location two objects
	// logged is visited twice, but the second visit classifies it as stale
	// (value already has InvalidBit, so it is outside every dead range).
	var units []invalUnit
	for _, meta := range metas {
		for tl := meta.logs.Load(); tl != nil; tl = tl.next.Load() {
			units = append(units, invalUnit{tl: tl})
			if h := tl.hash.Load(); h != nil {
				t := h.table.Load()
				for lo := 0; lo < len(t.entries); lo += hashSlotsPerUnit {
					hi := lo + hashSlotsPerUnit
					if hi > len(t.entries) {
						hi = len(t.entries)
					}
					units = append(units, invalUnit{table: t, lo: lo, hi: hi})
				}
			}
			if cs := tl.cold.Load(); cs != nil {
				for n := cs.segs.Load(); n != nil; n = n.next {
					units = append(units, invalUnit{seg: n.seg})
				}
			}
		}
	}
	if workers > len(units) {
		workers = len(units)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var c invalCounts
			var scratch [3]uint64
			for {
				i := int(next.Add(1)) - 1
				if i >= len(units) {
					break
				}
				u := &units[i]
				visit := func(e uint64) {
					for _, loc := range decodeEntry(e, scratch[:0]) {
						lg.invalidateRanges(loc, ranges, mem, &c)
					}
				}
				if u.seg != nil {
					cold := lg.cold.Load()
					if cold == nil {
						continue
					}
					buf, err := cold.readSeg(u.seg, lg.faults.Load())
					if err != nil {
						c.coldReadErrs++
						continue
					}
					if err := forEachSegmentLocation(buf, func(loc uint64) {
						lg.invalidateRanges(loc, ranges, mem, &c)
					}); err != nil {
						c.coldReadErrs++
					}
					continue
				}
				if u.tl != nil {
					for i := 0; i < embedEntries; i++ {
						visit(atomic.LoadUint64(&u.tl.embed[i]))
					}
					for b := u.tl.blocks.Load(); b != nil; b = b.next.Load() {
						for i := 0; i < blockEntries; i++ {
							visit(atomic.LoadUint64(&b.entries[i]))
						}
					}
					continue
				}
				for i := u.lo; i < u.hi; i++ {
					if e := atomic.LoadUint64(&u.table.entries[i]); e != 0 {
						visit(e)
					}
				}
			}
			c.flush(lg.stats.shard(int32(w)))
		}(w)
	}
	wg.Wait()
	if met != nil {
		met.invalidateParallel.Inc(tid)
		met.invalidateUnits.Observe(tid, uint64(len(units)))
		met.invalidateBatch.Observe(tid, uint64(len(metas)))
		met.invalidateNs.Since(tid, start)
	}
}

// invalidateRanges is invalidateLocation generalized to a merged dead-range
// set: the single [base, end) comparison becomes a binary search over the
// sorted disjoint extents.
func (lg *Logger) invalidateRanges(loc uint64, ranges []deadRange, mem Memory, c *invalCounts) {
	for {
		w, fault := mem.LoadWord(loc)
		if fault != nil {
			c.faulted++
			return
		}
		if !rangesContain(ranges, w) {
			c.stale++
			return
		}
		ok, fault := mem.CASWord(loc, w, w|InvalidBit)
		if fault != nil {
			c.faulted++
			return
		}
		if ok {
			c.invalidated++
			return
		}
	}
}
