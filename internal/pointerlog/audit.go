package pointerlog

import "fmt"

// Audit mode (Config.Audit) cross-checks the incremental LogBytes
// accounting against ground truth: it re-measures every live and
// quarantined object's log structures by walking them and requires
//
//	LogBytes (cumulative charges) ==
//	    measured live + measured quarantined + LogBytesReleased + LogBytesSpilled
//
// to hold exactly. The quarantined term covers objects whose free has been
// deferred to an epoch drain: their logs are no longer live (the object is
// dead to the program) but have not yet been released, so their footprint
// must still balance the charges. The spilled term extends the identity
// across tiers: bytes that were charged while a hash table was resident
// and then left RAM at a cold-tier spill are no longer measurable by the
// walk, so they are carried by a cumulative counter exactly like released
// bytes.
//
// The check runs automatically at every ReleaseMeta and
// whenever a Snapshot is taken with auditing on; violations accumulate and
// are reported by AuditViolations.
//
// The identity is exact only while no Register races the measurement: a
// concurrent append can charge bytes between the walk and the counter
// read. Audit mode is a debugging tool for (effectively) single-threaded
// workloads — the seed-golden workload and the deterministic interpreter
// traces — not a production invariant checker.

// AuditCheck re-measures the live log footprint and verifies the
// accounting identity, returning the violation (and recording it for
// AuditViolations) if it fails. With auditing off it returns nil without
// doing any work.
func (lg *Logger) AuditCheck() error {
	if !lg.cfg.Audit {
		return nil
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.auditLocked("check")
}

// auditNow runs the identity check, recording any violation. Callers must
// not hold mu.
func (lg *Logger) auditNow(context string) {
	lg.mu.Lock()
	lg.auditLocked(context)
	lg.mu.Unlock()
}

// auditLocked does the walk and comparison. Caller holds mu, which
// freezes the live-handle set (CreateMeta/ReleaseMeta) but not the logs
// themselves — see the package comment above for why that is acceptable.
func (lg *Logger) auditLocked(context string) error {
	live := lg.measureSetLocked(lg.auditLive)
	quar := lg.measureSetLocked(lg.auditQuar)
	total := lg.stats.LogBytesTotal()
	released := lg.stats.ReleasedLogBytesTotal()
	spilled := lg.stats.SpilledLogBytesTotal()
	if total == live+quar+released+spilled {
		return nil
	}
	err := fmt.Errorf(
		"pointerlog audit (%s): LogBytes=%d but measured live=%d + quarantined=%d + released=%d + spilled=%d = %d (drift %+d)",
		context, total, live, quar, released, spilled, live+quar+released+spilled,
		int64(total)-int64(live+quar+released+spilled))
	lg.auditErrs = append(lg.auditErrs, err.Error())
	return err
}

// measureSetLocked sums the log footprint of every meta index in the set.
// Caller holds mu.
func (lg *Logger) measureSetLocked(set map[uint64]struct{}) uint64 {
	var n uint64
	for idx := range set {
		slab := lg.slabs[idx>>12].Load()
		if slab == nil {
			continue
		}
		n += slab[idx&(metaSlabSize-1)].logFootprint()
	}
	return n
}

// AuditViolations returns a copy of every audit failure recorded so far.
// Empty with auditing off or while the accounting holds.
func (lg *Logger) AuditViolations() []string {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return append([]string(nil), lg.auditErrs...)
}

// MeasureLiveLogBytes walks every live object's log structures and returns
// their summed footprint — the independent re-measurement audit mode
// compares against. Exported for tests and the stats tool; requires
// auditing (the live-handle set is only maintained then) and returns 0
// otherwise.
func (lg *Logger) MeasureLiveLogBytes() uint64 {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.measureSetLocked(lg.auditLive)
}

// MeasureQuarantinedLogBytes is MeasureLiveLogBytes for the quarantined
// set: freed objects whose epoch has not yet retired.
func (lg *Logger) MeasureQuarantinedLogBytes() uint64 {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.measureSetLocked(lg.auditQuar)
}
