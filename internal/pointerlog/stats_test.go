package pointerlog

import (
	"testing"

	"dangsan/internal/vmem"
)

// goldenWorkload drives a deterministic single-threaded mix of
// registrations (duplicates, compressible neighbors, hash-table
// overflows) and invalidations through lg, returning the final snapshot.
func goldenWorkload(lg *Logger, as *vmem.AddressSpace) Snapshot {
	x := uint64(12345)
	next := func(n uint64) uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return (x >> 33) % n
	}
	var metas []*ObjectMeta
	for i := 0; i < 8; i++ {
		m, _ := lg.MustCreateMeta(vmem.HeapBase+uint64(i)*8192, 4096)
		metas = append(metas, m)
	}
	for i := 0; i < 50000; i++ {
		m := metas[next(8)]
		// Small location universe so the lookback, compression, and
		// hash-table duplicate paths all fire.
		loc := vmem.GlobalsBase + next(1<<12)*8
		as.StoreWord(loc, m.Base()+next(512)*8)
		lg.Register(m, loc, 0)
	}
	for _, m := range metas {
		lg.Invalidate(m, as)
	}
	return lg.Stats().Snapshot()
}

// goldenSnapshot holds the counter values for goldenWorkload. The
// classification counters (Registered through Faulted) reproduce the seed
// (pre-sharding) implementation bit-for-bit so Table 1 / Fig. 11 outputs
// are unchanged; LogBytes is higher than the seed's 270080 because the
// seed dropped hash-table growth triggered by duplicate inserts (fixed
// along with the audit layer, which verifies the new value against a walk
// of the actual structures in TestAuditGoldenWorkload).
var goldenSnapshot = Snapshot{
	ObjectsTracked: 8,
	Registered:     50000,
	Logged:         26527,
	Duplicates:     23473,
	Compressed:     4,
	HashTables:     8,
	Invalidated:    4096,
	Stale:          22431,
	Faulted:        0,
	LogBytes:       534272,
	LogBytesLive:   534272,
}

func TestSnapshotMatchesSeedGolden(t *testing.T) {
	as := vmem.New()
	as.Heap().MapPages(vmem.HeapBase, 64)
	got := goldenWorkload(NewLogger(DefaultConfig()), as)
	if got != goldenSnapshot {
		t.Fatalf("sharded stats diverge from seed implementation:\n got  %+v\nwant %+v", got, goldenSnapshot)
	}
}

// The aggregate identity the paper's Table 1 relies on: every Register
// call is classified as exactly one of logged or duplicate, and every
// visited location at free time as invalidated, stale, or faulted.
func TestSnapshotIdentities(t *testing.T) {
	s := goldenSnapshot
	if s.Registered != s.Logged+s.Duplicates {
		t.Errorf("Registered %d != Logged %d + Duplicates %d", s.Registered, s.Logged, s.Duplicates)
	}
}

// The audit acceptance: on the golden workload, the incremental LogBytes
// accounting must equal an independent re-measurement of the live log
// structures — exactly, not approximately.
func TestAuditGoldenWorkload(t *testing.T) {
	as := vmem.New()
	as.Heap().MapPages(vmem.HeapBase, 64)
	cfg := DefaultConfig()
	cfg.Audit = true
	lg := NewLogger(cfg)
	got := goldenWorkload(lg, as)
	if got != goldenSnapshot {
		t.Fatalf("audit mode changed counters:\n got  %+v\nwant %+v", got, goldenSnapshot)
	}
	if measured := lg.MeasureLiveLogBytes(); measured != got.LogBytes {
		t.Fatalf("LogBytes=%d but measured live footprint=%d", got.LogBytes, measured)
	}
	if err := lg.AuditCheck(); err != nil {
		t.Fatalf("audit check failed: %v", err)
	}
	if v := lg.AuditViolations(); len(v) != 0 {
		t.Fatalf("audit violations: %v", v)
	}
}

// Releasing the golden workload's objects must move every accounted byte
// from live to released, with the audit identity intact at every step.
func TestAuditAcrossRelease(t *testing.T) {
	as := vmem.New()
	as.Heap().MapPages(vmem.HeapBase, 64)
	cfg := DefaultConfig()
	cfg.Audit = true
	lg := NewLogger(cfg)

	var handles []uint64
	var metas []*ObjectMeta
	for i := 0; i < 4; i++ {
		m, h := lg.MustCreateMeta(vmem.HeapBase+uint64(i)*8192, 4096)
		metas = append(metas, m)
		handles = append(handles, h)
	}
	x := uint64(99)
	for i := 0; i < 20000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		m := metas[(x>>33)%4]
		loc := vmem.GlobalsBase + ((x>>21)%(1<<10))*8
		lg.Register(m, loc, 0)
	}
	for i, m := range metas {
		lg.Invalidate(m, as)
		lg.ReleaseMeta(handles[i]) // runs the auto audit check
	}
	if v := lg.AuditViolations(); len(v) != 0 {
		t.Fatalf("audit violations: %v", v)
	}
	s := lg.Stats().Snapshot()
	if s.LogBytesLive != 0 {
		t.Fatalf("all objects released but LogBytesLive=%d", s.LogBytesLive)
	}
	if s.LogBytesReleased != s.LogBytes {
		t.Fatalf("LogBytesReleased=%d != LogBytes=%d after releasing everything", s.LogBytesReleased, s.LogBytes)
	}
	if lg.MeasureLiveLogBytes() != 0 {
		t.Fatal("live footprint nonzero after releasing everything")
	}
}
