package pointerlog

import (
	"testing"

	"dangsan/internal/vmem"
)

// goldenWorkload drives a deterministic single-threaded mix of
// registrations (duplicates, compressible neighbors, hash-table
// overflows) and invalidations through lg, returning the final snapshot.
func goldenWorkload(lg *Logger, as *vmem.AddressSpace) Snapshot {
	x := uint64(12345)
	next := func(n uint64) uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return (x >> 33) % n
	}
	var metas []*ObjectMeta
	for i := 0; i < 8; i++ {
		m, _ := lg.CreateMeta(vmem.HeapBase+uint64(i)*8192, 4096)
		metas = append(metas, m)
	}
	for i := 0; i < 50000; i++ {
		m := metas[next(8)]
		// Small location universe so the lookback, compression, and
		// hash-table duplicate paths all fire.
		loc := vmem.GlobalsBase + next(1<<12)*8
		as.StoreWord(loc, m.Base+next(512)*8)
		lg.Register(m, loc, 0)
	}
	for _, m := range metas {
		lg.Invalidate(m, as)
	}
	return lg.Stats().Snapshot()
}

// goldenSnapshot holds the counter values produced by the seed
// (pre-sharding) Stats implementation for goldenWorkload. The sharded
// implementation must reproduce them bit-for-bit on single-threaded
// workloads so Table 1 / Fig. 11 outputs are unchanged.
var goldenSnapshot = Snapshot{
	ObjectsTracked: 8,
	Registered:     50000,
	Logged:         26527,
	Duplicates:     23473,
	Compressed:     4,
	HashTables:     8,
	Invalidated:    4096,
	Stale:          22431,
	Faulted:        0,
	LogBytes:       270080,
}

func TestSnapshotMatchesSeedGolden(t *testing.T) {
	as := vmem.New()
	as.Heap().MapPages(vmem.HeapBase, 64)
	got := goldenWorkload(NewLogger(DefaultConfig()), as)
	if got != goldenSnapshot {
		t.Fatalf("sharded stats diverge from seed implementation:\n got  %+v\nwant %+v", got, goldenSnapshot)
	}
}

// The aggregate identity the paper's Table 1 relies on: every Register
// call is classified as exactly one of logged or duplicate, and every
// visited location at free time as invalidated, stale, or faulted.
func TestSnapshotIdentities(t *testing.T) {
	s := goldenSnapshot
	if s.Registered != s.Logged+s.Duplicates {
		t.Errorf("Registered %d != Logged %d + Duplicates %d", s.Registered, s.Logged, s.Duplicates)
	}
}
