package pointerlog

import (
	"os"
	"path/filepath"
	"testing"
)

// tornSpill builds a tiered fixture with several cold segments on disk and
// returns the parsed segment layout: byte ranges and per-segment location
// sets, in file order.
type spillSeg struct {
	off, end int
	locs     []uint64
}

func parseSpill(t *testing.T, blob []byte) []spillSeg {
	t.Helper()
	var segs []spillSeg
	off := 0
	for off < len(blob) {
		locs, n, err := decodeSegment(blob[off:], nil)
		if err != nil {
			t.Fatalf("fixture spill file does not parse at %d: %v", off, err)
		}
		segs = append(segs, spillSeg{off: off, end: off + n, locs: locs})
		off += n
	}
	if len(segs) < 2 {
		t.Fatalf("fixture produced %d segments; the test needs an intact prefix AND a torn tail", len(segs))
	}
	return segs
}

// TestColdCrashRecoveryTornFrame is the crash-recovery hardening test for
// the cold tier: a spill file truncated mid-frame (a crash mid-append) or
// exactly at the checksum boundary (header cut where the checksum field
// begins) must fail CLOSED on both recovery paths —
//
//   - offline: a restarted logger's ReadSegments returns exactly the
//     intact prefix and not one entry from the torn frame;
//   - online: free-time invalidation skips the unreadable segment,
//     increments ColdReadErrors, and never invalidates (or fabricates)
//     a torn-frame location.
func TestColdCrashRecoveryTornFrame(t *testing.T) {
	cuts := []struct {
		name string
		// cut returns the truncation offset for the final segment.
		cut func(s spillSeg) int
	}{
		// Mid-frame: header intact, payload cut in half.
		{"mid-frame", func(s spillSeg) int {
			return s.off + segHeaderBytes + (s.end-s.off-segHeaderBytes)/2
		}},
		// Checksum boundary: the header is cut exactly where the checksum
		// field starts (offset 12) — count and payload length parse, the
		// integrity word does not exist.
		{"checksum-boundary", func(s spillSeg) int {
			return s.off + 12
		}},
	}
	for _, tc := range cuts {
		t.Run(tc.name, func(t *testing.T) {
			const nLocs = 2000
			cfg := tieredConfig(t)
			lg, as, meta, _, locs := fillTiered(t, cfg, nLocs)
			defer lg.Close()
			cs := lg.ColdLogStats()
			if cs.Path == "" {
				t.Fatal("fixture never spilled")
			}
			blob, err := os.ReadFile(cs.Path)
			if err != nil {
				t.Fatal(err)
			}
			segs := parseSpill(t, blob)
			last := segs[len(segs)-1]
			cut := tc.cut(last)
			torn := make(map[uint64]bool, len(last.locs))
			for _, l := range last.locs {
				torn[l] = true
			}
			intact := 0
			for _, s := range segs[:len(segs)-1] {
				intact += len(s.locs)
			}

			// Offline: restart-style recovery over the truncated file.
			recPath := filepath.Join(t.TempDir(), "crash.seg")
			if err := os.WriteFile(recPath, blob[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			recovered, err := ReadSegments(recPath)
			if err != nil {
				// A truncated TAIL is indistinguishable from a crash
				// mid-append and must not be an error — only mid-file
				// corruption is.
				t.Fatalf("ReadSegments on truncated tail errored: %v", err)
			}
			if len(recovered) != intact {
				t.Fatalf("recovered %d locations, want exactly the %d intact-prefix ones", len(recovered), intact)
			}
			for _, l := range recovered {
				if torn[l] {
					t.Fatalf("torn-frame location 0x%x surfaced in recovery", l)
				}
			}

			// Online: truncate the live spill file (the crash) and run
			// free-time invalidation through it.
			before := lg.Stats().Snapshot()
			if before.ColdReadErrors != 0 {
				t.Fatalf("fixture started with ColdReadErrors=%d", before.ColdReadErrors)
			}
			if err := os.Truncate(cs.Path, int64(cut)); err != nil {
				t.Fatal(err)
			}
			lg.Invalidate(meta, as)
			snap := lg.Stats().Snapshot()
			if snap.ColdReadErrors == 0 {
				t.Fatal("unreadable segment did not increment ColdReadErrors")
			}
			invalidated, tornInvalidated := 0, 0
			for _, loc := range locs {
				w, _ := as.LoadWord(loc)
				if w&InvalidBit == 0 {
					continue
				}
				invalidated++
				if torn[loc] {
					tornInvalidated++
				}
			}
			if tornInvalidated != 0 {
				t.Fatalf("%d torn-frame entries surfaced in invalidation", tornInvalidated)
			}
			if invalidated == 0 {
				t.Fatal("invalidation lost the intact tiers along with the torn frame")
			}
			// Fail closed means fail SCOPED: everything outside the torn
			// frame is still invalidated (hot table + intact segments).
			if want := len(locs) - len(last.locs); invalidated != want {
				t.Fatalf("invalidated %d locations, want %d (all but the torn frame)", invalidated, want)
			}
		})
	}
}
