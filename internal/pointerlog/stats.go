package pointerlog

import "sync/atomic"

// Stats mirrors the per-benchmark statistics of the paper's Table 1 plus
// the memory accounting needed for the overhead experiments. All counters
// are cumulative and safe for concurrent update.
type Stats struct {
	// ObjectsTracked counts CreateMeta calls ("# obj alloc").
	ObjectsTracked atomic.Uint64
	// Registered counts Register calls ("# ptrs"): every instrumented
	// pointer store that resolved to a tracked object.
	Registered atomic.Uint64
	// Logged counts locations actually recorded (Registered minus
	// suppressed duplicates).
	Logged atomic.Uint64
	// Duplicates counts stores suppressed by the lookback or the hash
	// table ("# dup").
	Duplicates atomic.Uint64
	// Compressed counts locations folded into an existing entry by pointer
	// compression.
	Compressed atomic.Uint64
	// HashTables counts per-thread logs that overflowed into the
	// hash-table fallback ("# hashtable").
	HashTables atomic.Uint64
	// Invalidated counts pointers overwritten at free time ("# inval").
	Invalidated atomic.Uint64
	// Stale counts logged locations that no longer pointed into the object
	// at free time ("# stale").
	Stale atomic.Uint64
	// Faulted counts logged locations whose memory was returned to the OS
	// (the caught-SIGSEGV path).
	Faulted atomic.Uint64
	// LogBytes approximates the memory consumed by thread logs, indirect
	// blocks and hash tables.
	LogBytes atomic.Uint64
}

// Snapshot is a plain-value copy of Stats for reporting.
type Snapshot struct {
	ObjectsTracked uint64
	Registered     uint64
	Logged         uint64
	Duplicates     uint64
	Compressed     uint64
	HashTables     uint64
	Invalidated    uint64
	Stale          uint64
	Faulted        uint64
	LogBytes       uint64
}

// Snapshot returns a consistent-enough copy of the counters.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		ObjectsTracked: s.ObjectsTracked.Load(),
		Registered:     s.Registered.Load(),
		Logged:         s.Logged.Load(),
		Duplicates:     s.Duplicates.Load(),
		Compressed:     s.Compressed.Load(),
		HashTables:     s.HashTables.Load(),
		Invalidated:    s.Invalidated.Load(),
		Stale:          s.Stale.Load(),
		Faulted:        s.Faulted.Load(),
		LogBytes:       s.LogBytes.Load(),
	}
}
