package pointerlog

import "sync/atomic"

// statShardCount is the number of counter shards; a power of two so the
// tid-to-shard map is a mask. 64 shards cover the thread counts of the
// paper's Fig. 10 sweep without collisions.
const statShardCount = 64

// statShard is one cache-line-padded bundle of counters. Counters are
// atomic only so Snapshot can read them concurrently; in steady state
// each shard is written by a single thread (its tid maps here), so the
// update is an uncontended RMW on a line no other thread touches — the
// point of sharding (paper §4.4's no-shared-state argument, applied to
// our own bookkeeping).
//
// Registered is not stored: every Register call ends in exactly one of
// logged, duplicates, or droppedRegs, so Snapshot derives it as their sum.
type statShard struct {
	objectsTracked   atomic.Uint64
	logged           atomic.Uint64
	duplicates       atomic.Uint64
	compressed       atomic.Uint64
	hashTables       atomic.Uint64
	invalidated      atomic.Uint64
	stale            atomic.Uint64
	faulted          atomic.Uint64
	logBytes         atomic.Uint64
	logBytesReleased atomic.Uint64
	logBytesSpilled  atomic.Uint64
	spills           atomic.Uint64
	spillFailures    atomic.Uint64
	coldReadErrs     atomic.Uint64
	degradedObjects  atomic.Uint64
	droppedRegs      atomic.Uint64
	_                [128 - 16*8]byte // pad to two cache lines (adjacent-line prefetch)
}

// Stats mirrors the per-benchmark statistics of the paper's Table 1 plus
// the memory accounting needed for the overhead experiments, sharded by
// thread id. All counters are cumulative; updates from any thread are
// safe, and Snapshot lazily aggregates across shards.
type Stats struct {
	shards [statShardCount]statShard
}

// shard returns the counter shard for tid. Negative or colliding tids
// share a shard, which costs contention, never correctness.
func (s *Stats) shard(tid int32) *statShard {
	return &s.shards[uint32(tid)&(statShardCount-1)]
}

// Snapshot is a plain-value copy of Stats for reporting.
//
// LogBytes is cumulative — every byte ever charged to log structures —
// matching the paper's Table 1 memory-overhead accounting. LogBytesReleased
// is the measured footprint of log structures whose object has been
// released, LogBytesSpilled the footprint flushed to the cold tier, and
// LogBytesLive what remains: the log memory actually resident right now.
type Snapshot struct {
	ObjectsTracked   uint64
	Registered       uint64
	Logged           uint64
	Duplicates       uint64
	Compressed       uint64
	HashTables       uint64
	Invalidated      uint64
	Stale            uint64
	Faulted          uint64
	LogBytes         uint64
	LogBytesReleased uint64
	LogBytesLive     uint64
	// LogBytesSpilled is the cumulative resident footprint of hash tables
	// flushed to the cold tier: bytes that were charged to LogBytes, left
	// RAM at a spill, and now live on disk in compressed segment form. The
	// cross-tier identity is LogBytes == live + quarantined + released +
	// spilled.
	LogBytesSpilled uint64
	// Spills counts cold-tier flushes; SpillFailures counts flushes that
	// could not reach disk and fell open (table stayed resident);
	// ColdReadErrors counts segments invalidation could not read back
	// (coverage loss only).
	Spills         uint64
	SpillFailures  uint64
	ColdReadErrors uint64
	// DegradedObjects counts allocations the detector could not track
	// (metadata exhausted, budget hit, or injected failure); their frees
	// skip invalidation, losing coverage but never correctness.
	DegradedObjects uint64
	// DroppedRegistrations counts pointer stores whose log append was
	// abandoned because log-block or hash-table memory was unavailable.
	DroppedRegistrations uint64
}

// Snapshot aggregates the shards into a consistent-enough copy of the
// counters. Totals are exactly the values the unsharded implementation
// would report: addition is commutative, and the derived Registered
// equals the number of Register calls because each call bumps exactly
// one of Logged, Duplicates, or DroppedRegistrations. (Dropped appends
// used to be left out of the sum, so degraded runs under-reported
// Registered by exactly the drop count.)
func (s *Stats) Snapshot() Snapshot {
	var out Snapshot
	for i := range s.shards {
		sh := &s.shards[i]
		out.ObjectsTracked += sh.objectsTracked.Load()
		out.Logged += sh.logged.Load()
		out.Duplicates += sh.duplicates.Load()
		out.Compressed += sh.compressed.Load()
		out.HashTables += sh.hashTables.Load()
		out.Invalidated += sh.invalidated.Load()
		out.Stale += sh.stale.Load()
		out.Faulted += sh.faulted.Load()
		out.LogBytes += sh.logBytes.Load()
		out.LogBytesReleased += sh.logBytesReleased.Load()
		out.LogBytesSpilled += sh.logBytesSpilled.Load()
		out.Spills += sh.spills.Load()
		out.SpillFailures += sh.spillFailures.Load()
		out.ColdReadErrors += sh.coldReadErrs.Load()
		out.DegradedObjects += sh.degradedObjects.Load()
		out.DroppedRegistrations += sh.droppedRegs.Load()
	}
	out.Registered = out.Logged + out.Duplicates + out.DroppedRegistrations
	if out.LogBytes >= out.LogBytesReleased+out.LogBytesSpilled {
		out.LogBytesLive = out.LogBytes - out.LogBytesReleased - out.LogBytesSpilled
	}
	return out
}

// LogBytesTotal aggregates the log-memory counter alone, for the
// detector's MetadataBytes sampling path.
func (s *Stats) LogBytesTotal() uint64 {
	var n uint64
	for i := range s.shards {
		n += s.shards[i].logBytes.Load()
	}
	return n
}

// ReleasedLogBytesTotal aggregates the released-log-memory counter alone,
// for the audit identity LogBytesTotal == live + quarantined + released +
// spilled.
func (s *Stats) ReleasedLogBytesTotal() uint64 {
	var n uint64
	for i := range s.shards {
		n += s.shards[i].logBytesReleased.Load()
	}
	return n
}

// SpilledLogBytesTotal aggregates the cold-tier counter alone: the
// spilled term of the cross-tier audit identity.
func (s *Stats) SpilledLogBytesTotal() uint64 {
	var n uint64
	for i := range s.shards {
		n += s.shards[i].logBytesSpilled.Load()
	}
	return n
}
