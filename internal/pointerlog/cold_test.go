package pointerlog

import (
	"os"
	"sort"
	"testing"

	"dangsan/internal/faultinject"
	"dangsan/internal/vmem"
)

// tieredConfig arms the cold tier at the minimum threshold with an early
// hash switch, so a few dozen unique registrations force spills. Lookback
// and compression are off to keep entry counts exact.
func tieredConfig(t *testing.T) Config {
	cfg := DefaultConfig()
	cfg.Lookback = 0
	cfg.Compression = false
	cfg.MaxLogEntries = embedEntries
	cfg.ColdSpillBytes = MinColdSpillBytes
	cfg.ColdDir = t.TempDir()
	cfg.Audit = true
	return cfg
}

// fillTiered maps a page of heap, creates one object, and registers nLocs
// distinct global slots each holding a live pointer into it.
func fillTiered(t *testing.T, cfg Config, nLocs int) (*Logger, *vmem.AddressSpace, *ObjectMeta, uint64, []uint64) {
	t.Helper()
	as := vmem.New()
	as.Heap().MapPages(vmem.HeapBase, 4)
	lg := NewLogger(cfg)
	meta, handle := lg.MustCreateMeta(vmem.HeapBase, 4096)
	locs := make([]uint64, nLocs)
	for i := range locs {
		loc := vmem.GlobalsBase + uint64(i)*8
		locs[i] = loc
		as.StoreWord(loc, meta.Base()+uint64(i%512)*8)
		lg.Register(meta, loc, 0)
	}
	return lg, as, meta, handle, locs
}

func sortedU64(s []uint64) []uint64 {
	out := append([]uint64(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestSegmentRoundTrip: encode → decode is identity on the location set,
// and adjacent locations actually compress on disk.
func TestSegmentRoundTrip(t *testing.T) {
	var locs []uint64
	for i := 0; i < 300; i++ {
		locs = append(locs, vmem.GlobalsBase+uint64(i)*8) // adjacent: compressible
	}
	for i := 0; i < 100; i++ {
		locs = append(locs, vmem.StacksBase+uint64(i)*4096) // spread: raw
	}
	buf, entries := encodeSegment(append([]uint64(nil), locs...))
	if entries >= len(locs) {
		t.Fatalf("no compression: %d entries for %d locations", entries, len(locs))
	}
	got, n, err := decodeSegment(buf, nil)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	want := sortedU64(locs)
	got = sortedU64(got)
	if len(got) != len(want) {
		t.Fatalf("decoded %d locations, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("location %d: got 0x%x want 0x%x", i, got[i], want[i])
		}
	}
}

// TestSegmentTruncatedTail: a crash mid-append leaves a partial final
// segment; recovery returns every intact segment and drops the tail.
func TestSegmentTruncatedTail(t *testing.T) {
	seg1, _ := encodeSegment([]uint64{vmem.GlobalsBase, vmem.GlobalsBase + 16})
	seg2, _ := encodeSegment([]uint64{vmem.StacksBase, vmem.StacksBase + 4096})
	seg3, _ := encodeSegment([]uint64{vmem.HeapBase + 8})
	for _, cut := range []int{
		1,                    // torn magic
		segHeaderBytes - 1,   // torn header
		segHeaderBytes + 3,   // torn payload
		len(seg3) - 1,        // one byte short
	} {
		path := t.TempDir() + "/cold.seg"
		blob := append(append(append([]byte(nil), seg1...), seg2...), seg3[:cut]...)
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		locs, err := ReadSegments(path)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(locs) != 4 {
			t.Fatalf("cut=%d: recovered %d locations, want 4 (the two intact segments)", cut, len(locs))
		}
	}
	// A checksum-corrupted tail is indistinguishable from a torn write
	// and is likewise dropped.
	path := t.TempDir() + "/cold.seg"
	blob := append(append([]byte(nil), seg1...), seg3...)
	blob[len(blob)-1] ^= 0xff
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	locs, err := ReadSegments(path)
	if err != nil || len(locs) != 2 {
		t.Fatalf("corrupt tail: locs=%d err=%v, want 2 nil", len(locs), err)
	}
}

// TestSegmentMidFileCorruption: a bad frame anywhere but the tail is an
// error (lost coverage a restart cannot scope), not a silent truncation.
func TestSegmentMidFileCorruption(t *testing.T) {
	seg1, _ := encodeSegment([]uint64{vmem.GlobalsBase})
	seg2, _ := encodeSegment([]uint64{vmem.StacksBase})
	blob := append(append([]byte(nil), seg1...), seg2...)
	blob[0] ^= 0xff // first segment's magic
	path := t.TempDir() + "/cold.seg"
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSegments(path); err == nil {
		t.Fatal("mid-file corruption went unreported")
	}
}

// TestColdSpillInvalidateExact: spilling moves resident bytes to the cold
// tier without losing a single location — free-time invalidation streams
// the segments back and lands exactly the counts the untiered walk would.
func TestColdSpillInvalidateExact(t *testing.T) {
	const nLocs = 2000
	cfg := tieredConfig(t)
	lg, as, meta, handle, locs := fillTiered(t, cfg, nLocs)

	snap := lg.Stats().Snapshot()
	if snap.Spills == 0 || snap.LogBytesSpilled == 0 {
		t.Fatalf("fixture never spilled: %+v", snap)
	}
	if cs := lg.ColdLogStats(); cs.Segments == 0 || cs.DiskBytes == 0 || cs.Path == "" {
		t.Fatalf("no cold segments on disk: %+v", cs)
	}
	// The point of the tier: residency is bounded by the spill threshold
	// (per log) while cumulative charges keep growing.
	if snap.LogBytesLive >= snap.LogBytes {
		t.Fatalf("spill did not reduce resident bytes: %+v", snap)
	}
	if err := lg.AuditCheck(); err != nil {
		t.Fatalf("audit after spills: %v", err)
	}

	// Overwrite a deterministic third so the stale path runs across tiers.
	overwritten := 0
	for i := 0; i < len(locs); i += 3 {
		as.StoreWord(locs[i], 7)
		overwritten++
	}
	lg.Invalidate(meta, as)
	snap = lg.Stats().Snapshot()
	if want := uint64(nLocs - overwritten); snap.Invalidated != want {
		t.Fatalf("Invalidated=%d want %d (stale=%d faulted=%d coldReadErrs=%d)",
			snap.Invalidated, want, snap.Stale, snap.Faulted, snap.ColdReadErrors)
	}
	if snap.Stale != uint64(overwritten) {
		t.Fatalf("Stale=%d want %d", snap.Stale, overwritten)
	}
	for i, loc := range locs {
		w, _ := as.LoadWord(loc)
		if i%3 == 0 {
			if w != 7 {
				t.Fatalf("overwritten slot %d clobbered: 0x%x", i, w)
			}
		} else if w&InvalidBit == 0 {
			t.Fatalf("slot %d not invalidated: 0x%x", i, w)
		}
	}

	lg.ReleaseMeta(handle)
	if v := lg.AuditViolations(); len(v) != 0 {
		t.Fatalf("audit violations: %v", v)
	}
	lg.Close()
	if cs := lg.ColdLogStats(); cs.Path != "" {
		if _, err := os.Stat(cs.Path); !os.IsNotExist(err) {
			t.Fatalf("spill file survives Close: %v", err)
		}
	}
}

// TestColdSpillParallelMatchesSerial: the fan-out walk over hot units and
// cold segments produces exactly the serial walk's counters and memory
// effects.
func TestColdSpillParallelMatchesSerial(t *testing.T) {
	const nLocs = 3000
	run := func(workers int) (Snapshot, []uint64) {
		cfg := tieredConfig(t)
		cfg.InvalidateWorkers = workers
		cfg.ParallelInvalidateMin = 1
		lg, as, meta, _, locs := fillTiered(t, cfg, nLocs)
		for i := 0; i < len(locs); i += 5 {
			as.StoreWord(locs[i], 7)
		}
		lg.Invalidate(meta, as)
		words := make([]uint64, len(locs))
		for i, loc := range locs {
			words[i], _ = as.LoadWord(loc)
		}
		defer lg.Close()
		return lg.Stats().Snapshot(), words
	}
	serialSnap, serialWords := run(1)
	parSnap, parWords := run(4)
	if serialSnap != parSnap {
		t.Errorf("counters diverge:\nserial   %+v\nparallel %+v", serialSnap, parSnap)
	}
	for i := range serialWords {
		if serialWords[i] != parWords[i] {
			t.Fatalf("memory diverges at slot %d: serial 0x%x parallel 0x%x",
				i, serialWords[i], parWords[i])
		}
	}
	if serialSnap.Spills == 0 {
		t.Fatalf("fixture never spilled: %+v", serialSnap)
	}
}

// TestColdRestartRecovery: the spill file alone (ReadSegments — the
// process-restart path) plus the resident tiers reconstruct the complete
// location set.
func TestColdRestartRecovery(t *testing.T) {
	const nLocs = 1500
	cfg := tieredConfig(t)
	lg, _, meta, _, locs := fillTiered(t, cfg, nLocs)
	defer lg.Close()

	path := lg.ColdLogStats().Path
	if path == "" {
		t.Fatal("fixture never spilled")
	}
	coldLocs, err := ReadSegments(path)
	if err != nil {
		t.Fatalf("ReadSegments: %v", err)
	}
	var hot []uint64
	meta.ForEachLocation(func(loc uint64) { hot = append(hot, loc) })
	got := sortedU64(append(coldLocs, hot...))
	want := sortedU64(locs)
	if len(got) != len(want) {
		t.Fatalf("cold(%d) + hot(%d) = %d locations, want %d",
			len(coldLocs), len(hot), len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("location %d: got 0x%x want 0x%x", i, got[i], want[i])
		}
	}
}

// TestSpillWriteFaultFailOpen: a denied segment write must leave the
// table resident — full coverage, counted failure, clean audit.
func TestSpillWriteFaultFailOpen(t *testing.T) {
	const nLocs = 800
	plane := faultinject.New(11)
	plane.Enable(faultinject.ColdIO, 1.0, -1)
	cfg := tieredConfig(t)
	as := vmem.New()
	as.Heap().MapPages(vmem.HeapBase, 4)
	lg := NewLogger(cfg)
	lg.InjectFaults(plane)
	defer lg.Close()
	meta, _ := lg.MustCreateMeta(vmem.HeapBase, 4096)
	locs := make([]uint64, nLocs)
	for i := range locs {
		locs[i] = vmem.GlobalsBase + uint64(i)*8
		as.StoreWord(locs[i], meta.Base()+8)
		lg.Register(meta, locs[i], 0)
	}
	snap := lg.Stats().Snapshot()
	if snap.Spills != 0 || snap.SpillFailures == 0 {
		t.Fatalf("want only failed spills, got %+v", snap)
	}
	if cs := lg.ColdLogStats(); cs.Segments != 0 {
		t.Fatalf("segments written despite injected write failures: %+v", cs)
	}
	lg.Invalidate(meta, as)
	snap = lg.Stats().Snapshot()
	if snap.Invalidated != nLocs {
		t.Fatalf("Invalidated=%d want %d: fail-open spill lost coverage", snap.Invalidated, nLocs)
	}
	if err := lg.AuditCheck(); err != nil {
		t.Fatalf("audit under spill failures: %v", err)
	}
}

// TestColdReadFaultFailOpen: unreadable segments cost exactly their own
// coverage — the hot tiers still invalidate, errors are counted, and no
// false report can arise (a skipped location is simply never touched).
func TestColdReadFaultFailOpen(t *testing.T) {
	const nLocs = 1200
	cfg := tieredConfig(t)
	lg, as, meta, _, _ := fillTiered(t, cfg, nLocs)
	defer lg.Close()
	segs := lg.ColdLogStats().Segments
	if segs == 0 {
		t.Fatal("fixture never spilled")
	}
	plane := faultinject.New(13)
	plane.Enable(faultinject.ColdIO, 1.0, -1)
	lg.InjectFaults(plane)

	lg.Invalidate(meta, as)
	snap := lg.Stats().Snapshot()
	if snap.ColdReadErrors != uint64(segs) {
		t.Fatalf("ColdReadErrors=%d want %d", snap.ColdReadErrors, segs)
	}
	if snap.Invalidated == 0 || snap.Invalidated >= nLocs {
		t.Fatalf("Invalidated=%d: hot tier should invalidate, cold should be skipped", snap.Invalidated)
	}
	if err := lg.AuditCheck(); err != nil {
		t.Fatalf("audit under cold read failures: %v", err)
	}
}

// TestColdCompactionReclaimsGarbage: releasing a spilled object turns its
// segments into garbage; once garbage dominates, the file is rewritten
// with only the live segments — which must still decode for the surviving
// object.
func TestColdCompactionReclaimsGarbage(t *testing.T) {
	cfg := tieredConfig(t)
	as := vmem.New()
	as.Heap().MapPages(vmem.HeapBase, 8)
	lg := NewLogger(cfg)
	defer lg.Close()

	// big spills a lot; keeper spills a little. Distinct tids keep the
	// logs separate; distinct slot ranges keep the locations disjoint.
	big, bigHandle := lg.MustCreateMeta(vmem.HeapBase, 4096)
	keeper, _ := lg.MustCreateMeta(vmem.HeapBase+2*4096, 4096)
	const nBig, nKeep = 3000, 200
	keepLocs := make([]uint64, nKeep)
	for i := 0; i < nBig; i++ {
		loc := vmem.GlobalsBase + uint64(i)*8
		as.StoreWord(loc, big.Base()+8)
		lg.Register(big, loc, 0)
	}
	for i := range keepLocs {
		loc := vmem.GlobalsBase + uint64(nBig+i)*8
		keepLocs[i] = loc
		as.StoreWord(loc, keeper.Base()+8)
		lg.Register(keeper, loc, 1)
	}
	before := lg.ColdLogStats()
	if before.Segments < 2 {
		t.Fatalf("fixture too small to exercise compaction: %+v", before)
	}

	lg.Invalidate(big, as)
	lg.ReleaseMeta(bigHandle)
	after := lg.ColdLogStats()
	if after.Compactions == 0 {
		t.Fatalf("releasing the dominant object did not compact: before=%+v after=%+v", before, after)
	}
	if after.DiskBytes >= before.DiskBytes {
		t.Fatalf("compaction did not shrink the file: before=%d after=%d", before.DiskBytes, after.DiskBytes)
	}
	if after.GarbageBytes != 0 {
		t.Fatalf("garbage survives compaction: %+v", after)
	}

	// The survivor's segments moved; they must still stream back exactly.
	lg.Invalidate(keeper, as)
	snap := lg.Stats().Snapshot()
	if snap.ColdReadErrors != 0 {
		t.Fatalf("cold read errors after compaction: %+v", snap)
	}
	for i, loc := range keepLocs {
		if w, _ := as.LoadWord(loc); w&InvalidBit == 0 {
			t.Fatalf("keeper slot %d not invalidated after compaction: 0x%x", i, w)
		}
	}
	if v := lg.AuditViolations(); len(v) != 0 {
		t.Fatalf("audit violations: %v", v)
	}
}

// TestColdTriage: the reservoir probe ranks liveness without disk — all
// pointers live reads all-live, all overwritten reads none.
func TestColdTriage(t *testing.T) {
	const nLocs = 1000
	cfg := tieredConfig(t)
	lg, as, meta, _, locs := fillTiered(t, cfg, nLocs)
	defer lg.Close()

	sampled, live := lg.ColdTriage(meta, as)
	if sampled == 0 || live != sampled {
		t.Fatalf("triage on fully live object: sampled=%d live=%d", sampled, live)
	}
	for _, loc := range locs {
		as.StoreWord(loc, 7)
	}
	sampled, live = lg.ColdTriage(meta, as)
	if sampled == 0 || live != 0 {
		t.Fatalf("triage on fully stale object: sampled=%d live=%d", sampled, live)
	}
}

// TestColdSpillManyInvalidate: InvalidateMany streams cold segments of
// every batch member through the shared dedup and lands exact counts.
func TestColdSpillManyInvalidate(t *testing.T) {
	cfg := tieredConfig(t)
	as := vmem.New()
	as.Heap().MapPages(vmem.HeapBase, 8)
	lg := NewLogger(cfg)
	defer lg.Close()
	const nObjs, per = 3, 700
	metas := make([]*ObjectMeta, nObjs)
	handles := make([]uint64, nObjs)
	total := 0
	for o := range metas {
		m, h := lg.MustCreateMeta(vmem.HeapBase+uint64(o)*2*4096, 4096)
		metas[o], handles[o] = m, h
		for i := 0; i < per; i++ {
			loc := vmem.GlobalsBase + uint64(o*per+i)*8
			as.StoreWord(loc, m.Base()+8)
			lg.Register(m, loc, int32(o))
			total++
		}
	}
	if lg.Stats().Snapshot().Spills == 0 {
		t.Fatal("fixture never spilled")
	}
	lg.InvalidateMany(metas, as)
	snap := lg.Stats().Snapshot()
	if snap.Invalidated != uint64(total) {
		t.Fatalf("Invalidated=%d want %d (stale=%d)", snap.Invalidated, total, snap.Stale)
	}
	for _, h := range handles {
		lg.ReleaseMeta(h)
	}
	if v := lg.AuditViolations(); len(v) != 0 {
		t.Fatalf("audit violations: %v", v)
	}
}
