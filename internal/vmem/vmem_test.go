package vmem

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestCanonical(t *testing.T) {
	cases := []struct {
		addr uint64
		want bool
	}{
		{0, true},
		{HeapBase, true},
		{1<<47 - 1, true},
		{1 << 47, false},
		{HeapBase | 1<<63, false},
		{^uint64(0), false},
	}
	for _, c := range cases {
		if got := Canonical(c.addr); got != c.want {
			t.Errorf("Canonical(0x%x) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestSegmentMapUnmap(t *testing.T) {
	seg := NewSegment(HeapBase, 1<<24, "test")
	addr := uint64(HeapBase + 2*PageSize)

	if _, f := seg.loadWord(addr); f == nil || f.Kind != FaultUnmapped {
		t.Fatalf("load before map: got fault %v, want unmapped", f)
	}
	seg.MapPages(addr, 1)
	if got := seg.MappedBytes(); got != PageSize {
		t.Fatalf("MappedBytes = %d, want %d", got, PageSize)
	}
	if f := seg.storeWord(addr, 42); f != nil {
		t.Fatalf("store after map: %v", f)
	}
	v, f := seg.loadWord(addr)
	if f != nil || v != 42 {
		t.Fatalf("load = %d, %v; want 42, nil", v, f)
	}
	// Access one page over must still fault.
	if _, f := seg.loadWord(addr + PageSize); f == nil {
		t.Fatal("adjacent unmapped page did not fault")
	}
	seg.UnmapPages(addr, 1)
	if got := seg.MappedBytes(); got != 0 {
		t.Fatalf("MappedBytes after unmap = %d, want 0", got)
	}
	if _, f := seg.loadWord(addr); f == nil || f.Kind != FaultUnmapped {
		t.Fatalf("load after unmap: got %v, want unmapped fault", f)
	}
	// Remap must zero the page.
	seg.MapPages(addr, 1)
	if v, _ := seg.loadWord(addr); v != 0 {
		t.Fatalf("remapped page not zeroed: %d", v)
	}
}

func TestMapPagesIdempotent(t *testing.T) {
	seg := NewSegment(HeapBase, 1<<20, "test")
	seg.MapPages(HeapBase, 4)
	if f := seg.storeWord(HeapBase, 7); f != nil {
		t.Fatal(f)
	}
	seg.MapPages(HeapBase, 4) // must not zero already-mapped pages
	if v, _ := seg.loadWord(HeapBase); v != 7 {
		t.Fatalf("remap of mapped page clobbered data: %d", v)
	}
	if got := seg.MappedBytes(); got != 4*PageSize {
		t.Fatalf("MappedBytes = %d, want %d", got, 4*PageSize)
	}
}

func TestAddressSpaceFaults(t *testing.T) {
	as := New()
	cases := []struct {
		name string
		addr uint64
		kind FaultKind
	}{
		{"non-canonical high bit", HeapBase | 1<<63, FaultNonCanonical},
		{"non-canonical bit 47", 1 << 47, FaultNonCanonical},
		{"hole between segments", 0x0000_0180_0000_0000, FaultNoSegment},
		{"null page", 0, FaultNoSegment},
		{"unmapped heap page", HeapBase, FaultUnmapped},
		{"unaligned word", GlobalsBase + 3, FaultUnaligned},
	}
	for _, c := range cases {
		_, f := as.LoadWord(c.addr)
		if f == nil || f.Kind != c.kind {
			t.Errorf("%s: LoadWord(0x%x) fault = %v, want kind %v", c.name, c.addr, f, c.kind)
		}
		sf := as.StoreWord(c.addr, 1)
		if sf == nil || sf.Kind != c.kind {
			t.Errorf("%s: StoreWord(0x%x) fault = %v, want kind %v", c.name, c.addr, sf, c.kind)
		}
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Addr: 0x8000000000001234, Kind: FaultNonCanonical}
	want := "segmentation fault: non-canonical address at 0x8000000000001234"
	if f.Error() != want {
		t.Errorf("Error() = %q, want %q", f.Error(), want)
	}
}

func TestGlobalsPreMapped(t *testing.T) {
	as := New()
	if f := as.StoreWord(GlobalsBase+128, 99); f != nil {
		t.Fatalf("globals store: %v", f)
	}
	v, f := as.LoadWord(GlobalsBase + 128)
	if f != nil || v != 99 {
		t.Fatalf("globals load = %d, %v", v, f)
	}
}

func TestStacks(t *testing.T) {
	as := New()
	base, top := as.MapStack(3)
	if top-base != StackSize {
		t.Fatalf("stack size = %d, want %d", top-base, StackSize)
	}
	if f := as.StoreWord(base+64, 123); f != nil {
		t.Fatal(f)
	}
	as.UnmapStack(3)
	if _, f := as.LoadWord(base + 64); f == nil || f.Kind != FaultUnmapped {
		t.Fatalf("stack access after unmap: %v", f)
	}
	// Another thread's stack is independent.
	b2, _ := as.MapStack(4)
	if f := as.StoreWord(b2, 5); f != nil {
		t.Fatal(f)
	}
}

func TestByteAccess(t *testing.T) {
	as := New()
	addr := uint64(GlobalsBase + 1024)
	if f := as.StoreWord(addr, 0x1122334455667788); f != nil {
		t.Fatal(f)
	}
	// Little-endian byte order within the word.
	wantBytes := []byte{0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11}
	for i, want := range wantBytes {
		b, f := as.LoadByte(addr + uint64(i))
		if f != nil || b != want {
			t.Fatalf("LoadByte(+%d) = 0x%x, %v; want 0x%x", i, b, f, want)
		}
	}
	if f := as.StoreByte(addr+2, 0xAA); f != nil {
		t.Fatal(f)
	}
	w, _ := as.LoadWord(addr)
	if w != 0x11223344_55AA7788 {
		t.Fatalf("word after StoreByte = 0x%x", w)
	}
}

func TestMemmove(t *testing.T) {
	as := New()
	a := uint64(GlobalsBase + 4096)
	src := []byte("the quick brown fox jumps over the lazy dog")
	if f := as.StoreBytes(a, src); f != nil {
		t.Fatal(f)
	}
	// Non-overlapping copy.
	if f := as.Memmove(a+100, a, uint64(len(src))); f != nil {
		t.Fatal(f)
	}
	got := make([]byte, len(src))
	if f := as.LoadBytes(a+100, got); f != nil {
		t.Fatal(f)
	}
	if string(got) != string(src) {
		t.Fatalf("copy = %q", got)
	}
	// Overlapping forward copy (dst > src).
	if f := as.Memmove(a+4, a, uint64(len(src))); f != nil {
		t.Fatal(f)
	}
	if f := as.LoadBytes(a+4, got); f != nil {
		t.Fatal(f)
	}
	if string(got) != string(src) {
		t.Fatalf("overlapping copy = %q", got)
	}
}

func TestMemset(t *testing.T) {
	as := New()
	a := uint64(GlobalsBase + 8192 + 3) // deliberately unaligned
	if f := as.Memset(a, 0xCD, 29); f != nil {
		t.Fatal(f)
	}
	buf := make([]byte, 31)
	if f := as.LoadBytes(a-1, buf); f != nil {
		t.Fatal(f)
	}
	if buf[0] != 0 || buf[30] != 0 {
		t.Fatal("Memset wrote outside its range")
	}
	for i := 1; i <= 29; i++ {
		if buf[i] != 0xCD {
			t.Fatalf("byte %d = 0x%x, want 0xCD", i, buf[i])
		}
	}
}

func TestCASWord(t *testing.T) {
	as := New()
	addr := uint64(GlobalsBase + 16384)
	if f := as.StoreWord(addr, 10); f != nil {
		t.Fatal(f)
	}
	ok, f := as.CASWord(addr, 10, 20)
	if f != nil || !ok {
		t.Fatalf("CAS(10->20) = %v, %v", ok, f)
	}
	ok, f = as.CASWord(addr, 10, 30)
	if f != nil || ok {
		t.Fatalf("stale CAS succeeded")
	}
	v, _ := as.LoadWord(addr)
	if v != 20 {
		t.Fatalf("value = %d, want 20", v)
	}
}

func TestAddSegment(t *testing.T) {
	as := New()
	seg, err := as.AddSegment(0x0000_0400_0000_0000, 1<<20, "mmap")
	if err != nil {
		t.Fatal(err)
	}
	seg.MapPages(seg.Base(), 1)
	if f := as.StoreWord(seg.Base(), 1); f != nil {
		t.Fatal(f)
	}
	// Overlap with the heap must be rejected.
	if _, err := as.AddSegment(HeapBase+PageSize, 1<<20, "bad"); err == nil {
		t.Fatal("overlapping segment accepted")
	}
	// Overlap with another extra segment must be rejected.
	if _, err := as.AddSegment(0x0000_0400_0000_1000, 1<<20, "bad2"); err == nil {
		t.Fatal("overlapping extra segment accepted")
	}
}

func TestConcurrentWordOps(t *testing.T) {
	as := New()
	as.Heap().MapPages(HeapBase, 1)
	addr := uint64(HeapBase)
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for {
					old, f := as.LoadWord(addr)
					if f != nil {
						t.Error(f)
						return
					}
					if ok, _ := as.CASWord(addr, old, old+1); ok {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	v, _ := as.LoadWord(addr)
	if v != workers*iters {
		t.Fatalf("counter = %d, want %d", v, workers*iters)
	}
}

// Property: for any word value and any aligned in-range address, a store
// followed by a load round-trips, and byte-level reads decompose the word in
// little-endian order.
func TestWordByteRoundTripProperty(t *testing.T) {
	as := New()
	f := func(off uint32, val uint64) bool {
		addr := GlobalsBase + uint64(off)%(GlobalsSize-8)
		addr &^= 7
		if fault := as.StoreWord(addr, val); fault != nil {
			return false
		}
		got, fault := as.LoadWord(addr)
		if fault != nil || got != val {
			return false
		}
		var assembled uint64
		for i := uint64(0); i < 8; i++ {
			b, fault := as.LoadByte(addr + i)
			if fault != nil {
				return false
			}
			assembled |= uint64(b) << (8 * i)
		}
		return assembled == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Memmove behaves like Go's copy for arbitrary overlapping ranges.
func TestMemmoveProperty(t *testing.T) {
	as := New()
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 100; iter++ {
		n := uint64(rng.Intn(200) + 1)
		region := uint64(GlobalsBase + 1<<20)
		srcOff := uint64(rng.Intn(256))
		dstOff := uint64(rng.Intn(256))
		buf := make([]byte, 512)
		rng.Read(buf)
		if f := as.StoreBytes(region, buf); f != nil {
			t.Fatal(f)
		}
		want := make([]byte, 512)
		copy(want, buf)
		copy(want[dstOff:dstOff+n], want[srcOff:srcOff+n])
		if f := as.Memmove(region+dstOff, region+srcOff, n); f != nil {
			t.Fatal(f)
		}
		got := make([]byte, 512)
		if f := as.LoadBytes(region, got); f != nil {
			t.Fatal(f)
		}
		if string(got) != string(want) {
			t.Fatalf("iter %d: memmove mismatch (src=%d dst=%d n=%d)", iter, srcOff, dstOff, n)
		}
	}
}
