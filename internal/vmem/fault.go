// Package vmem provides a simulated 64-bit virtual address space.
//
// DangSan's runtime behaviour depends on properties of the x86-64 address
// space that a garbage-collected Go process cannot exhibit directly: setting
// the most significant bit of a pointer makes it non-canonical so that any
// dereference faults, and reading a pointer location whose backing pages have
// been returned to the operating system raises SIGSEGV. This package
// reproduces those properties in a software-simulated address space: word
// and byte accessors report a *Fault (the simulated SIGSEGV) instead of
// crashing, and the canonical-form rules of x86-64 are enforced on every
// access.
//
// All word accesses are atomic, so the simulated memory may be shared
// between goroutines that model program threads, and compare-and-swap is
// available for DangSan's race-free pointer invalidation.
package vmem

import "fmt"

// FaultKind classifies a simulated memory fault.
type FaultKind int

const (
	// FaultNonCanonical marks an access through an address that is not in
	// canonical user-space form. The simulation models a user-space x86-64
	// process, so the single rule — the one Canonical enforces — is that
	// bits 47..63 are all zero. Dereferencing a pointer invalidated by
	// DangSan (bit 63 set) or a pointer still carrying an xTag generation
	// tag (bits TagShift..TagShift+TagBits-1) lands here: such pointers are
	// non-canonical by construction, but recognized — DecodeTag and
	// pointerlog.DecodeFault recover the original address bits.
	FaultNonCanonical FaultKind = iota
	// FaultNoSegment marks an access outside every mapped segment.
	FaultNoSegment
	// FaultUnmapped marks an access to a page inside a segment that is not
	// currently mapped (never mapped, or returned to the OS).
	FaultUnmapped
	// FaultUnaligned marks a word access that is not 8-byte aligned.
	FaultUnaligned
	// FaultTagMismatch marks a dereference whose pointer carried an xTag
	// generation tag that no longer matches the tag of the object at the
	// stripped address — the xtag detector's use-after-free signal. The
	// fault address preserves the full tagged pointer.
	FaultTagMismatch
	// FaultFreedRange marks a dereference into an address range whose
	// object has been freed and not reallocated — the camp detector's
	// range-check use-after-free signal.
	FaultFreedRange
)

func (k FaultKind) String() string {
	switch k {
	case FaultNonCanonical:
		return "non-canonical address"
	case FaultNoSegment:
		return "no segment"
	case FaultUnmapped:
		return "unmapped page"
	case FaultUnaligned:
		return "unaligned word access"
	case FaultTagMismatch:
		return "pointer tag mismatch"
	case FaultFreedRange:
		return "access to freed range"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is a simulated SIGSEGV (or SIGBUS for alignment). It records the
// faulting address so that callers can relate the fault back to the original
// pointer, which is exactly the debugging property DangSan preserves by
// flipping only the top bit of invalidated pointers.
type Fault struct {
	Addr uint64
	Kind FaultKind
}

func (f *Fault) Error() string {
	return fmt.Sprintf("segmentation fault: %s at 0x%x", f.Kind, f.Addr)
}

// Canonical reports whether addr is a canonical user-space x86-64 address:
// bits 47..63 all zero. (Kernel-space canonical addresses have them all set;
// the simulation models a user-space process only, matching the paper.)
func Canonical(addr uint64) bool {
	return addr>>47 == 0
}
