package vmem

import (
	"fmt"
	"sort"
	"sync"
)

// Standard layout of the simulated process. Bases are chosen so that every
// valid address has its top two bytes zero (needed by the pointer-compression
// format in internal/pointerlog, which distinguishes raw location entries
// from compressed ones by a nonzero top byte) and so that segments are far
// apart, like a real position-independent Linux process.
const (
	// HeapBase is where the simulated heap starts.
	HeapBase = 0x0000_0100_0000_0000
	// HeapMax is the maximum virtual size of the heap (64 GiB reservation;
	// backing is lazy).
	HeapMax = 1 << 36
	// GlobalsBase is where the globals segment starts.
	GlobalsBase = 0x0000_0200_0000_0000
	// GlobalsSize is the reserved size of the globals segment.
	GlobalsSize = 1 << 22
	// StacksBase is where thread stacks are carved from.
	StacksBase = 0x0000_0300_0000_0000
	// StackSize is the virtual size of one thread stack.
	StackSize = 1 << 23
	// MaxStacks bounds the number of thread stacks.
	MaxStacks = 1 << 13
)

// AddressSpace is a simulated user-space 64-bit address space composed of a
// small number of segments. It is safe for concurrent use.
type AddressSpace struct {
	heap    *Segment
	globals *Segment
	stacks  *Segment

	mu    sync.Mutex
	extra []*Segment // rarely used; sorted by base
}

// New creates an address space with the standard heap/globals/stacks layout.
// The globals segment is fully mapped; heap and stack pages are mapped on
// demand by the allocator and thread runtime.
func New() *AddressSpace {
	return NewSized(HeapMax)
}

// NewSized is New with a custom heap reservation, for tests and workloads
// that want a tiny heap so allocation failure is reachable quickly. heapBytes
// is rounded up to a page and clamped to [PageSize, HeapMax].
func NewSized(heapBytes uint64) *AddressSpace {
	heapBytes = (heapBytes + PageSize - 1) &^ (PageSize - 1)
	if heapBytes == 0 {
		heapBytes = PageSize
	}
	if heapBytes > HeapMax {
		heapBytes = HeapMax
	}
	as := &AddressSpace{
		heap:    NewSegment(HeapBase, heapBytes, "heap"),
		globals: NewSegment(GlobalsBase, GlobalsSize, "globals"),
		stacks:  NewSegment(StacksBase, StackSize*MaxStacks, "stacks"),
	}
	as.globals.MapPages(GlobalsBase, GlobalsSize/PageSize)
	return as
}

// Heap returns the heap segment.
func (as *AddressSpace) Heap() *Segment { return as.heap }

// Globals returns the globals segment.
func (as *AddressSpace) Globals() *Segment { return as.globals }

// Stacks returns the stacks segment.
func (as *AddressSpace) Stacks() *Segment { return as.stacks }

// StackRange returns the reserved stack range for thread tid without
// mapping it; callers map pages on demand as the stack grows, so that a
// mostly idle thread contributes almost nothing to the resident set (as on
// a real OS, where stacks fault in lazily).
func (as *AddressSpace) StackRange(tid int) (base, top uint64) {
	if tid < 0 || tid >= MaxStacks {
		panic(fmt.Sprintf("vmem: thread id %d out of range", tid))
	}
	base = StacksBase + uint64(tid)*StackSize
	return base, base + StackSize
}

// MapStack reserves and fully maps the stack for thread tid, returning its
// range. Prefer StackRange plus on-demand mapping for realistic residency.
func (as *AddressSpace) MapStack(tid int) (base, top uint64) {
	base, top = as.StackRange(tid)
	as.stacks.MapPages(base, StackSize/PageSize)
	return base, top
}

// UnmapStack releases the stack pages of thread tid.
func (as *AddressSpace) UnmapStack(tid int) {
	if tid < 0 || tid >= MaxStacks {
		panic(fmt.Sprintf("vmem: thread id %d out of range", tid))
	}
	base := StacksBase + uint64(tid)*StackSize
	as.stacks.UnmapPages(base, StackSize/PageSize)
}

// AddSegment reserves an additional segment (used by tests and by workloads
// that model mmap'd regions). The range must not overlap existing segments.
func (as *AddressSpace) AddSegment(base, size uint64, name string) (*Segment, error) {
	seg := NewSegment(base, size, name)
	as.mu.Lock()
	defer as.mu.Unlock()
	for _, other := range append([]*Segment{as.heap, as.globals, as.stacks}, as.extra...) {
		if base < other.End() && other.Base() < seg.End() {
			return nil, fmt.Errorf("vmem: segment %q overlaps %q", name, other.Name())
		}
	}
	as.extra = append(as.extra, seg)
	sort.Slice(as.extra, func(i, j int) bool { return as.extra[i].Base() < as.extra[j].Base() })
	return seg, nil
}

// segmentFor locates the segment containing addr, or nil. The heap is
// checked first because pointer-tracking traffic is heap-dominated.
func (as *AddressSpace) segmentFor(addr uint64) *Segment {
	switch {
	case as.heap.contains(addr):
		return as.heap
	case as.stacks.contains(addr):
		return as.stacks
	case as.globals.contains(addr):
		return as.globals
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	i := sort.Search(len(as.extra), func(i int) bool { return as.extra[i].End() > addr })
	if i < len(as.extra) && as.extra[i].contains(addr) {
		return as.extra[i]
	}
	return nil
}

// check validates an address for an access of the given size, returning the
// containing segment.
func (as *AddressSpace) check(addr uint64, size uint64, aligned bool) (*Segment, *Fault) {
	if !Canonical(addr) {
		return nil, &Fault{Addr: addr, Kind: FaultNonCanonical}
	}
	if aligned && addr%size != 0 {
		return nil, &Fault{Addr: addr, Kind: FaultUnaligned}
	}
	seg := as.segmentFor(addr)
	if seg == nil {
		return nil, &Fault{Addr: addr, Kind: FaultNoSegment}
	}
	return seg, nil
}

// LoadWord atomically reads the 8-byte word at the aligned address addr.
func (as *AddressSpace) LoadWord(addr uint64) (uint64, *Fault) {
	seg, f := as.check(addr, WordSize, true)
	if f != nil {
		return 0, f
	}
	return seg.loadWord(addr)
}

// StoreWord atomically writes the 8-byte word at the aligned address addr.
func (as *AddressSpace) StoreWord(addr, val uint64) *Fault {
	seg, f := as.check(addr, WordSize, true)
	if f != nil {
		return f
	}
	return seg.storeWord(addr, val)
}

// CASWord atomically compares-and-swaps the word at addr. It returns whether
// the swap happened. This is the primitive DangSan uses to invalidate a
// pointer without clobbering a racing store of a fresh pointer.
func (as *AddressSpace) CASWord(addr, old, new uint64) (bool, *Fault) {
	seg, f := as.check(addr, WordSize, true)
	if f != nil {
		return false, f
	}
	return seg.casWord(addr, old, new)
}

// LoadByte reads one byte at addr.
func (as *AddressSpace) LoadByte(addr uint64) (byte, *Fault) {
	seg, f := as.check(addr, 1, false)
	if f != nil {
		return 0, f
	}
	w, fault := seg.loadWord(addr &^ 7)
	if fault != nil {
		fault.Addr = addr
		return 0, fault
	}
	return byte(w >> (8 * (addr & 7))), nil
}

// StoreByte writes one byte at addr, preserving the other bytes of the
// containing word via a CAS loop (the simulation's memory is word-granular).
func (as *AddressSpace) StoreByte(addr uint64, val byte) *Fault {
	seg, f := as.check(addr, 1, false)
	if f != nil {
		return f
	}
	wa := addr &^ 7
	shift := 8 * (addr & 7)
	for {
		old, fault := seg.loadWord(wa)
		if fault != nil {
			fault.Addr = addr
			return fault
		}
		new := old&^(0xff<<shift) | uint64(val)<<shift
		ok, fault := seg.casWord(wa, old, new)
		if fault != nil {
			fault.Addr = addr
			return fault
		}
		if ok {
			return nil
		}
	}
}

// LoadBytes reads len(dst) bytes starting at addr.
func (as *AddressSpace) LoadBytes(addr uint64, dst []byte) *Fault {
	for i := range dst {
		b, f := as.LoadByte(addr + uint64(i))
		if f != nil {
			return f
		}
		dst[i] = b
	}
	return nil
}

// StoreBytes writes src starting at addr.
func (as *AddressSpace) StoreBytes(addr uint64, src []byte) *Fault {
	for i, b := range src {
		if f := as.StoreByte(addr+uint64(i), b); f != nil {
			return f
		}
	}
	return nil
}

// Memmove copies n bytes from src to dst within the simulated space, used by
// the allocator's realloc path (which is exactly the type-unsafe pointer
// copy the paper discusses in its limitations section). Overlapping ranges
// are handled like the C memmove.
func (as *AddressSpace) Memmove(dst, src, n uint64) *Fault {
	if n == 0 || dst == src {
		return nil
	}
	if dst < src {
		for i := uint64(0); i < n; i++ {
			b, f := as.LoadByte(src + i)
			if f != nil {
				return f
			}
			if f := as.StoreByte(dst+i, b); f != nil {
				return f
			}
		}
		return nil
	}
	for i := n; i > 0; i-- {
		b, f := as.LoadByte(src + i - 1)
		if f != nil {
			return f
		}
		if f := as.StoreByte(dst+i-1, b); f != nil {
			return f
		}
	}
	return nil
}

// Memset fills n bytes at addr with val.
func (as *AddressSpace) Memset(addr uint64, val byte, n uint64) *Fault {
	// Fast path for aligned word runs.
	w := uint64(val)
	w |= w<<8 | w<<16 | w<<24
	w |= w << 32
	i := uint64(0)
	for ; i < n && (addr+i)%WordSize != 0; i++ {
		if f := as.StoreByte(addr+i, val); f != nil {
			return f
		}
	}
	for ; i+WordSize <= n; i += WordSize {
		if f := as.StoreWord(addr+i, w); f != nil {
			return f
		}
	}
	for ; i < n; i++ {
		if f := as.StoreByte(addr+i, val); f != nil {
			return f
		}
	}
	return nil
}

// MappedBytes reports the total mapped (resident) bytes across all segments.
func (as *AddressSpace) MappedBytes() uint64 {
	total := as.heap.MappedBytes() + as.globals.MappedBytes() + as.stacks.MappedBytes()
	as.mu.Lock()
	for _, seg := range as.extra {
		total += seg.MappedBytes()
	}
	as.mu.Unlock()
	return total
}
