package vmem

import (
	"errors"
	"fmt"
	"sync/atomic"

	"dangsan/internal/faultinject"
)

// ErrNoMemory is the simulated mmap failure: the OS refused to back the
// requested pages. It is returned only by TryMapPages; MapPages remains
// infallible (misuse panics aside) for callers that mapped eagerly at setup.
var ErrNoMemory = errors.New("vmem: cannot map pages (simulated ENOMEM)")

const (
	// PageShift is log2 of the simulated page size (4 KiB, as on x86-64 and
	// as assumed by the metapagetable: one entry per 4096-byte page).
	PageShift = 12
	// PageSize is the simulated page size in bytes.
	PageSize = 1 << PageShift
	// WordSize is the size of a machine word (and of a pointer) in bytes.
	WordSize = 8

	// chunkShift is log2 of the backing-store chunk size in bytes. Segments
	// allocate physical backing lazily in chunks so that a large virtual
	// reservation costs nothing until touched, like real mmap.
	chunkShift    = 22 // 4 MiB
	chunkBytes    = 1 << chunkShift
	chunkWords    = chunkBytes / WordSize
	pagesPerChunk = chunkBytes / PageSize
)

// chunk is one lazily-allocated slab of physical backing plus the mapped
// state of each of its pages. Words are accessed atomically; the mapped
// flags are accessed atomically too so that Map/Unmap can race with loads
// (the loser observes a fault, which is the behaviour being simulated).
type chunk struct {
	words  [chunkWords]uint64
	mapped [pagesPerChunk]atomic.Bool
}

// Segment is a contiguous virtual address range backed by lazily allocated
// chunks. Pages within the range fault until mapped with MapPages, and fault
// again after UnmapPages — simulating memory returned to the OS, which is the
// case DangSan handles by catching SIGSEGV during pointer invalidation.
type Segment struct {
	base uint64
	size uint64
	name string
	// chunks[i] covers [base + i*chunkBytes, base + (i+1)*chunkBytes).
	chunks []atomic.Pointer[chunk]
	// mappedBytes counts currently mapped pages (for RSS-style accounting).
	mappedBytes atomic.Uint64
	// faults, when set, lets TryMapPages simulate mmap failure.
	faults atomic.Pointer[faultinject.Plane]
}

// NewSegment reserves the virtual range [base, base+size). base and size
// must be page-aligned. No page is mapped initially.
func NewSegment(base, size uint64, name string) *Segment {
	if base%PageSize != 0 || size%PageSize != 0 {
		panic(fmt.Sprintf("vmem: segment %q not page aligned: base=0x%x size=0x%x", name, base, size))
	}
	if size == 0 {
		panic("vmem: empty segment")
	}
	nChunks := (size + chunkBytes - 1) / chunkBytes
	return &Segment{
		base:   base,
		size:   size,
		name:   name,
		chunks: make([]atomic.Pointer[chunk], nChunks),
	}
}

// Base returns the first address of the segment.
func (s *Segment) Base() uint64 { return s.base }

// Size returns the reserved length of the segment in bytes.
func (s *Segment) Size() uint64 { return s.size }

// End returns one past the last reservable address.
func (s *Segment) End() uint64 { return s.base + s.size }

// Name returns the segment's diagnostic name.
func (s *Segment) Name() string { return s.name }

// MappedBytes returns the number of currently mapped bytes, the simulation's
// analog of the resident set size contribution of this segment.
func (s *Segment) MappedBytes() uint64 { return s.mappedBytes.Load() }

// contains reports whether addr falls inside the reservation.
func (s *Segment) contains(addr uint64) bool {
	return addr >= s.base && addr < s.base+s.size
}

// chunkFor returns the chunk covering addr, allocating it if needed and
// ensure is true. Publication is by compare-and-swap so concurrent callers
// agree on a single chunk.
func (s *Segment) chunkFor(addr uint64, ensure bool) *chunk {
	idx := (addr - s.base) >> chunkShift
	c := s.chunks[idx].Load()
	if c == nil && ensure {
		fresh := new(chunk)
		if s.chunks[idx].CompareAndSwap(nil, fresh) {
			c = fresh
		} else {
			c = s.chunks[idx].Load()
		}
	}
	return c
}

// MapPages marks n pages starting at page-aligned addr as mapped, allocating
// backing as needed. Re-mapping an already mapped page is a no-op. The
// newly mapped pages read as zero.
func (s *Segment) MapPages(addr uint64, n int) {
	if addr%PageSize != 0 {
		panic(fmt.Sprintf("vmem: MapPages unaligned addr 0x%x", addr))
	}
	for i := 0; i < n; i++ {
		pa := addr + uint64(i)*PageSize
		if !s.contains(pa) {
			panic(fmt.Sprintf("vmem: MapPages outside segment %q: 0x%x", s.name, pa))
		}
		c := s.chunkFor(pa, true)
		pi := (pa - s.base) % chunkBytes / PageSize
		if !c.mapped[pi].Swap(true) {
			s.mappedBytes.Add(PageSize)
		}
	}
}

// InjectFaults attaches a fault-injection plane; subsequent TryMapPages
// calls consult its VmemMap site. A nil plane disables injection.
func (s *Segment) InjectFaults(p *faultinject.Plane) {
	s.faults.Store(p)
}

// TryMapPages is MapPages with a fallible contract: it maps n pages at addr
// or returns ErrNoMemory without mapping any of them. The only failure
// source is the fault-injection plane (the simulation's backing store cannot
// actually run out), but callers must treat it exactly like a real ENOMEM
// from mmap: unwind bookkeeping and surface an allocation failure.
func (s *Segment) TryMapPages(addr uint64, n int) error {
	if s.faults.Load().Fail(faultinject.VmemMap) {
		return ErrNoMemory
	}
	s.MapPages(addr, n)
	return nil
}

// UnmapPages marks n pages starting at page-aligned addr as unmapped,
// simulating their return to the operating system. Subsequent accesses
// fault.
func (s *Segment) UnmapPages(addr uint64, n int) {
	if addr%PageSize != 0 {
		panic(fmt.Sprintf("vmem: UnmapPages unaligned addr 0x%x", addr))
	}
	for i := 0; i < n; i++ {
		pa := addr + uint64(i)*PageSize
		if !s.contains(pa) {
			panic(fmt.Sprintf("vmem: UnmapPages outside segment %q: 0x%x", s.name, pa))
		}
		c := s.chunkFor(pa, false)
		if c == nil {
			continue
		}
		pi := (pa - s.base) % chunkBytes / PageSize
		if c.mapped[pi].Swap(false) {
			s.mappedBytes.Add(^uint64(PageSize - 1))
			// Zero the page now so a later remap reads as fresh memory.
			// Fresh chunks are born zero, so mapping never needs to zero.
			w := (pa - s.base) % chunkBytes / WordSize
			for j := uint64(0); j < PageSize/WordSize; j++ {
				atomic.StoreUint64(&c.words[w+j], 0)
			}
		}
	}
}

// pageMapped reports whether the page containing addr is mapped, returning
// the chunk when it is.
func (s *Segment) pageMapped(addr uint64) (*chunk, bool) {
	c := s.chunkFor(addr, false)
	if c == nil {
		return nil, false
	}
	pi := (addr - s.base) % chunkBytes / PageSize
	if !c.mapped[pi].Load() {
		return nil, false
	}
	return c, true
}

// LoadWord reads the aligned word at addr, which must lie in the segment.
// It skips the canonical-form and segment-lookup checks that
// AddressSpace.LoadWord performs, so it is the fast path for subsystems that
// already know the segment (e.g. the allocator's realloc copy).
func (s *Segment) LoadWord(addr uint64) (uint64, *Fault) { return s.loadWord(addr) }

// StoreWord writes the aligned word at addr; see LoadWord for the contract.
func (s *Segment) StoreWord(addr, val uint64) *Fault { return s.storeWord(addr, val) }

// CASWord compare-and-swaps the aligned word at addr; see LoadWord for the
// contract.
func (s *Segment) CASWord(addr, old, new uint64) (bool, *Fault) { return s.casWord(addr, old, new) }

// loadWord reads the aligned word at addr.
func (s *Segment) loadWord(addr uint64) (uint64, *Fault) {
	c, ok := s.pageMapped(addr)
	if !ok {
		return 0, &Fault{Addr: addr, Kind: FaultUnmapped}
	}
	w := (addr - s.base) % chunkBytes / WordSize
	return atomic.LoadUint64(&c.words[w]), nil
}

// storeWord writes the aligned word at addr.
func (s *Segment) storeWord(addr, val uint64) *Fault {
	c, ok := s.pageMapped(addr)
	if !ok {
		return &Fault{Addr: addr, Kind: FaultUnmapped}
	}
	w := (addr - s.base) % chunkBytes / WordSize
	atomic.StoreUint64(&c.words[w], val)
	return nil
}

// casWord performs an atomic compare-and-swap on the aligned word at addr.
func (s *Segment) casWord(addr, old, new uint64) (bool, *Fault) {
	c, ok := s.pageMapped(addr)
	if !ok {
		return false, &Fault{Addr: addr, Kind: FaultUnmapped}
	}
	w := (addr - s.base) % chunkBytes / WordSize
	return atomic.CompareAndSwapUint64(&c.words[w], old, new), nil
}
