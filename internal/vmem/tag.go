// Software pointer tagging in the unused high bits of user-space addresses
// (the xTag scheme). The simulated address space enforces one canonical-form
// rule — Canonical: bits 47..63 all zero — so any pointer carrying a tag is
// non-canonical and faults if dereferenced raw. That is deliberate: the
// runtime (internal/proc) strips and checks tags at every address-consuming
// operation, so a tagged pointer that escapes the checked paths behaves like
// an invalidated one instead of silently aliasing memory.
//
// Bit layout of a tagged pointer:
//
//	bit  63        : reserved for DangSan's invalid bit (never part of a tag)
//	bits 48..62    : 15-bit generation tag (TagBits), zero means "untagged"
//	bits 0..47     : the address, canonical on its own after StripTag
package vmem

const (
	// TagShift is the lowest bit of the tag field.
	TagShift = 48
	// TagBits is the width of the tag field; tags live in
	// bits TagShift..TagShift+TagBits-1, leaving bit 63 untouched.
	TagBits = 15
	// TagMask selects the tag field of a pointer.
	TagMask = uint64(1<<TagBits-1) << TagShift
	// MaxTag is the largest valid tag value. Tag 0 means "untagged": a
	// generation counter that wraps must skip it, and after 1<<TagBits-1
	// generations a stale pointer may alias a live tag again — the xTag
	// false-negative window the differ pins down.
	MaxTag = 1<<TagBits - 1
)

// PointerTag extracts the tag field of addr (0 for untagged pointers).
func PointerTag(addr uint64) uint64 {
	return (addr & TagMask) >> TagShift
}

// StripTag clears the tag field, recovering the canonical address (assuming
// bit 63 is clear, which the tagger never sets).
func StripTag(addr uint64) uint64 {
	return addr &^ TagMask
}

// WithTag embeds tag into addr's tag field, replacing any existing tag.
// tag must be <= MaxTag.
func WithTag(addr, tag uint64) uint64 {
	return addr&^TagMask | tag<<TagShift
}

// DecodeTag splits a possibly-tagged pointer into its canonical address and
// tag, reporting whether a tag was present. Like pointerlog.DecodeFault for
// the invalid bit, it recognizes the non-canonical-but-recoverable form: the
// stripped address must itself be canonical and bit 63 clear.
func DecodeTag(addr uint64) (orig, tag uint64, tagged bool) {
	orig = StripTag(addr)
	tag = PointerTag(addr)
	return orig, tag, tag != 0 && Canonical(orig)
}
