package vmem

import "testing"

// TestCanonicalRule pins the single canonical-form rule the simulation
// enforces: a user-space address is canonical iff bits 47..63 are all zero.
// Pointers carrying an xTag generation tag or DangSan's invalid bit are
// explicitly non-canonical (they fault if dereferenced raw) but recognized:
// DecodeTag and the invalid-bit decoding recover the original address.
func TestCanonicalRule(t *testing.T) {
	cases := []struct {
		name string
		addr uint64
		want bool
	}{
		{"zero", 0, true},
		{"heap base", HeapBase, true},
		{"globals base", GlobalsBase, true},
		{"stacks base", StacksBase, true},
		{"last canonical", 1<<47 - 1, true},
		{"bit 47 set", 1 << 47, false},
		{"tagged heap pointer", WithTag(HeapBase, 1), false},
		{"max tag", WithTag(HeapBase, MaxTag), false},
		{"invalid bit", HeapBase | 1<<63, false},
		{"kernel half", 0xFFFF_8000_0000_0000, false},
		{"all ones", ^uint64(0), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Canonical(c.addr); got != c.want {
				t.Errorf("Canonical(0x%x) = %v, want %v", c.addr, got, c.want)
			}
		})
	}
}

// TestTagHelpers pins the tag field layout: bits 48..62, bit 63 untouched.
func TestTagHelpers(t *testing.T) {
	cases := []struct {
		name       string
		addr       uint64
		tag        uint64
		orig       uint64
		recognized bool
	}{
		{"untagged", HeapBase + 0x40, 0, HeapBase + 0x40, false},
		{"tag 1", WithTag(HeapBase+0x40, 1), 1, HeapBase + 0x40, true},
		{"max tag", WithTag(HeapBase, MaxTag), MaxTag, HeapBase, true},
		// Bit 63 is outside the tag field: an invalidated pointer has no
		// tag, and stripping must not clear the invalid bit.
		{"invalid bit only", HeapBase | 1<<63, 0, HeapBase | 1<<63, false},
		// A tagged pointer whose stripped form is itself non-canonical is
		// not a recognizable tagged pointer (garbage, not a stale tag).
		{"tag over junk", WithTag(1<<47|0x8, 3), 3, 1<<47 | 0x8, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := PointerTag(c.addr); got != c.tag {
				t.Errorf("PointerTag(0x%x) = %d, want %d", c.addr, got, c.tag)
			}
			orig, tag, tagged := DecodeTag(c.addr)
			if orig != c.orig || tag != c.tag || tagged != c.recognized {
				t.Errorf("DecodeTag(0x%x) = (0x%x, %d, %v), want (0x%x, %d, %v)",
					c.addr, orig, tag, tagged, c.orig, c.tag, c.recognized)
			}
		})
	}

	// Round trip: WithTag then StripTag is the identity on the address
	// bits for every tag value boundary.
	for _, tag := range []uint64{1, 2, 1 << 7, MaxTag} {
		p := WithTag(HeapBase+0x1238, tag)
		if StripTag(p) != HeapBase+0x1238 {
			t.Errorf("StripTag(WithTag(.., %d)) lost address bits: 0x%x", tag, StripTag(p))
		}
		if p&(1<<63) != 0 {
			t.Errorf("WithTag(.., %d) touched bit 63", tag)
		}
	}
}

// TestTaggedAccessFaults pins that a tagged pointer dereferenced raw — i.e.
// without the runtime's strip-and-check — faults as non-canonical, exactly
// like an invalidated pointer. This is the property that makes tag escapes
// fail loudly instead of corrupting memory.
func TestTaggedAccessFaults(t *testing.T) {
	as := New()
	as.Heap().MapPages(HeapBase, 1)
	if _, f := as.LoadWord(HeapBase); f != nil {
		t.Fatalf("untagged load: %v", f)
	}
	tagged := WithTag(HeapBase, 7)
	if _, f := as.LoadWord(tagged); f == nil || f.Kind != FaultNonCanonical {
		t.Fatalf("tagged raw load: fault %v, want non-canonical", f)
	}
}
