package interp_test

import (
	"strings"
	"testing"

	"dangsan/internal/detectors"
	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/instrument"
	"dangsan/internal/interp"
	"dangsan/internal/ir"
	"dangsan/internal/irparse"
	"dangsan/internal/vmem"
)

func run(t *testing.T, src string, det detectors.Detector, instrumented bool) *interp.Result {
	t.Helper()
	m, err := irparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if instrumented {
		if _, err := instrument.Pass(m, instrument.DefaultOptions()); err != nil {
			t.Fatal(err)
		}
	}
	res, err := interp.New(m, det, interp.Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestArithmeticAndControlFlow(t *testing.T) {
	// Sum of 1..10 via a loop.
	src := `
func main() i64 {
entry:
  r0 = mov 0
  r1 = mov 1
  br head
head:
  r2 = icmp le r1, 10
  br r2, body, exit
body:
  r0 = add r0, r1
  r1 = add r1, 1
  br head
exit:
  ret r0
}`
	res := run(t, src, detectors.None{}, false)
	if res.Trap != nil {
		t.Fatal(res.Trap)
	}
	if res.Ret != 55 {
		t.Fatalf("ret = %d", res.Ret)
	}
}

func TestOpcodes(t *testing.T) {
	src := `
func main() i64 {
entry:
  r0 = mov 100
  r1 = sub r0, 30     ; 70
  r2 = mul r1, 2      ; 140
  r3 = div r2, 7      ; 20
  r4 = rem r3, 6      ; 2
  r5 = shl r4, 4      ; 32
  r6 = shr r5, 1      ; 16
  r7 = or r6, 1       ; 17
  r8 = and r7, 0xFE   ; 16
  r9 = xor r8, 3      ; 19
  ret r9
}`
	res := run(t, src, detectors.None{}, false)
	if res.Trap != nil || res.Ret != 19 {
		t.Fatalf("ret = %d, trap = %v", res.Ret, res.Trap)
	}
}

func TestSignedCompare(t *testing.T) {
	src := `
func main() i64 {
entry:
  r0 = mov -5
  r1 = icmp slt r0, 3   ; signed: true
  r2 = icmp lt r0, 3    ; unsigned: false (huge value)
  r3 = shl r1, 1
  r4 = or r3, r2
  ret r4
}`
	res := run(t, src, detectors.None{}, false)
	if res.Ret != 2 {
		t.Fatalf("ret = %d, want 2", res.Ret)
	}
}

func TestHeapAndMemory(t *testing.T) {
	src := `
func main() i64 {
entry:
  r0 = malloc 64
  store i64 [r0], 41
  r1 = load i64 [r0]
  r2 = add r1, 1
  r3 = gep r0, 8
  store i64 [r3], r2
  r4 = load i64 [r3]
  free r0
  ret r4
}`
	res := run(t, src, detectors.None{}, false)
	if res.Trap != nil || res.Ret != 42 {
		t.Fatalf("ret = %d, trap = %v", res.Ret, res.Trap)
	}
}

func TestCallsAndRecursion(t *testing.T) {
	src := `
func fib(n i64) i64 {
entry:
  r1 = icmp lt n, 2
  br r1, base, rec
base:
  ret n
rec:
  r2 = sub n, 1
  r3 = call fib(r2)
  r4 = sub n, 2
  r5 = call fib(r4)
  r6 = add r3, r5
  ret r6
}
func main() i64 {
entry:
  r0 = call fib(10)
  ret r0
}`
	res := run(t, src, detectors.None{}, false)
	if res.Trap != nil || res.Ret != 55 {
		t.Fatalf("fib(10) = %d, trap = %v", res.Ret, res.Trap)
	}
}

func TestAllocaStackDiscipline(t *testing.T) {
	src := `
func child() i64 {
entry:
  r0 = alloca 32
  store i64 [r0], 7
  r1 = load i64 [r0]
  ret r1
}
func main() i64 {
entry:
  r0 = call child()
  r1 = call child()
  r2 = add r0, r1
  ret r2
}`
	res := run(t, src, detectors.None{}, false)
	if res.Trap != nil || res.Ret != 14 {
		t.Fatalf("ret = %d, trap = %v", res.Ret, res.Trap)
	}
}

func TestPrintOutput(t *testing.T) {
	src := `
func main() {
entry:
  print 1
  print -2
  ret
}`
	m, err := irparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res, err := interp.New(m, detectors.None{}, interp.Options{Output: &sb}).Run()
	if err != nil || res.Trap != nil {
		t.Fatal(err, res.Trap)
	}
	if sb.String() != "1\n-2\n" {
		t.Fatalf("output = %q", sb.String())
	}
}

func TestSpawnJoin(t *testing.T) {
	src := `
global sum 8
func worker(n i64) {
entry:
  r1 = global sum
  r2 = load i64 [r1]
  r3 = add r2, n
  store i64 [r1], r3
  ret
}
func main() i64 {
entry:
  r0 = spawn worker(40)
  join r0
  r1 = spawn worker(2)
  join r1
  r2 = global sum
  r3 = load i64 [r2]
  ret r3
}`
	res := run(t, src, detectors.None{}, false)
	if res.Trap != nil || res.Ret != 42 {
		t.Fatalf("ret = %d, trap = %v", res.Ret, res.Trap)
	}
}

const uafProgram = `
global slot 8
func main() i64 {
entry:
  r0 = malloc 64
  r1 = global slot
  store ptr [r1], r0
  free r0
  r2 = load ptr [r1]     ; dangling (or invalidated) pointer
  r3 = load i64 [r2]     ; use after free
  ret r3
}`

func TestUAFUndetectedWithoutInstrumentation(t *testing.T) {
	// The baseline program reads freed memory successfully: the bug is
	// silent, which is the threat the paper addresses.
	res := run(t, uafProgram, detectors.None{}, false)
	if res.Trap != nil {
		t.Fatalf("baseline trapped: %v", res.Trap)
	}
}

func TestUAFTrappedUnderDangSan(t *testing.T) {
	res := run(t, uafProgram, dangsan.New(), true)
	if res.Trap == nil {
		t.Fatal("use-after-free not trapped")
	}
	if res.Trap.Fault == nil || res.Trap.Fault.Kind != vmem.FaultNonCanonical {
		t.Fatalf("trap = %v, want non-canonical fault", res.Trap)
	}
	// The fault address reveals the original pointer (top bit set).
	if res.Trap.Fault.Addr>>63 != 1 {
		t.Fatalf("fault address 0x%x lacks the invalid bit", res.Trap.Fault.Addr)
	}
}

func TestDoubleFreeTrappedUnderDangSan(t *testing.T) {
	src := `
global slot 8
func main() {
entry:
  r0 = malloc 64
  r1 = global slot
  store ptr [r1], r0
  r2 = load ptr [r1]
  free r2
  r3 = load ptr [r1]
  free r3             ; frees the invalidated pointer
  ret
}`
	res := run(t, src, dangsan.New(), true)
	if res.Trap == nil || res.Trap.Err == nil {
		t.Fatalf("trap = %v", res.Trap)
	}
	if !strings.Contains(res.Trap.Err.Error(), "attempt to free invalid pointer 0x8") {
		t.Fatalf("unexpected abort: %v", res.Trap.Err)
	}
}

func TestHoistedRegistrationStillProtects(t *testing.T) {
	// The loop optimization must not lose protection: the pointer stored in
	// the (free-less) loop is still invalidated at the later free.
	src := `
global slot 8
func main() i64 {
entry:
  r0 = malloc 64
  r1 = global slot
  r2 = mov 0
  br head
head:
  r3 = icmp lt r2, 50
  br r3, body, exit
body:
  store ptr [r1], r0
  r2 = add r2, 1
  br head
exit:
  free r0
  r4 = load ptr [r1]
  r5 = load i64 [r4]   ; must trap
  ret r5
}`
	m, err := irparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res0, err := instrument.Pass(m, instrument.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res0.Hoisted == 0 {
		t.Fatalf("expected hoisting to fire: %+v", res0)
	}
	res, err := interp.New(m, dangsan.New(), interp.Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap == nil || res.Trap.Fault == nil {
		t.Fatalf("hoisted program not protected: %v", res.Trap)
	}
}

func TestArithmeticElisionStillProtects(t *testing.T) {
	// p = p + 8 elides re-registration, but the original registration must
	// still invalidate the (now interior) pointer at free time.
	src := `
global slot 8
func main() i64 {
entry:
  r0 = malloc 64
  r1 = global slot
  store ptr [r1], r0
  r2 = load ptr [r1]
  r3 = gep r2, 8
  store ptr [r1], r3
  free r0
  r4 = load ptr [r1]
  r5 = load i64 [r4]
  ret r5
}`
	m, err := irparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := instrument.Pass(m, instrument.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if pres.ElidedArithmetic != 1 {
		t.Fatalf("elision did not fire: %+v", pres)
	}
	res, err := interp.New(m, dangsan.New(), interp.Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap == nil || res.Trap.Fault == nil {
		t.Fatalf("elided program not protected: %v", res.Trap)
	}
}

func TestMultithreadedUAFTrapped(t *testing.T) {
	// One thread stores a pointer; main frees; the worker's later use
	// traps. Join ordering makes the race deterministic.
	src := `
global slot 8
global obj 8
func storer() {
entry:
  r0 = malloc 64
  r1 = global obj
  store ptr [r1], r0
  r2 = global slot
  store ptr [r2], r0
  ret
}
func user() i64 {
entry:
  r0 = global slot
  r1 = load ptr [r0]
  r2 = load i64 [r1]
  ret r2
}
func main() {
entry:
  r0 = spawn storer()
  join r0
  r1 = global obj
  r2 = load ptr [r1]
  free r2
  r3 = spawn user()
  join r3
  ret
}`
	res := run(t, src, dangsan.New(), true)
	if res.Trap == nil || res.Trap.Fault == nil {
		t.Fatalf("cross-thread UAF not trapped: %v", res.Trap)
	}
	if res.Trap.Func != "user" {
		t.Fatalf("trap in %s, want user", res.Trap.Func)
	}
}

// TestRegisterResidentPointerEscapes documents the §7 limitation shared by
// every pointer-invalidation system: a pointer that lives only in a
// register (here: an IR register) is never stored to memory, so free-time
// invalidation cannot reach it, and its use after free is a silent false
// negative.
func TestRegisterResidentPointerEscapes(t *testing.T) {
	src := `
func main() i64 {
entry:
  r0 = malloc 64
  store i64 [r0], 7      ; plain data write, not a tracked pointer store
  free r0
  r1 = load i64 [r0]     ; UAF through the register copy: NOT caught
  ret r1
}`
	res := run(t, src, dangsan.New(), true)
	if res.Trap != nil {
		t.Fatalf("register-resident UAF unexpectedly trapped: %v", res.Trap)
	}
	if res.Ret != 7 {
		t.Fatalf("ret = %d", res.Ret)
	}
}

func TestStepLimit(t *testing.T) {
	src := `
func main() {
entry:
  br entry
}`
	m, err := irparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.New(m, detectors.None{}, interp.Options{MaxSteps: 1000}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap == nil || !strings.Contains(res.Trap.Err.Error(), "step limit") {
		t.Fatalf("empty-loop trap = %v", res.Trap)
	}
	src2 := `
func main() {
entry:
  r0 = mov 0
  br entry
}`
	m2, _ := irparse.Parse(src2)
	res2, err := interp.New(m2, detectors.None{}, interp.Options{MaxSteps: 1000}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trap == nil || !strings.Contains(res2.Trap.Err.Error(), "step limit") {
		t.Fatalf("trap = %v", res2.Trap)
	}
}

func TestDivisionByZeroTraps(t *testing.T) {
	src := `
func main() i64 {
entry:
  r0 = mov 0
  r1 = div 5, r0
  ret r1
}`
	res := run(t, src, detectors.None{}, false)
	if res.Trap == nil || !strings.Contains(res.Trap.Err.Error(), "division by zero") {
		t.Fatalf("trap = %v", res.Trap)
	}
}

func TestNullDereferenceTraps(t *testing.T) {
	src := `
func main() i64 {
entry:
  r0 = mov 0
  r1 = load i64 [r0]
  ret r1
}`
	res := run(t, src, detectors.None{}, false)
	if res.Trap == nil || res.Trap.Fault == nil || res.Trap.Fault.Kind != vmem.FaultNoSegment {
		t.Fatalf("trap = %v", res.Trap)
	}
}

func TestReallocProgram(t *testing.T) {
	src := `
global slot 8
func main() i64 {
entry:
  r0 = malloc 64
  store i64 [r0], 99
  r1 = global slot
  store ptr [r1], r0
  r2 = realloc r0, 2097152   ; forces a move
  r3 = load i64 [r2]         ; data preserved
  r4 = load ptr [r1]         ; old pointer was invalidated
  r5 = shr r4, 63
  r6 = mul r5, 100
  r7 = add r3, r6            ; 99 + 100
  free r2
  ret r7
}`
	res := run(t, src, dangsan.New(), true)
	if res.Trap != nil {
		t.Fatal(res.Trap)
	}
	if res.Ret != 199 {
		t.Fatalf("ret = %d, want 199", res.Ret)
	}
}

func TestMissingEntry(t *testing.T) {
	m, _ := irparse.Parse("func f() {\nentry:\n  ret\n}")
	if _, err := interp.New(m, detectors.None{}, interp.Options{}).Run(); err == nil {
		t.Fatal("missing main accepted")
	}
}

func mustOp(t *testing.T, f *ir.Func, op ir.Op) {
	t.Helper()
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == op {
				return
			}
		}
	}
	t.Fatalf("op %v not found", op)
}

func TestInstrumentedModulePrintsAndReruns(t *testing.T) {
	m, err := irparse.Parse(uafProgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := instrument.Pass(m, instrument.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	mustOp(t, m.Funcs["main"], ir.OpRegPtr)
	// The instrumented module's textual form re-parses and still protects.
	m2, err := irparse.Parse(m.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, m.String())
	}
	res, err := interp.New(m2, dangsan.New(), interp.Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap == nil {
		t.Fatal("reparsed instrumented program not protected")
	}
}
