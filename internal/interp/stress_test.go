package interp_test

import (
	"fmt"
	"strings"
	"testing"

	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/instrument"
	"dangsan/internal/interp"
	"dangsan/internal/irparse"
)

// TestManyThreadsStress spawns a fleet of worker threads that each churn
// private heap objects through a shared global counter region, then joins
// them all — exercising the interpreter's thread handling and the
// detector's per-thread logs under real goroutine concurrency.
func TestManyThreadsStress(t *testing.T) {
	const workers = 24
	var sb strings.Builder
	sb.WriteString(`
global counters 512
func worker(idx i64) {
entry:
  r1 = mov 0
  br head
head:
  r2 = icmp lt r1, 50
  br r2, body, done
body:
  r3 = malloc 64
  r4 = global counters
  r5 = mul idx, 8
  r6 = gep r4, r5
  store ptr [r6], r3
  r7 = load i64 [r3]
  free r3
  r1 = add r1, 1
  br head
done:
  ret
}
func main() i64 {
entry:
`)
	for i := 0; i < workers; i++ {
		fmt.Fprintf(&sb, "  r%d = spawn worker(%d)\n", i, i)
	}
	for i := 0; i < workers; i++ {
		fmt.Fprintf(&sb, "  join r%d\n", i)
	}
	sb.WriteString("  ret 0\n}\n")

	m, err := irparse.Parse(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := instrument.Pass(m, instrument.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	det := dangsan.New()
	res, err := interp.New(m, det, interp.Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil {
		t.Fatalf("trap: %v", res.Trap)
	}
	s := det.Stats()
	if s.ObjectsTracked != workers*50 {
		t.Fatalf("objects = %d, want %d", s.ObjectsTracked, workers*50)
	}
	// Each stored pointer is invalidated when its object is freed in the
	// same iteration.
	if s.Invalidated != workers*50 {
		t.Fatalf("invalidated = %d, want %d", s.Invalidated, workers*50)
	}
}
