// Package interp executes ir.Module programs on the simulated process
// runtime. It is the "instrumented binary" of the paper's Figure 1: raw
// stores write simulated memory directly, while the OpRegPtr hooks that the
// instrumentation pass inserted invoke the detector — so running the same
// program with and without the pass (or with different detectors) measures
// exactly the instrumentation cost.
//
// A simulated crash (segmentation fault, allocator abort, division by zero)
// stops the faulting thread and surfaces as a Trap; for a DangSan-protected
// program with a use-after-free bug, that Trap carries the non-canonical
// fault address that proves the dangling dereference was caught.
package interp

import (
	"fmt"
	"io"
	"sync"

	"dangsan/internal/detectors"
	"dangsan/internal/ir"
	"dangsan/internal/proc"
	"dangsan/internal/vmem"
)

// Trap describes an abnormal program stop.
type Trap struct {
	// Fault is set for simulated memory faults.
	Fault *vmem.Fault
	// Err is set for allocator aborts and runtime errors.
	Err error
	// Func and Instr locate the trapping instruction.
	Func  string
	Instr string
}

func (t *Trap) Error() string {
	loc := fmt.Sprintf("%s: %s", t.Func, t.Instr)
	if t.Fault != nil {
		return fmt.Sprintf("trap at %s: %v", loc, t.Fault)
	}
	return fmt.Sprintf("trap at %s: %v", loc, t.Err)
}

// Options configure a run.
type Options struct {
	// Entry is the function to run; defaults to "main".
	Entry string
	// Args are the entry function's arguments.
	Args []uint64
	// Output receives OpPrint output; nil discards it.
	Output io.Writer
	// MaxSteps bounds instructions per thread (0 = default 100M).
	MaxSteps uint64
	// Proc configures the underlying process (heap size, allocator-level
	// fault injection). The zero value is the standard layout.
	Proc proc.Options
}

// Result reports a completed run.
type Result struct {
	// Ret is the entry function's return value (0 for void).
	Ret uint64
	// Trap is non-nil if any thread trapped; the entry thread's trap takes
	// priority, otherwise the first spawned thread's.
	Trap *Trap
}

// Runtime executes one module against one process.
type Runtime struct {
	mod  *ir.Module
	p    *proc.Process
	opts Options

	globalMu sync.Mutex
	globals  map[string]uint64

	threadMu  sync.Mutex
	threads   map[uint64]*threadState
	nextTh    uint64
	firstTrap *Trap
}

type threadState struct {
	done chan struct{}
	trap *Trap
}

// New creates a runtime for the module over a fresh process guarded by det.
func New(mod *ir.Module, det detectors.Detector, opts Options) *Runtime {
	if opts.Entry == "" {
		opts.Entry = "main"
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 100_000_000
	}
	rt := &Runtime{
		mod:     mod,
		p:       proc.NewWithOptions(det, opts.Proc),
		opts:    opts,
		globals: make(map[string]uint64),
		threads: make(map[uint64]*threadState),
	}
	for _, g := range mod.Globals {
		rt.globals[g.Name] = rt.p.AllocGlobal(g.Size)
	}
	return rt
}

// Process exposes the underlying process (for inspecting memory after a
// run).
func (rt *Runtime) Process() *proc.Process { return rt.p }

// Run executes the entry function to completion, waiting for all spawned
// threads that were joined; unjoined threads are not waited for.
func (rt *Runtime) Run() (*Result, error) {
	entry, ok := rt.mod.Funcs[rt.opts.Entry]
	if !ok {
		return nil, fmt.Errorf("interp: no function %q", rt.opts.Entry)
	}
	if len(rt.opts.Args) != len(entry.Params) {
		return nil, fmt.Errorf("interp: %s takes %d args, got %d",
			entry.Name, len(entry.Params), len(rt.opts.Args))
	}
	th := rt.p.NewThread()
	ex := &executor{rt: rt, th: th}
	ret, trap := ex.callFunc(entry, rt.opts.Args)
	// Retire any deferred-free quarantine before reporting: post-run
	// checks (LiveObjects, dangling-pointer state, audit identities) must
	// see the state an inline-free run would have reached.
	rt.p.Quiesce()
	res := &Result{Ret: ret, Trap: trap}
	if res.Trap == nil {
		rt.threadMu.Lock()
		res.Trap = rt.firstTrap
		rt.threadMu.Unlock()
	}
	return res, nil
}

// executor runs code on one thread.
type executor struct {
	rt    *Runtime
	th    *proc.Thread
	steps uint64
}

func (ex *executor) trapf(f *ir.Func, in *ir.Instr, fault *vmem.Fault, err error) *Trap {
	instr := "<terminator>"
	if in != nil {
		instr = in.String()
	}
	return &Trap{Fault: fault, Err: err, Func: f.Name, Instr: instr}
}

// traperr wraps an error from an allocator-facing operation, recognizing
// detected use-after-frees: checked-dereference detectors report a stale
// free/realloc as a *vmem.Fault, which must surface in Trap.Fault like any
// other simulated memory fault.
func (ex *executor) traperr(f *ir.Func, in *ir.Instr, err error) *Trap {
	if fault, ok := err.(*vmem.Fault); ok {
		return ex.trapf(f, in, fault, nil)
	}
	return ex.trapf(f, in, nil, err)
}

// callFunc executes f with the given arguments, returning its value.
func (ex *executor) callFunc(f *ir.Func, args []uint64) (uint64, *Trap) {
	regs := make([]uint64, f.NumRegs)
	copy(regs, args)
	mark := ex.th.StackMark()
	defer ex.th.FreeStack(mark)

	val := func(v ir.Value) uint64 {
		if v.IsReg {
			return regs[v.Reg]
		}
		return v.Imm
	}

	bi := 0
	for {
		b := f.Blocks[bi]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			ex.steps++
			if ex.steps > ex.rt.opts.MaxSteps {
				return 0, ex.trapf(f, in, nil, fmt.Errorf("step limit exceeded"))
			}
			switch in.Op {
			case ir.OpMov:
				regs[in.Dst] = val(in.A)
			case ir.OpAdd:
				regs[in.Dst] = val(in.A) + val(in.B)
			case ir.OpSub:
				regs[in.Dst] = val(in.A) - val(in.B)
			case ir.OpMul:
				regs[in.Dst] = val(in.A) * val(in.B)
			case ir.OpDiv:
				d := val(in.B)
				if d == 0 {
					return 0, ex.trapf(f, in, nil, fmt.Errorf("division by zero"))
				}
				regs[in.Dst] = val(in.A) / d
			case ir.OpRem:
				d := val(in.B)
				if d == 0 {
					return 0, ex.trapf(f, in, nil, fmt.Errorf("division by zero"))
				}
				regs[in.Dst] = val(in.A) % d
			case ir.OpAnd:
				regs[in.Dst] = val(in.A) & val(in.B)
			case ir.OpOr:
				regs[in.Dst] = val(in.A) | val(in.B)
			case ir.OpXor:
				regs[in.Dst] = val(in.A) ^ val(in.B)
			case ir.OpShl:
				regs[in.Dst] = val(in.A) << (val(in.B) & 63)
			case ir.OpShr:
				regs[in.Dst] = val(in.A) >> (val(in.B) & 63)
			case ir.OpICmp:
				regs[in.Dst] = icmp(in.Pred, val(in.A), val(in.B))
			case ir.OpGep:
				regs[in.Dst] = val(in.A) + val(in.B)
			case ir.OpLoad:
				var v uint64
				var fault *vmem.Fault
				if in.NoCheck {
					v, fault = ex.th.LoadNoCheck(val(in.A))
				} else {
					v, fault = ex.th.Load(val(in.A))
				}
				if fault != nil {
					return 0, ex.trapf(f, in, fault, nil)
				}
				regs[in.Dst] = v
			case ir.OpStore:
				// Raw store: instrumentation is explicit via OpRegPtr.
				var fault *vmem.Fault
				if in.NoCheck {
					fault = ex.th.StoreIntNoCheck(val(in.A), val(in.B))
				} else {
					fault = ex.th.StoreInt(val(in.A), val(in.B))
				}
				if fault != nil {
					return 0, ex.trapf(f, in, fault, nil)
				}
			case ir.OpRegPtr:
				ex.th.RegisterPtr(val(in.A), val(in.B))
			case ir.OpAlloca:
				regs[in.Dst] = ex.th.Alloca(in.Size)
			case ir.OpGlobal:
				regs[in.Dst] = ex.rt.globals[in.Name]
			case ir.OpMalloc:
				addr, err := ex.th.Malloc(val(in.A))
				if err != nil {
					return 0, ex.trapf(f, in, nil, err)
				}
				regs[in.Dst] = addr
			case ir.OpFree:
				if err := ex.th.Free(val(in.A)); err != nil {
					return 0, ex.traperr(f, in, err)
				}
			case ir.OpRealloc:
				addr, err := ex.th.Realloc(val(in.A), val(in.B))
				if err != nil {
					return 0, ex.traperr(f, in, err)
				}
				regs[in.Dst] = addr
			case ir.OpCall:
				callee := ex.rt.mod.Funcs[in.Name]
				args := make([]uint64, len(in.Args))
				for j, a := range in.Args {
					args[j] = val(a)
				}
				ret, trap := ex.callFunc(callee, args)
				if trap != nil {
					return 0, trap
				}
				if in.Dst >= 0 {
					regs[in.Dst] = ret
				}
			case ir.OpSpawn:
				args := make([]uint64, len(in.Args))
				for j, a := range in.Args {
					args[j] = val(a)
				}
				regs[in.Dst] = ex.rt.spawn(in.Name, args)
			case ir.OpJoin:
				if trap := ex.rt.join(val(in.A)); trap != nil {
					return 0, trap
				}
			case ir.OpPrint:
				if ex.rt.opts.Output != nil {
					fmt.Fprintf(ex.rt.opts.Output, "%d\n", int64(val(in.A)))
				}
			default:
				return 0, ex.trapf(f, in, nil, fmt.Errorf("bad opcode %v", in.Op))
			}
		}
		// Terminators count as steps too, so an empty infinite loop still
		// hits the step limit.
		ex.steps++
		if ex.steps > ex.rt.opts.MaxSteps {
			return 0, ex.trapf(f, nil, nil, fmt.Errorf("step limit exceeded"))
		}
		switch b.Term.Kind {
		case ir.TermBr:
			bi = b.Term.Then
		case ir.TermCondBr:
			if val(b.Term.Cond) != 0 {
				bi = b.Term.Then
			} else {
				bi = b.Term.Else
			}
		case ir.TermRet:
			if b.Term.HasVal {
				return val(b.Term.Cond), nil
			}
			return 0, nil
		}
	}
}

// spawn starts fn in a new simulated thread and returns a join handle.
func (rt *Runtime) spawn(fnName string, args []uint64) uint64 {
	fn := rt.mod.Funcs[fnName]
	rt.threadMu.Lock()
	rt.nextTh++
	handle := rt.nextTh
	st := &threadState{done: make(chan struct{})}
	rt.threads[handle] = st
	rt.threadMu.Unlock()
	go func() {
		th := rt.p.NewThread()
		ex := &executor{rt: rt, th: th}
		_, trap := ex.callFunc(fn, args)
		st.trap = trap
		if trap != nil {
			rt.threadMu.Lock()
			if rt.firstTrap == nil {
				rt.firstTrap = trap
			}
			rt.threadMu.Unlock()
		}
		th.Exit()
		close(st.done)
	}()
	return handle
}

// join waits for the thread and propagates its trap (like a crash taking
// down the process).
func (rt *Runtime) join(handle uint64) *Trap {
	rt.threadMu.Lock()
	st := rt.threads[handle]
	rt.threadMu.Unlock()
	if st == nil {
		return &Trap{Err: fmt.Errorf("join of unknown thread %d", handle), Func: "<join>", Instr: "join"}
	}
	<-st.done
	return st.trap
}

func icmp(p ir.Pred, a, b uint64) uint64 {
	var r bool
	switch p {
	case ir.PredEQ:
		r = a == b
	case ir.PredNE:
		r = a != b
	case ir.PredLT:
		r = a < b
	case ir.PredLE:
		r = a <= b
	case ir.PredGT:
		r = a > b
	case ir.PredGE:
		r = a >= b
	case ir.PredSLT:
		r = int64(a) < int64(b)
	case ir.PredSGT:
		r = int64(a) > int64(b)
	}
	if r {
		return 1
	}
	return 0
}
