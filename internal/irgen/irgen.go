// Package irgen generates random, well-defined IR programs together with a
// ground-truth oracle of their observable behaviour: printed output, return
// value, final heap/global state, and the exact number of dangling pointers
// each detector class must invalidate. The differential harness
// (internal/differ) runs each program through the full
// irparse → instrument → ir/opt → interp pipeline under every detector and
// pointer-log configuration and compares against the oracle.
//
// Programs are well-defined by construction: a location that ends up
// dangling (deliberately left pointing into a freed object) is never loaded
// and dereferenced again, so the uninstrumented reference run and every
// instrumented run must agree on all program-visible state. Mutation mode
// (Config.Mutate) appends one dangling load+dereference so that every
// detector's catch behaviour can be asserted too.
//
// Determinism: Generate(seed, cfg) is a pure function of its arguments —
// same seed, same program, same oracle.
package irgen

import (
	"fmt"
	"math/rand"
	"strings"

	"dangsan/internal/vmem"
)

// Config shapes generated programs.
type Config struct {
	// Stmts is the number of top-level statements in main (default 12).
	Stmts int
	// MaxLive bounds concurrently-live objects owned by main (default 4).
	MaxLive int
	// Threads is the number of spawned worker threads (0..4). Workers own
	// disjoint global-slot ranges and private objects, so their effects on
	// the oracle are order-independent.
	Threads int
	// Mutate appends a use-after-free tail: main stores a pointer to a
	// victim object into a heap field, frees the victim, and dereferences
	// the stale pointer. Detectors must trap; the baseline must not.
	Mutate bool
}

func (c Config) withDefaults() Config {
	if c.Stmts <= 0 {
		c.Stmts = 12
	}
	if c.MaxLive <= 0 {
		c.MaxLive = 4
	}
	if c.Threads < 0 {
		c.Threads = 0
	}
	if c.Threads > 4 {
		c.Threads = 4
	}
	return c
}

// CellKind classifies the expected final state of one 8-byte cell.
type CellKind int

const (
	// CellInt is a known integer value (all generated ints are small
	// non-negative constants, far below the heap base).
	CellInt CellKind = iota
	// CellLivePtr points at offset TargetOff into live object TargetObj.
	CellLivePtr
	// CellDangling held a pointer to offset TargetOff of freed object
	// TargetObj when that object was freed, and was deliberately never
	// overwritten afterwards. Detectors must have invalidated it per their
	// contract; the baseline must have left the raw address intact.
	CellDangling
)

// Cell is the expected final state of one memory cell: either a global slot
// (Global true) or a field of a live-at-exit object (Obj/Off).
type Cell struct {
	Global bool
	Slot   int    // global slot index when Global
	Obj    int    // owning live object id when !Global
	Off    uint64 // byte offset of the field when !Global

	Kind      CellKind
	Int       int64  // CellInt: the value
	TargetObj int    // CellLivePtr / CellDangling: pointee object id
	TargetOff uint64 // CellLivePtr / CellDangling: offset into pointee
}

// LiveObject describes an object expected to be live at exit. AnchorSlot is
// a global slot guaranteed to hold a pointer to the object's base, letting
// a checker recover the object's runtime address.
type LiveObject struct {
	ID         int
	Size       uint64
	AnchorSlot int
}

// Oracle is the recorded ground truth for a benign run. When Config.Mutate
// is set, only Output is meaningful (the run ends in a deliberate
// use-after-free, so final-state and counter fields describe the benign
// prefix and are not checked).
type Oracle struct {
	// Output is the exact sequence of printed values.
	Output []int64
	// Ret is main's return value.
	Ret int64
	// Mallocs counts explicit allocations (reallocs excluded: whether a
	// realloc moves — and therefore allocates — depends on the detector's
	// AllocPad, so tracked-object counts are only bounded by
	// [Mallocs, Mallocs+Reallocs]).
	Mallocs  int
	Reallocs int
	Frees    int
	// LiveAtExit is the number of heap objects still allocated at exit.
	LiveAtExit int
	// InvalidatedAll is the exact number of cells holding a dangling
	// pointer at the moment of the corresponding free, counting cells
	// anywhere in memory — the invalidation count for detectors that track
	// every location (dangsan, freesentry).
	InvalidatedAll uint64
	// InvalidatedHeap counts only the heap-resident subset — the
	// invalidation count for dangnull, which tracks heap locations only.
	InvalidatedHeap uint64
	// Live lists the objects expected to be live at exit.
	Live []LiveObject
	// Cells is the expected final state of every global slot and every
	// field of every live object.
	Cells []Cell
}

// DanglingCells counts the cells still dangling at exit. Under deferred
// (quarantine) invalidation a cell that dangled at free time may be
// overwritten before its epoch drains — the walk then classifies it stale —
// so the detector's invalidation count is only bounded:
// DanglingCells() <= invalidated <= InvalidatedAll. Cells dangling at exit
// are the guaranteed floor: they still hold the stale value when the final
// drain walks them.
func (o *Oracle) DanglingCells() uint64 {
	var n uint64
	for _, c := range o.Cells {
		if c.Kind == CellDangling {
			n++
		}
	}
	return n
}

// Clone deep-copies the oracle (the slices are shared otherwise), letting
// harness tests tamper with a copy.
func (o *Oracle) Clone() *Oracle {
	c := *o
	c.Output = append([]int64(nil), o.Output...)
	c.Live = append([]LiveObject(nil), o.Live...)
	c.Cells = append([]Cell(nil), o.Cells...)
	return &c
}

// Program is one generated program plus its oracle.
type Program struct {
	Seed          int64
	Config        Config
	Source        string
	Multithreaded bool
	NumSlots      int
	Oracle        Oracle
}

// SlotAddr returns the simulated address of global slot i. The generated
// program's only global is the cells array, and the globals segment hands
// out addresses from its base, so slot addresses are known statically.
func SlotAddr(i int) uint64 { return vmem.GlobalsBase + 8*uint64(i) }

// cellState is the generator's model of one cell.
type cellState struct {
	kind CellKind
	ival int64
	obj  *genObj // pointee (live for CellLivePtr, freed for CellDangling)
	off  uint64
}

// genObj models one heap object.
type genObj struct {
	id         int
	size       uint64
	anchorSlot int
	fields     []cellState
}

// gen is the shared generator state.
type gen struct {
	rng    *rand.Rand
	cfg    Config
	slots  []cellState
	nextID int
	oracle *Oracle
}

func (g *gen) newObj(size uint64, anchor int) *genObj {
	o := &genObj{id: g.nextID, size: size, anchorSlot: anchor,
		fields: make([]cellState, size/8)}
	g.nextID++
	g.oracle.Mallocs++
	return o
}

// Generate builds the program for (seed, cfg).
func Generate(seed int64, cfg Config) *Program {
	cfg = cfg.withDefaults()
	g := &gen{rng: rand.New(rand.NewSource(seed)), cfg: cfg, oracle: &Oracle{}}

	// Slot layout: main owns [0, mainSlots) with anchors first, then the
	// accumulator, then scratch; each worker owns a disjoint 6-slot range.
	const mainScratch = 6
	const wAnchors, wScratch = 2, 4
	mainSlots := cfg.MaxLive + 1 + mainScratch
	numSlots := mainSlots + cfg.Threads*(wAnchors+wScratch)
	g.slots = make([]cellState, numSlots) // zero-initialized, like the segment

	main := &ctx{
		g: g, name: "main", isMain: true,
		slotLo: 0, slotHi: mainSlots, baseSlot: 0,
		accSlot: cfg.MaxLive,
	}
	for a := 0; a < cfg.MaxLive; a++ {
		main.anchorFree = append(main.anchorFree, a)
	}
	for s := cfg.MaxLive + 1; s < mainSlots; s++ {
		main.scratch = append(main.scratch, s)
	}
	main.emit("r0 = global cells")
	main.baseReg = "r0"

	// Straight-line prefix. The first statement is always an allocation so
	// later statements have material to work with.
	main.stMalloc()
	for i := 1; i < cfg.Stmts; i++ {
		main.stmt(0)
	}

	// Thread section: generate each worker's body (applying its model
	// effects immediately — ranges are disjoint, so ordering against main's
	// remaining statements cannot matter), then spawn and join them all.
	var workers []*ctx
	for w := 0; w < cfg.Threads; w++ {
		lo := mainSlots + w*(wAnchors+wScratch)
		wc := &ctx{
			g: g, name: fmt.Sprintf("worker%d", w),
			slotLo: lo, slotHi: lo + wAnchors + wScratch,
			baseSlot: lo, baseReg: "base", accSlot: -1,
		}
		for a := 0; a < wAnchors; a++ {
			wc.anchorFree = append(wc.anchorFree, lo+a)
		}
		for s := lo + wAnchors; s < lo+wAnchors+wScratch; s++ {
			wc.scratch = append(wc.scratch, s)
		}
		wc.maxLive = wAnchors
		wc.stMalloc()
		for i := 1; i < 5; i++ {
			wc.stmt(0)
		}
		workers = append(workers, wc)
	}
	if cfg.Threads > 0 {
		var handles []string
		for w, wc := range workers {
			rb := main.reg()
			main.emit("%s = gep r0, %d", rb, 8*wc.slotLo)
			rh := main.reg()
			main.emit("%s = spawn worker%d(%s)", rh, w, rb)
			handles = append(handles, rh)
		}
		for _, rh := range handles {
			main.emit("join %s", rh)
		}
		// A short post-join tail keeps main active after the barrier.
		for i := 0; i < cfg.Stmts/3; i++ {
			main.stmt(0)
		}
	}

	// Make sure the program prints something.
	main.stPrintAcc()

	if cfg.Mutate {
		main.emitMutationTail()
	} else {
		ra := main.slotAddr(main.accSlot)
		rv := main.reg()
		main.emit("%s = load i64 [%s]", rv, ra)
		main.emit("ret %s", rv)
		g.oracle.Ret = main.accVal
	}

	// Assemble the module source.
	var sb strings.Builder
	fmt.Fprintf(&sb, "; generated by irgen: seed=%d stmts=%d threads=%d mutate=%v\n",
		seed, cfg.Stmts, cfg.Threads, cfg.Mutate)
	fmt.Fprintf(&sb, "global cells %d\n\n", 8*numSlots)
	sb.WriteString("func sink(v i64) i64 {\nentry:\n  r1 = mul v, 3\n  r2 = add r1, 7\n  ret r2\n}\n\n")
	sb.WriteString("func freeIt(p ptr) {\nentry:\n  free p\n  ret\n}\n\n")
	for w, wc := range workers {
		fmt.Fprintf(&sb, "func worker%d(base ptr) {\n", w)
		sb.WriteString(wc.body.String())
		sb.WriteString("  ret\n}\n\n")
	}
	sb.WriteString("func main() i64 {\nentry:\n")
	sb.WriteString(main.body.String())
	sb.WriteString("}\n")

	// Record the final expected state: every slot, then every live field.
	ctxs := append([]*ctx{main}, workers...)
	for i := range g.slots {
		g.oracle.Cells = append(g.oracle.Cells, stateToCell(g.slots[i], Cell{Global: true, Slot: i}))
	}
	for _, c := range ctxs {
		for _, o := range c.live {
			g.oracle.Live = append(g.oracle.Live, LiveObject{ID: o.id, Size: o.size, AnchorSlot: o.anchorSlot})
			g.oracle.LiveAtExit++
			for fi := range o.fields {
				g.oracle.Cells = append(g.oracle.Cells,
					stateToCell(o.fields[fi], Cell{Obj: o.id, Off: 8 * uint64(fi)}))
			}
		}
	}

	return &Program{
		Seed:          seed,
		Config:        cfg,
		Source:        sb.String(),
		Multithreaded: cfg.Threads > 0,
		NumSlots:      numSlots,
		Oracle:        *g.oracle,
	}
}

func stateToCell(st cellState, c Cell) Cell {
	c.Kind = st.kind
	switch st.kind {
	case CellInt:
		c.Int = st.ival
	case CellLivePtr, CellDangling:
		c.TargetObj = st.obj.id
		c.TargetOff = st.off
	}
	return c
}
