package irgen_test

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"dangsan/internal/detectors"
	"dangsan/internal/interp"
	"dangsan/internal/irgen"
	"dangsan/internal/irparse"
)

// TestDeterministic pins the generator's contract with the differ: the
// program and oracle are a pure function of (seed, config).
func TestDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		cfg := irgen.Config{Threads: int(seed % 3), Mutate: seed%5 == 0}
		a := irgen.Generate(seed, cfg)
		b := irgen.Generate(seed, cfg)
		if a.Source != b.Source {
			t.Fatalf("seed %d: source differs between generations", seed)
		}
		if !reflect.DeepEqual(a.Oracle, b.Oracle) {
			t.Fatalf("seed %d: oracle differs between generations", seed)
		}
	}
}

// TestSeedsDiffer guards against a degenerate generator that ignores its
// seed.
func TestSeedsDiffer(t *testing.T) {
	distinct := make(map[string]bool)
	for seed := int64(0); seed < 20; seed++ {
		distinct[irgen.Generate(seed, irgen.Config{}).Source] = true
	}
	if len(distinct) < 15 {
		t.Fatalf("only %d distinct programs from 20 seeds", len(distinct))
	}
}

// TestGeneratedProgramsParse sweeps seeds through the parser: every
// generated program must be syntactically valid.
func TestGeneratedProgramsParse(t *testing.T) {
	n := int64(300)
	if testing.Short() {
		n = 100
	}
	for seed := int64(0); seed < n; seed++ {
		cfg := irgen.Config{Threads: int(seed % 3), Mutate: seed%4 == 0}
		p := irgen.Generate(seed, cfg)
		if _, err := irparse.Parse(p.Source); err != nil {
			t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, p.Source)
		}
	}
}

// TestReferenceRunMatchesOracle runs generated programs uninstrumented
// under the no-op detector and checks the program-visible half of the
// oracle (output, return value, leak count). The detector-facing half is
// internal/differ's job.
func TestReferenceRunMatchesOracle(t *testing.T) {
	n := int64(100)
	if testing.Short() {
		n = 30
	}
	for seed := int64(0); seed < n; seed++ {
		p := irgen.Generate(seed, irgen.Config{Threads: int(seed % 3)})
		m, err := irparse.Parse(p.Source)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		var out bytes.Buffer
		rt := interp.New(m, detectors.None{}, interp.Options{Output: &out})
		res, err := rt.Run()
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		if res.Trap != nil {
			t.Fatalf("seed %d: trap: %v\nsource:\n%s", seed, res.Trap, p.Source)
		}
		if int64(res.Ret) != p.Oracle.Ret {
			t.Errorf("seed %d: ret %d, want %d", seed, int64(res.Ret), p.Oracle.Ret)
		}
		var want strings.Builder
		for _, v := range p.Oracle.Output {
			fmt.Fprintf(&want, "%d\n", v)
		}
		if out.String() != want.String() {
			t.Errorf("seed %d: output %q, want %q", seed, out.String(), want.String())
		}
		live := rt.Process().Allocator().Stats().LiveObjects
		if live != uint64(p.Oracle.LiveAtExit) {
			t.Errorf("seed %d: live objects %d, want %d", seed, live, p.Oracle.LiveAtExit)
		}
	}
}

// TestOracleShape sanity-checks structural invariants the differ relies on:
// anchors are live pointers at offset 0, counters are self-consistent, and
// every live object's fields appear exactly once in Cells.
func TestOracleShape(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		p := irgen.Generate(seed, irgen.Config{Threads: int(seed % 3)})
		o := p.Oracle
		if o.InvalidatedHeap > o.InvalidatedAll {
			t.Fatalf("seed %d: heap invalidations %d > total %d", seed, o.InvalidatedHeap, o.InvalidatedAll)
		}
		if o.LiveAtExit != len(o.Live) {
			t.Fatalf("seed %d: LiveAtExit %d != len(Live) %d", seed, o.LiveAtExit, len(o.Live))
		}
		if o.Mallocs < o.Frees+o.LiveAtExit {
			t.Fatalf("seed %d: mallocs %d < frees %d + live %d", seed, o.Mallocs, o.Frees, o.LiveAtExit)
		}
		fields := make(map[int]int)
		for _, c := range o.Cells {
			if c.Global {
				if c.Slot < 0 || c.Slot >= p.NumSlots {
					t.Fatalf("seed %d: cell slot %d out of range", seed, c.Slot)
				}
			} else {
				fields[c.Obj]++
			}
		}
		for _, lo := range o.Live {
			anchor := o.Cells[lo.AnchorSlot]
			if !anchor.Global || anchor.Kind != irgen.CellLivePtr ||
				anchor.TargetObj != lo.ID || anchor.TargetOff != 0 {
				t.Fatalf("seed %d: anchor slot %d does not hold object %d's base", seed, lo.AnchorSlot, lo.ID)
			}
			if got, want := fields[lo.ID], int(lo.Size/8); got != want {
				t.Fatalf("seed %d: object %d has %d field cells, want %d", seed, lo.ID, got, want)
			}
		}
	}
}
