package irgen

import (
	"fmt"
	"strings"
)

// ctx generates one function body (main or a worker) while maintaining the
// shared model. Each context owns a disjoint range of global slots and a
// private set of objects, so worker effects commute with main's.
type ctx struct {
	g      *gen
	name   string
	isMain bool
	body   strings.Builder

	nextReg int
	nextLbl int

	slotLo, slotHi int
	baseSlot       int    // slot index at offset 0 of baseReg
	baseReg        string // register holding the address of slot baseSlot
	accSlot        int    // accumulator slot index; -1 in workers
	accVal         int64

	anchorFree []int // anchor slots not currently holding a live object
	scratch    []int // freely writable slots
	live       []*genObj
	maxLive    int
}

func (c *ctx) emit(format string, a ...any) {
	fmt.Fprintf(&c.body, "  "+format+"\n", a...)
}

func (c *ctx) label(l string) { fmt.Fprintf(&c.body, "%s:\n", l) }

// reg returns a fresh register name. r0 is reserved (the cells base in
// main, the base parameter in workers).
func (c *ctx) reg() string {
	c.nextReg++
	return fmt.Sprintf("r%d", c.nextReg)
}

func (c *ctx) lbl(kind string) string {
	c.nextLbl++
	return fmt.Sprintf("L%d%s", c.nextLbl, kind)
}

// slotAddr emits the address computation for global slot i.
func (c *ctx) slotAddr(slot int) string {
	r := c.reg()
	c.emit("%s = gep %s, %d", r, c.baseReg, 8*(slot-c.baseSlot))
	return r
}

// cellRef names a writable cell: a global slot or a live object's field.
type cellRef struct {
	global bool
	slot   int
	obj    *genObj
	fi     int
}

func (c *ctx) state(r cellRef) *cellState {
	if r.global {
		return &c.g.slots[r.slot]
	}
	return &r.obj.fields[r.fi]
}

// addrOf emits code computing the cell's runtime address. Field addresses
// go through the owner's anchor slot, which by invariant always holds the
// owner's base pointer while it is live.
func (c *ctx) addrOf(r cellRef) string {
	if r.global {
		return c.slotAddr(r.slot)
	}
	ra := c.slotAddr(r.obj.anchorSlot)
	rp := c.reg()
	c.emit("%s = load ptr [%s]", rp, ra)
	rf := c.reg()
	c.emit("%s = gep %s, %d", rf, rp, 8*r.fi)
	return rf
}

// targets returns every freely writable cell: scratch slots plus all fields
// of live objects. Anchors and the accumulator are managed separately so
// their invariants hold.
func (c *ctx) targets() []cellRef {
	var out []cellRef
	for _, s := range c.scratch {
		out = append(out, cellRef{global: true, slot: s})
	}
	for _, o := range c.live {
		for fi := range o.fields {
			out = append(out, cellRef{obj: o, fi: fi})
		}
	}
	return out
}

func (c *ctx) pickTarget() (cellRef, bool) {
	ts := c.targets()
	if len(ts) == 0 {
		return cellRef{}, false
	}
	return ts[c.g.rng.Intn(len(ts))], true
}

// pickPtrCell returns a random cell currently holding a live pointer.
func (c *ctx) pickPtrCell() (cellRef, bool) {
	var out []cellRef
	for _, t := range c.targets() {
		if c.state(t).kind == CellLivePtr {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		return cellRef{}, false
	}
	return out[c.g.rng.Intn(len(out))], true
}

func (c *ctx) pickLive() (*genObj, bool) {
	if len(c.live) == 0 {
		return nil, false
	}
	return c.live[c.g.rng.Intn(len(c.live))], true
}

// externalRefs lists every cell outside o that currently points into o.
// Anchors of other objects cannot reference o, and the accumulator is
// always an integer, so scratch slots and other live objects' fields are
// the only candidates.
func (c *ctx) externalRefs(o *genObj) []cellRef {
	var out []cellRef
	for _, s := range c.scratch {
		if st := c.g.slots[s]; st.kind == CellLivePtr && st.obj == o {
			out = append(out, cellRef{global: true, slot: s})
		}
	}
	for _, p := range c.live {
		if p == o {
			continue
		}
		for fi := range p.fields {
			if st := p.fields[fi]; st.kind == CellLivePtr && st.obj == o {
				out = append(out, cellRef{obj: p, fi: fi})
			}
		}
	}
	return out
}

// stmt emits one random top-level statement, falling back to an
// always-possible integer store.
func (c *ctx) stmt(depth int) {
	if len(c.live) == 0 && len(c.anchorFree) > 0 && c.g.rng.Intn(2) == 0 {
		if c.stMalloc() {
			return
		}
	}
	for attempt := 0; attempt < 8; attempt++ {
		var ok bool
		switch c.g.rng.Intn(10) {
		case 0, 1:
			ok = c.stMalloc()
		case 2:
			ok = c.stStoreInt()
		case 3, 4:
			ok = c.stStorePtr()
		case 5:
			ok = c.stPtrArith()
		case 6:
			ok = c.stFree()
		case 7:
			ok = c.stRealloc()
		case 8:
			ok = c.stLoop(depth, 1, nil)
		case 9:
			switch {
			case c.isMain && c.g.rng.Intn(2) == 0:
				ok = c.stPrint()
			case c.isMain:
				ok = c.stAccum()
			default:
				ok = c.stCallSink()
			}
		}
		if ok {
			return
		}
	}
	c.stStoreInt()
}

// stMalloc allocates an object, anchors it, and initializes every field
// with a known integer (malloc'd memory is recycled, so uninitialized
// reads would be undefined).
func (c *ctx) stMalloc() bool {
	if len(c.anchorFree) == 0 {
		return false
	}
	anchor := c.anchorFree[len(c.anchorFree)-1]
	c.anchorFree = c.anchorFree[:len(c.anchorFree)-1]
	size := uint64(8 * (1 + c.g.rng.Intn(8)))
	o := c.g.newObj(size, anchor)
	rp := c.reg()
	c.emit("%s = malloc %d", rp, size)
	ra := c.slotAddr(anchor)
	c.emit("store ptr [%s], %s", ra, rp)
	for fi := range o.fields {
		v := int64(1 + c.g.rng.Intn(900))
		rf := c.reg()
		c.emit("%s = gep %s, %d", rf, rp, 8*fi)
		c.emit("store i64 [%s], %d", rf, v)
		o.fields[fi] = cellState{kind: CellInt, ival: v}
	}
	c.g.slots[anchor] = cellState{kind: CellLivePtr, obj: o, off: 0}
	c.live = append(c.live, o)
	return true
}

func (c *ctx) stStoreInt() bool {
	t, ok := c.pickTarget()
	if !ok {
		return false
	}
	v := int64(1 + c.g.rng.Intn(900))
	rt := c.addrOf(t)
	c.emit("store i64 [%s], %d", rt, v)
	*c.state(t) = cellState{kind: CellInt, ival: v}
	return true
}

// stStorePtr copies a (possibly interior) pointer to a live object into a
// random cell.
func (c *ctx) stStorePtr() bool {
	o, ok := c.pickLive()
	if !ok {
		return false
	}
	t, ok := c.pickTarget()
	if !ok {
		return false
	}
	off := 8 * uint64(c.g.rng.Intn(int(o.size/8)))
	ra := c.slotAddr(o.anchorSlot)
	rp := c.reg()
	c.emit("%s = load ptr [%s]", rp, ra)
	rq := c.reg()
	c.emit("%s = gep %s, %d", rq, rp, off)
	rt := c.addrOf(t)
	c.emit("store ptr [%s], %s", rt, rq)
	*c.state(t) = cellState{kind: CellLivePtr, obj: o, off: off}
	return true
}

// stPtrArith rewrites a pointer cell in place with p = p ± k, staying in
// bounds — exactly the load/gep/store pattern the instrumentation pass may
// elide.
func (c *ctx) stPtrArith() bool {
	t, ok := c.pickPtrCell()
	if !ok {
		return false
	}
	st := c.state(t)
	nf := int(st.obj.size / 8)
	if nf < 2 {
		return false
	}
	fi := int(st.off / 8)
	nfi := c.g.rng.Intn(nf)
	if nfi == fi {
		nfi = (fi + 1) % nf
	}
	k := int64(8 * (nfi - fi))
	rt := c.addrOf(t)
	rp := c.reg()
	c.emit("%s = load ptr [%s]", rp, rt)
	rq := c.reg()
	c.emit("%s = gep %s, %d", rq, rp, k)
	c.emit("store ptr [%s], %s", rt, rq)
	st.off = uint64(8 * nfi)
	return true
}

// stFree frees a live object. Interior pointer fields are zeroed first (so
// freed memory never aliases a live object), then each external reference
// is either zeroed or deliberately left dangling — the dangling count is
// exactly what invalidation-based detectors must neutralize.
func (c *ctx) stFree() bool {
	if len(c.live) == 0 {
		return false
	}
	li := c.g.rng.Intn(len(c.live))
	o := c.live[li]
	ra := c.slotAddr(o.anchorSlot)
	rp := c.reg()
	c.emit("%s = load ptr [%s]", rp, ra)
	for fi := range o.fields {
		if o.fields[fi].kind == CellInt {
			continue
		}
		rf := c.reg()
		c.emit("%s = gep %s, %d", rf, rp, 8*fi)
		c.emit("store i64 [%s], 0", rf)
		o.fields[fi] = cellState{}
	}
	for _, t := range c.externalRefs(o) {
		st := c.state(t)
		if c.g.rng.Intn(2) == 0 {
			rt := c.addrOf(t)
			c.emit("store i64 [%s], 0", rt)
			*st = cellState{}
		} else {
			*st = cellState{kind: CellDangling, obj: o, off: st.off}
			c.g.oracle.InvalidatedAll++
			if !t.global {
				c.g.oracle.InvalidatedHeap++
			}
		}
	}
	if c.g.rng.Intn(2) == 0 {
		c.emit("store i64 [%s], 0", ra)
		c.g.slots[o.anchorSlot] = cellState{}
	} else {
		c.g.slots[o.anchorSlot] = cellState{kind: CellDangling, obj: o, off: 0}
		c.g.oracle.InvalidatedAll++
	}
	if c.g.rng.Intn(4) == 0 {
		c.emit("call freeIt(%s)", rp)
	} else {
		c.emit("free %s", rp)
	}
	c.live = append(c.live[:li], c.live[li+1:]...)
	c.anchorFree = append(c.anchorFree, o.anchorSlot)
	c.g.oracle.Frees++
	return true
}

// stRealloc resizes a live object. Every reference to it (and every
// pointer field inside it) is zeroed first: whether the realloc moves —
// and therefore frees the old storage and copies bytes type-unsafely —
// depends on the detector's AllocPad, so the program must not depend on
// it. All fields are re-initialized afterwards since a grown tail is
// undefined memory.
func (c *ctx) stRealloc() bool {
	if len(c.live) == 0 {
		return false
	}
	o := c.live[c.g.rng.Intn(len(c.live))]
	newFields := 1 + c.g.rng.Intn(16)
	ra := c.slotAddr(o.anchorSlot)
	rp := c.reg()
	c.emit("%s = load ptr [%s]", rp, ra)
	for fi := range o.fields {
		if o.fields[fi].kind == CellInt {
			continue
		}
		rf := c.reg()
		c.emit("%s = gep %s, %d", rf, rp, 8*fi)
		c.emit("store i64 [%s], 0", rf)
	}
	for _, t := range c.externalRefs(o) {
		rt := c.addrOf(t)
		c.emit("store i64 [%s], 0", rt)
		*c.state(t) = cellState{}
	}
	c.emit("store i64 [%s], 0", ra)
	rq := c.reg()
	c.emit("%s = realloc %s, %d", rq, rp, 8*newFields)
	c.emit("store ptr [%s], %s", ra, rq)
	o.size = uint64(8 * newFields)
	o.fields = make([]cellState, newFields)
	for fi := range o.fields {
		v := int64(1 + c.g.rng.Intn(900))
		rf := c.reg()
		c.emit("%s = gep %s, %d", rf, rq, 8*fi)
		c.emit("store i64 [%s], %d", rf, v)
		o.fields[fi] = cellState{kind: CellInt, ival: v}
	}
	c.g.slots[o.anchorSlot] = cellState{kind: CellLivePtr, obj: o, off: 0}
	c.g.oracle.Reallocs++
	return true
}

func (c *ctx) stCallSink() bool {
	if len(c.scratch) == 0 {
		return false
	}
	s := c.scratch[c.g.rng.Intn(len(c.scratch))]
	x := int64(1 + c.g.rng.Intn(200))
	rv := c.reg()
	c.emit("%s = call sink(%d)", rv, x)
	rt := c.slotAddr(s)
	c.emit("store i64 [%s], %s", rt, rv)
	c.g.slots[s] = cellState{kind: CellInt, ival: 3*x + 7}
	return true
}

func (c *ctx) stAccum() bool {
	if c.accSlot < 0 {
		return false
	}
	k := int64(1 + c.g.rng.Intn(50))
	ra := c.slotAddr(c.accSlot)
	rv := c.reg()
	c.emit("%s = load i64 [%s]", rv, ra)
	rw := c.reg()
	c.emit("%s = add %s, %d", rw, rv, k)
	c.emit("store i64 [%s], %s", ra, rw)
	c.accVal += k
	c.g.slots[c.accSlot] = cellState{kind: CellInt, ival: c.accVal}
	return true
}

// stPrint prints a model-known integer cell (main only: worker prints
// would interleave nondeterministically).
func (c *ctx) stPrint() bool {
	if !c.isMain {
		return false
	}
	var cands []cellRef
	for _, t := range c.targets() {
		if c.state(t).kind == CellInt {
			cands = append(cands, t)
		}
	}
	if len(cands) == 0 {
		return c.stPrintAcc()
	}
	t := cands[c.g.rng.Intn(len(cands))]
	v := c.state(t).ival
	rt := c.addrOf(t)
	rv := c.reg()
	c.emit("%s = load i64 [%s]", rv, rt)
	c.emit("print %s", rv)
	c.g.oracle.Output = append(c.g.oracle.Output, v)
	return true
}

func (c *ctx) stPrintAcc() bool {
	ra := c.slotAddr(c.accSlot)
	rv := c.reg()
	c.emit("%s = load i64 [%s]", rv, ra)
	c.emit("print %s", rv)
	c.g.oracle.Output = append(c.g.oracle.Output, c.accVal)
	return true
}

// emitMutationTail appends the single injected bug: a pointer stored into
// a heap field (so even dangnull, which tracks heap locations only, sees
// it), the pointee freed, and the stale pointer loaded and dereferenced.
// Detectors must trap on the dereference; the baseline must read the
// recycled memory silently and return 0.
func (c *ctx) emitMutationTail() {
	rh := c.reg()
	c.emit("%s = malloc 16", rh)
	for fi := 0; fi < 2; fi++ {
		rf := c.reg()
		c.emit("%s = gep %s, %d", rf, rh, 8*fi)
		c.emit("store i64 [%s], 1", rf)
	}
	rv := c.reg()
	c.emit("%s = malloc 16", rv)
	for fi := 0; fi < 2; fi++ {
		rf := c.reg()
		c.emit("%s = gep %s, %d", rf, rv, 8*fi)
		c.emit("store i64 [%s], 77", rf)
	}
	c.emit("store ptr [%s], %s", rh, rv)
	c.emit("free %s", rv)
	rp := c.reg()
	c.emit("%s = load ptr [%s]", rp, rh)
	rx := c.reg()
	c.emit("%s = load i64 [%s]", rx, rp)
	ry := c.reg()
	c.emit("%s = and %s, 0", ry, rx)
	c.emit("ret %s", ry)
	c.g.oracle.Ret = 0
}
