package irgen

// loopOp is one statement of a loop body together with its whole-loop model
// effect. The body is emitted once; the effect of executing it trips times
// is applied to the model in closed form, which is why the op palette is
// restricted to iteration-convergent operations (last-iteration-wins
// stores, idempotent pointer publishes, linear accumulators, bounded
// walks, and per-iteration malloc/free pairs).
type loopOp struct {
	pre   func()          // loop-invariant setup, emitted before the loop
	body  func(iv string) // emitted once inside the body block
	apply func()          // applies the effect of all iterations
}

// stLoop emits a counting loop with 1..4 trips and a small body. Zero-trip
// loops are deliberately never generated: a hoisted registration that runs
// for a loop whose body never executes is sound for append-only logs
// (dangsan, freesentry) but changes dangnull's unregister-on-overwrite
// bookkeeping, which would be a false divergence of the harness, not of
// the system under test.
func (c *ctx) stLoop(depth, mult int, used map[*cellState]bool) bool {
	trips := 1 + c.g.rng.Intn(4)
	if used == nil {
		used = make(map[*cellState]bool)
	}
	var ops []loopOp
	n := 1 + c.g.rng.Intn(2)
	for i := 0; i < n; i++ {
		if op, ok := c.loopOp(depth, mult, trips, used); ok {
			ops = append(ops, op)
		}
	}
	if len(ops) == 0 {
		return false
	}
	for _, o := range ops {
		o.pre()
	}
	iv := c.reg()
	h, b, x := c.lbl("h"), c.lbl("b"), c.lbl("x")
	c.emit("%s = mov 0", iv)
	c.emit("br %s", h)
	c.label(h)
	rc := c.reg()
	c.emit("%s = icmp lt %s, %d", rc, iv, trips)
	c.emit("br %s, %s, %s", rc, b, x)
	c.label(b)
	for _, o := range ops {
		o.body(iv)
	}
	c.emit("%s = add %s, 1", iv, iv)
	c.emit("br %s", h)
	c.label(x)
	for _, o := range ops {
		o.apply()
	}
	return true
}

// loopOp picks one body operation valid for this depth. Each op claims its
// target cell in used so ops within one loop nest never alias (aliasing
// would make the closed-form apply order-dependent).
func (c *ctx) loopOp(depth, mult, trips int, used map[*cellState]bool) (loopOp, bool) {
	for attempt := 0; attempt < 6; attempt++ {
		switch c.g.rng.Intn(6) {
		case 0: // varying integer store: cell = c0 + c1*i each iteration
			t, ok := c.pickTarget()
			if !ok || used[c.state(t)] {
				continue
			}
			st := c.state(t)
			used[st] = true
			c0 := int64(1 + c.g.rng.Intn(100))
			c1 := int64(1 + c.g.rng.Intn(20))
			var rt string
			return loopOp{
				pre: func() { rt = c.addrOf(t) },
				body: func(iv string) {
					rv := c.reg()
					c.emit("%s = mul %s, %d", rv, iv, c1)
					rw := c.reg()
					c.emit("%s = add %s, %d", rw, rv, c0)
					c.emit("store i64 [%s], %s", rt, rw)
				},
				apply: func() {
					*st = cellState{kind: CellInt, ival: c0 + c1*int64(trips-1)}
				},
			}, true

		case 1: // loop-invariant pointer publish (the hoisting candidate)
			o, okO := c.pickLive()
			t, okT := c.pickTarget()
			if !okO || !okT || used[c.state(t)] {
				continue
			}
			st := c.state(t)
			used[st] = true
			off := 8 * uint64(c.g.rng.Intn(int(o.size/8)))
			var rt, rq string
			return loopOp{
				pre: func() {
					ra := c.slotAddr(o.anchorSlot)
					rp := c.reg()
					c.emit("%s = load ptr [%s]", rp, ra)
					rq = c.reg()
					c.emit("%s = gep %s, %d", rq, rp, off)
					rt = c.addrOf(t)
				},
				body: func(string) { c.emit("store ptr [%s], %s", rt, rq) },
				apply: func() {
					*st = cellState{kind: CellLivePtr, obj: o, off: off}
				},
			}, true

		case 2: // in-loop pointer walk p = p + k (the elision candidate)
			if depth != 0 {
				continue
			}
			t, ok := c.pickPtrCell()
			if !ok || used[c.state(t)] {
				continue
			}
			st := c.state(t)
			nf := int(st.obj.size / 8)
			fi := int(st.off / 8)
			var k int64
			switch {
			case fi+trips < nf:
				k = 8
			case fi-trips >= 0:
				k = -8
			default:
				continue
			}
			used[st] = true
			var rt string
			return loopOp{
				pre: func() { rt = c.addrOf(t) },
				body: func(string) {
					rp := c.reg()
					c.emit("%s = load ptr [%s]", rp, rt)
					rq := c.reg()
					c.emit("%s = gep %s, %d", rq, rp, k)
					c.emit("store ptr [%s], %s", rt, rq)
				},
				apply: func() {
					st.off = uint64(int64(st.off) + k*int64(trips))
				},
			}, true

		case 3: // free-carrying body: per-iteration malloc, publish, free
			if depth != 0 {
				continue
			}
			t, ok := c.pickTarget()
			if !ok || used[c.state(t)] {
				continue
			}
			st := c.state(t)
			used[st] = true
			size := uint64(8 * (1 + c.g.rng.Intn(2)))
			useHelper := c.g.rng.Intn(2) == 0
			var rt string
			return loopOp{
				pre: func() { rt = c.addrOf(t) },
				body: func(string) {
					rm := c.reg()
					c.emit("%s = malloc %d", rm, size)
					for fi := 0; fi < int(size/8); fi++ {
						rf := c.reg()
						c.emit("%s = gep %s, %d", rf, rm, 8*fi)
						c.emit("store i64 [%s], 5", rf)
					}
					c.emit("store ptr [%s], %s", rt, rm)
					if useHelper {
						c.emit("call freeIt(%s)", rm)
					} else {
						c.emit("free %s", rm)
					}
				},
				apply: func() {
					// Each iteration leaves the published pointer dangling
					// at the free, then overwrites it on the next pass; the
					// final state dangles into the last iteration's object.
					var last *genObj
					for i := 0; i < trips; i++ {
						last = c.g.newObj(size, -1)
						for fi := range last.fields {
							last.fields[fi] = cellState{kind: CellInt, ival: 5}
						}
						c.g.oracle.Frees++
						c.g.oracle.InvalidatedAll++
						if !t.global {
							c.g.oracle.InvalidatedHeap++
						}
					}
					*st = cellState{kind: CellDangling, obj: last, off: 0}
				},
			}, true

		case 4: // accumulate (main only)
			if c.accSlot < 0 {
				continue
			}
			st := &c.g.slots[c.accSlot]
			if used[st] {
				continue
			}
			used[st] = true
			k := int64(1 + c.g.rng.Intn(20))
			var ra string
			return loopOp{
				pre: func() { ra = c.slotAddr(c.accSlot) },
				body: func(string) {
					rv := c.reg()
					c.emit("%s = load i64 [%s]", rv, ra)
					rw := c.reg()
					c.emit("%s = add %s, %d", rw, rv, k)
					c.emit("store i64 [%s], %s", ra, rw)
				},
				apply: func() {
					c.accVal += k * int64(trips*mult)
					*st = cellState{kind: CellInt, ival: c.accVal}
				},
			}, true

		case 5: // nested free-less loop (one level deep)
			if depth != 0 {
				continue
			}
			return loopOp{
				pre:   func() {},
				body:  func(string) { c.stLoop(depth+1, mult*trips, used) },
				apply: func() {},
			}, true
		}
	}
	return loopOp{}, false
}
