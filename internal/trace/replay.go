package trace

import (
	"fmt"
	"io"

	"dangsan/internal/detectors"
	"dangsan/internal/proc"
	"dangsan/internal/rbtree"
)

// ReplayStats summarizes a replay.
type ReplayStats struct {
	// Events is the number of events applied.
	Events uint64
	// Translated counts pointer values remapped through the live-object
	// map (nonzero whenever recorded and replayed heap layouts differ).
	Translated uint64
}

// objMapping relates a recorded object to its replayed twin.
type objMapping struct {
	recBase    uint64
	replayBase uint64
}

// Replayer applies a recorded event stream to a fresh process under a new
// detector. Events are applied strictly in serialization order, so replay
// of a multithreaded trace is single-threaded but behaviour-equivalent for
// the detector (the same stores hit the same objects in a linearization the
// original run permitted).
type Replayer struct {
	p       *proc.Process
	threads map[int32]*proc.Thread
	// objects maps recorded live-object ranges to replayed bases.
	objects rbtree.Tree
	stats   ReplayStats
}

// NewReplayer creates a replayer over a fresh process guarded by det.
func NewReplayer(det detectors.Detector) *Replayer {
	return &Replayer{
		p:       proc.New(det),
		threads: make(map[int32]*proc.Thread),
	}
}

// Process exposes the replay process (stats, memory inspection).
func (rp *Replayer) Process() *proc.Process { return rp.p }

// Stats returns the replay summary so far.
func (rp *Replayer) Stats() ReplayStats { return rp.stats }

// Run applies every event from r until EOF.
func (rp *Replayer) Run(r *Reader) error {
	for {
		e, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := rp.Apply(e); err != nil {
			return fmt.Errorf("trace: event %d (%s): %w", rp.stats.Events, e, err)
		}
		rp.stats.Events++
	}
}

// translate remaps a recorded pointer-sized value: values inside a recorded
// live object move to the corresponding offset of the replayed object;
// everything else (globals, stacks, integers, dangling garbage) passes
// through unchanged.
func (rp *Replayer) translate(v uint64) uint64 {
	if val, ok := rp.objects.LookupContaining(v); ok {
		m := val.(objMapping)
		if m.recBase != m.replayBase {
			rp.stats.Translated++
		}
		return m.replayBase + (v - m.recBase)
	}
	return v
}

// thread resolves the recorded tid.
func (rp *Replayer) thread(tid int32) (*proc.Thread, error) {
	th, ok := rp.threads[tid]
	if !ok {
		return nil, fmt.Errorf("unknown thread %d", tid)
	}
	return th, nil
}

// Apply executes one event.
func (rp *Replayer) Apply(e Event) error {
	switch e.Kind {
	case EvThreadStart:
		th := rp.p.NewThread()
		if th.ID() != e.TID {
			return fmt.Errorf("thread id diverged: recorded %d, replayed %d", e.TID, th.ID())
		}
		rp.threads[e.TID] = th
		return nil
	case EvThreadExit:
		th, err := rp.thread(e.TID)
		if err != nil {
			return err
		}
		th.Exit()
		delete(rp.threads, e.TID)
		return nil
	case EvGlobal:
		addr := rp.p.AllocGlobal(e.A)
		if addr != e.B {
			return fmt.Errorf("global diverged: recorded 0x%x, replayed 0x%x", e.B, addr)
		}
		return nil
	}

	th, err := rp.thread(e.TID)
	if err != nil {
		return err
	}
	switch e.Kind {
	case EvMalloc:
		base, err := th.Malloc(e.A)
		if err != nil {
			return err
		}
		size := e.A
		if size == 0 {
			size = 1
		}
		rp.objects.Insert(e.B, e.B+size, objMapping{recBase: e.B, replayBase: base})
	case EvFree:
		val, ok := rp.objects.Get(e.A)
		if !ok {
			return fmt.Errorf("free of unrecorded object 0x%x", e.A)
		}
		if err := th.Free(val.(objMapping).replayBase); err != nil {
			return err
		}
		rp.objects.Delete(e.A)
	case EvRealloc:
		replayOld := uint64(0)
		if e.A != 0 {
			val, ok := rp.objects.Get(e.A)
			if !ok {
				return fmt.Errorf("realloc of unrecorded object 0x%x", e.A)
			}
			replayOld = val.(objMapping).replayBase
		}
		newBase, err := th.Realloc(replayOld, e.B)
		if err != nil {
			return err
		}
		if e.A != 0 {
			rp.objects.Delete(e.A)
		}
		size := e.B
		if size == 0 {
			size = 1
		}
		rp.objects.Insert(e.C, e.C+size, objMapping{recBase: e.C, replayBase: newBase})
	case EvAlloca:
		addr := th.Alloca(e.A)
		if addr != e.B {
			return fmt.Errorf("alloca diverged: recorded 0x%x, replayed 0x%x", e.B, addr)
		}
	case EvStackMark:
		// Marks are recorded stack heights; the replayed stack is
		// deterministic per thread, so nothing to do.
	case EvFreeStack:
		th.FreeStack(e.A)
	case EvStorePtr:
		if f := th.StorePtr(rp.translate(e.A), rp.translate(e.B)); f != nil {
			return f
		}
	case EvStoreInt:
		if f := th.StoreInt(rp.translate(e.A), e.B); f != nil {
			return f
		}
	case EvMemcpy:
		if f := th.Memcpy(rp.translate(e.A), rp.translate(e.B), e.C); f != nil {
			return f
		}
	default:
		return fmt.Errorf("unhandled event kind %d", e.Kind)
	}
	return nil
}

// Replay is the convenience wrapper: apply the whole stream from r to a
// fresh process guarded by det.
func Replay(r *Reader, det detectors.Detector) (*Replayer, error) {
	rp := NewReplayer(det)
	if err := rp.Run(r); err != nil {
		return rp, err
	}
	return rp, nil
}
