package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"dangsan/internal/detectors"
	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/pointerlog"
	"dangsan/internal/proc"
	"dangsan/internal/workloads"
)

func TestEventRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	events := []Event{
		{Kind: EvThreadStart, TID: 0},
		{Kind: EvMalloc, TID: 0, A: 64, B: 0x10000000000},
		{Kind: EvStorePtr, TID: 0, A: 0x20000000000, B: 0x10000000010},
		{Kind: EvFree, TID: 0, A: 0x10000000000},
		{Kind: EvThreadExit, TID: 0},
	}
	for _, e := range events {
		w.Emit(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Events() != uint64(len(events)) {
		t.Fatalf("Events() = %d", w.Events())
	}
	r := NewReader(&buf)
	for i, want := range events {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("event %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	// Truncated record.
	r := NewReader(bytes.NewReader(make([]byte, 10)))
	if _, err := r.Next(); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated record: %v", err)
	}
	// Bad kind.
	rec := make([]byte, 29)
	rec[0] = 200
	r = NewReader(bytes.NewReader(rec))
	if _, err := r.Next(); err == nil || !strings.Contains(err.Error(), "bad event kind") {
		t.Fatalf("bad kind: %v", err)
	}
}

// record runs a small hand-written scenario under the baseline with tracing
// and returns the trace bytes plus the recorded addresses.
func record(t *testing.T) (data []byte, obj, slot uint64) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	p := proc.New(detectors.None{})
	p.SetTracer(w)
	th := p.NewThread()
	slot = p.AllocGlobal(8)
	obj, err := th.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	th.StorePtr(slot, obj+8)
	th.StoreInt(obj, 42)
	if err := th.Free(obj); err != nil {
		t.Fatal(err)
	}
	th.Exit()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), obj, slot
}

func TestReplayUnderDangSan(t *testing.T) {
	data, _, slot := record(t)
	// The trace was recorded under the baseline (no pad); replaying under
	// DangSan changes heap layout, exercising translation, and must
	// invalidate the stored pointer.
	det := dangsan.New()
	rp, err := Replay(NewReader(bytes.NewReader(data)), det)
	if err != nil {
		t.Fatal(err)
	}
	v, f := rp.Process().AddressSpace().LoadWord(slot)
	if f != nil {
		t.Fatal(f)
	}
	if v&pointerlog.InvalidBit == 0 {
		t.Fatalf("replayed pointer not invalidated: 0x%x", v)
	}
	s := det.Stats()
	if s.Registered != 1 || s.Invalidated != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestReplayIsFaithfulForWorkload(t *testing.T) {
	// Record a SPEC analog under DangSan, then replay the trace under a
	// fresh DangSan: the detector counters must match exactly — the replay
	// really is the same workload.
	prof, err := workloads.SPECProfileByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	prof.Objects = 300
	prof.TotalStores = 10000
	prof.ComputeOps = 100
	prof.LiveWindow = 50

	var buf bytes.Buffer
	w := NewWriter(&buf)
	live := dangsan.New()
	p := proc.New(live)
	p.SetTracer(w)
	if err := workloads.RunSPEC(p, prof, 3); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	replayDet := dangsan.New()
	rp, err := Replay(NewReader(bytes.NewReader(buf.Bytes())), replayDet)
	if err != nil {
		t.Fatal(err)
	}
	a, b := live.Stats(), replayDet.Stats()
	if a.ObjectsTracked != b.ObjectsTracked || a.Registered != b.Registered ||
		a.Invalidated != b.Invalidated || a.Stale != b.Stale ||
		a.Duplicates != b.Duplicates || a.HashTables != b.HashTables {
		t.Fatalf("replay diverged:\nlive:   %+v\nreplay: %+v", a, b)
	}
	if rp.Stats().Events == 0 {
		t.Fatal("no events replayed")
	}
	// Same layout (both DangSan), so no translation should be needed.
	if rp.Stats().Translated != 0 {
		t.Fatalf("unexpected translations: %d", rp.Stats().Translated)
	}
}

func TestReplayAcrossDetectorsTranslates(t *testing.T) {
	// Baseline-recorded traces replayed under DangSan need address
	// translation (the +1 pad shifts size classes for exact-fit objects).
	var buf bytes.Buffer
	w := NewWriter(&buf)
	p := proc.New(detectors.None{})
	p.SetTracer(w)
	th := p.NewThread()
	slot := p.AllocGlobal(8)
	// A 32-byte request fits class 32 exactly without a pad but needs the
	// next class with DangSan's +1.
	a, _ := th.Malloc(32)
	b, _ := th.Malloc(32)
	th.StorePtr(slot, b+8)
	th.Free(a)
	th.Free(b)
	th.Exit()
	w.Flush()

	det := dangsan.New()
	rp, err := Replay(NewReader(bytes.NewReader(buf.Bytes())), det)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Stats().Translated == 0 {
		t.Fatal("expected address translation between layouts")
	}
	if s := det.Stats(); s.Invalidated != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestReplayMultithreadedTrace(t *testing.T) {
	prof, err := workloads.ParallelProfileByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	prof.TotalObjects = 400
	prof.TotalStores = 4000
	prof.TotalCompute = 500

	var buf bytes.Buffer
	w := NewWriter(&buf)
	p := proc.New(detectors.None{})
	p.SetTracer(w)
	if err := workloads.RunParallel(p, prof, 4, 7); err != nil {
		t.Fatal(err)
	}
	w.Flush()

	det := dangsan.New()
	_, err = Replay(NewReader(bytes.NewReader(buf.Bytes())), det)
	if err != nil {
		t.Fatal(err)
	}
	if s := det.Stats(); s.Registered == 0 || s.Invalidated == 0 {
		t.Fatalf("replayed detector saw nothing: %+v", s)
	}
}

func TestReplayRealloc(t *testing.T) {
	// All three realloc outcomes traced and replayed: same storage, moved
	// (with its implicit data copy), and pointers-to-old invalidated on
	// replay under DangSan.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	p := proc.New(detectors.None{})
	p.SetTracer(w)
	th := p.NewThread()
	slot := p.AllocGlobal(8)

	obj, err := th.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	th.StorePtr(slot, obj)
	th.StoreInt(obj, 4242)

	same, err := th.Realloc(obj, 101) // same storage
	if err != nil || same != obj {
		t.Fatalf("same-case: 0x%x %v", same, err)
	}
	moved, err := th.Realloc(obj, 1<<20) // forced move
	if err != nil {
		t.Fatal(err)
	}
	if moved == obj {
		t.Skip("allocator did not move")
	}
	if err := th.Free(moved); err != nil {
		t.Fatal(err)
	}
	th.Exit()
	w.Flush()

	det := dangsan.New()
	rp, err := Replay(NewReader(bytes.NewReader(buf.Bytes())), det)
	if err != nil {
		t.Fatal(err)
	}
	// The old pointer in the slot was invalidated at the realloc move.
	v, f := rp.Process().AddressSpace().LoadWord(slot)
	if f != nil {
		t.Fatal(f)
	}
	if v&pointerlog.InvalidBit == 0 {
		t.Fatalf("slot after replayed realloc move = 0x%x", v)
	}
	if s := det.Stats(); s.Invalidated != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestReplayErrors(t *testing.T) {
	// Free of an object never recorded.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Emit(Event{Kind: EvThreadStart, TID: 0})
	w.Emit(Event{Kind: EvFree, TID: 0, A: 0xdead000})
	w.Flush()
	if _, err := Replay(NewReader(bytes.NewReader(buf.Bytes())), detectors.None{}); err == nil {
		t.Fatal("free of unrecorded object accepted")
	}
	// Event for an unknown thread.
	buf.Reset()
	w = NewWriter(&buf)
	w.Emit(Event{Kind: EvMalloc, TID: 5, A: 8, B: 0x10000000000})
	w.Flush()
	if _, err := Replay(NewReader(bytes.NewReader(buf.Bytes())), detectors.None{}); err == nil {
		t.Fatal("unknown thread accepted")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Kind: EvMalloc, TID: 3, A: 64, B: 0x1000}
	s := e.String()
	if !strings.Contains(s, "malloc") || !strings.Contains(s, "t3") {
		t.Fatalf("String() = %q", s)
	}
}
