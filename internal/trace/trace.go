// Package trace records and replays the event stream of a simulated
// process: allocations, frees, reallocs, pointer and integer stores, and
// thread lifecycle. A trace captured once (typically under the cheap
// baseline) can be replayed against any detector, giving every system the
// byte-identical workload — the methodology equivalent of the paper running
// each SPEC binary under each sanitizer.
//
// Events are encoded in a fixed 29-byte little-endian record:
// kind (1) | tid (4) | a (8) | b (8) | c (8).
//
// Replay re-executes the events on a fresh process. Heap addresses may
// differ between runs (detectors pad allocations differently), so the
// replayer maintains a live-object map from recorded to replayed base
// addresses and translates every pointer-sized value that falls inside a
// recorded live object. Globals and stacks are allocated in the same order
// during replay and therefore translate identically.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"dangsan/internal/proc"
)

// Event kinds are defined by the process runtime (internal/proc); the
// aliases here spare trace consumers a second import.
const (
	// EvThreadStart: a thread was created; tid is its id.
	EvThreadStart = proc.TraceThreadStart
	// EvThreadExit: the thread exited.
	EvThreadExit = proc.TraceThreadExit
	// EvGlobal: a = size, b = resulting address.
	EvGlobal = proc.TraceGlobal
	// EvMalloc: a = requested size, b = resulting base.
	EvMalloc = proc.TraceMalloc
	// EvFree: a = base.
	EvFree = proc.TraceFree
	// EvRealloc: a = old base, b = new size, c = resulting base.
	EvRealloc = proc.TraceRealloc
	// EvAlloca: a = size, b = resulting address.
	EvAlloca = proc.TraceAlloca
	// EvStackMark: a = mark (stack height snapshot).
	EvStackMark = proc.TraceStackMark
	// EvFreeStack: a = mark restored.
	EvFreeStack = proc.TraceFreeStack
	// EvStorePtr: a = location, b = value.
	EvStorePtr = proc.TraceStorePtr
	// EvStoreInt: a = location, b = value.
	EvStoreInt = proc.TraceStoreInt
	// EvMemcpy: a = dst, b = src, c = length.
	EvMemcpy = proc.TraceMemcpy

	evMax = proc.TraceKindMax
)

var kindNames = [evMax]string{
	EvThreadStart: "thread-start", EvThreadExit: "thread-exit",
	EvGlobal: "global", EvMalloc: "malloc", EvFree: "free",
	EvRealloc: "realloc", EvAlloca: "alloca", EvStackMark: "stack-mark",
	EvFreeStack: "free-stack", EvStorePtr: "store-ptr",
	EvStoreInt: "store-int", EvMemcpy: "memcpy",
}

// Event is one record.
type Event struct {
	Kind    uint8
	TID     int32
	A, B, C uint64
}

func (e Event) String() string {
	name := "?"
	if int(e.Kind) < len(kindNames) && kindNames[e.Kind] != "" {
		name = kindNames[e.Kind]
	}
	return fmt.Sprintf("[t%d] %s a=0x%x b=0x%x c=0x%x", e.TID, name, e.A, e.B, e.C)
}

const recordSize = 1 + 4 + 3*8

// Writer serializes events. It is safe for concurrent use; the
// serialization order under the internal lock defines the replay order.
type Writer struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	n   uint64
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// TraceEvent implements proc.TraceSink, so a Writer can be installed
// directly with Process.SetTracer.
func (w *Writer) TraceEvent(kind uint8, tid int32, a, b, c uint64) {
	w.Emit(Event{Kind: kind, TID: tid, A: a, B: b, C: c})
}

// Emit appends one event. Errors are sticky and reported by Flush.
func (w *Writer) Emit(e Event) {
	var buf [recordSize]byte
	buf[0] = e.Kind
	binary.LittleEndian.PutUint32(buf[1:], uint32(e.TID))
	binary.LittleEndian.PutUint64(buf[5:], e.A)
	binary.LittleEndian.PutUint64(buf[13:], e.B)
	binary.LittleEndian.PutUint64(buf[21:], e.C)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	if _, err := w.bw.Write(buf[:]); err != nil {
		w.err = err
		return
	}
	w.n++
}

// Events returns the number of events emitted so far.
func (w *Writer) Events() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Flush drains buffered records and returns the first error encountered.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Reader decodes events.
type Reader struct {
	br *bufio.Reader
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next event, or io.EOF at a clean end of stream.
func (r *Reader) Next() (Event, error) {
	var buf [recordSize]byte
	if _, err := io.ReadFull(r.br, buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Event{}, fmt.Errorf("trace: truncated record")
		}
		return Event{}, err
	}
	e := Event{
		Kind: buf[0],
		TID:  int32(binary.LittleEndian.Uint32(buf[1:])),
		A:    binary.LittleEndian.Uint64(buf[5:]),
		B:    binary.LittleEndian.Uint64(buf[13:]),
		C:    binary.LittleEndian.Uint64(buf[21:]),
	}
	if e.Kind == 0 || e.Kind >= evMax {
		return Event{}, fmt.Errorf("trace: bad event kind %d", e.Kind)
	}
	return e, nil
}
