package faultinject

import "testing"

// TestDeterminism: two planes with the same seed must produce identical
// verdict sequences at every site; a different seed must diverge somewhere.
func TestDeterminism(t *testing.T) {
	const draws = 10000
	a, b := New(42), New(42)
	a.EnableAll(0.1, -1)
	b.EnableAll(0.1, -1)
	for s := Site(0); s < NumSites; s++ {
		for i := 0; i < draws; i++ {
			if a.Fail(s) != b.Fail(s) {
				t.Fatalf("site %v draw %d: same seed diverged", s, i)
			}
		}
	}

	c := New(43)
	c.EnableAll(0.1, -1)
	d2 := New(42)
	d2.EnableAll(0.1, -1)
	diverged := false
	for i := 0; i < draws; i++ {
		if c.Fail(VmemMap) != d2.Fail(VmemMap) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatalf("different seeds produced identical verdicts over %d draws", draws)
	}
}

// TestRate: the empirical injection frequency must track the configured
// rate, and sites must be independent of one another's draw counts.
func TestRate(t *testing.T) {
	const draws = 200000
	for _, rate := range []float64{0.01, 0.1, 0.5} {
		p := New(7)
		p.Enable(SpanAlloc, rate, -1)
		hits := 0
		for i := 0; i < draws; i++ {
			if p.Fail(SpanAlloc) {
				hits++
			}
		}
		got := float64(hits) / draws
		if got < rate*0.8 || got > rate*1.2 {
			t.Errorf("rate %.2f: empirical frequency %.4f outside ±20%%", rate, got)
		}
		if p.Injected(SpanAlloc) != uint64(hits) {
			t.Errorf("rate %.2f: Injected=%d want %d", rate, p.Injected(SpanAlloc), hits)
		}
	}
}

// TestBudget: a site with budget N injects at most N times, then disarms —
// further draws are free (threshold cleared) and never inject.
func TestBudget(t *testing.T) {
	p := New(1)
	p.Enable(MetaAlloc, 1.0, 5)
	for i := 0; i < 5; i++ {
		if !p.Fail(MetaAlloc) {
			t.Fatalf("draw %d: rate-1.0 site with budget left should inject", i)
		}
	}
	for i := 0; i < 100; i++ {
		if p.Fail(MetaAlloc) {
			t.Fatalf("injection after budget drained (extra draw %d)", i)
		}
	}
	if got := p.Injected(MetaAlloc); got != 5 {
		t.Fatalf("Injected=%d want 5", got)
	}
	// A zero budget never injects at all.
	q := New(1)
	q.Enable(MetaAlloc, 1.0, 0)
	if q.Fail(MetaAlloc) {
		t.Fatal("budget-0 site injected")
	}
}

// TestNilAndDisabled: nil planes and disabled sites are inert.
func TestNilAndDisabled(t *testing.T) {
	var p *Plane
	if p.Fail(VmemMap) {
		t.Fatal("nil plane injected")
	}
	p.Enable(VmemMap, 1.0, -1) // must not panic
	if p.Injected(VmemMap) != 0 || p.TotalInjected() != 0 {
		t.Fatal("nil plane reported injections")
	}
	if p.Snapshot() != nil {
		t.Fatal("nil plane snapshot non-nil")
	}

	q := New(9)
	for i := 0; i < 1000; i++ {
		if q.Fail(SpanAlloc) {
			t.Fatal("disabled site injected")
		}
	}
	if q.Fail(NumSites) || q.Fail(Site(200)) {
		t.Fatal("out-of-range site injected")
	}
	if got := q.Snapshot(); got != nil {
		t.Fatalf("disabled sites appear in snapshot: %v", got)
	}
}

// TestSnapshot: consulted sites appear with accurate counters.
func TestSnapshot(t *testing.T) {
	p := New(3)
	p.Enable(LogBlockAlloc, 0.5, -1)
	for i := 0; i < 100; i++ {
		p.Fail(LogBlockAlloc)
	}
	snap := p.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d sites, want 1", len(snap))
	}
	if snap[0].Site != "log_block_alloc" || snap[0].Draws != 100 {
		t.Fatalf("snapshot = %+v", snap[0])
	}
	if snap[0].Injected != p.Injected(LogBlockAlloc) {
		t.Fatalf("snapshot injected %d != Injected() %d", snap[0].Injected, p.Injected(LogBlockAlloc))
	}
	if p.TotalInjected() != snap[0].Injected {
		t.Fatalf("TotalInjected %d != site injected %d", p.TotalInjected(), snap[0].Injected)
	}
}

func TestSiteString(t *testing.T) {
	if VmemMap.String() != "vmem_map" || ShadowPopulate.String() != "shadow_populate" {
		t.Fatal("site names wrong")
	}
	if Site(99).String() != "site(99)" {
		t.Fatalf("out-of-range name = %q", Site(99).String())
	}
}
