// Package faultinject is the deterministic fault-injection plane: a set of
// named injection sites threaded through the layers that acquire resources
// (vmem page mapping, tcmalloc span/central/thread-cache allocation,
// pointerlog indirect-block and hash-table allocation, shadow metapagetable
// population, and the metadata registry itself).
//
// The plane exists to exercise DangSan's fail-open philosophy (paper §4.4):
// every resource-acquisition failure must degrade coverage, never
// correctness — no false UAF reports, no crashes, no deadlocks. Each site
// consults the plane before committing a resource; when the plane says
// "fail", the site unwinds exactly as if the underlying acquisition had
// failed (mmap returned ENOMEM, the registry filled up), and the chaos
// harness (internal/chaos) asserts the system-wide invariants afterwards.
//
// Decisions are deterministic per (seed, site, draw index): the nth
// consultation of a site always yields the same verdict for a given seed,
// independent of wall-clock or global interleaving, which makes chaos
// failures replayable. A nil *Plane is inert — every Fail call on it is a
// single predicted branch — so production paths carry the sites for free.
package faultinject

import (
	"fmt"
	"math"
	"sync/atomic"

	"dangsan/internal/obs"
)

// Site names one injection point.
type Site uint8

const (
	// VmemMap fails heap page mapping (the simulated mmap/ENOMEM).
	VmemMap Site = iota
	// SpanAlloc fails tcmalloc page-heap span allocation.
	SpanAlloc
	// CentralPopulate fails central-free-list span population.
	CentralPopulate
	// ThreadCacheRefill fails a thread cache's batch refill.
	ThreadCacheRefill
	// LogBlockAlloc fails pointerlog indirect-block allocation.
	LogBlockAlloc
	// HashGrowAlloc fails pointerlog hash-table allocation and growth.
	HashGrowAlloc
	// ShadowPopulate fails shadow metapagetable array allocation.
	ShadowPopulate
	// MetaAlloc fails per-object metadata registry allocation.
	MetaAlloc
	// ColdIO fails cold-tier spill-file I/O: segment writes (the spill
	// falls open, the table stays resident) and segment reads (the
	// segment is skipped — coverage loss, never a false report).
	ColdIO

	// NumSites is the number of injection sites.
	NumSites
)

var siteNames = [NumSites]string{
	VmemMap:           "vmem_map",
	SpanAlloc:         "span_alloc",
	CentralPopulate:   "central_populate",
	ThreadCacheRefill: "threadcache_refill",
	LogBlockAlloc:     "log_block_alloc",
	HashGrowAlloc:     "hash_grow_alloc",
	ShadowPopulate:    "shadow_populate",
	MetaAlloc:         "meta_alloc",
	ColdIO:            "cold_io",
}

func (s Site) String() string {
	if s < NumSites {
		return siteNames[s]
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// siteState is one site's configuration and counters. threshold is the
// injection probability scaled to the full uint64 range (0 = disabled);
// budget is the number of injections still allowed (decremented on each
// one; exhaustion disables the site, bounding how much pressure a sweep
// applies).
type siteState struct {
	threshold atomic.Uint64
	budget    atomic.Int64
	draws     atomic.Uint64
	injected  atomic.Uint64
	_         [64 - 4*8]byte // pad so hot sites don't false-share
}

// Plane is one fault-injection configuration. Create with New; safe for
// concurrent use. The zero Plane (and a nil *Plane) injects nothing.
type Plane struct {
	seed  uint64
	sites [NumSites]siteState
}

// New creates a plane with the given seed and every site disabled.
func New(seed int64) *Plane {
	return &Plane{seed: uint64(seed)}
}

// Seed returns the plane's seed.
func (p *Plane) Seed() int64 { return int64(p.seed) }

// Enable arms one site with the given injection probability (clamped to
// [0,1]) and budget (maximum number of injections; <0 means unlimited).
func (p *Plane) Enable(site Site, rate float64, budget int64) {
	if p == nil || site >= NumSites {
		return
	}
	st := &p.sites[site]
	st.threshold.Store(rateToThreshold(rate))
	if budget < 0 {
		budget = math.MaxInt64
	}
	st.budget.Store(budget)
}

// EnableAll arms every site with the same rate and per-site budget.
func (p *Plane) EnableAll(rate float64, budget int64) {
	for s := Site(0); s < NumSites; s++ {
		p.Enable(s, rate, budget)
	}
}

func rateToThreshold(rate float64) uint64 {
	switch {
	case rate <= 0:
		return 0
	case rate >= 1:
		return math.MaxUint64
	default:
		return uint64(rate * float64(math.MaxUint64))
	}
}

// Fail reports whether the caller should simulate an acquisition failure at
// site. The verdict for the nth draw of a site is a pure function of
// (seed, site, n). Nil-safe: a nil plane never fails.
func (p *Plane) Fail(site Site) bool {
	if p == nil || site >= NumSites {
		return false
	}
	st := &p.sites[site]
	th := st.threshold.Load()
	if th == 0 {
		return false
	}
	n := st.draws.Add(1)
	if mix(p.seed^(uint64(site)+1)*0x9E3779B97F4A7C15, n) >= th {
		return false
	}
	// Candidate injection: charge the budget; a drained budget disarms.
	if st.budget.Add(-1) < 0 {
		st.threshold.Store(0)
		return false
	}
	st.injected.Add(1)
	return true
}

// mix is splitmix64-style avalanche over (seed, n).
func mix(seed, n uint64) uint64 {
	z := seed + n*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// SiteStats is one site's draw/injection counters.
type SiteStats struct {
	Site     string `json:"site"`
	Draws    uint64 `json:"draws"`
	Injected uint64 `json:"injected"`
}

// Injected returns how many times site has injected a failure. Nil-safe.
func (p *Plane) Injected(site Site) uint64 {
	if p == nil || site >= NumSites {
		return 0
	}
	return p.sites[site].injected.Load()
}

// TotalInjected sums injections across all sites. Nil-safe.
func (p *Plane) TotalInjected() uint64 {
	if p == nil {
		return 0
	}
	var n uint64
	for i := range p.sites {
		n += p.sites[i].injected.Load()
	}
	return n
}

// Snapshot returns per-site counters for sites that have been consulted.
func (p *Plane) Snapshot() []SiteStats {
	if p == nil {
		return nil
	}
	var out []SiteStats
	for i := range p.sites {
		st := &p.sites[i]
		if d := st.draws.Load(); d != 0 {
			out = append(out, SiteStats{
				Site:     Site(i).String(),
				Draws:    d,
				Injected: st.injected.Load(),
			})
		}
	}
	return out
}

// AttachMetrics registers the plane's counters with reg: total injections,
// total draws, and the per-site breakdown as a structured object. Safe to
// call with nil receiver or registry.
func (p *Plane) AttachMetrics(reg *obs.Registry) {
	if p == nil || reg == nil {
		return
	}
	reg.RegisterFunc("faultinject.injected", func() int64 { return int64(p.TotalInjected()) })
	reg.RegisterFunc("faultinject.draws", func() int64 {
		var n uint64
		for i := range p.sites {
			n += p.sites[i].draws.Load()
		}
		return int64(n)
	})
	reg.RegisterObject("faultinject.sites", func() any { return p.Snapshot() })
}
