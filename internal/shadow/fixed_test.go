package shadow

import (
	"testing"

	"dangsan/internal/vmem"
)

func TestFixedCreateLookup(t *testing.T) {
	ft := NewFixedTable()
	base := uint64(vmem.HeapBase + 64)
	ft.CreateObject(base, 48, 7)
	for off := uint64(0); off < 48; off++ {
		if got := ft.Lookup(base + off); got != 7 {
			t.Fatalf("Lookup(+%d) = %d", off, got)
		}
	}
	if ft.Lookup(base-8) != 0 || ft.Lookup(base+48) != 0 {
		t.Fatal("metadata bleeds outside the object")
	}
	ft.ClearObject(base, 48)
	if ft.Lookup(base) != 0 {
		t.Fatal("clear failed")
	}
}

func TestFixedLookupNonHeap(t *testing.T) {
	ft := NewFixedTable()
	for _, a := range []uint64{0, vmem.GlobalsBase, vmem.HeapBase - 8, vmem.HeapBase + vmem.HeapMax} {
		if ft.Lookup(a) != 0 {
			t.Fatalf("Lookup(0x%x) != 0", a)
		}
	}
}

// The §4.3 cost argument, as a measurement: for a large object the
// constant-ratio shadow consumes memory proportional to the object, while
// the variable-ratio metapagetable needs one word per page.
func TestFixedVsVariableLargeObjectCost(t *testing.T) {
	const size = 4 << 20 // 4 MiB object
	base := uint64(vmem.HeapBase)

	ft := NewFixedTable()
	before := ft.Bytes()
	ft.CreateObject(base, size, 1)
	fixedCost := ft.Bytes() - before

	vt := NewTable()
	beforeV := vt.Bytes()
	vt.CreateObject(base, size, vmem.PageSize, 1)
	variableCost := vt.Bytes() - beforeV

	if fixedCost < size {
		t.Fatalf("fixed shadow cost %d for a %d-byte object; expected ~1:1", fixedCost, size)
	}
	if variableCost*64 > fixedCost {
		t.Fatalf("variable-ratio cost %d not dramatically below fixed %d", variableCost, fixedCost)
	}
}

func BenchmarkFixedCreateLarge(b *testing.B) {
	ft := NewFixedTable()
	for i := 0; i < b.N; i++ {
		ft.CreateObject(vmem.HeapBase, 1<<20, uint64(i+1))
	}
}

func BenchmarkVariableCreateLarge(b *testing.B) {
	vt := NewTable()
	for i := 0; i < b.N; i++ {
		vt.CreateObject(vmem.HeapBase, 1<<20, vmem.PageSize, uint64(i+1))
	}
}

func BenchmarkFixedLookup(b *testing.B) {
	ft := NewFixedTable()
	ft.CreateObject(vmem.HeapBase, 1<<16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ft.Lookup(vmem.HeapBase+uint64(i)%(1<<16)) == 0 {
			b.Fatal("miss")
		}
	}
}
