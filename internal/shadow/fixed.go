package shadow

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dangsan/internal/vmem"
)

// FixedTable is the design alternative the paper's §4.3 rejects: a
// traditional constant-compression-ratio shadow memory in the style of
// AddressSanitizer, with one metadata word per MinAlign (8) program bytes
// so that a full pointer fits (the paper: "DangSan requires a full pointer
// ... as a consequence, constant compression ratio approaches incur
// unacceptable overhead").
//
// Lookups need a single read (one fewer than the metapagetable), but the
// costs are exactly the two the paper names:
//
//   - metadata space is proportional to program bytes at the worst-case
//     8:8 ratio — a 1 MiB object carries 1 MiB of shadow;
//   - creating a large object must initialize a proportionally large
//     shadow range, making large mallocs O(size) instead of O(pages).
//
// It exists for the mapper ablation; DangSan proper uses Table.
type FixedTable struct {
	heapBase uint64
	mu       sync.Mutex
	// chunks lazily back the shadow, one chunk per fixedChunkCover bytes
	// of program memory.
	chunks []atomic.Pointer[fixedChunk]
	nChunk atomic.Uint64 // allocated chunk count, for Bytes()
}

const (
	// fixedRatio is the program-bytes-per-metadata-word granularity.
	fixedRatio = 8
	// fixedChunkWords is the size of one backing chunk in metadata words
	// (8 KiB of shadow covering 64 KiB of program memory — lazily backed
	// at fine granularity, as mmap'd ASan shadow would be).
	fixedChunkWords = 1 << 13
	// fixedChunkCover is the program bytes covered by one chunk.
	fixedChunkCover = fixedChunkWords * fixedRatio
)

type fixedChunk struct {
	words [fixedChunkWords]uint64
}

// NewFixedTable creates a constant-ratio shadow for the heap reservation.
func NewFixedTable() *FixedTable {
	return &FixedTable{
		heapBase: vmem.HeapBase,
		chunks:   make([]atomic.Pointer[fixedChunk], (vmem.HeapMax+fixedChunkCover-1)/fixedChunkCover),
	}
}

func (t *FixedTable) chunkFor(off uint64, ensure bool) *fixedChunk {
	ci := off / fixedChunkCover
	c := t.chunks[ci].Load()
	if c == nil && ensure {
		fresh := new(fixedChunk)
		if t.chunks[ci].CompareAndSwap(nil, fresh) {
			t.nChunk.Add(1)
			c = fresh
		} else {
			c = t.chunks[ci].Load()
		}
	}
	return c
}

// CreateObject writes meta into every slot covering [base, base+size) —
// size/8 atomic stores, the O(size) initialization cost.
func (t *FixedTable) CreateObject(base, size uint64, meta uint64) {
	if base%fixedRatio != 0 {
		panic(fmt.Sprintf("shadow: fixed table requires 8-byte alignment, got 0x%x", base))
	}
	if base < t.heapBase || base+size > t.heapBase+vmem.HeapMax {
		panic("shadow: object outside heap")
	}
	for off := base - t.heapBase; off < base-t.heapBase+size; off += fixedRatio {
		c := t.chunkFor(off, true)
		atomic.StoreUint64(&c.words[off/fixedRatio%fixedChunkWords], meta)
	}
}

// ClearObject zeroes the object's slots.
func (t *FixedTable) ClearObject(base, size uint64) {
	t.CreateObject(base, size, 0)
}

// Lookup returns the metadata word for ptr with a single dependent read.
func (t *FixedTable) Lookup(ptr uint64) uint64 {
	if ptr < t.heapBase || ptr >= t.heapBase+vmem.HeapMax {
		return 0
	}
	off := ptr - t.heapBase
	c := t.chunkFor(off, false)
	if c == nil {
		return 0
	}
	return atomic.LoadUint64(&c.words[off/fixedRatio%fixedChunkWords])
}

// Bytes reports the shadow's memory footprint: the allocated chunks plus
// the (lazily backed) chunk directory.
func (t *FixedTable) Bytes() uint64 {
	return t.nChunk.Load()*fixedChunkWords*8 + uint64(len(t.chunks))*8
}
