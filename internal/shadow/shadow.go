// Package shadow implements DangSan's pointer-to-object mapper: a variable
// compression ratio shadow memory ("metapagetable") in the style of METAlloc.
//
// Every 4 KiB heap page has one packed 8-byte entry: 56 bits locating the
// page's metadata array plus 8 bits of compression shift (paper Fig. 5 —
// "seven bytes specify a pointer to an array of metadata ... the eighth byte
// specifies the compression ratio"). Looking up the metadata word for an
// arbitrary pointer is constant time:
//
//	entry := table[(ptr - heapBase) >> 12]
//	meta  := arena[entry.index + (ptr&4095)>>entry.shift]
//
// Because the allocator guarantees that all objects in a page share one
// power-of-two alignment, an object covers a whole number of metadata slots;
// the object's metadata word is duplicated across all of them, which is what
// makes interior pointers (range queries) work — the property hash tables
// lack and trees pay O(log n) for (paper §4.3).
package shadow

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"dangsan/internal/faultinject"
	"dangsan/internal/obs"
	"dangsan/internal/vmem"
)

// ErrShadowExhausted reports that populating a page's metadata mapping
// failed (in practice, via fault injection simulating metapagetable arena
// exhaustion). The object's mapping is rolled back; the detector treats the
// object as untracked.
var ErrShadowExhausted = errors.New("shadow: metapagetable population failed")

const (
	// leafBits is the size of one metapagetable leaf in entries. The table
	// itself is lazily backed, so reserving entries for the whole 64 GiB
	// heap costs nothing until pages are used.
	leafBits = 12
	leafSize = 1 << leafBits

	// arenaSlabBits is the size of one metadata-arena slab in words.
	arenaSlabBits = 18
	arenaSlabSize = 1 << arenaSlabBits

	// shiftBits is how many low bits of a table entry hold the shift.
	shiftBits = 8
)

// MinShift and MaxShift bound the per-page compression shift: alignment runs
// from 8 bytes (smallest size class) to a full page (large spans).
const (
	MinShift = 3
	MaxShift = vmem.PageShift
)

type leaf struct {
	entries [leafSize]atomic.Uint64
}

// arena is an append-only store of metadata words. Indices are stable, and
// arrays are recycled through per-size free lists when a page is
// re-initialized for a different size class.
type arena struct {
	mu    sync.Mutex
	slabs [][]uint64
	next  uint64 // next free index; index 0 is reserved as "no metadata"
	// freeBySlots[s] holds start indices of released arrays of 1<<s slots.
	freeBySlots [MaxShift - MinShift + 1][]uint64
}

func newArena() *arena {
	a := &arena{}
	a.slabs = append(a.slabs, make([]uint64, arenaSlabSize))
	a.next = 1 // burn index 0
	return a
}

// allocArray returns the start index of a zeroed array of n words (n a power
// of two). Never returns 0.
func (a *arena) allocArray(n uint64) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if list := &a.freeBySlots[sizeIdxFor(n)]; len(*list) > 0 {
		idx := (*list)[len(*list)-1]
		*list = (*list)[:len(*list)-1]
		// Zero the recycled array.
		for i := uint64(0); i < n; i++ {
			atomic.StoreUint64(a.wordAt(idx+i), 0)
		}
		return idx
	}
	// Keep arrays inside a single slab so wordAt stays simple.
	slabOff := a.next % arenaSlabSize
	if slabOff+n > arenaSlabSize {
		a.next += arenaSlabSize - slabOff
	}
	if a.next+n > uint64(len(a.slabs))*arenaSlabSize {
		a.slabs = append(a.slabs, make([]uint64, arenaSlabSize))
	}
	idx := a.next
	a.next += n
	return idx
}

// freeArray recycles an array for reuse.
func (a *arena) freeArray(idx, n uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	list := &a.freeBySlots[sizeIdxFor(n)]
	*list = append(*list, idx)
}

func sizeIdxFor(n uint64) int {
	// n slots = 1<<(PageShift-shift); map to 0..MaxShift-MinShift.
	return bits.TrailingZeros64(n)
}

// wordAt returns the address of arena word i.
func (a *arena) wordAt(i uint64) *uint64 {
	return &a.slabs[i>>arenaSlabBits][i&(arenaSlabSize-1)]
}

// load atomically reads arena word i (lock-free fast path: slab slices are
// never moved once created, and slabs only grows under the mutex — readers
// racing with append may briefly miss the newest slab, but indices they hold
// always predate it).
func (a *arena) load(i uint64) uint64 {
	return atomic.LoadUint64(a.wordAt(i))
}

func (a *arena) store(i, v uint64) {
	atomic.StoreUint64(a.wordAt(i), v)
}

// bytes reports memory consumed by the arena.
func (a *arena) bytes() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return uint64(len(a.slabs)) * arenaSlabSize * 8
}

// Table is the metapagetable for the heap segment.
type Table struct {
	heapBase uint64
	roots    []atomic.Pointer[leaf]
	arena    *arena
	leaves   atomic.Uint64 // allocated leaf count, for memory accounting

	// Observability instruments; nil until AttachMetrics.
	slotWrites *obs.Counter
	slotClears *obs.Counter

	// faults, when set, can fail page population in CreateObject.
	faults atomic.Pointer[faultinject.Plane]
}

// NewTable creates a metapagetable covering the standard heap reservation.
func NewTable() *Table {
	nPages := uint64(vmem.HeapMax) >> vmem.PageShift
	return &Table{
		heapBase: vmem.HeapBase,
		roots:    make([]atomic.Pointer[leaf], (nPages+leafSize-1)/leafSize),
		arena:    newArena(),
	}
}

// AttachMetrics registers the table's instruments with reg: slot write and
// clear counters and gauges over the sizes Bytes already tracks. Safe to
// call with nil.
func (t *Table) AttachMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	t.slotWrites = reg.Counter("shadow.slot_writes")
	t.slotClears = reg.Counter("shadow.slot_clears")
	reg.RegisterFunc("shadow.bytes", func() int64 { return int64(t.Bytes()) })
	reg.RegisterFunc("shadow.leaves", func() int64 { return int64(t.leaves.Load()) })
}

// InjectFaults attaches a fault-injection plane; CreateObject consults its
// ShadowPopulate site whenever a page needs a fresh metadata array. A nil
// plane disables injection.
func (t *Table) InjectFaults(p *faultinject.Plane) {
	t.faults.Store(p)
}

// pageIndex maps a heap address to its page number; ok is false outside the
// heap.
func (t *Table) pageIndex(addr uint64) (uint64, bool) {
	if addr < t.heapBase || addr >= t.heapBase+vmem.HeapMax {
		return 0, false
	}
	return (addr - t.heapBase) >> vmem.PageShift, true
}

func (t *Table) leafFor(pi uint64, ensure bool) *leaf {
	ri := pi >> leafBits
	l := t.roots[ri].Load()
	if l == nil && ensure {
		fresh := new(leaf)
		if t.roots[ri].CompareAndSwap(nil, fresh) {
			t.leaves.Add(1)
			l = fresh
		} else {
			l = t.roots[ri].Load()
		}
	}
	return l
}

// packed entry helpers.
func packEntry(arrayIdx uint64, shift uint) uint64 {
	return arrayIdx<<shiftBits | uint64(shift)
}

func unpackEntry(e uint64) (arrayIdx uint64, shift uint) {
	return e >> shiftBits, uint(e & (1<<shiftBits - 1))
}

// ensurePage makes sure the page containing addr has a metadata array for
// the given shift, returning the array's arena index. If the page was
// previously initialized with a different shift (span recycled for another
// size class), the old array is released and replaced. Returns
// ErrShadowExhausted when the fault plane fails a needed fresh allocation;
// pages whose mapping already matches never fail.
func (t *Table) ensurePage(pageAddr uint64, shift uint) (uint64, error) {
	pi, ok := t.pageIndex(pageAddr)
	if !ok {
		panic(fmt.Sprintf("shadow: address 0x%x outside heap", pageAddr))
	}
	l := t.leafFor(pi, true)
	slot := &l.entries[pi&(leafSize-1)]
	for {
		e := slot.Load()
		idx, s := unpackEntry(e)
		if e != 0 && s == shift {
			return idx, nil
		}
		if t.faults.Load().Fail(faultinject.ShadowPopulate) {
			return 0, ErrShadowExhausted
		}
		n := uint64(vmem.PageSize) >> shift
		fresh := t.arena.allocArray(n)
		if slot.CompareAndSwap(e, packEntry(fresh, shift)) {
			if e != 0 {
				t.arena.freeArray(idx, uint64(vmem.PageSize)>>s)
			}
			return fresh, nil
		}
		t.arena.freeArray(fresh, n)
	}
}

// CreateObject records meta as the metadata word for every slot covered by
// the object [base, base+size). align is the allocator's alignment
// guarantee for the object's pages and determines the compression shift.
// This implements the paper's createobj (also used on in-place realloc
// growth, where it simply overwrites the old mapping).
//
// On ErrShadowExhausted the slots already written are zeroed again, so a
// partially mapped object can never feed stale handles to Lookup — the
// object is simply untracked.
func (t *Table) CreateObject(base, size, align uint64, meta uint64) error {
	if align < 1<<MinShift || align&(align-1) != 0 {
		panic(fmt.Sprintf("shadow: bad alignment %d", align))
	}
	shift := uint(bits.TrailingZeros64(align))
	if shift > MaxShift {
		shift = MaxShift
	}
	if base%align != 0 {
		panic(fmt.Sprintf("shadow: object 0x%x not aligned to %d", base, align))
	}
	end := base + size
	var slots uint64
	for addr := base; addr < end; {
		pageAddr := addr &^ (vmem.PageSize - 1)
		arr, err := t.ensurePage(pageAddr, shift)
		if err != nil {
			// Roll back the prefix already written.
			if meta != 0 && addr > base {
				t.clearRange(base, addr)
			}
			return err
		}
		pageEnd := pageAddr + vmem.PageSize
		stop := end
		if stop > pageEnd {
			stop = pageEnd
		}
		firstSlot := (addr - pageAddr) >> shift
		lastSlot := (stop - 1 - pageAddr) >> shift
		for s := firstSlot; s <= lastSlot; s++ {
			t.arena.store(arr+s, meta)
		}
		slots += lastSlot - firstSlot + 1
		addr = pageEnd
	}
	// No tid on this path; shard by page so concurrent allocators in
	// different heap regions stay on separate lines.
	if meta != 0 {
		t.slotWrites.Add(int32(base>>vmem.PageShift), slots)
	} else {
		t.slotClears.Add(int32(base>>vmem.PageShift), slots)
	}
	return nil
}

// ClearObject zeroes the metadata slots covered by the object, called at
// free time so that later stores of dangling pointers are not registered
// into recycled metadata (the "careful reuse of per-object metadata" the
// paper's §7 race discussion requires). Unlike CreateObject it never
// allocates — it zeroes at whatever granularity each page already has — so
// it cannot fail and cannot draw an injected fault.
func (t *Table) ClearObject(base, size, align uint64) {
	if size == 0 {
		return
	}
	t.slotClears.Add(int32(base>>vmem.PageShift), t.clearRange(base, base+size))
}

// clearRange zeroes every metadata slot covering [start, end) using each
// page's stored shift, skipping pages that were never populated. Returns the
// number of slots zeroed.
func (t *Table) clearRange(start, end uint64) uint64 {
	var slots uint64
	for addr := start; addr < end; {
		pageAddr := addr &^ (vmem.PageSize - 1)
		pageEnd := pageAddr + vmem.PageSize
		stop := end
		if stop > pageEnd {
			stop = pageEnd
		}
		pi, ok := t.pageIndex(pageAddr)
		if !ok {
			panic(fmt.Sprintf("shadow: address 0x%x outside heap", pageAddr))
		}
		if l := t.leafFor(pi, false); l != nil {
			if e := l.entries[pi&(leafSize-1)].Load(); e != 0 {
				arr, shift := unpackEntry(e)
				firstSlot := (addr - pageAddr) >> shift
				lastSlot := (stop - 1 - pageAddr) >> shift
				for s := firstSlot; s <= lastSlot; s++ {
					t.arena.store(arr+s, 0)
				}
				slots += lastSlot - firstSlot + 1
			}
		}
		addr = pageEnd
	}
	return slots
}

// Lookup returns the metadata word for ptr, or 0 when ptr does not point
// into a tracked object. This is the paper's ptr2obj: two dependent reads.
func (t *Table) Lookup(ptr uint64) uint64 {
	pi, ok := t.pageIndex(ptr)
	if !ok {
		return 0
	}
	l := t.leafFor(pi, false)
	if l == nil {
		return 0
	}
	e := l.entries[pi&(leafSize-1)].Load()
	if e == 0 {
		return 0
	}
	idx, shift := unpackEntry(e)
	return t.arena.load(idx + (ptr&(vmem.PageSize-1))>>shift)
}

// Bytes reports the memory consumed by the metapagetable and metadata
// arena, for the paper's memory-overhead experiments.
func (t *Table) Bytes() uint64 {
	const leafBytes = leafSize * 8
	return t.leaves.Load()*leafBytes + t.arena.bytes() + uint64(len(t.roots))*8
}
