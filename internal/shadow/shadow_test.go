package shadow

import (
	"math/rand"
	"sync"
	"testing"

	"dangsan/internal/vmem"
)

func TestCreateAndLookup(t *testing.T) {
	tbl := NewTable()
	base := uint64(vmem.HeapBase + 4096)
	tbl.CreateObject(base, 64, 8, 0xABCD)
	// Every interior address of the object maps to its metadata.
	for off := uint64(0); off < 64; off += 8 {
		if got := tbl.Lookup(base + off); got != 0xABCD {
			t.Fatalf("Lookup(+%d) = 0x%x, want 0xABCD", off, got)
		}
	}
	// Bytes just outside map to nothing.
	if got := tbl.Lookup(base - 8); got != 0 {
		t.Fatalf("Lookup before object = 0x%x", got)
	}
	if got := tbl.Lookup(base + 64); got != 0 {
		t.Fatalf("Lookup after object = 0x%x", got)
	}
}

func TestLookupNonHeap(t *testing.T) {
	tbl := NewTable()
	for _, addr := range []uint64{0, vmem.GlobalsBase, vmem.StacksBase, vmem.HeapBase - 8, vmem.HeapBase + vmem.HeapMax} {
		if got := tbl.Lookup(addr); got != 0 {
			t.Errorf("Lookup(0x%x) = 0x%x, want 0", addr, got)
		}
	}
}

func TestInteriorPointerRangeQuery(t *testing.T) {
	tbl := NewTable()
	// An object that is larger than its alignment covers several slots; all
	// of them must carry the metadata (the duplication the paper describes).
	base := uint64(vmem.HeapBase)
	tbl.CreateObject(base, 48, 16, 7) // 3 slots of 16 bytes
	for off := uint64(0); off < 48; off++ {
		if got := tbl.Lookup(base + off); got != 7 {
			t.Fatalf("Lookup(+%d) = %d", off, got)
		}
	}
}

func TestMultiPageObject(t *testing.T) {
	tbl := NewTable()
	base := uint64(vmem.HeapBase + 8*vmem.PageSize)
	size := uint64(3 * vmem.PageSize)
	tbl.CreateObject(base, size, vmem.PageSize, 99)
	for _, off := range []uint64{0, vmem.PageSize, 2*vmem.PageSize + 123, size - 1} {
		if got := tbl.Lookup(base + off); got != 99 {
			t.Fatalf("Lookup(+%d) = %d", off, got)
		}
	}
	tbl.ClearObject(base, size, vmem.PageSize)
	if got := tbl.Lookup(base + vmem.PageSize); got != 0 {
		t.Fatalf("after clear: %d", got)
	}
}

func TestNeighborsSharePage(t *testing.T) {
	tbl := NewTable()
	base := uint64(vmem.HeapBase)
	// Two adjacent 32-byte objects with 8-byte alignment on one page.
	tbl.CreateObject(base, 32, 8, 1)
	tbl.CreateObject(base+32, 32, 8, 2)
	if got := tbl.Lookup(base + 31); got != 1 {
		t.Fatalf("end of obj1 = %d", got)
	}
	if got := tbl.Lookup(base + 32); got != 2 {
		t.Fatalf("start of obj2 = %d", got)
	}
	// Clearing one must not affect the other.
	tbl.ClearObject(base, 32, 8)
	if got := tbl.Lookup(base + 8); got != 0 {
		t.Fatalf("cleared obj1 = %d", got)
	}
	if got := tbl.Lookup(base + 40); got != 2 {
		t.Fatalf("obj2 after clearing obj1 = %d", got)
	}
}

func TestShiftReinitOnClassChange(t *testing.T) {
	tbl := NewTable()
	base := uint64(vmem.HeapBase + 64*vmem.PageSize)
	// Page first used for 8-byte-aligned objects...
	tbl.CreateObject(base, 64, 8, 5)
	if got := tbl.Lookup(base); got != 5 {
		t.Fatal("initial mapping failed")
	}
	// ...then recycled for a large span with page alignment. The entry must
	// be re-created with the new shift and old metadata must vanish.
	tbl.CreateObject(base, vmem.PageSize, vmem.PageSize, 6)
	for _, off := range []uint64{0, 64, vmem.PageSize - 1} {
		if got := tbl.Lookup(base + off); got != 6 {
			t.Fatalf("after reinit Lookup(+%d) = %d", off, got)
		}
	}
}

func TestArenaRecycling(t *testing.T) {
	tbl := NewTable()
	base := uint64(vmem.HeapBase)
	// Flip a page between two shifts repeatedly; arena memory must not grow
	// without bound because arrays are recycled.
	tbl.CreateObject(base, 8, 8, 1)
	grew := tbl.Bytes()
	for i := 0; i < 100; i++ {
		tbl.CreateObject(base, vmem.PageSize, vmem.PageSize, 2)
		tbl.CreateObject(base, 8, 8, 1)
	}
	if tbl.Bytes() > grew+arenaSlabSize*8 {
		t.Fatalf("arena grew from %d to %d despite recycling", grew, tbl.Bytes())
	}
}

func TestConcurrentCreateLookup(t *testing.T) {
	tbl := NewTable()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			// Each worker owns a distinct page to avoid logical conflicts.
			page := uint64(vmem.HeapBase) + uint64(w)*vmem.PageSize
			for i := 0; i < 2000; i++ {
				off := uint64(rng.Intn(512/8)) * 64
				meta := uint64(w*10000 + i + 1)
				tbl.CreateObject(page+off, 64, 8, meta)
				if got := tbl.Lookup(page + off + uint64(rng.Intn(64))); got != meta {
					t.Errorf("worker %d: got %d want %d", w, got, meta)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestPackUnpackEntry(t *testing.T) {
	for _, c := range []struct {
		idx   uint64
		shift uint
	}{{1, 3}, {123456, 12}, {1 << 55, 4}} {
		idx, shift := unpackEntry(packEntry(c.idx, c.shift))
		if idx != c.idx || shift != c.shift {
			t.Errorf("roundtrip (%d,%d) -> (%d,%d)", c.idx, c.shift, idx, shift)
		}
	}
}

func TestBadAlignmentPanics(t *testing.T) {
	tbl := NewTable()
	for _, align := range []uint64{0, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("align %d did not panic", align)
				}
			}()
			tbl.CreateObject(vmem.HeapBase, 8, align, 1)
		}()
	}
	// Misaligned base panics too.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("misaligned base did not panic")
			}
		}()
		tbl.CreateObject(vmem.HeapBase+4, 8, 8, 1)
	}()
}

// Property: after creating a random set of non-overlapping objects on
// distinct pages, Lookup returns the right metadata for every interior
// offset and 0 outside.
func TestLookupProperty(t *testing.T) {
	tbl := NewTable()
	rng := rand.New(rand.NewSource(42))
	type obj struct {
		base, size, align, meta uint64
	}
	var objs []obj
	for p := 0; p < 50; p++ {
		page := uint64(vmem.HeapBase) + uint64(1000+p)*vmem.PageSize
		align := uint64(8) << uint(rng.Intn(3)) // 8, 16, 32
		size := align * uint64(1+rng.Intn(4))
		off := uint64(rng.Intn(int((vmem.PageSize-size)/align))) * align
		o := obj{page + off, size, align, uint64(p + 1)}
		tbl.CreateObject(o.base, o.size, o.align, o.meta)
		objs = append(objs, o)
	}
	for _, o := range objs {
		for i := 0; i < 8; i++ {
			off := uint64(rng.Intn(int(o.size)))
			if got := tbl.Lookup(o.base + off); got != o.meta {
				t.Fatalf("obj %+v Lookup(+%d) = %d", o, off, got)
			}
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	tbl := NewTable()
	base := uint64(vmem.HeapBase)
	for i := 0; i < 1024; i++ {
		tbl.CreateObject(base+uint64(i)*64, 64, 8, uint64(i+1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl.Lookup(base+uint64(i%1024)*64+8) == 0 {
			b.Fatal("lookup failed")
		}
	}
}

func BenchmarkCreateObject(b *testing.B) {
	tbl := NewTable()
	base := uint64(vmem.HeapBase)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.CreateObject(base+uint64(i%4096)*64, 64, 8, uint64(i+1))
	}
}
