package bench

import (
	"fmt"

	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/obs"
	"dangsan/internal/pointerlog"
	"dangsan/internal/proc"
	"dangsan/internal/workloads"
)

// FreeLatencyRow is one configuration's free-path latency profile on the
// server workload, read from the dangsan.free_ns histogram (log2 buckets,
// so the quantiles are factor-of-two upper bounds).
type FreeLatencyRow struct {
	// Config names the free path: "inline" or "quarantine".
	Config string `json:"config"`
	// Requests served and total wall-clock seconds (throughput context for
	// the latency numbers).
	Requests int     `json:"requests"`
	Seconds  float64 `json:"seconds"`
	// Free-path latency distribution in nanoseconds.
	FreeCount  uint64  `json:"free_count"`
	FreeMeanNs float64 `json:"free_mean_ns"`
	FreeP50Ns  uint64  `json:"free_p50_ns"`
	FreeP99Ns  uint64  `json:"free_p99_ns"`
	FreeMaxNs  uint64  `json:"free_max_ns"`
	// Quarantine-side figures (zero for the inline row): epochs retired,
	// mean drain batch width, overflow-forced synchronous drains.
	Epochs         uint64  `json:"epochs"`
	BatchMean      float64 `json:"batch_mean"`
	OverflowDrains uint64  `json:"overflow_drains"`
}

// RunFreeLatency measures the free-path latency distribution on the apache
// server analog (the free-heaviest profile) with inline invalidation and
// with the epoch quarantine, using a fresh registry per row so histograms
// do not mix. This is the tentpole's before/after experiment: the deferred
// path should collapse the free-side tail (p99) because the freeing thread
// no longer walks the object's location set.
func RunFreeLatency(opts Options, progress func(string)) ([]FreeLatencyRow, error) {
	opts = opts.normalized()
	requests := maxi(int(20000*opts.Scale), 500)
	const workers = 32
	prof, err := workloads.ServerProfileByName("apache")
	if err != nil {
		return nil, err
	}

	// 64 MiB comfortably holds the apache profile's churn at full scale:
	// the point of this experiment is the deferred path's latency profile,
	// not the overflow fallback (the chaos stages cover that), so the
	// budget must not force synchronous drains back onto freeing threads.
	qBytes := opts.QuarantineBytes
	if qBytes == 0 {
		qBytes = 64 << 20
	}
	configs := []struct {
		name string
		cfg  pointerlog.Config
	}{
		{"inline", pointerlog.DefaultConfig()},
		{"quarantine", func() pointerlog.Config {
			c := pointerlog.DefaultConfig()
			c.QuarantineBytes = qBytes
			c.QuarantineEpoch = opts.QuarantineEpoch
			c.QuarantineSync = opts.QuarantineSync
			return c
		}()},
	}

	var rows []FreeLatencyRow
	for _, c := range configs {
		if progress != nil {
			progress(fmt.Sprintf("freelat %s", c.name))
		}
		// A private registry per row: the shared opts.Metrics registry
		// would accumulate both configurations into one histogram.
		reg := obs.NewRegistry()
		det := dangsan.NewWithConfig(c.cfg)
		m, err := MeasureWith(det, func(p *proc.Process) error {
			return workloads.RunServer(p, prof, workers, requests, opts.Seed)
		}, reg)
		if err != nil {
			return nil, fmt.Errorf("freelat %s: %w", c.name, err)
		}
		snap := reg.Snapshot()
		h := snap.Histograms["dangsan.free_ns"]
		b := snap.Histograms["dangsan.quarantine_batch_objects"]
		rows = append(rows, FreeLatencyRow{
			Config:         c.name,
			Requests:       requests,
			Seconds:        m.Seconds,
			FreeCount:      h.Count,
			FreeMeanNs:     h.Mean(),
			FreeP50Ns:      h.Quantile(0.50),
			FreeP99Ns:      h.Quantile(0.99),
			FreeMaxNs:      h.Max,
			Epochs:         uint64(snap.Gauges["dangsan.quarantine_epochs"]),
			BatchMean:      b.Mean(),
			OverflowDrains: snap.Counters["dangsan.quarantine_overflow_drains"],
		})
	}
	return rows, nil
}
