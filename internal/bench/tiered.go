package bench

import (
	"fmt"

	"dangsan/internal/detectors/dangsan"
	"dangsan/internal/obs"
	"dangsan/internal/pointerlog"
	"dangsan/internal/proc"
)

// TieredRow is one spill-threshold configuration's point in the tiered-log
// RAM-ceiling × latency sweep: the resident (hot) log footprint at peak
// use, what moved to disk, and what the cold tier cost the free path.
type TieredRow struct {
	// Config names the threshold ("off", "256KiB", "64KiB", "16KiB").
	Config string `json:"config"`
	// SpillBytes is the ColdSpillBytes setting (0 = tiering off).
	SpillBytes uint64 `json:"spill_bytes"`
	Seconds    float64 `json:"seconds"`
	// ResidentLogBytes is LogBytesLive at peak use — after every store,
	// before any free. This is the RAM ceiling the threshold buys down.
	ResidentLogBytes uint64 `json:"resident_log_bytes"`
	// SpilledLogBytes is the cumulative footprint retired to disk.
	SpilledLogBytes uint64 `json:"spilled_log_bytes"`
	Spills          uint64 `json:"spills"`
	ColdSegments    int64  `json:"cold_segments"`
	ColdDiskBytes   int64  `json:"cold_disk_bytes"`
	Compactions     uint64 `json:"compactions"`
	// Spill-path latency (the store that triggered each flush paid it).
	SpillP99Ns uint64 `json:"spill_p99_ns"`
	// Free-path latency: inline frees stream the cold segments back, so
	// the p99 prices the disk reads the threshold traded RAM for.
	FreeCount  uint64  `json:"free_count"`
	FreeMeanNs float64 `json:"free_mean_ns"`
	FreeP99Ns  uint64  `json:"free_p99_ns"`
	FreeMaxNs  uint64  `json:"free_max_ns"`
}

// RunTiered measures the cold-tier spill path on a hash-fallback workload:
// a few long-lived registry objects each accumulate thousands of distinct
// pointer locations (far past the hash switch), then are freed, forcing
// invalidation to stream every spilled segment back through the decoder.
// The sweep varies ColdSpillBytes from off through 1/4 of the default,
// trading resident log bytes against free-path tail latency.
func RunTiered(opts Options, progress func(string)) ([]TieredRow, error) {
	opts = opts.normalized()
	objects := 8
	locsPerObj := maxi(int(16384*opts.Scale), 2048)

	configs := []struct {
		name  string
		bytes uint64
	}{
		{"off", 0},
		{"256KiB", 4 * pointerlog.DefaultColdSpillBytes},
		{"64KiB", pointerlog.DefaultColdSpillBytes},
		{"16KiB", pointerlog.DefaultColdSpillBytes / 4},
	}

	var rows []TieredRow
	for _, c := range configs {
		if progress != nil {
			progress(fmt.Sprintf("tiered %s", c.name))
		}
		cfg := pointerlog.DefaultConfig()
		cfg.ColdSpillBytes = c.bytes
		cfg.Audit = opts.Audit
		// A private registry per row (MeasureWith attaches it through the
		// process): the shared opts registry would mix the rows' histograms.
		reg := obs.NewRegistry()
		det := dangsan.NewWithConfig(cfg)

		var resident uint64
		var coldPeak pointerlog.ColdStats
		m, err := MeasureWith(det, func(p *proc.Process) error {
			th := p.NewThread()
			defer th.Exit()
			// Locations spread across globals and a heap arena, stride 8:
			// every slot distinct, so each object's set genuinely grows.
			arena, err := th.Malloc(uint64(8 * objects * locsPerObj / 2))
			if err != nil {
				return err
			}
			defer th.Free(arena)
			globals := p.AllocGlobal(uint64(8 * objects * locsPerObj / 2))
			bases := make([]uint64, objects)
			for o := range bases {
				base, err := th.Malloc(1 << 16)
				if err != nil {
					return err
				}
				bases[o] = base
				for i := 0; i < locsPerObj; i++ {
					slot := uint64(o*locsPerObj+i) / 2 * 8
					loc := globals + slot
					if i&1 == 1 {
						loc = arena + slot
					}
					if f := th.StorePtr(loc, base+uint64(i&8191)*8); f != nil {
						return f
					}
				}
			}
			// Peak use: every location logged, nothing freed yet. This is
			// the number the spill threshold exists to bound. Disk bytes
			// are read here too — the frees below retire the segments.
			resident = det.Stats().LogBytesLive
			coldPeak = det.Logger().ColdLogStats()
			for _, base := range bases {
				if err := th.Free(base); err != nil {
					return err
				}
			}
			return nil
		}, reg)
		if err != nil {
			det.Close()
			return nil, fmt.Errorf("tiered %s: %w", c.name, err)
		}
		if v := det.AuditViolations(); len(v) > 0 {
			det.Close()
			return nil, fmt.Errorf("tiered %s: audit violations: %s", c.name, v[0])
		}
		snap := reg.Snapshot()
		free := snap.Histograms["dangsan.free_ns"]
		spill := snap.Histograms["dangsan.spill_ns"]
		cold := det.Logger().ColdLogStats()
		stats := det.Stats()
		det.Close()
		coldPeak.Compactions = cold.Compactions
		rows = append(rows, TieredRow{
			Config:           c.name,
			SpillBytes:       c.bytes,
			Seconds:          m.Seconds,
			ResidentLogBytes: resident,
			SpilledLogBytes:  stats.LogBytesSpilled,
			Spills:           stats.Spills,
			ColdSegments:     coldPeak.Segments,
			ColdDiskBytes:    coldPeak.DiskBytes,
			Compactions:      coldPeak.Compactions,
			SpillP99Ns:       spill.Quantile(0.99),
			FreeCount:        free.Count,
			FreeMeanNs:       free.Mean(),
			FreeP99Ns:        free.Quantile(0.99),
			FreeMaxNs:        free.Max,
		})
	}
	return rows, nil
}
